// Tests of the analytic relaxed-adder error model against Monte-Carlo
// measurement of the actual arithmetic.
#include <gtest/gtest.h>

#include <cmath>

#include "arith/error_model.hpp"

namespace apim::arith {
namespace {

TEST(ErrorModel, BitErrorRateIsTwentyFivePercent) {
  EXPECT_DOUBLE_EQ(relaxed_bit_error_rate(), 0.25);
  const MeasuredError measured =
      measure_relaxed_add_error(48, 48, 4000, 101);
  EXPECT_NEAR(measured.bit_error_rate, 0.25, 0.01);
}

TEST(ErrorModel, ErrorIsZeroMean) {
  // Symmetric +-2^i contributions: the empirical mean must be small
  // relative to the RMS.
  const unsigned m = 24;
  const MeasuredError measured = measure_relaxed_add_error(48, m, 8000, 102);
  EXPECT_LT(std::abs(measured.mean), 0.1 * relaxed_add_error_rms(m));
}

TEST(ErrorModel, RmsMatchesClosedFormWithinTolerance) {
  // The closed form includes the 4/3 carry-correlation variance factor;
  // with it, Monte-Carlo agrees to a few percent, pinning the adder
  // semantics against regressions.
  for (unsigned m : {8u, 16u, 24u, 32u}) {
    const double analytic = relaxed_add_error_rms(m);
    const MeasuredError measured =
        measure_relaxed_add_error(48, m, 6000, 103 + m);
    EXPECT_NEAR(measured.rms / analytic, 1.0, 0.06) << "m=" << m;
  }
}

TEST(ErrorModel, HardBoundNeverViolated) {
  for (unsigned m : {4u, 12u, 20u, 28u}) {
    const MeasuredError measured =
        measure_relaxed_add_error(40, m, 3000, 104 + m);
    EXPECT_LT(measured.max_abs, relaxed_add_error_bound(m)) << "m=" << m;
    // And the bound is not absurdly loose: the worst observed error should
    // reach at least a quarter of it over thousands of trials.
    EXPECT_GT(measured.max_abs, relaxed_add_error_bound(m) / 4.0) << m;
  }
}

TEST(ErrorModel, RmsGrowsGeometrically) {
  // Each extra relax bit roughly doubles the RMS.
  EXPECT_NEAR(relaxed_add_error_rms(20) / relaxed_add_error_rms(19), 2.0,
              0.01);
  EXPECT_NEAR(relaxed_add_error_rms(32) / relaxed_add_error_rms(24), 256.0,
              1.0);
}

TEST(ErrorModel, MultiplyRelativeRmsShrinksWithOperandWidth) {
  // Same m hurts narrower multipliers more (the product is smaller).
  EXPECT_GT(relaxed_multiply_relative_rms(16, 16),
            relaxed_multiply_relative_rms(32, 16));
  // And grows with m at fixed width.
  EXPECT_GT(relaxed_multiply_relative_rms(32, 32),
            relaxed_multiply_relative_rms(32, 16));
}

TEST(ErrorModel, ZeroRelaxMeansZeroError) {
  EXPECT_DOUBLE_EQ(relaxed_add_error_rms(0), 0.0);
  const MeasuredError measured = measure_relaxed_add_error(32, 0, 100, 105);
  EXPECT_EQ(measured.rms, 0.0);
  EXPECT_EQ(measured.max_abs, 0.0);
}

}  // namespace
}  // namespace apim::arith
