// Differential-testing oracle for the analytics operators
// (src/analytics/operators.hpp): a seeded columnar table generator plus a
// pure host-side scalar reference of every operator, with checks that
// compare the in-memory results bit for bit. Layered on the shared
// workload helpers (tests/workload_harness.hpp) for seed derivation and
// Zipf key skew. gtest-free: checks return "" on success or a
// human-readable violation string, so benches can reuse them.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analytics/operators.hpp"
#include "analytics/runner.hpp"
#include "core/config.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"
#include "workload_harness.hpp"

namespace apim::analytics_harness {

// -- Seeded table generation -------------------------------------------------

enum class KeyDist : std::uint8_t {
  kUniform,         ///< Uniform over a small key pool (duplicates likely).
  kZipf,            ///< Heavy-tailed pool ranks (hot keys dominate).
  kAllEqual,        ///< Every key identical (one giant group).
  kUniqueShuffled,  ///< 0..rows-1 shuffled (no duplicates at all).
};

struct TableSpec {
  std::size_t rows = 64;
  unsigned key_width = 8;
  unsigned val_width = 9;
  KeyDist dist = KeyDist::kUniform;
  double zipf_s = 1.1;        ///< Skew exponent for kZipf.
  std::size_t key_pool = 16;  ///< Distinct key candidates (pool dists).
  std::uint64_t seed = 1;
  std::string name = "t";  ///< Stream name (seeded_stream identity).
};

struct TestTable {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint64_t> values;
  unsigned key_width = 8;
  unsigned val_width = 9;
};

[[nodiscard]] inline TestTable make_test_table(const TableSpec& spec) {
  util::Xoshiro256 rng(workload_harness::seeded_stream(spec.seed, spec.name));
  TestTable t;
  t.key_width = spec.key_width;
  t.val_width = spec.val_width;
  const std::uint64_t key_cap = util::low_mask(spec.key_width) + 1;
  const std::uint64_t pool =
      std::min<std::uint64_t>(key_cap, std::max<std::size_t>(1, spec.key_pool));
  const std::vector<double> zipf =
      spec.dist == KeyDist::kZipf
          ? workload_harness::zipf_weights(static_cast<std::size_t>(pool),
                                           spec.zipf_s)
          : std::vector<double>{};
  for (std::size_t i = 0; i < spec.rows; ++i) {
    switch (spec.dist) {
      case KeyDist::kUniform:
        t.keys.push_back(rng.next_below(pool));
        break;
      case KeyDist::kZipf:
        t.keys.push_back(workload_harness::draw_rank(rng, zipf));
        break;
      case KeyDist::kAllEqual:
        t.keys.push_back(pool / 2);
        break;
      case KeyDist::kUniqueShuffled:
        t.keys.push_back(static_cast<std::uint64_t>(i) % key_cap);
        break;
    }
    t.values.push_back(rng.next_below(util::low_mask(spec.val_width) + 1));
  }
  if (spec.dist == KeyDist::kUniqueShuffled)
    std::shuffle(t.keys.begin(), t.keys.end(), rng);
  return t;
}

// -- Host scalar reference of every operator ---------------------------------

[[nodiscard]] inline bool ref_predicate(analytics::CmpOp op, std::uint64_t v,
                                        std::uint64_t lit) {
  switch (op) {
    case analytics::CmpOp::kLt: return v < lit;
    case analytics::CmpOp::kLe: return v <= lit;
    case analytics::CmpOp::kGt: return v > lit;
    case analytics::CmpOp::kGe: return v >= lit;
    case analytics::CmpOp::kEq: return v == lit;
    case analytics::CmpOp::kNe: return v != lit;
  }
  return false;
}

[[nodiscard]] inline analytics::SelectResult ref_select(
    const std::vector<std::uint64_t>& column, analytics::Predicate pred) {
  analytics::SelectResult out;
  out.mask.resize(column.size(), false);
  for (std::size_t i = 0; i < column.size(); ++i) {
    out.mask[i] = ref_predicate(pred.op, column[i], pred.literal);
    if (out.mask[i]) ++out.count;
  }
  return out;
}

[[nodiscard]] inline std::vector<analytics::AggRow> ref_group_aggregate(
    const std::vector<std::uint64_t>& keys,
    const std::vector<std::uint64_t>& values,
    const std::vector<bool>* mask = nullptr) {
  std::map<std::uint64_t, std::vector<std::uint64_t>> groups;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (mask != nullptr && !(*mask)[i]) continue;
    groups[keys[i]].push_back(values[i]);
  }
  std::vector<analytics::AggRow> out;
  for (const auto& [key, vals] : groups) {
    analytics::AggRow row;
    row.key = key;
    row.count = vals.size();
    for (const std::uint64_t v : vals) row.sum += v;
    row.min = *std::min_element(vals.begin(), vals.end());
    row.max = *std::max_element(vals.begin(), vals.end());
    row.avg_q = row.sum / row.count;
    row.avg_r = row.sum % row.count;
    out.push_back(row);
  }
  return out;
}

/// Nested-loop reference join: probe rows ascending, build rows ascending
/// within each probe row — the order hash_join guarantees.
[[nodiscard]] inline std::vector<analytics::JoinPair> ref_hash_join(
    const std::vector<std::uint64_t>& left,
    const std::vector<std::uint64_t>& right) {
  std::vector<analytics::JoinPair> out;
  for (std::size_t i = 0; i < left.size(); ++i)
    for (std::size_t j = 0; j < right.size(); ++j)
      if (left[i] == right[j])
        out.push_back(analytics::JoinPair{static_cast<std::uint32_t>(i),
                                          static_cast<std::uint32_t>(j)});
  return out;
}

[[nodiscard]] inline std::vector<std::uint64_t> ref_sorted(
    std::vector<std::uint64_t> keys) {
  std::sort(keys.begin(), keys.end());
  return keys;
}

// -- Differential checks -----------------------------------------------------

[[nodiscard]] inline std::string diff_agg_rows(
    const std::vector<analytics::AggRow>& got,
    const std::vector<analytics::AggRow>& want, const std::string& what) {
  std::ostringstream oss;
  if (got.size() != want.size()) {
    oss << what << ": " << got.size() << " groups, reference has "
        << want.size();
    return oss.str();
  }
  for (std::size_t g = 0; g < got.size(); ++g) {
    const analytics::AggRow& a = got[g];
    const analytics::AggRow& b = want[g];
    if (a.key != b.key || a.count != b.count || a.sum != b.sum ||
        a.min != b.min || a.max != b.max || a.avg_q != b.avg_q ||
        a.avg_r != b.avg_r) {
      oss << what << ": group " << g << " (key " << a.key
          << ") differs: count " << a.count << "/" << b.count << ", sum "
          << a.sum << "/" << b.sum << ", min " << a.min << "/" << b.min
          << ", max " << a.max << "/" << b.max << ", avg " << a.avg_q << "r"
          << a.avg_r << "/" << b.avg_q << "r" << b.avg_r;
      return oss.str();
    }
  }
  return {};
}

/// Deterministic predicate battery for a column: edge literals (0, max)
/// plus a present value, across all six comparison ops.
[[nodiscard]] inline std::vector<analytics::Predicate> predicate_battery(
    const std::vector<std::uint64_t>& column, unsigned width) {
  std::vector<std::uint64_t> literals = {0, util::low_mask(width)};
  if (!column.empty()) literals.push_back(column[column.size() / 2]);
  std::vector<analytics::Predicate> out;
  for (const std::uint64_t lit : literals)
    for (const analytics::CmpOp op :
         {analytics::CmpOp::kLt, analytics::CmpOp::kLe, analytics::CmpOp::kGt,
          analytics::CmpOp::kGe, analytics::CmpOp::kEq, analytics::CmpOp::kNe})
      out.push_back(analytics::Predicate{op, lit});
  return out;
}

/// Run every operator over the pair of tables and compare against the host
/// reference bit for bit. "" on success.
[[nodiscard]] inline std::string check_operators(analytics::Runner& runner,
                                                 const TestTable& left,
                                                 const TestTable& right) {
  std::ostringstream oss;

  // Selection across the predicate battery (covers all-match / no-match
  // masks via the edge literals).
  std::vector<bool> last_mask(left.keys.size(), false);
  for (const analytics::Predicate pred :
       predicate_battery(left.values, left.val_width)) {
    const analytics::SelectResult got =
        analytics::select(runner, left.values, left.val_width, pred);
    const analytics::SelectResult want = ref_select(left.values, pred);
    if (got.mask != want.mask) {
      oss << "select op " << static_cast<int>(pred.op) << " lit "
          << pred.literal << ": mask differs";
      return oss.str();
    }
    if (got.count != want.count) {
      oss << "select op " << static_cast<int>(pred.op) << " lit "
          << pred.literal << ": count " << got.count << " != " << want.count;
      return oss.str();
    }
    last_mask = got.mask;
  }

  // Grouped aggregation, unmasked and masked.
  std::string diff = diff_agg_rows(
      analytics::group_aggregate(runner, left.keys, left.values,
                                 left.key_width, left.val_width),
      ref_group_aggregate(left.keys, left.values), "group_aggregate");
  if (!diff.empty()) return diff;
  diff = diff_agg_rows(
      analytics::group_aggregate(runner, left.keys, left.values,
                                 left.key_width, left.val_width, &last_mask),
      ref_group_aggregate(left.keys, left.values, &last_mask),
      "group_aggregate(masked)");
  if (!diff.empty()) return diff;

  // Hash join (key widths must agree for the compare wave).
  const unsigned join_width = std::max(left.key_width, right.key_width);
  const std::vector<analytics::JoinPair> got_join =
      analytics::hash_join(runner, left.keys, right.keys, join_width);
  const std::vector<analytics::JoinPair> want_join =
      ref_hash_join(left.keys, right.keys);
  if (got_join.size() != want_join.size()) {
    oss << "hash_join: " << got_join.size() << " pairs, reference has "
        << want_join.size();
    return oss.str();
  }
  for (std::size_t p = 0; p < got_join.size(); ++p) {
    if (got_join[p].left != want_join[p].left ||
        got_join[p].right != want_join[p].right) {
      oss << "hash_join: pair " << p << " is (" << got_join[p].left << ","
          << got_join[p].right << "), reference (" << want_join[p].left << ","
          << want_join[p].right << ")";
      return oss.str();
    }
  }

  // Sort: keys must match the reference exactly; the permutation must be a
  // valid row mapping (the network is not stable, so only validity and
  // key agreement are contractual).
  const analytics::SortResult got_sort =
      analytics::sort_by_key(runner, left.keys, left.key_width);
  if (got_sort.keys != ref_sorted(left.keys)) return "sort: keys not sorted";
  std::vector<bool> used(left.keys.size(), false);
  for (std::size_t i = 0; i < got_sort.perm.size(); ++i) {
    const std::uint32_t src = got_sort.perm[i];
    if (src >= left.keys.size() || used[src])
      return "sort: perm is not a permutation";
    used[src] = true;
    if (left.keys[src] != got_sort.keys[i])
      return "sort: perm does not map keys";
  }

  // Exact reduction.
  std::uint64_t want_sum = 0;
  for (const std::uint64_t v : left.values) want_sum += v;
  const std::uint64_t got_sum = analytics::tree_sum(
      runner, std::vector<std::uint64_t>(left.values.begin(),
                                         left.values.end()));
  if (got_sum != want_sum) {
    oss << "tree_sum: " << got_sum << " != " << want_sum;
    return oss.str();
  }
  return {};
}

/// Runner over a fresh server with the given backend; small stream/lane
/// shape so waves exercise batching and multi-request splits.
[[nodiscard]] inline analytics::RunnerConfig runner_config(
    core::Backend backend) {
  analytics::RunnerConfig cfg;
  cfg.server.streams = 2;
  cfg.server.lanes_per_stream = 16;
  cfg.server.queue_capacity = 64;
  cfg.server.batch_window = 500;
  cfg.server.device.backend = backend;
  return cfg;
}

}  // namespace apim::analytics_harness
