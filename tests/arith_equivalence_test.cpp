// The central property suite: the word-level fast functional model must
// match the bit-level MAGIC engine EXACTLY — same values, same cycle
// counts, same micro-op energy — across randomized operands and every
// approximation configuration. This is what licenses running the paper's
// application workloads on the fast model (DESIGN.md, "two-level
// simulation strategy").
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "arith/fast_units.hpp"
#include "arith/inmemory_units.hpp"
#include "arith/word_models.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::arith {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

constexpr double kEnergyTolPj = 1e-9;  // Pure summation-order tolerance.

// ------------------------------------------------------- serial adders ----

class SerialAddEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(SerialAddEquivalence, FastEqualsEngine) {
  const unsigned n = GetParam();
  util::Xoshiro256 rng(1000 + n);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    const WordUnitResult fast = word_serial_add(a, b, n, em());
    const InMemoryResult engine = inmemory_serial_add(a, b, n, em());
    ASSERT_EQ(fast.value, engine.value) << "n=" << n;
    ASSERT_EQ(fast.cycles, engine.cycles) << "n=" << n;
    ASSERT_NEAR(fast.energy_ops_pj, engine.energy_ops_pj, kEnergyTolPj)
        << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SerialAddEquivalence,
                         ::testing::Values(1u, 2u, 4u, 8u, 12u, 16u, 24u,
                                           32u, 48u));

// ----------------------------------------------------------- CSA stage ----

class CsaEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(CsaEquivalence, FastEqualsEngine) {
  const unsigned width = GetParam();
  util::Xoshiro256 rng(2000 + width);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t mask = util::low_mask(width);
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const std::uint64_t c = rng.next() & mask;
    const FaWordResult fast = word_fa_stage(a, b, c, width, em());
    const CsaOutcome engine = inmemory_csa(a, b, c, width, em());
    ASSERT_EQ(fast.sum, engine.sum);
    ASSERT_EQ(fast.carry, engine.carry);
    // Engine CSA adds init + carry-shift interconnect around the NOR work.
    const double fast_total =
        fast.nor_energy_pj + 12.0 * width * em().e_init_pj +
        static_cast<double>(width) * em().e_interconnect_bit_pj;
    ASSERT_NEAR(fast_total, engine.energy_ops_pj, kEnergyTolPj);
    ASSERT_EQ(engine.cycles, 13u);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CsaEquivalence,
                         ::testing::Values(1u, 3u, 8u, 16u, 32u, 48u));

// ------------------------------------------------------------ tree adds ---

struct TreeCase {
  std::size_t operands;
  unsigned width;
};

class TreeAddEquivalence : public ::testing::TestWithParam<TreeCase> {};

TEST_P(TreeAddEquivalence, FastEqualsEngine) {
  const auto [count, n] = GetParam();
  util::Xoshiro256 rng(3000 + 37 * count + n);
  const unsigned cap =
      n + util::bit_width(static_cast<std::uint64_t>(count) - 1);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::uint64_t> values;
    std::vector<unsigned> widths;
    for (std::size_t i = 0; i < count; ++i) {
      values.push_back(rng.next() & util::low_mask(n));
      widths.push_back(n);
    }
    const AddOutcome fast = fast_tree_add(values, widths, cap, em());
    const InMemoryResult engine = inmemory_tree_add(values, widths, cap, em());
    ASSERT_EQ(fast.sum, engine.value) << "M=" << count << " n=" << n;
    ASSERT_EQ(fast.cycles, engine.cycles) << "M=" << count << " n=" << n;
    ASSERT_NEAR(fast.energy_ops_pj, engine.energy_ops_pj, kEnergyTolPj)
        << "M=" << count << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeAddEquivalence,
    ::testing::Values(TreeCase{2, 16}, TreeCase{3, 8}, TreeCase{4, 8},
                      TreeCase{5, 12}, TreeCase{9, 16}, TreeCase{16, 8},
                      TreeCase{27, 8}, TreeCase{32, 16}),
    [](const ::testing::TestParamInfo<TreeCase>& info) {
      return "M" + std::to_string(info.param.operands) + "n" +
             std::to_string(info.param.width);
    });

// -------------------------------------------------------- relaxed adds ----

class RelaxedAddEquivalence
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(RelaxedAddEquivalence, FastEqualsEngine) {
  const auto [n, m] = GetParam();
  util::Xoshiro256 rng(4000 + 13 * n + m);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    const WordUnitResult fast = word_final_add(a, b, n, m, em());
    const InMemoryResult engine = inmemory_relaxed_add(a, b, n, m, em());
    ASSERT_EQ(fast.value, engine.value) << "n=" << n << " m=" << m;
    ASSERT_EQ(fast.cycles, engine.cycles) << "n=" << n << " m=" << m;
    ASSERT_NEAR(fast.energy_ops_pj, engine.energy_ops_pj, kEnergyTolPj)
        << "n=" << n << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RelaxedAddEquivalence,
    ::testing::Combine(::testing::Values(8u, 16u, 32u),
                       ::testing::Values(0u, 1u, 4u, 8u, 16u, 32u, 64u)));

// ---------------------------------------------------------- multipliers ---

struct MultCase {
  unsigned n;
  unsigned mask_bits;
  unsigned relax_bits;
};

class MultiplyEquivalence : public ::testing::TestWithParam<MultCase> {};

TEST_P(MultiplyEquivalence, FastEqualsEngine) {
  const MultCase c = GetParam();
  const ApproxConfig cfg{c.mask_bits, c.relax_bits};
  util::Xoshiro256 rng(5000 + 97 * c.n + 7 * c.mask_bits + c.relax_bits);
  for (int trial = 0; trial < 5; ++trial) {
    const std::uint64_t a = rng.next() & util::low_mask(c.n);
    const std::uint64_t b = rng.next() & util::low_mask(c.n);
    const MultiplyOutcome fast = fast_multiply(a, b, c.n, cfg, em());
    const InMemoryResult engine = inmemory_multiply(a, b, c.n, cfg, em());
    ASSERT_EQ(fast.product, engine.value)
        << "n=" << c.n << " a=" << a << " b=" << b;
    ASSERT_EQ(fast.cycles, engine.cycles)
        << "n=" << c.n << " a=" << a << " b=" << b;
    ASSERT_NEAR(fast.energy_ops_pj, engine.energy_ops_pj, kEnergyTolPj)
        << "n=" << c.n << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MultiplyEquivalence,
    ::testing::Values(MultCase{4, 0, 0}, MultCase{8, 0, 0},
                      MultCase{8, 2, 0}, MultCase{8, 0, 6},
                      MultCase{8, 3, 10}, MultCase{12, 0, 0},
                      MultCase{16, 0, 0}, MultCase{16, 4, 0},
                      MultCase{16, 0, 16}, MultCase{16, 8, 24},
                      MultCase{24, 0, 12}, MultCase{32, 0, 0},
                      MultCase{32, 8, 0}, MultCase{32, 0, 32},
                      MultCase{32, 16, 48}),
    [](const ::testing::TestParamInfo<MultCase>& info) {
      return "n" + std::to_string(info.param.n) + "mask" +
             std::to_string(info.param.mask_bits) + "relax" +
             std::to_string(info.param.relax_bits);
    });

// Degenerate operand sweep: zero / one / all-ones multipliers exercise the
// p = 0 / 1 / 2 shortcut paths on both levels.
TEST(MultiplyEquivalenceEdge, DegenerateOperands) {
  const unsigned n = 8;
  const std::uint64_t cases[][2] = {
      {0, 0},    {0xFF, 0}, {0, 0xFF},   {1, 1},
      {0xFF, 1}, {1, 0xFF}, {0xFF, 0x81}, {0x80, 0x80},
  };
  for (const auto& c : cases) {
    const MultiplyOutcome fast =
        fast_multiply(c[0], c[1], n, ApproxConfig::exact(), em());
    const InMemoryResult engine =
        inmemory_multiply(c[0], c[1], n, ApproxConfig::exact(), em());
    EXPECT_EQ(fast.product, engine.value) << c[0] << "*" << c[1];
    EXPECT_EQ(fast.cycles, engine.cycles) << c[0] << "*" << c[1];
    EXPECT_NEAR(fast.energy_ops_pj, engine.energy_ops_pj, kEnergyTolPj);
  }
}

}  // namespace
}  // namespace apim::arith
