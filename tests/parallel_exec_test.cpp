// Tests for the host-side thread pool (util/thread_pool.hpp) and the
// bit-exactness contract of every parallelized path: products, cycles and
// energy must be IDENTICAL (not merely close) for any host thread count,
// because chunk boundaries and merge order depend only on the problem
// size, never on the worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "apps/app.hpp"
#include "arith/approx.hpp"
#include "arith/batch.hpp"
#include "arith/vector_unit.hpp"
#include "core/apim.hpp"
#include "device/energy_model.hpp"
#include "reliability/campaign.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace apim {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

/// Restores the default thread-pool configuration on scope exit so a
/// failing test cannot leak its override into later tests.
struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(0); }
};

// ----------------------------------------------------------- ThreadPool --

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(0, kCount, /*grain=*/64, [&](std::size_t lo,
                                                 std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  util::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, 8, [&](std::size_t, std::size_t) { ran = true; });
  pool.parallel_for(7, 3, 8, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, GrainLargerThanRangeIsOneChunk) {
  util::ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(2, 9, /*grain=*/100, [&](std::size_t lo, std::size_t hi) {
    const std::lock_guard<std::mutex> lock(m);
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 2u);
  EXPECT_EQ(chunks[0].second, 9u);
}

TEST(ThreadPool, PropagatesExceptions) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000, 10,
                        [&](std::size_t lo, std::size_t) {
                          if (lo >= 500) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a thrown body and remains usable.
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 100, 10, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  util::ThreadPool pool(4);
  std::atomic<std::size_t> inner_total{0};
  // A nested call from inside a worker must not deadlock on the pool.
  pool.parallel_for(0, 8, 1, [&](std::size_t, std::size_t) {
    util::ThreadPool::global().parallel_for(
        0, 10, 2, [&](std::size_t lo, std::size_t hi) {
          inner_total.fetch_add(hi - lo);
        });
  });
  EXPECT_EQ(inner_total.load(), 80u);
}

TEST(ThreadPool, SingleThreadPoolRunsSerially) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> order;  // No mutex: serial execution expected.
  pool.parallel_for(0, 100, 7, [&](std::size_t lo, std::size_t) {
    order.push_back(lo);
  });
  ASSERT_FALSE(order.empty());
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LT(order[i - 1], order[i]);
}

TEST(ThreadPool, SetThreadCountReconfiguresGlobalPool) {
  const ThreadCountGuard guard;
  util::set_thread_count(3);
  EXPECT_EQ(util::configured_thread_count(), 3u);
  EXPECT_EQ(util::ThreadPool::global().size(), 3u);
  util::set_thread_count(0);
  EXPECT_GE(util::configured_thread_count(), 1u);
}

// -------------------------------------------- bit-exactness properties --

/// The thread counts the determinism properties sweep: serial, even split,
/// and a count that does not divide typical chunk counts.
constexpr std::size_t kThreadSweep[] = {1, 2, 7};

std::vector<std::pair<std::uint64_t, std::uint64_t>> random_pairs(
    std::size_t count, unsigned n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.emplace_back(rng.next() & util::low_mask(n),
                     rng.next() & util::low_mask(n));
  return out;
}

TEST(ParallelDeterminism, FastMultiplyBatchBitExact) {
  const ThreadCountGuard guard;
  const auto pairs = random_pairs(2000, 32, 901);

  util::set_thread_count(1);
  const arith::BatchOutcome ref = arith::fast_multiply_batch(
      pairs, 32, arith::ApproxConfig::exact(), em(), 64);

  for (std::size_t threads : kThreadSweep) {
    util::set_thread_count(threads);
    const arith::BatchOutcome got = arith::fast_multiply_batch(
        pairs, 32, arith::ApproxConfig::exact(), em(), 64);
    EXPECT_EQ(got.products, ref.products) << "threads=" << threads;
    EXPECT_EQ(got.makespan, ref.makespan) << "threads=" << threads;
    EXPECT_EQ(got.total_lane_cycles, ref.total_lane_cycles)
        << "threads=" << threads;
    EXPECT_EQ(got.lanes_used, ref.lanes_used) << "threads=" << threads;
    // Bit-exact FP equality, not NEAR: the merge order is fixed.
    EXPECT_EQ(got.energy_ops_pj, ref.energy_ops_pj) << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, FastVectorAddBitExact) {
  const ThreadCountGuard guard;
  util::Xoshiro256 rng(902);
  constexpr std::size_t kCount = 3000;
  std::vector<std::uint64_t> a(kCount), b(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    a[i] = rng.next() & util::low_mask(32);
    b[i] = rng.next() & util::low_mask(32);
  }

  util::set_thread_count(1);
  const arith::VectorAddOutcome ref = arith::fast_vector_add(a, b, 32, em());

  for (std::size_t threads : kThreadSweep) {
    util::set_thread_count(threads);
    const arith::VectorAddOutcome got =
        arith::fast_vector_add(a, b, 32, em());
    EXPECT_EQ(got.sums, ref.sums) << "threads=" << threads;
    EXPECT_EQ(got.cycles, ref.cycles) << "threads=" << threads;
    EXPECT_EQ(got.energy_ops_pj, ref.energy_ops_pj) << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, InmemoryVectorAddBitExact) {
  const ThreadCountGuard guard;
  util::Xoshiro256 rng(903);
  // > 2 lane groups of 64 so the group partition is actually exercised,
  // small bit width to keep the bit-level engine affordable.
  constexpr std::size_t kCount = 150;
  std::vector<std::uint64_t> a(kCount), b(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    a[i] = rng.next() & util::low_mask(8);
    b[i] = rng.next() & util::low_mask(8);
  }

  util::set_thread_count(1);
  const arith::VectorAddOutcome ref =
      arith::inmemory_vector_add(a, b, 8, em());
  EXPECT_EQ(ref.cycles, 12u * 8u + 1u);
  for (std::size_t k = 0; k < kCount; ++k)
    EXPECT_EQ(ref.sums[k], a[k] + b[k]);

  for (std::size_t threads : kThreadSweep) {
    util::set_thread_count(threads);
    const arith::VectorAddOutcome got =
        arith::inmemory_vector_add(a, b, 8, em());
    EXPECT_EQ(got.sums, ref.sums) << "threads=" << threads;
    EXPECT_EQ(got.cycles, ref.cycles) << "threads=" << threads;
    EXPECT_EQ(got.energy_ops_pj, ref.energy_ops_pj) << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, AppKernelAndDeviceStatsBitExact) {
  const ThreadCountGuard guard;
  auto app = apps::make_application("GEMM");
  ASSERT_NE(app, nullptr);
  app->generate(/*elements=*/1024, /*seed=*/77);

  util::set_thread_count(1);
  core::ApimDevice ref_device;
  const std::vector<double> ref_out = app->run_apim(ref_device);

  for (std::size_t threads : kThreadSweep) {
    util::set_thread_count(threads);
    core::ApimDevice device;
    const std::vector<double> out = app->run_apim(device);
    EXPECT_EQ(out, ref_out) << "threads=" << threads;
    EXPECT_EQ(device.stats().multiplies, ref_device.stats().multiplies)
        << "threads=" << threads;
    EXPECT_EQ(device.stats().additions, ref_device.stats().additions)
        << "threads=" << threads;
    EXPECT_EQ(device.stats().cycles, ref_device.stats().cycles)
        << "threads=" << threads;
    EXPECT_EQ(device.stats().energy_ops_pj, ref_device.stats().energy_ops_pj)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, FaultCampaignBitExact) {
  // Fault campaigns must reproduce bit for bit regardless of host
  // threads: the fault table rides in the cloned config and transient
  // flips are a stateless hash of (seed, op, domain, attempt), so chunked
  // workers corrupt exactly like a serial run (clones drop no faults).
  const ThreadCountGuard guard;
  reliability::CampaignConfig cfg;
  cfg.apps = {"Sobel"};
  cfg.elements = 1024;
  cfg.trials = 1;
  cfg.stuck_rate = 1e-3;
  cfg.transient_rate = 1e-4;
  cfg.policy = reliability::ReliabilityPolicy::kDetectAndRepair;
  cfg.lanes = 16;

  util::set_thread_count(1);
  const reliability::CampaignResult ref = reliability::run_campaign(cfg);

  for (std::size_t threads : kThreadSweep) {
    util::set_thread_count(threads);
    const reliability::CampaignResult got = reliability::run_campaign(cfg);
    ASSERT_EQ(got.runs.size(), ref.runs.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < ref.runs.size(); ++i) {
      EXPECT_EQ(got.runs[i].qos.metric, ref.runs[i].qos.metric)
          << "threads=" << threads;
      EXPECT_EQ(got.runs[i].qos.acceptable, ref.runs[i].qos.acceptable)
          << "threads=" << threads;
      EXPECT_EQ(got.runs[i].cycles, ref.runs[i].cycles)
          << "threads=" << threads;
      EXPECT_EQ(got.runs[i].energy_pj, ref.runs[i].energy_pj)
          << "threads=" << threads;
      EXPECT_EQ(got.runs[i].residue_checks, ref.runs[i].residue_checks)
          << "threads=" << threads;
      EXPECT_EQ(got.runs[i].faults_detected, ref.runs[i].faults_detected)
          << "threads=" << threads;
      EXPECT_EQ(got.runs[i].retries, ref.runs[i].retries)
          << "threads=" << threads;
      EXPECT_EQ(got.runs[i].escalations, ref.runs[i].escalations)
          << "threads=" << threads;
    }
  }
}

// ------------------------------------------------- degenerate batches --

TEST(DegenerateInputs, EmptyMultiplyBatchIsZeroed) {
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> none;
  const arith::BatchOutcome out = arith::fast_multiply_batch(
      none, 32, arith::ApproxConfig::exact(), em(), 16);
  EXPECT_TRUE(out.products.empty());
  EXPECT_EQ(out.makespan, 0u);
  EXPECT_EQ(out.total_lane_cycles, 0u);
  EXPECT_EQ(out.energy_ops_pj, 0.0);
  EXPECT_EQ(out.lanes_used, 0u);
  EXPECT_EQ(out.ideal_makespan(), 0.0);
  EXPECT_EQ(out.imbalance(), 1.0);
}

TEST(DegenerateInputs, EmptyVectorAddsAreZeroed) {
  const std::vector<std::uint64_t> none;
  const arith::VectorAddOutcome fast =
      arith::fast_vector_add(none, none, 32, em());
  EXPECT_TRUE(fast.sums.empty());
  EXPECT_EQ(fast.cycles, 0u);
  EXPECT_EQ(fast.energy_ops_pj, 0.0);

  const arith::VectorAddOutcome engine =
      arith::inmemory_vector_add(none, none, 32, em());
  EXPECT_TRUE(engine.sums.empty());
  EXPECT_EQ(engine.cycles, 0u);
  EXPECT_EQ(engine.energy_ops_pj, 0.0);
}

}  // namespace
}  // namespace apim
