// Unit tests for the blocked crossbar substrate: blocks, interconnects,
// decoders, sense amplifiers and the shared-controller crossbar.
#include <gtest/gtest.h>

#include <stdexcept>

#include "crossbar/crossbar.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::crossbar {
namespace {

TEST(Block, SetGetRoundTrip) {
  CrossbarBlock b(4, 8);
  EXPECT_FALSE(b.get(2, 3));
  EXPECT_TRUE(b.set(2, 3, true));   // 0 -> 1 switches.
  EXPECT_TRUE(b.get(2, 3));
  EXPECT_FALSE(b.set(2, 3, true));  // Same value: no switch.
  EXPECT_TRUE(b.set(2, 3, false));
}

TEST(Block, WriteCountersTrackSwitches) {
  CrossbarBlock b(2, 8);
  b.set(0, 0, true);
  b.set(0, 0, true);
  b.set(0, 0, false);
  EXPECT_EQ(b.total_writes(), 3u);
  EXPECT_EQ(b.total_switches(), 2u);
}

TEST(Block, WordRoundTripLittleEndian) {
  CrossbarBlock b(2, 40);
  b.write_word(1, 3, 16, 0xBEEF);
  EXPECT_EQ(b.read_word(1, 3, 16), 0xBEEFu);
  // Bit 0 of the value lands at the starting column.
  EXPECT_EQ(b.get(1, 3), (0xBEEF & 1) != 0);
}

TEST(Block, WriteWordReportsFlips) {
  CrossbarBlock b(1, 16);
  EXPECT_EQ(b.write_word(0, 0, 8, 0xFF), 8u);
  EXPECT_EQ(b.write_word(0, 0, 8, 0xF0), 4u);
}

TEST(Interconnect, RoutesWithShift) {
  Interconnect ic(16);
  EXPECT_EQ(ic.route(5), 5);
  ic.set_shift(3);
  EXPECT_EQ(ic.route(5), 8);
  ic.set_shift(-2);
  EXPECT_EQ(ic.route(5), 3);
}

TEST(Interconnect, OutOfRangeLinesAreNotDriven) {
  Interconnect ic(8);
  ic.set_shift(4);
  EXPECT_EQ(ic.route(6), -1);
  ic.set_shift(-4);
  EXPECT_EQ(ic.route(2), -1);
}

TEST(Interconnect, ReverseRouteInvertsShift) {
  Interconnect ic(16);
  ic.set_shift(5);
  for (std::size_t col = 0; col < 11; ++col) {
    const auto out = ic.route(col);
    ASSERT_GE(out, 0);
    EXPECT_EQ(ic.route_reverse(static_cast<std::size_t>(out)),
              static_cast<std::int64_t>(col));
  }
}

TEST(Interconnect, CountsReconfigurationsOnlyOnChange) {
  Interconnect ic(8);
  ic.set_shift(1);
  ic.set_shift(1);  // No-op.
  ic.set_shift(2);
  EXPECT_EQ(ic.reconfigurations(), 2u);
}

TEST(Decoder, CountsActivations) {
  Decoder d(64);
  d.activate(0);
  d.activate(63);
  EXPECT_EQ(d.activations(), 2u);
  EXPECT_GT(d.estimated_transistors(), 64u);
}

TEST(SenseAmp, ReadAndMajority) {
  CrossbarBlock b(4, 4);
  SenseAmp sa;
  b.set(0, 2, true);
  b.set(1, 2, true);
  EXPECT_TRUE(sa.read(b, 0, 2));
  EXPECT_FALSE(sa.read(b, 3, 2));
  // Two of three cells high -> majority trips.
  EXPECT_TRUE(sa.majority(b, 2, 0, 1, 3));
  // One of three -> below the 2-of-3 reference.
  EXPECT_FALSE(sa.majority(b, 2, 0, 3, 3));
  EXPECT_EQ(sa.reads(), 2u);
  EXPECT_EQ(sa.majority_ops(), 2u);
}

TEST(BlockedCrossbar, GeometryAndBlockIndependence) {
  BlockedCrossbar xb(CrossbarConfig{3, 8, 16});
  EXPECT_EQ(xb.block_count(), 3u);
  xb.set(CellAddr{0, 1, 1}, true);
  EXPECT_TRUE(xb.get(CellAddr{0, 1, 1}));
  EXPECT_FALSE(xb.get(CellAddr{1, 1, 1}));  // Blocks are distinct arrays.
  EXPECT_FALSE(xb.get(CellAddr{2, 1, 1}));
}

TEST(BlockedCrossbar, WordAccess) {
  BlockedCrossbar xb(CrossbarConfig{2, 4, 40});
  xb.write_word(CellAddr{1, 2, 4}, 32, 0xDEADBEEF);
  EXPECT_EQ(xb.read_word(CellAddr{1, 2, 4}, 32), 0xDEADBEEFu);
}

TEST(BlockedCrossbar, RouteColumnThroughChain) {
  BlockedCrossbar xb(CrossbarConfig{3, 4, 32});
  xb.interconnect(0).set_shift(2);
  xb.interconnect(1).set_shift(3);
  EXPECT_EQ(xb.route_column(0, 1, 10), 12);
  EXPECT_EQ(xb.route_column(0, 2, 10), 15);  // Both hops accumulate.
  EXPECT_EQ(xb.route_column(2, 0, 15), 10);  // Reverse path inverts.
  EXPECT_EQ(xb.route_column(1, 1, 7), 7);    // Same block: identity.
}

TEST(BlockedCrossbar, RouteColumnOffEdge) {
  BlockedCrossbar xb(CrossbarConfig{2, 4, 8});
  xb.interconnect(0).set_shift(6);
  EXPECT_EQ(xb.route_column(0, 1, 5), -1);
}

TEST(BlockedCrossbar, AggregateCounters) {
  BlockedCrossbar xb(CrossbarConfig{2, 4, 8});
  xb.set(CellAddr{0, 0, 0}, true);
  xb.set(CellAddr{1, 0, 0}, true);
  xb.set(CellAddr{1, 0, 0}, false);
  EXPECT_EQ(xb.total_writes(), 3u);
  EXPECT_EQ(xb.total_switches(), 3u);
}

TEST(BlockedCrossbar, SharedDecodersIndependentOfBlockCount) {
  // The paper's area argument: adding blocks must not add decoders.
  BlockedCrossbar small(CrossbarConfig{1, 64, 64});
  BlockedCrossbar large(CrossbarConfig{8, 64, 64});
  EXPECT_EQ(small.shared_decoder_transistors(),
            large.shared_decoder_transistors());
}

TEST(BlockedCrossbar, RejectsEmptyGeometry) {
  EXPECT_THROW(BlockedCrossbar(CrossbarConfig{0, 4, 4}),
               std::invalid_argument);
  EXPECT_THROW(BlockedCrossbar(CrossbarConfig{1, 0, 4}),
               std::invalid_argument);
}

TEST(BlockedCrossbar, RandomizedWordRoundTrip) {
  util::Xoshiro256 rng(3);
  BlockedCrossbar xb(CrossbarConfig{2, 16, 70});
  for (int i = 0; i < 200; ++i) {
    const auto block = rng.next_below(2);
    const auto row = rng.next_below(16);
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(64));
    const auto col = rng.next_below(70 - width);
    const std::uint64_t value = rng.next() & util::low_mask(width);
    xb.write_word(CellAddr{block, row, col}, width, value);
    EXPECT_EQ(xb.read_word(CellAddr{block, row, col}, width), value);
  }
}

}  // namespace
}  // namespace apim::crossbar
