// Golden-result tests for the TPC-H-style queries (src/analytics/tpch.*):
// fixed seeds, committed expected values, exact integer compares — any
// drift in the generator, the operators, the micro-kernels, or the serving
// path that perturbs a query result fails here. A metamorphic companion
// checks row-permutation invariance: shuffling the base tables' rows must
// leave every aggregate-level result untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "analytics/runner.hpp"
#include "analytics/tpch.hpp"
#include "core/config.hpp"
#include "util/rng.hpp"

namespace {

using apim::analytics::AggRow;
using apim::analytics::Q3Result;
using apim::analytics::Q6Result;
using apim::analytics::Runner;
using apim::analytics::RunnerConfig;
using apim::analytics::Table;
using apim::analytics::TpchConfig;
using apim::analytics::TpchTables;

Runner make_runner(apim::core::Backend backend) {
  RunnerConfig cfg;
  cfg.server.streams = 2;
  cfg.server.lanes_per_stream = 16;
  cfg.server.queue_capacity = 64;
  cfg.server.batch_window = 500;
  cfg.server.device.backend = backend;
  return Runner(cfg);
}

/// FNV-1a digest over a stream of words: the committed fingerprint of the
/// full structured results (per-group rows, sorted revenues).
class Digest {
 public:
  void add(std::uint64_t v) {
    for (unsigned i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 1099511628211ull;
    }
  }
  void add_rows(const std::vector<AggRow>& rows) {
    add(rows.size());
    for (const AggRow& r : rows) {
      add(r.key);
      add(r.count);
      add(r.sum);
      add(r.min);
      add(r.max);
      add(r.avg_q);
      add(r.avg_r);
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};

struct QueryResults {
  Q6Result q6;
  std::vector<AggRow> q1;
  Q3Result q3;
};

QueryResults run_queries(Runner& runner, const TpchTables& t) {
  QueryResults r;
  r.q6 = apim::analytics::q6_revenue(runner, t);
  r.q1 = apim::analytics::q1_pricing_summary(runner, t);
  r.q3 = apim::analytics::q3_shipping_priority(runner, t);
  return r;
}

std::uint64_t digest_of(const QueryResults& r) {
  Digest d;
  d.add(r.q6.matching_rows);
  d.add(r.q6.revenue);
  d.add_rows(r.q1);
  d.add(r.q3.qualifying_orders);
  d.add(r.q3.join_pairs);
  d.add_rows(r.q3.by_cust);
  d.add(r.q3.revenue_sorted.size());
  for (const std::uint64_t v : r.q3.revenue_sorted) d.add(v);
  return d.value();
}

/// Committed goldens: captured from the seed-pinned generator and the
/// exact operators; all three backends must reproduce them bit for bit.
struct Golden {
  std::uint64_t seed;
  std::uint64_t lineitem_rows;
  std::uint64_t q6_matching;
  std::uint64_t q6_revenue;
  std::uint64_t q1_groups;
  std::uint64_t q3_orders;
  std::uint64_t q3_pairs;
  std::uint64_t digest;
};

constexpr Golden kGoldens[] = {
    {1, 122, 39, 64835, 7, 28, 70, 12963465657971113130ull},
    {2, 102, 28, 48004, 7, 32, 81, 10130348949340463822ull},
};

TpchConfig config_for(std::uint64_t seed) {
  TpchConfig cfg;
  cfg.orders = 48;
  cfg.lines_per_order_max = 5;
  cfg.seed = seed;
  return cfg;
}

TEST(AnalyticsGolden, FixedSeedResults) {
  for (const auto backend :
       {apim::core::Backend::kFast, apim::core::Backend::kBitsliced}) {
    for (const Golden& g : kGoldens) {
      const TpchTables t = apim::analytics::make_tables(config_for(g.seed));
      Runner runner = make_runner(backend);
      const QueryResults r = run_queries(runner, t);
      EXPECT_EQ(t.lineitem.rows(), g.lineitem_rows) << "seed " << g.seed;
      EXPECT_EQ(r.q6.matching_rows, g.q6_matching) << "seed " << g.seed;
      EXPECT_EQ(r.q6.revenue, g.q6_revenue) << "seed " << g.seed;
      EXPECT_EQ(r.q1.size(), g.q1_groups) << "seed " << g.seed;
      EXPECT_EQ(r.q3.qualifying_orders, g.q3_orders) << "seed " << g.seed;
      EXPECT_EQ(r.q3.join_pairs, g.q3_pairs) << "seed " << g.seed;
      EXPECT_EQ(digest_of(r), g.digest) << "seed " << g.seed;
    }
  }
}

// -- Metamorphic: row-permutation invariance ---------------------------------

Table permute_rows(const Table& in, apim::util::Xoshiro256& rng) {
  std::vector<std::size_t> perm(in.rows());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::shuffle(perm.begin(), perm.end(), rng);
  Table out;
  for (const auto& col : in.columns) {
    apim::analytics::Column c;
    c.name = col.name;
    c.width = col.width;
    c.values.reserve(col.values.size());
    for (const std::size_t src : perm) c.values.push_back(col.values[src]);
    out.columns.push_back(std::move(c));
  }
  return out;
}

void expect_rows_equal(const std::vector<AggRow>& a,
                       const std::vector<AggRow>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << what << " group " << i;
    EXPECT_EQ(a[i].count, b[i].count) << what << " group " << i;
    EXPECT_EQ(a[i].sum, b[i].sum) << what << " group " << i;
    EXPECT_EQ(a[i].min, b[i].min) << what << " group " << i;
    EXPECT_EQ(a[i].max, b[i].max) << what << " group " << i;
    EXPECT_EQ(a[i].avg_q, b[i].avg_q) << what << " group " << i;
    EXPECT_EQ(a[i].avg_r, b[i].avg_r) << what << " group " << i;
  }
}

TEST(AnalyticsGolden, RowPermutationInvariance) {
  const TpchTables base = apim::analytics::make_tables(config_for(1));
  Runner ref_runner = make_runner(apim::core::Backend::kBitsliced);
  const QueryResults ref = run_queries(ref_runner, base);

  apim::util::Xoshiro256 rng(0x5e1ec7);
  for (int round = 0; round < 3; ++round) {
    TpchTables shuffled;
    shuffled.orders = permute_rows(base.orders, rng);
    shuffled.lineitem = permute_rows(base.lineitem, rng);
    Runner runner = make_runner(apim::core::Backend::kBitsliced);
    const QueryResults got = run_queries(runner, shuffled);

    EXPECT_EQ(got.q6.matching_rows, ref.q6.matching_rows);
    EXPECT_EQ(got.q6.revenue, ref.q6.revenue);
    expect_rows_equal(got.q1, ref.q1, "q1");
    EXPECT_EQ(got.q3.qualifying_orders, ref.q3.qualifying_orders);
    EXPECT_EQ(got.q3.join_pairs, ref.q3.join_pairs);
    expect_rows_equal(got.q3.by_cust, ref.q3.by_cust, "q3.by_cust");
    EXPECT_EQ(got.q3.revenue_sorted, ref.q3.revenue_sorted);
  }
}

}  // namespace
