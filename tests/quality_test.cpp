// Tests of the quality metrics and QoS evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "quality/metrics.hpp"
#include "quality/qos.hpp"

namespace apim::quality {
namespace {

TEST(Metrics, PsnrIdenticalIsInfinite) {
  const std::vector<double> a{1, 2, 3};
  EXPECT_TRUE(std::isinf(psnr_db(a, a, 255.0)));
}

TEST(Metrics, PsnrKnownValue) {
  // MSE = 1 against peak 255: PSNR = 20*log10(255) ~ 48.13 dB.
  const std::vector<double> golden{10, 20, 30, 40};
  const std::vector<double> test{11, 19, 31, 39};
  EXPECT_NEAR(psnr_db(golden, test, 255.0), 48.13, 0.01);
}

TEST(Metrics, PsnrDecreasesWithNoise) {
  const std::vector<double> golden{100, 100, 100, 100};
  const std::vector<double> small{101, 99, 101, 99};
  const std::vector<double> large{110, 90, 110, 90};
  EXPECT_GT(psnr_db(golden, small, 255.0), psnr_db(golden, large, 255.0));
}

TEST(Metrics, AverageRelativeError) {
  const std::vector<double> golden{100, 200};
  const std::vector<double> test{110, 180};
  // (0.1 + 0.1) / 2.
  EXPECT_NEAR(average_relative_error(golden, test), 0.10, 1e-12);
}

TEST(Metrics, RelativeErrorFloorGuardsZeros) {
  const std::vector<double> golden{0.0};
  const std::vector<double> test{0.5};
  // Without the floor this would be infinite.
  EXPECT_NEAR(average_relative_error(golden, test, 1.0), 0.5, 1e-12);
}

TEST(Metrics, RmseAndMaxAbs) {
  const std::vector<double> golden{0, 0, 0, 0};
  const std::vector<double> test{3, -4, 0, 0};
  EXPECT_NEAR(rmse(golden, test), 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(max_abs_error(golden, test), 4.0);
}

TEST(Qos, ImageSpecAcceptsAbove30Db) {
  const QosSpec spec = QosSpec::image();
  std::vector<double> golden(100, 128.0);
  std::vector<double> slightly_off(100, 128.0);
  slightly_off[0] = 133.0;  // Tiny MSE -> very high PSNR.
  const QosEvaluation good = evaluate_qos(spec, golden, slightly_off);
  EXPECT_TRUE(good.acceptable);
  EXPECT_GT(good.metric, 30.0);

  std::vector<double> noisy(100);
  for (std::size_t i = 0; i < noisy.size(); ++i)
    noisy[i] = 128.0 + ((i % 2) ? 40.0 : -40.0);
  const QosEvaluation bad = evaluate_qos(spec, golden, noisy);
  EXPECT_FALSE(bad.acceptable);
  EXPECT_LT(bad.metric, 30.0);
}

TEST(Qos, NumericSpecTenPercent) {
  const QosSpec spec = QosSpec::numeric();
  const std::vector<double> golden{1.0, 2.0, 4.0};
  const std::vector<double> within{1.05, 1.9, 4.1};
  EXPECT_TRUE(evaluate_qos(spec, golden, within).acceptable);
  const std::vector<double> outside{1.5, 2.6, 3.0};
  EXPECT_FALSE(evaluate_qos(spec, golden, outside).acceptable);
}

TEST(Qos, LossIsComparableAcrossKinds) {
  // Identical outputs give zero loss for both kinds.
  const std::vector<double> golden{10, 20, 30};
  EXPECT_EQ(evaluate_qos(QosSpec::image(), golden, golden).loss, 0.0);
  EXPECT_EQ(evaluate_qos(QosSpec::numeric(), golden, golden).loss, 0.0);
}

TEST(Qos, KindNames) {
  EXPECT_EQ(to_string(QosKind::kPsnr), "PSNR");
  EXPECT_EQ(to_string(QosKind::kRelativeError), "RelErr");
}

}  // namespace
}  // namespace apim::quality
