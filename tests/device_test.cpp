// Unit tests for the VTEAM device model and the derived energy model.
#include <gtest/gtest.h>

#include "device/energy_model.hpp"
#include "device/vteam.hpp"
#include "util/units.hpp"

namespace apim::device {
namespace {

TEST(Vteam, ResistanceEndpointsMatchParams) {
  const VteamModel dev;
  const auto& p = dev.params();
  EXPECT_DOUBLE_EQ(dev.resistance(p.w_on), p.r_on);
  EXPECT_DOUBLE_EQ(dev.resistance(p.w_off), p.r_off);
  // Midpoint interpolates linearly.
  EXPECT_NEAR(dev.resistance((p.w_on + p.w_off) / 2),
              (p.r_on + p.r_off) / 2, 1.0);
}

TEST(Vteam, ResistanceClampsOutsideRange) {
  const VteamModel dev;
  const auto& p = dev.params();
  EXPECT_DOUBLE_EQ(dev.resistance(p.w_on - 1e-9), p.r_on);
  EXPECT_DOUBLE_EQ(dev.resistance(p.w_off + 1e-9), p.r_off);
}

TEST(Vteam, NoDriftInsideThresholdWindow) {
  const VteamModel dev;
  // Voltages between v_on and v_off must not move the state (non-volatile
  // retention under read disturb).
  for (double v : {-0.9, -0.3, 0.0, 0.3, 0.9}) {
    EXPECT_EQ(dev.state_derivative(1e-9, v), 0.0) << "v=" << v;
  }
}

TEST(Vteam, DerivativeSignsFollowVoltagePolarity) {
  const VteamModel dev;
  EXPECT_GT(dev.state_derivative(1e-9, 2.0), 0.0);   // RESET direction.
  EXPECT_LT(dev.state_derivative(1e-9, -2.0), 0.0);  // SET direction.
}

TEST(Vteam, SwitchingCompletesWithinOneMagicCycleAtWriteVoltage) {
  // Calibration requirement: both transitions finish within the paper's
  // 1.1 ns MAGIC cycle at the nominal 2 V execution voltage.
  const VteamModel dev;
  const SwitchingEvent reset = dev.integrate_reset(2.0);
  const SwitchingEvent set = dev.integrate_set(-2.0);
  ASSERT_TRUE(reset.completed);
  ASSERT_TRUE(set.completed);
  EXPECT_LE(reset.time_s, util::kMagicCycleNs * 1e-9);
  EXPECT_LE(set.time_s, util::kMagicCycleNs * 1e-9);
}

TEST(Vteam, SubThresholdVoltageNeverSwitches) {
  const VteamModel dev;
  const SwitchingEvent e = dev.integrate_reset(0.5);  // Below v_off = 1 V.
  EXPECT_FALSE(e.completed);
  EXPECT_EQ(e.energy_pj, 0.0);
}

TEST(Vteam, HigherVoltageSwitchesFaster) {
  const VteamModel dev;
  const SwitchingEvent slow = dev.integrate_reset(1.5);
  const SwitchingEvent fast = dev.integrate_reset(3.0);
  ASSERT_TRUE(slow.completed && fast.completed);
  EXPECT_LT(fast.time_s, slow.time_s);
}

TEST(Vteam, SwitchingEnergyIsPositiveAndSubPicojoule) {
  // With RON = 10 kOhm the traversal dissipates femtojoules — the reason
  // PIM energy is dominated by periphery, as the literature reports.
  const VteamModel dev;
  const SwitchingEvent e = dev.integrate_reset(2.0);
  EXPECT_GT(e.energy_pj, 0.0);
  EXPECT_LT(e.energy_pj, 1.0);
}

TEST(Vteam, ConductionEnergyScalesWithDurationAndResistance) {
  const VteamModel dev;
  const auto& p = dev.params();
  const double e1 = dev.conduction_energy_pj(p.w_on, 1.0, 1e-9);
  const double e2 = dev.conduction_energy_pj(p.w_on, 1.0, 2e-9);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-12);
  const double e_off = dev.conduction_energy_pj(p.w_off, 1.0, 1e-9);
  EXPECT_NEAR(e1 / e_off, p.r_off / p.r_on, 1e-6);
}

TEST(EnergyModel, DerivedValuesAreOrdered) {
  const EnergyModel& em = EnergyModel::paper_defaults();
  // A conducting ('1') input burns far more than a blocked ('0') input:
  // the RON/ROFF ratio is 1000x.
  EXPECT_GT(em.e_input_on_pj, 100.0 * em.e_input_off_pj);
  EXPECT_GT(em.e_switch_pj, 0.0);
  EXPECT_GT(em.e_init_pj, 0.0);
  EXPECT_GT(em.e_read_pj, 0.0);
  // Majority sensing activates three rows plus the comparator.
  EXPECT_GT(em.e_maj_pj, em.e_read_pj);
  EXPECT_GT(em.e_cycle_overhead_pj, 0.0);
}

TEST(EnergyModel, NorEnergyComposition) {
  const EnergyModel& em = EnergyModel::paper_defaults();
  const double base = em.nor_energy_pj(2, 1, false);
  EXPECT_NEAR(base, 2 * em.e_input_on_pj + em.e_input_off_pj, 1e-15);
  EXPECT_NEAR(em.nor_energy_pj(2, 1, true) - base, em.e_switch_pj, 1e-15);
}

TEST(EnergyModel, WriteEnergyComposition) {
  const EnergyModel& em = EnergyModel::paper_defaults();
  EXPECT_NEAR(em.write_energy_pj(false), em.e_write_driver_pj, 1e-15);
  EXPECT_NEAR(em.write_energy_pj(true),
              em.e_write_driver_pj + em.e_switch_pj, 1e-15);
}

TEST(EnergyModel, PaperDefaultsAreSingleton) {
  EXPECT_EQ(&EnergyModel::paper_defaults(), &EnergyModel::paper_defaults());
}

TEST(EnergyModel, FromDeviceRespectsPeriphery) {
  const VteamModel dev;
  PeripheryParams periphery;
  periphery.controller_energy_per_cycle_pj = 1.25;
  const EnergyModel em =
      EnergyModel::from_device(dev, OperatingPoint{}, periphery);
  EXPECT_DOUBLE_EQ(em.e_cycle_overhead_pj, 1.25);
}

}  // namespace
}  // namespace apim::device
