// Per-kernel golden-path validation: each application's reference output
// is checked against independently-derived expectations (hand-computed
// responses, analytic identities), not just against itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "apps/app.hpp"
#include "apps/gemm.hpp"
#include "apps/image_kernels.hpp"
#include "apps/signal_kernels.hpp"
#include "util/stats.hpp"

namespace apim::apps {
namespace {

// ------------------------------------------------------------- images -----

// The image apps generate their own synthetic input; these tests exploit
// structural invariants that hold for ANY input.

TEST(GoldenSobel, ResponseIsNonNegativeAndBounded) {
  SobelApp app;
  app.generate(1024, 5);
  for (double v : app.run_golden()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 255.0);
  }
}

TEST(GoldenSobel, InteriorOfConstantRegionsIsSilent) {
  // The synthetic generator stamps solid rectangles/discs; gradient inside
  // them is zero. Rather than locating them, check the global property:
  // a significant share of pixels must have exactly zero response (flat
  // interiors exist), and a significant share must respond (edges exist).
  SobelApp app;
  app.generate(64 * 64, 9);
  const auto out = app.run_golden();
  std::size_t zeros = 0, strong = 0;
  for (double v : out) {
    if (v == 0.0) ++zeros;
    if (v >= 8.0) ++strong;
  }
  EXPECT_GT(zeros, out.size() / 10);
  EXPECT_GT(strong, out.size() / 200);
}

TEST(GoldenRobert, DetectsDiagonalSteps) {
  // Roberts cross is built on diagonal differences: gx = p(x,y) -
  // p(x+1,y+1). Its response must correlate with Sobel's on the same
  // input (both are edge energies).
  RobertApp robert;
  SobelApp sobel;
  robert.generate(48 * 48, 11);
  sobel.generate(48 * 48, 11);
  const auto r = robert.run_golden();
  const auto s = sobel.run_golden();
  // Count agreement on "edge vs flat" classification.
  std::size_t agree = 0;
  for (std::size_t i = 0; i < r.size(); ++i)
    if ((r[i] > 16.0) == (s[i] > 16.0)) ++agree;
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(r.size()), 0.7);
}

TEST(GoldenSharpen, IsIdentityOnFlatRegionsAndBoostsEdges) {
  SharpenApp app;
  app.generate(48 * 48, 13);
  const auto out = app.run_golden();
  const util::Image input = util::make_synthetic_image(48, 48, 13);
  // On flat neighbourhoods output equals input; overall the output must
  // have at least the input's contrast (unsharp masking amplifies).
  util::RunningStats in_stats, out_stats;
  std::size_t identical = 0;
  for (std::size_t y = 0; y < 48; ++y) {
    for (std::size_t x = 0; x < 48; ++x) {
      const double in_v = input.at(x, y);
      const double out_v = out[y * 48 + x];
      in_stats.add(in_v);
      out_stats.add(out_v);
      if (in_v == out_v) ++identical;
    }
  }
  EXPECT_GT(identical, out.size() / 20);  // Flat interiors pass through.
  EXPECT_GE(out_stats.stddev(), in_stats.stddev());  // Contrast boosted.
}

// ---------------------------------------------------------------- FFT -----

TEST(GoldenFft, ParsevalEnergyConsistency) {
  // With per-stage halving the pipeline computes X_k / n, so Parseval
  // (sum|X|^2 = n * sum|x|^2) becomes: spectral energy = sum|x|^2 / n =
  // E[|x|^2] for n samples. Inputs are uniform in [-0.9, 0.9] per
  // component: E[|x|^2] = 2 * 0.81/3 = 0.54. Statistical tolerance 50%.
  FftApp app;
  app.generate(64, 17);
  const auto out = app.run_golden();  // Interleaved re, im; L = 64.
  const std::size_t n = out.size() / 2;
  ASSERT_EQ(n, 64u);
  double spectral_energy = 0.0;
  for (std::size_t k = 0; k < n; ++k)
    spectral_energy += out[2 * k] * out[2 * k] +
                       out[2 * k + 1] * out[2 * k + 1];
  const double expected = 0.54;
  EXPECT_NEAR(spectral_energy, expected, expected * 0.5);
}

TEST(GoldenFft, LinearityUnderScaling) {
  // The transform is linear: doubling the input index range (same seed)
  // preserves the energy relation; cheap sanity rather than deep math.
  FftApp small, large;
  small.generate(64, 19);
  large.generate(128, 19);
  EXPECT_EQ(small.run_golden().size(), 128u);
  EXPECT_EQ(large.run_golden().size(), 256u);
}

// ---------------------------------------------------------------- DWT -----

TEST(GoldenDwt, EnergyIsApproximatelyPreserved) {
  // Orthonormal Haar preserves energy; fixed-point truncation loses a
  // little. Compare coefficient energy against signal energy.
  DwtHaarApp app;
  app.generate(1024, 23);
  const auto coeffs = app.run_golden();
  double coeff_energy = 0.0;
  for (double c : coeffs) coeff_energy += c * c;
  // For a smooth (random-walk) input the transform compacts energy: the
  // largest 10% of coefficients must carry most of the total energy.
  std::vector<double> magnitudes;
  magnitudes.reserve(coeffs.size());
  for (double c : coeffs) magnitudes.push_back(c * c);
  std::sort(magnitudes.rbegin(), magnitudes.rend());
  double top_energy = 0.0;
  for (std::size_t i = 0; i < magnitudes.size() / 10; ++i)
    top_energy += magnitudes[i];
  EXPECT_GT(coeff_energy, 0.0);
  EXPECT_GT(top_energy, 0.5 * coeff_energy);
}

TEST(GoldenDwt, DetailCoefficientsAreSmallForSmoothSignals) {
  DwtHaarApp app;
  app.generate(512, 29);
  const auto coeffs = app.run_golden();
  // Level-1 details come first in the output (after the approximation
  // coefficient): they see adjacent-sample differences of a random walk
  // with step <= 0.1, bounded by 0.1/sqrt(2) plus quantization.
  const std::size_t first_level = coeffs.size() / 2;
  for (std::size_t i = 1; i < 1 + first_level; ++i)
    EXPECT_LT(std::abs(coeffs[i]), 0.08) << i;
}

// ------------------------------------------------------------- QuasiR -----

TEST(GoldenQuasiR, OutputsAreUnitIntervalAndWellSpread) {
  QuasiRandomApp app;
  app.generate(4096, 31);
  const auto out = app.run_golden();
  util::RunningStats stats;
  for (double v : out) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    stats.add(v);
  }
  // Low-discrepancy scrambled sequence: mean near 1/2, variance near 1/12.
  EXPECT_NEAR(stats.mean(), 0.5, 0.03);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.015);
}

TEST(GoldenQuasiR, StratificationBeatsRandom) {
  // In any 16-bucket histogram, the scrambled van-der-Corput points are
  // closer to uniform than iid-random spread would typically be.
  QuasiRandomApp app;
  app.generate(2048, 37);
  const auto out = app.run_golden();
  std::vector<int> histogram(16, 0);
  for (double v : out)
    ++histogram[static_cast<std::size_t>(v * 16.0) & 15];
  const double expected = static_cast<double>(out.size()) / 16.0;
  for (int count : histogram)
    EXPECT_NEAR(static_cast<double>(count), expected, expected * 0.35);
}

// --------------------------------------------------------------- GEMM -----

TEST(GoldenGemm, MatchesDoubleMatmulWithinQuantization) {
  GemmApp app;
  app.generate(12 * 12, 41);
  const auto out = app.run_golden();
  ASSERT_EQ(out.size(), app.element_count());
  // Products of Q16 entries in [-0.9, 0.9): every output bounded by
  // side * 0.81.
  const double side = std::sqrt(static_cast<double>(out.size()));
  for (double v : out) EXPECT_LE(std::abs(v), side * 0.81 + 1.0);
}

TEST(GoldenGemm, ExactApimMatchesGolden) {
  GemmApp app;
  app.generate(8 * 8, 43);
  core::ApimDevice device;
  const auto golden = app.run_golden();
  const auto apim = app.run_apim(device);
  ASSERT_EQ(golden.size(), apim.size());
  for (std::size_t i = 0; i < golden.size(); ++i)
    EXPECT_DOUBLE_EQ(golden[i], apim[i]) << i;
  EXPECT_GT(device.stats().multiplies, 0u);
}

TEST(GoldenGemm, InExtensionRegistry) {
  const auto apps = make_extension_applications();
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0]->name(), "GEMM");
  EXPECT_NE(make_application("GEMM"), nullptr);
}

}  // namespace
}  // namespace apim::apps
