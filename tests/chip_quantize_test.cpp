// Tests of the chip-organization model and the quantization helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/chip.hpp"
#include "core/quantize.hpp"

namespace apim::core {
namespace {

TEST(Chip, DefaultGeometryHoldsAGigabyteAndMatchesCalibratedLanes) {
  const ApimChip chip;
  EXPECT_GE(chip.capacity_bytes(), 1024.0 * 1024 * 1024);
  EXPECT_TRUE(chip.fits(1024.0 * 1024 * 1024));
  EXPECT_FALSE(chip.fits(8.0 * 1024 * 1024 * 1024));
  // The default ApimConfig lane count is derived from this organization.
  EXPECT_EQ(chip.parallel_lanes(), ApimConfig{}.parallel_lanes);
}

TEST(Chip, ConfigCarriesLaneCount) {
  ChipGeometry g;
  g.banks = 4;
  g.active_tiles_per_bank = 10;
  const ApimChip chip(g);
  EXPECT_EQ(chip.make_config().parallel_lanes, 40u);
}

TEST(Chip, ProcessingAreaOverhead) {
  // 1 data + 2 processing blocks: two thirds of the cells serve compute.
  const ApimChip chip;
  EXPECT_NEAR(chip.processing_area_overhead(), 2.0 / 3.0, 1e-12);
  ChipGeometry flat;
  flat.blocks_per_tile = 2;
  EXPECT_NEAR(ApimChip(flat).processing_area_overhead(), 0.5, 1e-12);
}

TEST(Chip, CellCountScalesWithGeometry) {
  ChipGeometry g;
  const double base = ApimChip(g).total_cells();
  g.banks *= 2;
  EXPECT_NEAR(ApimChip(g).total_cells(), 2.0 * base, 1.0);
}

TEST(Quantize, ChooseFormatCoversRange) {
  // Pure fractions get all bits as fraction.
  const auto frac = choose_format(0.9, 32);
  EXPECT_EQ(frac.integer_bits, 0u);
  EXPECT_EQ(frac.frac_bits, 32u);
  // Pixel-scale values.
  const auto pixel = choose_format(255.0, 32);
  EXPECT_EQ(pixel.integer_bits, 8u);
  EXPECT_GE(pixel.max_value(), 255.0);
  // Larger ranges shrink the fraction.
  const auto big = choose_format(100000.0, 32);
  EXPECT_EQ(big.integer_bits, 17u);
}

TEST(Quantize, RoundTripAccuracyWithinHalfLsb) {
  const auto fmt = choose_format(1.0, 32);
  const std::vector<double> values{0.125, -0.5, 0.9999, -0.0001, 0.0};
  const auto raws = quantize(values, fmt);
  const auto back = dequantize(raws, fmt);
  const double bound = quantization_error_bound(fmt);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(back[i], values[i], 2.0 * bound) << i;
}

TEST(Quantize, ErrorBoundShrinksWithFraction) {
  EXPECT_LT(quantization_error_bound(util::FixedPointFormat{0, 32}),
            quantization_error_bound(util::FixedPointFormat{16, 16}));
}

TEST(Quantize, RelaxationBoundFallsWithMagnitude) {
  const auto fmt = util::kQ16_16;
  // Bigger operands push products above the relaxed region.
  EXPECT_GT(relaxation_error_bound(0.01, fmt, 32),
            relaxation_error_bound(10.0, fmt, 32));
  // Fewer relax bits, less error.
  EXPECT_GT(relaxation_error_bound(1.0, fmt, 32),
            relaxation_error_bound(1.0, fmt, 16));
}

TEST(Quantize, FormatChoiceMinimizesRelaxationError) {
  // The point of choose_format: for unit-scale data, the full-fraction
  // format keeps relaxed-multiply error orders below a Q16.16 mapping.
  const auto chosen = choose_format(1.0, 32);
  const double with_chosen = relaxation_error_bound(0.5, chosen, 24);
  const double with_q16 = relaxation_error_bound(0.5, util::kQ16_16, 24);
  EXPECT_LT(with_chosen, with_q16 / 1000.0);
}

}  // namespace
}  // namespace apim::core
