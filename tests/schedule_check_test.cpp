// Tests of the MAGIC schedule verifier: the real arithmetic schedules must
// verify clean (with cycle counts pinned to the latency model), synthesized
// rule violations must each produce their diagnostic, and a perturbed
// latency-model constant must turn into a hard failure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/schedule_check.hpp"
#include "arith/approx.hpp"
#include "arith/compare_units.hpp"
#include "arith/inmemory_units.hpp"
#include "arith/latency_model.hpp"
#include "arith/tree_plan.hpp"
#include "crossbar/scratch_allocator.hpp"
#include "device/energy_model.hpp"
#include "magic/trace.hpp"
#include "util/bitops.hpp"

namespace apim {
namespace {

using analysis::Diagnostic;
using analysis::Report;
using analysis::RowRange;
using analysis::ScheduleCheckOptions;
using analysis::Severity;
using crossbar::CellAddr;
using magic::CellAccess;
using magic::CellEvent;
using magic::OpKind;
using magic::Tracer;

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

bool has_rule(const Report& report, const std::string& rule) {
  for (const Diagnostic& d : report.diagnostics())
    if (d.rule == rule) return true;
  return false;
}

/// Geometry of inmemory_serial_add: block 1 holds the operands in rows
/// 0-1, FA scratch in rows 2-13, and the grounded '0' reference cell at
/// row 14 (see run_serial_add in arith/inmemory_units.cpp).
ScheduleCheckOptions serial_add_options() {
  ScheduleCheckOptions opts;
  opts.preloaded.push_back(RowRange{1, 0, 2});
  opts.preloaded.push_back(RowRange{1, 14, 15});
  opts.scratch.push_back(RowRange{1, 2, 14});
  opts.rows_per_block = 16;
  return opts;
}

/// Geometry of inmemory_relaxed_add: operands in rows 0-1 of block 1,
/// carry row 2 (col 0 is the '0' reference), relaxed-sum row 3, FA scratch
/// rows 4-15.
ScheduleCheckOptions relaxed_add_options() {
  ScheduleCheckOptions opts;
  opts.preloaded.push_back(RowRange{1, 0, 2});
  opts.preloaded.push_back(RowRange{1, 2, 3});
  opts.scratch.push_back(RowRange{1, 2, 16});
  opts.rows_per_block = 20;
  return opts;
}

/// Multiply/tree geometry is plan-dependent (partial-product rows and the
/// final-add scratch move with the operand's popcount), so the processing
/// blocks 1-2 are declared preloaded wholesale: the crossbar starts
/// zeroed, so reading an unwritten cell there is a legitimate '0'. The
/// strict rules that matter — re-evaluating a NOR output without re-init
/// (kEvaluated state), same-cycle hazards, duplicate destinations — are
/// unaffected by the preloaded declaration.
ScheduleCheckOptions plan_dependent_options() {
  ScheduleCheckOptions opts;
  opts.preloaded.push_back(RowRange{0, 0, 2});
  opts.preloaded.push_back(RowRange{1, 0, 1u << 12});
  opts.preloaded.push_back(RowRange{2, 0, 1u << 12});
  return opts;
}

// -- Clean schedules: the real units verify with model-exact cycles. --------

class ArithScheduleCheck : public ::testing::TestWithParam<unsigned> {};

TEST_P(ArithScheduleCheck, SerialAddVerifiesCleanAtModelCycles) {
  const unsigned n = GetParam();
  Tracer tracer;
  tracer.enable_cell_events(true);
  const arith::InMemoryResult r = arith::inmemory_serial_add(
      0x5A5A5A5Aull & util::low_mask(n), 0x3C3C3C3Cull & util::low_mask(n), n,
      em(), &tracer);
  EXPECT_EQ(r.cycles, arith::serial_add_cycles(n));

  const Report schedule = analysis::check_schedule(tracer,
                                                   serial_add_options());
  EXPECT_TRUE(schedule.empty()) << schedule.format();
  const Report cycles = analysis::check_cycle_claim(
      tracer, arith::serial_add_cycles(n), "serial add");
  EXPECT_TRUE(cycles.empty()) << cycles.format();
}

TEST_P(ArithScheduleCheck, ExactMultiplyVerifiesCleanAtModelCycles) {
  const unsigned n = GetParam();
  // Alternating bits: popcount n/2 exercises PPG + tree + final add.
  const std::uint64_t a = 0x6DB6DB6Dull & util::low_mask(n);
  const std::uint64_t b = 0x55555555ull & util::low_mask(n);
  const unsigned p = static_cast<unsigned>(util::popcount(b));
  Tracer tracer;
  tracer.enable_cell_events(true);
  const arith::ApproxConfig cfg;  // Exact: no relax, no mask.
  const arith::InMemoryResult r =
      arith::inmemory_multiply(a, b, n, cfg, em(), &tracer);
  EXPECT_EQ(r.value, (a * b) & util::low_mask(2 * n));
  EXPECT_EQ(r.cycles, arith::multiply_cycles(n, p, cfg));

  const Report schedule =
      analysis::check_schedule(tracer, plan_dependent_options());
  EXPECT_TRUE(schedule.empty()) << schedule.format();
  const Report cycles = analysis::check_cycle_claim(
      tracer, arith::multiply_cycles(n, p, cfg), "exact multiply");
  EXPECT_TRUE(cycles.empty()) << cycles.format();
}

/// Geometry of inmemory_compare: operands a, b in rows 0-1 of block 1,
/// the inverted subtrahend image in row 2, serial-add scratch rows 3-14
/// and the grounded '0' reference cell at row 15.
ScheduleCheckOptions compare_options() {
  ScheduleCheckOptions opts;
  opts.preloaded.push_back(RowRange{1, 0, 2});
  opts.preloaded.push_back(RowRange{1, 15, 16});
  opts.scratch.push_back(RowRange{1, 2, 15});
  opts.rows_per_block = 16;
  return opts;
}

TEST_P(ArithScheduleCheck, CompareVerifiesCleanAtModelCycles) {
  const unsigned n = GetParam();
  Tracer tracer;
  tracer.enable_cell_events(true);
  const arith::InMemoryResult r = arith::inmemory_compare(
      0x5A5A5A5Aull & util::low_mask(n), 0x3C3C3C3Cull & util::low_mask(n), n,
      em(), &tracer);
  EXPECT_EQ(r.cycles, arith::compare_cycles(n));  // 12n + 3.

  const Report schedule = analysis::check_schedule(tracer, compare_options());
  EXPECT_TRUE(schedule.empty()) << schedule.format();
  const Report cycles = analysis::check_cycle_claim(
      tracer, arith::compare_cycles(n), "three-way compare");
  EXPECT_TRUE(cycles.empty()) << cycles.format();
}

TEST_P(ArithScheduleCheck, PopcountVerifiesCleanAtPlannedCycles) {
  const unsigned n = GetParam();
  const std::uint64_t x = 0x6DB6DB6Dull & util::low_mask(n);
  Tracer tracer;
  tracer.enable_cell_events(true);
  const arith::InMemoryResult r = arith::inmemory_popcount(x, n, em(),
                                                           &tracer);
  EXPECT_EQ(r.value, static_cast<std::uint64_t>(util::popcount(x)));

  // The claim is the width-capped tree law: 13 per 3:2 stage over the n
  // 1-bit operands plus the final serial add at the planner's surviving
  // width (bounded by popcount_width_cap, never the naive n + stages).
  const std::vector<unsigned> widths(n, 1u);
  const arith::TreePlan plan = arith::plan_tree_reduction(
      widths, arith::popcount_width_cap(n), /*block_a=*/1, /*block_b=*/2);
  const unsigned n_final =
      std::max(plan.operands[plan.final_ids[0]].width,
               plan.operands[plan.final_ids[1]].width);
  const util::Cycles claimed = arith::tree_add_cycles(n, 1, n_final);
  EXPECT_EQ(r.cycles, claimed);

  const Report schedule =
      analysis::check_schedule(tracer, plan_dependent_options());
  EXPECT_TRUE(schedule.empty()) << schedule.format();
  const Report cycles =
      analysis::check_cycle_claim(tracer, claimed, "popcount");
  EXPECT_TRUE(cycles.empty()) << cycles.format();
}

INSTANTIATE_TEST_SUITE_P(Widths, ArithScheduleCheck,
                         ::testing::Values(4u, 8u, 16u, 32u));

TEST(ScheduleCheck, CsaVerifiesCleanAt13Cycles) {
  Tracer tracer;
  tracer.enable_cell_events(true);
  const arith::CsaOutcome out =
      arith::inmemory_csa(0xAB, 0xCD, 0xEF, 8, em(), &tracer);
  EXPECT_EQ(out.cycles, arith::csa_cycles());

  ScheduleCheckOptions opts;
  opts.preloaded.push_back(RowRange{1, 0, 3});  // Three operand rows.
  opts.scratch.push_back(RowRange{1, 3, 15});
  const Report schedule = analysis::check_schedule(tracer, opts);
  EXPECT_TRUE(schedule.empty()) << schedule.format();
  const Report cycles =
      analysis::check_cycle_claim(tracer, arith::csa_cycles(), "3:2 stage");
  EXPECT_TRUE(cycles.empty()) << cycles.format();
}

TEST(ScheduleCheck, RelaxedAddVerifiesCleanAtModelCycles) {
  const unsigned n = 16, m = 8;
  Tracer tracer;
  tracer.enable_cell_events(true);
  const arith::InMemoryResult r =
      arith::inmemory_relaxed_add(0xBEEF, 0xF00D, n, m, em(), &tracer);
  EXPECT_EQ(r.cycles, arith::final_add_cycles(n, m));

  const Report schedule =
      analysis::check_schedule(tracer, relaxed_add_options());
  EXPECT_TRUE(schedule.empty()) << schedule.format();
  const Report cycles = analysis::check_cycle_claim(
      tracer, arith::final_add_cycles(n, m), "relaxed add");
  EXPECT_TRUE(cycles.empty()) << cycles.format();
}

TEST(ScheduleCheck, TreeAddVerifiesClean) {
  Tracer tracer;
  tracer.enable_cell_events(true);
  const std::vector<std::uint64_t> values{12, 34, 56, 78, 90};
  const std::vector<unsigned> widths{8, 8, 8, 8, 8};
  const arith::InMemoryResult r =
      arith::inmemory_tree_add(values, widths, 11, em(), &tracer);
  EXPECT_EQ(r.value, 12u + 34 + 56 + 78 + 90);
  const Report schedule =
      analysis::check_schedule(tracer, plan_dependent_options());
  EXPECT_TRUE(schedule.empty()) << schedule.format();
}

// -- Cycle-accounting drift: a perturbed model constant must fail. ----------

TEST(ScheduleCheck, PerturbedLatencyConstantFailsTheClaim) {
  const unsigned n = 8;
  Tracer tracer;
  tracer.enable_cell_events(true);
  (void)arith::inmemory_serial_add(21, 21, n, em(), &tracer);

  // Off-by-one perturbation (as if the "+1" init cycle were dropped from
  // serial_add_cycles) and a coefficient perturbation (12n -> 13n): both
  // must produce a cycle-model-drift error, proving the check would catch
  // a latency-model edit that the schedule didn't follow.
  const Report off_by_one = analysis::check_cycle_claim(
      tracer, arith::serial_add_cycles(n) - 1, "perturbed serial add");
  EXPECT_TRUE(has_rule(off_by_one, "cycle-model-drift"))
      << off_by_one.format();
  const Report coefficient = analysis::check_cycle_claim(
      tracer, 13ull * n + 1, "perturbed serial add");
  EXPECT_TRUE(has_rule(coefficient, "cycle-model-drift"))
      << coefficient.format();
  // The unperturbed claim still holds.
  EXPECT_TRUE(analysis::check_cycle_claim(tracer,
                                          arith::serial_add_cycles(n),
                                          "serial add")
                  .empty());
}

TEST(ScheduleCheck, PerturbedCompareConstantFailsTheClaim) {
  const unsigned n = 8;
  Tracer tracer;
  tracer.enable_cell_events(true);
  (void)arith::inmemory_compare(0xAB, 0xCD, n, em(), &tracer);

  // As if the complement pass (+2) were dropped from compare_cycles, and
  // as if the serial-add coefficient drifted (12n -> 13n).
  const Report dropped_pass = analysis::check_cycle_claim(
      tracer, arith::compare_cycles(n) - 2, "perturbed compare");
  EXPECT_TRUE(has_rule(dropped_pass, "cycle-model-drift"))
      << dropped_pass.format();
  const Report coefficient = analysis::check_cycle_claim(
      tracer, 13ull * n + 3, "perturbed compare");
  EXPECT_TRUE(has_rule(coefficient, "cycle-model-drift"))
      << coefficient.format();
  EXPECT_TRUE(analysis::check_cycle_claim(tracer, arith::compare_cycles(n),
                                          "three-way compare")
                  .empty());
}

TEST(ScheduleCheck, UncappedPopcountWidthFailsTheClaim) {
  const unsigned n = 8;
  Tracer tracer;
  tracer.enable_cell_events(true);
  (void)arith::inmemory_popcount(0xB7, n, em(), &tracer);

  // The naive final width n_ops + stages ignores popcount_width_cap; the
  // resulting over-wide serial add claim must register as drift.
  const util::Cycles uncapped = arith::tree_add_cycles(
      n, 1, arith::popcount_width_cap(n) + 1);
  const Report report =
      analysis::check_cycle_claim(tracer, uncapped, "uncapped popcount");
  EXPECT_TRUE(has_rule(report, "cycle-model-drift")) << report.format();
}

// -- Synthesized rule violations (events forged directly on a Tracer). ------

/// A tracer with cell events on, primed with `events`.
Tracer forged(const std::vector<CellEvent>& events) {
  Tracer tracer;
  tracer.enable_cell_events(true);
  for (const CellEvent& e : events) tracer.record_cell(e);
  return tracer;
}

constexpr CellAddr kOut{0, 4, 0};
constexpr CellAddr kOut2{0, 4, 1};
constexpr CellAddr kIn{0, 0, 0};

/// Options declaring row 0 (operand inputs) preloaded so only the rule
/// under test fires.
ScheduleCheckOptions inputs_preloaded() {
  ScheduleCheckOptions opts;
  opts.preloaded.push_back(RowRange{0, 0, 1});
  return opts;
}

TEST(ScheduleCheckRules, NorWithoutInitOnUntouchedCell) {
  const Tracer t = forged({
      {1, OpKind::kNor, CellAccess::kWrite, kOut},
      {1, OpKind::kNor, CellAccess::kRead, kIn},
  });
  const Report report = analysis::check_schedule(t, inputs_preloaded());
  EXPECT_TRUE(has_rule(report, "nor-without-init")) << report.format();
}

TEST(ScheduleCheckRules, NorWithoutReinitAfterEvaluation) {
  const Tracer t = forged({
      {1, OpKind::kInit, CellAccess::kInit, kOut},
      {2, OpKind::kNor, CellAccess::kWrite, kOut},
      {2, OpKind::kNor, CellAccess::kRead, kIn},
      {3, OpKind::kNor, CellAccess::kWrite, kOut},  // No re-init.
      {3, OpKind::kNor, CellAccess::kRead, kIn},
  });
  const Report report = analysis::check_schedule(t, inputs_preloaded());
  EXPECT_TRUE(has_rule(report, "nor-without-init")) << report.format();
}

TEST(ScheduleCheckRules, ProperlyReinitializedScheduleIsClean) {
  const Tracer t = forged({
      {1, OpKind::kInit, CellAccess::kInit, kOut},
      {2, OpKind::kNor, CellAccess::kWrite, kOut},
      {2, OpKind::kNor, CellAccess::kRead, kIn},
      {3, OpKind::kInit, CellAccess::kInit, kOut},
      {4, OpKind::kNor, CellAccess::kWrite, kOut},
      {4, OpKind::kNor, CellAccess::kRead, kIn},
  });
  const Report report = analysis::check_schedule(t, inputs_preloaded());
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(ScheduleCheckRules, NorOnDriverWrittenCellWarns) {
  const Tracer t = forged({
      {1, OpKind::kWrite, CellAccess::kWrite, kOut},
      {2, OpKind::kNor, CellAccess::kWrite, kOut},
      {2, OpKind::kNor, CellAccess::kRead, kIn},
  });
  const Report report = analysis::check_schedule(t, inputs_preloaded());
  EXPECT_TRUE(has_rule(report, "nor-on-written")) << report.format();
  EXPECT_FALSE(report.has_errors()) << report.format();
}

TEST(ScheduleCheckRules, UninitializedReadIsFlagged) {
  const Tracer t = forged({
      {1, OpKind::kRead, CellAccess::kRead, CellAddr{0, 9, 3}},
  });
  const Report report = analysis::check_schedule(t, {});
  EXPECT_TRUE(has_rule(report, "uninit-read")) << report.format();
}

TEST(ScheduleCheckRules, SameCycleReadWriteHazard) {
  // One batch cycle both reads kOut (as an input of the second NOR) and
  // writes it (as the first NOR's output): evaluation order is undefined.
  const Tracer t = forged({
      {1, OpKind::kInit, CellAccess::kInit, kOut},
      {1, OpKind::kInit, CellAccess::kInit, kOut2},
      {2, OpKind::kNor, CellAccess::kWrite, kOut},
      {2, OpKind::kNor, CellAccess::kRead, kIn},
      {2, OpKind::kNor, CellAccess::kWrite, kOut2},
      {2, OpKind::kNor, CellAccess::kRead, kOut},
  });
  const Report report = analysis::check_schedule(t, inputs_preloaded());
  EXPECT_TRUE(has_rule(report, "same-cycle-hazard")) << report.format();
}

TEST(ScheduleCheckRules, ConsecutiveCyclesAreNotAHazard) {
  const Tracer t = forged({
      {1, OpKind::kInit, CellAccess::kInit, kOut},
      {1, OpKind::kInit, CellAccess::kInit, kOut2},
      {2, OpKind::kNor, CellAccess::kWrite, kOut},
      {2, OpKind::kNor, CellAccess::kRead, kIn},
      {3, OpKind::kNor, CellAccess::kWrite, kOut2},
      {3, OpKind::kNor, CellAccess::kRead, kOut},
  });
  const Report report = analysis::check_schedule(t, inputs_preloaded());
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(ScheduleCheckRules, DuplicateDestinationInOneBatch) {
  const Tracer t = forged({
      {1, OpKind::kInit, CellAccess::kInit, kOut},
      {2, OpKind::kNor, CellAccess::kWrite, kOut},
      {2, OpKind::kNor, CellAccess::kRead, kIn},
      {2, OpKind::kNor, CellAccess::kWrite, kOut},  // Second op, same dst.
      {2, OpKind::kNor, CellAccess::kRead, kIn},
  });
  const Report report = analysis::check_schedule(t, inputs_preloaded());
  EXPECT_TRUE(has_rule(report, "duplicate-dst")) << report.format();
}

TEST(ScheduleCheckRules, QuarantinedBandTouchViaAllocator) {
  crossbar::RotatingScratchAllocator alloc(/*first_row=*/2, /*rows=*/12,
                                           /*band_rows=*/4);
  alloc.quarantine_band(1);  // Rows 6..9 of the processing block.

  ScheduleCheckOptions opts;
  analysis::append_quarantined_bands(alloc, /*block=*/0, opts.quarantined);
  ASSERT_EQ(opts.quarantined.size(), 1u);
  EXPECT_EQ(opts.quarantined[0].row_begin, 6u);
  EXPECT_EQ(opts.quarantined[0].row_end, 10u);

  const Tracer t = forged({
      {1, OpKind::kInit, CellAccess::kInit, CellAddr{0, 7, 0}},
  });
  const Report report = analysis::check_schedule(t, opts);
  EXPECT_TRUE(has_rule(report, "quarantine-touch")) << report.format();

  // The same touch in a healthy band is silent.
  const Tracer ok = forged({
      {1, OpKind::kInit, CellAccess::kInit, CellAddr{0, 3, 0}},
  });
  EXPECT_FALSE(has_rule(analysis::check_schedule(ok, opts),
                        "quarantine-touch"));
}

TEST(ScheduleCheckRules, SpareRowTouchIsFlagged) {
  ScheduleCheckOptions opts;
  opts.rows_per_block = 16;
  const Tracer t = forged({
      {1, OpKind::kInit, CellAccess::kInit, CellAddr{0, 16, 0}},
  });
  const Report report = analysis::check_schedule(t, opts);
  EXPECT_TRUE(has_rule(report, "spare-touch")) << report.format();
}

TEST(ScheduleCheckRules, ScratchLeakIsFlagged) {
  ScheduleCheckOptions opts;
  opts.scratch.push_back(RowRange{0, 2, 4});
  const Tracer t = forged({
      {1, OpKind::kInit, CellAccess::kInit, CellAddr{0, 5, 0}},
  });
  const Report report = analysis::check_schedule(t, opts);
  EXPECT_TRUE(has_rule(report, "scratch-leak")) << report.format();

  // Reads outside scratch are not leaks (only outputs are).
  ScheduleCheckOptions read_opts = opts;
  read_opts.preloaded.push_back(RowRange{0, 5, 6});
  const Tracer reads = forged({
      {1, OpKind::kRead, CellAccess::kRead, CellAddr{0, 5, 0}},
  });
  EXPECT_FALSE(has_rule(analysis::check_schedule(reads, read_opts),
                        "scratch-leak"));
}

TEST(ScheduleCheckRules, OverflowedTraceIsRejected) {
  Tracer small(2);  // Cell capacity 32.
  small.enable_cell_events(true);
  for (std::size_t i = 0; i < 40; ++i)
    small.record_cell({1, OpKind::kInit, CellAccess::kInit,
                       CellAddr{0, 0, i % 8}});
  ASSERT_TRUE(small.overflowed());
  const Report report = analysis::check_schedule(small, {});
  EXPECT_TRUE(has_rule(report, "trace-overflow")) << report.format();
  const Report cycles = analysis::check_cycle_claim(small, 1, "anything");
  EXPECT_TRUE(has_rule(cycles, "trace-overflow")) << cycles.format();
}

TEST(ScheduleCheckRules, DisabledCellEventsWarnInsteadOfPassingSilently) {
  Tracer tracer;  // Row-resolved mode off.
  const Report report = analysis::check_schedule(tracer, {});
  EXPECT_TRUE(has_rule(report, "no-cell-events")) << report.format();
  EXPECT_FALSE(report.has_errors());
}

}  // namespace
}  // namespace apim
