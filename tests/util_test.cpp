// Unit tests for src/util: bit primitives, RNG determinism, fixed-point
// conversion, statistics, table/CSV formatting and synthetic images.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/bitops.hpp"
#include "util/csv.hpp"
#include "util/fixed_point.hpp"
#include "util/image.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace apim::util {
namespace {

// ---------------------------------------------------------------- bitops --

TEST(Bitops, BitAndWithBit) {
  EXPECT_EQ(bit(0b1010, 1), 1u);
  EXPECT_EQ(bit(0b1010, 0), 0u);
  EXPECT_EQ(bit(std::uint64_t{1} << 63, 63), 1u);
  EXPECT_EQ(with_bit(0, 5, 1), 0b100000u);
  EXPECT_EQ(with_bit(0b111111, 2, 0), 0b111011u);
}

TEST(Bitops, LowMaskEdges) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(32), 0xFFFFFFFFu);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Bitops, MaskNFullWidthRegression) {
  // n == 64 is the trap: a raw (1ull << 64) - 1 is undefined behaviour and
  // on x86 typically yields 0 instead of all-ones. mask_n must be safe for
  // the whole 0..64 range.
  EXPECT_EQ(mask_n(64), ~std::uint64_t{0});
  EXPECT_EQ(mask_n(63), ~std::uint64_t{0} >> 1);
  EXPECT_EQ(mask_n(0), 0u);
  for (unsigned n = 1; n < 64; ++n)
    EXPECT_EQ(mask_n(n), (std::uint64_t{1} << n) - 1) << "n=" << n;
  // low_mask is an alias of mask_n; they must agree everywhere.
  for (unsigned n = 0; n <= 64; ++n) EXPECT_EQ(low_mask(n), mask_n(n));
}

TEST(Bitops, Maj3TruthTable) {
  // MAJ is exactly the carry-out of a full adder: 2-of-3.
  EXPECT_EQ(maj3(0, 0, 0), 0u);
  EXPECT_EQ(maj3(1, 0, 0), 0u);
  EXPECT_EQ(maj3(0, 1, 0), 0u);
  EXPECT_EQ(maj3(0, 0, 1), 0u);
  EXPECT_EQ(maj3(1, 1, 0), 1u);
  EXPECT_EQ(maj3(1, 0, 1), 1u);
  EXPECT_EQ(maj3(0, 1, 1), 1u);
  EXPECT_EQ(maj3(1, 1, 1), 1u);
}

TEST(Bitops, Sum3IsParity) {
  for (unsigned v = 0; v < 8; ++v) {
    const auto a = (v >> 2) & 1u, b = (v >> 1) & 1u, c = v & 1u;
    EXPECT_EQ(sum3(a, b, c), (a + b + c) % 2);
  }
}

TEST(Bitops, Csa3PreservesSum) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next() >> 3;  // Headroom for the carry.
    const std::uint64_t b = rng.next() >> 3;
    const std::uint64_t c = rng.next() >> 3;
    const CarrySave cs = csa3(a, b, c);
    EXPECT_EQ(cs.sum + cs.carry, a + b + c);
  }
}

TEST(Bitops, MsbIndexAndBitWidth) {
  EXPECT_EQ(msb_index(0), -1);
  EXPECT_EQ(msb_index(1), 0);
  EXPECT_EQ(msb_index(0x80), 7);
  EXPECT_EQ(bit_width(0), 1u);
  EXPECT_EQ(bit_width(1), 1u);
  EXPECT_EQ(bit_width(255), 8u);
  EXPECT_EQ(bit_width(256), 9u);
}

// ------------------------------------------------------------------- rng --

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Xoshiro256 rng(7);
  bool seen[10] = {};
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NextInInclusiveBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Xoshiro256 rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.next_gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

// ----------------------------------------------------------- fixed point --

TEST(FixedPoint, RoundTripQ16) {
  const double values[] = {0.0, 1.0, -1.0, 3.14159, -127.5, 1e-4};
  for (double v : values) {
    const Fixed f = to_fixed(v, kQ16_16);
    EXPECT_NEAR(from_fixed(f, kQ16_16), v, 1.0 / kQ16_16.scale());
  }
}

TEST(FixedPoint, SaturatesAtFormatLimit) {
  const Fixed f = to_fixed(1e9, kQ8_8);
  EXPECT_EQ(f.magnitude, low_mask(16));
  const Fixed g = to_fixed(-1e9, kQ8_8);
  EXPECT_TRUE(g.negative);
  EXPECT_EQ(g.magnitude, low_mask(16));
}

TEST(FixedPoint, SignedRawMatchesSign) {
  EXPECT_EQ(fixed_from_raw(-100, kQ16_16).signed_raw(), -100);
  EXPECT_EQ(fixed_from_raw(100, kQ16_16).signed_raw(), 100);
}

TEST(FixedPoint, RescaleProductDropsFractionBits) {
  // (3.0 * 2.0) in Q8.8: raw product has 16 fraction bits.
  const std::uint64_t a = to_fixed(3.0, kQ8_8).magnitude;
  const std::uint64_t b = to_fixed(2.0, kQ8_8).magnitude;
  const std::uint64_t rescaled = rescale_product(a * b, kQ8_8);
  EXPECT_NEAR(static_cast<double>(rescaled) / kQ8_8.scale(), 6.0, 1e-6);
}

TEST(FixedPoint, RescaleSaturates) {
  const std::uint64_t big = ~std::uint64_t{0};
  EXPECT_EQ(rescale_product(big, kQ8_8), low_mask(16));
}

// ----------------------------------------------------------------- stats --

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Stats, PercentileEmptyInputYieldsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 1.0), 0.0);
}

TEST(Stats, PercentileSingleSampleIsEveryPercentile) {
  for (double p : {0.0, 0.25, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(percentile({42.0}, p), 42.0);
}

TEST(Stats, PercentileSortsInputAndHandlesTies) {
  // Unsorted input with ties; position is p*(n-1) over the sorted copy.
  std::vector<double> v{5, 1, 5, 1};  // sorted: 1 1 5 5
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);    // midway between 1 and 5
  EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 1.0);  // lands on the tie
  // The caller's vector is untouched (percentile copies).
  EXPECT_EQ(v, (std::vector<double>{5, 1, 5, 1}));
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

// ----------------------------------------------------------------- units --

TEST(Units, CycleConversions) {
  EXPECT_DOUBLE_EQ(cycles_to_ns(10), 11.0);
  EXPECT_DOUBLE_EQ(cycles_to_seconds(10), 11.0e-9);
  EXPECT_DOUBLE_EQ(edp_js(1e12 /*1 J in pJ*/, 10), 11.0e-9);
}

// ----------------------------------------------------------------- table --

TEST(Table, RendersAlignedColumns) {
  TextTable t({"app", "EDP"});
  t.add_row({"Sobel", "94x"});
  t.add_row({"FFT", "203x"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| app   | EDP  |"), std::string::npos);
  EXPECT_NE(s.find("| Sobel | 94x  |"), std::string::npos);
  EXPECT_NE(s.find("| FFT   | 203x |"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_factor(480.0, 1), "480.0x");
  EXPECT_EQ(format_percent(0.156, 1), "15.6%");
  EXPECT_EQ(format_sci(1.4e-16, 2), "1.40e-16");
  EXPECT_EQ(format_bytes(32.0 * 1024 * 1024), "32 MB");
  EXPECT_EQ(format_bytes(1024.0 * 1024 * 1024), "1 GB");
}

// ------------------------------------------------------------------- csv --

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/apim_csv_test.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.ok());
    w.write_row({"a", "b,c"});
    w.write_row({"1", "2"});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,\"b,c\"");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- image --

TEST(Image, ClampedAccessAtBorders) {
  Image img(4, 4);
  img.set(0, 0, 17);
  img.set(3, 3, 99);
  EXPECT_EQ(img.at_clamped(-5, -5), 17);
  EXPECT_EQ(img.at_clamped(10, 10), 99);
}

TEST(Image, SyntheticImageIsDeterministic) {
  const Image a = make_synthetic_image(32, 32, 5);
  const Image b = make_synthetic_image(32, 32, 5);
  EXPECT_EQ(a.pixels(), b.pixels());
  const Image c = make_synthetic_image(32, 32, 6);
  EXPECT_NE(a.pixels(), c.pixels());
}

TEST(Image, SyntheticImageHasEdgesAndRange) {
  const Image img = make_synthetic_image(64, 64, 1);
  RunningStats s;
  double max_grad = 0;
  for (std::size_t y = 0; y < 64; ++y)
    for (std::size_t x = 0; x + 1 < 64; ++x) {
      s.add(img.at(x, y));
      max_grad = std::max(
          max_grad, std::abs(static_cast<double>(img.at(x + 1, y)) -
                             static_cast<double>(img.at(x, y))));
    }
  EXPECT_GT(s.stddev(), 10.0);   // Not flat.
  EXPECT_GT(max_grad, 50.0);     // Contains hard edges.
}

TEST(Image, CheckerHasExpectedPattern) {
  const Image img = make_checker_image(8, 8, 2);
  EXPECT_EQ(img.at(0, 0), img.at(1, 1));
  EXPECT_NE(img.at(0, 0), img.at(2, 0));
}

TEST(Image, WritePgmProducesHeader) {
  const Image img = make_gradient_image(8, 4);
  const std::string path = ::testing::TempDir() + "/apim_img_test.pgm";
  ASSERT_TRUE(img.write_pgm(path));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace apim::util
