# CLI contract smoke test for apim_sim, run via ctest:
#   cmake -DAPIM_SIM=<binary> -P apim_sim_cli_test.cmake
#
# Every bad invocation must exit 2 with an `apim_sim: error:` diagnostic
# on stderr; --help/--list and a small valid run must exit 0.
if(NOT DEFINED APIM_SIM)
  message(FATAL_ERROR "pass -DAPIM_SIM=<path to apim_sim binary>")
endif()

function(run_sim expected_code must_match_stderr)
  execute_process(COMMAND ${APIM_SIM} ${ARGN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT result EQUAL ${expected_code})
    message(FATAL_ERROR "apim_sim ${ARGN}: expected exit ${expected_code}, "
      "got '${result}'\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  if(must_match_stderr AND NOT err MATCHES "apim_sim: error:")
    message(FATAL_ERROR "apim_sim ${ARGN}: exit ${result} without an "
      "'apim_sim: error:' diagnostic\nstderr:\n${err}")
  endif()
endfunction()

# Good invocations.
run_sim(0 FALSE --help)
run_sim(0 FALSE --list)
run_sim(0 FALSE --app Sobel --elements 64 --relax 0)
run_sim(0 FALSE --app FFT --elements 64 --csv)

# Bad invocations: consistent exit 2 plus a diagnostic.
run_sim(2 TRUE --frobnicate)
run_sim(2 TRUE --app NoSuchApp)
run_sim(2 TRUE --app)                      # missing value
run_sim(2 TRUE --elements twelve)          # malformed count
run_sim(2 TRUE --elements)                 # missing value
run_sim(2 TRUE --seed 12x)                 # trailing junk
run_sim(2 TRUE --relax 99)                 # out of range
run_sim(2 TRUE --mask 40)                  # out of range
run_sim(2 TRUE --lanes 0)                  # zero lanes
run_sim(2 TRUE --backend gpu)              # unknown backend

message(STATUS "apim_sim CLI contract holds")
