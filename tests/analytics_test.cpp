// Differential tests for the analytics operators (src/analytics/) and the
// compare/popcount micro-kernels they ride on (src/arith/compare_units.*).
//
// Operator coverage: every operator runs against the host scalar oracle
// (tests/analytics_harness.hpp) bit for bit over 21 seeded table pairs —
// uniform, Zipf-skewed, unique, all-duplicate, empty, and single-row —
// across backends {kFast, kBitsliced, kBitLevel} and host thread counts
// {1, 2, 7}. Kernel coverage: engine-vs-word fidelity (values/cycles
// exact, energy to summation-order tolerance), bitsliced-vs-word
// bit-identity (energy doubles included), and device-level protection
// behavior (compare exact under relax; popcount triple-voted under
// detect policies, which have no mod-3 residue for it).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "analytics_harness.hpp"
#include "arith/compare_units.hpp"
#include "arith/inmemory_units.hpp"
#include "core/apim.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using apim::analytics::Runner;
using apim::analytics_harness::check_operators;
using apim::analytics_harness::KeyDist;
using apim::analytics_harness::make_test_table;
using apim::analytics_harness::runner_config;
using apim::analytics_harness::TableSpec;

constexpr double kEnergyTolPj = 1e-9;  // Pure summation-order tolerance.

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { apim::util::set_thread_count(0); }
};

struct TablePair {
  TableSpec left;
  TableSpec right;
  std::string label;
};

// 21 seeded table pairs spanning the distribution and degeneracy space.
// `rows`/widths scale down for the bit-level engine sweep.
std::vector<TablePair> roster(std::size_t rows, unsigned key_w,
                              unsigned val_w) {
  std::vector<TablePair> out;
  auto spec = [&](std::uint64_t seed, KeyDist dist, std::size_t r,
                  const char* name) {
    TableSpec s;
    s.rows = r;
    s.key_width = key_w;
    s.val_width = val_w;
    s.dist = dist;
    s.key_pool = 8;
    s.seed = seed;
    s.name = name;
    return s;
  };
  for (std::uint64_t seed = 1; seed <= 6; ++seed)
    out.push_back({spec(seed, KeyDist::kUniform, rows, "left"),
                   spec(seed + 100, KeyDist::kUniform, rows, "right"),
                   "uniform-" + std::to_string(seed)});
  for (std::uint64_t seed = 7; seed <= 10; ++seed)
    out.push_back({spec(seed, KeyDist::kZipf, rows, "left"),
                   spec(seed + 100, KeyDist::kUniform, rows, "right"),
                   "zipf-" + std::to_string(seed)});
  for (std::uint64_t seed = 11; seed <= 13; ++seed)
    out.push_back({spec(seed, KeyDist::kUniqueShuffled, rows, "left"),
                   spec(seed + 100, KeyDist::kUniqueShuffled, rows, "right"),
                   "unique-" + std::to_string(seed)});
  out.push_back({spec(14, KeyDist::kAllEqual, rows, "left"),
                 spec(114, KeyDist::kAllEqual, rows, "right"),
                 "all-dup-cross-product"});
  out.push_back({spec(15, KeyDist::kAllEqual, rows, "left"),
                 spec(115, KeyDist::kUniform, rows, "right"),
                 "all-dup-left"});
  out.push_back({spec(16, KeyDist::kUniform, 0, "left"),
                 spec(116, KeyDist::kUniform, rows, "right"), "empty-left"});
  out.push_back({spec(17, KeyDist::kUniform, rows, "left"),
                 spec(117, KeyDist::kUniform, 0, "right"), "empty-right"});
  out.push_back({spec(18, KeyDist::kUniform, 0, "left"),
                 spec(118, KeyDist::kUniform, 0, "right"), "both-empty"});
  out.push_back({spec(19, KeyDist::kUniform, 1, "left"),
                 spec(119, KeyDist::kUniform, 1, "right"), "single-row"});
  out.push_back({spec(20, KeyDist::kUniform, rows, "left"),
                 spec(120, KeyDist::kUniform, 1, "right"),
                 "single-row-right"});
  out.push_back({spec(21, KeyDist::kZipf, rows, "left"),
                 spec(121, KeyDist::kZipf, rows, "right"), "zipf-both"});
  return out;
}

void sweep_backend(apim::core::Backend backend,
                   const std::vector<TablePair>& pairs) {
  ThreadCountGuard guard;
  for (const std::size_t threads : {1u, 2u, 7u}) {
    apim::util::set_thread_count(threads);
    for (const TablePair& p : pairs) {
      Runner runner(runner_config(backend));
      const std::string violation = check_operators(
          runner, make_test_table(p.left), make_test_table(p.right));
      ASSERT_EQ(violation, "")
          << p.label << " with " << threads << " host threads";
    }
  }
}

// -- Operator differential sweeps --------------------------------------------

TEST(AnalyticsDifferential, FastBackend) {
  sweep_backend(apim::core::Backend::kFast, roster(48, 8, 9));
}

TEST(AnalyticsDifferential, BitslicedBackend) {
  sweep_backend(apim::core::Backend::kBitsliced, roster(48, 8, 9));
}

// Bit-level MAGIC engine: every compare/add/popcount NOR-simulated. Tiny
// tables keep the sweep inside the test timeout; the table ROSTER (all 21
// shapes, all 3 thread counts) is the same as the word-level sweeps.
TEST(AnalyticsDifferential, EngineBackend) {
  sweep_backend(apim::core::Backend::kBitLevel, roster(10, 5, 5));
}

// Served analytic work must be bit-identical for every host worker count:
// values are pinned by the oracle above, so this checks the serving-side
// observables (ops, batches, energy) too.
TEST(AnalyticsDifferential, DeterministicAcrossThreadCounts) {
  ThreadCountGuard guard;
  const TablePair pair = roster(48, 8, 9).front();
  apim::util::set_thread_count(1);
  Runner ref(runner_config(apim::core::Backend::kBitsliced));
  ASSERT_EQ("", check_operators(ref, make_test_table(pair.left),
                                make_test_table(pair.right)));
  for (const std::size_t threads : {2u, 7u}) {
    apim::util::set_thread_count(threads);
    Runner run(runner_config(apim::core::Backend::kBitsliced));
    ASSERT_EQ("", check_operators(run, make_test_table(pair.left),
                                  make_test_table(pair.right)));
    EXPECT_EQ(run.waves(), ref.waves());
    EXPECT_EQ(run.requests(), ref.requests());
    EXPECT_EQ(run.ops(), ref.ops());
    EXPECT_EQ(run.energy_pj(), ref.energy_pj());  // Bit-exact double.
    EXPECT_EQ(run.virtual_now(), ref.virtual_now());
    EXPECT_EQ(run.snapshot().batches, ref.snapshot().batches);
    EXPECT_EQ(run.snapshot().batched_ops, ref.snapshot().batched_ops);
  }
}

// -- Compare micro-kernel fidelity -------------------------------------------

TEST(CompareKernel, EngineMatchesWordModel) {
  const auto em = apim::device::EnergyModel::paper_defaults();
  apim::util::Xoshiro256 rng(0xc0117a5e);
  for (int iter = 0; iter < 120; ++iter) {
    const unsigned n = 4 + static_cast<unsigned>(rng.next_below(13));
    const std::uint64_t mask = apim::util::low_mask(n);
    const std::uint64_t a = rng.next() & mask;
    std::uint64_t b = rng.next() & mask;
    if (iter % 5 == 0) b = a;  // Force the equality path regularly.
    const apim::arith::CompareOutcome fast =
        apim::arith::fast_compare(a, b, n, em);
    const apim::arith::InMemoryResult engine =
        apim::arith::inmemory_compare(a, b, n, em);
    ASSERT_EQ(engine.value, fast.sum) << "a=" << a << " b=" << b << " n=" << n;
    ASSERT_EQ(engine.carry_out, fast.code == apim::arith::kCmpGt);
    ASSERT_EQ(engine.cycles, fast.cycles);
    ASSERT_EQ(static_cast<apim::util::Cycles>(12 * n + 3), fast.cycles);
    ASSERT_NEAR(engine.energy_ops_pj, fast.energy_ops_pj, kEnergyTolPj);
    ASSERT_EQ(apim::arith::compare_code(engine.value, engine.carry_out, n),
              fast.code);
    // Semantics: the three-way code is the magnitude order.
    const std::uint64_t want = a < b   ? apim::arith::kCmpLt
                               : a == b ? apim::arith::kCmpEq
                                        : apim::arith::kCmpGt;
    ASSERT_EQ(fast.code, want);
  }
}

TEST(CompareKernel, BitslicedBitIdenticalToWordModel) {
  const auto em = apim::device::EnergyModel::paper_defaults();
  apim::util::Xoshiro256 rng(0xb175);
  for (const unsigned n : {4u, 8u, 17u, 32u}) {
    const std::uint64_t mask = apim::util::low_mask(n);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
    for (int i = 0; i < 64; ++i)
      ops.emplace_back(rng.next() & mask, rng.next() & mask);
    ops[7].second = ops[7].first;  // One guaranteed tie per slice.
    std::vector<apim::arith::CompareOutcome> out(ops.size());
    apim::arith::bitsliced_compare_slice(ops, n, em, out);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const apim::arith::CompareOutcome fast =
          apim::arith::fast_compare(ops[i].first, ops[i].second, n, em);
      ASSERT_EQ(out[i].code, fast.code) << "lane " << i << " n " << n;
      ASSERT_EQ(out[i].sum, fast.sum);
      ASSERT_EQ(out[i].cycles, fast.cycles);
      ASSERT_EQ(out[i].energy_ops_pj, fast.energy_ops_pj);  // Bit-exact.
      ASSERT_EQ(out[i].carry_out, fast.carry_out);
    }
  }
}

// -- Popcount micro-kernel fidelity ------------------------------------------

TEST(PopcountKernel, EngineMatchesWordModel) {
  const auto em = apim::device::EnergyModel::paper_defaults();
  apim::util::Xoshiro256 rng(0x9090);
  for (int iter = 0; iter < 60; ++iter) {
    const unsigned n = 1 + static_cast<unsigned>(rng.next_below(16));
    const std::uint64_t x = rng.next() & apim::util::low_mask(n);
    const apim::arith::AddOutcome fast = apim::arith::fast_popcount(x, n, em);
    const apim::arith::InMemoryResult engine =
        apim::arith::inmemory_popcount(x, n, em);
    ASSERT_EQ(fast.sum, static_cast<std::uint64_t>(std::popcount(x)));
    ASSERT_EQ(engine.value, fast.sum);
    ASSERT_EQ(engine.cycles, fast.cycles);
    ASSERT_NEAR(engine.energy_ops_pj, fast.energy_ops_pj, kEnergyTolPj);
  }
}

TEST(PopcountKernel, WidthCapBoundsEveryCount) {
  // The count of n set bits needs exactly bit_width(n) bits.
  for (unsigned n = 1; n <= 64; ++n) {
    const unsigned cap = apim::arith::popcount_width_cap(n);
    ASSERT_LE(apim::util::bit_width(n), cap);
    ASSERT_LE(n, apim::util::low_mask(cap) + 1);
  }
}

// -- Device-level protection semantics ---------------------------------------

TEST(DeviceOps, CompareExactUnderRelaxAndPolicies) {
  apim::util::Xoshiro256 rng(0xdead);
  for (const auto policy : {apim::reliability::ReliabilityPolicy::kOff,
                            apim::reliability::ReliabilityPolicy::kDetectOnly,
                            apim::reliability::ReliabilityPolicy::
                                kDetectAndRepair}) {
    apim::core::ApimConfig cfg;
    cfg.word_bits = 16;
    cfg.approx.relax_bits = 6;  // Compares must ignore the relax level.
    cfg.reliability.policy = policy;
    apim::core::ApimDevice dev(cfg);
    for (int iter = 0; iter < 40; ++iter) {
      const std::uint64_t a = rng.next() & 0xffff;
      const std::uint64_t b = rng.next() & 0xffff;
      const std::uint64_t want = a < b   ? apim::arith::kCmpLt
                                 : a == b ? apim::arith::kCmpEq
                                          : apim::arith::kCmpGt;
      ASSERT_EQ(dev.cmp_magnitude(a, b), want);
    }
    ASSERT_EQ(dev.stats().comparisons, 40u);
  }
}

TEST(DeviceOps, PopcountExactUnderPolicies) {
  apim::util::Xoshiro256 rng(0xbeef);
  for (const auto policy : {apim::reliability::ReliabilityPolicy::kOff,
                            apim::reliability::ReliabilityPolicy::kDetectOnly,
                            apim::reliability::ReliabilityPolicy::
                                kDetectAndRepair,
                            apim::reliability::ReliabilityPolicy::
                                kTripleVote}) {
    apim::core::ApimConfig cfg;
    cfg.word_bits = 32;
    cfg.reliability.policy = policy;
    apim::core::ApimDevice dev(cfg);
    for (int iter = 0; iter < 40; ++iter) {
      const std::uint64_t x = rng.next() & 0xffffffffu;
      ASSERT_EQ(dev.popcnt_magnitude(x),
                static_cast<std::uint64_t>(std::popcount(x)));
    }
    ASSERT_EQ(dev.stats().popcounts, 40u);
  }
}

TEST(DeviceOps, BatchEntryPointsMatchScalar) {
  apim::util::Xoshiro256 rng(0xfeed);
  for (const auto backend :
       {apim::core::Backend::kFast, apim::core::Backend::kBitsliced,
        apim::core::Backend::kBitLevel}) {
    apim::core::ApimConfig cfg;
    cfg.word_bits = 12;
    cfg.backend = backend;
    apim::core::ApimDevice batch_dev(cfg);
    apim::core::ApimDevice scalar_dev(cfg);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
    const std::size_t count = backend == apim::core::Backend::kBitLevel
                                  ? 9   // Keep the NOR simulation small.
                                  : 150;  // Spans multiple 64-lane slices.
    for (std::size_t i = 0; i < count; ++i)
      ops.emplace_back(rng.next() & 0xfff, rng.next() & 0xfff);
    std::vector<std::uint64_t> cmp(ops.size()), pop(ops.size());
    std::vector<apim::util::Cycles> cmp_cycles(ops.size()),
        pop_cycles(ops.size());
    batch_dev.cmp_magnitude_batch(ops, cmp, cmp_cycles);
    batch_dev.popcnt_magnitude_batch(ops, pop, pop_cycles);
    // Same op order as the batch calls (all compares, then all popcounts)
    // so the stats doubles accumulate in the identical sequence.
    for (std::size_t i = 0; i < ops.size(); ++i)
      ASSERT_EQ(cmp[i], scalar_dev.cmp_magnitude(ops[i].first, ops[i].second));
    for (std::size_t i = 0; i < ops.size(); ++i)
      ASSERT_EQ(pop[i], scalar_dev.popcnt_magnitude(ops[i].first));
    // Batch replay must keep the scalar accounting (op-index determinism).
    ASSERT_EQ(batch_dev.stats().comparisons, scalar_dev.stats().comparisons);
    ASSERT_EQ(batch_dev.stats().popcounts, scalar_dev.stats().popcounts);
    ASSERT_EQ(batch_dev.stats().cycles, scalar_dev.stats().cycles);
    ASSERT_EQ(batch_dev.stats().energy_ops_pj,
              scalar_dev.stats().energy_ops_pj);  // Bit-exact.
  }
}

}  // namespace
