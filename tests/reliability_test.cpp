// Tests of the fault-tolerance stack (src/reliability/): residue codes,
// BIST march scans, spare-row remapping, scratch-band quarantine, the
// device-level policies, and the Monte Carlo fault campaign — including
// the headline resilience property: at a 1e-3 stuck-at rate the
// unprotected image kernels fail their 30 dB PSNR criterion while
// detect-and-repair keeps every one above it, reproducibly from a fixed
// seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "core/apim.hpp"
#include "crossbar/crossbar.hpp"
#include "crossbar/scratch_allocator.hpp"
#include "device/energy_model.hpp"
#include "reliability/bist.hpp"
#include "reliability/campaign.hpp"
#include "reliability/fault_state.hpp"
#include "reliability/policy.hpp"
#include "reliability/residue.hpp"
#include "util/rng.hpp"

namespace apim::reliability {
namespace {

using crossbar::BlockedCrossbar;
using crossbar::CellAddr;
using crossbar::CrossbarConfig;

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

// ------------------------------------------------------------- residue --

TEST(Residue, ExactResultsAlwaysMatch) {
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next() & 0xFFFFFFFFu;
    const std::uint64_t b = rng.next() & 0xFFFFFFFFu;
    EXPECT_TRUE(residue_match_mul(a, b, a * b));
    EXPECT_TRUE(residue_match_add(a, b, a + b));
  }
}

TEST(Residue, EverySingleBitCorruptionIsCaught) {
  // 2^k mod 3 is 1 or 2, never 0, so flipping ANY single output bit moves
  // the residue — exhaustively over every bit position of the product and
  // the sum, for many operand pairs.
  util::Xoshiro256 rng(12);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next() & 0xFFFFFFFFu;
    const std::uint64_t b = rng.next() & 0xFFFFFFFFu;
    const std::uint64_t product = a * b;
    for (unsigned bit = 0; bit < 64; ++bit) {
      EXPECT_FALSE(residue_match_mul(a, b, product ^ (std::uint64_t{1} << bit)))
          << "a=" << a << " b=" << b << " bit=" << bit;
    }
    const std::uint64_t sum = a + b;
    for (unsigned bit = 0; bit < 33; ++bit) {
      EXPECT_FALSE(residue_match_add(a, b, sum ^ (std::uint64_t{1} << bit)))
          << "a=" << a << " b=" << b << " bit=" << bit;
    }
  }
}

TEST(Residue, CostScalesWithCheckedBits) {
  const ResidueCost small = residue_check_cost(32, em());
  const ResidueCost large = residue_check_cost(128, em());
  EXPECT_EQ(small.cycles, 16u);
  EXPECT_EQ(large.cycles, 64u);
  EXPECT_GT(small.energy_pj, 0.0);
  EXPECT_DOUBLE_EQ(large.energy_pj, 4.0 * small.energy_pj);
}

// ---------------------------------------------------------------- BIST --

TEST(Bist, HealthyFabricIsNeverFlagged) {
  BlockedCrossbar xbar(CrossbarConfig{3, 16, 32});
  const MarchReport report = march_scan(xbar, 1, 0, 16, 0, 32, em());
  EXPECT_TRUE(report.faulty_rows.empty());
  EXPECT_EQ(report.rows_scanned, 16u);
  EXPECT_EQ(report.cells_tested, 16u * 32u);
  // W0 R0 W1 R1 W0: five row-parallel cycles per row.
  EXPECT_EQ(report.cost.cycles, 16u * 5u);
  EXPECT_GT(report.cost.energy_pj, 0.0);
}

TEST(Bist, EverySeededStuckAtInScannedRegionIsFlagged) {
  // Property: a stuck-at fault at ANY scanned cell, of either polarity,
  // puts exactly its row in the report.
  for (std::size_t row = 0; row < 8; ++row) {
    for (std::size_t col = 0; col < 8; ++col) {
      for (const bool value : {false, true}) {
        BlockedCrossbar xbar(CrossbarConfig{2, 8, 8});
        xbar.block(1).inject_stuck_at(row, col, value);
        const MarchReport report = march_scan(xbar, 1, 0, 8, 0, 8, em());
        ASSERT_EQ(report.faulty_rows.size(), 1u)
            << "row=" << row << " col=" << col << " value=" << value;
        EXPECT_EQ(report.faulty_rows[0], row);
      }
    }
  }
}

TEST(Bist, ScanChargesWearOnTheFabric) {
  BlockedCrossbar xbar(CrossbarConfig{2, 8, 8});
  const std::uint64_t before = xbar.total_switches();
  (void)march_scan(xbar, 1, 0, 8, 0, 8, em());
  EXPECT_GT(xbar.total_switches(), before);
}

TEST(Bist, ScanRespectsRowAndColumnBounds) {
  BlockedCrossbar xbar(CrossbarConfig{2, 8, 16});
  xbar.block(1).inject_stuck_at(6, 12, true);  // Outside the scanned window.
  const MarchReport report = march_scan(xbar, 1, 0, 4, 0, 8, em());
  EXPECT_TRUE(report.faulty_rows.empty());
}

// ------------------------------------------------------ spare remapping --

TEST(SpareRows, RemapRedirectsDecoderAccesses) {
  BlockedCrossbar xbar(CrossbarConfig{2, 8, 8, /*spare_rows=*/2});
  EXPECT_EQ(xbar.physical_row(1, 3), 3u);
  EXPECT_EQ(xbar.spares_remaining(1), 2u);

  ASSERT_TRUE(xbar.remap_row(1, 3));
  EXPECT_EQ(xbar.physical_row(1, 3), 8u);  // First spare.
  EXPECT_EQ(xbar.spares_remaining(1), 1u);
  EXPECT_EQ(xbar.remapped_row_count(1), 1u);
  // Other rows and blocks are untouched.
  EXPECT_EQ(xbar.physical_row(1, 4), 4u);
  EXPECT_EQ(xbar.physical_row(0, 3), 3u);

  // Logical accesses land on the spare transparently.
  xbar.set(CellAddr{1, 3, 5}, true);
  EXPECT_TRUE(xbar.get(CellAddr{1, 3, 5}));
  EXPECT_TRUE(xbar.block(1).get(8, 5));   // Physically on the spare row.
  EXPECT_FALSE(xbar.block(1).get(3, 5));  // The quarantined row is idle.
}

TEST(SpareRows, RemappingTwiceBurnsTheNextSpare) {
  BlockedCrossbar xbar(CrossbarConfig{2, 8, 8, 2});
  ASSERT_TRUE(xbar.remap_row(1, 0));
  EXPECT_EQ(xbar.physical_row(1, 0), 8u);
  ASSERT_TRUE(xbar.remap_row(1, 0));  // First spare was bad too.
  EXPECT_EQ(xbar.physical_row(1, 0), 9u);
  EXPECT_FALSE(xbar.remap_row(1, 0));  // Out of spares.
  EXPECT_EQ(xbar.spares_remaining(1), 0u);
}

TEST(SpareRows, ScanAndRepairRestoresAFaultyRow) {
  BlockedCrossbar xbar(CrossbarConfig{2, 8, 8, 2});
  xbar.block(1).inject_stuck_at(2, 4, true);
  const RepairReport report = scan_and_repair(xbar, 1, 0, 8, 0, 8, em());
  EXPECT_EQ(report.faulty_rows, 1u);
  EXPECT_EQ(report.spares_used, 1u);
  EXPECT_EQ(report.unrepaired_rows, 0u);
  // The repaired logical row now holds values again.
  xbar.set(CellAddr{1, 2, 4}, false);
  EXPECT_FALSE(xbar.get(CellAddr{1, 2, 4}));
  // And a re-scan finds a clean region.
  EXPECT_TRUE(march_scan(xbar, 1, 0, 8, 0, 8, em()).faulty_rows.empty());
}

TEST(SpareRows, DefectiveSparesAreBurnedAndRetested) {
  BlockedCrossbar xbar(CrossbarConfig{2, 8, 8, 2});
  xbar.block(1).inject_stuck_at(2, 4, true);
  xbar.block(1).inject_stuck_at(8, 1, false);  // First spare is bad too.
  const RepairReport report = scan_and_repair(xbar, 1, 0, 8, 0, 8, em());
  EXPECT_EQ(report.faulty_rows, 1u);
  EXPECT_EQ(report.spares_used, 2u);
  EXPECT_EQ(report.unrepaired_rows, 0u);
  EXPECT_EQ(xbar.physical_row(1, 2), 9u);
}

TEST(SpareRows, RepairReportsUnrepairableRows) {
  BlockedCrossbar xbar(CrossbarConfig{2, 8, 8, /*spare_rows=*/1});
  xbar.block(1).inject_stuck_at(2, 4, true);
  xbar.block(1).inject_stuck_at(5, 0, false);
  const RepairReport report = scan_and_repair(xbar, 1, 0, 8, 0, 8, em());
  EXPECT_EQ(report.faulty_rows, 2u);
  EXPECT_EQ(report.spares_used, 1u);
  EXPECT_EQ(report.unrepaired_rows, 1u);
}

TEST(SpareRows, ZeroSparesBehavesAsBefore) {
  BlockedCrossbar xbar(CrossbarConfig{2, 8, 8});
  EXPECT_EQ(xbar.spares_remaining(1), 0u);
  EXPECT_FALSE(xbar.remap_row(1, 0));
  EXPECT_EQ(xbar.physical_row(1, 0), 0u);
}

// -------------------------------------------------- scratch quarantine --

TEST(Quarantine, AllocatorSkipsQuarantinedBands) {
  crossbar::RotatingScratchAllocator bands(/*first_row=*/0, /*rows=*/12,
                                           /*band_rows=*/4);
  ASSERT_EQ(bands.band_count(), 3u);
  bands.quarantine_band(1);
  EXPECT_TRUE(bands.band_quarantined(1));
  EXPECT_EQ(bands.healthy_band_count(), 2u);
  for (int i = 0; i < 6; ++i) EXPECT_NE(bands.next_band(), bands.band_base(1));
}

TEST(Quarantine, BistQuarantinesTheDefectiveBandOnly) {
  BlockedCrossbar xbar(CrossbarConfig{2, 12, 8});
  crossbar::RotatingScratchAllocator bands(0, 12, 4);
  xbar.block(1).inject_stuck_at(5, 3, true);  // Band 1 = rows [4, 8).
  BistCost cost;
  const std::size_t quarantined =
      quarantine_faulty_bands(xbar, 1, bands, 4, 0, 8, em(), cost);
  EXPECT_EQ(quarantined, 1u);
  EXPECT_FALSE(bands.band_quarantined(0));
  EXPECT_TRUE(bands.band_quarantined(1));
  EXPECT_FALSE(bands.band_quarantined(2));
  EXPECT_GT(cost.cycles, 0u);
}

// -------------------------------------------------------- fault table --

TEST(LaneFaultTable, EmptyAndStatelessApplication) {
  LaneFaultTable table(4, 3);
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.apply(0, 0, true, 42, 16, 7, 0), 42u);

  table.add_mul_stuck(2, 0, 5, true);
  EXPECT_FALSE(table.empty());
  // Stuck bits hit their own (lane, domain) only.
  EXPECT_EQ(table.apply(2, 0, true, 0, 16, 7, 0), 1u << 5);
  EXPECT_EQ(table.apply(2, 1, true, 0, 16, 7, 0), 0u);
  EXPECT_EQ(table.apply(1, 0, true, 0, 16, 7, 0), 0u);
  EXPECT_EQ(table.apply(2, 0, false, 0, 16, 7, 0), 0u);  // Adder unaffected.
  // Re-application is idempotent: pure function of its arguments.
  EXPECT_EQ(table.apply(2, 0, true, 0, 16, 7, 0),
            table.apply(2, 0, true, 0, 16, 7, 0));
}

TEST(LaneFaultTable, TransientFlipsExactlyOneBitAtRateOne) {
  LaneFaultTable table(1, 1);
  table.set_transient(1.0, 99);
  for (std::uint64_t op = 0; op < 64; ++op) {
    const std::uint64_t v = table.apply(0, 0, true, 0, 32, op, 0);
    EXPECT_EQ(__builtin_popcountll(v), 1) << "op=" << op;
    EXPECT_LT(v, std::uint64_t{1} << 32);
    // Fresh noise per attempt, same noise per replay.
    EXPECT_EQ(v, table.apply(0, 0, true, 0, 32, op, 0));
  }
}

// ------------------------------------------------------ device policies --

core::ApimConfig small_device_config() {
  core::ApimConfig cfg;
  cfg.word_bits = 16;
  return cfg;
}

TEST(DevicePolicy, OffSilentlyCorruptsResults) {
  core::ApimConfig cfg = small_device_config();
  cfg.reliability.faults = LaneFaultTable(1, 3);
  cfg.reliability.faults.add_mul_stuck(0, 0, 7, true);
  core::ApimDevice device{cfg};
  // 2*3 = 6: bit 7 is clear, the stuck-at-1 forces it.
  EXPECT_EQ(device.mul_magnitude(2, 3), 6u | (1u << 7));
  EXPECT_EQ(device.stats().residue_checks, 0u);
  EXPECT_EQ(device.stats().faults_detected, 0u);
  EXPECT_FALSE(device.degraded());
}

TEST(DevicePolicy, DetectOnlyCountsButDoesNotCorrect) {
  core::ApimConfig cfg = small_device_config();
  cfg.reliability.policy = ReliabilityPolicy::kDetectOnly;
  cfg.reliability.faults = LaneFaultTable(1, 3);
  cfg.reliability.faults.add_mul_stuck(0, 0, 7, true);
  core::ApimDevice device{cfg};
  EXPECT_EQ(device.mul_magnitude(2, 3), 6u | (1u << 7));
  EXPECT_EQ(device.stats().residue_checks, 1u);
  EXPECT_EQ(device.stats().faults_detected, 1u);
  EXPECT_EQ(device.stats().retries, 0u);
}

TEST(DevicePolicy, DetectionCostsCyclesAndEnergy) {
  core::ApimConfig clean = small_device_config();
  core::ApimDevice baseline{clean};
  (void)baseline.mul_magnitude(1234, 567);

  core::ApimConfig cfg = small_device_config();
  cfg.reliability.policy = ReliabilityPolicy::kDetectOnly;
  cfg.reliability.faults = LaneFaultTable(1, 3);  // Healthy but checked.
  cfg.reliability.faults.add_add_stuck(0, 2, 0, true);  // Non-empty table.
  core::ApimDevice device{cfg};
  EXPECT_EQ(device.mul_magnitude(1234, 567), 1234u * 567u);
  EXPECT_GT(device.stats().cycles, baseline.stats().cycles);
  EXPECT_GT(device.stats().energy_ops_pj, baseline.stats().energy_ops_pj);
}

TEST(DevicePolicy, RepairRetriesOnHealthyDomainAndCorrects) {
  core::ApimConfig cfg = small_device_config();
  cfg.reliability.policy = ReliabilityPolicy::kDetectAndRepair;
  cfg.reliability.faults = LaneFaultTable(1, 3);
  cfg.reliability.faults.add_mul_stuck(0, 0, 7, true);  // Primary faulty.
  core::ApimDevice device{cfg};
  EXPECT_EQ(device.mul_magnitude(2, 3), 6u);  // Corrected.
  EXPECT_EQ(device.stats().faults_detected, 1u);
  EXPECT_EQ(device.stats().retries, 1u);
  EXPECT_EQ(device.stats().residue_checks, 2u);
  EXPECT_EQ(device.stats().escalations, 0u);
  EXPECT_FALSE(device.degraded());
}

TEST(DevicePolicy, ExhaustedLadderEscalatesAndFlagsDegraded) {
  core::ApimConfig cfg = small_device_config();
  cfg.reliability.policy = ReliabilityPolicy::kDetectAndRepair;
  cfg.reliability.faults = LaneFaultTable(1, 3);
  for (std::size_t d = 0; d < 3; ++d)
    cfg.reliability.faults.add_mul_stuck(0, d, 7, true);
  core::ApimDevice device{cfg};
  EXPECT_EQ(device.mul_magnitude(2, 3), 6u | (1u << 7));
  EXPECT_EQ(device.stats().retries, 2u);
  EXPECT_EQ(device.stats().escalations, 1u);
  EXPECT_TRUE(device.degraded());
}

TEST(DevicePolicy, ApproximateOpsSkipResidueChecking) {
  core::ApimConfig cfg = small_device_config();
  cfg.approx.relax_bits = 8;  // Both the multiplier and the adder relax.
  cfg.reliability.policy = ReliabilityPolicy::kDetectOnly;
  cfg.reliability.faults = LaneFaultTable(1, 3);
  cfg.reliability.faults.add_add_stuck(0, 2, 0, true);  // Non-empty table.
  core::ApimDevice device{cfg};
  (void)device.mul_magnitude(100, 200);
  (void)device.add_magnitude(100, 200);
  EXPECT_EQ(device.stats().residue_checks, 0u);
}

TEST(DevicePolicy, TripleVoteOutvotesASingleFaultyDomain) {
  core::ApimConfig cfg = small_device_config();
  cfg.reliability.policy = ReliabilityPolicy::kTripleVote;
  cfg.reliability.faults = LaneFaultTable(1, 3);
  cfg.reliability.faults.add_mul_stuck(0, 0, 7, true);
  core::ApimDevice device{cfg};
  EXPECT_EQ(device.mul_magnitude(2, 3), 6u);
  EXPECT_EQ(device.stats().votes, 1u);
  EXPECT_EQ(device.stats().faults_detected, 1u);
  EXPECT_EQ(device.stats().retries, 0u);

  // The redundant copies triple the op energy (plus the vote step).
  core::ApimDevice baseline{small_device_config()};
  (void)baseline.mul_magnitude(2, 3);
  EXPECT_GT(device.stats().energy_ops_pj,
            3.0 * baseline.stats().energy_ops_pj);
}

TEST(DevicePolicy, TripleVoteWorksUnderApproximation) {
  // Residue codes cannot arbitrate approximate results; voting can,
  // because all three copies compute the same approximate value.
  core::ApimConfig approx_cfg = small_device_config();
  approx_cfg.approx.relax_bits = 8;
  core::ApimDevice reference{approx_cfg};
  const std::uint64_t expected = reference.mul_magnitude(12345, 999);

  core::ApimConfig cfg = approx_cfg;
  cfg.reliability.policy = ReliabilityPolicy::kTripleVote;
  cfg.reliability.faults = LaneFaultTable(1, 3);
  cfg.reliability.faults.add_mul_stuck(0, 0, 3, true);
  cfg.reliability.faults.add_mul_stuck(0, 0, 9, false);
  core::ApimDevice device{cfg};
  EXPECT_EQ(device.mul_magnitude(12345, 999), expected);
}

TEST(DevicePolicy, RepairSurvivesTransientStorm) {
  // Transient flips corrupt the primary execution; the retry draws fresh
  // noise, so with a moderate rate the ladder recovers the exact result.
  core::ApimConfig cfg = small_device_config();
  cfg.reliability.policy = ReliabilityPolicy::kDetectAndRepair;
  cfg.reliability.faults = LaneFaultTable(1, 3);
  cfg.reliability.faults.set_transient(0.05, 424242);
  core::ApimDevice device{cfg};
  util::Xoshiro256 rng(5);
  int corrected = 0;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t a = rng.next() & 0xFFFFu;
    const std::uint64_t b = rng.next() & 0xFFFFu;
    const std::uint64_t before = device.stats().retries;
    EXPECT_EQ(device.mul_magnitude(a, b), a * b) << "i=" << i;
    if (device.stats().retries > before) ++corrected;
  }
  EXPECT_GT(corrected, 0);
  EXPECT_FALSE(device.degraded());
}

TEST(DevicePolicy, FaultStateSurvivesDeviceCloning) {
  // parallel_map workers are built as ApimDevice{device.config()}: the
  // fault table rides in the config, so clones corrupt identically.
  core::ApimConfig cfg = small_device_config();
  cfg.reliability.faults = LaneFaultTable(1, 3);
  cfg.reliability.faults.add_mul_stuck(0, 0, 7, true);
  core::ApimDevice device{cfg};
  core::ApimDevice clone{device.config()};
  EXPECT_EQ(device.mul_magnitude(2, 3), clone.mul_magnitude(2, 3));
  EXPECT_EQ(clone.mul_magnitude(5, 5), 25u | (1u << 7));
}

// ------------------------------------------------------------ campaign --

CampaignConfig small_campaign(ReliabilityPolicy policy) {
  CampaignConfig cfg;
  cfg.apps = {"Sobel", "Robert", "Sharpen"};
  cfg.elements = 1024;
  cfg.trials = 2;
  cfg.stuck_rate = 1e-3;
  cfg.policy = policy;
  cfg.lanes = 16;    // Smaller fabric population keeps the test fast.
  cfg.fault_seed = 7;  // Fixed silicon: reproduces the exact runs below.
  return cfg;
}

TEST(Campaign, DeterministicAcrossRuns) {
  const CampaignConfig cfg = small_campaign(ReliabilityPolicy::kDetectAndRepair);
  const CampaignResult a = run_campaign(cfg);
  const CampaignResult b = run_campaign(cfg);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].qos.metric, b.runs[i].qos.metric) << i;
    EXPECT_EQ(a.runs[i].cycles, b.runs[i].cycles) << i;
    EXPECT_EQ(a.runs[i].energy_pj, b.runs[i].energy_pj) << i;
    EXPECT_EQ(a.runs[i].projected_bits, b.runs[i].projected_bits) << i;
    EXPECT_EQ(a.runs[i].retries, b.runs[i].retries) << i;
  }
}

TEST(Campaign, RepairKeepsEveryImageKernelAboveThreshold) {
  // The headline acceptance property (ISSUE): at a 1e-3 stuck-at rate the
  // unprotected device fails the 30 dB PSNR criterion on the image
  // kernels, while detect-and-repair (BIST + spares + residue retry)
  // keeps every run above it. Same fault seed on both sides: identical
  // silicon, different policy.
  const CampaignResult off = run_campaign(small_campaign(ReliabilityPolicy::kOff));
  const CampaignResult repaired =
      run_campaign(small_campaign(ReliabilityPolicy::kDetectAndRepair));

  ASSERT_FALSE(off.runs.empty());
  for (const CampaignRun& run : off.runs) {
    EXPECT_GT(run.projected_bits, 0u) << run.app << " trial " << run.trial;
    EXPECT_FALSE(run.qos.acceptable) << run.app << " trial " << run.trial;
  }
  EXPECT_TRUE(repaired.all_acceptable());
  EXPECT_EQ(repaired.accept_fraction(), 1.0);
  for (const CampaignRun& run : repaired.runs) {
    EXPECT_GE(run.qos.metric, 30.0) << run.app << " trial " << run.trial;
    // Repair pays: the BIST scan cycles land on the device. (A block can
    // legitimately run out of spares — unrepaired_rows > 0 — and still
    // pass: that residue is exactly what the retry ladder covers.)
    EXPECT_GT(run.cycle_overhead, 0.0) << run.app;
  }
}

TEST(Campaign, VoteAlsoProtectsAndOverheadIsCharged) {
  const CampaignResult vote =
      run_campaign(small_campaign(ReliabilityPolicy::kTripleVote));
  EXPECT_TRUE(vote.all_acceptable());
  for (const CampaignRun& run : vote.runs) {
    EXPECT_GT(run.votes, 0u);
    // Micro-op energy triples; the per-cycle controller overhead does not
    // (the redundant blocks run in the same cycles), so the TOTAL energy
    // lands well above the unprotected run but below a naive 3x.
    EXPECT_GT(run.energy_overhead, 0.4) << run.app;
    EXPECT_LT(run.energy_overhead, 2.0) << run.app;
  }
}

TEST(Campaign, CleanFabricPassesEverywhere) {
  CampaignConfig cfg = small_campaign(ReliabilityPolicy::kOff);
  cfg.stuck_rate = 0.0;
  cfg.trials = 1;
  const CampaignResult result = run_campaign(cfg);
  EXPECT_TRUE(result.all_acceptable());
  for (const CampaignRun& run : result.runs) {
    EXPECT_EQ(run.injected_cells, 0u);
    EXPECT_EQ(run.projected_bits, 0u);
    EXPECT_EQ(run.cycle_overhead, 0.0);
  }
}

}  // namespace
}  // namespace apim::reliability
