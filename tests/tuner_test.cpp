// Tests of the adaptive accuracy tuner (paper Section 4.1: start at 32
// relax bits, step down by 4 until QoS is met).
#include <gtest/gtest.h>

#include <vector>

#include "core/tuner.hpp"

namespace apim::core {
namespace {

TEST(Tuner, AcceptsMaxRelaxWhenErrorIsLow) {
  const AccuracyTuner tuner;
  const TunerResult r = tuner.tune([](unsigned) { return 0.01; }, 0.10);
  EXPECT_TRUE(r.met_qos);
  EXPECT_EQ(r.relax_bits, 32u);
  EXPECT_EQ(r.history.size(), 1u);
}

TEST(Tuner, StepsDownInFours) {
  // Error model: acceptable only at m <= 20.
  const AccuracyTuner tuner;
  const TunerResult r = tuner.tune(
      [](unsigned m) { return m > 20 ? 0.5 : 0.05; }, 0.10);
  EXPECT_TRUE(r.met_qos);
  EXPECT_EQ(r.relax_bits, 20u);
  std::vector<unsigned> visited;
  for (const TunerStep& s : r.history) visited.push_back(s.relax_bits);
  EXPECT_EQ(visited, (std::vector<unsigned>{32, 28, 24, 20}));
}

TEST(Tuner, FallsBackToExact) {
  const AccuracyTuner tuner;
  const TunerResult r = tuner.tune(
      [](unsigned m) { return m == 0 ? 0.0 : 1.0; }, 0.10);
  EXPECT_TRUE(r.met_qos);
  EXPECT_EQ(r.relax_bits, 0u);
  EXPECT_EQ(r.history.size(), 9u);  // 32,28,...,4,0.
}

TEST(Tuner, ReportsFailureWhenEvenExactMisses) {
  const AccuracyTuner tuner;
  const TunerResult r = tuner.tune([](unsigned) { return 1.0; }, 0.10);
  EXPECT_FALSE(r.met_qos);
  EXPECT_EQ(r.relax_bits, 0u);
}

TEST(Tuner, MonotoneErrorPicksLargestAcceptable) {
  // With monotone error in m, the first acceptable m encountered while
  // stepping down is the largest acceptable multiple of the step size.
  const AccuracyTuner tuner;
  const auto error = [](unsigned m) { return 0.004 * m; };
  const TunerResult r = tuner.tune(error, 0.10);
  EXPECT_TRUE(r.met_qos);
  EXPECT_EQ(r.relax_bits, 24u);  // 0.004*24 = 0.096 <= 0.1 < 0.112.
}

TEST(Tuner, CustomStartAndStep) {
  const AccuracyTuner tuner(16, 8);
  const TunerResult r = tuner.tune(
      [](unsigned m) { return m >= 9 ? 1.0 : 0.0; }, 0.5);
  EXPECT_TRUE(r.met_qos);
  EXPECT_EQ(r.relax_bits, 8u);
  std::vector<unsigned> visited;
  for (const TunerStep& s : r.history) visited.push_back(s.relax_bits);
  EXPECT_EQ(visited, (std::vector<unsigned>{16, 8}));
}

TEST(Tuner, HistoryRecordsAcceptability) {
  const AccuracyTuner tuner;
  const TunerResult r = tuner.tune(
      [](unsigned m) { return m > 28 ? 0.2 : 0.01; }, 0.10);
  ASSERT_EQ(r.history.size(), 2u);
  EXPECT_FALSE(r.history[0].acceptable);
  EXPECT_TRUE(r.history[1].acceptable);
}

}  // namespace
}  // namespace apim::core
