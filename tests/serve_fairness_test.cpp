// Fair-share scheduling tests: DRR unit behavior, randomized serving
// stress (conservation, thread-count invariance) via tests/serve_harness.hpp,
// and the 3:1 weighted-contention acceptance criteria — a light tenant
// keeps its weight share of service and near-solo tail latency while an
// aggressive tenant saturates the server.
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/scheduler.hpp"
#include "serve_harness.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace apim;
using serve::ClosedBatch;
using serve::DispatchPick;
using serve::DrrScheduler;
using serve::SchedulerConfig;
using serve_harness::Outcome;
using serve_harness::Scenario;
using serve_harness::TenantSpec;

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { util::set_thread_count(0); }
};

// -- DrrScheduler unit behavior ----------------------------------------------

ClosedBatch make_batch(std::string app, std::size_t ops, std::uint64_t seq) {
  ClosedBatch b;
  b.key.app = std::move(app);
  b.members = {seq};
  b.ops = ops;
  b.seq = seq;
  return b;
}

/// Drain `count` picks without holding streams (caps never bind).
std::vector<std::string> drain(DrrScheduler& sched, std::size_t count) {
  std::vector<std::string> order;
  for (std::size_t i = 0; i < count; ++i) {
    auto pick = sched.next(0);
    if (!pick) break;
    order.push_back(pick->app);
  }
  return order;
}

TEST(ServeDrr, OpsServedInWeightProportion) {
  SchedulerConfig cfg;
  cfg.streams = 1;
  cfg.quantum_ops = 4;
  cfg.weights = {{"a", 3}, {"b", 1}};
  DrrScheduler sched(cfg);
  std::uint64_t seq = 0;
  for (int i = 0; i < 40; ++i) {
    sched.enqueue(make_batch("a", 4, seq++));
    sched.enqueue(make_batch("b", 4, seq++));
  }
  // One credit rotation grants a 12 ops and b 4; with 4-op batches every
  // window of four picks serves a three times and b once — exactly 3:1.
  std::size_t a = 0, b = 0;
  for (const std::string& app : drain(sched, 40)) (app == "a" ? a : b)++;
  EXPECT_EQ(a, 30u);
  EXPECT_EQ(b, 10u);
}

TEST(ServeDrr, SoleTenantTakesEveryStream) {
  SchedulerConfig cfg;
  cfg.streams = 4;
  cfg.quantum_ops = 8;
  DrrScheduler sched(cfg);
  for (std::uint64_t i = 0; i < 6; ++i)
    sched.enqueue(make_batch("a", 4, i));
  // in_flight grows past a's nominal cap, but with nobody else queued the
  // cap is waived: all four streams go to the only tenant with work.
  for (int i = 0; i < 4; ++i) {
    auto pick = sched.next(0);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->app, "a");
    sched.stream_acquired(pick->app);
  }
}

TEST(ServeDrr, StreamCapBindsUnderContention) {
  SchedulerConfig cfg;
  cfg.streams = 4;
  cfg.quantum_ops = 8;
  DrrScheduler sched(cfg);
  std::uint64_t seq = 0;
  for (int i = 0; i < 6; ++i) {
    sched.enqueue(make_batch("a", 4, seq++));
    sched.enqueue(make_batch("b", 4, seq++));
  }
  // Equal weights over four streams: two each. a bursts its quantum (two
  // 4-op batches), hits its cap, and the remaining streams go to b even
  // though a still has queued work.
  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) {
    auto pick = sched.next(0);
    ASSERT_TRUE(pick.has_value());
    order.push_back(pick->app);
    sched.stream_acquired(pick->app);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"a", "a", "b", "b"}));
  // All streams busy at cap; releasing one of a's lets a dispatch again.
  sched.stream_released("a");
  auto pick = sched.next(0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->app, "a");
}

TEST(ServeDrr, FifoModePreservesCloseOrder) {
  SchedulerConfig cfg;
  cfg.fair_share = false;
  cfg.streams = 1;
  DrrScheduler sched(cfg);
  const std::vector<std::string> close_order = {"a", "b", "a", "b", "b", "a"};
  for (std::size_t i = 0; i < close_order.size(); ++i)
    sched.enqueue(make_batch(close_order[i], 4, i));
  EXPECT_EQ(drain(sched, close_order.size()), close_order);
}

TEST(ServeDrr, RefundRestoresBacklogShareButNotIdleCredit) {
  SchedulerConfig cfg;
  cfg.streams = 1;
  cfg.quantum_ops = 4;
  DrrScheduler sched(cfg);
  std::uint64_t seq = 0;
  for (int i = 0; i < 4; ++i) {
    sched.enqueue(make_batch("a", 4, seq++));
    sched.enqueue(make_batch("b", 4, seq++));
  }
  // Equal weights alternate a, b. A refund while a is backlogged (expired
  // members whose ops were charged but never executed) buys a its next
  // serves in place — it bursts through its remaining queue before the
  // ring moves on to b's backlog.
  EXPECT_EQ(drain(sched, 2), (std::vector<std::string>{"a", "b"}));
  sched.refund("a", 8);
  EXPECT_EQ(drain(sched, 3), (std::vector<std::string>{"a", "a", "a"}));
  // Drain b too; a refund to an idle tenant is forfeited, so when a
  // returns it starts a fresh round instead of cashing hoarded credit.
  EXPECT_EQ(drain(sched, 3), (std::vector<std::string>{"b", "b", "b"}));
  sched.refund("a", 100);
  sched.enqueue(make_batch("a", 4, seq++));
  sched.enqueue(make_batch("b", 4, seq++));
  auto pick = sched.next(0);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->deficit_carried, 0u);
}

// -- Randomized stress: conservation ----------------------------------------

TEST(ServeConservation, RandomScenariosLoseNothing) {
  ThreadCountGuard guard;
  util::set_thread_count(1);
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const Scenario s = serve_harness::random_scenario(seed);
    const Outcome out = serve_harness::run_scenario(s);
    EXPECT_EQ(serve_harness::check_conservation(out), "")
        << "scenario seed " << seed;
    EXPECT_EQ(out.responses.size(), out.trace.size())
        << "scenario seed " << seed;
  }
}

// -- Randomized stress: thread-count invariance ------------------------------

TEST(ServeThreadInvariance, RandomScenariosBitExactAcrossWorkerCounts) {
  ThreadCountGuard guard;
  for (std::uint64_t seed = 101; seed <= 120; ++seed) {
    const Scenario s = serve_harness::random_scenario(seed);
    util::set_thread_count(1);
    const Outcome reference = serve_harness::run_scenario(s);
    for (const std::size_t threads : {2u, 7u}) {
      util::set_thread_count(threads);
      const Outcome run = serve_harness::run_scenario(s);
      EXPECT_EQ(serve_harness::diff_outcomes(reference, run), "")
          << "scenario seed " << seed << ", threads " << threads;
    }
  }
}

// -- Randomized stress: backend invariance ----------------------------------

// The bitsliced tier executes the exact batches the Batcher seals, so a
// whole serving run — responses, fairness counters, energy doubles, every
// metrics field — must be bit-identical to the word-level backend, for
// every thread count (tests/bitsliced_equivalence_test.cpp covers the
// arithmetic layer; this covers the composed serving runtime, including
// QoS escalation reruns).
TEST(ServeBackendInvariance, BitslicedScenarioBitExactVsFastBackend) {
  ThreadCountGuard guard;
  for (const std::uint64_t seed : {7ull, 131ull, 909ull}) {
    Scenario s = serve_harness::random_scenario(seed);
    // Tight deadlines on tenant a force QoS escalate-on-miss reruns
    // through the batch path as well.
    s.tenants.front().deadline = 30000;
    util::set_thread_count(1);
    s.server.device.backend = core::Backend::kFast;
    const Outcome reference = serve_harness::run_scenario(s);
    s.server.device.backend = core::Backend::kBitsliced;
    for (const std::size_t threads : {1u, 2u, 7u}) {
      util::set_thread_count(threads);
      const Outcome run = serve_harness::run_scenario(s);
      EXPECT_EQ(serve_harness::diff_outcomes(reference, run), "")
          << "scenario seed " << seed << ", threads " << threads;
    }
  }
}

// -- Weighted contention: the 3:1 acceptance criteria ------------------------

struct ContentionSetup {
  serve::ServerConfig server;
  TenantSpec heavy;
  TenantSpec light;
  double capacity_ops_per_kcycle = 0.0;
};

/// Shared fixture: calibrate the server's capacity once, then size the
/// offered loads from it — heavy saturates (3x capacity), light asks for
/// a bit more than its 25% weight share so it stays backlogged and DRR,
/// not its own arrival rate, decides what it receives.
///
/// Two deliberate shape choices keep the acceptance thresholds meaningful:
/// the op budget (16) spans several lane rounds (4 lanes), so a partially
/// expired batch frees its stream proportionally early instead of burning
/// a full round; and the batch window dominates the solo p99, so the
/// light tenant's deadline (1.5x solo p99) leaves the served tail under
/// 2x solo even with batch execution time on top.
ContentionSetup make_contention_setup() {
  ContentionSetup c;
  c.server.streams = 4;
  c.server.lanes_per_stream = 4;
  c.server.max_batch_ops = 16;
  c.server.batch_window = 2500;
  c.server.dispatch_cycles = 64;
  c.server.queue_capacity = 8192;  // Shed by deadline, not admission.

  c.heavy.name = "heavy";
  c.heavy.weight = 3;
  c.heavy.width = 12;
  c.heavy.min_ops = 2;
  c.heavy.max_ops = 12;
  c.heavy.requests = 400;
  c.heavy.rate_per_kcycle = 64.0;  // Saturating during calibration.

  c.light.name = "light";
  c.light.weight = 1;
  c.light.width = 12;
  c.light.min_ops = 2;
  c.light.max_ops = 12;
  c.light.requests = 150;

  c.capacity_ops_per_kcycle =
      serve_harness::measure_capacity_ops_per_kcycle(c.server, c.heavy, 7);

  const double mean_ops = (c.heavy.min_ops + c.heavy.max_ops) / 2.0;
  c.heavy.rate_per_kcycle = 3.0 * c.capacity_ops_per_kcycle / mean_ops;
  // 12% above the light tenant's 25% weight share: backlogged enough that
  // the scheduler, not the arrival process, decides what light receives,
  // while the modest excess (shed by deadline) keeps its dispatched
  // batches nearly fully live.
  c.light.rate_per_kcycle =
      1.12 * 0.25 * c.capacity_ops_per_kcycle / mean_ops;
  return c;
}

TEST(FairShareContention, LightTenantKeepsShareAndLatency) {
  ThreadCountGuard guard;
  util::set_thread_count(1);
  const ContentionSetup c = make_contention_setup();
  ASSERT_GT(c.capacity_ops_per_kcycle, 0.0);

  std::size_t share_ok = 0, latency_ok = 0, jain_ok = 0, seeds = 0;
  for (std::uint64_t seed = 201; seed <= 220; ++seed, ++seeds) {
    // Solo baseline: the light tenant alone on the same server.
    Scenario solo;
    solo.seed = seed;
    solo.server = c.server;
    solo.tenants = {c.light};
    const Outcome solo_out = serve_harness::run_scenario(solo);
    ASSERT_EQ(serve_harness::check_conservation(solo_out), "")
        << "solo seed " << seed;
    const double p99_solo = serve_harness::app_p99_latency(solo_out, "light");
    ASSERT_GT(p99_solo, 0.0) << "solo seed " << seed;

    // Mixed run under DRR: light sheds its ~12% excess via a deadline a
    // little past its solo tail, so served requests stay near solo
    // latency while the tenant remains backlogged for its full share.
    Scenario mixed;
    mixed.seed = seed;
    mixed.server = c.server;
    mixed.tenants = {c.light, c.heavy};
    mixed.tenants[0].deadline = static_cast<util::Cycles>(1.5 * p99_solo);
    const Outcome drr = serve_harness::run_scenario(mixed);
    ASSERT_EQ(serve_harness::check_conservation(drr), "")
        << "mixed seed " << seed;

    const double share = serve_harness::served_ops_share(drr.snap, "light");
    const double p99_mixed = serve_harness::app_p99_latency(drr, "light");
    if (share >= 0.225 && share <= 0.275) ++share_ok;
    if (p99_mixed <= 2.0 * p99_solo) ++latency_ok;
    if (drr.snap.jain_fairness >= 0.9) ++jain_ok;

    // Deadline shedding bounds starvation by construction: a dispatched
    // batch with a surviving member waited at most that member's deadline.
    const auto it = drr.snap.per_app.find("light");
    ASSERT_NE(it, drr.snap.per_app.end()) << "mixed seed " << seed;
    EXPECT_LE(it->second.max_starvation_cycles, mixed.tenants[0].deadline)
        << "mixed seed " << seed;

    // The same contention without fair-share: the global FIFO lets the
    // heavy tenant's backlog push light batches past their deadlines.
    Scenario fifo = mixed;
    fifo.server.fair_share = false;
    const Outcome fifo_out = serve_harness::run_scenario(fifo);
    ASSERT_EQ(serve_harness::check_conservation(fifo_out), "")
        << "fifo seed " << seed;
    const std::uint64_t drr_expired = serve_harness::app_status_count(
        drr, "light", serve::RequestStatus::kExpired);
    const std::uint64_t fifo_expired = serve_harness::app_status_count(
        fifo_out, "light", serve::RequestStatus::kExpired);
    EXPECT_LT(drr_expired, fifo_expired) << "seed " << seed;
    EXPECT_GT(drr.snap.jain_fairness, fifo_out.snap.jain_fairness)
        << "seed " << seed;
  }

  // Virtual time makes each seed deterministic, but arrival draws differ
  // per seed; require the acceptance criteria on (nearly) every seed.
  EXPECT_GE(share_ok, seeds - 1) << share_ok << "/" << seeds;
  EXPECT_GE(latency_ok, seeds - 1) << latency_ok << "/" << seeds;
  EXPECT_GE(jain_ok, seeds - 1) << jain_ok << "/" << seeds;
}

TEST(FairShareContention, SingleTenantScheduleMatchesFifo) {
  ThreadCountGuard guard;
  util::set_thread_count(1);
  // With one tenant DRR degenerates to the legacy FIFO: same batches,
  // same dispatch times, same responses. Only the deficit bookkeeping
  // (invisible to the served results) differs.
  Scenario s = serve_harness::random_scenario(42);
  s.tenants.resize(1);
  s.server.fair_share = true;
  const Outcome drr = serve_harness::run_scenario(s);
  s.server.fair_share = false;
  const Outcome fifo = serve_harness::run_scenario(s);
  ASSERT_EQ(drr.responses.size(), fifo.responses.size());
  for (std::size_t i = 0; i < drr.responses.size(); ++i) {
    EXPECT_EQ(drr.responses[i].status, fifo.responses[i].status);
    EXPECT_EQ(drr.responses[i].values, fifo.responses[i].values);
    EXPECT_EQ(drr.responses[i].dispatch, fifo.responses[i].dispatch);
    EXPECT_EQ(drr.responses[i].completion, fifo.responses[i].completion);
  }
  EXPECT_EQ(drr.snap.batches, fifo.snap.batches);
  EXPECT_EQ(drr.snap.span_cycles, fifo.snap.span_cycles);
}

}  // namespace
