// Tests of the Wallace-tree reduction planner.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "arith/fa_schedule.hpp"
#include "arith/tree_plan.hpp"

namespace apim::arith {
namespace {

std::vector<unsigned> uniform_widths(std::size_t count, unsigned w) {
  return std::vector<unsigned>(count, w);
}

TEST(TreePlan, StageCountMatchesPaperExample) {
  // Paper Figure 2(b): nine operands reduce to two in four stages.
  EXPECT_EQ(reduction_stage_count(9), 4u);
  EXPECT_EQ(reduction_stage_count(3), 1u);
  EXPECT_EQ(reduction_stage_count(2), 0u);
  EXPECT_EQ(reduction_stage_count(1), 0u);
  EXPECT_EQ(reduction_stage_count(4), 2u);
  EXPECT_EQ(reduction_stage_count(32), 8u);
}

TEST(TreePlan, PlanStagesMatchClosedForm) {
  for (std::size_t m = 3; m <= 40; ++m) {
    const auto widths = uniform_widths(m, 8);
    const TreePlan plan = plan_tree_reduction(widths, 16, 1, 2);
    EXPECT_EQ(plan.stages.size(), reduction_stage_count(m)) << "M=" << m;
    EXPECT_EQ(plan.final_ids.size(), 2u);
  }
}

TEST(TreePlan, NineOperandFinalWidthGrowsOnePerStage) {
  // Paper Section 3.2 quotes "two (N+3)-bit numbers" for nine addends; our
  // planner uses the safe bound of one extra bit per traversed stage,
  // capped at n + ceil(log2 M) = N+4 (nine maximal operands genuinely need
  // 2^(N+3) < 9*2^N, so N+3 would under-provision the worst case).
  const unsigned n = 16;
  const auto widths = uniform_widths(9, n);
  const TreePlan plan = plan_tree_reduction(widths, n + 4, 1, 2);
  for (std::size_t id : plan.final_ids) {
    EXPECT_GE(plan.operands[id].width, n + 3);
    EXPECT_LE(plan.operands[id].width, n + 4);
  }
}

TEST(TreePlan, TargetBlockAlternates) {
  const auto widths = uniform_widths(9, 8);
  const TreePlan plan = plan_tree_reduction(widths, 16, 1, 2);
  ASSERT_EQ(plan.stages.size(), 4u);
  EXPECT_EQ(plan.stages[0].target_block, 2u);
  EXPECT_EQ(plan.stages[1].target_block, 1u);
  EXPECT_EQ(plan.stages[2].target_block, 2u);
  EXPECT_EQ(plan.stages[3].target_block, 1u);
}

TEST(TreePlan, FinalOperandsShareABlock) {
  // The multiplier's final-stage adder (and its MAJ sense path) requires
  // the two survivors on the same block.
  for (std::size_t m = 2; m <= 33; ++m) {
    const auto widths = uniform_widths(m, 8);
    const TreePlan plan = plan_tree_reduction(widths, 16, 1, 2);
    ASSERT_EQ(plan.final_ids.size(), 2u) << "M=" << m;
    EXPECT_EQ(plan.operands[plan.final_ids[0]].block,
              plan.operands[plan.final_ids[1]].block)
        << "M=" << m;
  }
}

TEST(TreePlan, ScratchBandsNeverOverlapWithinABlock) {
  const auto widths = uniform_widths(32, 40);
  const TreePlan plan = plan_tree_reduction(widths, 64, 1, 2);
  // Collect [row, row+12) bands per block, ensure pairwise disjoint, and
  // disjoint from the initial operand rows in block 1.
  std::set<std::pair<std::size_t, std::size_t>> cells;  // (block, row)
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const TreeOperand& op = plan.operands[i];
    EXPECT_TRUE(cells.insert({op.block, op.row}).second);
  }
  for (const TreeStage& stage : plan.stages)
    for (const TreeGroup& g : stage.groups)
      for (unsigned r = 0; r < kFaScratchSlots; ++r)
        EXPECT_TRUE(
            cells.insert({stage.target_block, g.scratch_row + r}).second)
            << "block " << stage.target_block << " row "
            << g.scratch_row + r;
}

TEST(TreePlan, WidthsAreCapped) {
  const auto widths = uniform_widths(32, 63);
  const TreePlan plan = plan_tree_reduction(widths, 64, 1, 2);
  for (const TreeOperand& op : plan.operands) EXPECT_LE(op.width, 64u);
  EXPECT_LE(plan.max_col, 64u);
}

TEST(TreePlan, GroupWidthIsMaxInputPlusOne) {
  const std::vector<unsigned> widths{4, 7, 5};
  const TreePlan plan = plan_tree_reduction(widths, 16, 1, 2);
  ASSERT_EQ(plan.stages.size(), 1u);
  ASSERT_EQ(plan.stages[0].groups.size(), 1u);
  EXPECT_EQ(plan.stages[0].groups[0].fa_width, 8u);
}

TEST(TreePlan, PassThroughOperandsStayPut) {
  const auto widths = uniform_widths(4, 8);  // 4 -> group(3) + 1 leftover.
  const TreePlan plan = plan_tree_reduction(widths, 16, 1, 2);
  ASSERT_EQ(plan.stages.size(), 2u);
  ASSERT_EQ(plan.stages[0].pass_through.size(), 1u);
  const std::size_t leftover = plan.stages[0].pass_through[0];
  EXPECT_EQ(leftover, 3u);  // The fourth initial operand.
  EXPECT_EQ(plan.operands[leftover].block, 1u);  // Never moved.
}

TEST(TreePlan, RowsUsedCoverAllPlacements) {
  const auto widths = uniform_widths(20, 16);
  const TreePlan plan = plan_tree_reduction(widths, 32, 1, 2);
  for (const TreeOperand& op : plan.operands) {
    const std::size_t bound =
        op.block == 1 ? plan.rows_used_block_a : plan.rows_used_block_b;
    EXPECT_LT(op.row, bound);
  }
}

TEST(TreePlan, TwoOperandsProduceEmptyPlan) {
  const auto widths = uniform_widths(2, 8);
  const TreePlan plan = plan_tree_reduction(widths, 16, 1, 2);
  EXPECT_TRUE(plan.stages.empty());
  EXPECT_EQ(plan.final_ids.size(), 2u);
  EXPECT_EQ(plan.final_ids[0], 0u);
  EXPECT_EQ(plan.final_ids[1], 1u);
}

}  // namespace
}  // namespace apim::arith
