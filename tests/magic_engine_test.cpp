// Unit tests for the MAGIC engine: NOR semantics, cycle accounting and
// energy bookkeeping.
#include <gtest/gtest.h>

#include <vector>

#include "magic/engine.hpp"

namespace apim::magic {
namespace {

using crossbar::BlockedCrossbar;
using crossbar::CellAddr;
using crossbar::CrossbarConfig;

class MagicEngineTest : public ::testing::Test {
 protected:
  MagicEngineTest()
      : xbar_(CrossbarConfig{3, 8, 16}),
        engine_(xbar_, device::EnergyModel::paper_defaults()) {}

  BlockedCrossbar xbar_;
  MagicEngine engine_;
};

TEST_F(MagicEngineTest, NorTruthTableTwoInputs) {
  const CellAddr a{0, 0, 0}, b{0, 0, 1};
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      xbar_.set(a, av != 0);
      xbar_.set(b, bv != 0);
      const CellAddr dst{0, 0, 2};
      std::vector<CellAddr> init{dst};
      engine_.init_cells(init);
      std::vector<CellAddr> ins{a, b};
      engine_.nor(dst, ins);
      EXPECT_EQ(xbar_.get(dst), !(av || bv)) << av << "," << bv;
    }
  }
}

TEST_F(MagicEngineTest, NorThreeInputs) {
  const CellAddr a{0, 0, 0}, b{0, 0, 1}, c{0, 0, 2}, dst{0, 0, 3};
  xbar_.set(c, true);
  std::vector<CellAddr> init{dst};
  engine_.init_cells(init);
  std::vector<CellAddr> ins{a, b, c};
  engine_.nor(dst, ins);
  EXPECT_FALSE(xbar_.get(dst));
}

TEST_F(MagicEngineTest, InitChargesOneCycleForWholeBatch) {
  std::vector<CellAddr> cells;
  for (unsigned i = 0; i < 10; ++i) cells.push_back(CellAddr{0, 1, i});
  engine_.init_cells(cells);
  EXPECT_EQ(engine_.cycles(), 1u);
  EXPECT_EQ(engine_.stats().init_cells, 10u);
  for (const auto& c : cells) EXPECT_TRUE(xbar_.get(c));
}

TEST_F(MagicEngineTest, OverlappedInitChargesNoCycle) {
  std::vector<CellAddr> cells{CellAddr{0, 1, 0}};
  engine_.init_cells(cells, /*overlapped=*/true);
  EXPECT_EQ(engine_.cycles(), 0u);
  EXPECT_GT(engine_.energy_pj(), 0.0);  // Energy still charged.
}

TEST_F(MagicEngineTest, NorParallelSharesOneCycle) {
  std::vector<CellAddr> init;
  std::vector<NorOp> ops;
  for (unsigned i = 0; i < 8; ++i) {
    const CellAddr dst{0, 2, i};
    init.push_back(dst);
    ops.push_back(NorOp{dst, {CellAddr{0, 0, i}}});
  }
  engine_.init_cells(init);
  engine_.nor_parallel(ops);
  EXPECT_EQ(engine_.cycles(), 2u);  // 1 init + 1 parallel NOR.
  EXPECT_EQ(engine_.stats().nor_ops, 8u);
}

TEST_F(MagicEngineTest, ParallelNotInvertsRow) {
  // Row 0 holds a pattern; NOT it into row 1.
  xbar_.write_word(CellAddr{0, 0, 0}, 8, 0b10110010);
  std::vector<CellAddr> init;
  std::vector<NorOp> ops;
  for (unsigned i = 0; i < 8; ++i) {
    const CellAddr dst{0, 1, i};
    init.push_back(dst);
    ops.push_back(NorOp{dst, {CellAddr{0, 0, i}}});
  }
  engine_.init_cells(init);
  engine_.nor_parallel(ops);
  EXPECT_EQ(engine_.peek_word(CellAddr{0, 1, 0}, 8), 0b01001101u);
}

TEST_F(MagicEngineTest, ReadBitChargesEnergyNotCycles) {
  xbar_.set(CellAddr{0, 0, 0}, true);
  EXPECT_TRUE(engine_.read_bit(CellAddr{0, 0, 0}));
  EXPECT_EQ(engine_.cycles(), 0u);
  EXPECT_GT(engine_.stats().energy_ops_pj, 0.0);
  EXPECT_EQ(engine_.stats().reads, 1u);
}

TEST_F(MagicEngineTest, SaMajorityComputesCarry) {
  // Three cells on one bitline of one block.
  xbar_.set(CellAddr{1, 0, 3}, true);
  xbar_.set(CellAddr{1, 1, 3}, true);
  EXPECT_TRUE(engine_.sa_majority(CellAddr{1, 0, 3}, CellAddr{1, 1, 3},
                                  CellAddr{1, 2, 3}));
  EXPECT_FALSE(engine_.sa_majority(CellAddr{1, 0, 3}, CellAddr{1, 2, 3},
                                   CellAddr{1, 3, 3}));
  EXPECT_EQ(engine_.cycles(), 2u);  // One cycle per MAJ.
  EXPECT_EQ(engine_.stats().majority_ops, 2u);
}

TEST_F(MagicEngineTest, WriteWordOneCycle) {
  engine_.write_word(CellAddr{0, 3, 0}, 12, 0xABC);
  EXPECT_EQ(engine_.cycles(), 1u);
  EXPECT_EQ(engine_.stats().writes, 12u);
  EXPECT_EQ(engine_.peek_word(CellAddr{0, 3, 0}, 12), 0xABCu);
}

TEST_F(MagicEngineTest, CrossBlockNorChargesInterconnect) {
  xbar_.set(CellAddr{0, 0, 0}, true);
  std::vector<CellAddr> init{CellAddr{1, 0, 0}};
  engine_.init_cells(init);
  std::vector<CellAddr> ins{CellAddr{0, 0, 0}};
  engine_.nor(CellAddr{1, 0, 0}, ins);
  EXPECT_EQ(engine_.stats().interconnect_bits, 1u);
  // Two blocks apart -> two hops.
  std::vector<CellAddr> init2{CellAddr{2, 0, 1}};
  engine_.init_cells(init2);
  engine_.nor(CellAddr{2, 0, 1}, ins);
  EXPECT_EQ(engine_.stats().interconnect_bits, 3u);
}

TEST_F(MagicEngineTest, ChargeInterconnectAddsEnergyOnly) {
  const double before = engine_.energy_pj();
  engine_.charge_interconnect(10);
  EXPECT_EQ(engine_.cycles(), 0u);
  EXPECT_GT(engine_.energy_pj(), before);
  EXPECT_EQ(engine_.stats().interconnect_bits, 10u);
}

TEST_F(MagicEngineTest, EnergyIncludesPerCycleOverhead) {
  const auto& em = engine_.energy_model();
  engine_.add_idle_cycles(100);
  EXPECT_NEAR(engine_.energy_pj(), 100.0 * em.e_cycle_overhead_pj, 1e-12);
}

TEST_F(MagicEngineTest, ResetStatsPreservesCells) {
  engine_.write_word(CellAddr{0, 0, 0}, 4, 0xF);
  engine_.reset_stats();
  EXPECT_EQ(engine_.cycles(), 0u);
  EXPECT_EQ(engine_.peek_word(CellAddr{0, 0, 0}, 4), 0xFu);
}

TEST_F(MagicEngineTest, NorOutputSwitchCostsMoreThanNoSwitch) {
  // Result 0 (input high) switches the output cell; result 1 does not.
  const auto& em = engine_.energy_model();
  xbar_.set(CellAddr{0, 0, 0}, true);

  std::vector<CellAddr> init{CellAddr{0, 4, 0}};
  engine_.init_cells(init, true);
  const double e0 = engine_.stats().energy_ops_pj;
  std::vector<CellAddr> high{CellAddr{0, 0, 0}};
  engine_.nor(CellAddr{0, 4, 0}, high);
  const double e_switch = engine_.stats().energy_ops_pj - e0;

  std::vector<CellAddr> init2{CellAddr{0, 4, 1}};
  engine_.init_cells(init2, true);
  const double e1 = engine_.stats().energy_ops_pj;
  std::vector<CellAddr> low{CellAddr{0, 0, 1}};  // Holds 0.
  engine_.nor(CellAddr{0, 4, 1}, low);
  const double e_hold = engine_.stats().energy_ops_pj - e1;

  // Different input states change conduction, but the switch term must
  // dominate the difference.
  EXPECT_GT(e_switch + em.e_input_off_pj, e_hold);
}

}  // namespace
}  // namespace apim::magic
