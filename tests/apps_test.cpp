// Integration tests of the six applications: exact-mode equivalence with
// the golden path, QoS degradation with relax bits, tuner convergence, and
// the baseline-model hooks.
#include <gtest/gtest.h>

#include <memory>

#include "apps/app.hpp"
#include "core/tuner.hpp"
#include "quality/qos.hpp"

namespace apim::apps {
namespace {

constexpr std::size_t kElements = 1024;
constexpr std::uint64_t kSeed = 2017;

core::ApimDevice make_device(unsigned relax) {
  core::ApimConfig cfg;
  cfg.approx.relax_bits = relax;
  return core::ApimDevice{cfg};
}

class AllAppsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AllAppsTest, FactoryProducesApp) {
  const auto app = make_application(GetParam());
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->name(), GetParam());
}

TEST_P(AllAppsTest, GenerationIsDeterministic) {
  auto a = make_application(GetParam());
  auto b = make_application(GetParam());
  a->generate(kElements, kSeed);
  b->generate(kElements, kSeed);
  EXPECT_EQ(a->run_golden(), b->run_golden());
}

TEST_P(AllAppsTest, ExactModeMatchesGolden) {
  // Table 1, m = 0 column: quality loss is exactly 0% — the exact APIM
  // path computes the identical integer program.
  auto app = make_application(GetParam());
  app->generate(kElements, kSeed);
  core::ApimDevice dev = make_device(0);
  const auto golden = app->run_golden();
  const auto apim = app->run_apim(dev);
  ASSERT_EQ(golden.size(), apim.size());
  for (std::size_t i = 0; i < golden.size(); ++i)
    ASSERT_DOUBLE_EQ(golden[i], apim[i]) << GetParam() << " idx " << i;
  EXPECT_GT(dev.stats().multiplies, 0u);
}

TEST_P(AllAppsTest, QualityDegradesWithRelaxBits) {
  auto app = make_application(GetParam());
  app->generate(kElements, kSeed);
  const auto golden = app->run_golden();
  double loss_low = 0.0, loss_high = 0.0;
  {
    core::ApimDevice dev = make_device(8);
    loss_low = quality::evaluate_qos(app->qos(), golden,
                                     app->run_apim(dev)).loss;
  }
  {
    core::ApimDevice dev = make_device(32);
    loss_high = quality::evaluate_qos(app->qos(), golden,
                                      app->run_apim(dev)).loss;
  }
  EXPECT_LE(loss_low, loss_high) << GetParam();
  EXPECT_GT(loss_high, 0.0) << GetParam();
}

TEST_P(AllAppsTest, RelaxBitsCutCyclesAndEnergy) {
  auto app = make_application(GetParam());
  app->generate(kElements, kSeed);
  core::ApimDevice exact = make_device(0);
  core::ApimDevice relaxed = make_device(32);
  (void)app->run_apim(exact);
  (void)app->run_apim(relaxed);
  EXPECT_LT(relaxed.stats().cycles, exact.stats().cycles) << GetParam();
  EXPECT_LT(relaxed.energy_pj(), exact.energy_pj()) << GetParam();
}

TEST_P(AllAppsTest, TunerFindsQosCompliantSetting) {
  // The paper's adaptive flow: max approximation first, step down by 4
  // until the QoS criterion holds. Every app must converge (m = 0 always
  // passes since exact mode is loss-free).
  auto app = make_application(GetParam());
  app->generate(kElements, kSeed);
  const auto golden = app->run_golden();
  const quality::QosSpec spec = app->qos();

  const core::AccuracyTuner tuner;
  const auto evaluate = [&](unsigned m) {
    core::ApimDevice dev = make_device(m);
    const auto out = app->run_apim(dev);
    const auto eval = quality::evaluate_qos(spec, golden, out);
    // The tuner minimizes a loss; encode "acceptable" as loss below the
    // spec-equivalent threshold.
    return eval.acceptable ? 0.0 : 1.0;
  };
  const core::TunerResult r = tuner.tune(evaluate, 0.5);
  EXPECT_TRUE(r.met_qos) << GetParam();

  // Verify the chosen setting really meets QoS end to end.
  core::ApimDevice dev = make_device(r.relax_bits);
  const auto out = app->run_apim(dev);
  EXPECT_TRUE(quality::evaluate_qos(spec, golden, out).acceptable)
      << GetParam() << " at m=" << r.relax_bits;
}

TEST_P(AllAppsTest, GpuProfileIsSane) {
  const auto app = make_application(GetParam());
  const baseline::GpuAppProfile p = app->gpu_profile();
  EXPECT_GT(p.ops_per_element, 0.0);
  EXPECT_GT(p.traffic_bytes_per_element, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Apps, AllAppsTest,
                         ::testing::Values("Sobel", "Robert", "FFT",
                                           "DwtHaar1D", "Sharpen", "QuasiR"));

TEST(AppRegistry, AllSixInTableOrder) {
  const auto apps = make_all_applications();
  ASSERT_EQ(apps.size(), 6u);
  EXPECT_EQ(apps[0]->name(), "Sobel");
  EXPECT_EQ(apps[1]->name(), "Robert");
  EXPECT_EQ(apps[2]->name(), "FFT");
  EXPECT_EQ(apps[3]->name(), "DwtHaar1D");
  EXPECT_EQ(apps[4]->name(), "Sharpen");
  EXPECT_EQ(apps[5]->name(), "QuasiR");
}

TEST(AppRegistry, UnknownNameReturnsNull) {
  EXPECT_EQ(make_application("NoSuchApp"), nullptr);
}

TEST(AppQos, ImageAppsUsePsnrNumericAppsUseRelErr) {
  for (const auto& app : make_all_applications()) {
    const auto kind = app->qos().kind;
    const bool is_image = app->name() == "Sobel" || app->name() == "Robert" ||
                          app->name() == "Sharpen";
    EXPECT_EQ(kind == quality::QosKind::kPsnr, is_image) << app->name();
  }
}

}  // namespace
}  // namespace apim::apps
