// Tests of the full APIM multiplier (both simulation levels): exact
// correctness, approximation semantics, latency formulas and the PPG
// popcount-dependence the paper highlights.
#include <gtest/gtest.h>

#include "arith/fast_units.hpp"
#include "arith/inmemory_units.hpp"
#include "arith/latency_model.hpp"
#include "arith/word_models.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::arith {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

// ------------------------------------------------------------------- ppg --

TEST(Ppg, GeneratesOnePartialPerSetBit) {
  const PpgResult r = word_ppg(0xAB, 0b1010, 8, 0, em());
  ASSERT_EQ(r.partials.size(), 2u);
  EXPECT_EQ(r.partials[0], 0xABull << 1);
  EXPECT_EQ(r.partials[1], 0xABull << 3);
  EXPECT_EQ(r.widths[0], 9u);
  EXPECT_EQ(r.widths[1], 11u);
}

TEST(Ppg, CyclesArePopcountPlusOne) {
  // Section 3.3: shared invert + one copy per '1' bit; worst case N+1.
  for (std::uint64_t m2 : {0b1ull, 0b1111ull, 0xFFull, 0x55ull}) {
    const PpgResult r = word_ppg(0x3C, m2, 8, 0, em());
    const unsigned p = static_cast<unsigned>(util::popcount(m2));
    EXPECT_EQ(r.cycles, ppg_cycles(p)) << "m2=" << m2;
  }
  EXPECT_EQ(word_ppg(0x3C, 0, 8, 0, em()).cycles, 0u);
  EXPECT_EQ(word_ppg(0x3C, 0xFF, 8, 0, em()).cycles, 9u);  // N+1.
}

TEST(Ppg, MaskingSkipsLowBits) {
  const PpgResult r = word_ppg(0xFF, 0b00001111, 8, 2, em());
  ASSERT_EQ(r.partials.size(), 2u);  // Bits 2 and 3 survive.
  EXPECT_EQ(r.partials[0], 0xFFull << 2);
  // Masked bits are not even read: energy shrinks.
  const PpgResult unmasked = word_ppg(0xFF, 0b00001111, 8, 0, em());
  EXPECT_LT(r.energy_ops_pj, unmasked.energy_ops_pj);
}

// ---------------------------------------------------------- exact multiply --

TEST(Multiply, FastModelExactOverRandomOperands) {
  util::Xoshiro256 rng(51);
  for (int trial = 0; trial < 500; ++trial) {
    const unsigned n = 1 + static_cast<unsigned>(rng.next_below(32));
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    const MultiplyOutcome r =
        fast_multiply(a, b, n, ApproxConfig::exact(), em());
    EXPECT_EQ(r.product, a * b) << "n=" << n << " a=" << a << " b=" << b;
  }
}

TEST(Multiply, EngineExactOverRandomOperands) {
  util::Xoshiro256 rng(52);
  for (int trial = 0; trial < 25; ++trial) {
    const unsigned n = 4 + static_cast<unsigned>(rng.next_below(13));
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    const InMemoryResult r =
        inmemory_multiply(a, b, n, ApproxConfig::exact(), em());
    EXPECT_EQ(r.value, a * b) << "n=" << n << " a=" << a << " b=" << b;
  }
}

TEST(Multiply, EdgeOperands) {
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    const std::uint64_t max = util::low_mask(n);
    EXPECT_EQ(fast_multiply(0, 123 & max, n, {}, em()).product, 0u);
    EXPECT_EQ(fast_multiply(123 & max, 0, n, {}, em()).product, 0u);
    EXPECT_EQ(fast_multiply(1, max, n, {}, em()).product, max);
    EXPECT_EQ(fast_multiply(max, max, n, {}, em()).product, max * max);
  }
}

TEST(Multiply, ZeroMultiplierCostsNothing) {
  const MultiplyOutcome r = fast_multiply(0xFFFF, 0, 16, {}, em());
  EXPECT_EQ(r.cycles, 0u);
  EXPECT_EQ(r.partial_count, 0u);
}

TEST(Multiply, SingleBitMultiplierSkipsTreeAndFinal) {
  const MultiplyOutcome r = fast_multiply(0xABCD, 1u << 7, 16, {}, em());
  EXPECT_EQ(r.product, 0xABCDull << 7);
  EXPECT_EQ(r.partial_count, 1u);
  EXPECT_EQ(r.tree_stages, 0u);
  EXPECT_EQ(r.cycles, ppg_cycles(1));
}

TEST(Multiply, CycleFormulaMatchesMeasured) {
  util::Xoshiro256 rng(53);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned n = 4 + static_cast<unsigned>(rng.next_below(29));
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    const ApproxConfig cfg{
        static_cast<unsigned>(rng.next_below(n)),
        static_cast<unsigned>(rng.next_below(2 * n + 1))};
    const MultiplyOutcome r = fast_multiply(a, b, n, cfg, em());
    const unsigned p = static_cast<unsigned>(util::popcount(
        b & ~util::low_mask(cfg.mask_bits) & util::low_mask(n)));
    EXPECT_EQ(r.cycles, multiply_cycles(n, p, cfg))
        << "n=" << n << " p=" << p;
  }
}

TEST(Multiply, PopcountDrivesLatency) {
  // Section 3.3: "the actual delay would vary depending upon the number of
  // '1s' in M2"; sparse multipliers finish faster.
  const MultiplyOutcome dense = fast_multiply(0xFFFF, 0xFFFF, 16, {}, em());
  const MultiplyOutcome sparse = fast_multiply(0xFFFF, 0x8001, 16, {}, em());
  EXPECT_LT(sparse.cycles, dense.cycles);
  EXPECT_LT(sparse.energy_ops_pj, dense.energy_ops_pj);
}

// ------------------------------------------------------ approximate modes --

TEST(Multiply, FirstStageMaskEqualsMaskedExactProduct) {
  util::Xoshiro256 rng(54);
  for (int trial = 0; trial < 300; ++trial) {
    const unsigned n = 8 + static_cast<unsigned>(rng.next_below(25));
    const unsigned mask = static_cast<unsigned>(rng.next_below(n));
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    const MultiplyOutcome r =
        fast_multiply(a, b, n, ApproxConfig::first_stage(mask), em());
    const std::uint64_t masked_b = b & ~util::low_mask(mask);
    EXPECT_EQ(r.product, a * masked_b);
  }
}

TEST(Multiply, FirstStageErrorIsOneSidedUnderestimate) {
  // Masking drops partial products, so the approximation never exceeds the
  // exact product.
  util::Xoshiro256 rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.next() & util::low_mask(32);
    const std::uint64_t b = rng.next() & util::low_mask(32);
    const MultiplyOutcome r =
        fast_multiply(a, b, 32, ApproxConfig::first_stage(8), em());
    EXPECT_LE(r.product, a * b);
  }
}

TEST(Multiply, LastStageHighBitsExact) {
  // Carries are exact, so bits >= m of the product are always correct.
  util::Xoshiro256 rng(56);
  for (int trial = 0; trial < 300; ++trial) {
    const unsigned n = 16;
    const unsigned m = static_cast<unsigned>(rng.next_below(2 * n + 1));
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    const MultiplyOutcome r =
        fast_multiply(a, b, n, ApproxConfig::last_stage(m), em());
    EXPECT_EQ(r.product >> m, (a * b) >> m) << "m=" << m;
  }
}

TEST(Multiply, LastStageErrorBoundedByRelaxedRegion) {
  util::Xoshiro256 rng(57);
  for (int trial = 0; trial < 300; ++trial) {
    const unsigned m = 4 * (1 + static_cast<unsigned>(rng.next_below(8)));
    const std::uint64_t a = rng.next() & util::low_mask(32);
    const std::uint64_t b = rng.next() & util::low_mask(32);
    const MultiplyOutcome r =
        fast_multiply(a, b, 32, ApproxConfig::last_stage(m), em());
    const std::uint64_t exact = a * b;
    const std::uint64_t diff =
        r.product > exact ? r.product - exact : exact - r.product;
    EXPECT_LT(diff, std::uint64_t{1} << m);
  }
}

TEST(Multiply, RelaxBitsReduceLatencyMonotonically) {
  // The knob the adaptive runtime turns: more relax bits, fewer cycles.
  util::Cycles prev = ~util::Cycles{0};
  for (unsigned m : {0u, 4u, 8u, 16u, 24u, 32u}) {
    const MultiplyOutcome r =
        fast_multiply(0x9ABCDEF1, 0x12345678, 32,
                      ApproxConfig::last_stage(m), em());
    EXPECT_LT(r.cycles, prev) << "m=" << m;
    prev = r.cycles;
  }
}

TEST(Multiply, EngineMatchesApproxSemantics) {
  util::Xoshiro256 rng(58);
  for (int trial = 0; trial < 15; ++trial) {
    const unsigned n = 8;
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    for (const ApproxConfig cfg :
         {ApproxConfig::exact(), ApproxConfig::first_stage(3),
          ApproxConfig::last_stage(6), ApproxConfig{2, 5}}) {
      const InMemoryResult engine_r = inmemory_multiply(a, b, n, cfg, em());
      const MultiplyOutcome fast_r = fast_multiply(a, b, n, cfg, em());
      EXPECT_EQ(engine_r.value, fast_r.product)
          << "a=" << a << " b=" << b << " mask=" << cfg.mask_bits
          << " relax=" << cfg.relax_bits;
    }
  }
}

TEST(Multiply, CombinedModesCompose) {
  // First-stage masking then last-stage relaxation: high bits match the
  // masked product's high bits.
  const std::uint64_t a = 0xDEADBEEF, b = 0xCAFEF00D;
  const ApproxConfig cfg{8, 16};
  const MultiplyOutcome r = fast_multiply(a, b, 32, cfg, em());
  const std::uint64_t masked_product = a * (b & ~util::low_mask(8));
  EXPECT_EQ(r.product >> 16, masked_product >> 16);
}

TEST(Multiply, ExpectedCyclesIsReasonable) {
  const double expected = expected_multiply_cycles(32, ApproxConfig::exact());
  // Random 32x32: ~16 partials -> PPG 17 + tree 13*6 + final 13*64 = 927.
  EXPECT_GT(expected, 800.0);
  EXPECT_LT(expected, 1100.0);
}

}  // namespace
}  // namespace apim::arith
