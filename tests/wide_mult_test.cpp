// Tests of the 64x64 wide multiply built from 32-bit in-memory primitives,
// differentially validated against native 128-bit host arithmetic.
#include <gtest/gtest.h>

#include "arith/latency_model.hpp"
#include "arith/wide_mult.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::arith {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

TEST(WideMultiply, ExactAgainstInt128) {
  util::Xoshiro256 rng(121);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = rng.next();
    const std::uint64_t b = rng.next();
    const WideMultiplyOutcome r =
        fast_multiply_wide(a, b, ApproxConfig::exact(), em());
    const unsigned __int128 expect =
        static_cast<unsigned __int128>(a) * b;
    EXPECT_EQ(r.lo, static_cast<std::uint64_t>(expect));
    EXPECT_EQ(r.hi, static_cast<std::uint64_t>(expect >> 64));
  }
}

TEST(WideMultiply, EdgeOperands) {
  const std::uint64_t max = ~std::uint64_t{0};
  const auto zero = fast_multiply_wide(0, max, ApproxConfig::exact(), em());
  EXPECT_EQ(zero.lo, 0u);
  EXPECT_EQ(zero.hi, 0u);
  const auto one = fast_multiply_wide(1, max, ApproxConfig::exact(), em());
  EXPECT_EQ(one.lo, max);
  EXPECT_EQ(one.hi, 0u);
  // max * max = 2^128 - 2^65 + 1.
  const auto full = fast_multiply_wide(max, max, ApproxConfig::exact(), em());
  EXPECT_EQ(full.lo, 1u);
  EXPECT_EQ(full.hi, max - 1);
}

TEST(WideMultiply, CrossTermCarryHandled) {
  // Operands crafted so p_lh + p_hl overflows 64 bits: a_lo, a_hi, b_lo,
  // b_hi all near 2^32.
  const std::uint64_t a = 0xFFFFFFFF'FFFFFFF0ull;
  const std::uint64_t b = 0xFFFFFFF0'FFFFFFFFull;
  const WideMultiplyOutcome r =
      fast_multiply_wide(a, b, ApproxConfig::exact(), em());
  const unsigned __int128 expect = static_cast<unsigned __int128>(a) * b;
  EXPECT_EQ(r.lo, static_cast<std::uint64_t>(expect));
  EXPECT_EQ(r.hi, static_cast<std::uint64_t>(expect >> 64));
}

TEST(WideMultiply, CostIsFourMultipliesPlusSixAdds) {
  util::Xoshiro256 rng(122);
  const std::uint64_t a = rng.next();
  const std::uint64_t b = rng.next();
  const WideMultiplyOutcome r =
      fast_multiply_wide(a, b, ApproxConfig::exact(), em());
  EXPECT_EQ(r.multiplies, 4u);
  EXPECT_EQ(r.additions, 6u);
  // Cycles dominated by the four pipelines plus six serial 32-bit adds.
  EXPECT_GT(r.cycles, 6u * serial_add_cycles(32));
  EXPECT_LT(r.cycles, 4u * 1200 + 6u * serial_add_cycles(32));
}

TEST(WideMultiply, RelaxedErrorBounded) {
  // Each of the four partials errs by < 2^m; weighted by their shifts
  // (1, 2^32, 2^32, 2^64) the 128-bit error is < 2^m * (1 + 2*2^32 + 2^64)
  // < 2^(m+65).
  util::Xoshiro256 rng(123);
  const unsigned m = 24;
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t a = rng.next();
    const std::uint64_t b = rng.next();
    const WideMultiplyOutcome r =
        fast_multiply_wide(a, b, ApproxConfig::last_stage(m), em());
    const unsigned __int128 exact = static_cast<unsigned __int128>(a) * b;
    const unsigned __int128 approx =
        (static_cast<unsigned __int128>(r.hi) << 64) | r.lo;
    const unsigned __int128 diff = approx > exact ? approx - exact
                                                  : exact - approx;
    const unsigned __int128 bound = static_cast<unsigned __int128>(1)
                                    << (m + 65);
    EXPECT_TRUE(diff < bound) << "trial " << t;
  }
}

TEST(WideMultiply, RelaxationStillSpeedsUp) {
  util::Xoshiro256 rng(124);
  const std::uint64_t a = rng.next();
  const std::uint64_t b = rng.next();
  const auto exact = fast_multiply_wide(a, b, ApproxConfig::exact(), em());
  const auto relaxed =
      fast_multiply_wide(a, b, ApproxConfig::last_stage(32), em());
  EXPECT_LT(relaxed.cycles, exact.cycles);
  EXPECT_LT(relaxed.energy_ops_pj, exact.energy_ops_pj);
}

}  // namespace
}  // namespace apim::arith
