// Runtime trace verifier tests (analysis/trace_check.hpp).
//
// Three layers, golden-diagnostic style like tests/isa_lint_test.cpp:
//  * clean traces — real serve / chaos / cluster runs captured through the
//    opt-in event stream must verify with ZERO findings (no false
//    positives), and attaching the stream must not change a single served
//    byte (tracing is observational);
//  * seeded mutations — every trace-check rule id is proven to have teeth
//    by corrupting a real (or forged) log in exactly the way the rule
//    exists to catch, and asserting that rule fires;
//  * serialization — the apim-trace v1 text form round-trips bit-exactly
//    and re-verifies identically, so tools/apim_trace_lint sees what the
//    engine saw.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/trace_check.hpp"
#include "cluster_harness.hpp"
#include "serve_chaos_harness.hpp"
#include "serve_harness.hpp"
#include "serve/trace.hpp"

namespace {

using namespace apim;
using analysis::Report;
using cluster_harness::ClusterScenario;
using serve::trace::Event;
using serve::trace::EventKind;
using serve::trace::EventLog;
using serve_harness::Scenario;
using serve_harness::TenantSpec;

// -- Shared fixtures ---------------------------------------------------------

/// Multi-tenant serving scenario tuned to exercise every serve-side event:
/// weighted DRR contention (grants/spends), tight deadlines (expiry at
/// dispatch + credit refunds), a small reject-mode queue (admission bounds
/// and rejections) and QoS relax levels (escalation arcs).
Scenario serve_scenario() {
  Scenario s;
  s.seed = 11;
  TenantSpec heavy;
  heavy.name = "heavy";
  heavy.weight = 3;
  heavy.rate_per_kcycle = 18.0;
  heavy.requests = 90;
  heavy.min_ops = 2;
  heavy.max_ops = 8;
  heavy.width = 12;
  heavy.relax_bits = 2;
  TenantSpec urgent;
  urgent.name = "urgent";
  urgent.weight = 1;
  urgent.rate_per_kcycle = 14.0;
  urgent.requests = 70;
  urgent.min_ops = 1;
  urgent.max_ops = 6;
  urgent.width = 10;
  // Tighter than the 400-cycle batch window: a window-sealed batch's
  // earliest member is already past deadline at dispatch, so every run
  // exercises the expiry + credit-refund path.
  urgent.deadline = 350;
  TenantSpec mixed;
  mixed.name = "mixed";
  mixed.weight = 2;
  mixed.rate_per_kcycle = 8.0;
  mixed.requests = 50;
  mixed.width = 14;
  mixed.add_fraction = 0.5;
  s.tenants = {heavy, urgent, mixed};
  s.server.streams = 2;
  s.server.lanes_per_stream = 8;
  s.server.batch_window = 400;
  s.server.dispatch_cycles = 64;
  s.server.queue_capacity = 24;  // Small enough to reject under burst.
  s.server.admission = serve::AdmissionPolicy::kReject;
  return s;
}

/// Chaos scenario: ambient decay plus a mid-serve whole-domain kill with
/// the health layer on — exercises health transitions, scrubs, offline
/// repairs, aborts and relocations.
serve_harness::ChaosSpec chaos_spec() {
  serve_harness::ChaosSpec spec;
  spec.scenario = serve_scenario();
  spec.scenario.server.streams = 3;
  spec.scenario.server.queue_capacity = 64;
  spec.scenario.server.health.scrub_interval = 8000;
  spec.scenario.server.health.repair_interval = 12000;
  spec.stuck_rate = 0.002;
  // Arrivals finish within ~6 kcycles; the kill must land while batches
  // are still in flight for the abort + relocate arcs to appear.
  spec.kill_at = 3000;
  spec.kill_domain = 1;
  return spec;
}

/// Skewed 4-chip cluster with frequent rebalance ticks: guaranteed
/// cross-chip forwards, response legs and at least one migration.
ClusterScenario cluster_scenario() {
  ClusterScenario cs;
  cs.seed = 7;
  cs.tenants = cluster_harness::zipf_tenants(8, 1.1, 40.0, 400);
  cs.cluster.chips = 4;
  cs.cluster.shards = 16;
  cs.cluster.rebalance.interval = 10000;
  cs.cluster.server.streams = 2;
  cs.cluster.server.lanes_per_stream = 8;
  cs.cluster.server.batch_window = 400;
  return cs;
}

EventLog capture_serve(const Scenario& base) {
  auto log = std::make_unique<EventLog>();
  Scenario s = base;
  s.server.trace = log.get();
  (void)serve_harness::run_scenario(s);
  return std::move(*log);
}

EventLog capture_chaos() {
  auto log = std::make_unique<EventLog>();
  serve_harness::ChaosSpec spec = chaos_spec();
  spec.scenario.server.trace = log.get();
  (void)serve_harness::run_chaos(spec, /*health_enabled=*/true);
  return std::move(*log);
}

EventLog capture_cluster() {
  auto log = std::make_unique<EventLog>();
  ClusterScenario cs = cluster_scenario();
  cs.cluster.trace = log.get();
  (void)cluster_harness::run_cluster_scenario(cs);
  return std::move(*log);
}

std::size_t count_rule(const Report& r, const std::string& rule) {
  std::size_t n = 0;
  for (const analysis::Diagnostic& d : r.diagnostics())
    if (d.rule == rule) ++n;
  return n;
}

/// The mutation contract: the corrupted log must produce at least one
/// finding under exactly the intended rule.
void expect_rule(const EventLog& log, const std::string& rule) {
  const Report r = analysis::check_serving_trace(log);
  EXPECT_GE(count_rule(r, rule), 1u)
      << "expected rule '" << rule << "', got:\n"
      << r.format();
}

std::size_t count_kind(const EventLog& log, EventKind kind) {
  std::size_t n = 0;
  for (const Event& e : log.events())
    if (e.kind == kind) ++n;
  return n;
}

/// Index of the n-th event of `kind` (asserts it exists).
std::size_t find_kind(const EventLog& log, EventKind kind,
                      std::size_t nth = 0) {
  for (std::size_t i = 0; i < log.events().size(); ++i) {
    if (log.events()[i].kind != kind) continue;
    if (nth == 0) return i;
    --nth;
  }
  ADD_FAILURE() << "trace has no event of kind "
                << serve::trace::to_string(kind);
  return 0;
}

// -- Clean traces: zero false positives --------------------------------------

TEST(TraceCheck, CleanServingTraceVerifies) {
  const EventLog log = capture_serve(serve_scenario());
  ASSERT_FALSE(log.overflowed());
  // The scenario must exercise the full serve-side event vocabulary, or
  // the "clean" result proves nothing.
  EXPECT_GT(count_kind(log, EventKind::kAdmit), 0u);
  EXPECT_GT(count_kind(log, EventKind::kBatchSeal), 0u);
  EXPECT_GT(count_kind(log, EventKind::kDispatch), 0u);
  EXPECT_GT(count_kind(log, EventKind::kComplete), 0u);
  EXPECT_GT(count_kind(log, EventKind::kServe), 0u);
  EXPECT_GT(count_kind(log, EventKind::kExpire), 0u);
  EXPECT_GT(count_kind(log, EventKind::kCreditGrant), 0u);
  EXPECT_GT(count_kind(log, EventKind::kCreditSpend), 0u);
  EXPECT_GT(count_kind(log, EventKind::kCreditRefund), 0u);
  const Report r = analysis::check_serving_trace(log);
  EXPECT_TRUE(r.empty()) << r.format();
  EXPECT_EQ(analysis::verify_trace(log), "");
}

TEST(TraceCheck, CleanChaosTraceVerifies) {
  const EventLog log = capture_chaos();
  ASSERT_FALSE(log.overflowed());
  EXPECT_GT(count_kind(log, EventKind::kHealth), 0u);
  EXPECT_GT(count_kind(log, EventKind::kScrub), 0u);
  EXPECT_GT(count_kind(log, EventKind::kAbort), 0u);
  EXPECT_GT(count_kind(log, EventKind::kRelocate), 0u);
  const Report r = analysis::check_serving_trace(log);
  EXPECT_TRUE(r.empty()) << r.format();
}

TEST(TraceCheck, CleanClusterTraceVerifies) {
  const EventLog log = capture_cluster();
  ASSERT_FALSE(log.overflowed());
  EXPECT_GT(count_kind(log, EventKind::kClusterAdmit), 0u);
  EXPECT_GT(count_kind(log, EventKind::kForward), 0u);
  EXPECT_GT(count_kind(log, EventKind::kResponseLeg), 0u);
  EXPECT_GT(count_kind(log, EventKind::kMigrationStart), 0u);
  EXPECT_GT(count_kind(log, EventKind::kMigrationCommit), 0u);
  const Report r = analysis::check_serving_trace(log);
  EXPECT_TRUE(r.empty()) << r.format();
}

// Attaching the event stream must not perturb the engine: every response
// byte and every snapshot-visible statistic is identical with and without
// the log (tracing is strictly observational).
TEST(TraceCheck, TracingIsObservational) {
  const serve_harness::Outcome plain =
      serve_harness::run_scenario(serve_scenario());
  EventLog log;
  Scenario traced_s = serve_scenario();
  traced_s.server.trace = &log;
  const serve_harness::Outcome traced =
      serve_harness::run_scenario(traced_s);
  EXPECT_EQ(serve_harness::diff_outcomes(plain, traced), "");
  EXPECT_GT(log.events().size(), 0u);

  const cluster_harness::ClusterOutcome cplain =
      cluster_harness::run_cluster_scenario(cluster_scenario());
  EventLog clog;
  ClusterScenario traced_cs = cluster_scenario();
  traced_cs.cluster.trace = &clog;
  const cluster_harness::ClusterOutcome ctraced =
      cluster_harness::run_cluster_scenario(traced_cs);
  EXPECT_EQ(cluster_harness::diff_cluster_outcomes(cplain, ctraced), "");
  EXPECT_GT(clog.events().size(), 0u);
}

// -- Seeded mutations: every rule has teeth ----------------------------------

TEST(TraceCheckMutation, DroppedServeBreaksConservation) {
  EventLog log = capture_serve(serve_scenario());
  const std::size_t i = find_kind(log, EventKind::kServe);
  log.events().erase(log.events().begin() + static_cast<std::ptrdiff_t>(i));
  expect_rule(log, "request-conservation");
}

TEST(TraceCheckMutation, DuplicatedServeBreaksConservation) {
  EventLog log = capture_serve(serve_scenario());
  const std::size_t i = find_kind(log, EventKind::kServe);
  // Insert the duplicate in place so the clock stays monotone: the only
  // broken invariant is the second terminal.
  log.events().insert(log.events().begin() + static_cast<std::ptrdiff_t>(i),
                      log.events()[i]);
  expect_rule(log, "request-conservation");
}

TEST(TraceCheckMutation, DroppedDispatchBreaksCausality) {
  EventLog log = capture_serve(serve_scenario());
  // Drop a dispatch that actually carries members (not a scrub pass).
  for (std::size_t i = 0; i < log.events().size(); ++i) {
    const Event& e = log.events()[i];
    if (e.kind == EventKind::kDispatch && !e.members.empty()) {
      log.events().erase(log.events().begin() +
                         static_cast<std::ptrdiff_t>(i));
      expect_rule(log, "request-causality");
      return;
    }
  }
  FAIL() << "trace has no member-carrying dispatch";
}

TEST(TraceCheckMutation, DoubleRefundBreaksCreditLedger) {
  EventLog log = capture_serve(serve_scenario());
  const std::size_t i = find_kind(log, EventKind::kCreditRefund);
  // Apply the refund twice: the second application's declared deficit no
  // longer matches the replayed ledger.
  log.events().insert(log.events().begin() + static_cast<std::ptrdiff_t>(i),
                      log.events()[i]);
  expect_rule(log, "drr-credit");
}

TEST(TraceCheckMutation, InflatedSpendBreaksCreditLedger) {
  EventLog log = capture_serve(serve_scenario());
  const std::size_t i = find_kind(log, EventKind::kCreditSpend);
  Event& e = log.events()[i];
  e.amount += e.deficit_after + 1;  // Spend more than was ever granted.
  expect_rule(log, "drr-credit");
}

TEST(TraceCheckMutation, TamperedSealWidthBreaksHomogeneity) {
  EventLog log = capture_serve(serve_scenario());
  for (std::size_t i = 0; i < log.events().size(); ++i) {
    Event& e = log.events()[i];
    if (e.kind == EventKind::kBatchSeal && !e.members.empty()) {
      e.width += 1;
      expect_rule(log, "batch-homogeneity");
      return;
    }
  }
  FAIL() << "trace has no member-carrying batch seal";
}

TEST(TraceCheckMutation, OverAdmissionBreaksAdmissionBound) {
  EventLog log = capture_serve(serve_scenario());
  const std::size_t i = find_kind(log, EventKind::kAdmit);
  Event& e = log.events()[i];
  ASSERT_GT(e.capacity, 0u);
  e.queue_depth = e.capacity + 1;
  expect_rule(log, "admission-bound");
}

TEST(TraceCheckMutation, BackdatedEventBreaksClockMonotonicity) {
  EventLog log = capture_serve(serve_scenario());
  // Backdate the last dispatch to before the first event on its chip.
  const std::size_t last =
      find_kind(log, EventKind::kDispatch,
                count_kind(log, EventKind::kDispatch) - 1);
  ASSERT_GT(log.events()[last].at, 0u);
  log.events()[last].at = 0;
  expect_rule(log, "clock-regression");
}

TEST(TraceCheckMutation, DuplicatedDispatchOverlapsStream) {
  EventLog log = capture_serve(serve_scenario());
  const std::size_t i = find_kind(log, EventKind::kDispatch);
  Event dup = log.events()[i];
  dup.members.clear();  // Keep the causality FSM out of the blast radius.
  log.events().insert(
      log.events().begin() + static_cast<std::ptrdiff_t>(i) + 1,
      std::move(dup));
  expect_rule(log, "stream-overlap");
}

TEST(TraceCheckMutation, IllegalHealthJumpBreaksFsm) {
  EventLog log = capture_chaos();
  // Forge a quarantined -> suspect transition (no such arc: repair
  // readmits to healthy) right after a domain quarantines.
  for (std::size_t i = 0; i < log.events().size(); ++i) {
    const Event& e = log.events()[i];
    if (e.kind != EventKind::kHealth || e.state_to != 2) continue;
    Event forged = e;
    forged.state_from = 2;
    forged.state_to = 1;
    log.events().insert(
        log.events().begin() + static_cast<std::ptrdiff_t>(i) + 1,
        std::move(forged));
    expect_rule(log, "health-fsm");
    return;
  }
  FAIL() << "chaos trace never quarantined a domain";
}

TEST(TraceCheckMutation, DispatchOnQuarantinedDomainBreaksFsm) {
  EventLog log = capture_chaos();
  // Replay the health transitions to find a domain that ENDS quarantined
  // (the killed domain never repairs), then forge a dispatch onto it at
  // the end of the trace — monotone clock, free stream, only the health
  // rule is broken.
  std::map<std::int64_t, std::uint8_t> final_state;
  util::Cycles last_at = 0;
  for (const Event& e : log.events()) {
    last_at = std::max(last_at, e.at);
    if (e.kind == EventKind::kHealth) final_state[e.domain] = e.state_to;
  }
  for (const auto& [domain, state] : final_state) {
    if (state != 2) continue;
    Event forged;
    forged.kind = EventKind::kDispatch;
    forged.at = last_at;
    forged.app = "heavy";
    forged.domain = domain;
    forged.ops = 4;
    log.events().push_back(std::move(forged));
    expect_rule(log, "health-fsm");
    return;
  }
  FAIL() << "chaos trace left no domain quarantined";
}

TEST(TraceCheckMutation, UnderchargedForwardHopBreaksInterconnect) {
  EventLog log = capture_cluster();
  const std::size_t i = find_kind(log, EventKind::kForward);
  ASSERT_GT(log.events()[i].cycles, 0u);
  log.events()[i].cycles -= 1;  // One cycle short of the cost law.
  expect_rule(log, "interconnect-charge");
}

TEST(TraceCheckMutation, UnderchargedResponseEnergyBreaksInterconnect) {
  EventLog log = capture_cluster();
  const std::size_t i = find_kind(log, EventKind::kResponseLeg);
  log.events()[i].energy_pj *= 0.5;
  expect_rule(log, "interconnect-charge");
}

TEST(TraceCheckMutation, ReorderedSameInstantCommitsBreakCommitOrder) {
  // Forged cluster log: two migrations commit at the same instant in
  // DESCENDING shard order — the loop contract says shard-ascending.
  EventLog log;
  log.meta.chips = 4;
  log.meta.shards = 8;
  log.meta.topology = 0;
  log.meta.hop_latency_cycles = 8;
  log.meta.link_bits = 64;
  log.meta.pj_per_bit_hop = 0.1;
  log.meta.shard_bits = 1u << 10;
  const auto leg = [&](EventKind kind, util::Cycles at, std::int64_t shard,
                       std::int64_t from, std::int64_t to) {
    Event e;
    e.kind = kind;
    e.at = at;
    e.chip = -1;
    e.shard = shard;
    e.from = from;
    e.to = to;
    e.hops = from == to ? 0 : 2;
    e.bits = log.meta.shard_bits;
    e.cycles = e.hops * (8 + (e.bits + 63) / 64);
    if (kind == EventKind::kMigrationCommit)
      e.energy_pj = static_cast<double>(e.hops) *
                    static_cast<double>(e.bits) * 0.1;
    log.record(std::move(e));
  };
  leg(EventKind::kMigrationStart, 100, /*shard=*/5, 0, 1);
  leg(EventKind::kMigrationStart, 100, /*shard=*/2, 0, 2);
  leg(EventKind::kMigrationCommit, 500, /*shard=*/5, 0, 1);
  leg(EventKind::kMigrationCommit, 500, /*shard=*/2, 0, 2);  // Out of order.
  expect_rule(log, "commit-order");
}

TEST(TraceCheckMutation, ShareBoundCatchesForgedOverAllocation) {
  // Forged DRR log on a 2-stream server, tenants a and b at equal weight
  // (cap = 1 stream each while both contend). Tenant a legally takes
  // stream 0, then takes stream 1 while b still has queued work under
  // cap — the weighted-share bound the scheduler would never violate.
  EventLog log;
  log.meta.streams = 2;
  log.meta.lanes = 8;
  log.meta.queue_capacity = 64;
  log.meta.fair_share = true;
  log.meta.quantum_ops = 8;
  log.meta.default_weight = 1;
  const auto credit = [&](EventKind kind, util::Cycles at,
                          const std::string& app, std::uint64_t amount,
                          std::uint64_t after, bool idle) {
    Event e;
    e.kind = kind;
    e.at = at;
    e.app = app;
    e.amount = amount;
    e.deficit_after = after;
    e.idle_reset = idle;
    log.record(std::move(e));
  };
  const auto seal = [&](util::Cycles at, const std::string& app) {
    Event e;
    e.kind = EventKind::kBatchSeal;
    e.at = at;
    e.app = app;
    e.ops = 8;
    log.record(std::move(e));
  };
  const auto dispatch = [&](util::Cycles at, const std::string& app,
                            std::int64_t domain) {
    Event e;
    e.kind = EventKind::kDispatch;
    e.at = at;
    e.app = app;
    e.domain = domain;
    e.ops = 8;
    log.record(std::move(e));
  };
  seal(100, "a");
  seal(100, "a");
  seal(100, "b");
  credit(EventKind::kCreditGrant, 100, "a", 8, 8, false);
  credit(EventKind::kCreditSpend, 100, "a", 8, 0, false);
  dispatch(100, "a", 0);  // Legal: a's first stream.
  credit(EventKind::kCreditGrant, 100, "a", 8, 8, false);
  credit(EventKind::kCreditSpend, 100, "a", 8, 0, true);
  dispatch(100, "a", 1);  // Violation: b queued under cap, a over cap.
  const Report r = analysis::check_serving_trace(log);
  EXPECT_EQ(count_rule(r, "drr-share-bound"), 1u) << r.format();
  EXPECT_EQ(r.diagnostics().size(), 1u) << r.format();
}

TEST(TraceCheckMutation, OverflowedLogIsUnsound) {
  EventLog log(/*capacity=*/16);
  Scenario s = serve_scenario();
  s.server.trace = &log;
  (void)serve_harness::run_scenario(s);
  ASSERT_TRUE(log.overflowed());
  expect_rule(log, "trace-overflow");
}

// -- Serialization round-trip -------------------------------------------------

TEST(TraceSerialization, ChaosTraceRoundTripsBitExactly) {
  const EventLog log = capture_chaos();
  const std::string text = log.serialize();
  EventLog parsed;
  std::string error;
  ASSERT_TRUE(EventLog::parse(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.events().size(), log.events().size());
  EXPECT_EQ(parsed.serialize(), text);
  EXPECT_EQ(analysis::verify_trace(parsed), "");
}

TEST(TraceSerialization, ClusterTraceRoundTripsBitExactly) {
  const EventLog log = capture_cluster();
  const std::string text = log.serialize();
  EventLog parsed;
  std::string error;
  ASSERT_TRUE(EventLog::parse(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.events().size(), log.events().size());
  EXPECT_EQ(parsed.serialize(), text);
  EXPECT_EQ(analysis::verify_trace(parsed), "");
  // The header round-trips too: the verifier's recomputed interconnect
  // charges depend on it.
  EXPECT_EQ(parsed.meta.chips, log.meta.chips);
  EXPECT_EQ(parsed.meta.topology, log.meta.topology);
  EXPECT_EQ(parsed.meta.hop_latency_cycles, log.meta.hop_latency_cycles);
  EXPECT_EQ(parsed.meta.link_bits, log.meta.link_bits);
  EXPECT_EQ(parsed.meta.pj_per_bit_hop, log.meta.pj_per_bit_hop);
}

TEST(TraceSerialization, ParseRejectsMalformedDocuments) {
  EventLog out;
  std::string error;
  EXPECT_FALSE(EventLog::parse("not a trace\n", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      EventLog::parse("apim-trace v1\nevent k=no-such-kind t=0\n", &out,
                      &error));
  EXPECT_FALSE(EventLog::parse("apim-trace v1\nevent k=admit t=0 zz=1\n",
                               &out, &error));
}

}  // namespace
