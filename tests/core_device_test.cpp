// Tests of the ApimDevice public API: signed semantics, approximation
// knobs, statistics and the time/energy/EDP accounting.
#include <gtest/gtest.h>

#include <vector>

#include "arith/latency_model.hpp"
#include "core/apim.hpp"
#include "util/rng.hpp"

namespace apim::core {
namespace {

ApimDevice make_device(unsigned relax = 0, unsigned mask = 0) {
  ApimConfig cfg;
  cfg.approx = arith::ApproxConfig{mask, relax};
  return ApimDevice{cfg};
}

TEST(ApimDevice, ExactSignedMultiply) {
  ApimDevice dev = make_device();
  EXPECT_EQ(dev.mul_int(6, 7), 42);
  EXPECT_EQ(dev.mul_int(-6, 7), -42);
  EXPECT_EQ(dev.mul_int(6, -7), -42);
  EXPECT_EQ(dev.mul_int(-6, -7), 42);
  EXPECT_EQ(dev.mul_int(0, 12345), 0);
}

TEST(ApimDevice, ExactSignedAdd) {
  ApimDevice dev = make_device();
  EXPECT_EQ(dev.add(100, 23), 123);
  EXPECT_EQ(dev.add(-100, -23), -123);
  EXPECT_EQ(dev.add(100, -23), 77);
  EXPECT_EQ(dev.add(-100, 23), -77);
}

TEST(ApimDevice, FixedPointMultiplyRescales) {
  ApimDevice dev = make_device();
  // 1.5 * 2.0 in Q16.16.
  const auto a = static_cast<std::int64_t>(1.5 * 65536);
  const auto b = static_cast<std::int64_t>(2.0 * 65536);
  const std::int64_t r = dev.mul(a, b, util::kQ16_16);
  EXPECT_NEAR(static_cast<double>(r) / 65536.0, 3.0, 1e-4);
  // Negative operand.
  const std::int64_t rn = dev.mul(-a, b, util::kQ16_16);
  EXPECT_NEAR(static_cast<double>(rn) / 65536.0, -3.0, 1e-4);
}

TEST(ApimDevice, StatsAccumulate) {
  ApimDevice dev = make_device();
  (void)dev.mul_int(123, 45);
  (void)dev.add(1, 2);
  (void)dev.mac_int(0, 3, 4);  // One mult + one add.
  EXPECT_EQ(dev.stats().multiplies, 2u);
  EXPECT_EQ(dev.stats().additions, 2u);
  EXPECT_GT(dev.stats().cycles, 0u);
  EXPECT_GT(dev.energy_pj(), 0.0);
  dev.reset_stats();
  EXPECT_EQ(dev.stats().multiplies, 0u);
  EXPECT_EQ(dev.stats().cycles, 0u);
}

TEST(ApimDevice, AddCyclesMatchLatencyModel) {
  ApimDevice dev = make_device();
  (void)dev.add(5, 9);
  EXPECT_EQ(dev.stats().cycles, arith::serial_add_cycles(32));
  // Word adds relax half the product-adder setting (m_add = m/2).
  ApimDevice relaxed = make_device(/*relax=*/16);
  (void)relaxed.add(5, 9);
  EXPECT_EQ(relaxed.stats().cycles, arith::final_add_cycles(32, 8));
}

TEST(ApimDevice, RelaxedMultiplyKeepsHighBitsExact) {
  ApimDevice dev = make_device(/*relax=*/24);
  util::Xoshiro256 rng(61);
  for (int t = 0; t < 100; ++t) {
    const auto a = static_cast<std::int64_t>(rng.next_below(1u << 31));
    const auto b = static_cast<std::int64_t>(rng.next_below(1u << 31));
    const std::int64_t r = dev.mul_int(a, b);
    EXPECT_EQ(r >> 24, (a * b) >> 24);
  }
}

TEST(ApimDevice, RelaxedModeIsFasterAndCheaper) {
  ApimDevice exact = make_device();
  ApimDevice relaxed = make_device(/*relax=*/32);
  util::Xoshiro256 rng(62);
  for (int t = 0; t < 50; ++t) {
    const auto a = static_cast<std::int64_t>(rng.next_below(1u << 31));
    const auto b = static_cast<std::int64_t>(rng.next_below(1u << 31));
    (void)exact.mul_int(a, b);
    (void)relaxed.mul_int(a, b);
  }
  EXPECT_LT(relaxed.stats().cycles, exact.stats().cycles);
  EXPECT_LT(relaxed.energy_pj(), exact.energy_pj());
  EXPECT_LT(relaxed.edp_js(), exact.edp_js());
}

TEST(ApimDevice, MaskBitsMakeMultiplierSparse) {
  ApimDevice masked = make_device(0, /*mask=*/16);
  ApimDevice full = make_device();
  (void)masked.mul_int(0x7FFFFFFF, 0x7FFFFFFF);
  (void)full.mul_int(0x7FFFFFFF, 0x7FFFFFFF);
  EXPECT_LT(masked.stats().partial_products,
            full.stats().partial_products);
}

TEST(ApimDevice, KnobsAreLive) {
  ApimDevice dev = make_device();
  dev.set_relax_bits(12);
  EXPECT_EQ(dev.relax_bits(), 12u);
  dev.set_mask_bits(4);
  EXPECT_EQ(dev.mask_bits(), 4u);
}

TEST(ApimDevice, ParallelLanesSpeedUpWallClockNotEnergy) {
  ApimConfig narrow_cfg;
  narrow_cfg.parallel_lanes = 1;
  ApimConfig wide_cfg;
  wide_cfg.parallel_lanes = 1024;
  ApimDevice narrow{narrow_cfg};
  ApimDevice wide{wide_cfg};
  (void)narrow.mul_int(12345, 6789);
  (void)wide.mul_int(12345, 6789);
  EXPECT_NEAR(narrow.elapsed_seconds() / wide.elapsed_seconds(), 1024.0,
              1e-6);
  EXPECT_DOUBLE_EQ(narrow.energy_pj(), wide.energy_pj());
}

TEST(ApimDevice, DotProduct) {
  ApimDevice dev = make_device();
  const std::vector<std::int64_t> a{1, 2, 3, -4};
  const std::vector<std::int64_t> b{5, -6, 7, 8};
  EXPECT_EQ(dev.dot_int(a, b), 5 - 12 + 21 - 32);
  EXPECT_EQ(dev.stats().multiplies, 4u);
}

TEST(ApimDevice, MagnitudesClampAtWordWidth) {
  ApimConfig cfg;
  cfg.word_bits = 8;
  ApimDevice dev{cfg};
  // 300 clamps to 255 in an 8-bit datapath.
  EXPECT_EQ(dev.mul_int(300, 1), 255);
}

}  // namespace
}  // namespace apim::core
