// Tests of the rotating scratch allocator and its wear-leveling effect on
// a real workload (repeated in-memory additions).
#include <gtest/gtest.h>

#include "arith/inmemory_fa.hpp"
#include "crossbar/scratch_allocator.hpp"
#include "device/endurance.hpp"
#include "magic/engine.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::crossbar {
namespace {

TEST(ScratchAllocator, RoundRobinOverBands) {
  RotatingScratchAllocator alloc(/*first_row=*/10, /*rows=*/40,
                                 /*band_rows=*/13);
  EXPECT_EQ(alloc.band_count(), 3u);
  EXPECT_EQ(alloc.next_band(), 10u);
  EXPECT_EQ(alloc.next_band(), 23u);
  EXPECT_EQ(alloc.next_band(), 36u);
  EXPECT_EQ(alloc.next_band(), 10u);  // Wraps.
  EXPECT_EQ(alloc.rotations(), 4u);
}

TEST(ScratchAllocator, BandBaseIsStable) {
  RotatingScratchAllocator alloc(0, 26, 13);
  EXPECT_EQ(alloc.band_base(0), 0u);
  EXPECT_EQ(alloc.band_base(1), 13u);
  (void)alloc.next_band();
  EXPECT_EQ(alloc.band_base(0), 0u);  // Query does not advance.
}

double run_adds_and_get_imbalance(bool rotate, int ops) {
  const auto& em = device::EnergyModel::paper_defaults();
  const unsigned n = 8;
  BlockedCrossbar xbar(CrossbarConfig{1, 64, 16});
  magic::MagicEngine engine(xbar, em);
  util::Xoshiro256 rng(7);
  // Four candidate bands of 13 rows starting at row 2.
  RotatingScratchAllocator alloc(2, 52, 13);
  for (int op = 0; op < ops; ++op) {
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    for (unsigned i = 0; i < n; ++i) {
      xbar.block(0).set(0, i, util::bit(a, i) != 0);
      xbar.block(0).set(1, i, util::bit(b, i) != 0);
    }
    const std::size_t band = rotate ? alloc.next_band() : alloc.band_base(0);
    std::vector<arith::FaLaneMap> lanes;
    std::vector<CellAddr> init;
    const CellAddr zero_ref{0, 63, 15};
    for (unsigned i = 0; i < n; ++i) {
      const CellAddr av{0, 0, i}, bv{0, 1, i};
      const CellAddr c =
          (i == 0) ? zero_ref : lanes[i - 1].cell(arith::kSlotCout);
      lanes.push_back(arith::make_fa_lane(av, bv, c, 0, band, i, 0));
      arith::append_lane_init_cells(lanes.back(), init);
    }
    engine.init_cells(init);
    for (const auto& lane : lanes)
      arith::execute_fa_lane_serial(engine, lane);
  }
  const auto report =
      device::analyze_endurance(xbar, static_cast<std::uint64_t>(ops));
  return static_cast<double>(report.worst_cell_switches);
}

TEST(ScratchAllocator, RotationSpreadsWearByTheBandCount) {
  const int kOps = 80;
  const double fixed = run_adds_and_get_imbalance(false, kOps);
  const double rotated = run_adds_and_get_imbalance(true, kOps);
  // Four bands -> the hottest cell sees ~1/4 of the switches.
  EXPECT_GT(fixed, 0.0);
  EXPECT_NEAR(rotated / fixed, 0.25, 0.08);
}

}  // namespace
}  // namespace apim::crossbar
