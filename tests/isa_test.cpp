// Tests of the APIM kernel ISA: assembler syntax and diagnostics,
// interpreter semantics, device-cost integration, and a realistic kernel.
#include <gtest/gtest.h>

#include <vector>

#include "arith/latency_model.hpp"
#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"

namespace apim::isa {
namespace {

core::ApimDevice make_device() { return core::ApimDevice{}; }

ExecutionResult run_source(const char* source, core::ApimDevice& device,
                           std::vector<std::int64_t>& memory) {
  const Program program = assemble(source);
  Interpreter interp(device);
  return interp.run(program, memory);
}

// ----------------------------------------------------------- assembler ----

TEST(Assembler, ParsesThreeOperandOps) {
  const Program p = assemble("mul r1, r2, r3\nadd r4, r5, r6\n");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.code[0].op, Opcode::kMul);
  EXPECT_EQ(p.code[0].dst, 1);
  EXPECT_EQ(p.code[0].src1, 2);
  EXPECT_EQ(p.code[0].src2, 3);
  EXPECT_EQ(p.code[1].op, Opcode::kAdd);
}

TEST(Assembler, ParsesMemoryOperands) {
  const Program p = assemble(
      "load r1, [r2+4]\nload r3, [r4]\nload r5, [r6-2]\nstore r1, [r2+8]\n");
  EXPECT_EQ(p.code[0].op, Opcode::kLoad);
  EXPECT_EQ(p.code[0].imm, 4);
  EXPECT_EQ(p.code[1].imm, 0);
  EXPECT_EQ(p.code[2].imm, -2);
  EXPECT_EQ(p.code[3].op, Opcode::kStore);
}

TEST(Assembler, ParsesImmediatesAndComments) {
  const Program p = assemble(
      "; a comment line\n"
      "load r1, #-17   ; trailing comment\n"
      "setrelax #16\n");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.code[0].op, Opcode::kLoadImm);
  EXPECT_EQ(p.code[0].imm, -17);
  EXPECT_EQ(p.code[1].op, Opcode::kSetRelax);
  EXPECT_EQ(p.code[1].imm, 16);
}

TEST(Assembler, ResolvesForwardAndBackwardLabels) {
  const Program p = assemble(
      "start: load r1, #3\n"
      "loop:  addi r1, r1, #-1\n"
      "       jnz r1, @loop\n"
      "       jmp @end\n"
      "       halt\n"
      "end:   halt\n");
  EXPECT_EQ(p.code[2].op, Opcode::kJnz);
  EXPECT_EQ(p.code[2].imm, 1);  // @loop -> instruction index 1.
  EXPECT_EQ(p.code[3].imm, 5);  // @end -> index 5.
}

TEST(Assembler, DiagnosticsCarryLineNumbers) {
  try {
    (void)assemble("mul r1, r2, r3\nbogus r1\n");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(Assembler, RejectsBadRegisters) {
  EXPECT_THROW((void)assemble("mul r1, r2, r99\n"), AssemblyError);
  EXPECT_THROW((void)assemble("mov rX, r1\n"), AssemblyError);
}

TEST(Assembler, RejectsBadOperandCounts) {
  EXPECT_THROW((void)assemble("mul r1, r2\n"), AssemblyError);
  EXPECT_THROW((void)assemble("halt r1\n"), AssemblyError);
}

TEST(Assembler, RejectsDuplicateAndUndefinedLabels) {
  EXPECT_THROW((void)assemble("a: halt\na: halt\n"), AssemblyError);
  EXPECT_THROW((void)assemble("jmp @nowhere\nhalt\n"), AssemblyError);
}

TEST(Assembler, RejectsOutOfRangePrecision) {
  EXPECT_THROW((void)assemble("setrelax #65\n"), AssemblyError);
  EXPECT_THROW((void)assemble("shr r1, r2, #64\n"), AssemblyError);
}

TEST(Assembler, DisassembleRoundTrips) {
  const char* source =
      "load r1, #5\nmul r2, r1, r1\nstore r2, [r0+0]\nhalt\n";
  const Program p = assemble(source);
  const Program p2 = assemble(
      // Reassembling the disassembly (minus the pc prefixes) must give the
      // same code; here we just sanity-check the text.
      source);
  EXPECT_EQ(p.disassemble(), p2.disassemble());
  EXPECT_NE(p.disassemble().find("mul r2, r1, r1"), std::string::npos);
}

// ---------------------------------------------------------- interpreter ----

TEST(Interpreter, ArithmeticAndMemory) {
  core::ApimDevice device = make_device();
  std::vector<std::int64_t> memory{7, 6, 0};
  const auto result = run_source(
      "load r1, [r0+0]\n"
      "load r2, [r0+1]\n"
      "mul r3, r1, r2\n"
      "store r3, [r0+2]\n"
      "halt\n",
      device, memory);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(memory[2], 42);
  EXPECT_EQ(result.data_ops, 1u);
}

TEST(Interpreter, RegisterZeroIsHardwired) {
  core::ApimDevice device = make_device();
  std::vector<std::int64_t> memory{0};
  const auto result = run_source(
      "load r0, #99\n"
      "mov r1, r0\n"
      "halt\n",
      device, memory);
  EXPECT_EQ(result.registers[0], 0);
  EXPECT_EQ(result.registers[1], 0);
}

TEST(Interpreter, LoopsViaBranches) {
  // Sum 1..10 with a loop: result in r2.
  core::ApimDevice device = make_device();
  std::vector<std::int64_t> memory{0};
  const auto result = run_source(
      "      load r1, #10\n"
      "loop: add  r2, r2, r1\n"
      "      addi r1, r1, #-1\n"
      "      jnz  r1, @loop\n"
      "      halt\n",
      device, memory);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(result.registers[2], 55);
  EXPECT_EQ(result.data_ops, 10u);  // Ten in-memory adds.
}

TEST(Interpreter, DataOpsChargeTheDevice) {
  core::ApimDevice device = make_device();
  std::vector<std::int64_t> memory{0};
  (void)run_source("load r1, #9\nload r2, #5\nadd r3, r1, r2\nhalt\n", device,
                   memory);
  // Exactly one serial add was issued.
  EXPECT_EQ(device.stats().additions, 1u);
  EXPECT_EQ(device.stats().cycles, arith::serial_add_cycles(32));
}

TEST(Interpreter, ControlOpsAreFree) {
  core::ApimDevice device = make_device();
  std::vector<std::int64_t> memory{1, 2};
  (void)run_source(
      "load r1, [r0+0]\nmov r2, r1\naddi r3, r2, #5\nshl r4, r3, #2\nhalt\n",
      device, memory);
  EXPECT_EQ(device.stats().cycles, 0u);
}

TEST(Interpreter, SetRelaxTakesEffectMidKernel) {
  core::ApimDevice device = make_device();
  std::vector<std::int64_t> memory{0};
  (void)run_source(
      "load r1, #1000000\n"
      "mul r2, r1, r1\n"      // Exact multiply.
      "setrelax #32\n"
      "mul r3, r1, r1\n"      // Relaxed multiply.
      "halt\n",
      device, memory);
  EXPECT_EQ(device.relax_bits(), 32u);
  EXPECT_EQ(device.stats().multiplies, 2u);
}

TEST(Interpreter, SubUsesSignedSemantics) {
  core::ApimDevice device = make_device();
  std::vector<std::int64_t> memory{0};
  const auto result =
      run_source("load r1, #10\nload r2, #25\nsub r3, r1, r2\nhalt\n", device,
                 memory);
  EXPECT_EQ(result.registers[3], -15);
}

TEST(Interpreter, OutOfRangeMemoryThrows) {
  core::ApimDevice device = make_device();
  std::vector<std::int64_t> memory{0};
  const Program p = assemble("load r1, [r0+5]\nhalt\n");
  Interpreter interp(device);
  EXPECT_THROW((void)interp.run(p, memory), std::out_of_range);
}

TEST(Interpreter, FuelStopsRunawayKernels) {
  core::ApimDevice device = make_device();
  std::vector<std::int64_t> memory{0};
  const Program p = assemble("spin: jmp @spin\n");
  Interpreter interp(device, /*fuel=*/1000);
  const auto result = interp.run(p, memory);
  EXPECT_FALSE(result.halted);
  EXPECT_EQ(result.instructions_executed, 1000u);
}

TEST(Interpreter, DotProductKernelMatchesDeviceApi) {
  // The same dot product via the ISA and via ApimDevice::dot_int must give
  // identical values and identical costs.
  const std::vector<std::int64_t> a{3, -1, 4, 1, -5};
  const std::vector<std::int64_t> b{9, 2, -6, 5, 3};

  core::ApimDevice api_device = make_device();
  const std::int64_t expected = api_device.dot_int(a, b);

  core::ApimDevice isa_device = make_device();
  std::vector<std::int64_t> memory;
  memory.insert(memory.end(), a.begin(), a.end());
  memory.insert(memory.end(), b.begin(), b.end());
  memory.push_back(0);  // Result slot at address 10.
  const auto result = run_source(
      "      load r1, #0\n"   // i
      "      load r2, #5\n"   // count
      "loop: load r3, [r1+0]\n"
      "      load r4, [r1+5]\n"
      "      mac  r5, r3, r4\n"
      "      addi r1, r1, #1\n"
      "      addi r2, r2, #-1\n"
      "      jnz  r2, @loop\n"
      "      store r5, [r0+10]\n"
      "      halt\n",
      isa_device, memory);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(memory[10], expected);
  EXPECT_EQ(isa_device.stats().cycles, api_device.stats().cycles);
  EXPECT_DOUBLE_EQ(isa_device.energy_pj(), api_device.energy_pj());
}

TEST(Assembler, ParsesVectorOps) {
  const Program p = assemble("vadd [r1], [r2], [r3], #8\nvmul [r4], [r5], [r6], #4\n");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.code[0].op, Opcode::kVAdd);
  EXPECT_EQ(p.code[0].dst, 1);
  EXPECT_EQ(p.code[0].imm, 8);
  EXPECT_EQ(p.code[1].op, Opcode::kVMul);
}

TEST(Assembler, RejectsBadVectorOperands) {
  EXPECT_THROW((void)assemble("vadd [r1+4], [r2], [r3], #8\n"), AssemblyError);
  EXPECT_THROW((void)assemble("vadd [r1], [r2], [r3], #0\n"), AssemblyError);
  EXPECT_THROW((void)assemble("vadd [r1], [r2], #8\n"), AssemblyError);
}

TEST(Interpreter, VectorAddComputesAndCollapsesLatency) {
  core::ApimDevice vec_dev = make_device();
  std::vector<std::int64_t> memory(24, 0);
  for (int i = 0; i < 8; ++i) {
    memory[static_cast<std::size_t>(i)] = 100 + i;
    memory[static_cast<std::size_t>(8 + i)] = 1000 * i;
  }
  const auto result = run_source(
      "load r1, #16\nload r2, #0\nload r3, #8\n"
      "vadd [r1], [r2], [r3], #8\nhalt\n",
      vec_dev, memory);
  EXPECT_TRUE(result.halted);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(memory[static_cast<std::size_t>(16 + i)], 100 + i + 1000 * i);
  // Row-parallel: eight adds in the latency of one serial add.
  EXPECT_EQ(vec_dev.stats().cycles, arith::serial_add_cycles(32));
  EXPECT_EQ(vec_dev.stats().additions, 8u);

  // A scalar loop doing the same work pays ~8x the latency.
  core::ApimDevice scalar_dev = make_device();
  std::vector<std::int64_t> memory2(memory.begin(), memory.end());
  (void)run_source(
      "      load r1, #0\n"
      "      load r4, #8\n"
      "loop: load r2, [r1+0]\n"
      "      load r3, [r1+8]\n"
      "      add  r5, r2, r3\n"
      "      store r5, [r1+16]\n"
      "      addi r1, r1, #1\n"
      "      addi r4, r4, #-1\n"
      "      jnz  r4, @loop\n"
      "      halt\n",
      scalar_dev, memory2);
  EXPECT_EQ(scalar_dev.stats().cycles, 8 * arith::serial_add_cycles(32));
}

TEST(Interpreter, VectorMulComputesProducts) {
  core::ApimDevice dev = make_device();
  std::vector<std::int64_t> memory{2, 3, 4, 5, 10, 20, 30, 40, 0, 0, 0, 0};
  const auto result = run_source(
      "load r1, #8\nload r2, #0\nload r3, #4\n"
      "vmul [r1], [r2], [r3], #4\nhalt\n",
      dev, memory);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(memory[8], 20);
  EXPECT_EQ(memory[9], 60);
  EXPECT_EQ(memory[10], 120);
  EXPECT_EQ(memory[11], 200);
  EXPECT_EQ(dev.stats().multiplies, 4u);
}

TEST(Interpreter, VectorOpBoundsChecked) {
  core::ApimDevice dev = make_device();
  std::vector<std::int64_t> memory(8, 1);
  const Program p = assemble("load r1, #4\nvadd [r0], [r0], [r1], #8\nhalt\n");
  Interpreter interp(dev);
  EXPECT_THROW((void)interp.run(p, memory), std::out_of_range);
}

}  // namespace
}  // namespace apim::isa
