// Tests of the row-parallel vector adder: K additions at the latency of
// one, equivalence between simulation levels, and the scaling laws.
#include <gtest/gtest.h>

#include <vector>

#include "arith/latency_model.hpp"
#include "arith/vector_unit.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::arith {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

std::pair<std::vector<std::uint64_t>, std::vector<std::uint64_t>>
random_vectors(std::size_t k, unsigned n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> a, b;
  for (std::size_t i = 0; i < k; ++i) {
    a.push_back(rng.next() & util::low_mask(n));
    b.push_back(rng.next() & util::low_mask(n));
  }
  return {a, b};
}

TEST(VectorAdd, SumsAreExact) {
  const auto [a, b] = random_vectors(16, 16, 131);
  const VectorAddOutcome fast = fast_vector_add(a, b, 16, em());
  ASSERT_EQ(fast.sums.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(fast.sums[i], a[i] + b[i]) << i;
}

TEST(VectorAdd, LatencyIsIndependentOfLaneCount) {
  // The headline property: 1, 4 or 32 additions — same 12n+1 cycles.
  for (std::size_t k : {1u, 4u, 32u}) {
    const auto [a, b] = random_vectors(k, 16, 132 + k);
    const VectorAddOutcome fast = fast_vector_add(a, b, 16, em());
    EXPECT_EQ(fast.cycles, serial_add_cycles(16)) << "k=" << k;
    const VectorAddOutcome engine = inmemory_vector_add(a, b, 16, em());
    EXPECT_EQ(engine.cycles, serial_add_cycles(16)) << "k=" << k;
  }
}

TEST(VectorAdd, EnergyScalesLinearlyWithLanes) {
  const auto [a1, b1] = random_vectors(4, 16, 133);
  const auto [a2, b2] = random_vectors(8, 16, 133);  // Superset stats-wise.
  const double e1 = fast_vector_add(a1, b1, 16, em()).energy_ops_pj;
  const double e2 = fast_vector_add(a2, b2, 16, em()).energy_ops_pj;
  EXPECT_NEAR(e2 / e1, 2.0, 0.2);  // Random data: ~2x within noise.
}

TEST(VectorAdd, EngineMatchesFastModelExactly) {
  for (std::size_t k : {1u, 3u, 8u}) {
    const auto [a, b] = random_vectors(k, 12, 134 + k);
    const VectorAddOutcome fast = fast_vector_add(a, b, 12, em());
    const VectorAddOutcome engine = inmemory_vector_add(a, b, 12, em());
    ASSERT_EQ(fast.sums, engine.sums) << "k=" << k;
    ASSERT_EQ(fast.cycles, engine.cycles);
    ASSERT_NEAR(fast.energy_ops_pj, engine.energy_ops_pj, 1e-9);
  }
}

TEST(VectorAdd, EmptyInput) {
  const std::vector<std::uint64_t> none;
  const VectorAddOutcome out = fast_vector_add(none, none, 16, em());
  EXPECT_TRUE(out.sums.empty());
  EXPECT_EQ(out.cycles, 0u);
}

TEST(VectorAdd, ThroughputAdvantageOverSequentialIssue) {
  // K sequential device adds cost K * (12n+1); the vector unit costs
  // 12n+1 — the factor the chip model's lanes are built on.
  const std::size_t k = 16;
  const auto [a, b] = random_vectors(k, 32, 140);
  const VectorAddOutcome vec = fast_vector_add(a, b, 32, em());
  const util::Cycles sequential = k * serial_add_cycles(32);
  EXPECT_EQ(vec.cycles * k, sequential);
}

}  // namespace
}  // namespace apim::arith
