// Cluster-layer tests: topology cost model, consistent-hash placement,
// rebalancer decisions, and the router/migration edge cases the
// determinism contract calls out — single-chip degeneracy to the plain
// server, empty override tables, total-failure shedding, migrations
// racing in-flight work, and bit-exactness across seeds and host thread
// counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/placement.hpp"
#include "cluster/rebalancer.hpp"
#include "cluster/topology.hpp"
#include "cluster_harness.hpp"
#include "serve_harness.hpp"
#include "util/thread_pool.hpp"

namespace apim {
namespace {

using cluster_harness::ClusterOutcome;
using cluster_harness::ClusterScenario;
using cluster_harness::run_cluster_scenario;

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { util::set_thread_count(0); }
};

// -- Topology cost model -----------------------------------------------------

TEST(ClusterTopology, StarHopCounts) {
  EXPECT_EQ(cluster::hop_count(cluster::Topology::kStar, 4, 2, 2), 0u);
  EXPECT_EQ(cluster::hop_count(cluster::Topology::kStar, 4, 0, 3), 2u);
  EXPECT_EQ(cluster::hop_count(cluster::Topology::kStar, 16, 7, 8), 2u);
}

TEST(ClusterTopology, Mesh2DManhattanDistance) {
  // 4 chips tile a 2x2 grid: 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1).
  EXPECT_EQ(cluster::hop_count(cluster::Topology::kMesh2D, 4, 0, 1), 1u);
  EXPECT_EQ(cluster::hop_count(cluster::Topology::kMesh2D, 4, 0, 3), 2u);
  EXPECT_EQ(cluster::hop_count(cluster::Topology::kMesh2D, 4, 1, 2), 2u);
  // 9 chips tile 3x3: corners are 4 hops apart.
  EXPECT_EQ(cluster::hop_count(cluster::Topology::kMesh2D, 9, 0, 8), 4u);
  EXPECT_EQ(cluster::hop_count(cluster::Topology::kMesh2D, 9, 4, 4), 0u);
}

TEST(ClusterTopology, RouteCostFormulas) {
  cluster::InterconnectConfig ic;
  ic.hop_latency_cycles = 24;
  ic.link_bits = 128;
  ic.pj_per_bit_hop = 2.0;
  EXPECT_EQ(cluster::route_cycles(ic, 0, 4096), 0u);
  // 4096 bits over a 128-bit link = 32 beats; 2 hops = 2*(24+32).
  EXPECT_EQ(cluster::route_cycles(ic, 2, 4096), 112u);
  // Partial beats round up: 1 bit still costs a beat.
  EXPECT_EQ(cluster::route_cycles(ic, 1, 1), 25u);
  EXPECT_DOUBLE_EQ(cluster::route_energy_pj(ic, 2, 4096), 16384.0);
}

// -- Placement ---------------------------------------------------------------

TEST(ClusterPlacement, EmptyOverrideTableUsesConsistentHash) {
  const cluster::Placement p(64, 4, 2017);
  for (std::size_t s = 0; s < 64; ++s) EXPECT_LT(p.chip_for(s), 4u);
  // Every chip gets some shards at this shard:chip ratio.
  std::vector<std::size_t> count(4, 0);
  for (std::size_t s = 0; s < 64; ++s) ++count[p.chip_for(s)];
  for (std::size_t c = 0; c < 4; ++c) EXPECT_GT(count[c], 0u) << "chip " << c;
  // Same parameters, same ring, same assignment.
  const cluster::Placement q(64, 4, 2017);
  EXPECT_EQ(p.assignment(), q.assignment());
}

TEST(ClusterPlacement, GrowingTheClusterMovesFewShards) {
  const cluster::Placement p4(256, 4, 2017);
  const cluster::Placement p5(256, 5, 2017);
  std::size_t moved = 0;
  for (std::size_t s = 0; s < 256; ++s)
    if (p4.chip_for(s) != p5.chip_for(s)) ++moved;
  // Consistent hashing moves ~1/5 of shards when a fifth chip joins;
  // naive mod-N would reshuffle ~4/5. Allow generous slack.
  EXPECT_LT(moved, 256u * 2 / 5);
  // Every shard that moved, moved onto the new chip.
  for (std::size_t s = 0; s < 256; ++s)
    if (p4.chip_for(s) != p5.chip_for(s)) EXPECT_EQ(p5.chip_for(s), 4u);
}

TEST(ClusterPlacement, OverridesAndFallbackRespectConstraints) {
  std::map<std::size_t, std::size_t> overrides{{3, 2}, {7, 0}};
  cluster::Placement p(16, 4, 1, overrides);
  EXPECT_EQ(p.chip_for(3), 2u);
  EXPECT_EQ(p.chip_for(7), 0u);
  p.move(3, 1);
  EXPECT_EQ(p.chip_for(3), 1u);
  // Fallback never lands on a disallowed chip.
  const std::vector<bool> allowed{false, true, true, false};
  for (std::size_t s = 0; s < 16; ++s) {
    const std::size_t c = p.fallback_chip(s, allowed);
    EXPECT_TRUE(allowed[c]) << "shard " << s << " -> chip " << c;
  }
}

TEST(ClusterPlacement, TenantHashingIsStable) {
  const std::size_t a = cluster::Placement::shard_of("tenant-a", 64);
  EXPECT_EQ(cluster::Placement::shard_of("tenant-a", 64), a);
  EXPECT_LT(a, 64u);
}

// -- Rebalancer --------------------------------------------------------------

TEST(ClusterRebalancer, MigratesTheHotShardToTheColdestChip) {
  cluster::RebalanceConfig cfg;
  cfg.interval = 1000;
  cfg.ewma_alpha = 1.0;  // No smoothing: decisions read this window only.
  cluster::Rebalancer rb(4, cfg);
  const std::vector<std::size_t> home{0, 0, 1, 2};
  const std::vector<bool> serving{true, true, true};
  const std::vector<bool> locked(4, false);
  rb.note_admitted(0, 600);  // Two warm shards crowd chip 0; moving the
  rb.note_admitted(1, 500);  // hotter one strictly shrinks the gap.
  rb.note_admitted(2, 50);
  rb.note_admitted(3, 40);
  const auto decisions = rb.tick(home, serving, locked);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].shard, 0u);
  EXPECT_EQ(decisions[0].from, 0u);
  EXPECT_EQ(decisions[0].to, 2u);  // Chip 2 is coldest (load 40).
  EXPECT_FALSE(decisions[0].evacuation);
}

TEST(ClusterRebalancer, CooldownBlocksPingPong) {
  cluster::RebalanceConfig cfg;
  cfg.ewma_alpha = 1.0;
  cfg.cooldown_ticks = 2;
  cluster::Rebalancer rb(3, cfg);
  std::vector<std::size_t> home{0, 0, 1};
  const std::vector<bool> serving{true, true};
  const std::vector<bool> locked{false, false, true};  // Shard 2 pinned.
  rb.note_admitted(0, 800);
  rb.note_admitted(1, 100);
  auto first = rb.tick(home, serving, locked);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].shard, 0u);
  EXPECT_EQ(first[0].to, 1u);
  home[0] = first[0].to;
  // The load flips: the freshly moved shard would bounce straight back
  // were it not sitting out its cooldown.
  rb.note_admitted(0, 300);
  rb.note_admitted(2, 900);
  EXPECT_TRUE(rb.tick(home, serving, locked).empty());
  // One more tick retires the cooldown; now the beneficial move happens.
  rb.note_admitted(0, 300);
  rb.note_admitted(2, 900);
  const auto third = rb.tick(home, serving, locked);
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(third[0].shard, 0u);
  EXPECT_EQ(third[0].to, 0u);
}

TEST(ClusterRebalancer, QuarantinedChipEvacuatesEvenWhenDisabled) {
  cluster::RebalanceConfig cfg;
  cfg.enabled = false;  // Static placement still evacuates dead chips.
  cluster::Rebalancer rb(4, cfg);
  const std::vector<std::size_t> home{0, 0, 1, 1};
  const std::vector<bool> serving{false, true};
  const std::vector<bool> locked(4, false);
  const auto decisions = rb.tick(home, serving, locked);
  ASSERT_EQ(decisions.size(), 2u);
  for (const auto& d : decisions) {
    EXPECT_TRUE(d.evacuation);
    EXPECT_EQ(d.from, 0u);
    EXPECT_EQ(d.to, 1u);
  }
}

// -- Single-chip degeneracy --------------------------------------------------

/// A 1-chip cluster must be byte-for-byte today's serve::Server: same
/// responses (ids, values, timestamps, energy) and same metrics.
TEST(ClusterServe, SingleChipBitExactVsServer) {
  for (const std::uint64_t seed : {71u, 72u, 73u}) {
    const serve_harness::Scenario s = serve_harness::random_scenario(seed);
    const serve_harness::Outcome server_out = serve_harness::run_scenario(s);

    ClusterScenario cs;
    cs.seed = seed;
    cs.tenants = s.tenants;
    cs.cluster.chips = 1;
    cs.cluster.server = s.server;
    const ClusterOutcome cluster_out = run_cluster_scenario(cs);

    serve_harness::Outcome as_outcome;
    as_outcome.trace = cluster_out.trace;
    for (const cluster::ClusterResponse& r : cluster_out.responses)
      as_outcome.responses.push_back(r.resp);
    ASSERT_EQ(cluster_out.snap.chips.size(), 1u);
    as_outcome.snap = cluster_out.snap.chips[0];

    EXPECT_EQ(serve_harness::diff_outcomes(server_out, as_outcome), "")
        << "seed " << seed;
    // And the edge layer charged nothing: no forwarding, no migration.
    EXPECT_EQ(cluster_out.snap.cross_chip_requests, 0u);
    EXPECT_EQ(cluster_out.snap.migrations, 0u);
    EXPECT_EQ(cluster_out.snap.interconnect_energy_pj, 0.0);
    for (const cluster::ClusterResponse& r : cluster_out.responses) {
      EXPECT_EQ(r.edge_completion, r.resp.completion);
      EXPECT_EQ(r.hops, 0u);
    }
  }
}

/// Same degeneracy with the health layer live and a mid-serve domain
/// kill: the cluster wrapper must not perturb fault events either.
TEST(ClusterServe, SingleChipBitExactUnderFaults) {
  serve_harness::Scenario s = serve_harness::random_scenario(74);
  s.server.health.enabled = true;
  serve::health::DomainFaultEvent kill;
  kill.at = 20000;
  kill.domain = 0;
  kill.kind = serve::health::DomainFaultEvent::Kind::kKill;
  s.server.health.fault_schedule = {kill};
  const serve_harness::Outcome server_out = serve_harness::run_scenario(s);

  ClusterScenario cs;
  cs.seed = s.seed;
  cs.tenants = s.tenants;
  cs.cluster.chips = 1;
  cs.cluster.server = s.server;
  const ClusterOutcome cluster_out = run_cluster_scenario(cs);

  serve_harness::Outcome as_outcome;
  as_outcome.trace = cluster_out.trace;
  for (const cluster::ClusterResponse& r : cluster_out.responses)
    as_outcome.responses.push_back(r.resp);
  as_outcome.snap = cluster_out.snap.chips[0];
  EXPECT_EQ(serve_harness::diff_outcomes(server_out, as_outcome), "");
}

// -- Multi-chip serving ------------------------------------------------------

/// A skewed multi-chip scenario that exercises migration: one hot tenant
/// dominating a 4-chip cluster with frequent rebalance ticks.
[[nodiscard]] ClusterScenario skewed_scenario(std::uint64_t seed) {
  ClusterScenario cs;
  cs.seed = seed;
  cs.tenants = cluster_harness::zipf_tenants(8, 1.1, 40.0, 400);
  cs.cluster.chips = 4;
  cs.cluster.shards = 16;
  cs.cluster.rebalance.interval = 10000;
  cs.cluster.server.streams = 2;
  cs.cluster.server.lanes_per_stream = 8;
  cs.cluster.server.batch_window = 400;
  return cs;
}

TEST(ClusterServe, MultiChipConservesEveryRequest) {
  const ClusterOutcome out = run_cluster_scenario(skewed_scenario(5));
  EXPECT_EQ(cluster_harness::check_cluster_conservation(out), "");
  EXPECT_EQ(out.snap.chips.size(), 4u);
}

TEST(ClusterServe, SeedDeterminism) {
  const ClusterOutcome a = run_cluster_scenario(skewed_scenario(6));
  const ClusterOutcome b = run_cluster_scenario(skewed_scenario(6));
  EXPECT_EQ(cluster_harness::diff_cluster_outcomes(a, b), "");
}

/// Hot-shard migration races the in-flight work of the shard it moves:
/// requests already dispatched complete on the old chip, requests
/// arriving mid-move are held and forwarded, nothing is lost or served
/// twice, and the stale-view tail makes cross-chip traffic nonzero.
TEST(ClusterMigration, RacesInflightBatchesWithoutLosingRequests) {
  const ClusterOutcome out = run_cluster_scenario(skewed_scenario(7));
  EXPECT_EQ(cluster_harness::check_cluster_conservation(out), "");
  EXPECT_GE(out.snap.migrations, 1u);
  EXPECT_GT(out.snap.cross_chip_requests, 0u);
  EXPECT_GT(out.snap.interconnect_energy_pj, 0.0);
  EXPECT_GT(out.snap.held_requests, 0u);
  // Held requests still execute correctly: exact multiply values.
  std::size_t held_ok = 0;
  for (std::size_t i = 0; i < out.responses.size(); ++i) {
    const cluster::ClusterResponse& r = out.responses[i];
    if (!r.held_by_migration ||
        r.resp.status != serve::RequestStatus::kOk) {
      continue;
    }
    ++held_ok;
    EXPECT_TRUE(r.cross_chip);
    EXPECT_GT(r.hops, 0u);
    const serve::Request& req = out.trace[i];
    if (req.op == serve::OpKind::kMultiply && r.resp.relax_bits == 0) {
      ASSERT_EQ(r.resp.values.size(), req.operands.size());
      for (std::size_t k = 0; k < req.operands.size(); ++k) {
        EXPECT_EQ(r.resp.values[k],
                  req.operands[k].first * req.operands[k].second);
      }
    }
  }
  EXPECT_GT(held_ok, 0u);
}

TEST(ClusterDeterminism, BitExactAcrossWorkerCounts) {
  ThreadCountGuard guard;
  util::set_thread_count(1);
  const ClusterOutcome reference = run_cluster_scenario(skewed_scenario(8));
  for (const std::size_t threads : {2u, 7u}) {
    util::set_thread_count(threads);
    const ClusterOutcome run = run_cluster_scenario(skewed_scenario(8));
    EXPECT_EQ(cluster_harness::diff_cluster_outcomes(reference, run), "")
        << threads << " threads";
  }
}

// -- Health composition ------------------------------------------------------

/// Every chip quarantined with no repair left: the cluster must still
/// finalize every request (total-failure shedding), not hang.
TEST(ClusterHealth, AllChipsQuarantinedShedsEverything) {
  ClusterScenario cs = skewed_scenario(9);
  cs.cluster.chips = 2;
  cs.cluster.server.health.enabled = true;
  cs.cluster.server.health.mode = serve::health::DegradeMode::kShed;
  cs.cluster.server.health.max_repair_attempts = 0;
  std::vector<serve::health::DomainFaultEvent> kills;
  for (std::size_t d = 0; d < cs.cluster.server.streams; ++d) {
    serve::health::DomainFaultEvent e;
    e.at = 1;  // Dead before any request lands.
    e.domain = d;
    e.kind = serve::health::DomainFaultEvent::Kind::kKill;
    kills.push_back(e);
  }
  cs.cluster.server.health.fault_schedule = kills;
  const ClusterOutcome out = run_cluster_scenario(cs);
  EXPECT_EQ(cluster_harness::check_cluster_conservation(out), "");
  std::size_t ok = 0;
  for (const cluster::ClusterResponse& r : out.responses)
    if (r.resp.status == serve::RequestStatus::kOk) ++ok;
  EXPECT_EQ(ok, 0u);
  EXPECT_GT(out.responses.size(), 0u);
}

/// One chip dies mid-serve: quarantine composes with placement — the
/// rebalancer evacuates every shard off the dead chip and later traffic
/// lands elsewhere.
TEST(ClusterHealth, QuarantinedChipEvacuatesThroughRebalancer) {
  ClusterScenario cs = skewed_scenario(10);
  cs.cluster.chips = 2;
  cs.cluster.server.health.enabled = true;
  cs.cluster.server.health.mode = serve::health::DegradeMode::kShed;
  cs.cluster.server.health.max_repair_attempts = 0;
  std::vector<serve::health::DomainFaultEvent> kills;
  for (std::size_t d = 0; d < cs.cluster.server.streams; ++d) {
    serve::health::DomainFaultEvent e;
    e.at = 15000;
    e.domain = d;
    e.kind = serve::health::DomainFaultEvent::Kind::kKill;
    kills.push_back(e);
  }
  cs.cluster.chip_fault_schedules[0] = kills;  // Chip 0 only.
  const ClusterOutcome out = run_cluster_scenario(cs);
  EXPECT_EQ(cluster_harness::check_cluster_conservation(out), "");
  EXPECT_GE(out.snap.evacuations, 1u);
  // Final placement holds nothing on the dead chip.
  for (std::size_t s = 0; s < out.snap.placement.size(); ++s)
    EXPECT_NE(out.snap.placement[s], 0u) << "shard " << s;
  // The survivor still completed work after the evacuations.
  EXPECT_GT(out.snap.chips[1].completed, 0u);
}

}  // namespace
}  // namespace apim
