// Exhaustive small-width differential tests: for 4-bit operands, EVERY
// operand pair is executed on the bit-level engine, the fast model, and a
// host-arithmetic reference — across exact and approximate configurations.
// Exhaustiveness at small width complements the randomized sweeps at large
// width: there is no corner left to chance in the space it covers.
#include <gtest/gtest.h>

#include "arith/fast_units.hpp"
#include "arith/inmemory_units.hpp"
#include "arith/word_models.hpp"
#include "util/bitops.hpp"

namespace apim::arith {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

TEST(Exhaustive, SerialAddAllPairs4Bit) {
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      const WordUnitResult fast = word_serial_add(a, b, 4, em());
      const InMemoryResult engine = inmemory_serial_add(a, b, 4, em());
      ASSERT_EQ(fast.value, a + b) << a << "+" << b;
      ASSERT_EQ(engine.value, a + b);
      ASSERT_EQ(fast.cycles, engine.cycles);
      ASSERT_NEAR(fast.energy_ops_pj, engine.energy_ops_pj, 1e-9);
    }
  }
}

TEST(Exhaustive, RelaxedAddAllPairsAllRelaxSettings4Bit) {
  for (unsigned m = 0; m <= 4; ++m) {
    for (std::uint64_t a = 0; a < 16; ++a) {
      for (std::uint64_t b = 0; b < 16; ++b) {
        const WordUnitResult fast = word_final_add(a, b, 4, m, em());
        const InMemoryResult engine = inmemory_relaxed_add(a, b, 4, m, em());
        ASSERT_EQ(fast.value, engine.value)
            << a << "+" << b << " m=" << m;
        ASSERT_EQ(fast.cycles, engine.cycles);
        ASSERT_NEAR(fast.energy_ops_pj, engine.energy_ops_pj, 1e-9);
        // High bits above the relaxed region always exact.
        ASSERT_EQ(fast.value >> m, (a + b) >> m);
      }
    }
  }
}

TEST(Exhaustive, MultiplyAllPairs4BitExact) {
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      const MultiplyOutcome fast =
          fast_multiply(a, b, 4, ApproxConfig::exact(), em());
      const InMemoryResult engine =
          inmemory_multiply(a, b, 4, ApproxConfig::exact(), em());
      ASSERT_EQ(fast.product, a * b) << a << "*" << b;
      ASSERT_EQ(engine.value, a * b) << a << "*" << b;
      ASSERT_EQ(fast.cycles, engine.cycles);
      ASSERT_NEAR(fast.energy_ops_pj, engine.energy_ops_pj, 1e-9);
    }
  }
}

TEST(Exhaustive, MultiplyAllPairs4BitAllApproxConfigs) {
  for (unsigned mask = 0; mask <= 4; mask += 2) {
    for (unsigned relax = 0; relax <= 8; relax += 4) {
      const ApproxConfig cfg{mask, relax};
      for (std::uint64_t a = 0; a < 16; ++a) {
        for (std::uint64_t b = 0; b < 16; ++b) {
          const MultiplyOutcome fast = fast_multiply(a, b, 4, cfg, em());
          const InMemoryResult engine = inmemory_multiply(a, b, 4, cfg, em());
          ASSERT_EQ(fast.product, engine.value)
              << a << "*" << b << " mask=" << mask << " relax=" << relax;
          ASSERT_EQ(fast.cycles, engine.cycles)
              << a << "*" << b << " mask=" << mask << " relax=" << relax;
          ASSERT_NEAR(fast.energy_ops_pj, engine.energy_ops_pj, 1e-9);
          // First-stage semantic: exact product of the masked multiplier,
          // then last-stage relaxation bounded by 2^relax.
          const std::uint64_t masked = a * (b & ~util::low_mask(mask));
          const std::uint64_t diff = fast.product > masked
                                         ? fast.product - masked
                                         : masked - fast.product;
          ASSERT_LT(diff, std::uint64_t{1}
                              << (relax > 8 ? 8 : relax))
              << a << "*" << b;
        }
      }
    }
  }
}

TEST(Exhaustive, CsaAllTriples3Bit) {
  for (std::uint64_t a = 0; a < 8; ++a)
    for (std::uint64_t b = 0; b < 8; ++b)
      for (std::uint64_t c = 0; c < 8; ++c) {
        const FaWordResult fast = word_fa_stage(a, b, c, 3, em());
        const CsaOutcome engine = inmemory_csa(a, b, c, 3, em());
        ASSERT_EQ(fast.sum, engine.sum);
        ASSERT_EQ(fast.carry, engine.carry);
        ASSERT_EQ(fast.sum + fast.carry, a + b + c);
      }
}

}  // namespace
}  // namespace apim::arith
