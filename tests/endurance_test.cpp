// Tests of the per-cell wear accounting and the endurance analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "arith/inmemory_fa.hpp"
#include "device/endurance.hpp"
#include "magic/engine.hpp"

namespace apim::device {
namespace {

using crossbar::BlockedCrossbar;
using crossbar::CellAddr;
using crossbar::CrossbarConfig;

TEST(Wear, PerCellSwitchCountsTrackFlipsOnly) {
  crossbar::CrossbarBlock block(2, 2);
  block.set(0, 0, true);
  block.set(0, 0, true);   // No flip.
  block.set(0, 0, false);  // Flip.
  EXPECT_EQ(block.cell_switches(0, 0), 2u);
  EXPECT_EQ(block.cell_switches(0, 1), 0u);
  EXPECT_EQ(block.max_cell_switches(), 2u);
}

TEST(Endurance, EmptyCrossbarReportsUnlimitedLifetime) {
  // A workload that never switched a cell exerts no wear: the lifetime is
  // unbounded (+inf), not zero — zero would read as instant failure.
  BlockedCrossbar xbar(CrossbarConfig{2, 4, 4});
  const EnduranceReport report = analyze_endurance(xbar, 0);
  EXPECT_EQ(report.total_switches, 0u);
  EXPECT_EQ(report.worst_cell_switches, 0u);
  EXPECT_TRUE(report.unlimited);
  EXPECT_TRUE(std::isinf(report.operations_to_failure));
  EXPECT_GT(report.operations_to_failure, 0.0);
  EXPECT_TRUE(std::isinf(report.seconds_to_failure));
}

TEST(Endurance, ScratchCellsWearFasterThanData) {
  // Run many serial adds on one fabric: the scratch band is rewritten per
  // operation while the operand rows flip rarely — the wear-imbalance
  // problem of compute-in-memory.
  BlockedCrossbar xbar(CrossbarConfig{1, 16, 20});
  magic::MagicEngine engine(xbar, EnergyModel::paper_defaults());
  const unsigned n = 8;
  for (unsigned i = 0; i < n; ++i) {
    xbar.block(0).set(0, i, (i % 2) != 0);
    xbar.block(0).set(1, i, (i % 3) != 0);
  }
  const int kOps = 50;
  for (int op = 0; op < kOps; ++op) {
    std::vector<arith::FaLaneMap> lanes;
    std::vector<CellAddr> init;
    const CellAddr zero_ref{0, 15, 19};  // Never-written reference.
    for (unsigned i = 0; i < n; ++i) {
      const CellAddr a{0, 0, i}, b{0, 1, i};
      const CellAddr c =
          (i == 0) ? zero_ref : lanes[i - 1].cell(arith::kSlotCout);
      lanes.push_back(arith::make_fa_lane(a, b, c, 0, 2, i, 0));
      arith::append_lane_init_cells(lanes.back(), init);
    }
    engine.init_cells(init);
    for (const auto& lane : lanes)
      arith::execute_fa_lane_serial(engine, lane);
  }

  const EnduranceReport report =
      analyze_endurance(xbar, static_cast<std::uint64_t>(kOps));
  EXPECT_GT(report.total_switches, 0u);
  EXPECT_GT(report.worst_cell_switches, 0u);
  // Operand rows never switch after load; scratch flips every op.
  EXPECT_EQ(xbar.block(0).cell_switches(0, 0), 0u);
  EXPECT_GT(report.imbalance, 2.0);
  // Worst-case scratch cell switches about twice per op (init SET + NOR
  // RESET); with a 1e9 endurance limit, ~5e8 operations remain.
  EXPECT_GT(report.operations_to_failure, 1e8);
  EXPECT_LT(report.operations_to_failure, 1e10);
  EXPECT_GT(report.seconds_to_failure, 0.0);
}

TEST(Endurance, MoreWorkloadsExtendOperationEstimate) {
  // Same wear attributed to more logical ops -> fewer switches per op ->
  // longer lifetime in operations.
  BlockedCrossbar xbar(CrossbarConfig{1, 4, 4});
  xbar.set(CellAddr{0, 0, 0}, true);
  xbar.set(CellAddr{0, 0, 0}, false);
  const EnduranceReport one = analyze_endurance(xbar, 1);
  const EnduranceReport ten = analyze_endurance(xbar, 10);
  EXPECT_GT(ten.operations_to_failure, one.operations_to_failure);
}

TEST(Endurance, ParamsScaleEstimates) {
  BlockedCrossbar xbar(CrossbarConfig{1, 4, 4});
  xbar.set(CellAddr{0, 0, 0}, true);
  EnduranceParams weak;
  weak.endurance_limit = 1e6;
  EnduranceParams strong;
  strong.endurance_limit = 1e12;
  const auto weak_report = analyze_endurance(xbar, 1, weak);
  const auto strong_report = analyze_endurance(xbar, 1, strong);
  EXPECT_NEAR(strong_report.operations_to_failure /
                  weak_report.operations_to_failure,
              1e6, 1.0);
}

}  // namespace
}  // namespace apim::device
