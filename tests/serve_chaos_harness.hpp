// Chaos harness for the serving runtime's health layer: seeded fault
// injection over a multi-tenant scenario, plus the corruption and
// conservation oracles the chaos tests and bench/ext_chaos.cpp share.
//
// The harness builds a HealthConfig::fault_schedule from one chaos spec —
// per-stream stuck-at decay installed at cycle 0 and (optionally) a
// whole-domain kill mid-serve — and runs the SAME schedule with the
// health layer on and off. Everything derives from the spec's seeds, so a
// chaos run is as reproducible (and host-thread-invariant) as any other
// serving trace. Like tests/serve_harness.hpp this header is gtest-free:
// oracles return "" on success or a human-readable violation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "serve_harness.hpp"
#include "serve/health.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::serve_harness {

/// One chaos experiment: a serving scenario plus the silicon decay to
/// inject into it.
struct ChaosSpec {
  Scenario scenario;

  /// Per-cell stuck-at probability of the ambient decay installed on
  /// every stream at cycle 0 (0 disables). Each functional unit models
  /// `cells_per_unit` scratch cells; a stuck cell projects onto one
  /// uniformly drawn output bit, exactly like the fault campaign's
  /// crossbar projection (reliability/campaign.hpp).
  double stuck_rate = 0.0;
  std::size_t cells_per_unit = 512;
  std::uint64_t fault_seed = 0xFA177;

  /// Transient (soft) flip rate per executed op on the decayed streams.
  double transient_rate = 0.0;

  /// Whole-domain failure of `kill_domain` at virtual time `kill_at`
  /// (0 = no kill): every (lane, redundancy domain) gets a stuck output
  /// bit, the health layer's catastrophic case.
  util::Cycles kill_at = 0;
  std::size_t kill_domain = 0;

  /// Redundancy domains per lane the sampled tables cover (the retry
  /// ladder and the vote execute on domains > 0, whose decay must be
  /// independent for redundancy to help).
  std::size_t fault_domains = 3;
};

/// Output bit-space of a unit: a `width`-bit multiply produces 2w bits,
/// a vector add w+1.
[[nodiscard]] inline unsigned unit_out_bits(bool is_mul, unsigned width) {
  return is_mul ? 2 * width : width + 1;
}

/// Sample one stream's ambient stuck-at decay: independent per-cell
/// Bernoulli draws per (lane, redundancy domain, unit), each hit
/// projected onto a uniform output bit with a uniform stuck value. A
/// unit's stuck cells collapse onto ONE projected output bit (its worst
/// cell): every op reuses the same scratch rows, so co-located defects
/// corrupt the same result bit. The single-bit delta is what makes the
/// mod-3 residue check airtight — multi-bit deltas could alias to a
/// multiple of three and slip through, which is a different (and
/// undetectable-by-design) failure mode than this harness injects.
[[nodiscard]] inline reliability::LaneFaultTable sample_stuck_table(
    const ChaosSpec& spec, std::size_t lanes, unsigned width,
    std::uint64_t seed) {
  reliability::LaneFaultTable table(lanes, spec.fault_domains);
  util::Xoshiro256 rng(seed);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    for (std::size_t dom = 0; dom < spec.fault_domains; ++dom) {
      for (const bool is_mul : {true, false}) {
        bool unit_hit = false;
        for (std::size_t c = 0; c < spec.cells_per_unit; ++c) {
          if (rng.next_double() >= spec.stuck_rate) continue;
          if (unit_hit) continue;  // Collapses onto the same bit.
          unit_hit = true;
          const unsigned bit = static_cast<unsigned>(
              rng.next_below(unit_out_bits(is_mul, width)));
          const bool value = rng.next_below(2) == 1;
          if (is_mul) {
            table.add_mul_stuck(lane, dom, bit, value);
          } else {
            table.add_add_stuck(lane, dom, bit, value);
          }
        }
      }
    }
  }
  return table;
}

/// Widest tenant word in the scenario (the sampled bit-space must cover
/// the widest results any stream will produce).
[[nodiscard]] inline unsigned max_tenant_width(const Scenario& s) {
  unsigned w = 4;
  for (const TenantSpec& t : s.tenants) w = std::max(w, t.width);
  return w;
}

/// The chaos fault schedule for `spec`: ambient decay on every stream at
/// cycle 0 (per-stream seeds, so streams decay independently), then the
/// optional mid-serve kill.
[[nodiscard]] inline std::vector<serve::health::DomainFaultEvent>
chaos_schedule(const ChaosSpec& spec) {
  using Event = serve::health::DomainFaultEvent;
  std::vector<Event> schedule;
  const unsigned width = max_tenant_width(spec.scenario);
  const std::size_t lanes = spec.scenario.server.lanes_per_stream;
  if (spec.stuck_rate > 0.0 || spec.transient_rate > 0.0) {
    for (std::size_t d = 0; d < spec.scenario.server.streams; ++d) {
      std::uint64_t state = spec.fault_seed ^ (0x5EEDull * (d + 1));
      Event e;
      e.at = 0;
      e.domain = d;
      e.kind = Event::Kind::kSetFaults;
      e.faults =
          sample_stuck_table(spec, lanes, width, util::splitmix64(state));
      if (spec.transient_rate > 0.0)
        e.faults.set_transient(spec.transient_rate, util::splitmix64(state));
      schedule.push_back(std::move(e));
    }
  }
  if (spec.kill_at != 0) {
    Event e;
    e.at = spec.kill_at;
    e.domain = spec.kill_domain;
    e.kind = Event::Kind::kKill;
    schedule.push_back(std::move(e));
  }
  return schedule;
}

/// Run the chaos experiment with the health layer on or off — the same
/// injected decay either way (that is the A/B).
[[nodiscard]] inline Outcome run_chaos(const ChaosSpec& spec,
                                       bool health_enabled) {
  Scenario s = spec.scenario;
  s.server.health.enabled = health_enabled;
  s.server.health.fault_schedule = chaos_schedule(spec);
  return run_scenario(s);
}

/// Exact integer value of one op, mirroring the device's clamping. Widths
/// are <= 32, so products fit uint64 exactly (doubles would not do).
[[nodiscard]] inline std::uint64_t exact_value(const serve::Request& r,
                                               std::size_t j) {
  const std::uint64_t cap = util::mask_n(r.width);
  const std::uint64_t a = std::min(r.operands[j].first, cap);
  const std::uint64_t b = std::min(r.operands[j].second, cap);
  return r.op == serve::OpKind::kMultiply ? a * b : a + b;
}

/// What the injected faults did to served values. "Corrupted" compares
/// kOk responses against the host-exact results (valid for exact-mode
/// tenants: relax_bits must be 0); "silent" counts corrupted responses
/// whose QoS evaluation still accepted them — the failure mode the
/// health layer exists to eliminate.
struct CorruptionReport {
  std::uint64_t ok = 0;         ///< kOk responses checked.
  std::uint64_t corrupted = 0;  ///< Some value differs from exact.
  std::uint64_t silent = 0;     ///< Corrupted yet QoS-accepted.
  std::uint64_t relocated = 0;  ///< kOk responses that were relocated.
};

[[nodiscard]] inline CorruptionReport count_corruption(const Outcome& out) {
  CorruptionReport rep;
  for (std::size_t i = 0; i < out.responses.size(); ++i) {
    const serve::Response& r = out.responses[i];
    if (r.status != serve::RequestStatus::kOk) continue;
    ++rep.ok;
    if (r.relocations > 0) ++rep.relocated;
    bool bad = false;
    for (std::size_t j = 0; j < out.trace[i].operands.size(); ++j) {
      if (r.values.size() <= j || r.values[j] != exact_value(out.trace[i], j)) {
        bad = true;
        break;
      }
    }
    if (!bad) continue;
    ++rep.corrupted;
    if (r.qos.acceptable) ++rep.silent;
  }
  return rep;
}

/// Conservation under chaos: the base oracle plus the relocation ledger
/// (every response-side relocation must appear in the snapshot and vice
/// versa). Returns "" or the first violation.
[[nodiscard]] inline std::string check_chaos_conservation(
    const Outcome& out) {
  if (std::string base = check_conservation(out); !base.empty()) return base;
  std::uint64_t relocations = 0;
  for (const serve::Response& r : out.responses) relocations += r.relocations;
  if (relocations != out.snap.relocated_requests) {
    std::ostringstream oss;
    oss << "response relocations " << relocations
        << " != snapshot relocated_requests " << out.snap.relocated_requests;
    return oss.str();
  }
  if (out.snap.relocated_requests > 0 && out.snap.relocated_batches == 0)
    return "relocated requests without a relocated batch";
  return {};
}

}  // namespace apim::serve_harness
