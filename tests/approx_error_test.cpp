// Statistical properties of the two approximation modes — the behaviours
// Figure 4 of the paper is built on: last-stage relaxation achieves orders
// of magnitude lower error than first-stage masking at comparable cost.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arith/fast_units.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace apim::arith {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

double mean_relative_error(unsigned n, ApproxConfig cfg, int trials,
                           std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  util::RunningStats stats;
  for (int t = 0; t < trials; ++t) {
    // Avoid tiny operands so relative error is well conditioned.
    const std::uint64_t lo = std::uint64_t{1} << (n / 2);
    const std::uint64_t a =
        lo + (rng.next() & (util::low_mask(n) - lo));
    const std::uint64_t b =
        lo + (rng.next() & (util::low_mask(n) - lo));
    const std::uint64_t exact = a * b;
    const MultiplyOutcome r = fast_multiply(a, b, n, cfg, em());
    const double err = std::abs(static_cast<double>(r.product) -
                                static_cast<double>(exact)) /
                       static_cast<double>(exact);
    stats.add(err);
  }
  return stats.mean();
}

TEST(ApproxError, ExactModeHasZeroError) {
  EXPECT_EQ(mean_relative_error(32, ApproxConfig::exact(), 100, 1), 0.0);
}

TEST(ApproxError, LastStageErrorGrowsMonotonicallyWithRelaxBits) {
  double prev = -1.0;
  for (unsigned m : {8u, 16u, 24u, 32u, 40u, 48u}) {
    const double err =
        mean_relative_error(32, ApproxConfig::last_stage(m), 300, 2);
    EXPECT_GT(err, prev) << "m=" << m;
    prev = err;
  }
}

TEST(ApproxError, FirstStageErrorGrowsMonotonicallyWithMaskBits) {
  double prev = -1.0;
  for (unsigned mask : {4u, 8u, 12u, 16u, 20u}) {
    const double err =
        mean_relative_error(32, ApproxConfig::first_stage(mask), 300, 3);
    EXPECT_GT(err, prev) << "mask=" << mask;
    prev = err;
  }
}

TEST(ApproxError, LastStageBeatsFirstStageAtComparableLatency) {
  // The core claim of Figure 4: for similar EDP, last-stage approximation
  // is orders of magnitude more accurate. Compare configurations with
  // similar cycle counts on random data.
  const ApproxConfig first = ApproxConfig::first_stage(8);
  const ApproxConfig last = ApproxConfig::last_stage(32);
  util::Xoshiro256 rng(4);
  util::RunningStats cycles_exact, cycles_first, cycles_last;
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t a = rng.next() & util::low_mask(32);
    const std::uint64_t b = rng.next() & util::low_mask(32);
    cycles_exact.add(static_cast<double>(
        fast_multiply(a, b, 32, ApproxConfig::exact(), em()).cycles));
    cycles_first.add(
        static_cast<double>(fast_multiply(a, b, 32, first, em()).cycles));
    cycles_last.add(
        static_cast<double>(fast_multiply(a, b, 32, last, em()).cycles));
  }
  // Both approximations cut latency vs exact. First-stage masking saves
  // little here because the exact final stage (13*2N) dominates — exactly
  // the bottleneck argument of Section 3.4.
  EXPECT_LT(cycles_first.mean(), cycles_exact.mean());
  EXPECT_LT(cycles_last.mean(), cycles_exact.mean() - 100.0);

  const double err_first = mean_relative_error(32, first, 300, 5);
  const double err_last = mean_relative_error(32, last, 300, 5);
  EXPECT_LT(err_last, err_first / 10.0);
}

TEST(ApproxError, LastStageWorstCaseBound) {
  // |error| < 2^m always (exact carries confine the error to the relaxed
  // region) — deterministic bound, checked over many operands.
  util::Xoshiro256 rng(6);
  for (int t = 0; t < 1000; ++t) {
    const unsigned m = static_cast<unsigned>(rng.next_below(49));
    const std::uint64_t a = rng.next() & util::low_mask(32);
    const std::uint64_t b = rng.next() & util::low_mask(32);
    const MultiplyOutcome r =
        fast_multiply(a, b, 32, ApproxConfig::last_stage(m), em());
    const std::uint64_t exact = a * b;
    const std::uint64_t diff =
        r.product > exact ? r.product - exact : exact - r.product;
    ASSERT_LT(diff, std::uint64_t{1} << m) << "m=" << m;
  }
}

TEST(ApproxError, FirstStageWorstCaseBound) {
  // Masking b's low `mask` bits removes at most a * (2^mask - 1).
  util::Xoshiro256 rng(7);
  for (int t = 0; t < 1000; ++t) {
    const unsigned mask = static_cast<unsigned>(rng.next_below(24));
    const std::uint64_t a = rng.next() & util::low_mask(32);
    const std::uint64_t b = rng.next() & util::low_mask(32);
    const MultiplyOutcome r =
        fast_multiply(a, b, 32, ApproxConfig::first_stage(mask), em());
    const std::uint64_t exact = a * b;
    ASSERT_LE(exact - r.product,
              a * (util::low_mask(mask)))
        << "mask=" << mask;
  }
}

TEST(ApproxError, EnergyAndLatencyDropWithMoreApproximation) {
  util::Xoshiro256 rng(8);
  std::vector<double> edp;
  for (unsigned m : {0u, 16u, 32u, 48u, 64u}) {
    util::RunningStats stats;
    util::Xoshiro256 local(9);
    for (int t = 0; t < 50; ++t) {
      const std::uint64_t a = local.next() & util::low_mask(32);
      const std::uint64_t b = local.next() & util::low_mask(32);
      const MultiplyOutcome r =
          fast_multiply(a, b, 32, ApproxConfig::last_stage(m), em());
      stats.add(total_energy_pj(r, em()) * static_cast<double>(r.cycles));
    }
    edp.push_back(stats.mean());
  }
  for (std::size_t i = 1; i < edp.size(); ++i)
    EXPECT_LT(edp[i], edp[i - 1]) << "step " << i;
}

TEST(ApproxError, RelativeErrorWellBelowTenPercentAtModerateRelax) {
  // Table 1's regime: the QoS criterion is <10% average relative error;
  // m = 32 relax bits on 32x32 products keeps the error orders below that
  // on well-conditioned operands.
  const double err =
      mean_relative_error(32, ApproxConfig::last_stage(32), 500, 10);
  EXPECT_LT(err, 0.10);
}

}  // namespace
}  // namespace apim::arith
