# CLI contract test for apim_lint (and apim_sim --lint), run via ctest:
#   cmake -DAPIM_LINT=<bin> -DAPIM_SIM=<bin> -DEXAMPLES_DIR=<dir> \
#         -P apim_lint_cli_test.cmake
#
# Seeded defects must be flagged at the right source lines with exit 1,
# clean kernels must exit 0, bad invocations must exit 2.
foreach(var APIM_LINT APIM_SIM EXAMPLES_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

set(WORK ${CMAKE_CURRENT_BINARY_DIR}/apim_lint_cli_work)
file(MAKE_DIRECTORY ${WORK})

# run(<out-var-prefix> <expected exit> <binary> args...)
function(run prefix expected binary)
  execute_process(COMMAND ${binary} ${ARGN}
    RESULT_VARIABLE result
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT result EQUAL ${expected})
    message(FATAL_ERROR "${binary} ${ARGN}: expected exit ${expected}, got "
      "'${result}'\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${prefix}_out "${out}" PARENT_SCOPE)
  set(${prefix}_err "${err}" PARENT_SCOPE)
endfunction()

function(expect_match text pattern what)
  if(NOT text MATCHES "${pattern}")
    message(FATAL_ERROR "${what}: expected to match '${pattern}'\ngot:\n${text}")
  endif()
endfunction()

# --- Seeded defects: one error per rule the issue calls out. -----------------
file(WRITE ${WORK}/defects.apim
"; seeded defects: every line below must be flagged
        load r1, #8
        add  r2, r3, r1             ; line 3: r3 read before any write
        store r2, [r0+99]           ; line 4: address 99 >= 64 words
        load r4, #4
        vadd [r4], [r1], [r4], #8   ; line 6: dst overlaps src A (|4-8| < 8)
        jnz  r2, @tail              ; line 7: label after final instruction
        halt
tail:
")
run(defects 1 ${APIM_LINT} --memsize 64 ${WORK}/defects.apim)
expect_match("${defects_out}" "line 3: error \\[use-before-def\\]" "defects")
expect_match("${defects_out}" "line 4: error \\[mem-bounds\\]" "defects")
expect_match("${defects_out}" "line 6: error \\[vector-overlap\\]" "defects")
expect_match("${defects_out}" "line 7: error \\[branch-target\\]" "defects")

# --- Parse errors surface with line numbers, not a crash. --------------------
file(WRITE ${WORK}/dup_label.apim
"loop:   load r1, #1
loop:   halt
")
run(dup 1 ${APIM_LINT} ${WORK}/dup_label.apim)
expect_match("${dup_out}" "line 2: error \\[parse\\]" "dup_label")
expect_match("${dup_out}" "duplicate label 'loop' \\(first defined at line 1\\)"
  "dup_label")

# --- Clean kernels exit 0 under the strictest settings. ----------------------
file(GLOB examples ${EXAMPLES_DIR}/*.apim)
list(LENGTH examples n_examples)
if(n_examples EQUAL 0)
  message(FATAL_ERROR "no example kernels found in ${EXAMPLES_DIR}")
endif()
run(clean 0 ${APIM_LINT} --werror --memsize 64 ${examples})
expect_match("${clean_out}" "0 error\\(s\\), 0 warning\\(s\\)" "examples clean")

# --werror flips a warnings-only file to exit 1.
file(WRITE ${WORK}/warn_only.apim
"        load r0, #1   ; write to r0 is dropped: warning, not error
        halt
")
run(warn0 0 ${APIM_LINT} ${WORK}/warn_only.apim)
expect_match("${warn0_out}" "warning \\[r0-write\\]" "warn_only")
run(warn1 1 ${APIM_LINT} --werror ${WORK}/warn_only.apim)

# --- JSON mode is machine-readable and carries the same verdicts. ------------
run(json 1 ${APIM_LINT} --json --memsize 64 ${WORK}/defects.apim)
expect_match("${json_out}" "^\\[{\"file\":" "json shape")
expect_match("${json_out}" "\"rule\":\"use-before-def\",\"line\":3" "json rule")
expect_match("${json_out}" "\"errors\":4" "json error count")

# --- Bad invocations exit 2 with a diagnostic. -------------------------------
run(bad0 2 ${APIM_LINT})
expect_match("${bad0_err}" "apim_lint: error:" "no-args diagnostic")
run(bad1 2 ${APIM_LINT} --frobnicate ${WORK}/defects.apim)
run(bad2 2 ${APIM_LINT} --memsize sixty-four ${WORK}/defects.apim)
run(missing 1 ${APIM_LINT} ${WORK}/no_such_file.apim)
expect_match("${missing_out}" "error \\[io\\]" "missing file")

# --- apim_sim --lint reuses the same engine. ---------------------------------
run(sim1 1 ${APIM_SIM} --lint ${WORK}/defects.apim --memsize 64)
expect_match("${sim1_out}" "line 3: error \\[use-before-def\\]" "apim_sim lint")
run(sim0 0 ${APIM_SIM} --lint ${EXAMPLES_DIR}/axpy.apim --memsize 64)

message(STATUS "apim_lint CLI contract holds")
