// Workload-synthesis helpers shared by the serving, cluster, and
// analytics harnesses (tests/serve_harness.hpp, tests/cluster_harness.hpp,
// tests/analytics_harness.hpp) and the benches that reuse them.
//
// Only seed derivation and skew shaping live here — anything touching
// serve/cluster/analytics types stays in the layer-specific harness.
// gtest-free, header-only.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace apim::workload_harness {

/// Independent named RNG stream under one scenario seed: FNV-1a(name)
/// mixes the identity, XOR folds in the scenario seed, splitmix64
/// decorrelates nearby seeds. Adding a stream or reordering the stream
/// list never perturbs another stream's draw sequence.
[[nodiscard]] inline std::uint64_t seeded_stream(std::uint64_t scenario_seed,
                                                 const std::string& name) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  std::uint64_t state = h ^ scenario_seed;
  return util::splitmix64(state);
}

/// Zipf(s) popularity weights for `n` ranks, normalized to sum 1; rank 0
/// is the hottest. The classic heavy-tail skew (s ~ 1.1 models web-like
/// popularity); used for tenant rates and for skewed analytic keys.
[[nodiscard]] inline std::vector<double> zipf_weights(std::size_t n,
                                                      double s) {
  std::vector<double> w(n);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    w[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
    sum += w[k];
  }
  for (double& x : w) x /= sum;
  return w;
}

/// One draw from the weight vector's discrete distribution (weights must
/// sum to ~1; the final rank absorbs rounding).
[[nodiscard]] inline std::size_t draw_rank(util::Xoshiro256& rng,
                                           const std::vector<double>& w) {
  double u = rng.next_double();
  for (std::size_t k = 0; k + 1 < w.size(); ++k) {
    if (u < w[k]) return k;
    u -= w[k];
  }
  return w.empty() ? 0 : w.size() - 1;
}

}  // namespace apim::workload_harness
