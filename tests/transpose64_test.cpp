// Direct unit tests for arith::transpose64, the 64x64 bit-matrix
// transpose underneath the bitsliced batch backend. The slice kernels are
// covered end to end by bitsliced_equivalence_test; these tests pin the
// transpose itself: the defining bit property, self-inverse round trips,
// ragged (<64-lane) inputs, and single-bit planes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "arith/bitsliced.hpp"
#include "util/rng.hpp"

namespace {

using apim::arith::transpose64;

void fill_random(std::uint64_t m[64], apim::util::Xoshiro256& rng,
                 std::size_t lanes = 64) {
  for (std::size_t i = 0; i < 64; ++i) m[i] = i < lanes ? rng.next() : 0;
}

TEST(Transpose64, DefiningBitProperty) {
  apim::util::Xoshiro256 rng(0x7a05);
  for (int iter = 0; iter < 20; ++iter) {
    std::uint64_t in[64], out[64];
    fill_random(in, rng);
    transpose64(in, out);
    for (std::size_t i = 0; i < 64; ++i)
      for (std::size_t l = 0; l < 64; ++l)
        ASSERT_EQ((out[l] >> i) & 1, (in[i] >> l) & 1)
            << "row " << i << " bit " << l;
  }
}

TEST(Transpose64, RoundTripIsIdentity) {
  apim::util::Xoshiro256 rng(0x0707);
  for (int iter = 0; iter < 50; ++iter) {
    std::uint64_t in[64], mid[64], back[64];
    fill_random(in, rng);
    transpose64(in, mid);
    transpose64(mid, back);
    ASSERT_EQ(0, std::memcmp(in, back, sizeof(in)));
  }
}

// Ragged slices: only the first `lanes` rows carry data (how the batch
// backend pads a short tail). The transposed planes must confine their
// bits to the low `lanes` positions, and the round trip must hold.
TEST(Transpose64, RaggedLaneCounts) {
  apim::util::Xoshiro256 rng(0x4a99ed);
  for (const std::size_t lanes : {1u, 2u, 7u, 31u, 33u, 63u}) {
    std::uint64_t in[64], planes[64], back[64];
    fill_random(in, rng, lanes);
    transpose64(in, planes);
    const std::uint64_t lane_mask =
        lanes == 64 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << lanes) - 1;
    for (std::size_t b = 0; b < 64; ++b)
      ASSERT_EQ(planes[b] & ~lane_mask, 0u)
          << "plane " << b << " has bits beyond lane " << lanes;
    transpose64(planes, back);
    ASSERT_EQ(0, std::memcmp(in, back, sizeof(in)));
  }
}

TEST(Transpose64, SingleBitPlanes) {
  // One set bit at (row i, bit l) lands at exactly (row l, bit i).
  for (const std::size_t i : {0u, 1u, 13u, 63u}) {
    for (const std::size_t l : {0u, 7u, 62u, 63u}) {
      std::uint64_t in[64] = {};
      std::uint64_t out[64];
      in[i] = std::uint64_t{1} << l;
      transpose64(in, out);
      for (std::size_t r = 0; r < 64; ++r)
        ASSERT_EQ(out[r], r == l ? std::uint64_t{1} << i : 0u)
            << "source (" << i << "," << l << ") row " << r;
    }
  }
}

TEST(Transpose64, DiagonalIsFixedPoint) {
  std::uint64_t in[64], out[64];
  for (std::size_t i = 0; i < 64; ++i) in[i] = std::uint64_t{1} << i;
  transpose64(in, out);
  ASSERT_EQ(0, std::memcmp(in, out, sizeof(in)));
}

}  // namespace
