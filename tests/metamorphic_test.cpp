// Metamorphic tests: algebraic relations that must hold between RELATED
// executions of the in-memory arithmetic — a complementary axis to the
// differential (engine vs fast) and reference (vs host arithmetic) suites.
#include <gtest/gtest.h>

#include "arith/fast_units.hpp"
#include "arith/latency_model.hpp"
#include "core/apim.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::arith {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

TEST(Metamorphic, MultiplyValueCommutesButCostDoesNot) {
  // a*b == b*a in value (exact mode), but the COST is asymmetric: PPG and
  // the tree depend on the popcount of the MULTIPLIER operand — a real
  // property of the architecture worth pinning (operand order matters for
  // scheduling, and a smart compiler would put the sparser value second).
  const std::uint64_t dense = 0xFFFFFF0F;  // popcount 28.
  const std::uint64_t sparse = 0x80000001;  // popcount 2.
  const MultiplyOutcome ds = fast_multiply(dense, sparse, 32, {}, em());
  const MultiplyOutcome sd = fast_multiply(sparse, dense, 32, {}, em());
  EXPECT_EQ(ds.product, sd.product);
  EXPECT_EQ(ds.product, dense * sparse);
  EXPECT_LT(ds.cycles, sd.cycles);  // Sparse multiplier is cheaper.
  EXPECT_EQ(ds.partial_count, 2u);
  EXPECT_EQ(sd.partial_count, 28u);
}

TEST(Metamorphic, MaskingEqualsExactMultiplyOfMaskedOperand) {
  // fast_multiply(a, b, mask=k) must behave exactly like the exact multiply
  // of (a, b & ~low_mask(k)) — in VALUE and in COST (the hardware cannot
  // tell a masked-off bit from a zero bit).
  util::Xoshiro256 rng(161);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t a = rng.next() & util::low_mask(32);
    const std::uint64_t b = rng.next() & util::low_mask(32);
    const unsigned k = static_cast<unsigned>(rng.next_below(24));
    const MultiplyOutcome masked =
        fast_multiply(a, b, 32, ApproxConfig::first_stage(k), em());
    const MultiplyOutcome equivalent = fast_multiply(
        a, b & ~util::low_mask(k), 32, ApproxConfig::exact(), em());
    ASSERT_EQ(masked.product, equivalent.product) << "k=" << k;
    ASSERT_EQ(masked.cycles, equivalent.cycles) << "k=" << k;
    // Energy differs only by the skipped SA reads of the masked bits.
    ASSERT_NEAR(masked.energy_ops_pj + k * em().e_read_pj,
                equivalent.energy_ops_pj, 1e-9)
        << "k=" << k;
  }
}

TEST(Metamorphic, MultiplyByPowerOfTwoIsAShiftedCopy) {
  // b = 2^j: one partial product, product = a << j, no tree, no final add.
  util::Xoshiro256 rng(162);
  for (unsigned j = 0; j < 32; ++j) {
    const std::uint64_t a = rng.next() & util::low_mask(32);
    const MultiplyOutcome r =
        fast_multiply(a, std::uint64_t{1} << j, 32, {}, em());
    ASSERT_EQ(r.product, a << j) << "j=" << j;
    ASSERT_EQ(r.cycles, ppg_cycles(1)) << "j=" << j;
    ASSERT_EQ(r.tree_stages, 0u);
  }
}

TEST(Metamorphic, AddIsCommutativeInValueAndCost) {
  util::Xoshiro256 rng(163);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t a = rng.next() & util::low_mask(32);
    const std::uint64_t b = rng.next() & util::low_mask(32);
    for (unsigned m : {0u, 8u, 16u}) {
      const AddOutcome ab = fast_add(a, b, 32, m, em());
      const AddOutcome ba = fast_add(b, a, 32, m, em());
      // The relaxed adder is symmetric in its operands: MAJ and the FA
      // schedule treat A and B identically.
      ASSERT_EQ(ab.sum, ba.sum) << "m=" << m;
      ASSERT_EQ(ab.cycles, ba.cycles);
      ASSERT_NEAR(ab.energy_ops_pj, ba.energy_ops_pj, 1e-9);
    }
  }
}

TEST(Metamorphic, TreeAddIsPermutationInvariantInValue) {
  // Reordering the addends must not change the sum (it may change the
  // plan's internal widths, hence cost can differ slightly).
  util::Xoshiro256 rng(164);
  std::vector<std::uint64_t> values;
  std::vector<unsigned> widths(9, 16);
  for (int i = 0; i < 9; ++i)
    values.push_back(rng.next() & util::low_mask(16));
  const AddOutcome forward = fast_tree_add(values, widths, 20, em());
  std::vector<std::uint64_t> reversed(values.rbegin(), values.rend());
  const AddOutcome backward = fast_tree_add(reversed, widths, 20, em());
  EXPECT_EQ(forward.sum, backward.sum);
}

TEST(Metamorphic, RelaxedAddUpperBitsEqualTruncatedExactAdd) {
  // For any m: approx(a, b) >> m == (a + b) >> m. This is the contract the
  // k/m split rests on (exact carries), stated as a metamorphic relation.
  util::Xoshiro256 rng(165);
  for (int t = 0; t < 300; ++t) {
    const unsigned n = 8 + static_cast<unsigned>(rng.next_below(40));
    const unsigned m = static_cast<unsigned>(rng.next_below(n + 1));
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    const AddOutcome r = fast_add(a, b, n, m, em());
    ASSERT_EQ(r.sum >> m, (a + b) >> m) << "n=" << n << " m=" << m;
  }
}

TEST(Metamorphic, DeviceDistributesMultiplicationOverAddition) {
  // Exact mode: a*(b+c) == a*b + a*c end to end through the device API.
  core::ApimDevice device;
  util::Xoshiro256 rng(166);
  for (int t = 0; t < 50; ++t) {
    const auto a = static_cast<std::int64_t>(rng.next_below(1u << 15));
    const auto b = static_cast<std::int64_t>(rng.next_below(1u << 15));
    const auto c = static_cast<std::int64_t>(rng.next_below(1u << 15));
    const std::int64_t left = device.mul_int(a, device.add(b, c));
    const std::int64_t right =
        device.add(device.mul_int(a, b), device.mul_int(a, c));
    ASSERT_EQ(left, right);
  }
}

TEST(Metamorphic, ScalingOperandsScalesTheProduct) {
  // (2a) * b == 2 * (a*b): shifts commute with exact multiplication.
  util::Xoshiro256 rng(167);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t a = rng.next() & util::low_mask(31);
    const std::uint64_t b = rng.next() & util::low_mask(16);
    const MultiplyOutcome doubled = fast_multiply(a << 1, b, 32, {}, em());
    const MultiplyOutcome base = fast_multiply(a, b, 32, {}, em());
    ASSERT_EQ(doubled.product, base.product << 1);
  }
}

TEST(Metamorphic, RelaxCyclesMonotoneInMForAllOperands) {
  // Latency never increases as m grows (after the serial-fallback policy),
  // for the SAME operands — the property the tuner's search relies on.
  util::Xoshiro256 rng(168);
  for (int t = 0; t < 50; ++t) {
    const std::uint64_t a = rng.next() & util::low_mask(32);
    const std::uint64_t b = rng.next() & util::low_mask(32);
    util::Cycles prev = ~util::Cycles{0};
    for (unsigned m = 0; m <= 64; m += 4) {
      const MultiplyOutcome r =
          fast_multiply(a, b, 32, ApproxConfig::last_stage(m), em());
      ASSERT_LE(r.cycles, prev) << "m=" << m;
      prev = r.cycles;
    }
  }
}

}  // namespace
}  // namespace apim::arith
