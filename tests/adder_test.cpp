// Tests of the in-memory adders (bit-level and word-level): functional
// correctness and the paper's cycle formulas (12N+1 serial, 13-cycle CSA,
// 13-per-stage tree).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "arith/fast_units.hpp"
#include "arith/inmemory_units.hpp"
#include "arith/latency_model.hpp"
#include "arith/word_models.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::arith {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

// ------------------------------------------------------------ serial add --

TEST(SerialAdd, WordModelComputesExactSums) {
  util::Xoshiro256 rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    const unsigned n = 1 + static_cast<unsigned>(rng.next_below(48));
    const std::uint64_t mask = util::low_mask(n);
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const WordUnitResult r = word_serial_add(a, b, n, em());
    EXPECT_EQ(r.value, a + b) << "n=" << n;
    EXPECT_EQ(r.cycles, serial_add_cycles(n));
  }
}

TEST(SerialAdd, EngineComputesExactSums) {
  util::Xoshiro256 rng(32);
  for (int trial = 0; trial < 40; ++trial) {
    const unsigned n = 1 + static_cast<unsigned>(rng.next_below(32));
    const std::uint64_t mask = util::low_mask(n);
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const InMemoryResult r = inmemory_serial_add(a, b, n, em());
    EXPECT_EQ(r.value, a + b) << "n=" << n;
    EXPECT_EQ(r.cycles, serial_add_cycles(n));
    EXPECT_GT(r.energy_ops_pj, 0.0);
  }
}

TEST(SerialAdd, PaperCycleFormula) {
  // Section 2: "This design takes 12N+1 cycles to add two N-bit numbers."
  EXPECT_EQ(serial_add_cycles(1), 13u);
  EXPECT_EQ(serial_add_cycles(16), 193u);
  EXPECT_EQ(serial_add_cycles(32), 385u);
  const InMemoryResult r = inmemory_serial_add(0x1234, 0x5678, 16, em());
  EXPECT_EQ(r.cycles, 193u);
}

TEST(SerialAdd, CarryOutAtFullWidth) {
  const unsigned n = 8;
  const InMemoryResult r = inmemory_serial_add(0xFF, 0x01, n, em());
  EXPECT_EQ(r.value, 0x100u);
}

// -------------------------------------------------------------------- csa --

TEST(Csa, ThirteenCyclesIndependentOfWidth) {
  // Section 3.2: "The latency of this 3:2 reduction ... is same as that of
  // a 1-bit addition (i.e., 13 cycles) irrespective of the size of the
  // operands."
  for (unsigned width : {4u, 8u, 16u, 32u, 48u}) {
    const CsaOutcome r = inmemory_csa(0x3, 0x5, 0x6, width, em());
    EXPECT_EQ(r.cycles, 13u) << "width " << width;
  }
}

TEST(Csa, PreservesArithmeticSum) {
  util::Xoshiro256 rng(33);
  for (int trial = 0; trial < 30; ++trial) {
    const unsigned width = 2 + static_cast<unsigned>(rng.next_below(30));
    const std::uint64_t mask = util::low_mask(width);
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const std::uint64_t c = rng.next() & mask;
    const CsaOutcome r = inmemory_csa(a, b, c, width, em());
    EXPECT_EQ(r.sum + r.carry, a + b + c);
  }
}

TEST(Csa, WiderIsNotSlowerButCostsMoreEnergy) {
  const CsaOutcome narrow = inmemory_csa(1, 2, 3, 4, em());
  const CsaOutcome wide = inmemory_csa(1, 2, 3, 48, em());
  EXPECT_EQ(narrow.cycles, wide.cycles);
  EXPECT_GT(wide.energy_ops_pj, narrow.energy_ops_pj);
}

// ------------------------------------------------------------- tree adder --

std::tuple<std::vector<std::uint64_t>, std::vector<unsigned>, std::uint64_t>
random_operands(util::Xoshiro256& rng, std::size_t count, unsigned n) {
  std::vector<std::uint64_t> values;
  std::vector<unsigned> widths;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t v = rng.next() & util::low_mask(n);
    values.push_back(v);
    widths.push_back(n);
    total += v;
  }
  return {values, widths, total};
}

unsigned cap_for(std::size_t count, unsigned n) {
  return n + util::bit_width(static_cast<std::uint64_t>(count) - 1);
}

TEST(TreeAdd, WordModelSumsManyOperands) {
  util::Xoshiro256 rng(34);
  for (std::size_t count : {2u, 3u, 5u, 9u, 16u, 27u}) {
    const unsigned n = 16;
    auto [values, widths, total] = random_operands(rng, count, n);
    const AddOutcome r =
        fast_tree_add(values, widths, cap_for(count, n), em());
    EXPECT_EQ(r.sum, total) << "count=" << count;
  }
}

TEST(TreeAdd, EngineSumsManyOperands) {
  util::Xoshiro256 rng(35);
  for (std::size_t count : {3u, 4u, 9u, 12u}) {
    const unsigned n = 12;
    auto [values, widths, total] = random_operands(rng, count, n);
    const InMemoryResult r =
        inmemory_tree_add(values, widths, cap_for(count, n), em());
    EXPECT_EQ(r.value, total) << "count=" << count;
  }
}

TEST(TreeAdd, NineOperandLatencyMatchesPaperStructure) {
  // 9 operands: 4 tree stages (13 cycles each) + one serial add of the two
  // survivors (width n+4 under our safe one-bit-per-stage growth rule; the
  // paper quotes n+3).
  util::Xoshiro256 rng(36);
  const unsigned n = 16;
  auto [values, widths, total] = random_operands(rng, 9, n);
  const InMemoryResult r = inmemory_tree_add(values, widths, n + 4, em());
  EXPECT_EQ(r.value, total);
  EXPECT_EQ(r.cycles, 4 * 13 + serial_add_cycles(n + 4));
}

TEST(TreeAdd, ThreeOperandsMatchPaperTotal) {
  // Section 3.2: 3 operands cost 13 + (12N + 1) = 12N + 14 cycles.
  util::Xoshiro256 rng(37);
  const unsigned n = 16;
  auto [values, widths, total] = random_operands(rng, 3, n);
  const InMemoryResult r = inmemory_tree_add(values, widths, n + 2, em());
  EXPECT_EQ(r.value, total);
  EXPECT_EQ(r.cycles, 12u * (n + 1) + 14u);  // Survivors are (n+1)-bit.
}

TEST(TreeAdd, TreeBeatsSerialChainForManyOperands) {
  // The headline property behind Figure 6: tree reduction beats chained
  // serial additions, increasingly so with operand count.
  const unsigned n = 16;
  for (std::size_t count : {9u, 16u, 32u}) {
    const util::Cycles tree = tree_add_cycles(count, n);
    // Chained serial: (M-1) additions of growing width; lower-bound with
    // width n (favours the serial design).
    const util::Cycles serial =
        static_cast<util::Cycles>(count - 1) * serial_add_cycles(n);
    EXPECT_LT(tree, serial) << "count=" << count;
  }
}

TEST(TreeAdd, MixedWidthOperands) {
  const std::vector<std::uint64_t> values{0xFFFF, 0xF, 0x3FF, 0x1, 0x7F};
  const std::vector<unsigned> widths{16, 4, 10, 1, 7};
  std::uint64_t total = 0;
  for (auto v : values) total += v;
  const InMemoryResult engine_r = inmemory_tree_add(values, widths, 20, em());
  const AddOutcome fast_r = fast_tree_add(values, widths, 20, em());
  EXPECT_EQ(engine_r.value, total);
  EXPECT_EQ(fast_r.sum, total);
}

// -------------------------------------------------------- relaxed adder ----

TEST(RelaxedAdd, ExactWhenNoRelaxBits) {
  util::Xoshiro256 rng(38);
  for (int trial = 0; trial < 50; ++trial) {
    const unsigned n = 8 + static_cast<unsigned>(rng.next_below(24));
    const std::uint64_t mask = util::low_mask(n);
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    EXPECT_EQ(approximate_add_value(a, b, n, 0), a + b);
  }
}

TEST(RelaxedAdd, CarriesStayExactSoHighBitsAreRight) {
  util::Xoshiro256 rng(39);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned n = 32;
    const unsigned m = 4 * (1 + static_cast<unsigned>(rng.next_below(8)));
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    const std::uint64_t approx = approximate_add_value(a, b, n, m);
    const std::uint64_t exact = a + b;
    // Bits >= m agree exactly because every carry is exact.
    EXPECT_EQ(approx >> m, exact >> m) << "m=" << m;
    // Error is bounded by the relaxed region.
    const auto diff = static_cast<std::int64_t>(approx) -
                      static_cast<std::int64_t>(exact);
    EXPECT_LT(std::abs(diff), std::int64_t{1} << m);
  }
}

TEST(RelaxedAdd, EngineMatchesReferenceSemantics) {
  util::Xoshiro256 rng(40);
  for (int trial = 0; trial < 30; ++trial) {
    const unsigned n = 16;
    const unsigned m = static_cast<unsigned>(rng.next_below(n + 1));
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    const InMemoryResult r = inmemory_relaxed_add(a, b, n, m, em());
    EXPECT_EQ(r.value, approximate_add_value(a, b, n, m))
        << "a=" << a << " b=" << b << " m=" << m;
    EXPECT_EQ(r.cycles, final_add_cycles(n, m));
  }
}

TEST(RelaxedAdd, LatencyFormula13kPlus2mPlus1) {
  EXPECT_EQ(final_add_cycles(64, 0), 13u * 64);
  EXPECT_EQ(final_add_cycles(64, 64), 2u * 64 + 1);
  EXPECT_EQ(final_add_cycles(64, 16), 13u * 48 + 2u * 16 + 1);
  // m beyond the width clamps.
  EXPECT_EQ(final_add_cycles(16, 99), 2u * 16 + 1);
}

TEST(RelaxedAdd, FullRelaxErrorMatches25PercentCaseRate) {
  // Section 3.4: S = NOT(Cout) is wrong for (0,0,0) and (1,1,1) — 2 of 8
  // input cases. With random bits the per-bit wrongness rate is 25%.
  util::Xoshiro256 rng(41);
  const unsigned n = 32;
  std::size_t wrong_bits = 0, total_bits = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    const std::uint64_t approx =
        approximate_add_value(a, b, n, n) & util::low_mask(n);
    const std::uint64_t exact = (a + b) & util::low_mask(n);
    wrong_bits += static_cast<std::size_t>(
        util::popcount(approx ^ exact));
    total_bits += n;
  }
  const double rate =
      static_cast<double>(wrong_bits) / static_cast<double>(total_bits);
  EXPECT_NEAR(rate, 0.25, 0.02);
}

// --------------------------------------------------------- standalone add --

TEST(FastAdd, DispatchesSerialVsRelaxed) {
  const AddOutcome exact = fast_add(100, 200, 16, 0, em());
  EXPECT_EQ(exact.sum, 300u);
  EXPECT_EQ(exact.cycles, serial_add_cycles(16));
  const AddOutcome relaxed = fast_add(100, 200, 16, 8, em());
  EXPECT_EQ(relaxed.cycles, final_add_cycles(16, 8));
  // High bits still exact.
  EXPECT_EQ(relaxed.sum >> 8, 300u >> 8);
}

TEST(LatencyModel, StandaloneAddFormulas) {
  EXPECT_EQ(standalone_add_cycles(32, 0), 385u);
  EXPECT_EQ(standalone_add_cycles(32, 32), 65u);
}

}  // namespace
}  // namespace apim::arith
