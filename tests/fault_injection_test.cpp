// Fault-injection tests: stuck-at cells in the crossbar and their effect
// on the in-memory arithmetic (the failure-injection axis of the test
// plan — a bit-exact simulator makes this kind of robustness analysis
// possible at all).
#include <gtest/gtest.h>

#include <cmath>

#include "arith/inmemory_fa.hpp"
#include "crossbar/crossbar.hpp"
#include "magic/engine.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace apim::crossbar {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

TEST(FaultInjection, StuckCellIgnoresWrites) {
  CrossbarBlock block(4, 4);
  block.inject_stuck_at(1, 1, true);
  EXPECT_TRUE(block.get(1, 1));
  EXPECT_FALSE(block.set(1, 1, false));  // No switch happens.
  EXPECT_TRUE(block.get(1, 1));          // Still stuck high.
  EXPECT_EQ(block.fault_count(), 1u);
}

TEST(FaultInjection, StuckAtZero) {
  CrossbarBlock block(4, 4);
  block.inject_stuck_at(2, 2, false);
  block.set(2, 2, true);
  EXPECT_FALSE(block.get(2, 2));
}

TEST(FaultInjection, ClearFaultsRestoresWritability) {
  CrossbarBlock block(4, 4);
  block.inject_stuck_at(0, 0, false);
  block.clear_faults();
  EXPECT_TRUE(block.set(0, 0, true));
  EXPECT_TRUE(block.get(0, 0));
}

TEST(FaultInjection, HealthyCellsUnaffectedByNeighboringFaults) {
  CrossbarBlock block(4, 4);
  block.inject_stuck_at(0, 0, true);
  EXPECT_TRUE(block.set(0, 1, true));
  EXPECT_TRUE(block.get(0, 1));
}

TEST(FaultInjection, MagicNorOnFaultyOutputCell) {
  // A scratch cell stuck at '1' cannot be RESET by the NOR evaluation, so
  // the op silently produces 1 regardless of inputs.
  BlockedCrossbar xbar(CrossbarConfig{1, 4, 4});
  magic::MagicEngine engine(xbar, em());
  xbar.block(0).inject_stuck_at(0, 2, true);
  xbar.set(CellAddr{0, 0, 0}, true);  // An input at '1': NOR must give 0.
  std::vector<CellAddr> init{CellAddr{0, 0, 2}};
  engine.init_cells(init);
  std::vector<CellAddr> ins{CellAddr{0, 0, 0}};
  engine.nor(CellAddr{0, 0, 2}, ins);
  EXPECT_TRUE(xbar.get(CellAddr{0, 0, 2}));  // Faulty: stays 1.
}

// Statistical robustness study: random stuck-at faults in the adder's
// fabric, measuring how often the result is corrupted.
TEST(FaultInjectionStudy, SparseFaultsDegradeGracefully) {
  // The multiplier allocates its own fabric, so to study faults we run the
  // serial adder on a shared crossbar with injected faults. Faults in
  // scratch columns corrupt specific result bits; the error magnitude is
  // bounded by the faulty bit positions.
  util::Xoshiro256 rng(81);
  int corrupted = 0;
  const int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    BlockedCrossbar xbar(CrossbarConfig{2, 16, 40});
    magic::MagicEngine engine(xbar, em());
    const unsigned n = 16;
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    for (unsigned i = 0; i < n; ++i) {
      xbar.block(1).set(0, i, util::bit(a, i) != 0);
      xbar.block(1).set(1, i, util::bit(b, i) != 0);
    }
    // One random stuck-at fault somewhere in the scratch band.
    const auto row = 2 + rng.next_below(12);
    const auto col = rng.next_below(n);
    xbar.block(1).inject_stuck_at(row, col, rng.next_below(2) != 0);

    // Run the serial-add schedule on the faulty fabric.
    std::vector<arith::FaLaneMap> lanes;
    std::vector<CellAddr> init;
    const CellAddr zero_ref{1, 15, 0};
    for (unsigned i = 0; i < n; ++i) {
      const CellAddr av{1, 0, i}, bv{1, 1, i};
      const CellAddr c = (i == 0) ? zero_ref : lanes[i - 1].cell(arith::kSlotCout);
      lanes.push_back(arith::make_fa_lane(av, bv, c, 1, 2, i, 0));
      arith::append_lane_init_cells(lanes.back(), init);
    }
    engine.init_cells(init);
    for (const auto& lane : lanes) arith::execute_fa_lane_serial(engine, lane);
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < n; ++i)
      if (xbar.get(lanes[i].cell(arith::kSlotS))) sum |= 1ull << i;
    if (xbar.get(lanes[n - 1].cell(arith::kSlotCout))) sum |= 1ull << n;

    if (sum != a + b) ++corrupted;
  }
  // Some faults land in don't-care scratch (masked); some corrupt. Both
  // outcomes must occur — total immunity or total failure would indicate a
  // modeling bug.
  EXPECT_GT(corrupted, 0);
  EXPECT_LT(corrupted, kTrials);
}

}  // namespace
}  // namespace apim::crossbar
