// Randomized serving-scenario harness shared by the fairness stress test
// (tests/serve_fairness_test.cpp) and the load-generator tests.
//
// Everything derives from one scenario seed: each tenant gets an
// independent RNG stream (FNV-1a of its name XOR the scenario seed, run
// through splitmix64), so adding a tenant or reordering the tenant list
// never perturbs another tenant's trace. The harness is gtest-free —
// checks return "" on success or a human-readable violation string — so
// benches can reuse it without linking a test framework.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "serve/load_gen.hpp"
#include "serve/metrics.hpp"
#include "serve/qos_table.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload_harness.hpp"

namespace apim::serve_harness {

/// One tenant's offered load and scheduling weight.
struct TenantSpec {
  std::string name;
  std::uint32_t weight = 1;
  double rate_per_kcycle = 4.0;
  std::size_t requests = 80;
  std::size_t min_ops = 2;
  std::size_t max_ops = 8;
  unsigned width = 16;
  double add_fraction = 0.0;
  util::Cycles deadline = 0;  ///< Relative; 0 = none.
  unsigned relax_bits = 0;    ///< QoS-table relax level for this app.
  /// Fault-tolerance level this tenant's requests pay for.
  reliability::ReliabilityPolicy policy = reliability::ReliabilityPolicy::kOff;
};

/// A complete serving scenario: tenants plus the server they share.
/// `server.tenant_weights` is filled from the tenants by run_scenario.
struct Scenario {
  std::uint64_t seed = 1;
  std::vector<TenantSpec> tenants;
  serve::ServerConfig server{};
};

/// What one scenario run produced. Responses are index-aligned with the
/// trace, so trace[i].app attributes responses[i] to its tenant.
struct Outcome {
  std::vector<serve::Request> trace;
  std::vector<serve::Response> responses;
  serve::MetricsSnapshot snap;
};

/// Independent per-tenant RNG stream; the seed derivation is shared with
/// the other harnesses (tests/workload_harness.hpp). Stable under tenant
/// reordering.
[[nodiscard]] inline std::uint64_t tenant_seed(std::uint64_t scenario_seed,
                                               const std::string& name) {
  return workload_harness::seeded_stream(scenario_seed, name);
}

/// One tenant's open-loop trace, drawn from its own RNG stream.
[[nodiscard]] inline std::vector<serve::Request> tenant_trace(
    const TenantSpec& t, std::uint64_t scenario_seed) {
  serve::LoadGenConfig gen;
  gen.requests = t.requests;
  gen.rate_per_kcycle = t.rate_per_kcycle;
  gen.seed = tenant_seed(scenario_seed, t.name);
  gen.apps = {t.name};
  gen.min_ops = t.min_ops;
  gen.max_ops = t.max_ops;
  gen.width = t.width;
  gen.add_fraction = t.add_fraction;
  gen.deadline = t.deadline;
  gen.policy = t.policy;
  return serve::make_open_loop_trace(gen);
}

/// All tenants' traces merged into one arrival-ordered trace. The sort is
/// stable, so simultaneous arrivals keep tenant-list order: deterministic.
[[nodiscard]] inline std::vector<serve::Request> merged_trace(
    const Scenario& s) {
  std::vector<serve::Request> all;
  for (const TenantSpec& t : s.tenants) {
    std::vector<serve::Request> part = tenant_trace(t, s.seed);
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const serve::Request& a, const serve::Request& b) {
                     return a.arrival < b.arrival;
                   });
  return all;
}

/// Draw a random but valid scenario: 1..4 tenants with mixed weights,
/// rates, shapes, deadlines and admission policies. Same seed, same
/// scenario, forever.
[[nodiscard]] inline Scenario random_scenario(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Scenario s;
  s.seed = seed;

  const std::size_t tenant_count = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < tenant_count; ++i) {
    TenantSpec t;
    t.name = "tenant-" + std::string(1, static_cast<char>('a' + i));
    t.weight = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    t.rate_per_kcycle = 1.0 + static_cast<double>(rng.next_below(12));
    t.requests = 30 + rng.next_below(50);
    t.min_ops = 1 + rng.next_below(4);
    t.max_ops = t.min_ops + rng.next_below(8);
    t.width = 8 + static_cast<unsigned>(rng.next_below(9));  // 8..16.
    t.add_fraction = rng.next_below(2) == 0 ? 0.0 : 0.25;
    t.deadline = rng.next_below(3) == 0
                     ? 20000 + 10000 * rng.next_below(7)
                     : 0;
    t.relax_bits = static_cast<unsigned>(rng.next_below(5));
    s.tenants.push_back(std::move(t));
  }

  s.server.streams = 2 + rng.next_below(3);
  s.server.lanes_per_stream = 8 + 4 * rng.next_below(3);
  s.server.batch_window = 200 + 200 * rng.next_below(6);
  s.server.dispatch_cycles = 32 + 32 * rng.next_below(4);
  s.server.queue_capacity = 64 + 64 * rng.next_below(8);
  s.server.admission = rng.next_below(4) == 0
                           ? serve::AdmissionPolicy::kBlock
                           : serve::AdmissionPolicy::kReject;
  s.server.fair_share = true;
  return s;
}

/// Run the scenario's merged trace through a fresh server. The QoS table
/// carries each tenant's relax level; weights flow into the scheduler.
[[nodiscard]] inline Outcome run_scenario(const Scenario& s) {
  serve::QosTable table;
  serve::ServerConfig cfg = s.server;
  cfg.tenant_weights.clear();
  for (const TenantSpec& t : s.tenants) {
    table.set(t.name, serve::QosTableEntry{t.relax_bits, 0.0, true, false});
    cfg.tenant_weights[t.name] = t.weight;
  }
  serve::Server server(cfg, std::move(table));
  Outcome out;
  out.trace = merged_trace(s);
  out.responses = server.run_trace(out.trace);
  out.snap = server.snapshot();
  return out;
}

/// How many of `app`'s requests finished with `status`.
[[nodiscard]] inline std::uint64_t app_status_count(
    const Outcome& out, const std::string& app, serve::RequestStatus status) {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < out.responses.size(); ++i)
    if (out.trace[i].app == app && out.responses[i].status == status) ++n;
  return n;
}

/// Conservation check: every admitted request reaches exactly one terminal
/// status, and the metrics snapshot agrees with the responses. Returns ""
/// or a description of the first violation.
[[nodiscard]] inline std::string check_conservation(const Outcome& out) {
  std::ostringstream oss;
  std::uint64_t ok = 0, rejected = 0, expired = 0, invalid = 0;
  for (std::size_t i = 0; i < out.responses.size(); ++i) {
    const serve::Response& r = out.responses[i];
    switch (r.status) {
      case serve::RequestStatus::kOk: ++ok; break;
      case serve::RequestStatus::kRejected: ++rejected; break;
      case serve::RequestStatus::kExpired: ++expired; break;
      case serve::RequestStatus::kInvalid: ++invalid; break;
      case serve::RequestStatus::kPending:
        oss << "response " << i << " left pending";
        return oss.str();
    }
  }
  const std::uint64_t total = out.responses.size();
  if (ok + rejected + expired + invalid != total) {
    oss << "terminal statuses " << (ok + rejected + expired + invalid)
        << " != responses " << total;
    return oss.str();
  }
  if (out.snap.submitted != total) {
    oss << "snapshot.submitted " << out.snap.submitted << " != responses "
        << total;
    return oss.str();
  }
  if (out.snap.completed != ok || out.snap.rejected != rejected ||
      out.snap.expired != expired || out.snap.invalid != invalid) {
    oss << "snapshot counts (completed " << out.snap.completed
        << ", rejected " << out.snap.rejected << ", expired "
        << out.snap.expired << ", invalid " << out.snap.invalid
        << ") disagree with responses (" << ok << ", " << rejected << ", "
        << expired << ", " << invalid << ")";
    return oss.str();
  }
  std::uint64_t app_completed = 0;
  for (const auto& [app, counts] : out.snap.per_app)
    app_completed += counts.completed;
  if (app_completed != ok) {
    oss << "per-app completed " << app_completed << " != ok responses "
        << ok;
    return oss.str();
  }
  return {};
}

/// First difference between two outcomes, or "" when bit-identical.
[[nodiscard]] inline std::string diff_outcomes(const Outcome& a,
                                               const Outcome& b) {
  std::ostringstream oss;
  if (a.responses.size() != b.responses.size()) {
    oss << "response counts " << a.responses.size() << " vs "
        << b.responses.size();
    return oss.str();
  }
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    const serve::Response& x = a.responses[i];
    const serve::Response& y = b.responses[i];
    const bool same = x.id == y.id && x.status == y.status &&
                      x.values == y.values && x.relax_bits == y.relax_bits &&
                      x.escalated == y.escalated && x.arrival == y.arrival &&
                      x.dispatch == y.dispatch &&
                      x.completion == y.completion &&
                      x.batch_requests == y.batch_requests &&
                      x.relocations == y.relocations &&
                      x.energy_pj == y.energy_pj;  // Bit-exact.
    if (!same) {
      oss << "response " << i << " differs (status " << to_string(x.status)
          << " vs " << to_string(y.status) << ", completion "
          << x.completion << " vs " << y.completion << ")";
      return oss.str();
    }
  }
  const serve::MetricsSnapshot& s = a.snap;
  const serve::MetricsSnapshot& t = b.snap;
  if (s.submitted != t.submitted || s.completed != t.completed ||
      s.rejected != t.rejected || s.expired != t.expired ||
      s.batches != t.batches || s.batched_ops != t.batched_ops ||
      s.span_cycles != t.span_cycles ||
      s.p99_latency_cycles != t.p99_latency_cycles ||
      s.energy_pj != t.energy_pj ||
      s.jain_fairness != t.jain_fairness) {
    oss << "metrics snapshots differ (batches " << s.batches << " vs "
        << t.batches << ", span " << s.span_cycles << " vs "
        << t.span_cycles << ")";
    return oss.str();
  }
  for (const auto& [app, counts] : s.per_app) {
    const auto it = t.per_app.find(app);
    if (it == t.per_app.end()) {
      oss << "app " << app << " missing from second snapshot";
      return oss.str();
    }
    if (counts.ops_served != it->second.ops_served ||
        counts.dispatches != it->second.dispatches ||
        counts.max_starvation_cycles != it->second.max_starvation_cycles ||
        counts.max_deficit_carried != it->second.max_deficit_carried) {
      oss << "app " << app << " fairness counters differ (ops "
          << counts.ops_served << " vs " << it->second.ops_served << ")";
      return oss.str();
    }
  }
  return {};
}

/// This app's fraction of all executed ops (0 when nothing executed).
[[nodiscard]] inline double served_ops_share(
    const serve::MetricsSnapshot& snap, const std::string& app) {
  std::uint64_t total = 0;
  for (const auto& [name, counts] : snap.per_app) total += counts.ops_served;
  if (total == 0) return 0.0;
  const auto it = snap.per_app.find(app);
  return it == snap.per_app.end()
             ? 0.0
             : static_cast<double>(it->second.ops_served) /
                   static_cast<double>(total);
}

/// p99 completion latency (cycles) over this app's kOk responses.
[[nodiscard]] inline double app_p99_latency(const Outcome& out,
                                            const std::string& app) {
  std::vector<double> samples;
  for (std::size_t i = 0; i < out.responses.size(); ++i) {
    if (out.trace[i].app != app) continue;
    if (out.responses[i].status != serve::RequestStatus::kOk) continue;
    samples.push_back(
        static_cast<double>(out.responses[i].latency_cycles()));
  }
  return util::percentile(std::move(samples), 0.99);
}

/// Empirical serving capacity in executed ops per 1000 cycles: drive one
/// tenant at a saturating rate and read back throughput. Calibrating
/// instead of hard-coding keeps fairness tolerances valid when the device
/// timing model changes.
[[nodiscard]] inline double measure_capacity_ops_per_kcycle(
    const serve::ServerConfig& server, const TenantSpec& heavy,
    std::uint64_t seed) {
  Scenario solo;
  solo.seed = seed;
  solo.server = server;
  TenantSpec t = heavy;
  t.deadline = 0;  // Nothing sheds during calibration.
  solo.tenants = {std::move(t)};
  const Outcome out = run_scenario(solo);
  if (out.snap.span_cycles == 0) return 0.0;
  return 1000.0 * static_cast<double>(out.snap.batched_ops) /
         static_cast<double>(out.snap.span_cycles);
}

}  // namespace apim::serve_harness
