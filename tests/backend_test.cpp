// Tests of the ApimDevice backend switch: the bit-level MAGIC engine and
// the fast functional models must be interchangeable behind the device
// API — identical values, cycles and energy, all the way up to whole
// applications.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "core/apim.hpp"
#include "util/rng.hpp"

namespace apim::core {
namespace {

ApimDevice make_device(Backend backend, unsigned relax = 0) {
  ApimConfig cfg;
  cfg.backend = backend;
  cfg.approx.relax_bits = relax;
  return ApimDevice{cfg};
}

TEST(Backend, SingleOpsAgreeExactly) {
  util::Xoshiro256 rng(91);
  for (unsigned relax : {0u, 8u, 24u, 32u}) {
    ApimDevice fast = make_device(Backend::kFast, relax);
    ApimDevice bit = make_device(Backend::kBitLevel, relax);
    for (int t = 0; t < 10; ++t) {
      const auto a = static_cast<std::int64_t>(rng.next_below(1u << 20));
      const auto b = static_cast<std::int64_t>(rng.next_below(1u << 20));
      ASSERT_EQ(fast.mul_int(a, b), bit.mul_int(a, b))
          << "relax=" << relax;
      ASSERT_EQ(fast.add(a, b), bit.add(a, b));
      ASSERT_EQ(fast.add(a, -b), bit.add(a, -b));
    }
    ASSERT_EQ(fast.stats().cycles, bit.stats().cycles) << "relax=" << relax;
    ASSERT_NEAR(fast.energy_pj(), bit.energy_pj(),
                1e-9 + 1e-12 * fast.energy_pj())
        << "relax=" << relax;
  }
}

TEST(Backend, WholeApplicationAgreesOnBothLevels) {
  // A small Robert run (the lightest image kernel): every multiply and add
  // of the application executes NOR-by-NOR on crossbar cells in the
  // bit-level device, and must reproduce the fast path bit for bit.
  auto app = apps::make_application("Robert");
  app->generate(16 * 16, 2017);

  ApimDevice fast = make_device(Backend::kFast, /*relax=*/16);
  ApimDevice bit = make_device(Backend::kBitLevel, /*relax=*/16);
  const auto fast_out = app->run_apim(fast);
  const auto bit_out = app->run_apim(bit);
  ASSERT_EQ(fast_out.size(), bit_out.size());
  for (std::size_t i = 0; i < fast_out.size(); ++i)
    ASSERT_DOUBLE_EQ(fast_out[i], bit_out[i]) << i;
  EXPECT_EQ(fast.stats().cycles, bit.stats().cycles);
  EXPECT_EQ(fast.stats().multiplies, bit.stats().multiplies);
  EXPECT_NEAR(fast.energy_pj(), bit.energy_pj(),
              1e-9 + 1e-12 * fast.energy_pj());
}

TEST(Backend, DefaultIsFast) {
  EXPECT_EQ(ApimConfig{}.backend, Backend::kFast);
}

}  // namespace
}  // namespace apim::core
