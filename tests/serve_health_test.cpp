// Tests of the serving runtime's online health layer (serve/health.hpp +
// the engine hooks in serve/server.cpp): the per-domain state machine,
// the march-test scrub/repair model, and end-to-end chaos runs — seeded
// fault injection mid-serve with quarantine, relocation, degradation and
// re-admission. Suites are named Serve* so scripts/check_tsan.sh's ctest
// filter picks them up.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve_chaos_harness.hpp"
#include "serve/health.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace apim;
using namespace apim::serve_harness;
namespace health = apim::serve::health;

struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(0); }
};

// -- HealthMonitor state machine --------------------------------------------

TEST(ServeHealthMonitor, DetectionsSuspectAndCleanScrubRecovers) {
  health::HealthConfig cfg;
  cfg.enabled = true;
  cfg.suspect_detections = 4;
  cfg.quarantine_detections = 100;
  health::HealthMonitor mon(2, cfg);

  mon.on_dispatch(0, 3, 0);
  EXPECT_EQ(mon.state(0), health::DomainState::kHealthy);
  mon.on_dispatch(0, 1, 0);  // Crosses the suspect threshold.
  EXPECT_EQ(mon.state(0), health::DomainState::kSuspect);
  EXPECT_TRUE(mon.serving(0));
  EXPECT_EQ(mon.state(1), health::DomainState::kHealthy);

  health::ScrubReport clean;
  clean.clean = true;
  EXPECT_FALSE(mon.on_scrub(0, clean));  // Not a readmission.
  EXPECT_EQ(mon.state(0), health::DomainState::kHealthy);
}

TEST(ServeHealthMonitor, EscalationQuarantinesImmediately) {
  health::HealthConfig cfg;
  cfg.enabled = true;
  health::HealthMonitor mon(3, cfg);
  mon.on_dispatch(2, 0, 1);
  EXPECT_EQ(mon.state(2), health::DomainState::kQuarantined);
  EXPECT_FALSE(mon.serving(2));
  EXPECT_EQ(mon.serving_count(), 2u);
}

TEST(ServeHealthMonitor, DetectionFloodQuarantines) {
  health::HealthConfig cfg;
  cfg.enabled = true;
  cfg.suspect_detections = 2;
  cfg.quarantine_detections = 10;
  health::HealthMonitor mon(1, cfg);
  mon.on_dispatch(0, 6, 0);
  EXPECT_EQ(mon.state(0), health::DomainState::kSuspect);
  mon.on_dispatch(0, 4, 0);  // Accumulates to the quarantine threshold.
  EXPECT_EQ(mon.state(0), health::DomainState::kQuarantined);
}

TEST(ServeHealthMonitor, ReadmissionNeedsCleanStreak) {
  health::HealthConfig cfg;
  cfg.enabled = true;
  cfg.readmit_clean_scrubs = 2;
  cfg.max_repair_attempts = 10;
  health::HealthMonitor mon(1, cfg);
  mon.quarantine(0);

  health::ScrubReport dirty;
  dirty.clean = false;
  health::ScrubReport clean;
  clean.clean = true;

  EXPECT_FALSE(mon.on_scrub(0, clean));  // Streak 1 of 2.
  EXPECT_EQ(mon.state(0), health::DomainState::kQuarantined);
  EXPECT_FALSE(mon.on_scrub(0, dirty));  // Streak resets.
  EXPECT_FALSE(mon.on_scrub(0, clean));
  EXPECT_TRUE(mon.on_scrub(0, clean));  // Streak 2 of 2: readmitted.
  EXPECT_EQ(mon.state(0), health::DomainState::kHealthy);
  EXPECT_EQ(mon.repair_attempts(0), 0u);
}

TEST(ServeHealthMonitor, GivesUpAfterMaxRepairAttempts) {
  health::HealthConfig cfg;
  cfg.enabled = true;
  cfg.max_repair_attempts = 2;
  health::HealthMonitor mon(1, cfg);
  mon.mark_dead(0);
  mon.quarantine(0);
  health::ScrubReport dirty;  // A dead domain never scrubs clean.
  EXPECT_FALSE(mon.gave_up(0));
  EXPECT_FALSE(mon.on_scrub(0, dirty));
  EXPECT_FALSE(mon.gave_up(0));
  EXPECT_FALSE(mon.on_scrub(0, dirty));
  EXPECT_TRUE(mon.gave_up(0));
}

// -- Scrub / repair model ----------------------------------------------------

TEST(ServeScrub, RepairStuckClearsInDeterministicOrder) {
  reliability::LaneFaultTable table(2, 1);
  table.add_mul_stuck(0, 0, 3, true);
  table.add_add_stuck(0, 0, 1, false);
  table.add_mul_stuck(1, 0, 5, true);
  ASSERT_EQ(table.stuck_count(), 3u);
  EXPECT_EQ(table.repair_stuck(2), 2u);  // Lane 0's two bits go first.
  EXPECT_EQ(table.stuck_count(), 1u);
  EXPECT_EQ(table.repair_stuck(10), 1u);
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.repair_stuck(4), 0u);
}

TEST(ServeScrub, ScrubDomainFollowsTheMarchCostLaw) {
  health::HealthConfig cfg;
  cfg.scrub_rows = 8;
  cfg.scrub_cols = 64;
  cfg.spare_bits_per_scrub = 2;
  device::EnergyModel em;
  em.e_write_driver_pj = 0.05;
  em.e_switch_pj = 0.10;
  em.e_read_pj = 0.02;
  reliability::LaneFaultTable table(4, 3);
  table.add_mul_stuck(0, 0, 2, true);
  table.add_mul_stuck(1, 1, 4, true);
  table.add_add_stuck(2, 2, 0, false);

  health::ScrubReport r = health::scrub_domain(table, false, 4, cfg, em);
  EXPECT_EQ(r.stuck_found, 3u);
  EXPECT_EQ(r.repaired, 2u);  // Capped by spare_bits_per_scrub.
  EXPECT_FALSE(r.clean);
  // March cost: 5 cycles per row over scrub_rows rows on each lane.
  EXPECT_EQ(r.cycles, 8u * 4u * 5u);
  EXPECT_GT(r.energy_pj, 0.0);

  health::ScrubReport r2 = health::scrub_domain(table, false, 4, cfg, em);
  EXPECT_EQ(r2.stuck_found, 1u);
  EXPECT_EQ(r2.repaired, 1u);
  EXPECT_TRUE(r2.clean);

  // A dead domain never certifies clean, even with nothing left to fix.
  health::ScrubReport r3 = health::scrub_domain(table, true, 4, cfg, em);
  EXPECT_FALSE(r3.clean);
}

TEST(ServeScrub, WholeDomainFailureDefeatsEveryRedundancyDomain) {
  const reliability::LaneFaultTable table = health::whole_domain_failure(3, 2);
  // One stuck bit per (lane, domain) per unit: 3 lanes x 2 domains x 2.
  EXPECT_EQ(table.stuck_count(), 3u * 2u * 2u);
  // A single stuck-at-1 on bit 1 perturbs values by +-2 when it acts, so
  // the mod-3 residue check always catches an actual corruption.
  for (std::size_t lane = 0; lane < 3; ++lane) {
    for (std::size_t dom = 0; dom < 2; ++dom) {
      EXPECT_EQ(table.apply(lane, dom, true, 0, 16, 0, 0), 2u);
      EXPECT_EQ(table.apply(lane, dom, false, 2, 16, 0, 0), 2u);
    }
  }
}

// -- End-to-end chaos --------------------------------------------------------

/// A serving scenario sized so chaos runs finish fast: four streams,
/// exact-mode tenants on the detect-and-repair reliability tier.
ChaosSpec small_chaos_spec() {
  ChaosSpec spec;
  spec.scenario.seed = 20170604;
  spec.scenario.server.streams = 4;
  spec.scenario.server.lanes_per_stream = 8;
  spec.scenario.server.batch_window = 400;
  spec.scenario.server.dispatch_cycles = 32;
  spec.scenario.server.queue_capacity = 256;
  spec.scenario.server.escalate_on_miss = false;
  spec.scenario.server.health.scrub_interval = 4000;
  spec.scenario.server.health.suspect_detections = 4;
  // Only escalations (unverifiable results) should quarantine here.
  spec.scenario.server.health.quarantine_detections = 1u << 30;
  for (const char* name : {"vision", "sensor"}) {
    TenantSpec t;
    t.name = name;
    t.rate_per_kcycle = 6.0;
    t.requests = 120;
    t.min_ops = 2;
    t.max_ops = 6;
    t.width = 12;
    t.policy = reliability::ReliabilityPolicy::kDetectAndRepair;
    spec.scenario.tenants.push_back(std::move(t));
  }
  spec.stuck_rate = 1e-3;
  spec.cells_per_unit = 256;
  spec.transient_rate = 1e-4;
  spec.kill_at = 8000;  // Mid-serve: arrivals span roughly 20k cycles.
  spec.kill_domain = 1;
  return spec;
}

TEST(ServeChaos, HealthLayerServesExactThroughKillAndDecay) {
  const ChaosSpec spec = small_chaos_spec();
  const Outcome on = run_chaos(spec, true);
  EXPECT_EQ(check_chaos_conservation(on), "");

  const CorruptionReport rep = count_corruption(on);
  EXPECT_GT(rep.ok, 0u);
  // The tentpole property: with the health layer on, no served value is
  // corrupted — unverifiable batches relocated instead of completing.
  EXPECT_EQ(rep.corrupted, 0u);
  EXPECT_EQ(rep.silent, 0u);

  // The kill was noticed: the domain quarantined, its work relocated,
  // and capacity dipped by exactly one stream.
  EXPECT_GE(on.snap.domains[spec.kill_domain].quarantines, 1u);
  EXPECT_TRUE(on.snap.domains[spec.kill_domain].dead);
  EXPECT_GT(on.snap.relocated_requests, 0u);
  EXPECT_EQ(on.snap.min_serving_domains, spec.scenario.server.streams - 1);
  EXPECT_GT(on.snap.scrub_passes, 0u);
}

TEST(ServeChaos, WithoutTheHealthLayerTheSameFaultsCorrupt) {
  const ChaosSpec spec = small_chaos_spec();
  const Outcome off = run_chaos(spec, false);
  EXPECT_EQ(check_chaos_conservation(off), "");
  EXPECT_EQ(off.snap.relocated_requests, 0u);
  EXPECT_EQ(off.snap.scrub_passes, 0u);
  const CorruptionReport rep = count_corruption(off);
  // The dead domain keeps serving garbage: corruption, some silent.
  EXPECT_GT(rep.corrupted, 0u);
}

TEST(ServeChaos, OutcomesAreHostThreadInvariant) {
  ThreadCountGuard guard;
  const ChaosSpec spec = small_chaos_spec();
  util::set_thread_count(1);
  const Outcome base = run_chaos(spec, true);
  for (const std::size_t threads : {2u, 7u}) {
    util::set_thread_count(threads);
    const Outcome other = run_chaos(spec, true);
    EXPECT_EQ(diff_outcomes(base, other), "") << threads << " threads";
  }
}

TEST(ServeChaos, SameSeedSameOutcome) {
  const ChaosSpec spec = small_chaos_spec();
  const Outcome a = run_chaos(spec, true);
  const Outcome b = run_chaos(spec, true);
  EXPECT_EQ(diff_outcomes(a, b), "");
}

TEST(ServeChaos, DegradeModeUpgradesSuspectTraffic) {
  ChaosSpec spec = small_chaos_spec();
  spec.kill_at = 0;  // Ambient decay only.
  spec.stuck_rate = 4e-3;
  spec.transient_rate = 0.0;
  spec.scenario.server.health.mode = health::DegradeMode::kDegrade;
  spec.scenario.server.health.suspect_detections = 2;
  spec.scenario.server.health.scrub_interval = 200000;  // Stay suspect.
  const Outcome out = run_chaos(spec, true);
  EXPECT_EQ(check_chaos_conservation(out), "");
  EXPECT_GT(out.snap.degraded_ops, 0u);
  EXPECT_GT(out.snap.degraded_batches, 0u);
  // No zero-corruption claim here: triple-vote trades the residue check's
  // detection guarantee for masking, and correlated decay (two redundancy
  // domains stuck on the same output bit) can out-vote the clean domain.
  // The shed/relocate path (the tests above) is the airtight one.
}

TEST(ServeChaos, QuarantinedDomainRepairsAndReadmits) {
  ChaosSpec spec = small_chaos_spec();
  spec.stuck_rate = 0.0;  // Only the scheduled event below.
  spec.transient_rate = 0.0;
  spec.kill_at = 0;
  Scenario s = spec.scenario;
  s.server.health.enabled = true;
  s.server.health.repair_interval = 5000;
  // Defeat every redundancy domain WITHOUT marking the fabric dead: the
  // stuck rows are repairable, so off-line scrubs must re-earn admission.
  health::DomainFaultEvent decay;
  decay.at = 8000;
  decay.domain = 2;
  decay.kind = health::DomainFaultEvent::Kind::kSetFaults;
  decay.faults =
      health::whole_domain_failure(s.server.lanes_per_stream, 3);
  s.server.health.fault_schedule = {decay};
  const Outcome out = run_scenario(s);
  EXPECT_EQ(check_chaos_conservation(out), "");
  EXPECT_GE(out.snap.domains[2].quarantines, 1u);
  EXPECT_GE(out.snap.domains[2].readmissions, 1u);
  EXPECT_GT(out.snap.scrub_repaired_bits, 0u);
  // Recovered: by the end every domain serves again.
  EXPECT_EQ(out.snap.serving_domains(), s.server.streams);
  EXPECT_EQ(count_corruption(out).corrupted, 0u);
}

TEST(ServeChaos, AllDomainsKilledShedsInsteadOfHanging) {
  ChaosSpec spec = small_chaos_spec();
  Scenario s = spec.scenario;
  s.server.health.enabled = true;
  s.server.health.repair_interval = 4000;
  for (std::size_t d = 0; d < s.server.streams; ++d) {
    health::DomainFaultEvent kill;
    kill.at = 8000;
    kill.domain = d;
    kill.kind = health::DomainFaultEvent::Kind::kKill;
    s.server.health.fault_schedule.push_back(kill);
  }
  const Outcome out = run_scenario(s);  // Must terminate.
  EXPECT_EQ(check_chaos_conservation(out), "");
  EXPECT_EQ(out.snap.serving_domains(), 0u);
  EXPECT_EQ(out.snap.min_serving_domains, 0u);
  EXPECT_GT(out.snap.rejected, 0u);
  EXPECT_EQ(count_corruption(out).corrupted, 0u);
}

TEST(ServeChaos, HealthOnWithoutFaultsStaysHealthyAndExact) {
  ChaosSpec spec = small_chaos_spec();
  spec.stuck_rate = 0.0;
  spec.transient_rate = 0.0;
  spec.kill_at = 0;
  const Outcome out = run_chaos(spec, true);
  EXPECT_EQ(check_chaos_conservation(out), "");
  EXPECT_EQ(count_corruption(out).corrupted, 0u);
  EXPECT_EQ(out.snap.relocated_requests, 0u);
  for (const auto& d : out.snap.domains) {
    EXPECT_EQ(d.state, health::DomainState::kHealthy);
    EXPECT_EQ(d.quarantines, 0u);
  }
  EXPECT_GT(out.snap.scrub_passes, 0u);  // Preventive scrub still runs.
  EXPECT_EQ(out.snap.scrub_repaired_bits, 0u);
}

}  // namespace
