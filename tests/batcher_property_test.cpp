// Property test for the dynamic batcher: under seeded random
// offer/close_due interleavings, no request is ever lost or duplicated,
// the pending-request count stays conserved, sealed batches respect the
// op budget (oversized requests ship alone), members keep admission
// order, and every batch is shape-homogeneous.
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/batcher.hpp"
#include "util/rng.hpp"

namespace {

using namespace apim;
using serve::BatchKey;
using serve::ClosedBatch;
using serve::DynamicBatcher;
using serve::OpKind;

struct Admitted {
  BatchKey key;
  std::size_t ops = 0;
};

/// Check invariants of one sealed batch against what was admitted.
void check_batch(const ClosedBatch& batch, std::size_t max_ops,
                 util::Cycles now,
                 const std::map<std::uint64_t, Admitted>& admitted,
                 std::set<std::uint64_t>& sealed_ids) {
  ASSERT_FALSE(batch.members.empty());
  EXPECT_LE(batch.closed_at, now);
  std::size_t ops_sum = 0;
  std::uint64_t prev = 0;
  bool first = true;
  for (const std::uint64_t id : batch.members) {
    EXPECT_TRUE(sealed_ids.insert(id).second) << "request " << id
                                              << " sealed twice";
    const auto it = admitted.find(id);
    ASSERT_NE(it, admitted.end()) << "request " << id << " never offered";
    EXPECT_EQ(it->second.key, batch.key) << "request " << id
                                         << " sealed under a foreign shape";
    ops_sum += it->second.ops;
    if (!first) EXPECT_LT(prev, id) << "admission order broken";
    prev = id;
    first = false;
  }
  EXPECT_EQ(batch.ops, ops_sum);
  // The lane budget binds every multi-request batch; a single oversized
  // request is allowed to ship alone.
  if (batch.members.size() > 1) EXPECT_LE(batch.ops, max_ops);
}

TEST(BatcherProperty, RandomInterleavingsConserveRequests) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    util::Xoshiro256 rng(seed);
    const util::Cycles window = 100 + 100 * rng.next_below(8);
    const std::size_t max_ops = 4 + rng.next_below(29);
    DynamicBatcher batcher(window, max_ops);

    // A small shape pool so coalescing actually happens.
    const std::vector<BatchKey> shapes = {
        {OpKind::kMultiply, 8, 0, reliability::ReliabilityPolicy::kOff, "a"},
        {OpKind::kMultiply, 8, 2, reliability::ReliabilityPolicy::kOff, "a"},
        {OpKind::kMultiply, 8, 0, reliability::ReliabilityPolicy::kOff, "b"},
        {OpKind::kVectorAdd, 16, 0, reliability::ReliabilityPolicy::kOff,
         "b"},
    };

    std::map<std::uint64_t, Admitted> admitted;
    std::set<std::uint64_t> sealed_ids;
    std::uint64_t next_id = 0;
    util::Cycles now = 0;

    for (int step = 0; step < 400; ++step) {
      now += rng.next_below(window);
      if (rng.next_below(4) != 0) {
        const BatchKey& key = shapes[rng.next_below(shapes.size())];
        // Up to max_ops + 2 exercises the oversized ship-alone path.
        const std::size_t ops = 1 + rng.next_below(max_ops + 2);
        const std::uint64_t id = next_id++;
        admitted[id] = Admitted{key, ops};
        if (auto closed = batcher.add(id, key, ops, now))
          check_batch(*closed, max_ops, now, admitted, sealed_ids);
      } else {
        for (const ClosedBatch& b : batcher.close_due(now))
          check_batch(b, max_ops, now, admitted, sealed_ids);
      }
      EXPECT_EQ(batcher.pending_requests(),
                admitted.size() - sealed_ids.size())
          << "seed " << seed << " step " << step;
      // Open batches and a pending close time exist together or not at all.
      EXPECT_EQ(batcher.pending_requests() > 0,
                batcher.next_close().has_value())
          << "seed " << seed << " step " << step;
    }

    // Drain: afterwards every offered request was sealed exactly once.
    for (const ClosedBatch& b : batcher.close_all(now))
      check_batch(b, max_ops, now, admitted, sealed_ids);
    EXPECT_EQ(batcher.pending_requests(), 0u) << "seed " << seed;
    EXPECT_FALSE(batcher.next_close().has_value()) << "seed " << seed;
    EXPECT_EQ(sealed_ids.size(), admitted.size()) << "seed " << seed;
  }
}

TEST(BatcherProperty, ZeroWindowSealsEveryRequestAlone) {
  util::Xoshiro256 rng(9);
  DynamicBatcher batcher(0, 16);
  for (std::uint64_t id = 0; id < 50; ++id) {
    const BatchKey key{OpKind::kMultiply, 8, 0,
                       reliability::ReliabilityPolicy::kOff, "a"};
    auto closed = batcher.add(id, key, 1 + rng.next_below(16), id);
    ASSERT_TRUE(closed.has_value());
    EXPECT_EQ(closed->members, std::vector<std::uint64_t>{id});
    EXPECT_EQ(batcher.pending_requests(), 0u);
  }
}

}  // namespace
