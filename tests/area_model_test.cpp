// Tests of the silicon-area model: internal consistency and the paper's
// qualitative area claims made quantitative.
#include <gtest/gtest.h>

#include "baseline/prior_adders.hpp"
#include "core/area_model.hpp"

namespace apim::core {
namespace {

TEST(AreaModel, TileBreakdownIsPositiveAndSums) {
  const ChipGeometry g;
  const AreaReport tile = tile_area(g);
  EXPECT_GT(tile.cell_area_mm2, 0.0);
  EXPECT_GT(tile.decoder_area_mm2, 0.0);
  EXPECT_GT(tile.sense_amp_area_mm2, 0.0);
  EXPECT_GT(tile.interconnect_area_mm2, 0.0);
  EXPECT_NEAR(tile.total_mm2(),
              tile.cell_area_mm2 + tile.decoder_area_mm2 +
                  tile.sense_amp_area_mm2 + tile.interconnect_area_mm2,
              1e-12);
}

TEST(AreaModel, ChipScalesWithTileCount) {
  ChipGeometry g;
  const double one = chip_area(g).total_mm2();
  g.banks *= 2;
  EXPECT_NEAR(chip_area(g).total_mm2(), 2.0 * one, one * 1e-9);
}

TEST(AreaModel, ChipIsPlausiblySized) {
  // A ~1 GiB memristive part with compute blocks: single-die territory
  // (tens to a few hundred mm^2), not wafer-scale.
  const ChipGeometry g;
  const double mm2 = chip_area(g).total_mm2();
  EXPECT_GT(mm2, 10.0);
  EXPECT_LT(mm2, 1000.0);
}

TEST(AreaModel, PimOverheadVsPlainMemory) {
  // The processing blocks + interconnects cost area relative to a plain
  // memory of the same data capacity; with 1 data block out of 3 the
  // overhead is bounded by ~3x cells plus periphery.
  const ChipGeometry g;
  const double pim = chip_area(g).total_mm2();
  const double plain = plain_memory_area(g).total_mm2();
  EXPECT_GT(pim, plain);
  EXPECT_LT(pim / plain, 3.5);
}

TEST(AreaModel, CellsDominatePeriphery) {
  // Crosspoint density: the cell array should be the majority of the die
  // for 512x128 tiles (decoders amortize over many rows/columns).
  const ChipGeometry g;
  EXPECT_LT(chip_area(g).periphery_fraction(), 0.5);
}

TEST(AreaModel, SharedControllersBeatPcAdderPrivateOnes) {
  // The paper's Figure-6 area argument, in mm^2: equipping every block
  // with its own decoders (the PC-Adder organization) costs more than the
  // shared-decoder blocked design.
  const ChipGeometry g;
  const AreaReport shared = tile_area(g);
  // Private controllers: one decoder pair per block instead of per tile.
  const double private_decoder_mm2 =
      shared.decoder_area_mm2 * static_cast<double>(g.blocks_per_tile);
  EXPECT_GT(private_decoder_mm2, shared.decoder_area_mm2 * 2.9);
  // And the transistor-count proxy agrees with the dedicated model.
  EXPECT_GT(baseline::PcAdder::controller_transistors(3, g.rows, g.cols),
            2u * baseline::PcAdder::controller_transistors(1, g.rows, g.cols));
}

TEST(AreaModel, FeatureSizeScalesQuadratically) {
  ChipGeometry g;
  AreaParams p45;
  AreaParams p22;
  p22.feature_nm = 22.5;
  const double a45 = chip_area(g, p45).total_mm2();
  const double a22 = chip_area(g, p22).total_mm2();
  EXPECT_NEAR(a45 / a22, 4.0, 0.01);
}

}  // namespace
}  // namespace apim::core
