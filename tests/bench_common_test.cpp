// Tests of the bench harness plumbing (bench_common): the shape checker,
// the app sampler, and the paper reference data — the code every
// experiment reproduction runs through.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "bench_common.hpp"
#include "core/apim.hpp"

namespace apim::bench {
namespace {

TEST(ShapeChecker, PassAndFailAggregation) {
  ShapeChecker ok;
  ok.check("a", true);
  ok.check_range("b", 5.0, 1.0, 10.0);
  EXPECT_EQ(ok.finish(), 0);

  ShapeChecker bad;
  bad.check("a", true);
  bad.check("b", false);
  EXPECT_EQ(bad.finish(), 1);
}

TEST(ShapeChecker, RangeBoundsInclusive) {
  ShapeChecker checker;
  checker.check_range("low edge", 1.0, 1.0, 2.0);
  checker.check_range("high edge", 2.0, 1.0, 2.0);
  EXPECT_EQ(checker.finish(), 0);
  ShapeChecker outside;
  outside.check_range("below", 0.999, 1.0, 2.0);
  EXPECT_EQ(outside.finish(), 1);
}

TEST(AppSample, MatchesDirectDeviceAccounting) {
  auto app = apps::make_application("QuasiR");
  app->generate(512, kSampleSeed);
  const AppSample sample = sample_app(*app, /*relax=*/0);

  core::ApimDevice device;
  const auto golden = app->run_golden();
  const auto out = app->run_apim(device);
  const double elements = static_cast<double>(app->element_count());
  EXPECT_DOUBLE_EQ(sample.cycles_per_element,
                   static_cast<double>(device.stats().cycles) / elements);
  EXPECT_DOUBLE_EQ(sample.energy_pj_per_element,
                   device.energy_pj() / elements);
  EXPECT_EQ(sample.elements, app->element_count());
  EXPECT_TRUE(sample.acceptable);  // Exact mode always meets QoS.
  EXPECT_EQ(sample.loss, 0.0);
  (void)golden;
  (void)out;
}

TEST(AppSample, TimeAndEdpScaleWithLanes) {
  auto app = apps::make_application("QuasiR");
  app->generate(256, kSampleSeed);
  const AppSample sample = sample_app(*app, 0);
  EXPECT_NEAR(sample.seconds_per_element(1) /
                  sample.seconds_per_element(1000),
              1000.0, 1e-6);
  EXPECT_GT(sample.edp_per_element_js(1000), 0.0);
}

TEST(Table1Reference, MatchesThePaperStructure) {
  // Six apps, EDP improvements strictly increasing in m, QoL
  // non-decreasing, m=0 loss-free — the paper's own table obeys these.
  ASSERT_EQ(std::size(kTable1Paper), 6u);
  for (const auto& row : kTable1Paper) {
    EXPECT_EQ(row.qol_percent[0], 0.0) << row.app;
    for (int i = 1; i < 6; ++i) {
      EXPECT_GT(row.edp_improvement[i], row.edp_improvement[i - 1])
          << row.app;
      EXPECT_GE(row.qol_percent[i], row.qol_percent[i - 1]) << row.app;
    }
  }
  // Cross-app anchor ordering at m=0: FFT > Robert > Sharpen > Sobel >
  // DwtHaar1D > QuasiR (as printed in the paper).
  EXPECT_GT(kTable1Paper[2].edp_improvement[0],
            kTable1Paper[1].edp_improvement[0]);
  EXPECT_GT(kTable1Paper[1].edp_improvement[0],
            kTable1Paper[4].edp_improvement[0]);
  EXPECT_GT(kTable1Paper[4].edp_improvement[0],
            kTable1Paper[0].edp_improvement[0]);
  EXPECT_GT(kTable1Paper[0].edp_improvement[0],
            kTable1Paper[3].edp_improvement[0]);
  EXPECT_GT(kTable1Paper[3].edp_improvement[0],
            kTable1Paper[5].edp_improvement[0]);
}

TEST(Helpers, ElementCounting) {
  EXPECT_DOUBLE_EQ(elements_in(1024.0), 256.0);
  EXPECT_DOUBLE_EQ(elements_in(kTable1DatasetBytes),
                   kTable1DatasetBytes / 4.0);
}

}  // namespace
}  // namespace apim::bench
