// Golden-diagnostic tests for the ISA lint: each rule in the catalog has
// a minimal program that triggers it (with the expected source line) and a
// near-miss that stays clean.
#include <gtest/gtest.h>

#include <string>

#include "analysis/isa_lint.hpp"
#include "isa/assembler.hpp"

namespace apim {
namespace {

using analysis::Diagnostic;
using analysis::LintOptions;
using analysis::Report;
using analysis::Severity;

Report lint(const std::string& source, std::size_t memory_words = 0) {
  return analysis::lint_program(isa::assemble(source),
                                LintOptions{memory_words});
}

/// First diagnostic for `rule`, or nullptr.
const Diagnostic* find(const Report& report, const std::string& rule) {
  for (const Diagnostic& d : report.diagnostics())
    if (d.rule == rule) return &d;
  return nullptr;
}

std::size_t count_rule(const Report& report, const std::string& rule) {
  std::size_t n = 0;
  for (const Diagnostic& d : report.diagnostics())
    if (d.rule == rule) ++n;
  return n;
}

TEST(IsaLint, CleanKernelHasNoDiagnostics) {
  const Report report = lint(
      "        load r1, #3\n"
      "        load r2, #0\n"
      "        load r3, #8\n"
      "loop:   load r4, [r2+0]\n"
      "        mul  r5, r1, r4\n"
      "        store r5, [r2+8]\n"
      "        addi r2, r2, #1\n"
      "        addi r3, r3, #-1\n"
      "        jnz  r3, @loop\n"
      "        halt\n",
      /*memory_words=*/16);
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(IsaLint, EmptyProgramWarns) {
  const Report report = lint("; comments only\n");
  ASSERT_NE(find(report, "empty-program"), nullptr);
  EXPECT_FALSE(report.has_errors());
}

TEST(IsaLint, BranchTargetPastEndIsFlagged) {
  // `tail:` labels the index one past the final instruction.
  const Report report = lint(
      "        load r1, #1\n"
      "        jnz  r1, @tail\n"
      "        halt\n"
      "tail:\n");
  const Diagnostic* d = find(report, "branch-target");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 2u);
}

TEST(IsaLint, FallOffEndIsFlaggedAtLastInstruction) {
  const Report report = lint(
      "        load r1, #1\n"
      "        addi r1, r1, #1\n");
  const Diagnostic* d = find(report, "fall-off-end");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 2u);
}

TEST(IsaLint, NoHaltPathIsFlagged) {
  // The loop never exits: no halt reachable from entry.
  const Report report = lint(
      "loop:   addi r1, r1, #1\n"
      "        jmp  @loop\n");
  EXPECT_NE(find(report, "no-halt-path"), nullptr);
}

TEST(IsaLint, InfiniteLoopOnOnePathWarns) {
  // halt is reachable (fall-through), but the taken branch spins forever:
  // a warning, not an error.
  const Report report = lint(
      "        load r1, #1\n"
      "        jz   r1, @spin\n"
      "        halt\n"
      "spin:   jmp  @spin\n");
  const Diagnostic* d = find(report, "infinite-loop");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(find(report, "no-halt-path"), nullptr);
}

TEST(IsaLint, UnreachableCodeWarns) {
  const Report report = lint(
      "        halt\n"
      "        load r1, #1\n"
      "        halt\n");
  const Diagnostic* d = find(report, "unreachable");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 2u);
}

TEST(IsaLint, UseBeforeDefIsFlaggedWithRegisterName) {
  const Report report = lint(
      "        load r1, #1\n"
      "        add  r2, r3, r1\n"
      "        halt\n");
  const Diagnostic* d = find(report, "use-before-def");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 2u);
  EXPECT_NE(d->message.find("r3"), std::string::npos) << d->message;
}

TEST(IsaLint, UseBeforeDefOnOnePathOnly) {
  // r2 is defined on the fall-through path but not on the taken path:
  // must-defined analysis intersects and flags the read.
  const Report report = lint(
      "        load r1, #1\n"
      "        jz   r1, @use\n"
      "        load r2, #5\n"
      "use:    add  r3, r2, r1\n"
      "        halt\n");
  const Diagnostic* d = find(report, "use-before-def");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 4u);
}

TEST(IsaLint, DefinedOnAllPathsIsClean) {
  const Report report = lint(
      "        load r1, #1\n"
      "        jz   r1, @other\n"
      "        load r2, #5\n"
      "        jmp  @use\n"
      "other:  load r2, #6\n"
      "use:    add  r3, r2, r1\n"
      "        halt\n");
  EXPECT_EQ(find(report, "use-before-def"), nullptr) << report.format();
}

TEST(IsaLint, R0IsAlwaysDefinedAndWritesWarn) {
  const Report report = lint(
      "        add  r1, r0, r0\n"
      "        load r0, #7\n"
      "        halt\n");
  EXPECT_EQ(find(report, "use-before-def"), nullptr) << report.format();
  const Diagnostic* d = find(report, "r0-write");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 2u);
}

TEST(IsaLint, MacReadsItsDestination) {
  const Report report = lint(
      "        load r1, #2\n"
      "        mac  r2, r1, r1\n"
      "        halt\n");
  const Diagnostic* d = find(report, "use-before-def");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 2u);
  EXPECT_NE(d->message.find("r2"), std::string::npos) << d->message;
}

TEST(IsaLint, StoreReadsItsValueRegister) {
  const Report report = lint(
      "        store r5, [r0+0]\n"
      "        halt\n");
  const Diagnostic* d = find(report, "use-before-def");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("r5"), std::string::npos) << d->message;
}

TEST(IsaLint, ConstantOutOfBoundsStoreIsFlagged) {
  const Report report = lint(
      "        load r1, #1\n"
      "        store r1, [r0+99]\n"
      "        halt\n",
      /*memory_words=*/64);
  const Diagnostic* d = find(report, "mem-bounds");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 2u);
}

TEST(IsaLint, NegativeAddressFlaggedEvenWithUnknownMemsize) {
  const Report report = lint(
      "        load r1, [r0-1]\n"
      "        halt\n");
  EXPECT_NE(find(report, "mem-bounds"), nullptr);
}

TEST(IsaLint, UnknownAddressIsNotFlagged) {
  // r2 passes through a data op, so its value is unknown: no bounds claim.
  const Report report = lint(
      "        load r1, #1\n"
      "        add  r2, r1, r1\n"
      "        load r3, [r2+1000]\n"
      "        halt\n",
      /*memory_words=*/16);
  EXPECT_EQ(find(report, "mem-bounds"), nullptr) << report.format();
}

TEST(IsaLint, ConstPropagationFollowsControllerOps) {
  // 4 << 4 = 64: one past the end of a 64-word memory.
  const Report report = lint(
      "        load r1, #4\n"
      "        shl  r2, r1, #4\n"
      "        load r3, [r2+0]\n"
      "        halt\n",
      /*memory_words=*/64);
  const Diagnostic* d = find(report, "mem-bounds");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 3u);
}

TEST(IsaLint, VectorBoundsUseElementCount) {
  // Base 60 + 8 elements spills past 64 words.
  const Report report = lint(
      "        load r1, #60\n"
      "        load r2, #0\n"
      "        vadd [r1], [r2], [r2], #8\n"
      "        halt\n",
      /*memory_words=*/64);
  EXPECT_NE(find(report, "mem-bounds"), nullptr);
}

TEST(IsaLint, PartialVectorOverlapIsFlagged) {
  const Report report = lint(
      "        load r1, #0\n"
      "        load r2, #4\n"
      "        vadd [r2], [r1], [r2], #8\n"
      "        halt\n",
      /*memory_words=*/64);
  const Diagnostic* d = find(report, "vector-overlap");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 3u);
  // Source B is the destination itself (in-place): only source A flags.
  EXPECT_EQ(count_rule(report, "vector-overlap"), 1u);
}

TEST(IsaLint, InPlaceAndDisjointVectorsAreClean) {
  const Report report = lint(
      "        load r1, #0\n"
      "        load r2, #16\n"
      "        vmul [r1], [r1], [r2], #8\n"
      "        vadd [r2], [r1], [r1], #8\n"
      "        halt\n",
      /*memory_words=*/64);
  EXPECT_EQ(find(report, "vector-overlap"), nullptr) << report.format();
}

TEST(IsaLint, SetRelaxSetMaskRangesOnHandBuiltPrograms) {
  // The assembler rejects these immediates, but programs built in code
  // (or futzed by tooling) reach the lint directly.
  isa::Program program;
  isa::Instruction relax;
  relax.op = isa::Opcode::kSetRelax;
  relax.imm = 65;
  program.code.push_back(relax);
  isa::Instruction mask;
  mask.op = isa::Opcode::kSetMask;
  mask.imm = 40;  // setmask caps at 32, not 64.
  program.code.push_back(mask);
  isa::Instruction halt;
  halt.op = isa::Opcode::kHalt;
  program.code.push_back(halt);
  program.source_lines = {1, 2, 3};

  const Report report = analysis::lint_program(program);
  EXPECT_NE(find(report, "setrelax-range"), nullptr);
  EXPECT_NE(find(report, "setmask-range"), nullptr);
}

TEST(IsaLint, HandBuiltBranchTargetOutOfRange) {
  isa::Program program;
  isa::Instruction jmp;
  jmp.op = isa::Opcode::kJmp;
  jmp.imm = 5;  // No instruction 5 exists.
  program.code.push_back(jmp);
  program.source_lines = {1};
  const Report report = analysis::lint_program(program);
  EXPECT_NE(find(report, "branch-target"), nullptr);
}

TEST(IsaLint, AssemblerReportsDuplicateLabelWithFirstDefinition) {
  try {
    (void)isa::assemble("loop: load r1, #1\nloop: halt\n");
    FAIL() << "duplicate label must throw";
  } catch (const isa::AssemblyError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("first defined at line 1"),
              std::string::npos)
        << e.what();
  }
}

TEST(IsaLint, ReportFormatCarriesLineRuleAndSeverity) {
  const Report report = lint(
      "        add  r1, r2, r2\n"
      "        halt\n");
  const std::string text = report.format();
  EXPECT_NE(text.find("line 1"), std::string::npos) << text;
  EXPECT_NE(text.find("error [use-before-def]"), std::string::npos) << text;
}

TEST(IsaLint, JsonReportIsWellFormedEnoughToGrep) {
  const Report report = lint(
      "        add  r1, r2, r2\n"
      "        halt\n");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"rule\":\"use-before-def\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
}

}  // namespace
}  // namespace apim
