// Tests of the MAGIC op tracer and its integration with the engine and
// the arithmetic schedules.
#include <gtest/gtest.h>

#include <vector>

#include "arith/inmemory_fa.hpp"
#include "magic/engine.hpp"
#include "magic/trace.hpp"

namespace apim::magic {
namespace {

using crossbar::BlockedCrossbar;
using crossbar::CellAddr;
using crossbar::CrossbarConfig;

class TraceTest : public ::testing::Test {
 protected:
  TraceTest()
      : xbar_(CrossbarConfig{2, 32, 32}),
        engine_(xbar_, device::EnergyModel::paper_defaults()) {
    engine_.attach_tracer(&tracer_);
  }
  BlockedCrossbar xbar_;
  MagicEngine engine_;
  Tracer tracer_;
};

TEST_F(TraceTest, RecordsEveryBatchWithCycleStamps) {
  std::vector<CellAddr> init{CellAddr{0, 0, 0}, CellAddr{0, 0, 1}};
  engine_.init_cells(init);
  std::vector<NorOp> ops{
      NorOp{CellAddr{0, 0, 0}, {CellAddr{0, 1, 0}}},
      NorOp{CellAddr{0, 0, 1}, {CellAddr{0, 1, 1}}},
  };
  engine_.nor_parallel(ops);
  ASSERT_EQ(tracer_.events().size(), 2u);
  EXPECT_EQ(tracer_.events()[0].kind, OpKind::kInit);
  EXPECT_EQ(tracer_.events()[0].cells, 2u);
  EXPECT_EQ(tracer_.events()[0].cycle, 1u);
  EXPECT_EQ(tracer_.events()[1].kind, OpKind::kNor);
  EXPECT_EQ(tracer_.events()[1].cells, 2u);
  EXPECT_EQ(tracer_.events()[1].cycle, 2u);
}

TEST_F(TraceTest, OverlappedInitIsFlagged) {
  std::vector<CellAddr> init{CellAddr{0, 0, 0}};
  engine_.init_cells(init, /*overlapped=*/true);
  ASSERT_EQ(tracer_.events().size(), 1u);
  EXPECT_TRUE(tracer_.events()[0].overlapped);
  EXPECT_EQ(tracer_.events()[0].cycle, 0u);
}

TEST_F(TraceTest, CountsAndCellsPerKind) {
  engine_.write_word(CellAddr{0, 2, 0}, 8, 0xFF);
  (void)engine_.read_bit(CellAddr{0, 2, 0});
  (void)engine_.sa_majority(CellAddr{0, 2, 0}, CellAddr{0, 3, 0},
                            CellAddr{0, 4, 0});
  EXPECT_EQ(tracer_.count(OpKind::kWrite), 1u);
  EXPECT_EQ(tracer_.cells(OpKind::kWrite), 8u);
  EXPECT_EQ(tracer_.count(OpKind::kRead), 1u);
  EXPECT_EQ(tracer_.count(OpKind::kMajority), 1u);
}

TEST_F(TraceTest, SerialAdderScheduleShape) {
  // A full-adder lane produces exactly 1 init batch + 12 single-cell NORs.
  const CellAddr a{0, 0, 0}, b{0, 1, 0}, c{0, 2, 0};
  const arith::FaLaneMap lane =
      arith::make_fa_lane(a, b, c, 0, /*scratch_row=*/3, 0, 0);
  std::vector<CellAddr> init;
  arith::append_lane_init_cells(lane, init);
  engine_.init_cells(init);
  arith::execute_fa_lane_serial(engine_, lane);
  EXPECT_EQ(tracer_.count(OpKind::kInit), 1u);
  EXPECT_EQ(tracer_.count(OpKind::kNor), 12u);
  EXPECT_EQ(tracer_.cells(OpKind::kInit), 12u);
  EXPECT_EQ(tracer_.cells(OpKind::kNor), 12u);
}

TEST_F(TraceTest, CapacityBoundsMemory) {
  Tracer small(4);
  engine_.attach_tracer(&small);
  for (int i = 0; i < 10; ++i)
    engine_.write_bit(CellAddr{0, 5, static_cast<std::size_t>(i % 8)},
                      i % 2 == 0);
  EXPECT_EQ(small.events().size(), 4u);
  EXPECT_EQ(small.dropped(), 6u);
}

TEST_F(TraceTest, CapacityDropsNewestKeepingThePrefix) {
  Tracer small(4);
  engine_.attach_tracer(&small);
  for (int i = 0; i < 6; ++i)
    engine_.write_bit(CellAddr{0, 5, static_cast<std::size_t>(i)}, true);
  // The retained events are the first four batches, in order: the prefix
  // of the schedule stays intact for inspection.
  ASSERT_EQ(small.events().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(small.events()[i].cycle, i + 1);
  EXPECT_TRUE(small.overflowed());
}

TEST_F(TraceTest, CellEventsAreOffByDefault) {
  engine_.write_bit(CellAddr{0, 0, 0}, true);
  EXPECT_TRUE(tracer_.cell_events().empty());
  EXPECT_FALSE(tracer_.overflowed());
}

TEST_F(TraceTest, CellEventsRecordRowResolvedSchedule) {
  tracer_.enable_cell_events(true);
  std::vector<CellAddr> init{CellAddr{0, 3, 0}};
  engine_.init_cells(init);
  engine_.nor(CellAddr{0, 3, 0}, init);  // Reads and writes the same cell.
  ASSERT_EQ(tracer_.cell_events().size(), 3u);
  EXPECT_EQ(tracer_.cell_events()[0].access, CellAccess::kInit);
  EXPECT_EQ(tracer_.cell_events()[0].cycle, 1u);
  EXPECT_EQ(tracer_.cell_events()[1].access, CellAccess::kWrite);
  EXPECT_EQ(tracer_.cell_events()[1].kind, OpKind::kNor);
  EXPECT_EQ(tracer_.cell_events()[2].access, CellAccess::kRead);
  // All touches of one NOR batch share the batch's completion cycle.
  EXPECT_EQ(tracer_.cell_events()[1].cycle, 2u);
  EXPECT_EQ(tracer_.cell_events()[2].cycle, 2u);
}

TEST_F(TraceTest, CellEventCapacityOverflowIsCountedAndFlagged) {
  Tracer small(2);  // Cell capacity is 16x the batch capacity: 32 events.
  small.enable_cell_events(true);
  engine_.attach_tracer(&small);
  for (int i = 0; i < 40; ++i)
    engine_.write_bit(CellAddr{0, 6, static_cast<std::size_t>(i % 8)},
                      true);
  EXPECT_EQ(small.cell_events().size(), 32u);
  EXPECT_EQ(small.dropped_cells(), 8u);
  EXPECT_TRUE(small.overflowed());
  // clear() resets the cell-side state too.
  small.clear();
  EXPECT_TRUE(small.cell_events().empty());
  EXPECT_EQ(small.dropped_cells(), 0u);
  EXPECT_FALSE(small.overflowed());
}

TEST_F(TraceTest, FormatProducesReadableSchedule) {
  engine_.write_bit(CellAddr{0, 0, 0}, true);
  const std::string text = tracer_.format();
  EXPECT_NE(text.find("cycle 1: write x1"), std::string::npos);
}

TEST_F(TraceTest, FormatSummaryReportsDroppedEvents) {
  Tracer small(4);
  engine_.attach_tracer(&small);
  for (int i = 0; i < 10; ++i)
    engine_.write_bit(CellAddr{0, 5, static_cast<std::size_t>(i % 8)},
                      true);
  const std::string text = small.format();
  // A truncated dump must say so instead of passing as complete.
  EXPECT_NE(text.find("6 dropped"), std::string::npos) << text;
}

TEST_F(TraceTest, FormatSummaryOnCleanTraceReportsNoDrops) {
  engine_.write_bit(CellAddr{0, 0, 0}, true);
  const std::string text = tracer_.format();
  EXPECT_NE(text.find("0 dropped"), std::string::npos) << text;
}

TEST_F(TraceTest, ClearResets) {
  engine_.write_bit(CellAddr{0, 0, 0}, true);
  tracer_.clear();
  EXPECT_TRUE(tracer_.events().empty());
  EXPECT_EQ(tracer_.dropped(), 0u);
}

TEST_F(TraceTest, DetachStopsRecording) {
  engine_.attach_tracer(nullptr);
  engine_.write_bit(CellAddr{0, 0, 0}, true);
  EXPECT_TRUE(tracer_.events().empty());
}

}  // namespace
}  // namespace apim::magic
