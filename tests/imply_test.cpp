// Tests of the IMPLY stateful-logic extension: operation semantics, the
// NAND macro, the 9-NAND full adder, and the latency comparison against
// MAGIC that motivates the paper's choice.
#include <gtest/gtest.h>

#include "arith/latency_model.hpp"
#include "magic/imply.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::magic {
namespace {

using crossbar::BlockedCrossbar;
using crossbar::CellAddr;
using crossbar::CrossbarConfig;

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

class ImplyTest : public ::testing::Test {
 protected:
  ImplyTest() : xbar_(CrossbarConfig{1, 8, 8}), engine_(xbar_, em()) {}
  BlockedCrossbar xbar_;
  ImplyEngine engine_;
};

TEST_F(ImplyTest, ImplyTruthTable) {
  // q := NOT p OR q for all four input combinations.
  for (int pv = 0; pv <= 1; ++pv) {
    for (int qv = 0; qv <= 1; ++qv) {
      xbar_.block(0).set(0, 0, pv != 0);
      xbar_.block(0).set(0, 1, qv != 0);
      engine_.imply(CellAddr{0, 0, 0}, CellAddr{0, 0, 1});
      EXPECT_EQ(xbar_.get(CellAddr{0, 0, 1}), (!pv || qv)) << pv << qv;
      // p is read non-destructively.
      EXPECT_EQ(xbar_.get(CellAddr{0, 0, 0}), pv != 0);
    }
  }
}

TEST_F(ImplyTest, FalseResets) {
  xbar_.block(0).set(1, 0, true);
  engine_.false_op(CellAddr{0, 1, 0});
  EXPECT_FALSE(xbar_.get(CellAddr{0, 1, 0}));
}

TEST_F(ImplyTest, NandTruthTableAndCycleCount) {
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      xbar_.block(0).set(2, 0, av != 0);
      xbar_.block(0).set(2, 1, bv != 0);
      engine_.reset_stats();
      engine_.nand(CellAddr{0, 2, 0}, CellAddr{0, 2, 1}, CellAddr{0, 2, 2});
      EXPECT_EQ(xbar_.get(CellAddr{0, 2, 2}), !(av && bv)) << av << bv;
      EXPECT_EQ(engine_.stats().cycles, 3u);  // FALSE + 2 IMPLY.
    }
  }
}

TEST_F(ImplyTest, StatsTrackOps) {
  engine_.nand(CellAddr{0, 0, 0}, CellAddr{0, 0, 1}, CellAddr{0, 0, 2});
  EXPECT_EQ(engine_.stats().false_ops, 1u);
  EXPECT_EQ(engine_.stats().imply_ops, 2u);
  EXPECT_GT(engine_.energy_pj(), 0.0);
}

TEST(ImplyAdder, ExactOverRandomOperands) {
  util::Xoshiro256 rng(71);
  for (int t = 0; t < 100; ++t) {
    const unsigned n = 1 + static_cast<unsigned>(rng.next_below(32));
    const std::uint64_t a = rng.next() & util::low_mask(n);
    const std::uint64_t b = rng.next() & util::low_mask(n);
    const ImplyAddResult r = imply_serial_add(a, b, n, em());
    ASSERT_EQ(r.value, a + b) << "n=" << n << " a=" << a << " b=" << b;
  }
}

TEST(ImplyAdder, LatencyFormula27N) {
  for (unsigned n : {4u, 8u, 16u, 32u}) {
    const ImplyAddResult r = imply_serial_add(0x5A5A5A5A, 0xA5A5A5A5, n, em());
    EXPECT_EQ(r.cycles, imply_add_cycles(n)) << n;
    EXPECT_EQ(r.cycles, 27ull * n);
  }
}

TEST(ImplyAdder, MagicBeatsImplyAsThePaperArgues) {
  // MAGIC's 12N+1 vs IMPLY's 27N: the 2.2x gap is why the paper builds on
  // MAGIC NOR ("due to its simplicity and independence of execution from
  // data in memory", Section 2).
  for (unsigned n : {8u, 16u, 32u}) {
    const double ratio = static_cast<double>(imply_add_cycles(n)) /
                         static_cast<double>(arith::serial_add_cycles(n));
    EXPECT_GT(ratio, 2.0) << n;
    EXPECT_LT(ratio, 2.5) << n;
  }
}

TEST(ImplyAdder, EdgeOperands) {
  EXPECT_EQ(imply_serial_add(0, 0, 8, em()).value, 0u);
  EXPECT_EQ(imply_serial_add(0xFF, 0x01, 8, em()).value, 0x100u);
  EXPECT_EQ(imply_serial_add(0xFF, 0xFF, 8, em()).value, 0x1FEu);
}

}  // namespace
}  // namespace apim::magic
