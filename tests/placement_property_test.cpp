// Property tests for cluster::Placement's consistent-hash ring:
//  * minimal disruption — growing the chip set N -> N+1 moves roughly
//    shards/(N+1) shards, every moved shard moves TO the new chip, and
//    the count stays under a generous upper bound;
//  * pinned overrides never move, whatever the ring does around them;
//  * seed stability — the mapping is a pure function of
//    (shards, chips, seed, overrides), and different seeds give
//    genuinely different rings.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>

#include "cluster/placement.hpp"

namespace {

using apim::cluster::Placement;

constexpr std::size_t kShards = 256;

TEST(PlacementProperty, GrowthMovesAboutOneOverNPlusOne) {
  for (const std::size_t chips : {3u, 4u, 8u, 12u}) {
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      const Placement before(kShards, chips, seed);
      const Placement after(kShards, chips + 1, seed);
      std::size_t moved = 0;
      for (std::size_t s = 0; s < kShards; ++s) {
        if (before.chip_for(s) == after.chip_for(s)) continue;
        ++moved;
        // Consistent hashing only ever steals shards for the new chip:
        // a shard either stays home or moves to chip id `chips`.
        ASSERT_EQ(after.chip_for(s), chips)
            << "shard " << s << " moved to an old chip (chips=" << chips
            << ", seed=" << seed << ")";
      }
      const double expected =
          static_cast<double>(kShards) / static_cast<double>(chips + 1);
      // 16 virtual nodes per chip leave real variance; 3x the expectation
      // is far outside it while still failing a naive rehash-everything
      // implementation (which moves ~(1 - 1/N) of all shards).
      EXPECT_GE(moved, 1u) << "chips=" << chips << " seed=" << seed;
      EXPECT_LE(static_cast<double>(moved), 3.0 * expected)
          << "chips=" << chips << " seed=" << seed;
    }
  }
}

TEST(PlacementProperty, PinnedOverridesNeverMove) {
  const std::map<std::size_t, std::size_t> pins = {
      {0, 2}, {17, 0}, {100, 1}, {255, 2}};
  for (const std::size_t chips : {3u, 4u, 9u}) {
    for (const std::uint64_t seed : {1u, 7u, 42u}) {
      const Placement before(kShards, chips, seed, pins);
      const Placement after(kShards, chips + 1, seed, pins);
      for (const auto& [shard, chip] : pins) {
        ASSERT_EQ(before.chip_for(shard), chip);
        ASSERT_EQ(after.chip_for(shard), chip)
            << "pinned shard " << shard << " moved on growth (chips="
            << chips << ", seed=" << seed << ")";
      }
    }
  }
}

TEST(PlacementProperty, SeedStableAndSeedSensitive) {
  for (const std::uint64_t seed : {1u, 2u, 99u}) {
    const Placement a(kShards, 6, seed);
    const Placement b(kShards, 6, seed);
    ASSERT_EQ(a.assignment(), b.assignment()) << "seed " << seed;
  }
  // Different seeds permute the ring: identical assignments would mean
  // the seed never reaches the hash.
  const Placement s1(kShards, 6, 1);
  const Placement s2(kShards, 6, 2);
  EXPECT_NE(s1.assignment(), s2.assignment());
}

TEST(PlacementProperty, EveryChipGetsWork) {
  // Sanity on the smoothing claim behind kVirtualNodes: no chip is left
  // entirely empty at tests' scale.
  for (const std::uint64_t seed : {1u, 5u, 9u}) {
    const Placement p(kShards, 8, seed);
    std::map<std::size_t, std::size_t> load;
    for (std::size_t s = 0; s < kShards; ++s) ++load[p.chip_for(s)];
    ASSERT_EQ(load.size(), 8u) << "seed " << seed;
  }
}

}  // namespace
