// Load-generator tests: seeded reproducibility, Poisson arrival
// statistics, and independence of per-tenant RNG streams (via the
// scenario harness in tests/serve_harness.hpp).
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/load_gen.hpp"
#include "serve_harness.hpp"

namespace {

using namespace apim;
using serve::LoadGenConfig;
using serve::Request;
using serve_harness::Scenario;
using serve_harness::TenantSpec;

LoadGenConfig reference_config() {
  LoadGenConfig gen;
  gen.requests = 300;
  gen.rate_per_kcycle = 8.0;
  gen.seed = 4242;
  gen.apps = {"alpha", "beta"};
  gen.min_ops = 2;
  gen.max_ops = 10;
  gen.width = 16;
  gen.add_fraction = 0.25;
  gen.deadline = 5000;
  return gen;
}

void expect_identical(const Request& a, const Request& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.width, b.width);
  EXPECT_EQ(a.operands, b.operands);
  EXPECT_EQ(a.arrival, b.arrival);
  EXPECT_EQ(a.deadline, b.deadline);
}

TEST(LoadGen, SameSeedSameTrace) {
  const auto a = serve::make_open_loop_trace(reference_config());
  const auto b = serve::make_open_loop_trace(reference_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_identical(a[i], b[i]);
}

TEST(LoadGen, DifferentSeedDifferentTrace) {
  const auto a = serve::make_open_loop_trace(reference_config());
  LoadGenConfig other = reference_config();
  other.seed = 4243;
  const auto b = serve::make_open_loop_trace(other);
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size() && !any_difference; ++i)
    any_difference = a[i].arrival != b[i].arrival ||
                     a[i].operands != b[i].operands;
  EXPECT_TRUE(any_difference);
}

TEST(LoadGen, TraceRespectsConfiguredShapes) {
  const LoadGenConfig gen = reference_config();
  for (const Request& r : serve::make_open_loop_trace(gen)) {
    EXPECT_EQ(r.width, gen.width);
    EXPECT_EQ(r.deadline, gen.deadline);
    EXPECT_GE(r.operands.size(), gen.min_ops);
    EXPECT_LE(r.operands.size(), gen.max_ops);
    EXPECT_TRUE(r.app == "alpha" || r.app == "beta");
    for (const auto& [x, y] : r.operands) {
      EXPECT_LT(x, 1ull << gen.width);
      EXPECT_LT(y, 1ull << gen.width);
    }
  }
}

TEST(LoadGen, ArrivalsAreSortedAndPoissonPaced) {
  LoadGenConfig gen = reference_config();
  gen.requests = 4000;
  gen.rate_per_kcycle = 5.0;  // Mean inter-arrival gap: 200 cycles.
  const auto trace = serve::make_open_loop_trace(gen);
  double mean_gap = 0.0;
  double mean_gap_sq = 0.0;
  util::Cycles prev = 0;
  for (const Request& r : trace) {
    ASSERT_GE(r.arrival, prev);
    const double gap = static_cast<double>(r.arrival - prev);
    mean_gap += gap;
    mean_gap_sq += gap * gap;
    prev = r.arrival;
  }
  mean_gap /= static_cast<double>(trace.size());
  mean_gap_sq /= static_cast<double>(trace.size());
  // Sample mean within 10% of 1/rate, and an exponential's signature
  // stddev ~= mean (coefficient of variation near one) — a deterministic
  // check at this seed, a distribution check in spirit.
  EXPECT_NEAR(mean_gap, 200.0, 20.0);
  const double stddev = std::sqrt(mean_gap_sq - mean_gap * mean_gap);
  EXPECT_NEAR(stddev / mean_gap, 1.0, 0.15);
}

TEST(LoadGen, TenantStreamsAreIndependent) {
  // Each tenant's trace in a merged scenario is drawn from its own RNG
  // stream: adding or reordering tenants must not perturb another
  // tenant's arrivals or operands.
  TenantSpec a;
  a.name = "alpha";
  a.requests = 120;
  a.rate_per_kcycle = 6.0;
  TenantSpec b = a;
  b.name = "beta";
  b.rate_per_kcycle = 11.0;

  const std::uint64_t seed = 77;
  EXPECT_NE(serve_harness::tenant_seed(seed, "alpha"),
            serve_harness::tenant_seed(seed, "beta"));

  const auto solo = serve_harness::tenant_trace(a, seed);
  Scenario both;
  both.seed = seed;
  both.tenants = {b, a};  // Reordered on purpose.
  std::vector<Request> alpha_part;
  for (Request& r : serve_harness::merged_trace(both))
    if (r.app == "alpha") alpha_part.push_back(std::move(r));
  ASSERT_EQ(alpha_part.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i)
    expect_identical(solo[i], alpha_part[i]);
}

}  // namespace
