// Cross-backend equivalence gate for the bitsliced (tier-3) batch tier.
//
// The contract under test (arith/bitsliced.hpp): for every lane of a
// homogeneous slice, the bitsliced evaluator produces values, cycle counts
// AND energy doubles that are bit-identical (operator==) to the scalar
// word-level models — which are themselves property-tested against the
// bit-level MAGIC engine (tests/arith_equivalence_test.cpp). The gate
// closes the triangle three ways:
//
//   bit-level engine  ==  word models   (values/cycles exact, energy to
//                                        summation-order tolerance)
//   word models       ==  bitsliced     (everything exact, incl. energy)
//
// plus the carry-out boundary contract at widths 63/64, degenerate batch
// shapes, and thread-count invariance of every batched entry point.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "arith/batch.hpp"
#include "arith/bitsliced.hpp"
#include "arith/fast_units.hpp"
#include "arith/inmemory_units.hpp"
#include "arith/latency_model.hpp"
#include "arith/vector_unit.hpp"
#include "arith/word_models.hpp"
#include "core/apim.hpp"
#include "reliability/fault_state.hpp"
#include "reliability/policy.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace apim::arith {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

/// Engine-vs-word energy comparisons inherit the summation-order tolerance
/// of the existing equivalence suite; word-vs-bitsliced uses operator==.
constexpr double kEnergyTolPj = 1e-9;

struct ThreadCountGuard {
  ~ThreadCountGuard() { util::set_thread_count(0); }
};

/// Operand pairs that exercise carries hard: random, all-ones (guaranteed
/// carry out), complementary, and zero lanes, for `count` lanes.
std::vector<std::pair<std::uint64_t, std::uint64_t>> carry_heavy_pairs(
    std::size_t count, unsigned n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const std::uint64_t mask = util::low_mask(n);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    switch (i % 4) {
      case 0: ops.emplace_back(rng.next() & mask, rng.next() & mask); break;
      case 1: ops.emplace_back(mask, mask); break;  // Overflows for n >= 1.
      case 2: {
        const std::uint64_t a = rng.next() & mask;
        ops.emplace_back(a, mask - a);  // Sum == mask: carry chain primed.
        break;
      }
      default: ops.emplace_back(0, rng.next() & mask); break;
    }
  }
  return ops;
}

// ------------------------------------------------------------ transpose ---

TEST(Transpose64, MatchesBitByBitDefinition) {
  util::Xoshiro256 rng(11);
  std::uint64_t in[64], out[64];
  for (auto& w : in) w = rng.next();
  transpose64(in, out);
  for (unsigned l = 0; l < 64; ++l)
    for (unsigned i = 0; i < 64; ++i)
      ASSERT_EQ(util::bit(out[i], l), util::bit(in[l], i))
          << "lane " << l << " bit " << i;
}

TEST(Transpose64, IsSelfInverse) {
  util::Xoshiro256 rng(12);
  std::uint64_t in[64], once[64], twice[64];
  for (auto& w : in) w = rng.next();
  transpose64(in, once);
  transpose64(once, twice);
  for (unsigned l = 0; l < 64; ++l) ASSERT_EQ(twice[l], in[l]);
}

// ---------------------------------------------- add slices vs word model --

struct AddSliceCase {
  unsigned n;
  unsigned relax_m;  ///< Requested; profitable_add_relax applies inside.
  std::size_t count;
};

class BitslicedAddEquivalence
    : public ::testing::TestWithParam<AddSliceCase> {};

TEST_P(BitslicedAddEquivalence, LanesMatchFastAddExactly) {
  const auto [n, relax_m, count] = GetParam();
  const auto ops =
      carry_heavy_pairs(count, n, 6000 + 131 * n + 17 * relax_m + count);
  std::vector<AddOutcome> sliced(count);
  bitsliced_add_slice(ops, n, relax_m, em(), sliced);
  for (std::size_t l = 0; l < count; ++l) {
    const AddOutcome ref =
        fast_add(ops[l].first, ops[l].second, n, relax_m, em());
    ASSERT_EQ(sliced[l].sum, ref.sum) << "lane " << l;
    ASSERT_EQ(sliced[l].carry_out, ref.carry_out) << "lane " << l;
    ASSERT_EQ(sliced[l].cycles, ref.cycles) << "lane " << l;
    ASSERT_EQ(sliced[l].energy_ops_pj, ref.energy_ops_pj)
        << "lane " << l;  // Bit-exact, not NEAR.
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitslicedAddEquivalence,
    ::testing::Values(AddSliceCase{1, 0, 64}, AddSliceCase{4, 0, 64},
                      AddSliceCase{8, 0, 64}, AddSliceCase{8, 4, 64},
                      AddSliceCase{16, 0, 64}, AddSliceCase{16, 1, 64},
                      AddSliceCase{16, 8, 37}, AddSliceCase{31, 0, 64},
                      AddSliceCase{31, 10, 64}, AddSliceCase{32, 0, 64},
                      AddSliceCase{32, 16, 64}, AddSliceCase{32, 64, 64},
                      AddSliceCase{63, 0, 64}, AddSliceCase{63, 21, 64},
                      AddSliceCase{64, 0, 64}, AddSliceCase{64, 32, 64},
                      AddSliceCase{64, 0, 1}, AddSliceCase{64, 5, 3}),
    [](const ::testing::TestParamInfo<AddSliceCase>& info) {
      return "n" + std::to_string(info.param.n) + "m" +
             std::to_string(info.param.relax_m) + "c" +
             std::to_string(info.param.count);
    });

// ----------------------------------------- multiply slices vs word model --

struct MulSliceCase {
  unsigned n;
  unsigned mask_bits;
  unsigned relax_bits;
  std::size_t count;
};

class BitslicedMultiplyEquivalence
    : public ::testing::TestWithParam<MulSliceCase> {};

TEST_P(BitslicedMultiplyEquivalence, LanesMatchFastMultiplyExactly) {
  const auto [n, mask_bits, relax_bits, count] = GetParam();
  const ApproxConfig cfg{mask_bits, relax_bits};
  // Random pairs plus the degenerate multipliers that take the p = 0/1/2
  // shortcut paths (zero, power of two, two set bits).
  util::Xoshiro256 rng(7000 + 251 * n + 13 * mask_bits + relax_bits);
  const std::uint64_t mask = util::low_mask(n);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t b = rng.next() & mask;
    switch (i % 8) {
      case 1: b = 0; break;
      case 3: b = std::uint64_t{1} << (i % n); break;
      case 5: b = (std::uint64_t{1} << (i % n)) | 1; break;
      case 7: b = mask; break;
      default: break;
    }
    ops.emplace_back(rng.next() & mask, b);
  }
  std::vector<MultiplyOutcome> sliced(count);
  bitsliced_multiply_slice(ops, n, cfg, em(), sliced);
  for (std::size_t l = 0; l < count; ++l) {
    const MultiplyOutcome ref =
        fast_multiply(ops[l].first, ops[l].second, n, cfg, em());
    ASSERT_EQ(sliced[l].product, ref.product)
        << "lane " << l << " a=" << ops[l].first << " b=" << ops[l].second;
    ASSERT_EQ(sliced[l].cycles, ref.cycles) << "lane " << l;
    ASSERT_EQ(sliced[l].partial_count, ref.partial_count) << "lane " << l;
    ASSERT_EQ(sliced[l].tree_stages, ref.tree_stages) << "lane " << l;
    ASSERT_EQ(sliced[l].energy_ops_pj, ref.energy_ops_pj)
        << "lane " << l;  // Bit-exact, not NEAR.
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitslicedMultiplyEquivalence,
    ::testing::Values(MulSliceCase{1, 0, 0, 64}, MulSliceCase{4, 0, 0, 64},
                      MulSliceCase{8, 0, 0, 64}, MulSliceCase{8, 2, 0, 64},
                      MulSliceCase{8, 0, 6, 64}, MulSliceCase{8, 3, 10, 64},
                      MulSliceCase{16, 0, 0, 64},
                      MulSliceCase{16, 4, 16, 64},
                      MulSliceCase{31, 0, 0, 64},
                      MulSliceCase{31, 7, 20, 64},
                      MulSliceCase{32, 0, 0, 64},
                      MulSliceCase{32, 8, 0, 64},
                      MulSliceCase{32, 0, 32, 64},
                      MulSliceCase{32, 16, 48, 64},
                      MulSliceCase{32, 0, 0, 5}),
    [](const ::testing::TestParamInfo<MulSliceCase>& info) {
      return "n" + std::to_string(info.param.n) + "mask" +
             std::to_string(info.param.mask_bits) + "relax" +
             std::to_string(info.param.relax_bits) + "c" +
             std::to_string(info.param.count);
    });

// ------------------------------------------------ three-way gate (adds) ---

struct ThreeWayAddCase {
  unsigned n;
  unsigned relax_m;
};

class ThreeWayAddGate : public ::testing::TestWithParam<ThreeWayAddCase> {};

TEST_P(ThreeWayAddGate, EngineWordAndBitslicedAgree) {
  const auto [n, relax_m] = GetParam();
  const std::size_t count = 16;
  const auto ops = carry_heavy_pairs(count, n, 8000 + 7 * n + relax_m);
  std::vector<AddOutcome> sliced(count);
  bitsliced_add_slice(ops, n, relax_m, em(), sliced);
  const unsigned m = profitable_add_relax(n, relax_m);
  for (std::size_t l = 0; l < count; ++l) {
    const auto [a, b] = ops[l];
    const InMemoryResult engine =
        m > 0 ? inmemory_relaxed_add(a, b, n, m, em())
              : inmemory_serial_add(a, b, n, em());
    const AddOutcome word = fast_add(a, b, n, relax_m, em());
    // Engine vs word: values/cycles exact, energy to summation tolerance.
    ASSERT_EQ(word.sum, engine.value) << "n=" << n << " lane " << l;
    ASSERT_EQ(word.carry_out, engine.carry_out) << "n=" << n << " lane " << l;
    ASSERT_EQ(word.cycles, engine.cycles);
    ASSERT_NEAR(word.energy_ops_pj, engine.energy_ops_pj, kEnergyTolPj);
    // Word vs bitsliced: everything exact.
    ASSERT_EQ(sliced[l].sum, word.sum);
    ASSERT_EQ(sliced[l].carry_out, word.carry_out);
    ASSERT_EQ(sliced[l].cycles, word.cycles);
    ASSERT_EQ(sliced[l].energy_ops_pj, word.energy_ops_pj);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ThreeWayAddGate,
    ::testing::Values(ThreeWayAddCase{1, 0}, ThreeWayAddCase{4, 0},
                      ThreeWayAddCase{8, 0}, ThreeWayAddCase{8, 4},
                      ThreeWayAddCase{16, 0}, ThreeWayAddCase{16, 8},
                      ThreeWayAddCase{31, 0}, ThreeWayAddCase{32, 0},
                      ThreeWayAddCase{32, 12}, ThreeWayAddCase{63, 0},
                      ThreeWayAddCase{63, 15}, ThreeWayAddCase{64, 0},
                      ThreeWayAddCase{64, 20}),
    [](const ::testing::TestParamInfo<ThreeWayAddCase>& info) {
      return "n" + std::to_string(info.param.n) + "m" +
             std::to_string(info.param.relax_m);
    });

// ------------------------------------------- three-way gate (multiplies) --

TEST(ThreeWayMultiplyGate, EngineWordAndBitslicedAgree) {
  const struct {
    unsigned n, mask_bits, relax_bits;
  } cases[] = {{4, 0, 0}, {8, 0, 0}, {8, 2, 6}, {16, 0, 0}, {16, 4, 12}};
  for (const auto& c : cases) {
    const ApproxConfig cfg{c.mask_bits, c.relax_bits};
    const std::size_t count = 8;
    util::Xoshiro256 rng(9000 + 31 * c.n + c.relax_bits);
    const std::uint64_t mask = util::low_mask(c.n);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
    for (std::size_t i = 0; i < count; ++i)
      ops.emplace_back(rng.next() & mask, rng.next() & mask);
    std::vector<MultiplyOutcome> sliced(count);
    bitsliced_multiply_slice(ops, c.n, cfg, em(), sliced);
    for (std::size_t l = 0; l < count; ++l) {
      const auto [a, b] = ops[l];
      const InMemoryResult engine = inmemory_multiply(a, b, c.n, cfg, em());
      const MultiplyOutcome word = fast_multiply(a, b, c.n, cfg, em());
      ASSERT_EQ(word.product, engine.value) << "n=" << c.n << " lane " << l;
      ASSERT_EQ(word.cycles, engine.cycles);
      ASSERT_NEAR(word.energy_ops_pj, engine.energy_ops_pj, kEnergyTolPj);
      ASSERT_EQ(sliced[l].product, word.product);
      ASSERT_EQ(sliced[l].cycles, word.cycles);
      ASSERT_EQ(sliced[l].energy_ops_pj, word.energy_ops_pj);
    }
  }
}

// ------------------------------------------- carry-out boundary contract --

TEST(CarryOutBoundary, Width63KeepsCarryInBandAndOutOfBand) {
  // 63-bit all-ones + all-ones: sum overflows into bit 63.
  const std::uint64_t a = util::low_mask(63), b = util::low_mask(63);
  const WordUnitResult word = word_serial_add(a, b, 63, em());
  const InMemoryResult engine = inmemory_serial_add(a, b, 63, em());
  const AddOutcome fast = fast_add(a, b, 63, 0, em());
  const std::uint64_t expect = (a + b) & ~(std::uint64_t{1} << 63);
  // (n+1)-bit in-band result: bit 63 IS the carry...
  EXPECT_EQ(word.value, (a + b));
  EXPECT_EQ(engine.value, word.value);
  EXPECT_EQ(fast.sum, word.value);
  // ...and the out-of-band copy agrees at every level.
  EXPECT_TRUE(word.carry_out);
  EXPECT_TRUE(engine.carry_out);
  EXPECT_TRUE(fast.carry_out);
  EXPECT_EQ(word.value & util::low_mask(63), expect & util::low_mask(63));
}

TEST(CarryOutBoundary, Width64ReportsCarryOutOfBandOnly) {
  const std::uint64_t a = ~std::uint64_t{0};
  const std::uint64_t cases_b[] = {1, ~std::uint64_t{0}, 0x8000000000000000u};
  for (const std::uint64_t b : cases_b) {
    const WordUnitResult word = word_serial_add(a, b, 64, em());
    const InMemoryResult engine = inmemory_serial_add(a, b, 64, em());
    const AddOutcome fast = fast_add(a, b, 64, 0, em());
    const std::uint64_t truncated = a + b;  // Wraps mod 2^64.
    EXPECT_EQ(word.value, truncated) << "b=" << b;
    EXPECT_EQ(engine.value, truncated) << "b=" << b;
    EXPECT_EQ(fast.sum, truncated) << "b=" << b;
    EXPECT_TRUE(word.carry_out) << "b=" << b;
    EXPECT_TRUE(engine.carry_out) << "b=" << b;
    EXPECT_TRUE(fast.carry_out) << "b=" << b;
  }
  // No carry: out-of-band flag stays clear.
  const WordUnitResult quiet = word_serial_add(5, 7, 64, em());
  EXPECT_EQ(quiet.value, 12u);
  EXPECT_FALSE(quiet.carry_out);
}

TEST(CarryOutBoundary, Width64RelaxedAdderCarryIsExact) {
  // Relaxation perturbs low sum bits only; the carry chain is exact, so
  // carry_out must be exact even with m > 0 (word_models.hpp contract).
  const std::uint64_t a = ~std::uint64_t{0}, b = ~std::uint64_t{0};
  for (const unsigned m : {1u, 8u, 32u}) {
    const WordUnitResult word = word_final_add(a, b, 64, m, em());
    const InMemoryResult engine = inmemory_relaxed_add(a, b, 64, m, em());
    EXPECT_TRUE(word.carry_out) << "m=" << m;
    EXPECT_TRUE(engine.carry_out) << "m=" << m;
    EXPECT_EQ(word.value, engine.value) << "m=" << m;
    EXPECT_EQ(word.cycles, engine.cycles) << "m=" << m;
    EXPECT_NEAR(word.energy_ops_pj, engine.energy_ops_pj, kEnergyTolPj);
  }
}

// --------------------------------------------- batched entry points -------

TEST(BatchBackends, MultiplyBatchMatchesAcrossBackendsAndThreads) {
  ThreadCountGuard guard;
  const unsigned n = 16;
  const ApproxConfig cfg{2, 6};
  util::Xoshiro256 rng(321);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  for (int i = 0; i < 300; ++i)  // Deliberately not a multiple of 64.
    ops.emplace_back(rng.next() & util::low_mask(n),
                     rng.next() & util::low_mask(n));

  util::set_thread_count(1);
  const BatchOutcome ref = fast_multiply_batch(ops, n, cfg, em(), 8);
  for (const std::size_t threads : {1u, 2u, 7u}) {
    util::set_thread_count(threads);
    const BatchOutcome sliced =
        fast_multiply_batch(ops, n, cfg, em(), 8, BatchBackend::kBitsliced);
    ASSERT_EQ(sliced.products, ref.products) << threads << " threads";
    ASSERT_EQ(sliced.makespan, ref.makespan);
    ASSERT_EQ(sliced.total_lane_cycles, ref.total_lane_cycles);
    ASSERT_EQ(sliced.lanes_used, ref.lanes_used);
    ASSERT_EQ(sliced.energy_ops_pj, ref.energy_ops_pj);  // Bit-exact.
  }
}

TEST(BatchBackends, VectorAddMatchesAcrossBackendsAndThreads) {
  ThreadCountGuard guard;
  const unsigned n = 32;
  util::Xoshiro256 rng(654);
  std::vector<std::uint64_t> a, b;
  for (int i = 0; i < 517; ++i) {  // Crosses several grain boundaries.
    a.push_back(rng.next() & util::low_mask(n));
    b.push_back(rng.next() & util::low_mask(n));
  }
  util::set_thread_count(1);
  const VectorAddOutcome ref = fast_vector_add(a, b, n, em());
  for (const std::size_t threads : {1u, 2u, 7u}) {
    util::set_thread_count(threads);
    const VectorAddOutcome sliced =
        fast_vector_add(a, b, n, em(), BatchBackend::kBitsliced);
    ASSERT_EQ(sliced.sums, ref.sums) << threads << " threads";
    ASSERT_EQ(sliced.cycles, ref.cycles);
    ASSERT_EQ(sliced.energy_ops_pj, ref.energy_ops_pj);  // Bit-exact.
  }
}

TEST(BatchBackends, TreeAddBatchMatchesPerOpFastTreeAdd) {
  ThreadCountGuard guard;
  const unsigned n = 12;
  const std::size_t stride = 5, count = 150;
  const unsigned cap = n + 3;
  util::Xoshiro256 rng(987);
  std::vector<std::uint64_t> flat;
  std::vector<unsigned> widths(stride, n);
  for (std::size_t i = 0; i < count * stride; ++i)
    flat.push_back(rng.next() & util::low_mask(n));

  util::set_thread_count(1);
  const BatchOutcome word =
      fast_tree_add_batch(flat, widths, cap, em(), 4);
  for (const std::size_t threads : {1u, 2u, 7u}) {
    util::set_thread_count(threads);
    const BatchOutcome sliced = fast_tree_add_batch(
        flat, widths, cap, em(), 4, BatchBackend::kBitsliced);
    ASSERT_EQ(sliced.products, word.products) << threads << " threads";
    ASSERT_EQ(sliced.makespan, word.makespan);
    ASSERT_EQ(sliced.energy_ops_pj, word.energy_ops_pj);  // Bit-exact.
  }
  // And the batch (either backend) must equal the scalar unit per op.
  for (std::size_t i = 0; i < count; ++i) {
    const AddOutcome ref = fast_tree_add(
        std::span(flat).subspan(i * stride, stride), widths, cap, em());
    ASSERT_EQ(word.products[i], ref.sum) << "op " << i;
  }
}

TEST(BatchBackends, TwoOperandTreeAddBatchSkipsTheTree) {
  // stride == 2 has no 3:2 stage: the pair goes straight to the final
  // serial add; bitsliced must agree with the word path bit for bit.
  const unsigned n = 16, cap = 17;
  util::Xoshiro256 rng(555);
  std::vector<std::uint64_t> flat;
  std::vector<unsigned> widths(2, n);
  for (int i = 0; i < 140; ++i) flat.push_back(rng.next() & util::low_mask(n));
  const BatchOutcome word = fast_tree_add_batch(flat, widths, cap, em(), 4);
  const BatchOutcome sliced = fast_tree_add_batch(
      flat, widths, cap, em(), 4, BatchBackend::kBitsliced);
  ASSERT_EQ(sliced.products, word.products);
  ASSERT_EQ(sliced.energy_ops_pj, word.energy_ops_pj);
}

// ----------------------------------------------------- degenerate shapes --

TEST(BitslicedDegenerate, EmptyBatchReturnsZeroedOutcome) {
  const BatchOutcome mul = fast_multiply_batch(
      {}, 16, ApproxConfig::exact(), em(), 8, BatchBackend::kBitsliced);
  EXPECT_TRUE(mul.products.empty());
  EXPECT_EQ(mul.makespan, 0u);
  EXPECT_EQ(mul.total_lane_cycles, 0u);
  EXPECT_EQ(mul.energy_ops_pj, 0.0);
  EXPECT_EQ(mul.lanes_used, 0u);
  EXPECT_EQ(mul.ideal_makespan(), 0.0);
  EXPECT_EQ(mul.imbalance(), 1.0);

  const VectorAddOutcome add =
      fast_vector_add({}, {}, 16, em(), BatchBackend::kBitsliced);
  EXPECT_TRUE(add.sums.empty());
  EXPECT_EQ(add.cycles, 0u);
  EXPECT_EQ(add.energy_ops_pj, 0.0);

  const BatchOutcome tree = fast_tree_add_batch(
      {}, std::vector<unsigned>(3, 8), 10, em(), 4, BatchBackend::kBitsliced);
  EXPECT_TRUE(tree.products.empty());
  EXPECT_EQ(tree.energy_ops_pj, 0.0);
}

TEST(BitslicedDegenerate, SingleOpAndRaggedTailMatchWordBackend) {
  const unsigned n = 16;
  const ApproxConfig cfg{0, 4};
  util::Xoshiro256 rng(777);
  // 1 op, then 64 + 1, then a 64*2 + 63 tail: every slice-fill shape.
  for (const std::size_t count : {1u, 65u, 191u}) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
    for (std::size_t i = 0; i < count; ++i)
      ops.emplace_back(rng.next() & util::low_mask(n),
                       rng.next() & util::low_mask(n));
    const BatchOutcome word = fast_multiply_batch(ops, n, cfg, em(), 8);
    const BatchOutcome sliced =
        fast_multiply_batch(ops, n, cfg, em(), 8, BatchBackend::kBitsliced);
    ASSERT_EQ(sliced.products, word.products) << count << " ops";
    ASSERT_EQ(sliced.makespan, word.makespan) << count << " ops";
    ASSERT_EQ(sliced.energy_ops_pj, word.energy_ops_pj) << count << " ops";
  }
}

// ------------------------------------------------- device batch entries ---

core::ApimConfig device_config(core::Backend backend) {
  core::ApimConfig cfg;
  cfg.word_bits = 16;
  cfg.approx = ApproxConfig{1, 6};
  cfg.backend = backend;
  return cfg;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> device_ops(
    std::size_t count, unsigned n) {
  util::Xoshiro256 rng(4242);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  for (std::size_t i = 0; i < count; ++i)
    ops.emplace_back(rng.next() & util::low_mask(n),
                     rng.next() & util::low_mask(n));
  return ops;
}

void expect_same_stats(const core::ExecStats& a, const core::ExecStats& b) {
  EXPECT_EQ(a.multiplies, b.multiplies);
  EXPECT_EQ(a.additions, b.additions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.energy_ops_pj, b.energy_ops_pj);  // Bit-exact.
  EXPECT_EQ(a.partial_products, b.partial_products);
  EXPECT_EQ(a.residue_checks, b.residue_checks);
  EXPECT_EQ(a.faults_detected, b.faults_detected);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.votes, b.votes);
  EXPECT_EQ(a.escalations, b.escalations);
}

TEST(DeviceBatch, BitslicedBatchEqualsScalarLoopOnFastDevice) {
  const auto ops = device_ops(130, 16);
  std::vector<std::uint64_t> ref_vals(ops.size());
  std::vector<util::Cycles> ref_cycles(ops.size());
  core::ApimDevice scalar{device_config(core::Backend::kFast)};
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const util::Cycles before = scalar.stats().cycles;
    ref_vals[i] = scalar.mul_magnitude(ops[i].first, ops[i].second);
    ref_cycles[i] = scalar.stats().cycles - before;
  }

  core::ApimDevice sliced{device_config(core::Backend::kBitsliced)};
  std::vector<std::uint64_t> vals(ops.size());
  std::vector<util::Cycles> cycles(ops.size());
  sliced.mul_magnitude_batch(ops, vals, cycles);
  EXPECT_EQ(vals, ref_vals);
  EXPECT_EQ(cycles, ref_cycles);
  expect_same_stats(sliced.stats(), scalar.stats());
}

TEST(DeviceBatch, AddBatchEqualsScalarLoopOnFastDevice) {
  const auto ops = device_ops(100, 16);
  std::vector<std::uint64_t> ref_vals(ops.size());
  core::ApimDevice scalar{device_config(core::Backend::kFast)};
  for (std::size_t i = 0; i < ops.size(); ++i)
    ref_vals[i] = scalar.add_magnitude(ops[i].first, ops[i].second);

  core::ApimDevice sliced{device_config(core::Backend::kBitsliced)};
  std::vector<std::uint64_t> vals(ops.size());
  std::vector<util::Cycles> cycles(ops.size());
  sliced.add_magnitude_batch(ops, vals, cycles);
  EXPECT_EQ(vals, ref_vals);
  expect_same_stats(sliced.stats(), scalar.stats());
}

TEST(DeviceBatch, ReliabilityMachineryReplaysIdenticallyUnderBitsliced) {
  // Faulty lane 0 + detect-and-repair: op indices, residue checks and the
  // retry ladder must replay exactly as in scalar execution, because the
  // batch path recomputes op_index per op in order.
  core::ApimConfig base = device_config(core::Backend::kFast);
  base.reliability.policy = reliability::ReliabilityPolicy::kDetectAndRepair;
  base.reliability.faults = reliability::LaneFaultTable(4, 3);
  base.reliability.faults.add_mul_stuck(0, 0, 7, true);
  base.reliability.faults.add_add_stuck(2, 0, 3, true);
  base.approx = ApproxConfig::exact();  // Residue checks need exact ops.

  const auto ops = device_ops(96, 16);
  core::ApimDevice scalar{base};
  std::vector<std::uint64_t> ref_mul(ops.size()), ref_add(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i)
    ref_mul[i] = scalar.mul_magnitude(ops[i].first, ops[i].second);
  for (std::size_t i = 0; i < ops.size(); ++i)
    ref_add[i] = scalar.add_magnitude(ops[i].first, ops[i].second);
  ASSERT_GT(scalar.stats().faults_detected, 0u);  // The table bites.

  base.backend = core::Backend::kBitsliced;
  core::ApimDevice sliced{base};
  std::vector<std::uint64_t> mul_vals(ops.size()), add_vals(ops.size());
  std::vector<util::Cycles> cycles(ops.size());
  sliced.mul_magnitude_batch(ops, mul_vals, cycles);
  sliced.add_magnitude_batch(ops, add_vals, cycles);
  EXPECT_EQ(mul_vals, ref_mul);
  EXPECT_EQ(add_vals, ref_add);
  expect_same_stats(sliced.stats(), scalar.stats());
}

TEST(DeviceBatch, EmptyBatchIsANoOp) {
  core::ApimDevice device{device_config(core::Backend::kBitsliced)};
  device.mul_magnitude_batch({}, {}, {});
  device.add_magnitude_batch({}, {}, {});
  EXPECT_EQ(device.stats().multiplies, 0u);
  EXPECT_EQ(device.stats().additions, 0u);
  EXPECT_EQ(device.stats().cycles, 0u);
  EXPECT_EQ(device.stats().energy_ops_pj, 0.0);
}

}  // namespace
}  // namespace apim::arith
