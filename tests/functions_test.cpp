// Tests of the derived math functions (Newton iterations over APIM
// multiplies/adds) and the tree-reduction dot product.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/apim.hpp"
#include "core/functions.hpp"
#include "util/rng.hpp"

namespace apim::core {
namespace {

TEST(Functions, Q16RoundTrip) {
  EXPECT_NEAR(from_q16(to_q16(3.14159)), 3.14159, 1e-4);
  EXPECT_NEAR(from_q16(to_q16(-0.5)), -0.5, 1e-4);
  EXPECT_EQ(to_q16(0.0), 0);
}

TEST(Functions, SqrtAccurateOverWideRange) {
  ApimDevice device;
  for (double x : {0.02, 0.1, 0.5, 1.0, 2.0, 10.0, 100.0, 1000.0}) {
    const double got = from_q16(apim_sqrt_q16(device, to_q16(x)));
    EXPECT_NEAR(got, std::sqrt(x), std::sqrt(x) * 0.01 + 0.01) << "x=" << x;
  }
}

TEST(Functions, SqrtOfZeroAndCost) {
  ApimDevice device;
  EXPECT_EQ(apim_sqrt_q16(device, 0), 0);
  EXPECT_EQ(device.stats().multiplies, 0u);  // Zero short-circuits.
  (void)apim_sqrt_q16(device, to_q16(2.0));
  // 6 iterations x 3 multiplies + final: the cost is real and visible.
  EXPECT_GE(device.stats().multiplies, 19u);
}

TEST(Functions, ReciprocalAccurate) {
  ApimDevice device;
  for (double x : {0.05, 0.25, 1.0, 3.0, 42.0, 512.0}) {
    const double got = from_q16(apim_reciprocal_q16(device, to_q16(x)));
    EXPECT_NEAR(got, 1.0 / x, (1.0 / x) * 0.01 + 1e-4) << "x=" << x;
  }
}

TEST(Functions, ReciprocalHandlesSignsAndZero) {
  ApimDevice device;
  EXPECT_NEAR(from_q16(apim_reciprocal_q16(device, to_q16(-4.0))), -0.25,
              1e-3);
  // Zero saturates rather than dividing.
  EXPECT_GT(apim_reciprocal_q16(device, 0), std::int64_t{1} << 30);
}

TEST(Functions, HypotMatchesEuclideanNorm) {
  ApimDevice device;
  struct Case {
    double a, b;
  };
  for (const Case c : {Case{3, 4}, Case{-3, 4}, Case{1, 1}, Case{0, 5},
                       Case{120, 50}}) {
    const double got =
        from_q16(apim_hypot_q16(device, to_q16(c.a), to_q16(c.b)));
    const double expect = std::hypot(c.a, c.b);
    EXPECT_NEAR(got, expect, expect * 0.02 + 0.01) << c.a << "," << c.b;
  }
}

TEST(Functions, RelaxationDegradesGracefully) {
  // The functions run on the device, so the approximation knob reaches
  // them: with m=24 the sqrt is still within a few percent.
  ApimConfig cfg;
  cfg.approx.relax_bits = 24;
  ApimDevice device{cfg};
  const double got = from_q16(apim_sqrt_q16(device, to_q16(9.0)));
  EXPECT_NEAR(got, 3.0, 0.2);
}

// ------------------------------------------------------ tree dot product --

TEST(TreeDot, MatchesSerialDotValue) {
  util::Xoshiro256 rng(151);
  ApimDevice serial_dev, tree_dev;
  std::vector<std::int64_t> a, b;
  // Operands small enough that every product fits the 32-bit datapath
  // (the tree path rescales/saturates; the serial path does not).
  for (int i = 0; i < 24; ++i) {
    a.push_back(rng.next_in(-30000, 30000));
    b.push_back(rng.next_in(-30000, 30000));
  }
  // Integer semantics: use a pure-integer format (no fraction) so both
  // accumulations are exact and comparable.
  const util::FixedPointFormat integer_fmt{32, 0};
  const std::int64_t serial = serial_dev.dot_int(a, b);
  const std::int64_t tree = tree_dev.dot_fixed_tree(a, b, integer_fmt);
  EXPECT_EQ(tree, serial);
}

TEST(TreeDot, FasterThanSerialForLongVectors) {
  util::Xoshiro256 rng(152);
  ApimDevice serial_dev, tree_dev;
  std::vector<std::int64_t> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(rng.next_in(1, 60000));
    b.push_back(rng.next_in(1, 60000));
  }
  const util::FixedPointFormat integer_fmt{32, 0};
  (void)serial_dev.dot_int(a, b);
  (void)tree_dev.dot_fixed_tree(a, b, integer_fmt);
  EXPECT_LT(tree_dev.stats().cycles, serial_dev.stats().cycles);
}

TEST(TreeDot, EmptyAndSingle) {
  ApimDevice device;
  const util::FixedPointFormat integer_fmt{32, 0};
  const std::vector<std::int64_t> none;
  EXPECT_EQ(device.dot_fixed_tree(none, none, integer_fmt), 0);
  const std::vector<std::int64_t> one_a{7}, one_b{6};
  EXPECT_EQ(device.dot_fixed_tree(one_a, one_b, integer_fmt), 42);
}

TEST(TreeDot, MixedSignsExact) {
  ApimDevice device;
  const util::FixedPointFormat integer_fmt{32, 0};
  const std::vector<std::int64_t> a{10, -20, 30, -40, 5};
  const std::vector<std::int64_t> b{1, 2, 3, 4, 5};
  EXPECT_EQ(device.dot_fixed_tree(a, b, integer_fmt),
            10 - 40 + 90 - 160 + 25);
}

}  // namespace
}  // namespace apim::core
