// Cluster-scenario harness shared by tests/cluster_test.cpp and
// bench/ext_cluster.cpp, layered on the serving-scenario machinery in
// tests/serve_harness.hpp (same seeded per-tenant RNG streams, same
// conservation conventions). gtest-free: checks return "" on success or a
// human-readable violation string.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "serve_harness.hpp"
#include "util/stats.hpp"

namespace apim::cluster_harness {

/// A cluster scenario: tenants (trace generation and scheduler weights
/// reuse serve_harness) plus the cluster they share.
struct ClusterScenario {
  std::uint64_t seed = 1;
  std::vector<serve_harness::TenantSpec> tenants;
  cluster::ClusterConfig cluster{};
};

struct ClusterOutcome {
  std::vector<serve::Request> trace;
  std::vector<cluster::ClusterResponse> responses;
  cluster::ClusterSnapshot snap;
};

/// Zipf(s) popularity weights; shared with the other harnesses
/// (tests/workload_harness.hpp). Rank 0 is the hottest.
[[nodiscard]] inline std::vector<double> zipf_weights(std::size_t n,
                                                      double s) {
  return workload_harness::zipf_weights(n, s);
}

/// Tenants "z00".."zNN" whose offered rates follow Zipf(s) popularity,
/// scaled so they sum to `total_rate_per_kcycle`. Request counts scale
/// with rate so every tenant spans a similar virtual-time window.
[[nodiscard]] inline std::vector<serve_harness::TenantSpec> zipf_tenants(
    std::size_t n, double s, double total_rate_per_kcycle,
    std::size_t total_requests) {
  const std::vector<double> w = zipf_weights(n, s);
  std::vector<serve_harness::TenantSpec> tenants;
  tenants.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    serve_harness::TenantSpec t;
    t.name = "z" + std::string(k < 10 ? "0" : "") + std::to_string(k);
    t.rate_per_kcycle = total_rate_per_kcycle * w[k];
    t.requests = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(total_requests) * w[k] + 0.5));
    tenants.push_back(std::move(t));
  }
  return tenants;
}

/// Run the scenario's merged trace through a fresh cluster. Tenant relax
/// levels fill the QoS table and weights flow into every chip's
/// scheduler, exactly as serve_harness::run_scenario does for one server.
[[nodiscard]] inline ClusterOutcome run_cluster_scenario(
    const ClusterScenario& s) {
  serve::QosTable table;
  cluster::ClusterConfig cfg = s.cluster;
  cfg.server.tenant_weights.clear();
  for (const serve_harness::TenantSpec& t : s.tenants) {
    table.set(t.name, serve::QosTableEntry{t.relax_bits, 0.0, true, false});
    cfg.server.tenant_weights[t.name] = t.weight;
  }
  cluster::Cluster cl(std::move(cfg), std::move(table));
  serve_harness::Scenario trace_src;
  trace_src.seed = s.seed;
  trace_src.tenants = s.tenants;
  ClusterOutcome out;
  out.trace = serve_harness::merged_trace(trace_src);
  out.responses = cl.run_trace(out.trace);
  out.snap = cl.snapshot();
  return out;
}

/// Conservation across the cluster: every request reaches exactly one
/// terminal status, chip snapshots sum to the routed totals, and edge
/// timestamps never run backwards. "" on success.
[[nodiscard]] inline std::string check_cluster_conservation(
    const ClusterOutcome& out) {
  std::ostringstream oss;
  std::uint64_t ok = 0, rejected = 0, expired = 0, invalid = 0;
  for (std::size_t i = 0; i < out.responses.size(); ++i) {
    const cluster::ClusterResponse& r = out.responses[i];
    switch (r.resp.status) {
      case serve::RequestStatus::kOk: ++ok; break;
      case serve::RequestStatus::kRejected: ++rejected; break;
      case serve::RequestStatus::kExpired: ++expired; break;
      case serve::RequestStatus::kInvalid: ++invalid; break;
      case serve::RequestStatus::kPending:
        oss << "response " << i << " left pending";
        return oss.str();
    }
    if (r.edge_completion < r.edge_arrival) {
      oss << "response " << i << " completes before it arrives";
      return oss.str();
    }
    if (r.exec_chip >= out.snap.chips.size() ||
        r.addressed_chip >= out.snap.chips.size()) {
      oss << "response " << i << " routed to a nonexistent chip";
      return oss.str();
    }
  }
  const std::uint64_t total = out.responses.size();
  if (ok + rejected + expired + invalid != total) {
    oss << "terminal statuses " << (ok + rejected + expired + invalid)
        << " != responses " << total;
    return oss.str();
  }
  if (out.snap.requests != total) {
    oss << "snapshot.requests " << out.snap.requests << " != responses "
        << total;
    return oss.str();
  }
  std::uint64_t chip_submitted = 0, chip_ok = 0;
  for (const serve::MetricsSnapshot& chip : out.snap.chips) {
    chip_submitted += chip.submitted;
    chip_ok += chip.completed;
  }
  if (chip_submitted != total) {
    oss << "chip snapshots saw " << chip_submitted << " requests, edge saw "
        << total;
    return oss.str();
  }
  if (chip_ok != ok) {
    oss << "chip snapshots completed " << chip_ok << ", responses say "
        << ok;
    return oss.str();
  }
  return {};
}

/// First difference between two cluster outcomes, or "" when
/// bit-identical (routing, responses, energy — everything the
/// determinism contract covers).
[[nodiscard]] inline std::string diff_cluster_outcomes(
    const ClusterOutcome& a, const ClusterOutcome& b) {
  std::ostringstream oss;
  if (a.responses.size() != b.responses.size()) {
    oss << "response counts " << a.responses.size() << " vs "
        << b.responses.size();
    return oss.str();
  }
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    const cluster::ClusterResponse& x = a.responses[i];
    const cluster::ClusterResponse& y = b.responses[i];
    const serve::Response& xr = x.resp;
    const serve::Response& yr = y.resp;
    const bool same =
        xr.status == yr.status && xr.values == yr.values &&
        xr.arrival == yr.arrival && xr.completion == yr.completion &&
        xr.energy_pj == yr.energy_pj && x.shard == y.shard &&
        x.addressed_chip == y.addressed_chip && x.exec_chip == y.exec_chip &&
        x.cross_chip == y.cross_chip && x.hops == y.hops &&
        x.edge_arrival == y.edge_arrival &&
        x.edge_completion == y.edge_completion &&
        x.interconnect_energy_pj == y.interconnect_energy_pj;  // Bit-exact.
    if (!same) {
      oss << "cluster response " << i << " differs (edge completion "
          << x.edge_completion << " vs " << y.edge_completion << ", chip "
          << x.exec_chip << " vs " << y.exec_chip << ")";
      return oss.str();
    }
  }
  const cluster::ClusterSnapshot& s = a.snap;
  const cluster::ClusterSnapshot& t = b.snap;
  if (s.requests != t.requests || s.cross_chip_ops != t.cross_chip_ops ||
      s.migrations != t.migrations || s.evacuations != t.evacuations ||
      s.interconnect_cycles != t.interconnect_cycles ||
      s.interconnect_energy_pj != t.interconnect_energy_pj ||
      s.chip_jain != t.chip_jain || s.placement != t.placement) {
    oss << "cluster snapshots differ (migrations " << s.migrations << " vs "
        << t.migrations << ", cross-chip ops " << s.cross_chip_ops << " vs "
        << t.cross_chip_ops << ")";
    return oss.str();
  }
  for (std::size_t c = 0; c < s.chips.size(); ++c) {
    if (s.chips[c].batched_ops != t.chips[c].batched_ops ||
        s.chips[c].energy_pj != t.chips[c].energy_pj ||
        s.chips[c].span_cycles != t.chips[c].span_cycles) {
      oss << "chip " << c << " snapshot differs (ops "
          << s.chips[c].batched_ops << " vs " << t.chips[c].batched_ops
          << ")";
      return oss.str();
    }
  }
  return {};
}

/// Saturated cluster throughput: executed ops per 1000 cycles over the
/// cluster-wide busy span.
[[nodiscard]] inline double cluster_ops_per_kcycle(
    const cluster::ClusterSnapshot& snap) {
  std::uint64_t ops = 0;
  util::Cycles span = 0;
  for (const serve::MetricsSnapshot& chip : snap.chips) {
    ops += chip.batched_ops;
    span = std::max(span, chip.span_cycles);
  }
  if (span == 0) return 0.0;
  return 1000.0 * static_cast<double>(ops) / static_cast<double>(span);
}

/// p99 edge latency (cycles) over kOk responses.
[[nodiscard]] inline double cluster_p99_latency(const ClusterOutcome& out) {
  std::vector<double> samples;
  for (const cluster::ClusterResponse& r : out.responses) {
    if (r.resp.status != serve::RequestStatus::kOk) continue;
    samples.push_back(static_cast<double>(r.edge_latency_cycles()));
  }
  return util::percentile(std::move(samples), 0.99);
}

/// Completed-request fraction (goodput) at the edge.
[[nodiscard]] inline double cluster_ok_share(const ClusterOutcome& out) {
  if (out.responses.empty()) return 0.0;
  std::size_t ok = 0;
  for (const cluster::ClusterResponse& r : out.responses)
    if (r.resp.status == serve::RequestStatus::kOk) ++ok;
  return static_cast<double>(ok) / static_cast<double>(out.responses.size());
}

}  // namespace apim::cluster_harness
