// Serving-runtime tests: determinism across host worker counts, deadline
// expiry, admission backpressure, batcher shape rules, QoS escalation,
// metrics-snapshot consistency, and the live async facade.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/apim.hpp"
#include "core/chip.hpp"
#include "core/tuner.hpp"
#include "quality/qos.hpp"
#include "serve/batcher.hpp"
#include "serve/executor.hpp"
#include "serve/load_gen.hpp"
#include "serve/qos_table.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace apim;
using serve::AdmissionPolicy;
using serve::BatchKey;
using serve::DynamicBatcher;
using serve::MetricsSnapshot;
using serve::OpKind;
using serve::QosTable;
using serve::QosTableEntry;
using serve::Request;
using serve::RequestStatus;
using serve::Response;
using serve::Server;
using serve::ServerConfig;

Request make_request(std::string app, OpKind op, unsigned width,
                     std::initializer_list<std::pair<std::uint64_t,
                                                     std::uint64_t>> ops,
                     util::Cycles arrival = 0, util::Cycles deadline = 0) {
  Request r;
  r.app = std::move(app);
  r.op = op;
  r.width = width;
  r.operands.assign(ops.begin(), ops.end());
  r.arrival = arrival;
  r.deadline = deadline;
  return r;
}

/// A mixed, batching-heavy trace driven through a fresh server; used by the
/// determinism and metrics tests. Manual QoS table (no tuner) keeps it fast.
struct TraceRun {
  std::vector<Response> responses;
  MetricsSnapshot snap;
};

TraceRun run_reference_trace(reliability::ReliabilityPolicy policy) {
  serve::LoadGenConfig gen;
  gen.requests = 160;
  gen.rate_per_kcycle = 24.0;  // Hot enough to queue and coalesce.
  gen.seed = 99;
  gen.apps = {"tenant-a", "tenant-b"};
  gen.min_ops = 2;
  gen.max_ops = 10;
  gen.width = 32;
  gen.add_fraction = 0.25;
  gen.policy = policy;

  QosTable table;
  table.set("tenant-a", QosTableEntry{8, 0.0, true, false});
  table.set("tenant-b", QosTableEntry{4, 0.0, true, false});

  ServerConfig cfg;
  cfg.streams = 2;
  cfg.lanes_per_stream = 16;
  cfg.batch_window = 800;
  cfg.dispatch_cycles = 64;

  Server server(cfg, table);
  TraceRun run;
  run.responses = server.run_trace(serve::make_open_loop_trace(gen));
  run.snap = server.snapshot();
  return run;
}

void expect_identical(const Response& a, const Response& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.relax_bits, b.relax_bits);
  EXPECT_EQ(a.escalated, b.escalated);
  EXPECT_EQ(a.arrival, b.arrival);
  EXPECT_EQ(a.dispatch, b.dispatch);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.batch_requests, b.batch_requests);
  EXPECT_EQ(a.energy_pj, b.energy_pj);  // Bit-exact, not approximate.
  EXPECT_EQ(a.qos.loss, b.qos.loss);
  EXPECT_EQ(a.qos.acceptable, b.qos.acceptable);
}

void expect_identical(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.batched_ops, b.batched_ops);
  EXPECT_EQ(a.max_batch_requests, b.max_batch_requests);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
  EXPECT_EQ(a.span_cycles, b.span_cycles);
  EXPECT_EQ(a.p50_latency_cycles, b.p50_latency_cycles);
  EXPECT_EQ(a.p99_latency_cycles, b.p99_latency_cycles);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.lane_occupancy, b.lane_occupancy);
  EXPECT_EQ(a.energy_pj, b.energy_pj);
  EXPECT_EQ(a.device_stats.cycles, b.device_stats.cycles);
}

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { util::set_thread_count(0); }
};

// -- Determinism across host worker counts ----------------------------------

TEST(ServeDeterminism, BitExactAcrossWorkerCounts) {
  ThreadCountGuard guard;
  util::set_thread_count(1);
  const TraceRun reference =
      run_reference_trace(reliability::ReliabilityPolicy::kOff);
  ASSERT_EQ(reference.responses.size(), 160u);

  for (const std::size_t threads : {2u, 7u}) {
    util::set_thread_count(threads);
    const TraceRun run =
        run_reference_trace(reliability::ReliabilityPolicy::kOff);
    ASSERT_EQ(run.responses.size(), reference.responses.size());
    for (std::size_t i = 0; i < run.responses.size(); ++i)
      expect_identical(reference.responses[i], run.responses[i]);
    expect_identical(reference.snap, run.snap);
  }
}

TEST(ServeDeterminism, HoldsUnderReliabilityPolicy) {
  ThreadCountGuard guard;
  util::set_thread_count(1);
  const TraceRun reference =
      run_reference_trace(reliability::ReliabilityPolicy::kDetectAndRepair);
  util::set_thread_count(7);
  const TraceRun run =
      run_reference_trace(reliability::ReliabilityPolicy::kDetectAndRepair);
  ASSERT_EQ(run.responses.size(), reference.responses.size());
  for (std::size_t i = 0; i < run.responses.size(); ++i)
    expect_identical(reference.responses[i], run.responses[i]);
  expect_identical(reference.snap, run.snap);
}

// -- Correctness of served values -------------------------------------------

TEST(ServeExecution, ExactValuesMatchHostArithmetic) {
  ServerConfig cfg;
  cfg.batch_window = 100;
  Server server(cfg, {});
  auto responses = server.run_trace(
      {make_request("", OpKind::kMultiply, 32, {{6, 7}, {1000, 1000}}),
       make_request("", OpKind::kVectorAdd, 32, {{40, 2}, {123, 456}})});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, RequestStatus::kOk);
  EXPECT_EQ(responses[0].values, (std::vector<std::uint64_t>{42, 1000000}));
  EXPECT_EQ(responses[1].status, RequestStatus::kOk);
  EXPECT_EQ(responses[1].values, (std::vector<std::uint64_t>{42, 579}));
  EXPECT_TRUE(responses[0].qos.acceptable);
  EXPECT_EQ(responses[0].relax_bits, 0u);  // Unknown app -> exact fallback.
}

TEST(ServeExecution, InvalidRequestsAreFlagged) {
  Server server(ServerConfig{}, {});
  auto responses = server.run_trace(
      {make_request("", OpKind::kMultiply, 2, {{1, 2}}),   // Bad width.
       make_request("", OpKind::kMultiply, 32, {})});      // No operands.
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, RequestStatus::kInvalid);
  EXPECT_EQ(responses[1].status, RequestStatus::kInvalid);
  const MetricsSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.invalid, 2u);
  EXPECT_EQ(snap.completed, 0u);
}

// -- Batcher shape compatibility --------------------------------------------

TEST(ServeBatching, SameShapeCoalescesIntoOneDispatch) {
  ServerConfig cfg;
  cfg.batch_window = 500;
  Server server(cfg, {});
  auto responses = server.run_trace(
      {make_request("", OpKind::kMultiply, 16, {{3, 4}}, 0),
       make_request("", OpKind::kMultiply, 16, {{5, 6}}, 10)});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].batch_requests, 2u);
  EXPECT_EQ(responses[1].batch_requests, 2u);
  EXPECT_EQ(responses[0].dispatch, responses[1].dispatch);
  const MetricsSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.batches, 1u);
}

TEST(ServeBatching, DifferentShapesStaySeparate) {
  ServerConfig cfg;
  cfg.batch_window = 500;

  // Different widths.
  {
    Server server(cfg, {});
    auto r = server.run_trace(
        {make_request("", OpKind::kMultiply, 16, {{3, 4}}),
         make_request("", OpKind::kMultiply, 24, {{3, 4}})});
    EXPECT_EQ(r[0].batch_requests, 1u);
    EXPECT_EQ(r[1].batch_requests, 1u);
    EXPECT_EQ(server.snapshot().batches, 2u);
  }
  // Different op kinds.
  {
    Server server(cfg, {});
    auto r = server.run_trace(
        {make_request("", OpKind::kMultiply, 16, {{3, 4}}),
         make_request("", OpKind::kVectorAdd, 16, {{3, 4}})});
    EXPECT_EQ(r[0].batch_requests, 1u);
    EXPECT_EQ(r[1].batch_requests, 1u);
  }
  // Different reliability policies.
  {
    Server server(cfg, {});
    Request protected_req = make_request("", OpKind::kMultiply, 16, {{3, 4}});
    protected_req.policy = reliability::ReliabilityPolicy::kTripleVote;
    auto r = server.run_trace(
        {make_request("", OpKind::kMultiply, 16, {{3, 4}}),
         std::move(protected_req)});
    EXPECT_EQ(r[0].batch_requests, 1u);
    EXPECT_EQ(r[1].batch_requests, 1u);
  }
  // Different relax levels (via per-app table entries).
  {
    QosTable table;
    table.set("approx", QosTableEntry{8, 0.0, true, false});
    Server server(cfg, table);
    auto r = server.run_trace(
        {make_request("exactly", OpKind::kMultiply, 16, {{3, 4}}),
         make_request("approx", OpKind::kMultiply, 16, {{3, 4}})});
    EXPECT_EQ(r[0].batch_requests, 1u);
    EXPECT_EQ(r[1].batch_requests, 1u);
  }
}

TEST(ServeBatching, WindowZeroDispatchesSingletons) {
  ServerConfig cfg;
  cfg.batch_window = 0;
  Server server(cfg, {});
  auto responses = server.run_trace(
      {make_request("", OpKind::kMultiply, 16, {{3, 4}}, 0),
       make_request("", OpKind::kMultiply, 16, {{5, 6}}, 0)});
  EXPECT_EQ(responses[0].batch_requests, 1u);
  EXPECT_EQ(responses[1].batch_requests, 1u);
  EXPECT_EQ(server.snapshot().batches, 2u);
}

TEST(DynamicBatcher, SizeTriggerAndOverflow) {
  DynamicBatcher batcher(/*window=*/100, /*max_ops=*/4);
  const BatchKey key{OpKind::kMultiply, 16, 0,
                     reliability::ReliabilityPolicy::kOff};
  EXPECT_FALSE(batcher.add(0, key, 1, 0).has_value());
  EXPECT_FALSE(batcher.add(1, key, 1, 5).has_value());
  EXPECT_EQ(batcher.pending_requests(), 2u);
  // Window anchored at first member.
  ASSERT_TRUE(batcher.next_close().has_value());
  EXPECT_EQ(*batcher.next_close(), 100u);

  // Fourth op reaches the budget: closes with all four members.
  EXPECT_FALSE(batcher.add(2, key, 1, 6).has_value());
  const auto closed = batcher.add(3, key, 1, 7);
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(closed->members,
            (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(batcher.pending_requests(), 0u);

  // Overflow: 3 + 2 > 4 seals the open batch, the newcomer starts fresh.
  EXPECT_FALSE(batcher.add(10, key, 3, 20).has_value());
  const auto sealed = batcher.add(11, key, 2, 21);
  ASSERT_TRUE(sealed.has_value());
  EXPECT_EQ(sealed->members, (std::vector<std::uint64_t>{10}));
  EXPECT_EQ(batcher.pending_requests(), 1u);

  // An oversized request ships alone immediately.
  const auto jumbo = batcher.add(12, key, 9, 22);
  ASSERT_TRUE(jumbo.has_value());
  EXPECT_EQ(jumbo->members, (std::vector<std::uint64_t>{12}));
}

// -- Deadlines ---------------------------------------------------------------

TEST(ServeDeadlines, ExpiresUndispatchedRequests) {
  ServerConfig cfg;
  cfg.batch_window = 500;
  Server server(cfg, {});
  auto responses = server.run_trace(
      {make_request("", OpKind::kMultiply, 16, {{3, 4}}, 0, /*deadline=*/100),
       make_request("", OpKind::kMultiply, 16, {{5, 6}}, 0)});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, RequestStatus::kExpired);
  EXPECT_TRUE(responses[0].values.empty());
  EXPECT_EQ(responses[1].status, RequestStatus::kOk);
  EXPECT_EQ(responses[1].batch_requests, 1u);  // The expired one dropped out.
  const MetricsSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.expired, 1u);
  EXPECT_EQ(snap.completed, 1u);
}

TEST(ServeDeadlines, GenerousDeadlineMakesIt) {
  ServerConfig cfg;
  cfg.batch_window = 500;
  Server server(cfg, {});
  auto responses = server.run_trace(
      {make_request("", OpKind::kMultiply, 16, {{3, 4}}, 0,
                    /*deadline=*/100000)});
  EXPECT_EQ(responses[0].status, RequestStatus::kOk);
}

// -- Admission control --------------------------------------------------------

TEST(ServeAdmission, RejectPolicyShedsLoadAtCapacity) {
  ServerConfig cfg;
  cfg.queue_capacity = 2;
  cfg.admission = AdmissionPolicy::kReject;
  cfg.batch_window = 1000;
  Server server(cfg, {});

  std::vector<Request> burst;
  for (int i = 0; i < 6; ++i)
    burst.push_back(make_request("", OpKind::kMultiply, 16,
                                 {{std::uint64_t(i), 2}}, 0));
  auto responses = server.run_trace(std::move(burst));

  int ok = 0, rejected = 0;
  for (const Response& r : responses) {
    ok += r.status == RequestStatus::kOk;
    rejected += r.status == RequestStatus::kRejected;
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rejected, 4);
  const MetricsSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.rejected, 4u);
  EXPECT_LE(snap.max_queue_depth, 2u);
}

TEST(ServeAdmission, BlockPolicyDelaysInsteadOfShedding) {
  ServerConfig cfg;
  cfg.queue_capacity = 2;
  cfg.admission = AdmissionPolicy::kBlock;
  cfg.batch_window = 1000;
  Server server(cfg, {});

  std::vector<Request> burst;
  for (int i = 0; i < 6; ++i)
    burst.push_back(make_request("", OpKind::kMultiply, 16,
                                 {{std::uint64_t(i), 2}}, 0));
  auto responses = server.run_trace(std::move(burst));

  util::Cycles first_completion = ~0ull, last_completion = 0;
  for (const Response& r : responses) {
    ASSERT_EQ(r.status, RequestStatus::kOk);
    first_completion = std::min(first_completion, r.completion);
    last_completion = std::max(last_completion, r.completion);
  }
  EXPECT_GT(last_completion, first_completion);  // Backpressure delays.
  const MetricsSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.completed, 6u);
  EXPECT_LE(snap.max_queue_depth, 2u);
}

// -- QoS escalation -----------------------------------------------------------

constexpr unsigned kSloppyWidth = 16;
constexpr unsigned kSloppyRelax = 24;

/// Find an operand pair whose approximate product (at the "sloppy" shape)
/// misses the 10% relative-error spec by a wide margin — searched through
/// the same device model the server dispatches on, so the miss is certain.
std::optional<std::pair<std::uint64_t, std::uint64_t>>
find_qos_missing_operands() {
  core::ApimConfig cfg;
  cfg.word_bits = kSloppyWidth;
  cfg.approx.relax_bits = kSloppyRelax;
  for (std::uint64_t a = 257; a < 8192; a += 13) {
    core::ApimDevice device{cfg};
    const auto approx = static_cast<double>(device.mul_magnitude(a, a));
    const double golden = static_cast<double>(a) * static_cast<double>(a);
    if (std::abs(approx - golden) / golden > 0.25) return {{a, a}};
  }
  return std::nullopt;
}

TEST(ServeQos, MissEscalatesToExactAndReruns) {
  const auto operands = find_qos_missing_operands();
  ASSERT_TRUE(operands.has_value())
      << "relax " << kSloppyRelax << " never misses the spec";
  QosTable table;
  table.set("sloppy", QosTableEntry{kSloppyRelax, 0.0, true, false});

  ServerConfig cfg;
  cfg.batch_window = 100;
  Server server(cfg, table);
  auto responses = server.run_trace({make_request(
      "sloppy", OpKind::kMultiply, kSloppyWidth,
      {{operands->first, operands->second}})});
  ASSERT_EQ(responses.size(), 1u);
  const Response& r = responses[0];
  EXPECT_EQ(r.status, RequestStatus::kOk);
  EXPECT_TRUE(r.escalated);
  EXPECT_EQ(r.relax_bits, 0u);
  EXPECT_EQ(r.values, (std::vector<std::uint64_t>{
                          operands->first * operands->second}));
  EXPECT_TRUE(r.qos.acceptable);

  const MetricsSnapshot snap = server.snapshot();
  EXPECT_EQ(snap.escalations, 1u);
  EXPECT_EQ(snap.completed, 1u);
  EXPECT_TRUE(server.qos_table().escalated("sloppy"));
  EXPECT_EQ(server.qos_table().relax_for("sloppy"), 0u);
  ASSERT_EQ(snap.per_app.count("sloppy"), 1u);
  EXPECT_EQ(snap.per_app.at("sloppy").escalated, 1u);
}

TEST(ServeQos, EscalationCanBeDisabled) {
  const auto operands = find_qos_missing_operands();
  ASSERT_TRUE(operands.has_value());
  QosTable table;
  table.set("sloppy", QosTableEntry{kSloppyRelax, 0.0, true, false});
  ServerConfig cfg;
  cfg.batch_window = 100;
  cfg.escalate_on_miss = false;
  Server server(cfg, table);
  auto responses = server.run_trace({make_request(
      "sloppy", OpKind::kMultiply, kSloppyWidth,
      {{operands->first, operands->second}})});
  const Response& r = responses[0];
  EXPECT_EQ(r.status, RequestStatus::kOk);
  EXPECT_FALSE(r.escalated);
  EXPECT_FALSE(r.qos.acceptable);  // Served approximate, miss reported.
  EXPECT_EQ(server.snapshot().escalations, 0u);
}

// -- Metrics ------------------------------------------------------------------

TEST(ServeMetrics, SnapshotIsInternallyConsistent) {
  const TraceRun run =
      run_reference_trace(reliability::ReliabilityPolicy::kOff);
  const MetricsSnapshot& s = run.snap;
  EXPECT_EQ(s.submitted, 160u);
  EXPECT_EQ(s.completed + s.rejected + s.expired + s.invalid, s.submitted);
  EXPECT_LE(s.p50_latency_cycles, s.p95_latency_cycles);
  EXPECT_LE(s.p95_latency_cycles, s.p99_latency_cycles);
  EXPECT_GT(s.batches, 0u);
  EXPECT_GE(s.mean_batch_requests, 1.0);
  EXPECT_GE(static_cast<double>(s.max_batch_requests),
            s.mean_batch_requests);
  EXPECT_GT(s.span_cycles, 0u);
  EXPECT_GT(s.throughput_rps, 0.0);
  EXPECT_GT(s.energy_pj, 0.0);
  EXPECT_GT(s.lane_occupancy, 0.0);
  EXPECT_LE(s.stream_occupancy, 1.0);
  EXPECT_TRUE(s.slo_met(0.0));  // No SLO configured: trivially met.
  EXPECT_FALSE(s.slo_met(1e-9));

  std::uint64_t per_app_completed = 0;
  for (const auto& [app, counts] : s.per_app)
    per_app_completed += counts.completed;
  EXPECT_EQ(per_app_completed, s.completed);
}

// -- Closed loop --------------------------------------------------------------

TEST(ServeClosedLoop, ClientsSelfPaceAndStaySorted) {
  ServerConfig cfg;
  cfg.batch_window = 200;
  Server server(cfg, {});
  auto responses = server.run_closed_loop(
      3, 4, /*think_cycles=*/100, [](std::size_t client, std::size_t index) {
        return make_request("", OpKind::kMultiply, 16,
                            {{10 * (client + 1), index + 1}});
      });
  ASSERT_EQ(responses.size(), 12u);
  for (const Response& r : responses) {
    EXPECT_EQ(r.status, RequestStatus::kOk);
    EXPECT_GE(r.completion, r.arrival);
  }
  EXPECT_EQ(server.snapshot().completed, 12u);
}

// -- Live async facade --------------------------------------------------------

TEST(ServeAsync, SubmitResolvesFuturesAndSnapshotsWhileServing) {
  ServerConfig cfg;
  cfg.batch_window = 50;
  Server server(cfg, {});
  server.start();

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(server.submit(
        make_request("", OpKind::kMultiply, 32,
                     {{std::uint64_t(i + 2), 10}})));
  futures.push_back(server.submit(
      make_request("", OpKind::kMultiply, 2, {{1, 1}})));  // Invalid width.

  for (std::size_t i = 0; i < 8; ++i) {
    const Response r = futures[i].get();
    EXPECT_EQ(r.status, RequestStatus::kOk);
    ASSERT_EQ(r.values.size(), 1u);
    EXPECT_EQ(r.values[0], (i + 2) * 10);
  }
  EXPECT_EQ(futures[8].get().status, RequestStatus::kInvalid);

  const MetricsSnapshot snap = server.snapshot();  // While serving.
  EXPECT_EQ(snap.submitted, 9u);
  EXPECT_EQ(snap.completed, 8u);
  EXPECT_EQ(snap.invalid, 1u);
  server.stop();
}

TEST(ServeAsync, PoolWorkerSubmissionsAreRefused) {
  // The calling thread also services chunks (without being a pool worker),
  // so assert the guard's invariant per chunk: worker-thread submissions
  // are refused outright, caller-thread ones are served.
  ThreadCountGuard guard;
  util::set_thread_count(4);
  EXPECT_FALSE(util::in_pool_worker());
  ServerConfig cfg;
  cfg.batch_window = 10;
  Server server(cfg, {});
  server.start();
  util::ThreadPool::global().parallel_for(0, 8, 1, [&](std::size_t lo,
                                                       std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const bool from_worker = util::in_pool_worker();
      auto fut =
          server.submit(make_request("", OpKind::kMultiply, 16, {{2, 3}}));
      const Response r = fut.get();
      if (from_worker)
        EXPECT_EQ(r.status, RequestStatus::kRejected);
      else
        EXPECT_EQ(r.status, RequestStatus::kOk);
    }
  });
  server.stop();
}

TEST(ServeAsync, StopDrainsAndIsIdempotent) {
  ServerConfig cfg;
  cfg.batch_window = 5000;  // Long window: stop() must still drain.
  Server server(cfg, {});
  auto fut =
      server.submit(make_request("", OpKind::kMultiply, 16, {{11, 13}}));
  server.stop();
  server.stop();
  const Response r = fut.get();
  EXPECT_EQ(r.status, RequestStatus::kOk);
  EXPECT_EQ(r.values, (std::vector<std::uint64_t>{143}));
}

// -- Offline QoS table --------------------------------------------------------

TEST(ServeQosTable, BuildsTunedEntriesAndFallsBackForUnknownApps) {
  const std::vector<std::string> apps = {"Sobel"};
  const QosTable table = serve::build_qos_table(apps, 256, 2017);
  ASSERT_EQ(table.entries().count("Sobel"), 1u);
  const QosTableEntry& entry = table.entries().at("Sobel");
  EXPECT_TRUE(entry.met_qos);
  EXPECT_EQ(table.relax_for("Sobel"), entry.relax_bits);
  EXPECT_EQ(table.relax_for("never-registered"), 0u);

  QosTable copy = table;
  copy.escalate("Sobel");
  EXPECT_EQ(copy.relax_for("Sobel"), 0u);
}

// -- Serving geometry ---------------------------------------------------------

TEST(ServeGeometry, ChipDerivedStreamsAndLanes) {
  const core::ApimChip chip;
  EXPECT_EQ(chip.command_streams(), chip.geometry().banks);
  EXPECT_EQ(chip.lanes_per_stream(), chip.geometry().active_tiles_per_bank);
  EXPECT_EQ(chip.command_streams() * chip.lanes_per_stream(),
            chip.parallel_lanes());

  const ServerConfig cfg = ServerConfig::from_chip(chip);
  EXPECT_EQ(cfg.streams, chip.command_streams());
  EXPECT_EQ(cfg.lanes_per_stream, chip.lanes_per_stream());
  EXPECT_EQ(cfg.total_lanes(), chip.parallel_lanes());
  EXPECT_EQ(cfg.device.parallel_lanes, chip.parallel_lanes());
}

// -- Satellite units ----------------------------------------------------------

TEST(QosSpec, LossThresholdUnifiesBothKinds) {
  EXPECT_DOUBLE_EQ(quality::QosSpec::numeric().loss_threshold(), 0.10);
  // 30 dB PSNR == 10^(-30/20) peak-normalized RMSE.
  EXPECT_NEAR(quality::QosSpec::image().loss_threshold(), 0.0316228, 1e-6);
}

TEST(AccuracyTuner, RelaxCandidatesMatchPaperSchedule) {
  EXPECT_EQ(core::AccuracyTuner().relax_candidates(),
            (std::vector<unsigned>{32, 28, 24, 20, 16, 12, 8, 4, 0}));
  EXPECT_EQ(core::AccuracyTuner(8, 3).relax_candidates(),
            (std::vector<unsigned>{8, 5, 2, 0}));
}

TEST(JsonValue, RendersStableOrderedDocuments) {
  util::JsonValue report = util::JsonValue::object();
  report.set("name", "serving");
  report.set("count", std::uint64_t{3});
  report.set("ratio", 0.5);
  report.set("ok", true);
  report.set("nothing", util::JsonValue{});
  util::JsonValue arr = util::JsonValue::array();
  arr.append(1);
  arr.append("two");
  report.set("items", std::move(arr));
  report.set("count", std::uint64_t{4});  // Overwrite keeps position.

  EXPECT_EQ(report.dump(),
            "{\n"
            "  \"name\": \"serving\",\n"
            "  \"count\": 4,\n"
            "  \"ratio\": 0.5,\n"
            "  \"ok\": true,\n"
            "  \"nothing\": null,\n"
            "  \"items\": [\n"
            "    1,\n"
            "    \"two\"\n"
            "  ]\n"
            "}\n");
}

TEST(JsonValue, EscapesStrings) {
  EXPECT_EQ(util::json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  util::JsonValue v{std::string("x\"y")};
  EXPECT_EQ(v.dump(), "\"x\\\"y\"\n");
}

}  // namespace
