// Tests of the batched lane-parallel multiply executor.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "arith/batch.hpp"
#include "arith/fast_units.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::arith {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

using Pair = std::pair<std::uint64_t, std::uint64_t>;

std::vector<Pair> random_pairs(std::size_t count, unsigned n,
                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Pair> out;
  for (std::size_t i = 0; i < count; ++i)
    out.emplace_back(rng.next() & util::low_mask(n),
                     rng.next() & util::low_mask(n));
  return out;
}

TEST(Batch, ProductsMatchScalarExecution) {
  const auto pairs = random_pairs(50, 16, 111);
  const BatchOutcome batch =
      fast_multiply_batch(pairs, 16, ApproxConfig::exact(), em(), 8);
  ASSERT_EQ(batch.products.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i)
    EXPECT_EQ(batch.products[i], pairs[i].first * pairs[i].second) << i;
}

TEST(Batch, SingleLaneMakespanEqualsTotal) {
  const auto pairs = random_pairs(20, 16, 112);
  const BatchOutcome batch =
      fast_multiply_batch(pairs, 16, ApproxConfig::exact(), em(), 1);
  EXPECT_EQ(batch.makespan, batch.total_lane_cycles);
  EXPECT_DOUBLE_EQ(batch.imbalance(), 1.0);
}

TEST(Batch, MoreLanesShrinkMakespan) {
  const auto pairs = random_pairs(256, 32, 113);
  const BatchOutcome narrow =
      fast_multiply_batch(pairs, 32, ApproxConfig::exact(), em(), 4);
  const BatchOutcome wide =
      fast_multiply_batch(pairs, 32, ApproxConfig::exact(), em(), 64);
  EXPECT_LT(wide.makespan, narrow.makespan);
  // Energy is lane-independent.
  EXPECT_DOUBLE_EQ(wide.energy_ops_pj, narrow.energy_ops_pj);
  EXPECT_EQ(wide.total_lane_cycles, narrow.total_lane_cycles);
}

TEST(Batch, ImbalanceIsSmallForLargeBatches) {
  // The balanced-load idealization used by ApimDevice: with many ops per
  // lane, data-dependent latency variation averages out. This quantifies
  // the error of that assumption at Figure-5 scale.
  const auto pairs = random_pairs(4096, 32, 114);
  const BatchOutcome batch =
      fast_multiply_batch(pairs, 32, ApproxConfig::exact(), em(), 64);
  EXPECT_GE(batch.imbalance(), 1.0);
  EXPECT_LT(batch.imbalance(), 1.05);  // <5% makespan inflation.
}

TEST(Batch, ImbalanceIsLargerForTinyBatches) {
  // One op per lane: makespan = slowest single op. Multiply latency is
  // tightly concentrated (popcount varies by a few cycles on ~930), so the
  // inflation is small — but it must exceed the many-ops-per-lane case,
  // where averaging tightens it further.
  const BatchOutcome tiny = fast_multiply_batch(
      random_pairs(64, 32, 115), 32, ApproxConfig::exact(), em(), 64);
  const BatchOutcome large = fast_multiply_batch(
      random_pairs(4096, 32, 115), 32, ApproxConfig::exact(), em(), 64);
  EXPECT_GT(tiny.imbalance(), large.imbalance());
  EXPECT_GT(tiny.imbalance(), 1.005);
}

TEST(Batch, LanesClampedToBatchSize) {
  const auto pairs = random_pairs(3, 8, 116);
  const BatchOutcome batch =
      fast_multiply_batch(pairs, 8, ApproxConfig::exact(), em(), 100);
  EXPECT_EQ(batch.lanes_used, 3u);
}

TEST(Batch, EmptyBatch) {
  const std::vector<Pair> none;
  const BatchOutcome batch =
      fast_multiply_batch(none, 16, ApproxConfig::exact(), em(), 4);
  EXPECT_TRUE(batch.products.empty());
  EXPECT_EQ(batch.makespan, 0u);
  // Regression: the old code padded the batch and reported lanes_used == 1
  // with nonzero per-lane state for zero work. Everything must be zeroed.
  EXPECT_EQ(batch.lanes_used, 0u);
  EXPECT_EQ(batch.total_lane_cycles, 0u);
  EXPECT_EQ(batch.energy_ops_pj, 0.0);
  EXPECT_EQ(batch.ideal_makespan(), 0.0);
  EXPECT_EQ(batch.imbalance(), 1.0);
}

TEST(Batch, ApproximationAppliesPerLaneOp) {
  const auto pairs = random_pairs(32, 32, 117);
  const BatchOutcome exact =
      fast_multiply_batch(pairs, 32, ApproxConfig::exact(), em(), 8);
  const BatchOutcome relaxed =
      fast_multiply_batch(pairs, 32, ApproxConfig::last_stage(32), em(), 8);
  EXPECT_LT(relaxed.makespan, exact.makespan);
  for (std::size_t i = 0; i < pairs.size(); ++i)
    EXPECT_EQ(relaxed.products[i] >> 32, (pairs[i].first * pairs[i].second) >> 32);
}

}  // namespace
}  // namespace apim::arith
