// Tests of the baseline models: prior in-memory adders (Fig. 6) and the
// analytic GPU model (Fig. 5 / Table 1).
#include <gtest/gtest.h>

#include "arith/latency_model.hpp"
#include "baseline/gpu_model.hpp"
#include "baseline/prior_adders.hpp"

namespace apim::baseline {
namespace {

const device::EnergyModel& em() {
  return device::EnergyModel::paper_defaults();
}

TEST(TalatiAdder, SingleAddFormula) {
  EXPECT_EQ(TalatiAdder::add_cycles(16), 193u);
  EXPECT_EQ(TalatiAdder::add_cycles(32), 385u);
}

TEST(TalatiAdder, MultiAddGrowsLinearly) {
  const unsigned n = 16;
  const auto c8 = TalatiAdder::multi_add_cycles(8, n);
  const auto c16 = TalatiAdder::multi_add_cycles(16, n);
  const auto c32 = TalatiAdder::multi_add_cycles(32, n);
  EXPECT_GT(c16, c8);
  EXPECT_GT(c32, 2 * c16 - c8);  // Superlinear: widths grow too.
  EXPECT_EQ(TalatiAdder::multi_add_cycles(1, n), 0u);
  EXPECT_EQ(TalatiAdder::multi_add_cycles(0, n), 0u);
}

TEST(TalatiAdder, EnergyPositiveAndMonotone) {
  EXPECT_GT(TalatiAdder::multi_add_energy_pj(8, 16, em()), 0.0);
  EXPECT_GT(TalatiAdder::multi_add_energy_pj(16, 16, em()),
            TalatiAdder::multi_add_energy_pj(8, 16, em()));
}

TEST(PcAdder, FasterThanTalatiButSlowerThanApim) {
  // The Figure 6 ordering: Talati [24] slowest, PC-Adder [25] in between,
  // APIM tree adder fastest (>= 2x over the next best in exact mode).
  for (unsigned n : {8u, 16u, 32u}) {
    const std::size_t m = n;  // N operands of N bits, as in Figure 6.
    const auto talati = TalatiAdder::multi_add_cycles(m, n);
    const auto pc = PcAdder::multi_add_cycles(m, n);
    const auto apim = arith::tree_add_cycles(m, n);
    EXPECT_LT(pc, talati) << "n=" << n;
    EXPECT_LT(apim, pc) << "n=" << n;
  }
  // The ">= 2x over the next best" headline holds once the tree's constant
  // serial tail is amortized (n >= 16 in our reproduction).
  for (unsigned n : {16u, 32u}) {
    const auto pc = PcAdder::multi_add_cycles(n, n);
    const auto apim = arith::tree_add_cycles(n, n);
    EXPECT_GE(static_cast<double>(pc) / static_cast<double>(apim), 2.0)
        << "n=" << n;
  }
}

TEST(PcAdder, ApproximateApimIsAtLeastSixTimesFaster) {
  // Paper Section 4.2: "APIM can be at least 6x faster with 99.9%
  // accuracy" — tree reduction plus a relaxed final add.
  const unsigned n = 32;
  const std::size_t m = 32;
  const unsigned final_width = n + 6;  // Survivor width bound.
  const auto apim_approx =
      arith::tree_reduce_cycles(m) +
      arith::final_add_cycles(final_width, /*m=*/24);
  const auto pc = PcAdder::multi_add_cycles(m, n);
  EXPECT_GE(static_cast<double>(pc) / static_cast<double>(apim_approx), 6.0);
}

TEST(PcAdder, ControllerAreaScalesWithArrays) {
  const auto one = PcAdder::controller_transistors(1, 64, 64);
  const auto many = PcAdder::controller_transistors(16, 64, 64);
  EXPECT_EQ(many, 16 * one);
}

TEST(GpuModel, MissRateSaturates) {
  const GpuModel gpu;
  EXPECT_NEAR(gpu.miss_rate(0.0), 0.0, 1e-12);
  EXPECT_LT(gpu.miss_rate(32e6), gpu.miss_rate(1e9));
  EXPECT_LT(gpu.miss_rate(1e9), 1.0);
  EXPECT_GT(gpu.miss_rate(100e9), 0.99);
}

TEST(GpuModel, CostScalesLinearlyInElementsAtFixedDataset) {
  const GpuModel gpu;
  const GpuAppProfile profile{10.0, 100.0};
  const GpuCost c1 = gpu.run(1e6, profile, 1e9);
  const GpuCost c2 = gpu.run(2e6, profile, 1e9);
  EXPECT_NEAR(c2.seconds / c1.seconds, 2.0, 1e-9);
  EXPECT_NEAR(c2.energy_pj / c1.energy_pj, 2.0, 1e-9);
}

TEST(GpuModel, LargeDatasetsAreMovementBound) {
  // Section 4.2's regimes: per-element cost grows with dataset size as the
  // miss rate rises, then saturates.
  const GpuModel gpu;
  const GpuAppProfile profile{10.0, 100.0};
  const double per_el_small =
      gpu.run(1e6, profile, 1e6).seconds;
  const double per_el_large =
      gpu.run(1e6, profile, 4e9).seconds;
  EXPECT_GT(per_el_large, 2.0 * per_el_small);
}

TEST(GpuModel, EdpIsEnergyTimesTime) {
  const GpuModel gpu;
  const GpuCost c = gpu.run(1e6, GpuAppProfile{}, 1e9);
  EXPECT_NEAR(c.edp_js(), c.energy_pj * 1e-12 * c.seconds, 1e-20);
}

}  // namespace
}  // namespace apim::baseline
