// Tests of the shared full-adder NOR schedule at every level: the abstract
// table, the word-level evaluators, and the cell-level lane executor.
#include <gtest/gtest.h>

#include <vector>

#include "arith/fa_schedule.hpp"
#include "arith/inmemory_fa.hpp"
#include "arith/word_models.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::arith {
namespace {

using crossbar::BlockedCrossbar;
using crossbar::CellAddr;
using crossbar::CrossbarConfig;

TEST(FaSchedule, TableShapeIsTwelveSteps) {
  EXPECT_EQ(kFaSchedule.size(), 12u);
  EXPECT_EQ(kFaScratchSlots, 12u);
  // Every non-input slot is produced exactly once.
  std::array<int, kFaSlotCount> produced{};
  for (const FaStep& s : kFaSchedule) {
    ASSERT_GE(s.arity, 1u);
    ASSERT_LE(s.arity, 3u);
    ++produced[s.dst];
  }
  for (unsigned slot = kSlotT1; slot < kFaSlotCount; ++slot)
    EXPECT_EQ(produced[slot], 1) << "slot " << slot;
  // Inputs are never overwritten.
  EXPECT_EQ(produced[kSlotA], 0);
  EXPECT_EQ(produced[kSlotB], 0);
  EXPECT_EQ(produced[kSlotC], 0);
}

TEST(FaSchedule, NoStepReadsASlotProducedLater) {
  std::array<bool, kFaSlotCount> ready{};
  ready[kSlotA] = ready[kSlotB] = ready[kSlotC] = true;
  for (const FaStep& s : kFaSchedule) {
    for (unsigned i = 0; i < s.arity; ++i)
      EXPECT_TRUE(ready[s.inputs[i]])
          << "step producing slot " << s.dst << " reads unready slot "
          << s.inputs[i];
    ready[s.dst] = true;
  }
}

TEST(FaSchedule, ReferenceMatchesArithmetic) {
  for (unsigned v = 0; v < 8; ++v) {
    const std::uint64_t a = (v >> 2) & 1, b = (v >> 1) & 1, c = v & 1;
    const FaBits r = fa_reference(a, b, c);
    EXPECT_EQ(r.sum + 2 * r.carry, a + b + c);
  }
}

TEST(WordFaBit, FullTruthTable) {
  const auto& em = device::EnergyModel::paper_defaults();
  for (unsigned v = 0; v < 8; ++v) {
    const std::uint64_t a = (v >> 2) & 1, b = (v >> 1) & 1, c = v & 1;
    const FaBitResult r = word_fa_bit(a, b, c, em);
    const FaBits expect = fa_reference(a, b, c);
    EXPECT_EQ(r.sum, expect.sum) << "abc=" << v;
    EXPECT_EQ(r.carry, expect.carry) << "abc=" << v;
    EXPECT_GT(r.nor_energy_pj, 0.0);
  }
}

TEST(WordFaStage, MatchesCarrySaveSemantics) {
  const auto& em = device::EnergyModel::paper_defaults();
  util::Xoshiro256 rng(21);
  for (int trial = 0; trial < 300; ++trial) {
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(48));
    const std::uint64_t mask = util::low_mask(width);
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const std::uint64_t c = rng.next() & mask;
    const FaWordResult r = word_fa_stage(a, b, c, width, em);
    const util::CarrySave expect = util::csa3(a, b, c);
    EXPECT_EQ(r.sum, expect.sum & mask);
    EXPECT_EQ(r.carry, expect.carry);
    EXPECT_EQ(r.sum + r.carry, a + b + c);  // 3:2 invariant.
  }
}

TEST(WordFaStage, EnergyScalesWithWidth) {
  const auto& em = device::EnergyModel::paper_defaults();
  const FaWordResult narrow = word_fa_stage(0x5, 0x3, 0x6, 4, em);
  const FaWordResult wide = word_fa_stage(0x5, 0x3, 0x6, 32, em);
  EXPECT_GT(wide.nor_energy_pj, narrow.nor_energy_pj);
}

// Cell-level lane execution must reproduce the same truth table.
TEST(FaLane, SerialLaneTruthTableOnCells) {
  const auto& em = device::EnergyModel::paper_defaults();
  for (unsigned v = 0; v < 8; ++v) {
    BlockedCrossbar xbar(CrossbarConfig{1, 16, 8});
    magic::MagicEngine engine(xbar, em);
    const CellAddr a{0, 0, 0}, b{0, 1, 0}, c{0, 2, 0};
    xbar.set(a, ((v >> 2) & 1) != 0);
    xbar.set(b, ((v >> 1) & 1) != 0);
    xbar.set(c, (v & 1) != 0);
    const FaLaneMap lane = make_fa_lane(a, b, c, 0, /*scratch_row=*/3,
                                        /*col=*/0, /*cout_col_shift=*/0);
    std::vector<CellAddr> init;
    append_lane_init_cells(lane, init);
    engine.init_cells(init);
    execute_fa_lane_serial(engine, lane);

    const FaBits expect =
        fa_reference((v >> 2) & 1, (v >> 1) & 1, v & 1);
    EXPECT_EQ(xbar.get(lane.cell(kSlotS)), expect.sum != 0) << v;
    EXPECT_EQ(xbar.get(lane.cell(kSlotCout)), expect.carry != 0) << v;
    EXPECT_EQ(engine.cycles(), 13u);  // 1 init + 12 NOR steps.
  }
}

TEST(FaLane, ParallelLanesCostTwelveCyclesForAnyWidth) {
  const auto& em = device::EnergyModel::paper_defaults();
  for (unsigned width : {4u, 16u, 32u}) {
    BlockedCrossbar xbar(CrossbarConfig{1, 16, 64});
    magic::MagicEngine engine(xbar, em);
    util::Xoshiro256 rng(width);
    const std::uint64_t mask = util::low_mask(width);
    const std::uint64_t a = rng.next() & mask;
    const std::uint64_t b = rng.next() & mask;
    const std::uint64_t c = rng.next() & mask;
    xbar.write_word(CellAddr{0, 0, 0}, width, a);
    xbar.write_word(CellAddr{0, 1, 0}, width, b);
    xbar.write_word(CellAddr{0, 2, 0}, width, c);

    std::vector<FaLaneMap> lanes;
    std::vector<CellAddr> init;
    for (unsigned i = 0; i < width; ++i) {
      lanes.push_back(make_fa_lane(CellAddr{0, 0, i}, CellAddr{0, 1, i},
                                   CellAddr{0, 2, i}, 0, 3, i,
                                   /*cout_col_shift=*/1));
      append_lane_init_cells(lanes.back(), init);
    }
    engine.init_cells(init);
    execute_fa_lanes_parallel(engine, lanes);
    EXPECT_EQ(engine.cycles(), 13u) << "width " << width;

    // Collect outputs: sum at lane columns, carry shifted one left.
    std::uint64_t sum = 0, carry = 0;
    for (unsigned i = 0; i < width; ++i) {
      if (xbar.get(lanes[i].cell(kSlotS))) sum |= std::uint64_t{1} << i;
      if (xbar.get(lanes[i].cell(kSlotCout)))
        carry |= std::uint64_t{1} << (i + 1);
    }
    EXPECT_EQ(sum + carry, a + b + c);
  }
}

TEST(FaLane, LaneMapPlacesCoutShifted) {
  const FaLaneMap lane = make_fa_lane(CellAddr{0, 0, 5}, CellAddr{0, 1, 5},
                                      CellAddr{0, 2, 5}, 1, 10, 5, 1);
  EXPECT_EQ(lane.cell(kSlotCout).col, 6u);
  EXPECT_EQ(lane.cell(kSlotS).col, 5u);
  EXPECT_EQ(lane.cell(kSlotT1).block, 1u);
  EXPECT_EQ(lane.cell(kSlotT1).row, 10u);
  EXPECT_EQ(lane.cell(kSlotS).row, 10u + (kSlotS - kSlotT1));
}

}  // namespace
}  // namespace apim::arith
