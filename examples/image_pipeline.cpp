// Image pipeline example: Sobel edge detection on APIM, exact vs
// approximate, with PGM outputs you can open in any viewer.
//
// Demonstrates the application layer: a synthetic photograph substitute is
// generated, the Sobel kernel runs once on the exact device and once at a
// QoS-tuned relax setting, and the example reports PSNR, latency, energy
// and EDP side by side, then writes input/exact/approx images as PGM.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "apps/app.hpp"
#include "core/tuner.hpp"
#include "quality/qos.hpp"
#include "util/image.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace apim;

  // Host-parallelism knob: --threads N (or the APIM_THREADS env var).
  // Purely a wall-clock knob; every reported number is bit-identical.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0)
      util::set_thread_count(
          static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10)));
  }

  std::printf("== APIM image pipeline: Sobel == (%zu host threads)\n\n",
              util::configured_thread_count());

  auto app = apps::make_application("Sobel");
  app->generate(128 * 128, /*seed=*/42);
  std::printf("input: %zu pixels (synthetic Caltech-101 substitute)\n",
              app->element_count());

  const std::vector<double> golden = app->run_golden();

  // Exact run.
  core::ApimDevice exact_device;
  const std::vector<double> exact_out = app->run_apim(exact_device);
  const auto exact_eval =
      quality::evaluate_qos(app->qos(), golden, exact_out);
  std::printf("\nexact:  PSNR %s, cycles %llu, energy %.2f uJ, EDP %.3e J*s\n",
              exact_eval.metric > 1e9 ? "inf" : "finite",
              static_cast<unsigned long long>(exact_device.stats().cycles),
              exact_device.energy_pj() * 1e-6, exact_device.edp_js());

  // Tune the relax bits against the 30 dB QoS bar (paper Section 4.1).
  const core::AccuracyTuner tuner;
  const core::TunerResult tuned = tuner.tune(
      [&](unsigned m) {
        core::ApimConfig cfg;
        cfg.approx.relax_bits = m;
        core::ApimDevice dev{cfg};
        const auto out = app->run_apim(dev);
        return quality::evaluate_qos(app->qos(), golden, out).acceptable
                   ? 0.0
                   : 1.0;
      },
      0.5);
  std::printf("\ntuner: chose m=%u after %zu evaluations\n", tuned.relax_bits,
              tuned.history.size());

  core::ApimConfig approx_cfg;
  approx_cfg.approx.relax_bits = tuned.relax_bits;
  core::ApimDevice approx_device{approx_cfg};
  const std::vector<double> approx_out = app->run_apim(approx_device);
  const auto approx_eval =
      quality::evaluate_qos(app->qos(), golden, approx_out);
  std::printf("approx: PSNR %.1f dB (QoS >= 30 dB: %s), cycles %llu, energy "
              "%.2f uJ, EDP %.3e J*s\n",
              approx_eval.metric, approx_eval.acceptable ? "met" : "MISSED",
              static_cast<unsigned long long>(approx_device.stats().cycles),
              approx_device.energy_pj() * 1e-6, approx_device.edp_js());
  std::printf("approximation gain: %.2fx cycles, %.2fx energy, %.2fx EDP\n",
              static_cast<double>(exact_device.stats().cycles) /
                  static_cast<double>(approx_device.stats().cycles),
              exact_device.energy_pj() / approx_device.energy_pj(),
              exact_device.edp_js() / approx_device.edp_js());

  // Write the images.
  const auto to_image = [](const std::vector<double>& pixels) {
    const auto side = static_cast<std::size_t>(std::sqrt(
        static_cast<double>(pixels.size())));
    util::Image img(side, side);
    for (std::size_t i = 0; i < side * side; ++i)
      img.pixels()[i] = static_cast<std::uint8_t>(pixels[i]);
    return img;
  };
  const util::Image input = util::make_synthetic_image(128, 128, 42);
  bool ok = input.write_pgm("sobel_input.pgm");
  ok &= to_image(exact_out).write_pgm("sobel_exact.pgm");
  ok &= to_image(approx_out).write_pgm("sobel_approx.pgm");
  std::printf("\n%s sobel_input.pgm / sobel_exact.pgm / sobel_approx.pgm\n",
              ok ? "wrote" : "could not write");
  return 0;
}
