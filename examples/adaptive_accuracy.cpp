// Adaptive accuracy example: the paper's runtime flow over all six
// applications.
//
// For each application the tuner starts at the maximum approximation
// (32 relax bits) and steps down by 4 until the application-specific QoS
// criterion holds (30 dB PSNR for images, <10% average relative error for
// numeric kernels). The example prints each tuner trajectory and the
// resulting latency/energy/EDP gains over exact mode.
#include <cstdio>
#include <string>

#include "apps/app.hpp"
#include "core/tuner.hpp"
#include "quality/qos.hpp"
#include "util/table.hpp"

int main() {
  using namespace apim;

  std::puts("== APIM adaptive accuracy across the six applications ==\n");

  util::TextTable table({"app", "QoS criterion", "tuned m", "QoL", "cycles gain",
                         "energy gain", "EDP gain"});

  for (const auto& app : apps::make_all_applications()) {
    app->generate(4096, /*seed=*/7);
    const auto golden = app->run_golden();
    const quality::QosSpec spec = app->qos();

    core::ApimDevice exact_device;
    (void)app->run_apim(exact_device);

    std::printf("%s tuner trajectory:", app->name().c_str());
    const core::AccuracyTuner tuner;
    const core::TunerResult tuned = tuner.tune(
        [&](unsigned m) {
          core::ApimConfig cfg;
          cfg.approx.relax_bits = m;
          core::ApimDevice dev{cfg};
          const auto eval =
              quality::evaluate_qos(spec, golden, app->run_apim(dev));
          std::printf(" m=%u(%s)", m, eval.acceptable ? "ok" : "x");
          return eval.acceptable ? 0.0 : 1.0;
        },
        0.5);
    std::puts("");

    core::ApimConfig cfg;
    cfg.approx.relax_bits = tuned.relax_bits;
    core::ApimDevice tuned_device{cfg};
    const auto out = app->run_apim(tuned_device);
    const auto eval = quality::evaluate_qos(spec, golden, out);

    const std::string criterion =
        spec.kind == quality::QosKind::kPsnr
            ? ">= " + util::format_double(spec.threshold, 0) + " dB PSNR"
            : "<= " + util::format_percent(spec.threshold, 0) + " rel err";
    table.add_row(
        {app->name(), criterion, "m=" + std::to_string(tuned.relax_bits),
         util::format_percent(eval.loss, 2),
         util::format_factor(
             static_cast<double>(exact_device.stats().cycles) /
                 static_cast<double>(tuned_device.stats().cycles),
             2),
         util::format_factor(exact_device.energy_pj() /
                                 tuned_device.energy_pj(),
                             2),
         util::format_factor(exact_device.edp_js() / tuned_device.edp_js(),
                             2)});
  }

  std::puts("");
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nThe EDP-gain column is what Table 1's adaptive row monetizes "
            "against the GPU baseline (see bench/table1_qol_edp).");
  return 0;
}
