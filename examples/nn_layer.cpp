// Neural-network layer example: the workload class the paper's
// introduction motivates ("machine learning algorithms such as
// classification or neural networks" on IoT data).
//
// A small fully-connected layer (16 inputs -> 8 neurons, tanh-free ReLU)
// runs its multiply-accumulates on APIM. The example uses the quantize
// helper to pick a fixed-point format from the data range, compares exact
// and relaxed inference, and reports the classification-level effect of
// approximation (argmax stability) next to the energy savings.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/apim.hpp"
#include "core/quantize.hpp"
#include "util/rng.hpp"

namespace {

using namespace apim;

struct Layer {
  std::vector<std::vector<double>> weights;  // [neuron][input]
  std::vector<double> bias;
};

Layer make_layer(std::size_t inputs, std::size_t neurons, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Layer layer;
  layer.weights.assign(neurons, std::vector<double>(inputs));
  layer.bias.assign(neurons, 0.0);
  for (auto& row : layer.weights)
    for (double& w : row) w = rng.next_gaussian() * 0.4;
  for (double& b : layer.bias) b = rng.next_gaussian() * 0.1;
  return layer;
}

std::vector<double> infer_golden(const Layer& layer,
                                 const std::vector<double>& input) {
  std::vector<double> out(layer.bias);
  for (std::size_t n = 0; n < layer.weights.size(); ++n) {
    for (std::size_t i = 0; i < input.size(); ++i)
      out[n] += layer.weights[n][i] * input[i];
    out[n] = std::max(0.0, out[n]);  // ReLU.
  }
  return out;
}

std::vector<double> infer_apim(const Layer& layer,
                               const std::vector<double>& input,
                               core::ApimDevice& device,
                               util::FixedPointFormat fmt) {
  const auto qin = core::quantize(input, fmt);
  std::vector<double> out;
  out.reserve(layer.bias.size());
  for (std::size_t n = 0; n < layer.weights.size(); ++n) {
    const auto qw = core::quantize(layer.weights[n], fmt);
    std::int64_t acc = core::quantize({&layer.bias[n], 1}, fmt)[0];
    for (std::size_t i = 0; i < qin.size(); ++i) {
      const std::int64_t prod = device.mul(qw[i], qin[i], fmt);
      acc = device.add(acc, prod);
    }
    const double value =
        static_cast<double>(acc) / fmt.scale();
    out.push_back(std::max(0.0, value));
  }
  return out;
}

std::size_t argmax(const std::vector<double>& v) {
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace

int main() {
  std::puts("== APIM neural-network layer inference ==\n");

  constexpr std::size_t kInputs = 16, kNeurons = 8, kSamples = 200;
  const Layer layer = make_layer(kInputs, kNeurons, 99);

  // Choose the fixed-point format from the data range: weights/activations
  // are unit-scale, so quantize picks a fraction-heavy format that pushes
  // magnitudes into the upper bits — exactly where the relaxed multiplier
  // is most accurate (see core/quantize.hpp).
  const util::FixedPointFormat fmt = core::choose_format(4.0);
  std::printf("format: Q%u.%u (chosen from the +-4.0 activation range)\n\n",
              fmt.integer_bits, fmt.frac_bits);

  util::Xoshiro256 rng(123);
  core::ApimDevice exact_device;
  core::ApimConfig relaxed_cfg;
  relaxed_cfg.approx.relax_bits = 32;
  core::ApimDevice relaxed_device{relaxed_cfg};

  std::size_t argmax_matches = 0;
  double worst_rel_err = 0.0;
  for (std::size_t s = 0; s < kSamples; ++s) {
    std::vector<double> input(kInputs);
    for (double& x : input) x = rng.next_gaussian();
    const auto golden = infer_golden(layer, input);
    (void)infer_apim(layer, input, exact_device, fmt);
    const auto relaxed = infer_apim(layer, input, relaxed_device, fmt);
    if (argmax(golden) == argmax(relaxed)) ++argmax_matches;
    for (std::size_t n = 0; n < kNeurons; ++n) {
      const double denom = std::max(std::abs(golden[n]), 0.05);
      worst_rel_err =
          std::max(worst_rel_err, std::abs(relaxed[n] - golden[n]) / denom);
    }
  }

  std::printf("samples: %zu, neurons: %zu\n", kSamples, kNeurons);
  std::printf("argmax agreement (relaxed m=32 vs float): %.1f%%\n",
              100.0 * static_cast<double>(argmax_matches) / kSamples);
  std::printf("worst neuron relative error: %.3f%%\n", worst_rel_err * 100.0);
  std::printf("\nexact:   %llu cycles, %.2f uJ\n",
              static_cast<unsigned long long>(exact_device.stats().cycles),
              exact_device.energy_pj() * 1e-6);
  std::printf("relaxed: %llu cycles, %.2f uJ  (%.2fx cycles, %.2fx energy, "
              "%.2fx EDP)\n",
              static_cast<unsigned long long>(relaxed_device.stats().cycles),
              relaxed_device.energy_pj() * 1e-6,
              static_cast<double>(exact_device.stats().cycles) /
                  static_cast<double>(relaxed_device.stats().cycles),
              exact_device.energy_pj() / relaxed_device.energy_pj(),
              exact_device.edp_js() / relaxed_device.edp_js());
  std::puts("\nStatistical workloads tolerate the relaxed datapath: the "
            "classification decision survives approximation that buys a "
            "meaningful EDP reduction — the paper's IoT thesis in one "
            "example.");
  return 0;
}
