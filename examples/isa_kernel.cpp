// ISA example: writing an APIM kernel in assembly.
//
// A vector scale-and-accumulate kernel (y[i] = a*x[i] + y[i], then a
// reduction) written in the APIM kernel dialect, assembled, and executed
// with runtime precision switching in the middle of the kernel — the
// paper's "configure the precision of computation for each application
// during runtime" expressed as two instructions.
#include <cstdio>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"

int main() {
  using namespace apim;

  constexpr const char* kKernel = R"(
; axpy + reduce: mem[0..7] = x, mem[8..15] = y, result at mem[16]
        load r1, #3          ; a = 3
        load r2, #0           ; i = 0
        load r3, #8          ; count
axpy:   load r4, [r2+0]      ; x[i]
        load r5, [r2+8]      ; y[i]
        mul  r6, r1, r4      ; in-memory multiply
        add  r5, r5, r6      ; in-memory add
        store r5, [r2+8]
        addi r2, r2, #1
        addi r3, r3, #-1
        jnz  r3, @axpy

        setrelax #24         ; relax the reduction: it feeds a mean anyway
        load r2, #0
        load r3, #8
reduce: load r4, [r2+8]
        add  r7, r7, r4      ; in-memory add (relaxed)
        addi r2, r2, #1
        addi r3, r3, #-1
        jnz  r3, @reduce
        store r7, [r0+16]
        halt
)";

  std::puts("== APIM kernel in assembly ==\n");
  const isa::Program program = isa::assemble(kKernel);
  std::printf("assembled %zu instructions:\n%s\n", program.size(),
              program.disassemble().c_str());

  std::vector<std::int64_t> memory(17, 0);
  for (int i = 0; i < 8; ++i) {
    memory[static_cast<std::size_t>(i)] = 1000 + 100 * i;        // x
    memory[static_cast<std::size_t>(8 + i)] = 50000 - 1000 * i;  // y
  }

  core::ApimDevice device;
  isa::Interpreter interpreter(device);
  const isa::ExecutionResult result = interpreter.run(program, memory);

  std::int64_t expected = 0;
  for (int i = 0; i < 8; ++i)
    expected += (50000 - 1000 * i) + 3 * (1000 + 100 * i);

  std::printf("halted: %s, %llu instructions, %llu data ops\n",
              result.halted ? "yes" : "NO",
              static_cast<unsigned long long>(result.instructions_executed),
              static_cast<unsigned long long>(result.data_ops));
  std::printf("reduction result: %lld (exact would be %lld; the relaxed "
              "section may deviate slightly)\n",
              static_cast<long long>(memory[16]),
              static_cast<long long>(expected));
  std::printf("device accounting: %llu cycles, %.1f pJ, EDP %.3e J*s\n",
              static_cast<unsigned long long>(device.stats().cycles),
              device.energy_pj(), device.edp_js());
  return 0;
}
