// Bit-level example: watching the MAGIC engine execute in-memory addition
// cell by cell.
//
// This example works at the lowest public layer — the blocked crossbar and
// the MAGIC engine — and shows that the paper's cycle formulas are not
// assumptions but measured behaviour of the executed NOR schedules:
//   * serial N-bit addition:      12N + 1 cycles,
//   * 3:2 carry-save stage:       13 cycles at ANY width,
//   * 9-operand Wallace tree:     4 stages + one serial add,
//   * relaxed final addition:     13k + 2m + 1 cycles.
#include <cstdio>
#include <vector>

#include "arith/inmemory_units.hpp"
#include "arith/latency_model.hpp"
#include "device/energy_model.hpp"
#include "util/bitops.hpp"

int main() {
  using namespace apim;
  const auto& em = device::EnergyModel::paper_defaults();

  std::puts("== MAGIC-level in-memory addition trace ==\n");

  // Serial ripple adder (the Talati-style baseline APIM builds on).
  for (unsigned n : {8u, 16u, 32u}) {
    const auto r = arith::inmemory_serial_add(0xA5A5A5A5 & util::mask_n(n),
                                              0x5A5A5A5A & util::mask_n(n),
                                              n, em);
    std::printf("serial %2u-bit add: value=%llu  cycles=%llu (formula 12N+1 = "
                "%llu)  energy=%.2f pJ\n",
                n, static_cast<unsigned long long>(r.value),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(arith::serial_add_cycles(n)),
                r.energy_ops_pj);
  }

  // Carry-save 3:2 stage: width-independent latency.
  std::puts("");
  for (unsigned width : {8u, 32u, 48u}) {
    const std::uint64_t mask = util::mask_n(width);
    const std::uint64_t a = 0x0F0F0F0Full & mask;
    const std::uint64_t b = 0x33CC33CCull & mask;
    const std::uint64_t c = 0x55AA55AAull & mask;
    const auto r = arith::inmemory_csa(a, b, c, width, em);
    std::printf("CSA %2u-bit 3:2 stage: sum+carry preserved=%s  cycles=%llu "
                "(always 13)\n",
                width, (r.sum + r.carry) == a + b + c ? "yes" : "NO",
                static_cast<unsigned long long>(r.cycles));
  }

  // Nine-operand Wallace tree (the paper's Figure 2(b) example).
  std::puts("");
  std::vector<std::uint64_t> nine(9);
  std::vector<unsigned> widths(9, 16);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    nine[i] = 0x1111 * (i + 1) & 0xFFFF;
    total += nine[i];
  }
  const auto tree = arith::inmemory_tree_add(nine, widths, 20, em);
  std::printf("9 x 16-bit tree add: value=%llu (expected %llu)  cycles=%llu "
              "(4 stages x 13 + serial tail)\n",
              static_cast<unsigned long long>(tree.value),
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(tree.cycles));

  // Relaxed final addition at several k/m splits.
  std::puts("");
  for (unsigned m : {0u, 8u, 16u, 32u}) {
    const auto r = arith::inmemory_relaxed_add(0xDEAD1234, 0xBEEF5678, 32, m, em);
    std::printf("relaxed 32-bit add m=%2u: value=%llu  cycles=%llu (formula "
                "13k+2m+1 = %llu)\n",
                m, static_cast<unsigned long long>(r.value),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(arith::final_add_cycles(32, m)));
  }

  std::puts("\nEvery number above was measured by executing NOR micro-ops on "
            "simulated memristor cells — the same schedules the fast "
            "functional model reproduces closed-form (and the property "
            "tests hold the two equal).");
  return 0;
}
