// Quickstart: the 60-second tour of the APIM library.
//
// Creates an APIM device, runs exact and approximate arithmetic through
// the in-memory models, and prints the cycle/energy accounting — the same
// numbers the paper's evaluation is built from.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "arith/latency_model.hpp"
#include "core/apim.hpp"

int main() {
  using namespace apim;

  std::puts("== APIM quickstart ==\n");

  // 1. An APIM device with the paper's configuration: 32-bit words, exact
  //    mode, VTEAM-derived energy model.
  core::ApimDevice device;

  // 2. Exact in-memory arithmetic. Every operation reports real costs:
  //    a 32x32 multiply takes PPG (popcount+1) + tree (13/stage) + final
  //    product generation (13 * 64) cycles of 1.1 ns each.
  const std::int64_t product = device.mul_int(123456, 789012);
  std::printf("123456 * 789012 = %lld (exact)\n", static_cast<long long>(product));
  std::printf("  cycles: %llu (expected ~%.0f for random operands)\n",
              static_cast<unsigned long long>(device.stats().cycles),
              arith::expected_multiply_cycles(32, arith::ApproxConfig::exact()));
  std::printf("  energy: %.1f pJ, wall time with %zu lanes: %.2f ns\n",
              device.energy_pj(), device.config().parallel_lanes,
              device.elapsed_seconds() * 1e9);

  // 3. Turn the approximation knob: relax the low 32 bits of the product's
  //    final addition (the paper's maximum setting). High product bits stay
  //    exact because the carries are computed exactly by the majority
  //    sense amplifiers.
  device.reset_stats();
  device.set_relax_bits(32);
  const std::int64_t approx = device.mul_int(123456, 789012);
  std::printf("\n123456 * 789012 = %lld (m=32 relax bits)\n",
              static_cast<long long>(approx));
  std::printf("  relative error: %.2e\n",
              static_cast<double>(approx - product) /
                  static_cast<double>(product));
  std::printf("  cycles: %llu (vs exact: fewer, the relaxed final stage "
              "costs 13k+2m+1)\n",
              static_cast<unsigned long long>(device.stats().cycles));

  // 4. Additions: exact serial (12N+1 cycles) or SA-majority relaxed.
  device.reset_stats();
  device.set_relax_bits(0);
  const std::int64_t sum = device.add(1000000, 2345678);
  std::printf("\n1000000 + 2345678 = %lld in %llu cycles (12*32+1 = %llu)\n",
              static_cast<long long>(sum),
              static_cast<unsigned long long>(device.stats().cycles),
              static_cast<unsigned long long>(arith::serial_add_cycles(32)));

  // 5. Accumulated statistics drive the paper's energy/EDP comparisons.
  device.reset_stats();
  std::int64_t acc = 0;
  for (int i = 1; i <= 16; ++i) acc = device.mac_int(acc, i, i);
  std::printf("\nsum of squares 1..16 = %lld\n", static_cast<long long>(acc));
  std::printf("  %llu multiplies, %llu additions, %llu cycles, %.1f pJ, "
              "EDP %.3e J*s\n",
              static_cast<unsigned long long>(device.stats().multiplies),
              static_cast<unsigned long long>(device.stats().additions),
              static_cast<unsigned long long>(device.stats().cycles),
              device.energy_pj(), device.edp_js());
  return 0;
}
