// Small streaming-statistics helpers used by the quality framework and the
// benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace apim::util {

/// Streaming accumulator: mean / variance via Welford, min / max, count.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// p in [0,1]; linear interpolation between order statistics (the
/// convention serve::Metrics latency percentiles are pinned to): at
/// position p*(n-1), p=0 is the minimum, p=1 the maximum, a single
/// sample is every percentile, and empty input yields 0.0. Copies and
/// sorts, so intended for offline analysis, not hot loops.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Geometric mean; values must be positive.
[[nodiscard]] double geometric_mean(const std::vector<double>& values);

}  // namespace apim::util
