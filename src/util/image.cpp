#include "util/image.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>

#include "util/rng.hpp"

namespace apim::util {

Image::Image(std::size_t width, std::size_t height, std::uint8_t fill)
    : width_(width), height_(height), pixels_(width * height, fill) {}

std::uint8_t Image::at(std::size_t x, std::size_t y) const {
  assert(x < width_ && y < height_);
  return pixels_[y * width_ + x];
}

void Image::set(std::size_t x, std::size_t y, std::uint8_t value) {
  assert(x < width_ && y < height_);
  pixels_[y * width_ + x] = value;
}

std::uint8_t Image::at_clamped(std::int64_t x, std::int64_t y) const noexcept {
  const auto cx = static_cast<std::size_t>(
      std::clamp<std::int64_t>(x, 0, static_cast<std::int64_t>(width_) - 1));
  const auto cy = static_cast<std::size_t>(
      std::clamp<std::int64_t>(y, 0, static_cast<std::int64_t>(height_) - 1));
  return pixels_[cy * width_ + cx];
}

bool Image::write_pgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P5\n" << width_ << ' ' << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels_.data()),
            static_cast<std::streamsize>(pixels_.size()));
  return static_cast<bool>(out);
}

namespace {

/// Smooth value noise: bilinear interpolation of a coarse random lattice.
class ValueNoise {
 public:
  ValueNoise(std::size_t cells_x, std::size_t cells_y, std::uint64_t seed)
      : cells_x_(cells_x), cells_y_(cells_y) {
    Xoshiro256 rng(seed);
    lattice_.resize((cells_x + 1) * (cells_y + 1));
    for (auto& v : lattice_) v = rng.next_double();
  }

  [[nodiscard]] double sample(double u, double v) const {
    const double gx = u * static_cast<double>(cells_x_);
    const double gy = v * static_cast<double>(cells_y_);
    const auto x0 = std::min(static_cast<std::size_t>(gx), cells_x_ - 1);
    const auto y0 = std::min(static_cast<std::size_t>(gy), cells_y_ - 1);
    const double fx = gx - static_cast<double>(x0);
    const double fy = gy - static_cast<double>(y0);
    // Smoothstep fade for C1 continuity at cell borders.
    const double sx = fx * fx * (3.0 - 2.0 * fx);
    const double sy = fy * fy * (3.0 - 2.0 * fy);
    const double a = at(x0, y0), b = at(x0 + 1, y0);
    const double c = at(x0, y0 + 1), d = at(x0 + 1, y0 + 1);
    const double top = a + (b - a) * sx;
    const double bot = c + (d - c) * sx;
    return top + (bot - top) * sy;
  }

 private:
  [[nodiscard]] double at(std::size_t x, std::size_t y) const {
    return lattice_[y * (cells_x_ + 1) + x];
  }
  std::size_t cells_x_, cells_y_;
  std::vector<double> lattice_;
};

std::uint8_t to_pixel(double v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

}  // namespace

Image make_synthetic_image(std::size_t width, std::size_t height,
                           std::uint64_t seed) {
  assert(width >= 4 && height >= 4);
  Image img(width, height);
  Xoshiro256 rng(seed);
  const ValueNoise coarse(8, 8, rng.next());
  const ValueNoise fine(32, 32, rng.next());

  // Base: diagonal gradient plus two octaves of texture.
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const double u = static_cast<double>(x) / static_cast<double>(width - 1);
      const double v = static_cast<double>(y) / static_cast<double>(height - 1);
      const double gradient = 60.0 + 100.0 * (0.5 * u + 0.5 * v);
      const double texture =
          60.0 * coarse.sample(u, v) + 25.0 * fine.sample(u, v);
      img.set(x, y, to_pixel(gradient + texture - 30.0));
    }
  }

  // Hard-edged rectangles: the strong step edges that exercise Sobel/Robert.
  const int rect_count = 4;
  for (int r = 0; r < rect_count; ++r) {
    const auto x0 = rng.next_below(width - 2);
    const auto y0 = rng.next_below(height - 2);
    const auto w = 1 + rng.next_below(std::max<std::uint64_t>(width / 4, 2));
    const auto h = 1 + rng.next_below(std::max<std::uint64_t>(height / 4, 2));
    const auto level = static_cast<std::uint8_t>(30 + rng.next_below(200));
    for (std::size_t y = y0; y < std::min(height, y0 + h); ++y)
      for (std::size_t x = x0; x < std::min(width, x0 + w); ++x)
        img.set(x, y, level);
  }

  // Discs: curved edges at all orientations.
  const int disc_count = 3;
  for (int d = 0; d < disc_count; ++d) {
    const double cx = rng.next_double() * static_cast<double>(width);
    const double cy = rng.next_double() * static_cast<double>(height);
    const double radius =
        (2.0 + rng.next_double() * static_cast<double>(std::min(width, height)) / 6.0);
    const auto level = static_cast<std::uint8_t>(30 + rng.next_below(200));
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        const double dx = static_cast<double>(x) - cx;
        const double dy = static_cast<double>(y) - cy;
        if (dx * dx + dy * dy <= radius * radius) img.set(x, y, level);
      }
    }
  }
  return img;
}

Image make_gradient_image(std::size_t width, std::size_t height) {
  Image img(width, height);
  for (std::size_t y = 0; y < height; ++y)
    for (std::size_t x = 0; x < width; ++x)
      img.set(x, y,
              to_pixel(255.0 * static_cast<double>(x + y) /
                       static_cast<double>(width + height - 2)));
  return img;
}

Image make_checker_image(std::size_t width, std::size_t height,
                         std::size_t cell) {
  assert(cell > 0);
  Image img(width, height);
  for (std::size_t y = 0; y < height; ++y)
    for (std::size_t x = 0; x < width; ++x)
      img.set(x, y, ((x / cell + y / cell) % 2 == 0) ? 220 : 35);
  return img;
}

}  // namespace apim::util
