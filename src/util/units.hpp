// Strong-ish unit helpers for the cycle/energy accounting that runs through
// the whole simulator.
//
// The APIM paper reports latency in MAGIC cycles (1 cycle = 1.1 ns) and
// energy in joules; energy-delay product (EDP) is the headline metric.
// We keep cycles as integers (they are exact counts of micro-operations)
// and energy in picojoules as double (it is derived from device models).
#pragma once

#include <cstdint>

namespace apim::util {

/// Duration of one MAGIC NOR cycle, from the paper (Section 2): 1.1 ns.
inline constexpr double kMagicCycleNs = 1.1;

using Cycles = std::uint64_t;

/// Convert a MAGIC cycle count to seconds.
[[nodiscard]] constexpr double cycles_to_seconds(Cycles c) noexcept {
  return static_cast<double>(c) * kMagicCycleNs * 1e-9;
}

/// Convert a MAGIC cycle count to nanoseconds.
[[nodiscard]] constexpr double cycles_to_ns(Cycles c) noexcept {
  return static_cast<double>(c) * kMagicCycleNs;
}

/// Picojoules to joules.
[[nodiscard]] constexpr double pj_to_joules(double pj) noexcept {
  return pj * 1e-12;
}

/// Energy-delay product in J*s given energy in pJ and latency in cycles.
[[nodiscard]] constexpr double edp_js(double energy_pj, Cycles latency) noexcept {
  return pj_to_joules(energy_pj) * cycles_to_seconds(latency);
}

/// Energy-delay product in J*s given energy in pJ and latency in seconds.
[[nodiscard]] constexpr double edp_js_seconds(double energy_pj, double seconds) noexcept {
  return pj_to_joules(energy_pj) * seconds;
}

}  // namespace apim::util
