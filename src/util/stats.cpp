#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace apim::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  assert(p >= 0.0 && p <= 1.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double geometric_mean(const std::vector<double>& values) {
  assert(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    assert(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace apim::util
