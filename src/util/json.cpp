#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace apim::util {

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, v] : children_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  children_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::append(JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  children_.emplace_back(std::string{}, std::move(value));
  return *this;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string format_number(double d) {
  // JSON has no inf/nan; report them as null so consumers do not choke.
  if (!std::isfinite(d)) return "null";
  char buf[32];
  // %.17g round-trips every double; trim to the shortest representation
  // that still round-trips for readable reports.
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, d);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == d) break;
  }
  return buf;
}

}  // namespace

void JsonValue::dump_to(std::string& out, int depth) const {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string child_pad(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += format_number(number_); break;
    case Kind::kInteger: out += std::to_string(integer_); break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray:
      if (children_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        out += child_pad;
        children_[i].second.dump_to(out, depth + 1);
        if (i + 1 < children_.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += ']';
      break;
    case Kind::kObject:
      if (children_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        out += child_pad;
        out += '"';
        out += json_escape(children_[i].first);
        out += "\": ";
        children_[i].second.dump_to(out, depth + 1);
        if (i + 1 < children_.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += '}';
      break;
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

bool JsonValue::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << dump();
  return static_cast<bool>(out);
}

}  // namespace apim::util
