// Minimal CSV writer so every bench can dump its series for offline
// plotting next to the printed table.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace apim::util {

/// Writes rows of fields with proper quoting. One file per experiment.
class CsvWriter {
 public:
  /// Opens `path` for writing; `ok()` reports failure instead of throwing so
  /// benches can continue printing to stdout when the filesystem is
  /// read-only.
  explicit CsvWriter(const std::string& path);

  [[nodiscard]] bool ok() const noexcept { return static_cast<bool>(out_); }

  void write_row(const std::vector<std::string>& fields);

 private:
  std::ofstream out_;
};

/// Quote a field per RFC 4180 when it contains separators/quotes/newlines.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace apim::util
