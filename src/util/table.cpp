#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace apim::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  assert(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  if (!title_.empty()) out << title_ << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << std::string(widths[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {
std::string printf_format(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}
std::string printf_format_p(int precision, const char* suffix_fmt, double v) {
  char fmt[32];
  std::snprintf(fmt, sizeof fmt, "%%.%d%s", precision, suffix_fmt);
  return printf_format(fmt, v);
}
}  // namespace

std::string format_double(double v, int precision) {
  return printf_format_p(precision, "f", v);
}

std::string format_factor(double v, int precision) {
  return printf_format_p(precision, "fx", v);
}

std::string format_percent(double fraction, int precision) {
  return printf_format_p(precision, "f%%", fraction * 100.0);
}

std::string format_sci(double v, int precision) {
  return printf_format_p(precision, "e", v);
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (bytes == static_cast<double>(static_cast<long long>(bytes))) {
    std::snprintf(buf, sizeof buf, "%lld %s", static_cast<long long>(bytes),
                  kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", bytes, kUnits[unit]);
  }
  return buf;
}

}  // namespace apim::util
