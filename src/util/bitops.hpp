// Bit-manipulation helpers shared across the APIM simulator.
//
// All in-memory arithmetic in APIM is defined at the level of individual
// bits (MAGIC NOR over memristor cells), so the word-level "fast functional
// model" needs precise, well-named bit primitives that mirror what the
// crossbar engine does cell by cell.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace apim::util {

/// Number of set bits in `x`.
[[nodiscard]] constexpr int popcount(std::uint64_t x) noexcept {
  return std::popcount(x);
}

/// Extract bit `i` (0 = LSB) of `x` as 0/1.
[[nodiscard]] constexpr std::uint64_t bit(std::uint64_t x, unsigned i) noexcept {
  assert(i < 64);
  return (x >> i) & 1u;
}

/// Return `x` with bit `i` set to `v` (v must be 0 or 1).
[[nodiscard]] constexpr std::uint64_t with_bit(std::uint64_t x, unsigned i,
                                               std::uint64_t v) noexcept {
  assert(i < 64);
  assert(v <= 1);
  return (x & ~(std::uint64_t{1} << i)) | (v << i);
}

/// Mask with the low `n` bits set, for any `n` in 0..64. The naive
/// `(1ull << n) - 1` is undefined behaviour at n == 64 (shift by the word
/// width); this is the one place that case is handled — every width- or
/// word-parameterized mask in the codebase must go through here (or
/// through `low_mask`, its historical alias) instead of shifting raw
/// literals.
[[nodiscard]] constexpr std::uint64_t mask_n(unsigned n) noexcept {
  assert(n <= 64);
  return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/// Alias of `mask_n` predating it; both names are in wide use.
[[nodiscard]] constexpr std::uint64_t low_mask(unsigned n) noexcept {
  return mask_n(n);
}

/// Keep only the low `n` bits of `x`.
[[nodiscard]] constexpr std::uint64_t truncate(std::uint64_t x, unsigned n) noexcept {
  return x & low_mask(n);
}

/// One-bit majority of three bits (each 0/1). This is exactly what the
/// modified sense amplifier in APIM computes for the carry-out.
[[nodiscard]] constexpr std::uint64_t maj3(std::uint64_t a, std::uint64_t b,
                                           std::uint64_t c) noexcept {
  assert(a <= 1 && b <= 1 && c <= 1);
  return (a & b) | (b & c) | (c & a);
}

/// One-bit full-adder sum (parity) of three bits.
[[nodiscard]] constexpr std::uint64_t sum3(std::uint64_t a, std::uint64_t b,
                                           std::uint64_t c) noexcept {
  assert(a <= 1 && b <= 1 && c <= 1);
  return a ^ b ^ c;
}

/// Word-parallel carry-save 3:2 reduction: the sum word is the bitwise
/// parity, the carry word is the bitwise majority shifted left by one.
/// This is the word-level equivalent of one APIM in-memory CSA stage.
struct CarrySave {
  std::uint64_t sum;
  std::uint64_t carry;
};

[[nodiscard]] constexpr CarrySave csa3(std::uint64_t a, std::uint64_t b,
                                       std::uint64_t c) noexcept {
  return {a ^ b ^ c, ((a & b) | (b & c) | (c & a)) << 1};
}

/// Index (0-based) of the most significant set bit, or -1 for x == 0.
[[nodiscard]] constexpr int msb_index(std::uint64_t x) noexcept {
  return x == 0 ? -1 : 63 - std::countl_zero(x);
}

/// Number of bits needed to represent `x` (0 needs 1 bit by convention).
[[nodiscard]] constexpr unsigned bit_width(std::uint64_t x) noexcept {
  return x == 0 ? 1u : static_cast<unsigned>(std::bit_width(x));
}

}  // namespace apim::util
