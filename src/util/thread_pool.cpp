#include "util/thread_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace apim::util {

namespace {

/// Set while the current thread is executing chunks as a pool worker, so a
/// nested parallel_for degrades to an inline serial loop instead of
/// deadlocking on the pool it is already servicing.
thread_local bool t_in_worker = false;

std::mutex g_config_mutex;
std::size_t g_thread_override = 0;  // 0 = use env / hardware default.
std::unique_ptr<ThreadPool> g_pool;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("APIM_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && parsed >= 1 && parsed <= 512)
      return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t configured_locked() {
  return g_thread_override != 0 ? g_thread_override : default_thread_count();
}

}  // namespace

std::size_t configured_thread_count() {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  return configured_locked();
}

void set_thread_count(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  g_thread_override = threads;
}

bool in_pool_worker() noexcept { return t_in_worker; }

// One parallel_for invocation. Shared with workers through a shared_ptr so
// a worker that wakes up after the caller has already returned still holds
// a live object (it will find no chunks left and exit immediately).
struct ThreadPool::Job {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  const RangeFn* fn = nullptr;

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t next_chunk = 0;  ///< Next unclaimed chunk (guarded by mutex).
  std::size_t in_flight = 0;   ///< Executors inside run_chunks.
  std::exception_ptr error;
};

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;
  std::shared_ptr<Job> current;
  std::uint64_t job_seq = 0;
  bool stop = false;

  std::mutex submit_mutex;  ///< Serializes concurrent parallel_for calls.
  std::vector<std::thread> workers;
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  workers_count_ = threads < 1 ? 0 : threads - 1;
  impl_->workers.reserve(workers_count_);
  for (std::size_t i = 0; i < workers_count_; ++i)
    impl_->workers.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  std::uint64_t seen_seq = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      impl_->work_cv.wait(lock, [&] {
        return impl_->stop || (impl_->current && impl_->job_seq != seen_seq);
      });
      if (impl_->stop) return;
      job = impl_->current;
      seen_seq = impl_->job_seq;
    }
    run_chunks(*job);
  }
}

void ThreadPool::run_chunks(Job& job) {
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    ++job.in_flight;
  }
  for (;;) {
    std::size_t chunk;
    {
      std::lock_guard<std::mutex> lock(job.mutex);
      if (job.next_chunk >= job.chunks) break;
      chunk = job.next_chunk++;
    }
    const std::size_t lo = job.begin + chunk * job.grain;
    const std::size_t hi = std::min(lo + job.grain, job.end);
    try {
      (*job.fn)(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.mutex);
      if (!job.error) job.error = std::current_exception();
      job.next_chunk = job.chunks;  // Abandon the remaining chunks.
    }
  }
  std::lock_guard<std::mutex> lock(job.mutex);
  if (--job.in_flight == 0) job.done_cv.notify_all();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain, const RangeFn& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (end - begin + grain - 1) / grain;

  // Chunk boundaries are identical on every path below; only WHO executes
  // a chunk varies, and the determinism contract makes that irrelevant.
  if (workers_count_ == 0 || chunks == 1 || t_in_worker) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      fn(lo, std::min(lo + grain, end));
    }
    return;
  }

  std::lock_guard<std::mutex> submit_lock(impl_->submit_mutex);
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->chunks = chunks;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->current = job;
    ++impl_->job_seq;
  }
  impl_->work_cv.notify_all();

  run_chunks(*job);  // The caller is an executor too.

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&] {
      return job->next_chunk >= job->chunks && job->in_flight == 0;
    });
    error = job->error;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->current.reset();
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  const std::size_t want = configured_locked();
  if (!g_pool || g_pool->size() != want)
    g_pool = std::make_unique<ThreadPool>(want);
  return *g_pool;
}

}  // namespace apim::util
