#include "util/csv.hpp"

namespace apim::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (!out_) return;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace apim::util
