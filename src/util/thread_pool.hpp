// Fixed-size host thread pool for the embarrassingly-parallel hot paths of
// the simulator (batched multiplies, row-parallel vector adds, per-element
// application kernels).
//
// APIM's modeled concurrency (tiles/lanes running MAGIC schedules at once)
// is independent of host concurrency: the pool only changes how fast the
// host simulates, never what is simulated. The determinism contract every
// caller follows:
//
//  * work is split into chunks whose boundaries depend ONLY on the problem
//    size and a fixed grain — never on the thread count;
//  * each chunk writes to its own disjoint slots / private accumulator;
//  * the caller merges per-chunk accumulators serially in chunk order.
//
// Under that contract any thread count (including 1) produces bit-identical
// values, cycle counts and energies (tests/parallel_exec_test.cpp).
#pragma once

#include <cstddef>
#include <functional>

namespace apim::util {

/// Number of host threads parallel work may use: the `set_thread_count`
/// override if set, else the `APIM_THREADS` environment variable, else
/// `std::thread::hardware_concurrency()`. Always >= 1.
[[nodiscard]] std::size_t configured_thread_count();

/// Process-wide override of the host thread count (the `--threads` knob).
/// Pass 0 to restore the default (env var / hardware concurrency). Takes
/// effect at the next `ThreadPool::global()` call; must not be called
/// while parallel work is in flight.
void set_thread_count(std::size_t threads);

/// True while the calling thread is a pool worker servicing chunks.
/// Long-running subsystems use this as a deadlock guard: a pool worker
/// must never block on work that itself needs the pool (e.g. the serving
/// runtime refuses blocking submissions from inside a worker, see
/// serve::Server::submit).
[[nodiscard]] bool in_pool_worker() noexcept;

class ThreadPool {
 public:
  /// A pool of `threads` total executors: the calling thread plus
  /// `threads - 1` workers. `threads` is clamped to >= 1; a pool of size 1
  /// runs everything inline on the caller.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (workers + the calling thread).
  [[nodiscard]] std::size_t size() const noexcept {
    return workers_count_ + 1;
  }

  /// Called once per chunk with a half-open index range [lo, hi).
  using RangeFn = std::function<void(std::size_t lo, std::size_t hi)>;

  /// Execute `fn` over [begin, end) in chunks of `grain` indices. Chunk
  /// boundaries are `begin + k*grain` regardless of thread count. Blocks
  /// until every chunk has run. The first exception thrown by `fn` is
  /// rethrown here (remaining chunks are abandoned). Calls from inside a
  /// pool worker run inline (serially) to avoid deadlock.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const RangeFn& fn);

  /// The process-wide pool, sized from `configured_thread_count()`. The
  /// pool is rebuilt lazily when the configured count changes.
  [[nodiscard]] static ThreadPool& global();

 private:
  struct Job;

  void worker_loop();
  static void run_chunks(Job& job);

  struct Impl;
  Impl* impl_;
  std::size_t workers_count_ = 0;
};

}  // namespace apim::util
