// Deterministic pseudo-random number generation for workload synthesis.
//
// Every experiment in this repository must be reproducible bit for bit, so
// all randomness flows through this xoshiro256** implementation with
// explicit seeds (we do not use std::random_device or global state).
#pragma once

#include <cstdint>
#include <vector>

namespace apim::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// re-implemented here. Fast, high-quality, and identical on every platform,
/// unlike std::mt19937 + distribution combinations which libc++/libstdc++
/// may implement differently.
class Xoshiro256 {
 public:
  /// Seeds the state from a single 64-bit value via splitmix64, which is the
  /// canonical way to expand a small seed to the 256-bit state.
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling, so
  /// the result is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (deterministic; caches the second value).
  double next_gaussian() noexcept;

  /// Vector of `n` raw values, convenient for workload generators.
  std::vector<std::uint64_t> take(std::size_t n);

  // UniformRandomBitGenerator interface so the generator also plugs into
  // <algorithm> shuffles when needed.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }
  result_type operator()() noexcept { return next(); }

 private:
  std::uint64_t s_[4]{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// splitmix64 step; exposed because tests and seeding logic use it directly.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace apim::util
