// Grayscale images and deterministic synthetic image generation.
//
// The paper evaluates the image kernels (Sobel, Robert, Sharpen) on random
// Caltech-101 photographs. That dataset is not available offline, so we
// substitute deterministic synthetic images that mix smooth gradients,
// hard-edged shapes, and band-limited texture noise — the three feature
// classes that drive edge-detector behaviour (see DESIGN.md, substitution
// table). Generation is seeded and reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apim::util {

/// Row-major 8-bit grayscale image.
class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, std::uint8_t fill = 0);

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t pixel_count() const noexcept {
    return width_ * height_;
  }

  [[nodiscard]] std::uint8_t at(std::size_t x, std::size_t y) const;
  void set(std::size_t x, std::size_t y, std::uint8_t value);

  /// Clamped access: coordinates outside the image are clamped to the
  /// border, the usual convolution boundary rule.
  [[nodiscard]] std::uint8_t at_clamped(std::int64_t x, std::int64_t y) const noexcept;

  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const noexcept {
    return pixels_;
  }
  [[nodiscard]] std::vector<std::uint8_t>& pixels() noexcept { return pixels_; }

  /// Write a binary PGM (P5). Returns false on I/O failure.
  bool write_pgm(const std::string& path) const;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// Deterministic stand-in for a natural photograph: diagonal luminance
/// gradient + rectangles and discs (hard edges) + value-noise texture.
[[nodiscard]] Image make_synthetic_image(std::size_t width, std::size_t height,
                                         std::uint64_t seed);

/// Smooth ramp only (no edges); useful to test near-zero gradient response.
[[nodiscard]] Image make_gradient_image(std::size_t width, std::size_t height);

/// Checkerboard with the given cell size; maximal edge density.
[[nodiscard]] Image make_checker_image(std::size_t width, std::size_t height,
                                       std::size_t cell);

}  // namespace apim::util
