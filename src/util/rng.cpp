#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace apim::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Rejection sampling: discard the biased tail of the 64-bit range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Xoshiro256::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t r = (span == 0) ? next() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + r);
}

double Xoshiro256::next_double() noexcept {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::next_double_in(double lo, double hi) noexcept {
  assert(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Xoshiro256::next_gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

std::vector<std::uint64_t> Xoshiro256::take(std::size_t n) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace apim::util
