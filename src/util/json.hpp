// Minimal ordered JSON document builder for machine-readable bench output.
//
// The bench binaries print human tables and CSVs; CI additionally wants a
// structured artifact it can archive and diff across commits (`--json`).
// This is a writer, not a parser: a JsonValue is a tagged tree (null, bool,
// number, string, array, object) whose object keys keep insertion order so
// emitted reports are stable byte-for-byte across runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace apim::util {

class JsonValue {
 public:
  /// Default-constructed value is JSON null.
  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}            // NOLINT
  JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}      // NOLINT
  JsonValue(int i)                                               // NOLINT
      : kind_(Kind::kInteger), integer_(i) {}
  JsonValue(std::int64_t i) : kind_(Kind::kInteger), integer_(i) {}  // NOLINT
  JsonValue(std::uint64_t u)                                     // NOLINT
      : kind_(Kind::kInteger), integer_(static_cast<std::int64_t>(u)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT
  JsonValue(std::string s)                                        // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}

  [[nodiscard]] static JsonValue object();
  [[nodiscard]] static JsonValue array();

  /// Object field setter; overwrites an existing key in place (order kept).
  JsonValue& set(const std::string& key, JsonValue value);
  /// Array element append.
  JsonValue& append(JsonValue value);

  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] std::size_t size() const noexcept { return children_.size(); }

  /// Serialize with two-space indentation and a trailing newline at the
  /// top level; numbers use shortest-round-trip formatting.
  [[nodiscard]] std::string dump() const;

  /// Serialize to `path`; returns false when the file cannot be written
  /// (read-only filesystem), matching CsvWriter's no-throw convention.
  bool write_file(const std::string& path) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray, kObject };

  void dump_to(std::string& out, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  std::string string_;
  /// Array elements (empty key) or object fields, in insertion order.
  std::vector<std::pair<std::string, JsonValue>> children_;
};

/// RFC 8259 string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace apim::util
