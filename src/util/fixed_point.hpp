// Fixed-point value representation used to map the OpenCL kernels onto the
// APIM integer datapath.
//
// APIM computes on N-bit integer magnitudes stored in crossbar rows. The
// paper's applications (Sobel, FFT, ...) use real-valued data, so the app
// layer quantizes to Qm.f fixed point, runs every add/multiply through the
// APIM model, and converts back for quality evaluation. The format is a
// runtime value (not a template parameter) because the adaptive tuner
// changes precision per application at runtime.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdlib>

#include "util/bitops.hpp"

namespace apim::util {

/// Describes a signed fixed-point format with `integer_bits` + `frac_bits`
/// magnitude bits (sign handled separately, as APIM computes on magnitudes).
struct FixedPointFormat {
  unsigned integer_bits = 16;
  unsigned frac_bits = 16;

  [[nodiscard]] constexpr unsigned total_bits() const noexcept {
    return integer_bits + frac_bits;
  }
  [[nodiscard]] constexpr double scale() const noexcept {
    return static_cast<double>(std::uint64_t{1} << frac_bits);
  }
  /// Largest representable magnitude.
  [[nodiscard]] constexpr double max_value() const noexcept {
    return static_cast<double>(low_mask(total_bits())) / scale();
  }
  friend constexpr bool operator==(const FixedPointFormat&,
                                   const FixedPointFormat&) noexcept = default;
};

/// The Q16.16 default used by most kernels in this reproduction (32-bit
/// magnitudes, matching the paper's 32x32-bit multiplier).
inline constexpr FixedPointFormat kQ16_16{16, 16};
/// Q8.8 (16-bit) used by the image kernels operating on 8-bit pixels.
inline constexpr FixedPointFormat kQ8_8{8, 8};

/// A sign-magnitude fixed-point value. APIM's in-memory multiplier operates
/// on unsigned magnitudes; signs are resolved by XOR at the app layer, so we
/// model exactly that split.
struct Fixed {
  std::uint64_t magnitude = 0;  ///< `total_bits()`-wide magnitude.
  bool negative = false;

  [[nodiscard]] constexpr std::int64_t signed_raw() const noexcept {
    const auto mag = static_cast<std::int64_t>(magnitude);
    return negative ? -mag : mag;
  }
};

/// Quantize a real value to format `fmt`, saturating at the format limits.
[[nodiscard]] constexpr Fixed to_fixed(double value, FixedPointFormat fmt) noexcept {
  const bool neg = value < 0.0;
  double mag = neg ? -value : value;
  if (mag > fmt.max_value()) mag = fmt.max_value();
  // Round to nearest.
  const auto raw = static_cast<std::uint64_t>(mag * fmt.scale() + 0.5);
  return Fixed{truncate(raw, fmt.total_bits()), neg};
}

/// Convert back to a real value.
[[nodiscard]] constexpr double from_fixed(Fixed v, FixedPointFormat fmt) noexcept {
  const double mag = static_cast<double>(v.magnitude) / fmt.scale();
  return v.negative ? -mag : mag;
}

/// Convert a signed raw integer (in `fmt` fixed-point units) to Fixed.
[[nodiscard]] constexpr Fixed fixed_from_raw(std::int64_t raw,
                                             FixedPointFormat fmt) noexcept {
  const bool neg = raw < 0;
  const auto mag = static_cast<std::uint64_t>(neg ? -raw : raw);
  return Fixed{truncate(mag, fmt.total_bits()), neg};
}

/// Rescale a double-width product magnitude (2*frac_bits fractional bits)
/// back into `fmt` by discarding the low frac_bits, saturating on overflow.
[[nodiscard]] constexpr std::uint64_t rescale_product(std::uint64_t product,
                                                      FixedPointFormat fmt) noexcept {
  const std::uint64_t shifted = product >> fmt.frac_bits;
  const std::uint64_t cap = low_mask(fmt.total_bits());
  return shifted > cap ? cap : shifted;
}

}  // namespace apim::util
