// ASCII table rendering for the benchmark harnesses.
//
// Every bench binary reproduces one table/figure of the paper and prints it
// as an aligned text table (plus CSV via util/csv.hpp for plotting), so the
// formatting lives in one place.
#pragma once

#include <string>
#include <vector>

namespace apim::util {

/// Column-aligned text table with a header row and optional title.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Render with single-space-padded columns and a rule under the header.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by the bench printers.
[[nodiscard]] std::string format_double(double v, int precision = 3);
/// "123x" style improvement factors, e.g. for EDP columns.
[[nodiscard]] std::string format_factor(double v, int precision = 1);
/// Percentage with a trailing '%'.
[[nodiscard]] std::string format_percent(double fraction, int precision = 1);
/// Scientific notation, e.g. "1.40e-16".
[[nodiscard]] std::string format_sci(double v, int precision = 2);
/// Human-readable byte size ("32 MB", "1 GB").
[[nodiscard]] std::string format_bytes(double bytes);

}  // namespace apim::util
