#include "reliability/bist.hpp"

#include <cassert>

namespace apim::reliability {

namespace {

using crossbar::CellAddr;

/// One march element over a row: drive every cell to `value` (one
/// row-parallel driver cycle), then read every cell back through the SAs
/// (one cycle) and compare. Returns true when every cell held `value`.
bool march_element(crossbar::BlockedCrossbar& xbar, std::size_t block,
                   std::size_t row, std::size_t col_begin, std::size_t col_end,
                   bool value, const device::EnergyModel& em,
                   BistCost& cost) {
  bool ok = true;
  for (std::size_t c = col_begin; c < col_end; ++c) {
    const bool flipped = xbar.set(CellAddr{block, row, c}, value);
    cost.energy_pj += em.write_energy_pj(flipped);
  }
  cost.cycles += 1;  // All bitline drivers fire together.
  for (std::size_t c = col_begin; c < col_end; ++c) {
    if (xbar.get(CellAddr{block, row, c}) != value) ok = false;
    cost.energy_pj += em.e_read_pj;
  }
  cost.cycles += 1;  // Row-parallel SA readback.
  return ok;
}

/// Full march over one row: W0 R0, W1 R1, W0 restore.
bool march_row(crossbar::BlockedCrossbar& xbar, std::size_t block,
               std::size_t row, std::size_t col_begin, std::size_t col_end,
               const device::EnergyModel& em, BistCost& cost) {
  const bool zeros_ok =
      march_element(xbar, block, row, col_begin, col_end, false, em, cost);
  const bool ones_ok =
      march_element(xbar, block, row, col_begin, col_end, true, em, cost);
  // Restore the zero background (scratch convention between operations).
  for (std::size_t c = col_begin; c < col_end; ++c) {
    const bool flipped = xbar.set(CellAddr{block, row, c}, false);
    cost.energy_pj += em.write_energy_pj(flipped);
  }
  cost.cycles += 1;
  return zeros_ok && ones_ok;
}

}  // namespace

MarchReport march_scan(crossbar::BlockedCrossbar& xbar, std::size_t block,
                       std::size_t row_begin, std::size_t row_end,
                       std::size_t col_begin, std::size_t col_end,
                       const device::EnergyModel& em) {
  assert(row_end <= xbar.config().rows);
  assert(col_end <= xbar.config().cols);
  MarchReport report;
  for (std::size_t r = row_begin; r < row_end; ++r) {
    if (!march_row(xbar, block, r, col_begin, col_end, em, report.cost))
      report.faulty_rows.push_back(r);
    ++report.rows_scanned;
    report.cells_tested += col_end - col_begin;
  }
  return report;
}

RepairReport scan_and_repair(crossbar::BlockedCrossbar& xbar,
                             std::size_t block, std::size_t row_begin,
                             std::size_t row_end, std::size_t col_begin,
                             std::size_t col_end,
                             const device::EnergyModel& em) {
  RepairReport report;
  const MarchReport scan =
      march_scan(xbar, block, row_begin, row_end, col_begin, col_end, em);
  report.cost.merge(scan.cost);
  report.faulty_rows = scan.faulty_rows.size();
  for (const std::size_t row : scan.faulty_rows) {
    bool repaired = false;
    // A replacement spare can itself be defective: re-test after every
    // remap and burn the next spare until the row comes back clean.
    while (xbar.remap_row(block, row)) {
      ++report.spares_used;
      if (march_row(xbar, block, row, col_begin, col_end, em, report.cost)) {
        repaired = true;
        break;
      }
    }
    if (!repaired) ++report.unrepaired_rows;
  }
  return report;
}

std::size_t quarantine_faulty_bands(crossbar::BlockedCrossbar& xbar,
                                    std::size_t block,
                                    crossbar::RotatingScratchAllocator& bands,
                                    std::size_t band_rows,
                                    std::size_t col_begin,
                                    std::size_t col_end,
                                    const device::EnergyModel& em,
                                    BistCost& cost) {
  std::size_t quarantined = 0;
  for (std::size_t i = 0; i < bands.band_count(); ++i) {
    const std::size_t base = bands.band_base(i);
    const MarchReport scan = march_scan(xbar, block, base, base + band_rows,
                                        col_begin, col_end, em);
    cost.merge(scan.cost);
    if (!scan.faulty_rows.empty() && !bands.band_quarantined(i)) {
      bands.quarantine_band(i);
      ++quarantined;
    }
  }
  return quarantined;
}

}  // namespace apim::reliability
