// Monte Carlo fault-injection campaigns (the reliability experiment
// driver, bench/ext_fault_campaign.cpp).
//
// A campaign models each of `lanes` compute lanes as a real
// BlockedCrossbar — one data block plus `domains` redundant processing
// blocks and `spare_rows` physical spares — and, per trial:
//
//  1. samples stuck-at defects over the processing blocks' scratch region
//     (spare rows included: replacements can be defective too) at
//     `stuck_rate` per cell, deterministically from the trial seed;
//  2. under kDetectAndRepair, runs the BIST march scan and spare-row
//     repair (reliability/bist.hpp) over every scratch region, charging
//     its real cycle/energy cost to the device that runs the apps;
//  3. projects the SURVIVING stuck cells onto functional output bits
//     (reliability/fault_state.hpp) — even scratch rows belong to the
//     multiplier's product register, odd rows to the adder output — so a
//     successful remap silently clears the functional fault, exactly as
//     it would in hardware;
//  4. runs the requested applications with the resulting LaneFaultTable
//     and policy installed, and scores each output against the app's
//     golden reference with quality::evaluate_qos.
//
// The same trial seed produces the same physical fault map for every
// policy, so resilience curves compare policies on identical silicon.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "quality/qos.hpp"
#include "reliability/policy.hpp"
#include "util/units.hpp"

namespace apim::reliability {

struct CampaignConfig {
  /// Applications to score (apps::make_application names).
  std::vector<std::string> apps{"Sobel", "Robert", "Sharpen"};
  std::size_t elements = 4096;       ///< Workload size per app.
  std::uint64_t workload_seed = 2017;
  std::uint64_t fault_seed = 0xFA177;
  std::size_t trials = 3;            ///< Independent fault maps.
  double stuck_rate = 1e-3;          ///< Per-cell stuck-at probability.
  double transient_rate = 0.0;       ///< Per-op soft bit-flip probability.
  ReliabilityPolicy policy = ReliabilityPolicy::kOff;
  std::size_t lanes = 64;            ///< Modeled fabrics; ops round-robin.
  std::size_t domains = 3;           ///< Processing blocks per lane (the
                                     ///< retry ladder and the triple vote
                                     ///< both need 3).
  std::size_t scratch_rows = 16;     ///< Scanned scratch rows per block.
  std::size_t spare_rows = 4;        ///< Physical spares per block.
  core::ApimConfig device{};         ///< Base device configuration.
};

/// One (application, trial) execution under a sampled fault map.
struct CampaignRun {
  std::string app;
  std::size_t trial = 0;
  ReliabilityPolicy policy = ReliabilityPolicy::kOff;
  quality::QosEvaluation qos;

  // Fabric state of this trial (shared by the trial's apps).
  std::size_t injected_cells = 0;   ///< Physical stuck cells sampled.
  std::size_t projected_bits = 0;   ///< Functional stuck bits after repair.
  std::size_t spares_used = 0;
  std::size_t unrepaired_rows = 0;

  // Runtime reliability activity (core::ExecStats counters).
  std::uint64_t residue_checks = 0;
  std::uint64_t faults_detected = 0;
  std::uint64_t retries = 0;
  std::uint64_t votes = 0;
  std::uint64_t escalations = 0;

  util::Cycles cycles = 0;
  double energy_pj = 0.0;
  /// Fractional cost vs the same app on a clean, unprotected device
  /// (0.07 = 7% more cycles / energy).
  double cycle_overhead = 0.0;
  double energy_overhead = 0.0;

  bool dropped_to_exact = false;  ///< Escalation: approximation disabled.
  bool degraded = false;          ///< A retry ladder was exhausted.
};

struct CampaignResult {
  std::vector<CampaignRun> runs;

  /// Fraction of runs whose output met the app's QoS criterion.
  [[nodiscard]] double accept_fraction() const noexcept;
  [[nodiscard]] bool all_acceptable() const noexcept;
};

/// Execute the campaign. Deterministic: identical config => identical
/// result, for every host thread count (tests/parallel_exec_test.cpp).
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace apim::reliability
