#include "reliability/campaign.hpp"

#include <cassert>
#include <memory>
#include <utility>

#include "apps/app.hpp"
#include "core/apim.hpp"
#include "crossbar/crossbar.hpp"
#include "reliability/bist.hpp"
#include "util/rng.hpp"

namespace apim::reliability {

namespace {

/// The physical fault state of one trial: fault map sampled, repair run
/// (policy permitting), residue projected to the functional model.
struct TrialFabric {
  LaneFaultTable faults;
  std::size_t injected_cells = 0;
  std::size_t projected_bits = 0;
  std::size_t spares_used = 0;
  std::size_t unrepaired_rows = 0;
  BistCost repair_cost;
};

TrialFabric build_fabric(const CampaignConfig& cfg, std::uint64_t trial_seed) {
  const unsigned word_bits = cfg.device.word_bits;
  const std::size_t cols = 2 * static_cast<std::size_t>(word_bits);
  const bool repair = cfg.policy == ReliabilityPolicy::kDetectAndRepair;
  TrialFabric fabric;
  fabric.faults = LaneFaultTable(cfg.lanes, cfg.domains);
  util::Xoshiro256 rng(trial_seed);
  for (std::size_t lane = 0; lane < cfg.lanes; ++lane) {
    crossbar::BlockedCrossbar xbar(crossbar::CrossbarConfig{
        1 + cfg.domains, cfg.scratch_rows, cols, cfg.spare_rows});
    // Sample defects over every processing block, physical spares
    // included. The draw sequence depends only on the trial seed and the
    // fabric geometry — never on the policy — so every policy sees the
    // same silicon.
    for (std::size_t d = 0; d < cfg.domains; ++d) {
      crossbar::CrossbarBlock& blk = xbar.block(1 + d);
      for (std::size_t r = 0; r < blk.rows(); ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          if (rng.next_double() < cfg.stuck_rate) {
            blk.inject_stuck_at(r, c, (rng.next() & 1) != 0);
            ++fabric.injected_cells;
          }
        }
      }
    }
    if (repair) {
      for (std::size_t d = 0; d < cfg.domains; ++d) {
        const RepairReport rep =
            scan_and_repair(xbar, 1 + d, 0, cfg.scratch_rows, 0, cols,
                            cfg.device.energy);
        fabric.spares_used += rep.spares_used;
        fabric.unrepaired_rows += rep.unrepaired_rows;
        fabric.repair_cost.merge(rep.cost);
      }
    }
    // Project the stuck cells that survive repair onto functional output
    // bits: even scratch rows hold the multiplier's 2N-bit product
    // register, odd rows the adder's (N+1)-bit output. Reading through
    // physical_row means a remapped row contributes its (healthy or
    // still-defective) spare, not the quarantined original.
    for (std::size_t d = 0; d < cfg.domains; ++d) {
      const crossbar::CrossbarBlock& blk = xbar.block(1 + d);
      for (std::size_t r = 0; r < cfg.scratch_rows; ++r) {
        const std::size_t pr = xbar.physical_row(1 + d, r);
        for (std::size_t c = 0; c < cols; ++c) {
          const int stuck = blk.stuck_state(pr, c);
          if (stuck < 0) continue;
          const bool value = stuck != 0;
          if (r % 2 == 0) {
            fabric.faults.add_mul_stuck(lane, d, static_cast<unsigned>(c),
                                        value);
            ++fabric.projected_bits;
          } else if (c <= word_bits) {
            fabric.faults.add_add_stuck(lane, d, static_cast<unsigned>(c),
                                        value);
            ++fabric.projected_bits;
          }
        }
      }
    }
  }
  std::uint64_t transient_state = trial_seed ^ 0x7472616E7369656Eull;
  fabric.faults.set_transient(cfg.transient_rate,
                              util::splitmix64(transient_state));
  return fabric;
}

}  // namespace

double CampaignResult::accept_fraction() const noexcept {
  if (runs.empty()) return 1.0;
  std::size_t ok = 0;
  for (const CampaignRun& r : runs) ok += r.qos.acceptable ? 1u : 0u;
  return static_cast<double>(ok) / static_cast<double>(runs.size());
}

bool CampaignResult::all_acceptable() const noexcept {
  for (const CampaignRun& r : runs) {
    if (!r.qos.acceptable) return false;
  }
  return true;
}

CampaignResult run_campaign(const CampaignConfig& cfg) {
  assert(cfg.domains >= 1);
  assert(cfg.lanes >= 1);

  // Per-app context reused across trials: workload, golden reference, and
  // the clean unprotected run that anchors the overhead fractions.
  struct AppContext {
    std::unique_ptr<apps::Application> app;
    std::vector<double> golden;
    util::Cycles clean_cycles = 0;
    double clean_energy_pj = 0.0;
  };
  std::vector<AppContext> contexts;
  for (const std::string& name : cfg.apps) {
    AppContext ctx;
    ctx.app = apps::make_application(name);
    assert(ctx.app != nullptr && "unknown application name");
    if (!ctx.app) continue;
    ctx.app->generate(cfg.elements, cfg.workload_seed);
    ctx.golden = ctx.app->run_golden();
    core::ApimDevice clean{cfg.device};
    (void)ctx.app->run_apim(clean);
    ctx.clean_cycles = clean.stats().cycles;
    ctx.clean_energy_pj = clean.energy_pj();
    contexts.push_back(std::move(ctx));
  }

  CampaignResult result;
  std::uint64_t seed_state = cfg.fault_seed;
  for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
    const std::uint64_t trial_seed = util::splitmix64(seed_state);
    const TrialFabric fabric = build_fabric(cfg, trial_seed);
    for (AppContext& ctx : contexts) {
      core::ApimConfig dev_cfg = cfg.device;
      dev_cfg.reliability.policy = cfg.policy;
      dev_cfg.reliability.faults = fabric.faults;
      bool dropped = false;
      if (cfg.policy == ReliabilityPolicy::kDetectAndRepair &&
          fabric.projected_bits > 0 && !dev_cfg.approx.is_exact()) {
        // Middle rung of the escalation ladder: faults survived the spare
        // repair, so approximation is dropped to exact mode to give the
        // residue checks authority over every op.
        dev_cfg.approx = arith::ApproxConfig::exact();
        dropped = true;
      }
      core::ApimDevice device{dev_cfg};
      device.charge_reliability_overhead(fabric.repair_cost.cycles,
                                         fabric.repair_cost.energy_pj);
      const std::vector<double> out = ctx.app->run_apim(device);

      CampaignRun run;
      run.app = ctx.app->name();
      run.trial = trial;
      run.policy = cfg.policy;
      run.qos = quality::evaluate_qos(ctx.app->qos(), ctx.golden, out);
      run.injected_cells = fabric.injected_cells;
      run.projected_bits = fabric.projected_bits;
      run.spares_used = fabric.spares_used;
      run.unrepaired_rows = fabric.unrepaired_rows;
      const core::ExecStats& s = device.stats();
      run.residue_checks = s.residue_checks;
      run.faults_detected = s.faults_detected;
      run.retries = s.retries;
      run.votes = s.votes;
      run.escalations = s.escalations;
      run.cycles = s.cycles;
      run.energy_pj = device.energy_pj();
      run.cycle_overhead =
          ctx.clean_cycles == 0
              ? 0.0
              : static_cast<double>(s.cycles) /
                        static_cast<double>(ctx.clean_cycles) -
                    1.0;
      run.energy_overhead = ctx.clean_energy_pj == 0.0
                                ? 0.0
                                : run.energy_pj / ctx.clean_energy_pj - 1.0;
      run.dropped_to_exact = dropped;
      run.degraded = device.degraded();
      result.runs.push_back(std::move(run));
    }
  }
  return result;
}

}  // namespace apim::reliability
