// Built-in self test: march scan and spare-row repair for the crossbar.
//
// Online detection for the fabric itself. A march test writes a known
// background into a row, reads it back, writes the complement, reads it
// back, and restores — any cell that cannot hold both values is defective,
// so a single pass flags every stuck-at fault in the scanned region
// (march element W0 R0 W1 R1 W0, a reduced MATS+ march; soundness is
// property-tested in tests/reliability_test.cpp: a healthy fabric is never
// flagged, a seeded stuck-at in a scanned row always is).
//
// The scan is destructive, so it only ever runs over SCRATCH rows of
// processing blocks — their contents are re-initialized by every MAGIC
// schedule anyway. Costs are real: writes/reads go through the crossbar
// (adding wear, as physical BIST does) and the reported cycle/energy cost
// is charged to the device that owns the fabric
// (ApimDevice::charge_reliability_overhead).
//
// Repair: scan_and_repair remaps every flagged row onto a spare
// (BlockedCrossbar::remap_row) and re-tests the replacement, burning
// additional spares when a spare itself is defective, until the logical
// row tests clean or the block runs out of spares (the row is then
// reported unrepaired and survives only via the device's retry ladder).
#pragma once

#include <cstddef>
#include <vector>

#include "crossbar/crossbar.hpp"
#include "crossbar/scratch_allocator.hpp"
#include "device/energy_model.hpp"
#include "util/units.hpp"

namespace apim::reliability {

struct BistCost {
  util::Cycles cycles = 0;
  double energy_pj = 0.0;

  void merge(const BistCost& other) noexcept {
    cycles += other.cycles;
    energy_pj += other.energy_pj;
  }
};

struct MarchReport {
  std::vector<std::size_t> faulty_rows;  ///< Logical rows that failed.
  std::size_t rows_scanned = 0;
  std::size_t cells_tested = 0;
  BistCost cost;
};

/// March-scan logical rows [row_begin, row_end) of `block`, columns
/// [col_begin, col_end). Accesses go through the crossbar's decoder path,
/// so already-remapped rows test their spare replacement.
[[nodiscard]] MarchReport march_scan(crossbar::BlockedCrossbar& xbar,
                                     std::size_t block, std::size_t row_begin,
                                     std::size_t row_end,
                                     std::size_t col_begin,
                                     std::size_t col_end,
                                     const device::EnergyModel& em);

struct RepairReport {
  std::size_t faulty_rows = 0;     ///< Rows the initial scan flagged.
  std::size_t spares_used = 0;     ///< Spares consumed (incl. bad spares).
  std::size_t unrepaired_rows = 0; ///< Still faulty after spares ran out.
  BistCost cost;
};

/// Scan the region and quarantine every faulty row onto a spare,
/// re-testing each replacement. Returns what was found, fixed, and spent.
RepairReport scan_and_repair(crossbar::BlockedCrossbar& xbar,
                             std::size_t block, std::size_t row_begin,
                             std::size_t row_end, std::size_t col_begin,
                             std::size_t col_end,
                             const device::EnergyModel& em);

/// Scan each band of `bands` (rows [base, base + band_rows) of `block`)
/// and quarantine the defective ones in the allocator, so subsequent
/// scratch allocation rotates over healthy bands only. Returns the number
/// of bands quarantined; the scan cost accumulates into `cost`.
std::size_t quarantine_faulty_bands(crossbar::BlockedCrossbar& xbar,
                                    std::size_t block,
                                    crossbar::RotatingScratchAllocator& bands,
                                    std::size_t band_rows,
                                    std::size_t col_begin,
                                    std::size_t col_end,
                                    const device::EnergyModel& em,
                                    BistCost& cost);

}  // namespace apim::reliability
