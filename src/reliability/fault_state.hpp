// Functional fault state of an APIM device's compute lanes.
//
// The physical failure modes live in the crossbar (stuck-at cells injected
// into CrossbarBlock, endurance wear); applications, however, execute
// through the word-level functional models, which never touch a simulated
// fabric. LaneFaultTable is the bridge: the fault campaign
// (reliability/campaign.hpp) samples defects on real BlockedCrossbar
// instances — one per modeled lane — and projects every stuck scratch cell
// that the multiply/add schedules would traverse onto the corresponding
// OUTPUT BIT of the functional unit. ApimDevice then applies the
// projection to every raw result, so a stuck product-register cell
// corrupts every product computed on that lane, exactly like
// FaultInjection.MagicNorOnFaultyOutputCell does at the bit level.
//
// The table is a plain value type carried inside ApimConfig, so
// apps::parallel_map worker clones ("same config, fresh stats") inherit
// the fault state and campaign results are bit-exact for every host
// thread count. Transient faults are therefore decided by a STATELESS
// hash of (seed, op index, domain, attempt) rather than a stateful RNG:
// re-executions draw fresh noise, yet any replay of the same op sequence
// sees the same faults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace apim::reliability {

/// One stuck output bit of a functional unit on one lane/domain.
struct StuckBit {
  unsigned bit = 0;
  bool value = false;
};

/// Stuck output bits of the multiplier and the adder of one (lane, domain).
/// A "domain" is one of the structurally identical processing blocks a
/// lane can run its schedule on (primary = 0); retry and voting execute on
/// higher domains, whose defects are independent.
struct UnitFaults {
  std::vector<StuckBit> mul_bits;
  std::vector<StuckBit> add_bits;
};

class LaneFaultTable {
 public:
  LaneFaultTable() = default;
  LaneFaultTable(std::size_t lanes, std::size_t domains)
      : lanes_(lanes), domains_(domains == 0 ? 1 : domains),
        table_(lanes * (domains == 0 ? 1 : domains)) {}

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::size_t domains() const noexcept { return domains_; }

  /// True when the table can never perturb a result: no stuck bits and a
  /// zero transient rate. ApimDevice's fast path short-circuits on this.
  [[nodiscard]] bool empty() const noexcept {
    return stuck_count_ == 0 && transient_rate_ == 0.0;
  }

  [[nodiscard]] std::size_t stuck_count() const noexcept {
    return stuck_count_;
  }

  void add_mul_stuck(std::size_t lane, std::size_t domain, unsigned bit,
                     bool value) {
    table_[index(lane, domain)].mul_bits.push_back(StuckBit{bit, value});
    ++stuck_count_;
  }
  void add_add_stuck(std::size_t lane, std::size_t domain, unsigned bit,
                     bool value) {
    table_[index(lane, domain)].add_bits.push_back(StuckBit{bit, value});
    ++stuck_count_;
  }

  /// Spare-row repair of up to `max_bits` stuck bits, in a deterministic
  /// order (lane-major, multiplier before adder, oldest injection first):
  /// the march-test scrub (serve/health.hpp) calls this to model remapping
  /// the defective scratch rows onto spares, which clears the projected
  /// functional fault exactly as BlockedCrossbar::remap_row does at the
  /// bit level. Returns how many bits were cleared. Transient state is
  /// untouched — soft errors have no cell to remap.
  std::size_t repair_stuck(std::size_t max_bits) {
    std::size_t repaired = 0;
    for (UnitFaults& f : table_) {
      for (std::vector<StuckBit>* bits : {&f.mul_bits, &f.add_bits}) {
        while (!bits->empty() && repaired < max_bits) {
          bits->erase(bits->begin());
          ++repaired;
        }
      }
      if (repaired >= max_bits) break;
    }
    stuck_count_ -= repaired;
    return repaired;
  }

  /// Transient (soft) bit-flip model: each executed op independently
  /// flips one uniformly chosen output bit with probability `rate`.
  void set_transient(double rate, std::uint64_t seed) {
    transient_rate_ = rate;
    transient_seed_ = seed;
  }
  [[nodiscard]] double transient_rate() const noexcept {
    return transient_rate_;
  }

  /// Lane an op lands on: ops round-robin over the modeled lanes.
  [[nodiscard]] std::size_t lane_of(std::uint64_t op_index) const noexcept {
    return lanes_ <= 1 ? 0 : static_cast<std::size_t>(op_index %
                                                      lanes_);
  }

  /// Corrupt `value` (an `out_bits`-wide result) with the stuck bits of
  /// (lane, domain) and one possible transient flip. `attempt`
  /// distinguishes re-executions of the same logical op so a retry draws
  /// fresh transient noise.
  [[nodiscard]] std::uint64_t apply(std::size_t lane, std::size_t domain,
                                    bool is_mul, std::uint64_t value,
                                    unsigned out_bits,
                                    std::uint64_t op_index,
                                    unsigned attempt) const {
    if (lanes_ != 0) {
      const UnitFaults& f = table_[index(lane, domain % domains_)];
      const std::vector<StuckBit>& bits = is_mul ? f.mul_bits : f.add_bits;
      for (const StuckBit& s : bits) {
        if (s.bit >= out_bits) continue;
        const std::uint64_t mask = std::uint64_t{1} << s.bit;
        value = s.value ? (value | mask) : (value & ~mask);
      }
    }
    if (transient_rate_ > 0.0) {
      // Stateless per-(op, domain, attempt) draw; splitmix64 both mixes
      // and advances the key.
      std::uint64_t key = transient_seed_ ^
                          (op_index * 0x9E3779B97F4A7C15ull) ^
                          ((static_cast<std::uint64_t>(domain) * 8 +
                            attempt + 1) *
                           0xD1B54A32D192ED03ull) ^
                          (is_mul ? 0x8BB84B93962EACC9ull : 0);
      const std::uint64_t draw = util::splitmix64(key);
      const double u =
          static_cast<double>(draw >> 11) * 0x1.0p-53;  // [0, 1)
      if (u < transient_rate_) {
        const unsigned bit = static_cast<unsigned>(util::splitmix64(key) %
                                                   out_bits);
        value ^= std::uint64_t{1} << bit;
      }
    }
    return value;
  }

 private:
  [[nodiscard]] std::size_t index(std::size_t lane,
                                  std::size_t domain) const noexcept {
    return lane * domains_ + domain;
  }

  std::size_t lanes_ = 0;
  std::size_t domains_ = 1;
  std::vector<UnitFaults> table_;
  std::size_t stuck_count_ = 0;
  double transient_rate_ = 0.0;
  std::uint64_t transient_seed_ = 0;
};

}  // namespace apim::reliability
