// Mod-3 residue checking for in-memory arithmetic results.
//
// A residue code checks an arithmetic identity cheaply: for exact
// operations, (a*b) mod 3 == (a mod 3)(b mod 3) mod 3 and
// (a+b) mod 3 == (a mod 3 + b mod 3) mod 3. Modulus 3 is the classic
// choice for binary datapaths because 2^k mod 3 alternates 1, 2, 1, 2, ...
// and never 0 — so flipping ANY single output bit k changes the result's
// residue by ±2^k mod 3 ∈ {1, 2} and is always caught
// (tests/reliability_test.cpp proves this exhaustively over k).
//
// The check only arbitrates EXACT arithmetic: an approximate product
// (mask/relax bits on) legitimately differs from a*b, so ApimDevice skips
// residue checking while approximation is enabled — that is why the
// escalation ladder drops approximation to exact mode when unrepaired
// faults remain (reliability/policy.hpp).
//
// Cost model: a peripheral residue unit folds the operand two bits per
// cycle into a 2-bit accumulator (each binary digit pair is one mod-3
// digit), reading the bits through the existing sense amplifiers. We
// charge ceil(bits/2) cycles and one SA read per bit; the per-cycle
// controller overhead rides on the cycle count as everywhere else.
#pragma once

#include <cstdint>

#include "device/energy_model.hpp"
#include "util/units.hpp"

namespace apim::reliability {

[[nodiscard]] constexpr unsigned mod3(std::uint64_t v) noexcept {
  return static_cast<unsigned>(v % 3);
}

[[nodiscard]] constexpr bool residue_match_mul(std::uint64_t a,
                                               std::uint64_t b,
                                               std::uint64_t product) noexcept {
  return mod3(product) == (mod3(a) * mod3(b)) % 3;
}

[[nodiscard]] constexpr bool residue_match_add(std::uint64_t a,
                                               std::uint64_t b,
                                               std::uint64_t sum) noexcept {
  return mod3(sum) == (mod3(a) + mod3(b)) % 3;
}

struct ResidueCost {
  util::Cycles cycles = 0;
  double energy_pj = 0.0;
};

/// Cost of residue-checking one result: `total_bits` counts every bit the
/// checker must fold (both operands plus the result).
[[nodiscard]] inline ResidueCost residue_check_cost(
    unsigned total_bits, const device::EnergyModel& em) noexcept {
  return ResidueCost{(total_bits + 1) / 2,
                     static_cast<double>(total_bits) * em.e_read_pj};
}

}  // namespace apim::reliability
