// Reliability policy surface of an ApimDevice.
//
// The policy decides how much the device pays to notice and survive
// faults; the fault campaign sweeps it to draw the protection-vs-overhead
// tradeoff (bench/ext_fault_campaign.cpp):
//
//  * kOff            — faults corrupt results silently; zero overhead.
//  * kDetectOnly     — mod-3 residue check on every exact multiply/add
//                      result (reliability/residue.hpp); mismatches are
//                      counted but results are not corrected.
//  * kDetectAndRepair— residue check + escalation ladder on mismatch:
//                      re-execute on the next redundant processing block
//                      (domain), up to max_retries; when every domain
//                      disagrees with the residue, count an escalation and
//                      flag the device degraded. Combined with the BIST
//                      spare-row repair that the campaign applies before
//                      execution, this is the full detect-and-repair
//                      stack. Residue checking needs exact arithmetic, so
//                      campaigns drop approximation to exact mode when
//                      unrepaired faults remain (the ladder's middle
//                      rung).
//  * kTripleVote     — every op executes on three domains concurrently and
//                      the results are combined by a bitwise 2-of-3
//                      majority at the sense amplifiers: same latency
//                      (blocks run in parallel) plus a vote step, but 3x
//                      the op energy. Works under approximation (all
//                      copies compute the same approximate value), which
//                      residue checking cannot.
#pragma once

#include "reliability/fault_state.hpp"

namespace apim::reliability {

enum class ReliabilityPolicy {
  kOff,
  kDetectOnly,
  kDetectAndRepair,
  kTripleVote,
};

[[nodiscard]] constexpr const char* to_string(ReliabilityPolicy p) noexcept {
  switch (p) {
    case ReliabilityPolicy::kOff: return "off";
    case ReliabilityPolicy::kDetectOnly: return "detect";
    case ReliabilityPolicy::kDetectAndRepair: return "repair";
    case ReliabilityPolicy::kTripleVote: return "vote";
  }
  return "?";
}

/// Per-device reliability configuration. Lives inside core::ApimConfig so
/// device clones (apps::parallel_map workers) carry the fault state and
/// policy with them.
struct ReliabilityConfig {
  ReliabilityPolicy policy = ReliabilityPolicy::kOff;
  LaneFaultTable faults{};
  /// Redundant domains tried after the primary under kDetectAndRepair.
  unsigned max_retries = 2;

  /// True when the reliability layer can neither perturb results nor
  /// charge costs — the zero-overhead fast path.
  [[nodiscard]] bool passive() const noexcept {
    return policy == ReliabilityPolicy::kOff && faults.empty();
  }
};

}  // namespace apim::reliability
