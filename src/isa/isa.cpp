#include "isa/isa.hpp"

#include <sstream>

namespace apim::isa {

const char* mnemonic(Opcode op) noexcept {
  switch (op) {
    case Opcode::kMul: return "mul";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMac: return "mac";
    case Opcode::kLoad: return "load";
    case Opcode::kLoadImm: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kVAdd: return "vadd";
    case Opcode::kVMul: return "vmul";
    case Opcode::kMov: return "mov";
    case Opcode::kAddi: return "addi";
    case Opcode::kShr: return "shr";
    case Opcode::kShl: return "shl";
    case Opcode::kSetRelax: return "setrelax";
    case Opcode::kSetMask: return "setmask";
    case Opcode::kJmp: return "jmp";
    case Opcode::kJz: return "jz";
    case Opcode::kJnz: return "jnz";
    case Opcode::kHalt: return "halt";
  }
  return "?";
}

std::string Program::disassemble() const {
  std::ostringstream out;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instruction& inst = code[pc];
    out << pc << ": " << mnemonic(inst.op);
    switch (inst.op) {
      case Opcode::kMul:
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMac:
        out << " r" << +inst.dst << ", r" << +inst.src1 << ", r"
            << +inst.src2;
        break;
      case Opcode::kLoad:
        out << " r" << +inst.dst << ", [r" << +inst.src1 << "+" << inst.imm
            << "]";
        break;
      case Opcode::kLoadImm:
        out << " r" << +inst.dst << ", #" << inst.imm;
        break;
      case Opcode::kStore:
        out << " r" << +inst.dst << ", [r" << +inst.src1 << "+" << inst.imm
            << "]";
        break;
      case Opcode::kVAdd:
      case Opcode::kVMul:
        out << " [r" << +inst.dst << "], [r" << +inst.src1 << "], [r"
            << +inst.src2 << "], #" << inst.imm;
        break;
      case Opcode::kMov:
        out << " r" << +inst.dst << ", r" << +inst.src1;
        break;
      case Opcode::kAddi:
      case Opcode::kShr:
      case Opcode::kShl:
        out << " r" << +inst.dst << ", r" << +inst.src1 << ", #" << inst.imm;
        break;
      case Opcode::kSetRelax:
      case Opcode::kSetMask:
        out << " #" << inst.imm;
        break;
      case Opcode::kJmp:
        out << " @" << inst.imm;
        break;
      case Opcode::kJz:
      case Opcode::kJnz:
        out << " r" << +inst.src1 << ", @" << inst.imm;
        break;
      case Opcode::kHalt:
        break;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace apim::isa
