// A minimal instruction set for programming APIM kernels.
//
// The paper's applications are OpenCL kernels whose adds/multiplies are
// offloaded to the in-memory units while scalar control stays on the host
// controller. This ISA captures that split explicitly:
//  * data ops (mul / add / sub / mac) execute on an ApimDevice and are
//    charged its real cycles and energy;
//  * control ops (moves, index arithmetic, branches, precision changes)
//    run in the memory controller and are free, like the paper's
//    interconnect reconfiguration and runtime precision switching.
// Programs are written in a small assembly dialect (assembler.hpp) and run
// by the Interpreter (interpreter.hpp) against a register file plus a data
// memory that models the crossbar's data blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apim::isa {

enum class Opcode : std::uint8_t {
  // Data ops — charged to the APIM device.
  kMul,   ///< mul rD, rA, rB      : rD = rA * rB (integer, in-memory)
  kAdd,   ///< add rD, rA, rB      : rD = rA + rB (in-memory)
  kSub,   ///< sub rD, rA, rB      : rD = rA - rB (in-memory)
  kMac,   ///< mac rD, rA, rB      : rD = rD + rA * rB (in-memory)
  // Memory — data-block access (free: data is resident, PIM premise).
  kLoad,     ///< load rD, [rA+off] : rD = mem[rA + off]
  kLoadImm,  ///< load rD, #imm     : rD = imm
  kStore,    ///< store rS, [rA+off]: mem[rA + off] = rS
  // Vector ops — memory-to-memory over `imm` elements, executed by the
  // row-parallel in-memory units (one crossbar pass for the whole batch).
  kVAdd,  ///< vadd [rD], [rA], [rB], #n : elementwise add, 12*W+1 cycles
  kVMul,  ///< vmul [rD], [rA], [rB], #n : elementwise multiply,
          ///< makespan of the per-element pipelines across lanes
  // Controller ops — free.
  kMov,       ///< mov rD, rA
  kAddi,      ///< addi rD, rA, #imm : index arithmetic (controller)
  kShr,       ///< shr rD, rA, #imm  : arithmetic shift right (free wiring)
  kShl,       ///< shl rD, rA, #imm
  kSetRelax,  ///< setrelax #m       : runtime precision knob
  kSetMask,   ///< setmask #b
  // Control flow — free.
  kJmp,   ///< jmp @label
  kJz,    ///< jz rA, @label
  kJnz,   ///< jnz rA, @label
  kHalt,  ///< halt
};

[[nodiscard]] const char* mnemonic(Opcode op) noexcept;

/// Decoded instruction. Fields are used per opcode as documented above;
/// unused fields are zero.
struct Instruction {
  Opcode op = Opcode::kHalt;
  std::uint8_t dst = 0;   ///< Destination register (or source for store).
  std::uint8_t src1 = 0;  ///< First source / address base register.
  std::uint8_t src2 = 0;  ///< Second source register.
  std::int64_t imm = 0;   ///< Immediate / offset / branch target index.
};

/// An assembled program: instructions plus source line mapping for
/// diagnostics.
struct Program {
  std::vector<Instruction> code;
  std::vector<std::uint32_t> source_lines;  ///< Per instruction.

  [[nodiscard]] bool empty() const noexcept { return code.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return code.size(); }

  /// Round-trippable textual form.
  [[nodiscard]] std::string disassemble() const;
};

/// Number of general-purpose registers (r0..r31). r0 reads as zero and
/// ignores writes, RISC style.
inline constexpr std::size_t kRegisterCount = 32;

}  // namespace apim::isa
