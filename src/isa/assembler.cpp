#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <map>
#include <optional>
#include <vector>

namespace apim::isa {

namespace {

struct Token {
  std::string text;
};

/// Strip comments/whitespace and split one line into mnemonic + operands
/// (operands separated by commas).
struct ParsedLine {
  std::string label;     ///< Without the trailing ':'.
  std::string mnemonic;  ///< Lowercased.
  std::vector<std::string> operands;
};

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
    --end;
  return std::string(s.substr(begin, end - begin));
}

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

ParsedLine parse_line(std::string_view raw, std::uint32_t line) {
  ParsedLine parsed;
  std::string text(raw.substr(0, raw.find(';')));

  // Leading label?
  if (const auto colon = text.find(':'); colon != std::string::npos) {
    parsed.label = trim(text.substr(0, colon));
    if (parsed.label.empty())
      throw AssemblyError(line, "empty label");
    for (char c : parsed.label)
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
        throw AssemblyError(line, "invalid label '" + parsed.label + "'");
    text = text.substr(colon + 1);
  }

  text = trim(text);
  if (text.empty()) return parsed;

  const auto space = text.find_first_of(" \t");
  parsed.mnemonic = lowercase(trim(text.substr(0, space)));
  if (space != std::string::npos) {
    std::string rest = trim(text.substr(space));
    std::size_t start = 0;
    while (start <= rest.size()) {
      const auto comma = rest.find(',', start);
      const std::string operand =
          trim(rest.substr(start, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - start));
      if (operand.empty())
        throw AssemblyError(line, "empty operand");
      parsed.operands.push_back(operand);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  return parsed;
}

std::uint8_t parse_register(const std::string& operand, std::uint32_t line) {
  if (operand.size() < 2 || (operand[0] != 'r' && operand[0] != 'R'))
    throw AssemblyError(line, "expected register, got '" + operand + "'");
  unsigned value = 0;
  const auto* begin = operand.data() + 1;
  const auto* end = operand.data() + operand.size();
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc{} || result.ptr != end ||
      value >= kRegisterCount)
    throw AssemblyError(line, "bad register '" + operand + "'");
  return static_cast<std::uint8_t>(value);
}

std::int64_t parse_immediate(const std::string& operand, std::uint32_t line) {
  if (operand.empty() || operand[0] != '#')
    throw AssemblyError(line, "expected immediate, got '" + operand + "'");
  std::int64_t value = 0;
  const auto* begin = operand.data() + 1;
  const auto* end = operand.data() + operand.size();
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc{} || result.ptr != end)
    throw AssemblyError(line, "bad immediate '" + operand + "'");
  return value;
}

/// "[rA+off]" or "[rA]" or "[rA-off]".
struct MemOperand {
  std::uint8_t base;
  std::int64_t offset;
};

MemOperand parse_memory(const std::string& operand, std::uint32_t line) {
  if (operand.size() < 3 || operand.front() != '[' || operand.back() != ']')
    throw AssemblyError(line, "expected memory operand, got '" + operand + "'");
  const std::string inner = trim(operand.substr(1, operand.size() - 2));
  const auto plus = inner.find_first_of("+-");
  MemOperand mem{};
  if (plus == std::string::npos) {
    mem.base = parse_register(inner, line);
    mem.offset = 0;
  } else {
    mem.base = parse_register(trim(inner.substr(0, plus)), line);
    std::int64_t magnitude = 0;
    const std::string num = trim(inner.substr(plus + 1));
    const auto result = std::from_chars(num.data(), num.data() + num.size(),
                                        magnitude);
    if (result.ec != std::errc{} || result.ptr != num.data() + num.size())
      throw AssemblyError(line, "bad offset in '" + operand + "'");
    mem.offset = inner[plus] == '-' ? -magnitude : magnitude;
  }
  return mem;
}

std::string parse_label_ref(const std::string& operand, std::uint32_t line) {
  if (operand.size() < 2 || operand[0] != '@')
    throw AssemblyError(line, "expected @label, got '" + operand + "'");
  return operand.substr(1);
}

void expect_operands(const ParsedLine& p, std::size_t count,
                     std::uint32_t line) {
  if (p.operands.size() != count)
    throw AssemblyError(line, p.mnemonic + " expects " +
                                  std::to_string(count) + " operands, got " +
                                  std::to_string(p.operands.size()));
}

}  // namespace

Program assemble(std::string_view source) {
  Program program;
  struct LabelDef {
    std::size_t instruction;
    std::uint32_t line;
  };
  std::map<std::string, LabelDef> labels;
  struct Fixup {
    std::size_t instruction;
    std::string label;
    std::uint32_t line;
  };
  std::vector<Fixup> fixups;

  std::uint32_t line_number = 0;
  std::size_t start = 0;
  while (start <= source.size()) {
    const auto newline = source.find('\n', start);
    const std::string_view raw = source.substr(
        start, newline == std::string_view::npos ? std::string_view::npos
                                                 : newline - start);
    ++line_number;
    start = newline == std::string_view::npos ? source.size() + 1
                                              : newline + 1;

    const ParsedLine p = parse_line(raw, line_number);
    if (!p.label.empty()) {
      const auto [it, inserted] = labels.emplace(
          p.label, LabelDef{program.code.size(), line_number});
      if (!inserted)
        throw AssemblyError(line_number,
                            "duplicate label '" + p.label +
                                "' (first defined at line " +
                                std::to_string(it->second.line) + ")");
    }
    if (p.mnemonic.empty()) continue;

    Instruction inst;
    if (p.mnemonic == "mul" || p.mnemonic == "add" || p.mnemonic == "sub" ||
        p.mnemonic == "mac") {
      expect_operands(p, 3, line_number);
      inst.op = p.mnemonic == "mul"   ? Opcode::kMul
                : p.mnemonic == "add" ? Opcode::kAdd
                : p.mnemonic == "sub" ? Opcode::kSub
                                      : Opcode::kMac;
      inst.dst = parse_register(p.operands[0], line_number);
      inst.src1 = parse_register(p.operands[1], line_number);
      inst.src2 = parse_register(p.operands[2], line_number);
    } else if (p.mnemonic == "load") {
      expect_operands(p, 2, line_number);
      inst.dst = parse_register(p.operands[0], line_number);
      if (!p.operands[1].empty() && p.operands[1][0] == '#') {
        inst.op = Opcode::kLoadImm;
        inst.imm = parse_immediate(p.operands[1], line_number);
      } else {
        inst.op = Opcode::kLoad;
        const MemOperand mem = parse_memory(p.operands[1], line_number);
        inst.src1 = mem.base;
        inst.imm = mem.offset;
      }
    } else if (p.mnemonic == "store") {
      expect_operands(p, 2, line_number);
      inst.op = Opcode::kStore;
      inst.dst = parse_register(p.operands[0], line_number);
      const MemOperand mem = parse_memory(p.operands[1], line_number);
      inst.src1 = mem.base;
      inst.imm = mem.offset;
    } else if (p.mnemonic == "vadd" || p.mnemonic == "vmul") {
      expect_operands(p, 4, line_number);
      inst.op = p.mnemonic == "vadd" ? Opcode::kVAdd : Opcode::kVMul;
      const MemOperand dst = parse_memory(p.operands[0], line_number);
      const MemOperand src_a = parse_memory(p.operands[1], line_number);
      const MemOperand src_b = parse_memory(p.operands[2], line_number);
      if (dst.offset != 0 || src_a.offset != 0 || src_b.offset != 0)
        throw AssemblyError(line_number,
                            "vector operands take bare [rX] addresses");
      inst.dst = dst.base;
      inst.src1 = src_a.base;
      inst.src2 = src_b.base;
      inst.imm = parse_immediate(p.operands[3], line_number);
      if (inst.imm <= 0)
        throw AssemblyError(line_number, "vector length must be positive");
    } else if (p.mnemonic == "mov") {
      expect_operands(p, 2, line_number);
      inst.op = Opcode::kMov;
      inst.dst = parse_register(p.operands[0], line_number);
      inst.src1 = parse_register(p.operands[1], line_number);
    } else if (p.mnemonic == "addi" || p.mnemonic == "shr" ||
               p.mnemonic == "shl") {
      expect_operands(p, 3, line_number);
      inst.op = p.mnemonic == "addi" ? Opcode::kAddi
                : p.mnemonic == "shr" ? Opcode::kShr
                                      : Opcode::kShl;
      inst.dst = parse_register(p.operands[0], line_number);
      inst.src1 = parse_register(p.operands[1], line_number);
      inst.imm = parse_immediate(p.operands[2], line_number);
      if ((inst.op == Opcode::kShr || inst.op == Opcode::kShl) &&
          (inst.imm < 0 || inst.imm > 63))
        throw AssemblyError(line_number, "shift amount out of range");
    } else if (p.mnemonic == "setrelax" || p.mnemonic == "setmask") {
      expect_operands(p, 1, line_number);
      inst.op = p.mnemonic == "setrelax" ? Opcode::kSetRelax
                                         : Opcode::kSetMask;
      inst.imm = parse_immediate(p.operands[0], line_number);
      if (inst.imm < 0 || inst.imm > 64)
        throw AssemblyError(line_number, "precision setting out of range");
    } else if (p.mnemonic == "jmp") {
      expect_operands(p, 1, line_number);
      inst.op = Opcode::kJmp;
      fixups.push_back(
          {program.code.size(), parse_label_ref(p.operands[0], line_number),
           line_number});
    } else if (p.mnemonic == "jz" || p.mnemonic == "jnz") {
      expect_operands(p, 2, line_number);
      inst.op = p.mnemonic == "jz" ? Opcode::kJz : Opcode::kJnz;
      inst.src1 = parse_register(p.operands[0], line_number);
      fixups.push_back(
          {program.code.size(), parse_label_ref(p.operands[1], line_number),
           line_number});
    } else if (p.mnemonic == "halt") {
      expect_operands(p, 0, line_number);
      inst.op = Opcode::kHalt;
    } else {
      throw AssemblyError(line_number,
                          "unknown mnemonic '" + p.mnemonic + "'");
    }
    program.code.push_back(inst);
    program.source_lines.push_back(line_number);
  }

  for (const auto& fixup : fixups) {
    const auto it = labels.find(fixup.label);
    if (it == labels.end())
      throw AssemblyError(fixup.line, "undefined label '" + fixup.label + "'");
    program.code[fixup.instruction].imm =
        static_cast<std::int64_t>(it->second.instruction);
  }
  return program;
}

}  // namespace apim::isa
