#include "isa/interpreter.hpp"

#include <stdexcept>
#include <string>

namespace apim::isa {

namespace {

std::size_t checked_address(std::int64_t base, std::int64_t offset,
                            std::size_t memory_size, std::uint64_t pc) {
  const std::int64_t addr = base + offset;
  if (addr < 0 || static_cast<std::size_t>(addr) >= memory_size)
    throw std::out_of_range("pc " + std::to_string(pc) +
                            ": memory access at " + std::to_string(addr) +
                            " outside [0, " + std::to_string(memory_size) +
                            ")");
  return static_cast<std::size_t>(addr);
}

}  // namespace

ExecutionResult Interpreter::run(const Program& program,
                                 std::span<std::int64_t> memory) {
  ExecutionResult result;
  result.registers.assign(kRegisterCount, 0);
  auto& regs = result.registers;

  const auto write_reg = [&](std::uint8_t r, std::int64_t value) {
    if (r != 0) regs[r] = value;  // r0 is hard-wired zero.
  };

  std::size_t pc = 0;
  std::uint64_t remaining = fuel_;
  while (pc < program.code.size() && remaining-- > 0) {
    const Instruction& inst = program.code[pc];
    ++result.instructions_executed;
    std::size_t next_pc = pc + 1;
    switch (inst.op) {
      case Opcode::kMul:
        write_reg(inst.dst, device_.mul_int(regs[inst.src1], regs[inst.src2]));
        ++result.data_ops;
        break;
      case Opcode::kAdd:
        write_reg(inst.dst, device_.add(regs[inst.src1], regs[inst.src2]));
        ++result.data_ops;
        break;
      case Opcode::kSub:
        write_reg(inst.dst, device_.add(regs[inst.src1], -regs[inst.src2]));
        ++result.data_ops;
        break;
      case Opcode::kMac:
        write_reg(inst.dst, device_.mac_int(regs[inst.dst], regs[inst.src1],
                                            regs[inst.src2]));
        result.data_ops += 2;  // Multiply + accumulate.
        break;
      case Opcode::kLoad:
        write_reg(inst.dst,
                  memory[checked_address(regs[inst.src1], inst.imm,
                                         memory.size(), pc)]);
        break;
      case Opcode::kLoadImm:
        write_reg(inst.dst, inst.imm);
        break;
      case Opcode::kStore:
        memory[checked_address(regs[inst.src1], inst.imm, memory.size(),
                               pc)] = regs[inst.dst];
        break;
      case Opcode::kVAdd:
      case Opcode::kVMul: {
        // Memory-to-memory elementwise op over `imm` elements. Values use
        // the device's signed semantics; costs come from the row-parallel
        // units: one 12W+1 pass for the add vector, the lane makespan for
        // the multiply vector. Energy accrues per element either way.
        const auto count = static_cast<std::size_t>(inst.imm);
        const std::size_t base_d = checked_address(regs[inst.dst], 0,
                                                   memory.size(), pc);
        const std::size_t base_a = checked_address(regs[inst.src1], 0,
                                                   memory.size(), pc);
        const std::size_t base_b = checked_address(regs[inst.src2], 0,
                                                   memory.size(), pc);
        (void)checked_address(regs[inst.dst], inst.imm - 1, memory.size(), pc);
        (void)checked_address(regs[inst.src1], inst.imm - 1, memory.size(),
                              pc);
        (void)checked_address(regs[inst.src2], inst.imm - 1, memory.size(),
                              pc);
        // Values go through the device element by element (signed
        // semantics, full energy); the row-parallel region then collapses
        // the latency to a single shared pass across the lanes.
        const util::Cycles region = device_.parallel_region_begin();
        if (inst.op == Opcode::kVAdd) {
          for (std::size_t e = 0; e < count; ++e)
            memory[base_d + e] =
                device_.add(memory[base_a + e], memory[base_b + e]);
        } else {
          for (std::size_t e = 0; e < count; ++e)
            memory[base_d + e] =
                device_.mul_int(memory[base_a + e], memory[base_b + e]);
        }
        device_.parallel_region_end(region, count);
        result.data_ops += count;
        break;
      }
      case Opcode::kMov:
        write_reg(inst.dst, regs[inst.src1]);
        break;
      case Opcode::kAddi:
        write_reg(inst.dst, regs[inst.src1] + inst.imm);
        break;
      case Opcode::kShr: {
        const std::int64_t v = regs[inst.src1];
        // Sign-magnitude shift, matching the device's rescale semantics.
        const std::int64_t mag = (v < 0 ? -v : v) >> inst.imm;
        write_reg(inst.dst, v < 0 ? -mag : mag);
        break;
      }
      case Opcode::kShl:
        write_reg(inst.dst, regs[inst.src1] << inst.imm);
        break;
      case Opcode::kSetRelax:
        device_.set_relax_bits(static_cast<unsigned>(inst.imm));
        break;
      case Opcode::kSetMask:
        device_.set_mask_bits(static_cast<unsigned>(inst.imm));
        break;
      case Opcode::kJmp:
        next_pc = static_cast<std::size_t>(inst.imm);
        break;
      case Opcode::kJz:
        if (regs[inst.src1] == 0) next_pc = static_cast<std::size_t>(inst.imm);
        break;
      case Opcode::kJnz:
        if (regs[inst.src1] != 0) next_pc = static_cast<std::size_t>(inst.imm);
        break;
      case Opcode::kHalt:
        result.halted = true;
        return result;
    }
    pc = next_pc;
  }
  // Fuel exhausted or fell off the end without halt.
  result.halted = false;
  return result;
}

}  // namespace apim::isa
