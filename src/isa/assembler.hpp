// Two-pass assembler for the APIM kernel dialect.
//
// Syntax (one instruction per line; `;` starts a comment):
//
//   loop:                      ; labels end with ':'
//     load  r1, [r2+4]         ; memory load, base register + offset
//     load  r3, #42            ; immediate load
//     mul   r4, r1, r3         ; in-memory multiply
//     mac   r5, r1, r3         ; r5 += r1*r3 (in-memory)
//     addi  r2, r2, #1         ; controller index arithmetic (free)
//     setrelax #16             ; runtime precision knob
//     jnz   r6, @loop          ; branch to label
//     halt
//
// Errors (unknown mnemonics, bad registers, undefined labels, ...) raise
// AssemblyError with the offending line number.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/isa.hpp"

namespace apim::isa {

class AssemblyError : public std::runtime_error {
 public:
  AssemblyError(std::uint32_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] std::uint32_t line() const noexcept { return line_; }

 private:
  std::uint32_t line_;
};

/// Assemble source text into a Program. Throws AssemblyError.
[[nodiscard]] Program assemble(std::string_view source);

}  // namespace apim::isa
