// Interpreter for assembled APIM kernels.
//
// Executes a Program against a register file and a data memory (modelling
// the crossbar's data blocks). Data ops are dispatched to an ApimDevice,
// so a kernel run produces the same cycle/energy accounting as calling the
// device API directly — the ISA is a programming veneer, not a separate
// cost model. A fuel limit guards against non-terminating kernels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/apim.hpp"
#include "isa/isa.hpp"

namespace apim::isa {

struct ExecutionResult {
  std::vector<std::int64_t> registers;  ///< Final register file.
  std::uint64_t instructions_executed = 0;
  std::uint64_t data_ops = 0;  ///< Ops charged to the device.
  bool halted = false;         ///< False if fuel ran out.
};

class Interpreter {
 public:
  /// `fuel` caps executed instructions (default 10M).
  explicit Interpreter(core::ApimDevice& device,
                       std::uint64_t fuel = 10'000'000)
      : device_(device), fuel_(fuel) {}

  /// Run `program` over `memory` (read/write). Out-of-range memory access
  /// or a missing halt (fuel exhaustion) is reported via the result /
  /// throws std::out_of_range respectively.
  [[nodiscard]] ExecutionResult run(const Program& program,
                                    std::span<std::int64_t> memory);

 private:
  core::ApimDevice& device_;
  std::uint64_t fuel_;
};

}  // namespace apim::isa
