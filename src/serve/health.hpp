// Online fault-domain health model of the serving runtime.
//
// A FAULT DOMAIN is one controller command stream — a bank and the lanes
// it broadcasts to (core/chip.hpp). The device layer already knows how to
// notice faults (mod-3 residue checks, retry ladders, march-test BIST,
// reliability/); this header closes the loop at serving time: every
// dispatch's reliability counters feed a per-domain state machine,
//
//   kHealthy --detections >= suspect threshold--> kSuspect
//   kSuspect --clean scrub--> kHealthy
//   any      --escalation or detections >= quarantine threshold or
//             whole-domain failure--> kQuarantined
//   kQuarantined --readmit_clean_scrubs clean re-tests--> kHealthy
//
// and the engine (serve/server.cpp) reacts: suspect domains optionally
// run their traffic at an upgraded reliability policy (DegradeMode),
// quarantined domains stop serving, their in-flight work RELOCATES to
// healthy domains, and a background march-test scrub — scheduled through
// the DRR scheduler as the low-weight system tenant `kScrubTenant` —
// repairs stuck bits by spare-row remap and earns re-admission.
//
// Everything here is a plain value type driven from the single-threaded
// virtual-time engine, so health decisions are bit-identical for every
// host thread count (the repo-wide determinism contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "device/energy_model.hpp"
#include "reliability/fault_state.hpp"
#include "reliability/policy.hpp"
#include "util/units.hpp"

namespace apim::serve::health {

/// Reserved tenant name the background scrubber dispatches under. Its DRR
/// weight (HealthConfig::scrub_weight) is deliberately low: scrubbing
/// steals idle capacity instead of competing with tenant SLOs.
inline constexpr const char* kScrubTenant = "__scrub";

enum class DomainState : std::uint8_t {
  kHealthy,
  kSuspect,      ///< Detections above threshold; still serving.
  kQuarantined,  ///< Drained: no dispatches until a clean re-test.
};

[[nodiscard]] constexpr const char* to_string(DomainState s) noexcept {
  switch (s) {
    case DomainState::kHealthy: return "healthy";
    case DomainState::kSuspect: return "suspect";
    case DomainState::kQuarantined: return "quarantined";
  }
  return "?";
}

/// What to do with traffic when capacity degrades (suspect domains, or
/// queue capacity shrunk by quarantines).
enum class DegradeMode : std::uint8_t {
  kShed,     ///< Reject what the lost capacity can no longer absorb.
  kBlock,    ///< Head-of-line block arrivals until capacity frees.
  kDegrade,  ///< Like kShed, plus suspect-domain batches execute at the
             ///< upgraded `degrade_policy` (detect-and-repair/vote).
};

/// One scheduled fault injection, applied by the engine at virtual time
/// `at`. The schedule fires with the health layer ON or OFF — that is the
/// chaos A/B: same silicon decay, with and without the immune system.
struct DomainFaultEvent {
  util::Cycles at = 0;
  std::size_t domain = 0;
  enum class Kind : std::uint8_t {
    kSetFaults,  ///< Install `faults` as the domain's fault table.
    kKill,       ///< Whole-domain failure (whole_domain_failure table).
    kClear,      ///< Fabric recovers: empty fault table.
  } kind = Kind::kSetFaults;
  reliability::LaneFaultTable faults{};
};

struct HealthConfig {
  /// Master switch. OFF by default: the engine then behaves bit-identically
  /// to the pre-health runtime (fault schedules still fire, so the chaos
  /// bench can A/B the layer on identical fault injections).
  bool enabled = false;

  DegradeMode mode = DegradeMode::kDegrade;
  /// Policy suspect-domain batches are upgraded to under kDegrade (only
  /// ever upgraded, never downgraded below what the tenant pays for).
  reliability::ReliabilityPolicy degrade_policy =
      reliability::ReliabilityPolicy::kTripleVote;

  /// Residue detections (since the last scrub) that turn a domain suspect.
  std::uint64_t suspect_detections = 8;
  /// Detections that quarantine it outright. Any escalation (an exhausted
  /// retry ladder: the device could not produce a verified result)
  /// quarantines immediately regardless of this threshold.
  std::uint64_t quarantine_detections = 1024;

  /// Preventive scrub: every `scrub_interval` cycles (0 disables) the
  /// engine enqueues one march-test BIST pass over the next serving
  /// domain, round-robin, as a `kScrubTenant` batch through the DRR
  /// scheduler. The pass marches `scrub_rows` scratch rows x `scrub_cols`
  /// cells on each of the domain's lanes (cost law: reliability/bist.cpp).
  util::Cycles scrub_interval = 50000;
  std::size_t scrub_rows = 16;
  std::size_t scrub_cols = 128;
  std::uint32_t scrub_weight = 1;
  /// Stuck bits one scrub pass can clear by spare-row remap.
  std::size_t spare_bits_per_scrub = 16;

  /// Quarantined-domain repair: off-line re-tests (the domain holds no
  /// serving stream) every `repair_interval` cycles, up to
  /// `max_repair_attempts`; `readmit_clean_scrubs` consecutive clean
  /// passes re-admit the domain.
  util::Cycles repair_interval = 25000;
  unsigned max_repair_attempts = 4;
  unsigned readmit_clean_scrubs = 1;

  /// Times one request may be relocated off a failing domain before the
  /// server gives up and rejects it (bounds livelock under chaos).
  unsigned max_relocations = 4;

  /// Chaos schedule, applied in `at` order (ties: schedule order).
  std::vector<DomainFaultEvent> fault_schedule;
};

/// Result of one march-test scrub pass over a domain.
struct ScrubReport {
  std::size_t stuck_found = 0;    ///< Stuck bits present before the pass.
  std::size_t repaired = 0;       ///< Cleared by spare-row remap.
  bool clean = false;             ///< No stuck bits remain and not dead.
  util::Cycles cycles = 0;        ///< March cost (occupies the stream).
  double energy_pj = 0.0;
};

/// Run one march-test BIST pass over a domain's functional fault table:
/// deterministic cost from the march law, spare-row repair of up to
/// `spare_bits_per_scrub` stuck bits. Transient (soft) faults are
/// invisible to a march — `clean` only certifies the stuck population.
ScrubReport scrub_domain(reliability::LaneFaultTable& faults, bool dead,
                         std::size_t lanes, const HealthConfig& cfg,
                         const device::EnergyModel& em);

/// Catastrophic whole-domain failure table: one stuck output bit on every
/// (lane, redundancy domain) for both units. A SINGLE stuck bit per unit
/// guarantees the mod-3 residue check catches every actually-corrupted
/// result (a one-bit delta is never divisible by 3), so detect-and-repair
/// traffic escalates instead of silently returning garbage — which is
/// exactly the signal the health layer quarantines on.
[[nodiscard]] reliability::LaneFaultTable whole_domain_failure(
    std::size_t lanes, std::size_t domains);

/// The per-domain state machine. Owned and driven by the engine; all
/// methods are deterministic functions of the call sequence.
class HealthMonitor {
 public:
  HealthMonitor() = default;
  HealthMonitor(std::size_t domains, const HealthConfig& cfg);

  [[nodiscard]] std::size_t domains() const noexcept { return doms_.size(); }
  [[nodiscard]] DomainState state(std::size_t d) const {
    return doms_[d].state;
  }
  /// A domain serves traffic unless quarantined.
  [[nodiscard]] bool serving(std::size_t d) const {
    return doms_[d].state != DomainState::kQuarantined;
  }
  [[nodiscard]] std::size_t serving_count() const noexcept;

  [[nodiscard]] bool dead(std::size_t d) const { return doms_[d].dead; }
  void mark_dead(std::size_t d) { doms_[d].dead = true; }

  /// Feed one completed dispatch's reliability counters. Escalations (or
  /// the detection threshold) quarantine; detections alone may suspect.
  void on_dispatch(std::size_t d, std::uint64_t detections,
                   std::uint64_t escalations);

  /// Force-quarantine (whole-domain failure, unverified batch).
  void quarantine(std::size_t d);

  /// Feed one scrub/re-test result. Returns true when the pass re-admitted
  /// a quarantined domain.
  bool on_scrub(std::size_t d, const ScrubReport& r);

  /// Quarantined and out of repair attempts: the engine stops scheduling
  /// re-tests (the domain is retired for this serve).
  [[nodiscard]] bool gave_up(std::size_t d) const {
    return doms_[d].state == DomainState::kQuarantined &&
           doms_[d].repair_attempts >= cfg_.max_repair_attempts;
  }
  [[nodiscard]] unsigned repair_attempts(std::size_t d) const {
    return doms_[d].repair_attempts;
  }

 private:
  struct Domain {
    DomainState state = DomainState::kHealthy;
    bool dead = false;
    std::uint64_t detections_since_scrub = 0;
    unsigned repair_attempts = 0;
    unsigned clean_streak = 0;
  };

  HealthConfig cfg_{};
  std::vector<Domain> doms_;
};

}  // namespace apim::serve::health
