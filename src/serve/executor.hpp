// Batch executor: run one coalesced dispatch through the device models.
//
// Every op of the batch executes on an ApimDevice clone configured with
// the batch shape (width, relax, reliability policy), so approximation
// error, residue checks, retry ladders and fault injection behave exactly
// as in direct device use. Host execution follows the repo's determinism
// contract (util/thread_pool.hpp): ops are chunked with a fixed grain,
// each chunk runs on a private device clone, and per-op results merge
// serially in index order — values, cycles and energy are bit-identical
// for every host thread count.
//
// Latency semantics per op kind:
//  * kMultiply — ops round-robin over the stream's lanes (the same
//    discipline as arith::fast_multiply_batch); the batch makespan is the
//    slowest lane's cycle sum.
//  * kVectorAdd / kCompare / kPopcount — row-parallel inside a tile
//    (arith/vector_unit.hpp): these are all adder-pass schedules, so every
//    op shares one pass, the makespan is the slowest SINGLE op and one
//    lane is occupied, while energy scales with the count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/apim.hpp"
#include "serve/batcher.hpp"
#include "serve/request.hpp"

namespace apim::serve {

/// Op indices per host-pool chunk (fixed, never thread-count derived).
inline constexpr std::size_t kExecutorGrain = 64;

struct BatchExecution {
  /// Result values, one vector per member request, in member order.
  std::vector<std::vector<std::uint64_t>> values;
  util::Cycles makespan = 0;  ///< Dispatch-to-done latency of the batch.
  util::Cycles total_lane_cycles = 0;
  std::size_t lanes_used = 0;
  double energy_pj = 0.0;  ///< Total incl. per-cycle controller overhead.
  core::ExecStats stats;   ///< Aggregated device stats (reliability etc).
};

/// Execute `members` (each a span of operand pairs) as one dispatch of
/// shape `key` on a stream with `lanes` lanes. `base` supplies everything
/// the shape does not override: energy model, backend, fault table and
/// retry budget.
[[nodiscard]] BatchExecution execute_batch(
    std::span<const std::span<const std::pair<std::uint64_t, std::uint64_t>>>
        members,
    const BatchKey& key, std::size_t lanes, const core::ApimConfig& base);

}  // namespace apim::serve
