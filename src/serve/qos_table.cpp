#include "serve/qos_table.hpp"

#include "apps/app.hpp"
#include "core/apim.hpp"
#include "quality/qos.hpp"

namespace apim::serve {

QosTable build_qos_table(std::span<const std::string> apps,
                         std::size_t elements, std::uint64_t seed,
                         const core::AccuracyTuner& tuner) {
  QosTable table;
  for (const std::string& name : apps) {
    auto app = apps::make_application(name);
    if (app == nullptr) {
      table.set(name, QosTableEntry{0, 0.0, true, false});
      continue;
    }
    app->generate(elements, seed);
    const auto golden = app->run_golden();
    const quality::QosSpec spec = app->qos();
    const core::TunerResult tuned = tuner.tune(
        [&](unsigned m) {
          core::ApimConfig cfg;
          cfg.approx.relax_bits = m;
          core::ApimDevice device{cfg};
          const auto output = app->run_apim(device);
          return quality::evaluate_qos(spec, golden, output).loss;
        },
        spec.loss_threshold());
    table.set(name, QosTableEntry{tuned.relax_bits, tuned.error,
                                  tuned.met_qos, false});
  }
  return table;
}

}  // namespace apim::serve
