#include "serve/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "serve/trace.hpp"

namespace apim::serve {

void DrrScheduler::emit_credit(trace::EventKind kind, const std::string& app,
                               std::uint64_t amount,
                               std::uint64_t deficit_after, bool idle_reset,
                               util::Cycles now) const {
  if (cfg_.trace == nullptr) return;
  trace::Event e;
  e.kind = kind;
  e.at = now;
  e.chip = cfg_.trace_chip;
  e.app = app;
  e.amount = amount;
  e.deficit_after = deficit_after;
  e.idle_reset = idle_reset;
  cfg_.trace->record(std::move(e));
}

DrrScheduler::DrrScheduler(SchedulerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.quantum_ops == 0) cfg_.quantum_ops = 1;
  if (cfg_.default_weight == 0) cfg_.default_weight = 1;
}

std::uint32_t DrrScheduler::weight_of(const std::string& app) const {
  const auto it = cfg_.weights.find(app);
  const std::uint32_t w =
      it == cfg_.weights.end() ? cfg_.default_weight : it->second;
  return std::max<std::uint32_t>(1, w);
}

DrrScheduler::Tenant& DrrScheduler::tenant(const std::string& app) {
  const auto [it, inserted] = tenants_.try_emplace(app);
  if (inserted) it->second.weight = weight_of(app);
  return it->second;
}

void DrrScheduler::enqueue(ClosedBatch&& batch) {
  pending_requests_ += batch.members.size();
  ++queued_batches_;
  if (!cfg_.fair_share) {
    fifo_.push_back(std::move(batch));
    return;
  }
  Tenant& t = tenant(batch.key.app);
  // Empty queue -> the tenant (re)activates at the ring tail; its deficit
  // was reset to zero when it went idle, so a returning tenant starts a
  // fresh DRR round rather than cashing in hoarded credit.
  if (t.queue.empty()) ring_.push_back(batch.key.app);
  t.queue.push_back(std::move(batch));
}

bool DrrScheduler::eligible(const Tenant& t, bool respect_caps) const {
  if (t.queue.empty()) return false;
  if (!respect_caps) return true;
  // The share cap only binds while OTHER tenants have runnable work.
  if (queued_batches_ == t.queue.size()) return true;
  return t.in_flight < stream_cap(t);
}

std::size_t DrrScheduler::stream_cap(const Tenant& t) const {
  // Share over tenants currently contending for streams: queued work or
  // an in-flight dispatch. Floor, but never below one stream.
  std::uint64_t total_weight = 0;
  for (const auto& [name, u] : tenants_)
    if (!u.queue.empty() || u.in_flight > 0) total_weight += u.weight;
  if (total_weight == 0) return cfg_.streams;
  const std::uint64_t share =
      static_cast<std::uint64_t>(cfg_.streams) * t.weight / total_weight;
  return std::max<std::size_t>(1, static_cast<std::size_t>(share));
}

std::uint64_t DrrScheduler::quantum_for(const Tenant& t) const noexcept {
  return static_cast<std::uint64_t>(cfg_.quantum_ops) * t.weight;
}

DispatchPick DrrScheduler::finish_pick(ClosedBatch&& batch,
                                       const std::string& app,
                                       std::uint32_t weight,
                                       std::uint64_t deficit_carried,
                                       util::Cycles now) {
  --queued_batches_;
  pending_requests_ -= batch.members.size();
  DispatchPick pick;
  pick.app = app;
  pick.weight = weight;
  pick.queued_for = now >= batch.closed_at ? now - batch.closed_at : 0;
  pick.deficit_carried = deficit_carried;
  pick.batch = std::move(batch);
  return pick;
}

DispatchPick DrrScheduler::serve(std::size_t ring_index, util::Cycles now) {
  const std::string app = ring_[ring_index];
  Tenant& t = tenants_.at(app);
  ClosedBatch batch = std::move(t.queue.front());
  t.queue.pop_front();
  assert(t.deficit >= batch.ops);
  t.deficit -= batch.ops;
  bool idle_reset = false;
  if (t.queue.empty()) {
    t.deficit = 0;  // Going idle forfeits unused credit.
    idle_reset = true;
    ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(ring_index));
    cursor_ = ring_.empty() ? 0 : ring_index % ring_.size();
  }
  emit_credit(trace::EventKind::kCreditSpend, app, batch.ops, t.deficit,
              idle_reset, now);
  return finish_pick(std::move(batch), app, t.weight, t.deficit, now);
}

std::optional<DispatchPick> DrrScheduler::next(util::Cycles now) {
  if (queued_batches_ == 0) return std::nullopt;

  if (!cfg_.fair_share) {
    ClosedBatch batch = std::move(fifo_.front());
    fifo_.pop_front();
    const std::string app = batch.key.app;
    return finish_pick(std::move(batch), app, weight_of(app), 0, now);
  }

  // Pass 0 respects the per-tenant stream caps; pass 1 waives them so a
  // free stream never idles while work is queued (spill-over).
  for (const bool respect_caps : {true, false}) {
    // Rotations until some eligible tenant's deficit covers its head
    // batch; bounds the credit loop below.
    std::uint64_t max_rotations = 0;
    bool any_eligible = false;
    for (const std::string& name : ring_) {
      const Tenant& t = tenants_.at(name);
      if (!eligible(t, respect_caps)) continue;
      any_eligible = true;
      const std::uint64_t head_ops = t.queue.front().ops;
      if (head_ops > t.deficit) {
        const std::uint64_t q = quantum_for(t);
        max_rotations = std::max(
            max_rotations, (head_ops - t.deficit + q - 1) / q);
      }
    }
    if (!any_eligible) continue;

    for (std::uint64_t rotation = 0; rotation <= max_rotations; ++rotation) {
      // Serve the first tenant from the cursor whose deficit covers its
      // head. The cursor parks on the served tenant, so it keeps the
      // stream while its credit lasts (DRR's per-round burst).
      for (std::size_t step = 0; step < ring_.size(); ++step) {
        const std::size_t idx = (cursor_ + step) % ring_.size();
        const Tenant& t = tenants_.at(ring_[idx]);
        if (!eligible(t, respect_caps)) continue;
        if (t.deficit >= t.queue.front().ops) {
          cursor_ = idx;
          return serve(idx, now);
        }
      }
      // Nobody can afford their head: one full rotation of credit.
      for (const std::string& name : ring_) {
        Tenant& t = tenants_.at(name);
        if (!eligible(t, respect_caps)) continue;
        t.deficit += quantum_for(t);
        emit_credit(trace::EventKind::kCreditGrant, name, quantum_for(t),
                    t.deficit, false, now);
      }
    }
    assert(false && "credited past max_rotations without a pick");
  }
  return std::nullopt;  // Unreachable: pass 1 always finds queued work.
}

void DrrScheduler::refund(const std::string& app, std::size_t ops,
                          util::Cycles now) {
  if (!cfg_.fair_share || ops == 0) return;
  const auto it = tenants_.find(app);
  // The silent-drop path (idle tenant must not hoard credit) emits no
  // event: the ledger only records credit that actually moved.
  if (it == tenants_.end() || it->second.queue.empty()) return;
  it->second.deficit += ops;
  emit_credit(trace::EventKind::kCreditRefund, app, ops, it->second.deficit,
              false, now);
}

void DrrScheduler::stream_acquired(const std::string& app) {
  ++tenant(app).in_flight;
}

void DrrScheduler::stream_released(const std::string& app) {
  Tenant& t = tenant(app);
  assert(t.in_flight > 0);
  --t.in_flight;
}

}  // namespace apim::serve
