#include "serve/health.hpp"

#include <algorithm>

namespace apim::serve::health {

ScrubReport scrub_domain(reliability::LaneFaultTable& faults, bool dead,
                         std::size_t lanes, const HealthConfig& cfg,
                         const device::EnergyModel& em) {
  ScrubReport r;
  // March cost mirrors reliability/bist.cpp's law: each scanned row costs
  // W0 R0 W1 R1 plus a restore write = 3 driver cycles + 2 SA readback
  // cycles. The pass covers `scrub_rows` scratch rows on every lane of
  // the domain (the bank's controller marches its tiles in lockstep, so
  // rows scale with lanes while cycles are charged per marched row).
  const std::size_t rows = cfg.scrub_rows * std::max<std::size_t>(1, lanes);
  r.cycles = static_cast<util::Cycles>(rows) * 5;
  const double cells =
      static_cast<double>(rows) * static_cast<double>(cfg.scrub_cols);
  // Per cell: W0 and W1 each flip roughly every other cell (charge the
  // flipping write), the restore write usually does not, plus two reads.
  r.energy_pj = cells * (2.0 * em.write_energy_pj(true) +
                         em.write_energy_pj(false) + 2.0 * em.e_read_pj);

  // The march sees every stuck cell in the scanned band; spare-row remap
  // clears up to the configured budget of projected stuck bits.
  r.stuck_found = faults.stuck_count();
  r.repaired = faults.repair_stuck(cfg.spare_bits_per_scrub);
  r.clean = !dead && faults.stuck_count() == 0;
  return r;
}

reliability::LaneFaultTable whole_domain_failure(std::size_t lanes,
                                                 std::size_t domains) {
  reliability::LaneFaultTable t(lanes, domains);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    for (std::size_t dom = 0; dom < std::max<std::size_t>(1, domains);
         ++dom) {
      t.add_mul_stuck(lane, dom, 1, true);
      t.add_add_stuck(lane, dom, 1, true);
    }
  }
  return t;
}

HealthMonitor::HealthMonitor(std::size_t domains, const HealthConfig& cfg)
    : cfg_(cfg), doms_(domains) {}

std::size_t HealthMonitor::serving_count() const noexcept {
  std::size_t n = 0;
  for (const Domain& d : doms_)
    if (d.state != DomainState::kQuarantined) ++n;
  return n;
}

void HealthMonitor::on_dispatch(std::size_t d, std::uint64_t detections,
                                std::uint64_t escalations) {
  Domain& m = doms_[d];
  m.detections_since_scrub += detections;
  if (m.state == DomainState::kQuarantined) return;
  if (escalations > 0 ||
      m.detections_since_scrub >= cfg_.quarantine_detections) {
    quarantine(d);
    return;
  }
  if (m.state == DomainState::kHealthy &&
      m.detections_since_scrub >= cfg_.suspect_detections) {
    m.state = DomainState::kSuspect;
  }
}

void HealthMonitor::quarantine(std::size_t d) {
  Domain& m = doms_[d];
  if (m.state == DomainState::kQuarantined) return;
  m.state = DomainState::kQuarantined;
  m.repair_attempts = 0;
  m.clean_streak = 0;
}

bool HealthMonitor::on_scrub(std::size_t d, const ScrubReport& r) {
  Domain& m = doms_[d];
  m.detections_since_scrub = 0;
  if (m.state == DomainState::kQuarantined) {
    ++m.repair_attempts;
    if (!r.clean) {
      m.clean_streak = 0;
      return false;
    }
    ++m.clean_streak;
    if (m.clean_streak < cfg_.readmit_clean_scrubs) return false;
    m.state = DomainState::kHealthy;
    m.repair_attempts = 0;
    m.clean_streak = 0;
    return true;
  }
  if (r.clean) {
    m.state = DomainState::kHealthy;  // A clean pass clears suspicion.
  } else {
    // Unrepairable stuck population: drain the domain and keep repairing
    // off-line rather than serving degraded results.
    quarantine(d);
  }
  return false;
}

}  // namespace apim::serve::health
