#include "serve/executor.hpp"

#include <algorithm>
#include <cassert>

#include "util/bitops.hpp"
#include "util/thread_pool.hpp"

namespace apim::serve {

namespace {

core::ApimConfig shape_config(const BatchKey& key,
                              const core::ApimConfig& base) {
  core::ApimConfig cfg = base;
  cfg.word_bits = key.width;
  cfg.approx.relax_bits = key.relax_bits;
  cfg.reliability.policy = key.policy;
  return cfg;
}

}  // namespace

BatchExecution execute_batch(
    std::span<const std::span<const std::pair<std::uint64_t, std::uint64_t>>>
        members,
    const BatchKey& key, std::size_t lanes, const core::ApimConfig& base) {
  assert(lanes >= 1);
  BatchExecution out;
  out.values.resize(members.size());

  // Flatten member ops into one index space so chunk boundaries depend
  // only on the total op count.
  std::size_t total_ops = 0;
  for (const auto& ops : members) total_ops += ops.size();
  if (total_ops == 0) return out;

  // Clamp to the shape's word width up front, exactly as
  // ApimDevice::clamp_magnitude does in direct device use.
  const std::uint64_t cap = util::mask_n(key.width);
  const auto clamp = [cap](std::uint64_t v) { return v > cap ? cap : v; };
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flat;
  flat.reserve(total_ops);
  for (const auto& ops : members)
    for (const auto& [a, b] : ops) flat.emplace_back(clamp(a), clamp(b));

  const core::ApimConfig cfg = shape_config(key, base);
  const std::size_t chunks = (total_ops + kExecutorGrain - 1) / kExecutorGrain;

  std::vector<std::uint64_t> per_op_value(total_ops);
  std::vector<util::Cycles> per_op_cycles(total_ops);
  std::vector<core::ExecStats> chunk_stats(chunks);

  util::ThreadPool::global().parallel_for(
      0, total_ops, kExecutorGrain, [&](std::size_t lo, std::size_t hi) {
        // Private clone per chunk: the op index (lane assignment, transient
        // fault draws) restarts at the chunk boundary, which depends only
        // on the op count — identical for every thread count.
        core::ApimDevice worker{cfg};
        const auto ops = std::span(flat).subspan(lo, hi - lo);
        const auto vals = std::span(per_op_value).subspan(lo, hi - lo);
        const auto cycles = std::span(per_op_cycles).subspan(lo, hi - lo);
        switch (key.op) {
          case OpKind::kMultiply:
            worker.mul_magnitude_batch(ops, vals, cycles);
            break;
          case OpKind::kVectorAdd:
            worker.add_magnitude_batch(ops, vals, cycles);
            break;
          case OpKind::kCompare:
            worker.cmp_magnitude_batch(ops, vals, cycles);
            break;
          case OpKind::kPopcount:
            worker.popcnt_magnitude_batch(ops, vals, cycles);
            break;
        }
        chunk_stats[lo / kExecutorGrain] = worker.stats();
      });

  for (const core::ExecStats& s : chunk_stats) out.stats.merge(s);

  // Serial merge in op order: distribute values back to members and
  // account latency per the op kind's parallelism model.
  // Adder-pass shapes (add/compare/popcount) are row-parallel: one lane,
  // shared serial pass. Only multiplies spread over the stream's lanes.
  out.lanes_used =
      key.op == OpKind::kMultiply ? std::min(lanes, total_ops) : 1;
  std::vector<util::Cycles> lane_cycles(out.lanes_used, 0);
  std::size_t op = 0;
  for (std::size_t m = 0; m < members.size(); ++m) {
    out.values[m].reserve(members[m].size());
    for (std::size_t j = 0; j < members[m].size(); ++j, ++op) {
      out.values[m].push_back(per_op_value[op]);
      if (key.op != OpKind::kMultiply) {
        // Row-parallel: every op shares the pass; the slowest op (retry
        // ladders can lengthen one) bounds the batch.
        lane_cycles[0] = std::max(lane_cycles[0], per_op_cycles[op]);
      } else {
        lane_cycles[op % out.lanes_used] += per_op_cycles[op];
      }
      out.total_lane_cycles += per_op_cycles[op];
    }
  }
  out.makespan = *std::max_element(lane_cycles.begin(), lane_cycles.end());
  out.energy_pj = out.stats.energy_ops_pj +
                  static_cast<double>(out.stats.cycles) *
                      cfg.energy.e_cycle_overhead_pj;
  return out;
}

}  // namespace apim::serve
