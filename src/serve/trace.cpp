#include "serve/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

namespace apim::serve::trace {

namespace {

struct KindName {
  EventKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {EventKind::kAdmit, "admit"},
    {EventKind::kBatchSeal, "batch-seal"},
    {EventKind::kDispatch, "dispatch"},
    {EventKind::kComplete, "complete"},
    {EventKind::kAbort, "abort"},
    {EventKind::kServe, "serve"},
    {EventKind::kReject, "reject"},
    {EventKind::kExpire, "expire"},
    {EventKind::kInvalid, "invalid"},
    {EventKind::kCreditGrant, "credit-grant"},
    {EventKind::kCreditSpend, "credit-spend"},
    {EventKind::kCreditRefund, "credit-refund"},
    {EventKind::kQosEscalate, "qos-escalate"},
    {EventKind::kRelocate, "relocate"},
    {EventKind::kHealth, "health"},
    {EventKind::kScrub, "scrub"},
    {EventKind::kClusterAdmit, "cluster-admit"},
    {EventKind::kForward, "forward"},
    {EventKind::kResponseLeg, "response-leg"},
    {EventKind::kMigrationStart, "migration-start"},
    {EventKind::kMigrationCommit, "migration-commit"},
};

/// %.17g round-trips every finite IEEE-754 double exactly.
std::string format_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

void put_u64(std::ostringstream& os, const char* key, std::uint64_t value) {
  if (value != 0) os << ' ' << key << '=' << value;
}

void put_i64(std::ostringstream& os, const char* key, std::int64_t value) {
  if (value != -1) os << ' ' << key << '=' << value;
}

void put_flag(std::ostringstream& os, const char* key, bool value) {
  if (value) os << ' ' << key << "=1";
}

struct Token {
  std::string_view key;
  std::string_view value;
};

/// Split "k=v" tokens off a whitespace-separated record body.
bool next_token(std::string_view& rest, Token* out) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  if (rest.empty()) return false;
  const std::size_t end = rest.find(' ');
  const std::string_view tok =
      end == std::string_view::npos ? rest : rest.substr(0, end);
  rest.remove_prefix(tok.size());
  const std::size_t eq = tok.find('=');
  if (eq == std::string_view::npos) {
    out->key = tok;
    out->value = {};
  } else {
    out->key = tok.substr(0, eq);
    out->value = tok.substr(eq + 1);
  }
  return true;
}

std::uint64_t parse_u64(std::string_view v) {
  return std::strtoull(std::string(v).c_str(), nullptr, 10);
}

std::int64_t parse_i64(std::string_view v) {
  return std::strtoll(std::string(v).c_str(), nullptr, 10);
}

double parse_double(std::string_view v) {
  return std::strtod(std::string(v).c_str(), nullptr);
}

}  // namespace

const char* to_string(EventKind kind) noexcept {
  for (const KindName& k : kKindNames)
    if (k.kind == kind) return k.name;
  return "unknown";
}

bool kind_from_string(const std::string& name, EventKind* out) {
  for (const KindName& k : kKindNames) {
    if (name == k.name) {
      *out = k.kind;
      return true;
    }
  }
  return false;
}

std::string EventLog::serialize() const {
  std::ostringstream os;
  os << "apim-trace v1\n";
  os << "meta streams=" << meta.streams << " lanes=" << meta.lanes
     << " queue_capacity=" << meta.queue_capacity
     << " fair_share=" << (meta.fair_share ? 1 : 0)
     << " quantum=" << meta.quantum_ops
     << " default_weight=" << meta.default_weight
     << " health=" << (meta.health ? 1 : 0) << " chips=" << meta.chips
     << " shards=" << meta.shards
     << " topology=" << static_cast<unsigned>(meta.topology)
     << " hop_latency=" << meta.hop_latency_cycles
     << " link_bits=" << meta.link_bits
     << " pj_per_bit_hop=" << format_double(meta.pj_per_bit_hop)
     << " shard_bits=" << meta.shard_bits
     << " overflowed=" << (overflowed_ ? 1 : 0) << '\n';
  for (const auto& [app, weight] : meta.weights)
    os << "weight app=" << app << " w=" << weight << '\n';
  for (const Event& e : events_) {
    os << "event k=" << to_string(e.kind) << " t=" << e.at;
    put_i64(os, "chip", e.chip);
    put_i64(os, "req", e.req);
    if (!e.app.empty()) os << " app=" << e.app;
    put_i64(os, "domain", e.domain);
    put_u64(os, "op", e.op);
    put_u64(os, "width", e.width);
    put_u64(os, "relax", e.relax);
    put_u64(os, "policy", e.policy);
    put_u64(os, "ops", e.ops);
    if (!e.members.empty()) {
      os << " members=";
      for (std::size_t i = 0; i < e.members.size(); ++i) {
        if (i != 0) os << ',';
        os << e.members[i];
      }
    }
    put_u64(os, "amount", e.amount);
    put_u64(os, "deficit", e.deficit_after);
    put_flag(os, "idle", e.idle_reset);
    put_u64(os, "depth", e.queue_depth);
    put_u64(os, "cap", e.capacity);
    put_u64(os, "state_from", e.state_from);
    put_u64(os, "state_to", e.state_to);
    put_flag(os, "dead", e.dead);
    put_flag(os, "clean", e.clean);
    put_flag(os, "offline", e.offline);
    put_u64(os, "stuck", e.stuck);
    put_u64(os, "repaired", e.repaired);
    put_u64(os, "det", e.detections);
    put_u64(os, "esc", e.escalations);
    put_flag(os, "scrub", e.scrub);
    put_i64(os, "from", e.from);
    put_i64(os, "to", e.to);
    put_u64(os, "hops", e.hops);
    put_u64(os, "bits", e.bits);
    put_u64(os, "cycles", e.cycles);
    if (e.energy_pj != 0.0) os << " pj=" << format_double(e.energy_pj);
    put_i64(os, "shard", e.shard);
    os << '\n';
  }
  return os.str();
}

bool EventLog::parse(const std::string& text, EventLog* out,
                     std::string* error) {
  out->clear();
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + what;
    }
    return false;
  };
  if (!std::getline(is, line)) return fail("empty document");
  ++line_no;
  if (line != "apim-trace v1") return fail("bad header (want 'apim-trace v1')");
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string_view rest = line;
    Token tok;
    if (!next_token(rest, &tok)) continue;
    if (tok.key == "meta") {
      Meta& m = out->meta;
      while (next_token(rest, &tok)) {
        if (tok.key == "streams") m.streams = parse_u64(tok.value);
        else if (tok.key == "lanes") m.lanes = parse_u64(tok.value);
        else if (tok.key == "queue_capacity")
          m.queue_capacity = parse_u64(tok.value);
        else if (tok.key == "fair_share")
          m.fair_share = parse_u64(tok.value) != 0;
        else if (tok.key == "quantum") m.quantum_ops = parse_u64(tok.value);
        else if (tok.key == "default_weight")
          m.default_weight = parse_u64(tok.value);
        else if (tok.key == "health") m.health = parse_u64(tok.value) != 0;
        else if (tok.key == "chips") m.chips = parse_u64(tok.value);
        else if (tok.key == "shards") m.shards = parse_u64(tok.value);
        else if (tok.key == "topology")
          m.topology = static_cast<std::uint8_t>(parse_u64(tok.value));
        else if (tok.key == "hop_latency")
          m.hop_latency_cycles = parse_u64(tok.value);
        else if (tok.key == "link_bits") m.link_bits = parse_u64(tok.value);
        else if (tok.key == "pj_per_bit_hop")
          m.pj_per_bit_hop = parse_double(tok.value);
        else if (tok.key == "shard_bits") m.shard_bits = parse_u64(tok.value);
        else if (tok.key == "overflowed")
          out->overflowed_ = parse_u64(tok.value) != 0;
        else
          return fail("unknown meta key '" + std::string(tok.key) + "'");
      }
    } else if (tok.key == "weight") {
      std::string app;
      std::uint64_t w = 0;
      while (next_token(rest, &tok)) {
        if (tok.key == "app") app = std::string(tok.value);
        else if (tok.key == "w") w = parse_u64(tok.value);
        else
          return fail("unknown weight key '" + std::string(tok.key) + "'");
      }
      if (app.empty()) return fail("weight record without app");
      out->meta.weights[app] = w;
    } else if (tok.key == "event") {
      Event e;
      bool have_kind = false;
      while (next_token(rest, &tok)) {
        if (tok.key == "k") {
          if (!kind_from_string(std::string(tok.value), &e.kind))
            return fail("unknown event kind '" + std::string(tok.value) + "'");
          have_kind = true;
        } else if (tok.key == "t") e.at = parse_u64(tok.value);
        else if (tok.key == "chip")
          e.chip = static_cast<std::int32_t>(parse_i64(tok.value));
        else if (tok.key == "req") e.req = parse_i64(tok.value);
        else if (tok.key == "app") e.app = std::string(tok.value);
        else if (tok.key == "domain") e.domain = parse_i64(tok.value);
        else if (tok.key == "op")
          e.op = static_cast<std::uint8_t>(parse_u64(tok.value));
        else if (tok.key == "width")
          e.width = static_cast<unsigned>(parse_u64(tok.value));
        else if (tok.key == "relax")
          e.relax = static_cast<unsigned>(parse_u64(tok.value));
        else if (tok.key == "policy")
          e.policy = static_cast<std::uint8_t>(parse_u64(tok.value));
        else if (tok.key == "ops") e.ops = parse_u64(tok.value);
        else if (tok.key == "members") {
          std::string_view v = tok.value;
          while (!v.empty()) {
            const std::size_t comma = v.find(',');
            const std::string_view item =
                comma == std::string_view::npos ? v : v.substr(0, comma);
            e.members.push_back(parse_u64(item));
            v.remove_prefix(comma == std::string_view::npos ? v.size()
                                                            : comma + 1);
          }
        } else if (tok.key == "amount") e.amount = parse_u64(tok.value);
        else if (tok.key == "deficit") e.deficit_after = parse_u64(tok.value);
        else if (tok.key == "idle") e.idle_reset = parse_u64(tok.value) != 0;
        else if (tok.key == "depth") e.queue_depth = parse_u64(tok.value);
        else if (tok.key == "cap") e.capacity = parse_u64(tok.value);
        else if (tok.key == "state_from")
          e.state_from = static_cast<std::uint8_t>(parse_u64(tok.value));
        else if (tok.key == "state_to")
          e.state_to = static_cast<std::uint8_t>(parse_u64(tok.value));
        else if (tok.key == "dead") e.dead = parse_u64(tok.value) != 0;
        else if (tok.key == "clean") e.clean = parse_u64(tok.value) != 0;
        else if (tok.key == "offline") e.offline = parse_u64(tok.value) != 0;
        else if (tok.key == "stuck") e.stuck = parse_u64(tok.value);
        else if (tok.key == "repaired") e.repaired = parse_u64(tok.value);
        else if (tok.key == "det") e.detections = parse_u64(tok.value);
        else if (tok.key == "esc") e.escalations = parse_u64(tok.value);
        else if (tok.key == "scrub") e.scrub = parse_u64(tok.value) != 0;
        else if (tok.key == "from") e.from = parse_i64(tok.value);
        else if (tok.key == "to") e.to = parse_i64(tok.value);
        else if (tok.key == "hops") e.hops = parse_u64(tok.value);
        else if (tok.key == "bits") e.bits = parse_u64(tok.value);
        else if (tok.key == "cycles") e.cycles = parse_u64(tok.value);
        else if (tok.key == "pj") e.energy_pj = parse_double(tok.value);
        else if (tok.key == "shard") e.shard = parse_i64(tok.value);
        else
          return fail("unknown event key '" + std::string(tok.key) + "'");
      }
      if (!have_kind) return fail("event record without kind");
      out->events_.push_back(std::move(e));
    } else {
      return fail("unknown record '" + std::string(tok.key) + "'");
    }
  }
  return true;
}

}  // namespace apim::serve::trace
