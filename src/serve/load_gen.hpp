// Seeded load generation for the serving runtime.
//
// Open loop: a Poisson arrival process at a configured offered rate —
// requests arrive on the simulated clock whether or not the server keeps
// up, which is what exposes the throughput-latency curve (and queueing
// collapse past saturation). Closed loop is driven by the server itself
// (Server::run_closed_loop): each virtual client submits its next request
// only when the previous one completes.
//
// Everything derives from an explicit seed through util::Xoshiro256, so a
// trace is bit-identical across runs, platforms and host thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace apim::serve {

struct LoadGenConfig {
  std::size_t requests = 1000;
  /// Mean offered load in requests per 1000 simulated cycles (Poisson).
  double rate_per_kcycle = 1.0;
  std::uint64_t seed = 2017;
  /// Tenant apps, drawn uniformly per request; empty means "" (exact).
  std::vector<std::string> apps;
  /// Operand pairs per request, drawn uniformly in [min_ops, max_ops].
  std::size_t min_ops = 8;
  std::size_t max_ops = 8;
  unsigned width = 32;
  /// Fraction of requests that are vector adds (rest are multiplies).
  double add_fraction = 0.0;
  /// Relative deadline applied to every request; 0 = none.
  util::Cycles deadline = 0;
  reliability::ReliabilityPolicy policy = reliability::ReliabilityPolicy::kOff;
  quality::QosSpec qos = quality::QosSpec::numeric();
};

/// Generate an open-loop trace: requests sorted by arrival cycle.
[[nodiscard]] std::vector<Request> make_open_loop_trace(
    const LoadGenConfig& cfg);

}  // namespace apim::serve
