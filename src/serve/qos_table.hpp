// Per-application relax-level table (paper Sections 4.1/4.3).
//
// The framework tunes the approximation level OFFLINE per application
// with the AccuracyTuner and applies it at runtime when the application
// is detected. The serving runtime's copy of that idea: build_qos_table
// runs each registered workload through the tuner once, and the scheduler
// looks the tenant's relax level up per request. A tenant that misses its
// QoS while serving is escalated — pinned to exact — until the operator
// rebuilds the table (Server handles the escalation itself).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/tuner.hpp"

namespace apim::serve {

struct QosTableEntry {
  unsigned relax_bits = 0;    ///< Tuned setting; 0 = exact fallback.
  double expected_loss = 0.0; ///< Offline-measured loss at that setting.
  bool met_qos = true;        ///< False when even exact failed offline.
  bool escalated = false;     ///< Runtime QoS miss pinned this app to exact.
};

class QosTable {
 public:
  void set(const std::string& app, QosTableEntry entry) {
    entries_[app] = entry;
  }

  /// Relax level to serve `app` at: the tuned setting, 0 when the app is
  /// unknown (conservative exact fallback) or has been escalated.
  [[nodiscard]] unsigned relax_for(const std::string& app) const {
    const auto it = entries_.find(app);
    if (it == entries_.end() || it->second.escalated) return 0;
    return it->second.relax_bits;
  }

  /// Pin `app` to exact after a runtime QoS miss. Unknown apps are
  /// inserted as escalated so the miss is remembered.
  void escalate(const std::string& app) { entries_[app].escalated = true; }

  [[nodiscard]] bool escalated(const std::string& app) const {
    const auto it = entries_.find(app);
    return it != entries_.end() && it->second.escalated;
  }

  [[nodiscard]] const std::map<std::string, QosTableEntry>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, QosTableEntry> entries_;
};

/// Tune every app in `apps` (names from apps::make_application) on a
/// `elements`-element seeded workload and record the chosen relax level.
/// Unknown names get an exact entry. This is the offline step; it charges
/// host time, not simulated serving time.
[[nodiscard]] QosTable build_qos_table(std::span<const std::string> apps,
                                       std::size_t elements,
                                       std::uint64_t seed,
                                       const core::AccuracyTuner& tuner = core::AccuracyTuner());

}  // namespace apim::serve
