// Serving metrics: counters, distributions and a consistent snapshot.
//
// The scheduler records everything in SIMULATED cycles (the served chip's
// clock). Metrics is thread-safe so the async server's callers can
// snapshot while the scheduler thread is serving; a snapshot is taken
// under the same lock the recorders use, so its counts are mutually
// consistent (completed + rejected + expired + invalid never exceeds
// submitted, latency sample count equals completed, and so on).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "serve/health.hpp"
#include "util/units.hpp"

namespace apim::serve {

struct MetricsSnapshot {
  // -- Request accounting --------------------------------------------------
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t invalid = 0;
  std::uint64_t escalations = 0;  ///< QoS-miss exact re-executions.

  // -- Dispatch accounting -------------------------------------------------
  std::uint64_t batches = 0;
  std::uint64_t batched_ops = 0;
  double mean_batch_requests = 0.0;
  std::size_t max_batch_requests = 0;
  std::size_t max_queue_depth = 0;

  // -- Simulated time ------------------------------------------------------
  util::Cycles span_cycles = 0;  ///< First arrival to last completion.
  double p50_latency_cycles = 0.0;
  double p95_latency_cycles = 0.0;
  double p99_latency_cycles = 0.0;
  double mean_latency_cycles = 0.0;
  /// Completed requests per simulated second.
  double throughput_rps = 0.0;
  /// Busy lane-cycles over lanes * span (0..1).
  double lane_occupancy = 0.0;
  /// Busy stream-cycles over streams * span (0..1).
  double stream_occupancy = 0.0;

  double energy_pj = 0.0;
  core::ExecStats device_stats{};  ///< Aggregate over all dispatches.

  /// Jain fairness index over weight-normalized per-app served ops,
  /// (Σx)² / (n·Σx²) with x = ops_served / weight: 1.0 when every tenant
  /// receives service exactly in weight proportion, → 1/n as one tenant
  /// monopolizes. 1.0 when fewer than two tenants dispatched.
  double jain_fairness = 1.0;

  // -- Online health (all zero/empty unless ServerConfig::health.enabled) ---
  /// Per-fault-domain health view, indexed by domain (= stream) id.
  struct DomainSnapshot {
    health::DomainState state = health::DomainState::kHealthy;
    bool dead = false;
    std::uint64_t dispatches = 0;   ///< Batches executed on this domain.
    std::uint64_t detections = 0;   ///< Residue/vote mismatches observed.
    std::uint64_t escalations = 0;  ///< Exhausted retry ladders observed.
    std::uint64_t scrubs = 0;       ///< March-test passes (incl. re-tests).
    std::uint64_t stuck_found = 0;  ///< Stuck bits seen by those passes.
    std::uint64_t repaired_bits = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t readmissions = 0;
  };
  std::vector<DomainSnapshot> domains;
  std::uint64_t scrub_passes = 0;
  util::Cycles scrub_cycles = 0;  ///< Stream-cycles spent scrubbing.
  double scrub_energy_pj = 0.0;
  std::uint64_t scrub_repaired_bits = 0;
  std::uint64_t relocated_requests = 0;  ///< Re-queues off failing domains.
  std::uint64_t relocated_ops = 0;
  std::uint64_t relocated_batches = 0;
  std::uint64_t relocation_rejects = 0;  ///< Gave up after max_relocations.
  std::uint64_t degraded_batches = 0;    ///< Ran at an upgraded policy.
  std::uint64_t degraded_ops = 0;
  /// Serving-capacity timeline: one point per change in the number of
  /// serving (non-quarantined) domains, starting at (0, streams).
  struct CapacityPoint {
    util::Cycles at = 0;
    std::size_t serving_domains = 0;
  };
  std::vector<CapacityPoint> capacity_timeline;
  std::size_t min_serving_domains = 0;
  [[nodiscard]] std::size_t serving_domains() const noexcept {
    return capacity_timeline.empty() ? 0
                                     : capacity_timeline.back().serving_domains;
  }

  /// Per-tenant completion/escalation counts and fairness accounting.
  struct AppCounts {
    std::uint64_t completed = 0;
    std::uint64_t escalated = 0;
    std::uint64_t qos_misses = 0;  ///< Final results that still missed.
    // -- Fairness (recorded at dispatch, serve/scheduler.hpp) -------------
    std::uint32_t weight = 1;       ///< Scheduling weight in effect.
    std::uint64_t dispatches = 0;   ///< Batches this app dispatched.
    std::uint64_t ops_served = 0;   ///< Executed ops (expired excluded).
    std::uint64_t max_deficit_carried = 0;  ///< Peak DRR deficit held.
    /// Longest close-to-dispatch wait of any of this app's batches: the
    /// starvation gap a fair scheduler bounds.
    util::Cycles max_starvation_cycles = 0;
  };
  std::map<std::string, AppCounts> per_app;

  /// p99 against the configured SLO; true when no SLO is set.
  [[nodiscard]] bool slo_met(double slo_p99_cycles) const noexcept {
    return slo_p99_cycles <= 0.0 || p99_latency_cycles <= slo_p99_cycles;
  }
};

class Metrics {
 public:
  Metrics(std::size_t lanes_total, std::size_t streams)
      : lanes_total_(lanes_total), streams_(streams) {}

  void record_submitted(util::Cycles arrival);
  void record_rejected();
  void record_expired();
  void record_invalid();
  void record_queue_depth(std::size_t depth);
  void record_dispatch(std::size_t batch_requests, std::size_t batch_ops,
                       std::size_t lanes_used, util::Cycles busy_cycles,
                       double energy_pj, const core::ExecStats& stats);
  void record_completed(const std::string& app, util::Cycles arrival,
                        util::Cycles completion, bool escalated,
                        bool qos_missed);
  void record_escalation();
  /// Fairness accounting for one dispatched batch: `ops` executed ops,
  /// `queued_for` cycles between batch close and dispatch, and the DRR
  /// deficit the tenant carried after being charged.
  void record_tenant_dispatch(const std::string& app, std::uint32_t weight,
                              std::size_t ops, util::Cycles queued_for,
                              std::uint64_t deficit_carried);

  // -- Online health recorders (serve/health.hpp; engine-driven) -----------
  /// Size the per-domain table and seed the capacity timeline at
  /// (0, domains). Called once by the engine when the health layer is on.
  void configure_domains(std::size_t domains);
  void record_domain_dispatch(std::size_t domain, std::uint64_t detections,
                              std::uint64_t escalations);
  /// Domain state after a monitor transition; appends a capacity point
  /// when the serving-domain count changed and counts
  /// quarantine/readmission edges.
  void record_domain_state(std::size_t domain, health::DomainState state,
                           bool dead, util::Cycles at, std::size_t serving);
  void record_scrub(std::size_t domain, const health::ScrubReport& report);
  /// One relocated batch: `requests` members re-queued carrying `ops`.
  void record_relocation(std::size_t requests, std::size_t ops);
  void record_relocation_reject();
  void record_degraded(std::size_t ops);

  /// Consistent point-in-time view; callable while serving.
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::size_t lanes_total_;
  std::size_t streams_;

  std::uint64_t submitted_ = 0, rejected_ = 0, expired_ = 0, invalid_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t batches_ = 0, batched_ops_ = 0;
  std::size_t max_batch_requests_ = 0;
  std::size_t max_queue_depth_ = 0;
  bool saw_arrival_ = false;
  util::Cycles first_arrival_ = 0;
  util::Cycles last_completion_ = 0;
  util::Cycles busy_lane_cycles_ = 0;
  util::Cycles busy_stream_cycles_ = 0;
  double energy_pj_ = 0.0;
  core::ExecStats device_stats_{};
  std::vector<double> latency_samples_;
  std::vector<double> batch_size_samples_;
  std::map<std::string, MetricsSnapshot::AppCounts> per_app_;

  // -- Online health state --------------------------------------------------
  std::vector<MetricsSnapshot::DomainSnapshot> domains_;
  std::uint64_t scrub_passes_ = 0;
  util::Cycles scrub_cycles_ = 0;
  double scrub_energy_pj_ = 0.0;
  std::uint64_t scrub_repaired_bits_ = 0;
  std::uint64_t relocated_requests_ = 0, relocated_ops_ = 0;
  std::uint64_t relocated_batches_ = 0, relocation_rejects_ = 0;
  std::uint64_t degraded_batches_ = 0, degraded_ops_ = 0;
  std::vector<MetricsSnapshot::CapacityPoint> capacity_timeline_;
  std::size_t min_serving_domains_ = 0;
};

}  // namespace apim::serve
