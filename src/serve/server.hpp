// Serving runtime: an asynchronous multi-tenant request scheduler over the
// APIM chip model.
//
// The Server owns a bounded admission queue, a dynamic batcher
// (serve/batcher.hpp) and a pool of execution resources derived from the
// chip: `streams` controller command streams (one broadcast schedule at a
// time each, core/chip.hpp) with `lanes_per_stream` lanes behind each.
// Scheduling runs in VIRTUAL time (simulated MAGIC cycles) as a
// discrete-event model; host threads (util::ThreadPool) only accelerate
// the arithmetic inside each dispatch, so served values, timestamps and
// metrics are bit-identical for every host worker count — the same
// determinism discipline as apps::parallel_map.
//
// Request lifecycle:
//   submit/arrival -> admission (reject or block at capacity)
//     -> relax level from the QoS table (exact fallback)
//     -> dynamic batcher (same-shape, single-tenant coalescing)
//     -> fair-share scheduler (per-tenant deficit round-robin with
//        weighted stream allocation, serve/scheduler.hpp)
//     -> dispatch on a free stream (deadline-expired members dropped)
//     -> completion; QoS check vs host-exact golden
//     -> on miss: escalate app to exact, re-execute once
//
// Three driving modes share the engine:
//  * run_trace        — deterministic open-loop replay of a seeded trace;
//  * run_closed_loop  — N virtual clients, next request on completion;
//  * start/submit/stop — live async serving with std::future responses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/chip.hpp"
#include "core/config.hpp"
#include "serve/health.hpp"
#include "serve/metrics.hpp"
#include "serve/qos_table.hpp"
#include "serve/request.hpp"

namespace apim::serve {

namespace trace {
class EventLog;
}  // namespace trace

enum class AdmissionPolicy : std::uint8_t {
  kReject,  ///< Queue at capacity: fail fast with kRejected.
  kBlock,   ///< Queue at capacity: delay admission until space frees.
};

struct ServerConfig {
  /// Controller command streams (concurrent dispatches) and lanes each
  /// stream broadcasts to. Defaults are a small slice of a chip, sized so
  /// tests and benches run in milliseconds; from_chip() scales them up.
  std::size_t streams = 4;
  std::size_t lanes_per_stream = 64;

  /// Admission control: requests waiting (batching or awaiting a stream).
  std::size_t queue_capacity = 1024;
  AdmissionPolicy admission = AdmissionPolicy::kReject;

  /// Batching window in simulated cycles: how long an open batch waits to
  /// coalesce same-shaped company. 0 disables coalescing entirely (every
  /// request dispatches alone — the comparison baseline).
  util::Cycles batch_window = 2000;
  /// Op budget per dispatch; 0 means lanes_per_stream.
  std::size_t max_batch_ops = 0;

  /// Controller setup charged per dispatch (broadcast configuration,
  /// operand staging). This is what batching amortizes.
  util::Cycles dispatch_cycles = 64;

  /// Deadline applied to requests that carry none; 0 = unbounded.
  util::Cycles default_deadline = 0;

  /// Fair-share dispatch (serve/scheduler.hpp): drain closed batches with
  /// a per-tenant deficit round-robin and weighted stream allocation
  /// instead of the legacy global FIFO in batch-close order. With one
  /// tenant (or equal weights and no contention) the schedules coincide;
  /// under contention DRR serves tenants' ops in weight proportion.
  bool fair_share = true;
  /// Scheduling weight per app; unlisted apps get `default_tenant_weight`
  /// (zero clamps to one). Weights set both the DRR quantum scale and the
  /// concurrent-stream share.
  std::map<std::string, std::uint32_t> tenant_weights;
  std::uint32_t default_tenant_weight = 1;
  /// DRR quantum in ops credited per ring visit (scaled by the tenant's
  /// weight); 0 means batch_op_budget() — one full dispatch per visit.
  std::size_t drr_quantum_ops = 0;

  /// Latency SLO for reporting: target p99 in simulated cycles (0 = none).
  /// The scheduler does not gate on it; MetricsSnapshot::slo_met checks it.
  double slo_p99_cycles = 0.0;

  /// Re-execute a request exactly (and pin its app to exact) when its
  /// completed result misses its QoS spec.
  bool escalate_on_miss = true;

  /// Base device configuration: energy model, backend, fault state and
  /// retry budget. Width/relax/policy are overridden per batch shape.
  core::ApimConfig device{};

  /// Online fault-domain health layer (serve/health.hpp): per-stream
  /// state machine, background march-test scrub through the DRR
  /// scheduler, quarantine with relocation, and graceful degradation.
  /// Disabled by default; `health.fault_schedule` fires even when the
  /// layer is disabled so the chaos bench can A/B identical injections.
  health::HealthConfig health{};

  /// Optional structured event stream (serve/trace.hpp) consumed by the
  /// runtime trace verifier (analysis::check_serving_trace). nullptr (the
  /// default) emits nothing and leaves every run bit-identical to an
  /// untraced one. Attach only to the deterministic virtual-time entry
  /// points; the log is not synchronized for the live async mode.
  trace::EventLog* trace = nullptr;
  /// Chip id stamped on emitted events (set by cluster::Cluster; -1 for a
  /// standalone server).
  std::int32_t trace_chip = -1;

  [[nodiscard]] std::size_t total_lanes() const noexcept {
    return streams * lanes_per_stream;
  }
  [[nodiscard]] std::size_t batch_op_budget() const noexcept {
    return max_batch_ops == 0 ? lanes_per_stream : max_batch_ops;
  }

  /// Serving resources of a full chip: one stream per bank, the bank's
  /// active tiles as its lanes.
  [[nodiscard]] static ServerConfig from_chip(const core::ApimChip& chip);
};

class Server {
 public:
  explicit Server(ServerConfig config, QosTable table = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // -- Deterministic replay ------------------------------------------------

  /// Execute an open-loop trace (requests with arrival cycles set) to
  /// completion. Returns one response per request, in trace order.
  /// Bit-identical for every host thread count. Not concurrently callable
  /// with the async interface.
  std::vector<Response> run_trace(std::vector<Request> trace);

  /// Closed-loop drive: `clients` virtual clients each submit
  /// `requests_per_client` requests, the next one `think_cycles` after the
  /// previous completes. `make_request(client, index)` supplies each
  /// request (arrival is overwritten by the engine). Deterministic.
  std::vector<Response> run_closed_loop(
      std::size_t clients, std::size_t requests_per_client,
      util::Cycles think_cycles,
      const std::function<Request(std::size_t, std::size_t)>& make_request);

  // -- Incremental stepping (cluster coordination) -------------------------
  //
  // A coordinator that interleaves several virtual-time servers (one per
  // chip, src/cluster/) drives each engine event by event instead of
  // calling run_trace: stage arrivals as they become known, advance every
  // chip to the global minimum event time, repeat. Driving a single
  // server this way reproduces run_trace bit-exactly — step_until uses
  // the same event-selection code as run_to_completion. Not usable while
  // the async scheduler thread runs.

  /// Stage one open-loop request (arrival cycle set by the caller) without
  /// running the engine. Returns the request's dense id for response().
  std::uint64_t stage_request(Request request);

  /// Earliest virtual time at which the engine has work (an arrival,
  /// batch close, completion, fault event, repair or scrub — or queued
  /// work that is dispatchable/sheddable right now). nullopt when fully
  /// drained.
  [[nodiscard]] std::optional<util::Cycles> next_event_at() const;

  /// Process every event due at or before `limit`. Returns true when at
  /// least one event was processed.
  bool step_until(util::Cycles limit);

  /// Current virtual time of the engine clock.
  [[nodiscard]] util::Cycles virtual_now() const;

  /// Response of a staged request; meaningful once the request finalized
  /// (status != kPending).
  [[nodiscard]] const Response& response(std::uint64_t id) const;

  /// Streams currently in service: with the health layer on, the count of
  /// non-quarantined domains; with it off, all streams. Cheap (no
  /// snapshot allocation) — placement/rebalancing polls this per tick.
  [[nodiscard]] std::size_t serving_domain_count() const;

  // -- Live async serving --------------------------------------------------

  /// Start the scheduler thread. Idempotent.
  void start();

  /// Submit a request for async execution; the future resolves when the
  /// request finalizes (any status). Under kBlock this call blocks while
  /// the server is at capacity — never call it from a ThreadPool worker
  /// (util::in_pool_worker guards; such calls are rejected immediately).
  /// Virtual arrival time is stamped at admission.
  std::future<Response> submit(Request request);

  /// Drain everything in flight and join the scheduler thread. Idempotent.
  void stop();

  // -- Introspection -------------------------------------------------------

  /// Consistent metrics snapshot; safe to call while serving.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] const ServerConfig& config() const noexcept;

  /// The QoS table, including runtime escalations. Do not call while the
  /// async scheduler is running.
  [[nodiscard]] const QosTable& qos_table() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace apim::serve
