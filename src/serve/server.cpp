#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <queue>
#include <span>
#include <thread>
#include <utility>

#include "serve/batcher.hpp"
#include "serve/executor.hpp"
#include "serve/scheduler.hpp"
#include "util/bitops.hpp"
#include "util/thread_pool.hpp"

namespace apim::serve {

ServerConfig ServerConfig::from_chip(const core::ApimChip& chip) {
  ServerConfig cfg;
  cfg.streams = chip.command_streams();
  cfg.lanes_per_stream = chip.lanes_per_stream();
  cfg.device = chip.make_config();
  return cfg;
}

namespace {

/// Host-exact golden value of one op, for the completion-time QoS check.
/// Operands clamp to the word width exactly as ApimDevice does.
double golden_value(OpKind op, unsigned width, std::uint64_t a,
                    std::uint64_t b) {
  const std::uint64_t cap = util::mask_n(width);
  const double ca = static_cast<double>(std::min(a, cap));
  const double cb = static_cast<double>(std::min(b, cap));
  return op == OpKind::kMultiply ? ca * cb : ca + cb;
}

SchedulerConfig scheduler_config(const ServerConfig& cfg) {
  SchedulerConfig s;
  s.fair_share = cfg.fair_share;
  s.streams = cfg.streams;
  s.quantum_ops =
      cfg.drr_quantum_ops != 0 ? cfg.drr_quantum_ops : cfg.batch_op_budget();
  s.default_weight = cfg.default_tenant_weight;
  s.weights = cfg.tenant_weights;
  return s;
}

}  // namespace

/// One request's full scheduler state.
struct PendingReq {
  std::uint64_t id = 0;
  Request req;
  unsigned relax = 0;     ///< Current batch-shape relax level.
  bool escalated = false; ///< A QoS miss already forced an exact rerun.
  bool finalized = false;
  Response resp;
  std::optional<std::promise<Response>> promise;  ///< Live mode only.
  // Closed-loop bookkeeping.
  std::size_t client = 0;
  std::size_t client_index = 0;
};

/// The deterministic virtual-time scheduler shared by every driving mode.
/// Single-threaded by design: host parallelism lives INSIDE dispatches
/// (serve/executor.hpp), which keeps the event order — and therefore every
/// timestamp and metric — independent of the host worker count.
class Engine {
 public:
  Engine(const ServerConfig& cfg, QosTable& table, Metrics& metrics)
      : cfg_(cfg),
        table_(table),
        metrics_(metrics),
        batcher_(cfg.batch_window, cfg.batch_op_budget()),
        sched_(scheduler_config(cfg)),
        free_streams_(cfg.streams) {
    assert(cfg_.streams >= 1 && cfg_.lanes_per_stream >= 1);
    assert(cfg_.queue_capacity >= 1);
  }

  std::function<void(PendingReq&)> on_finalize;
  /// Live mode frees a request's state once its promise is fulfilled.
  bool release_after_finalize = false;
  /// Trace/closed-loop modes enforce queue capacity inside the engine;
  /// live mode enforces it at submit() (outstanding counter) instead.
  bool enforce_capacity = true;

  [[nodiscard]] util::Cycles now() const noexcept { return now_; }

  [[nodiscard]] PendingReq& at(std::uint64_t id) { return *reqs_[id]; }

  std::uint64_t create(Request req) {
    auto p = std::make_unique<PendingReq>();
    p->id = reqs_.size();
    p->req = std::move(req);
    reqs_.push_back(std::move(p));
    return reqs_.back()->id;
  }

  void push_arrival(std::uint64_t id) {
    arrivals_.emplace(reqs_[id]->req.arrival, id);
  }

  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return batcher_.pending_requests() + sched_.pending_requests();
  }

  [[nodiscard]] bool has_events() const {
    return !arrivals_.empty() || batcher_.pending_requests() > 0 ||
           sched_.has_work() || !inflight_.empty();
  }

  /// Advance to the next event time and process everything due. Returns
  /// false when no event remains (the system is drained).
  bool step() {
    std::optional<util::Cycles> next;
    const auto consider = [&](util::Cycles c) {
      if (!next || c < *next) next = c;
    };
    if (!arrivals_.empty() && admission_open())
      consider(arrivals_.top().first);
    if (const auto close = batcher_.next_close()) consider(*close);
    for (const InFlight& f : inflight_) consider(f.completion);
    if (!next) {
      // Belt and braces: a closed batch with a free stream has no timer.
      if (sched_.has_work() && free_streams_ > 0) {
        try_dispatch();
        return true;
      }
      return false;
    }
    if (*next > now_) now_ = *next;
    complete_due();
    admit_due();
    for (ClosedBatch& b : batcher_.close_due(now_))
      enqueue_closed(std::move(b));
    try_dispatch();
    return true;
  }

  void run_to_completion() {
    while (step()) {
    }
  }

 private:
  struct InFlight {
    util::Cycles completion = 0;
    std::uint64_t seq = 0;
    std::vector<std::uint64_t> members;
    std::string app;  ///< Tenant charged for the stream (share caps).
  };

  [[nodiscard]] bool admission_open() const noexcept {
    return !enforce_capacity ||
           cfg_.admission == AdmissionPolicy::kReject ||
           queue_depth() < cfg_.queue_capacity;
  }

  void finalize(PendingReq& p, RequestStatus status, util::Cycles when) {
    assert(!p.finalized);
    p.resp.id = p.id;
    p.resp.status = status;
    p.resp.arrival = p.req.arrival;
    if (p.resp.completion < when) p.resp.completion = when;
    p.finalized = true;
    switch (status) {
      case RequestStatus::kRejected: metrics_.record_rejected(); break;
      case RequestStatus::kExpired: metrics_.record_expired(); break;
      case RequestStatus::kInvalid: metrics_.record_invalid(); break;
      case RequestStatus::kOk:
        metrics_.record_completed(p.req.app, p.req.arrival, p.resp.completion,
                                  p.escalated, !p.resp.qos.acceptable);
        break;
      case RequestStatus::kPending: break;  // Unreachable.
    }
    const std::uint64_t id = p.id;
    if (on_finalize) on_finalize(p);
    if (release_after_finalize) reqs_[id].reset();
  }

  void join_batcher(PendingReq& p) {
    const BatchKey key = key_for(p.req, p.relax);
    if (auto closed = batcher_.add(p.id, key, p.req.operands.size(), now_))
      enqueue_closed(std::move(*closed));
  }

  void enqueue_closed(ClosedBatch&& b) { sched_.enqueue(std::move(b)); }

  void admit_due() {
    while (!arrivals_.empty() && arrivals_.top().first <= now_) {
      if (enforce_capacity && cfg_.admission == AdmissionPolicy::kBlock &&
          queue_depth() >= cfg_.queue_capacity) {
        break;  // Head-of-line blocks; later arrivals wait behind it.
      }
      const std::uint64_t id = arrivals_.top().second;
      arrivals_.pop();
      PendingReq& p = at(id);
      metrics_.record_submitted(p.req.arrival);
      if (p.req.width < 4 || p.req.width > 32 || p.req.operands.empty()) {
        finalize(p, RequestStatus::kInvalid, now_);
        continue;
      }
      if (enforce_capacity && queue_depth() >= cfg_.queue_capacity) {
        finalize(p, RequestStatus::kRejected, now_);
        continue;
      }
      p.relax = table_.relax_for(p.req.app);
      join_batcher(p);
      metrics_.record_queue_depth(queue_depth());
    }
  }

  void try_dispatch() {
    while (free_streams_ > 0) {
      std::optional<DispatchPick> pick = sched_.next(now_);
      if (!pick) break;
      ClosedBatch batch = std::move(pick->batch);

      // Deadline check at dispatch: members whose (absolute) deadline has
      // passed expire without executing — no lanes, no energy. Their ops
      // are refunded to the tenant's deficit: DRR rates EXECUTED ops.
      std::vector<std::uint64_t> live;
      live.reserve(batch.members.size());
      std::size_t expired_ops = 0;
      for (const std::uint64_t id : batch.members) {
        PendingReq& p = at(id);
        const util::Cycles deadline =
            p.req.deadline != 0 ? p.req.deadline : cfg_.default_deadline;
        if (deadline != 0 && now_ > p.req.arrival + deadline) {
          expired_ops += p.req.operands.size();
          finalize(p, RequestStatus::kExpired, now_);
        } else {
          live.push_back(id);
        }
      }
      if (expired_ops > 0) sched_.refund(pick->app, expired_ops);
      if (live.empty()) continue;  // Nothing to run; stream stays free.

      std::vector<std::span<const std::pair<std::uint64_t, std::uint64_t>>>
          spans;
      spans.reserve(live.size());
      std::size_t total_ops = 0;
      for (const std::uint64_t id : live) {
        spans.emplace_back(at(id).req.operands);
        total_ops += at(id).req.operands.size();
      }
      BatchExecution exec =
          execute_batch(spans, batch.key, cfg_.lanes_per_stream, cfg_.device);
      const util::Cycles busy = cfg_.dispatch_cycles + exec.makespan;
      const util::Cycles completion = now_ + busy;
      metrics_.record_dispatch(live.size(), total_ops, exec.lanes_used, busy,
                               exec.energy_pj, exec.stats);
      metrics_.record_tenant_dispatch(pick->app, pick->weight, total_ops,
                                      pick->queued_for,
                                      pick->deficit_carried);
      const double energy_per_op =
          total_ops == 0 ? 0.0
                         : exec.energy_pj / static_cast<double>(total_ops);
      for (std::size_t m = 0; m < live.size(); ++m) {
        PendingReq& p = at(live[m]);
        p.resp.values = std::move(exec.values[m]);
        p.resp.dispatch = now_;
        p.resp.completion = completion;
        p.resp.batch_requests = live.size();
        // += so an escalated rerun's energy adds to the first pass.
        p.resp.energy_pj +=
            energy_per_op * static_cast<double>(p.req.operands.size());
      }
      --free_streams_;
      sched_.stream_acquired(pick->app);
      inflight_.push_back(InFlight{completion, next_dispatch_seq_++,
                                   std::move(live), std::move(pick->app)});
    }
  }

  void complete_due() {
    for (;;) {
      std::size_t best = inflight_.size();
      for (std::size_t i = 0; i < inflight_.size(); ++i) {
        if (inflight_[i].completion > now_) continue;
        if (best == inflight_.size() ||
            inflight_[i].completion < inflight_[best].completion ||
            (inflight_[i].completion == inflight_[best].completion &&
             inflight_[i].seq < inflight_[best].seq)) {
          best = i;
        }
      }
      if (best == inflight_.size()) return;
      InFlight done = std::move(inflight_[best]);
      inflight_.erase(inflight_.begin() +
                      static_cast<std::ptrdiff_t>(best));
      ++free_streams_;
      sched_.stream_released(done.app);

      for (const std::uint64_t id : done.members) {
        PendingReq& p = at(id);
        std::vector<double> golden, test;
        golden.reserve(p.req.operands.size());
        test.reserve(p.req.operands.size());
        for (std::size_t j = 0; j < p.req.operands.size(); ++j) {
          golden.push_back(golden_value(p.req.op, p.req.width,
                                        p.req.operands[j].first,
                                        p.req.operands[j].second));
          test.push_back(static_cast<double>(p.resp.values[j]));
        }
        p.resp.qos = quality::evaluate_qos(p.req.qos, golden, test);
        if (!p.resp.qos.acceptable && p.relax > 0 && cfg_.escalate_on_miss &&
            !p.escalated) {
          // QoS miss under approximation: pin the app to exact and rerun
          // this request exactly, charging the extra latency to it.
          p.escalated = true;
          metrics_.record_escalation();
          table_.escalate(p.req.app);
          p.relax = 0;
          join_batcher(p);
          metrics_.record_queue_depth(queue_depth());
        } else {
          p.resp.relax_bits = p.relax;
          p.resp.escalated = p.escalated;
          finalize(p, RequestStatus::kOk, p.resp.completion);
        }
      }
    }
  }

  const ServerConfig& cfg_;
  QosTable& table_;
  Metrics& metrics_;
  DynamicBatcher batcher_;
  DrrScheduler sched_;
  std::size_t free_streams_;
  util::Cycles now_ = 0;

  std::vector<std::unique_ptr<PendingReq>> reqs_;
  /// (arrival, id) min-heap: earliest arrival first, id tie-break.
  std::priority_queue<std::pair<util::Cycles, std::uint64_t>,
                      std::vector<std::pair<util::Cycles, std::uint64_t>>,
                      std::greater<>>
      arrivals_;
  std::vector<InFlight> inflight_;
  std::uint64_t next_dispatch_seq_ = 0;
};

struct Server::Impl {
  explicit Impl(ServerConfig c, QosTable t)
      : cfg(std::move(c)),
        table(std::move(t)),
        metrics(cfg.total_lanes(), cfg.streams),
        engine(cfg, table, metrics) {}

  ServerConfig cfg;
  QosTable table;
  Metrics metrics;
  Engine engine;

  // -- Live async state ----------------------------------------------------
  struct Submission {
    Request req;
    std::promise<Response> promise;
  };
  std::thread scheduler;
  bool running = false;
  bool stop_requested = false;
  std::mutex mailbox_mutex;
  std::condition_variable mailbox_cv;
  std::condition_variable space_cv;
  std::deque<Submission> mailbox;
  std::atomic<std::size_t> outstanding{0};
  std::atomic<util::Cycles> now_approx{0};

  void scheduler_loop();
};

void Server::Impl::scheduler_loop() {
  engine.enforce_capacity = false;  // submit() enforces via `outstanding`.
  engine.release_after_finalize = true;
  engine.on_finalize = [this](PendingReq& p) {
    if (p.promise) p.promise->set_value(std::move(p.resp));
    outstanding.fetch_sub(1, std::memory_order_acq_rel);
    {
      // Pair the notification with the mutex so a blocked submit() cannot
      // miss the wakeup between its predicate check and its wait.
      const std::lock_guard<std::mutex> lock(mailbox_mutex);
    }
    space_cv.notify_all();
  };

  for (;;) {
    std::deque<Submission> pulled;
    {
      std::unique_lock<std::mutex> lock(mailbox_mutex);
      mailbox_cv.wait(lock, [&] {
        return stop_requested || !mailbox.empty() || engine.has_events();
      });
      pulled.swap(mailbox);
      if (pulled.empty() && !engine.has_events() && stop_requested) break;
    }
    for (Submission& s : pulled) {
      s.req.arrival = engine.now();
      const std::uint64_t id = engine.create(std::move(s.req));
      engine.at(id).promise = std::move(s.promise);
      engine.push_arrival(id);
    }
    engine.step();
    now_approx.store(engine.now(), std::memory_order_relaxed);
  }

  engine.on_finalize = nullptr;
  engine.release_after_finalize = false;
  engine.enforce_capacity = true;
}

Server::Server(ServerConfig config, QosTable table)
    : impl_(std::make_unique<Impl>(std::move(config), std::move(table))) {}

Server::~Server() { stop(); }

std::vector<Response> Server::run_trace(std::vector<Request> trace) {
  assert(!impl_->running);
  Engine& engine = impl_->engine;
  std::vector<std::uint64_t> ids;
  ids.reserve(trace.size());
  for (Request& r : trace) ids.push_back(engine.create(std::move(r)));
  for (const std::uint64_t id : ids) engine.push_arrival(id);
  engine.run_to_completion();
  std::vector<Response> responses;
  responses.reserve(ids.size());
  for (const std::uint64_t id : ids) responses.push_back(engine.at(id).resp);
  return responses;
}

std::vector<Response> Server::run_closed_loop(
    std::size_t clients, std::size_t requests_per_client,
    util::Cycles think_cycles,
    const std::function<Request(std::size_t, std::size_t)>& make_request) {
  assert(!impl_->running);
  Engine& engine = impl_->engine;
  std::vector<std::uint64_t> ids;
  ids.reserve(clients * requests_per_client);

  const auto submit_for = [&](std::size_t client, std::size_t index,
                              util::Cycles arrival) {
    Request next = make_request(client, index);
    next.arrival = arrival;
    const std::uint64_t id = engine.create(std::move(next));
    engine.at(id).client = client;
    engine.at(id).client_index = index;
    engine.push_arrival(id);
    ids.push_back(id);
  };

  engine.on_finalize = [&](PendingReq& p) {
    if (p.client_index + 1 < requests_per_client)
      submit_for(p.client, p.client_index + 1,
                 p.resp.completion + think_cycles);
  };
  for (std::size_t c = 0; c < clients; ++c)
    submit_for(c, 0, engine.now());
  engine.run_to_completion();
  engine.on_finalize = nullptr;

  std::sort(ids.begin(), ids.end());
  std::vector<Response> responses;
  responses.reserve(ids.size());
  for (const std::uint64_t id : ids) responses.push_back(engine.at(id).resp);
  return responses;
}

void Server::start() {
  Impl& impl = *impl_;
  if (impl.running) return;
  impl.stop_requested = false;
  impl.running = true;
  impl.scheduler = std::thread([&impl] { impl.scheduler_loop(); });
}

std::future<Response> Server::submit(Request request) {
  start();
  Impl& impl = *impl_;
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();

  const auto reject_now = [&]() {
    Response r;
    r.status = RequestStatus::kRejected;
    r.arrival = impl.now_approx.load(std::memory_order_relaxed);
    r.completion = r.arrival;
    impl.metrics.record_submitted(r.arrival);
    impl.metrics.record_rejected();
    promise.set_value(std::move(r));
    return std::move(future);
  };

  // A pool worker blocking here could deadlock the pool the dispatches
  // themselves need, so refuse outright (util/thread_pool.hpp).
  if (util::in_pool_worker()) return reject_now();

  if (impl.cfg.admission == AdmissionPolicy::kReject &&
      impl.outstanding.load(std::memory_order_acquire) >=
          impl.cfg.queue_capacity) {
    return reject_now();
  }
  if (impl.cfg.admission == AdmissionPolicy::kBlock) {
    std::unique_lock<std::mutex> lock(impl.mailbox_mutex);
    impl.space_cv.wait(lock, [&] {
      return impl.stop_requested ||
             impl.outstanding.load(std::memory_order_acquire) <
                 impl.cfg.queue_capacity;
    });
    if (impl.stop_requested) return reject_now();
  }

  impl.outstanding.fetch_add(1, std::memory_order_acq_rel);
  {
    const std::lock_guard<std::mutex> lock(impl.mailbox_mutex);
    impl.mailbox.push_back(
        Impl::Submission{std::move(request), std::move(promise)});
  }
  impl.mailbox_cv.notify_one();
  return future;
}

void Server::stop() {
  Impl& impl = *impl_;
  if (!impl.running) return;
  {
    const std::lock_guard<std::mutex> lock(impl.mailbox_mutex);
    impl.stop_requested = true;
  }
  impl.mailbox_cv.notify_all();
  impl.space_cv.notify_all();
  impl.scheduler.join();
  impl.running = false;
  impl.stop_requested = false;
}

MetricsSnapshot Server::snapshot() const { return impl_->metrics.snapshot(); }

const ServerConfig& Server::config() const noexcept { return impl_->cfg; }

const QosTable& Server::qos_table() const noexcept { return impl_->table; }

}  // namespace apim::serve
