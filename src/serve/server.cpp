#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <thread>
#include <utility>

#include "arith/compare_units.hpp"
#include "serve/batcher.hpp"
#include "serve/executor.hpp"
#include "serve/scheduler.hpp"
#include "serve/trace.hpp"
#include "util/bitops.hpp"
#include "util/thread_pool.hpp"

namespace apim::serve {

ServerConfig ServerConfig::from_chip(const core::ApimChip& chip) {
  ServerConfig cfg;
  cfg.streams = chip.command_streams();
  cfg.lanes_per_stream = chip.lanes_per_stream();
  cfg.device = chip.make_config();
  // Health-layer scrub geometry follows the chip: march the per-block
  // scratch rows, repair by remapping into the spare rows (two functional
  // output bits — one per unit — clear per spare row).
  cfg.health.scrub_rows = chip.geometry().scratch_rows_per_block;
  cfg.health.scrub_cols = chip.geometry().cols;
  cfg.health.spare_bits_per_scrub = chip.geometry().spare_rows_per_block * 2;
  return cfg;
}

namespace {

/// Host-exact golden value of one op, for the completion-time QoS check.
/// Operands clamp to the word width exactly as ApimDevice does.
double golden_value(OpKind op, unsigned width, std::uint64_t a,
                    std::uint64_t b) {
  const std::uint64_t cap = util::mask_n(width);
  const std::uint64_t ca = std::min(a, cap);
  const std::uint64_t cb = std::min(b, cap);
  switch (op) {
    case OpKind::kMultiply:
      return static_cast<double>(ca) * static_cast<double>(cb);
    case OpKind::kVectorAdd:
      return static_cast<double>(ca) + static_cast<double>(cb);
    case OpKind::kCompare:
      return static_cast<double>(ca < cb   ? arith::kCmpLt
                                 : ca == cb ? arith::kCmpEq
                                            : arith::kCmpGt);
    case OpKind::kPopcount:
      return static_cast<double>(util::popcount(ca));
  }
  return 0.0;
}

SchedulerConfig scheduler_config(const ServerConfig& cfg) {
  SchedulerConfig s;
  s.fair_share = cfg.fair_share;
  s.streams = cfg.streams;
  s.quantum_ops =
      cfg.drr_quantum_ops != 0 ? cfg.drr_quantum_ops : cfg.batch_op_budget();
  s.default_weight = cfg.default_tenant_weight;
  s.weights = cfg.tenant_weights;
  if (cfg.health.enabled) {
    s.weights[health::kScrubTenant] =
        std::max<std::uint32_t>(1, cfg.health.scrub_weight);
  }
  s.trace = cfg.trace;
  s.trace_chip = cfg.trace_chip;
  return s;
}

}  // namespace

/// One request's full scheduler state.
struct PendingReq {
  std::uint64_t id = 0;
  Request req;
  unsigned relax = 0;     ///< Current batch-shape relax level.
  bool escalated = false; ///< A QoS miss already forced an exact rerun.
  bool finalized = false;
  Response resp;
  std::optional<std::promise<Response>> promise;  ///< Live mode only.
  // Closed-loop bookkeeping.
  std::size_t client = 0;
  std::size_t client_index = 0;
};

/// The deterministic virtual-time scheduler shared by every driving mode.
/// Single-threaded by design: host parallelism lives INSIDE dispatches
/// (serve/executor.hpp), which keeps the event order — and therefore every
/// timestamp and metric — independent of the host worker count.
///
/// Fault domains: each stream is one health fault domain. With the health
/// layer OFF and no fault schedule the engine is bit-identical to the
/// pre-health runtime (streams are anonymous capacity; per-domain state is
/// never consulted). With a fault schedule, each domain carries its own
/// LaneFaultTable so injected decay is local to the stream it hit. With
/// the health layer ON, dispatch reliability counters feed the
/// HealthMonitor, scrub batches ride the DRR scheduler, quarantined
/// domains drain (in-flight work relocates) and re-earn admission through
/// off-line re-tests.
class Engine {
 public:
  Engine(const ServerConfig& cfg, QosTable& table, Metrics& metrics)
      : cfg_(cfg),
        table_(table),
        metrics_(metrics),
        batcher_(cfg.batch_window, cfg.batch_op_budget()),
        sched_(scheduler_config(cfg)),
        busy_(cfg.streams, false),
        track_domains_(cfg.health.enabled ||
                       !cfg.health.fault_schedule.empty()),
        monitor_(cfg.health.enabled ? cfg.streams : 0, cfg.health) {
    assert(cfg_.streams >= 1 && cfg_.lanes_per_stream >= 1);
    assert(cfg_.queue_capacity >= 1);
    if (track_domains_)
      domain_faults_.assign(cfg_.streams, cfg_.device.reliability.faults);
    if (health_on()) {
      scrub_queued_.assign(cfg_.streams, false);
      repair_at_.assign(cfg_.streams, 0);
      next_scrub_at_ = cfg_.health.scrub_interval;
      metrics_.configure_domains(cfg_.streams);
    }
    fault_events_ = cfg_.health.fault_schedule;
    std::stable_sort(fault_events_.begin(), fault_events_.end(),
                     [](const health::DomainFaultEvent& a,
                        const health::DomainFaultEvent& b) {
                       return a.at < b.at;
                     });
    // First engine on a shared log fills the serve-side header (every
    // chip of a cluster runs the same ServerConfig).
    if (trace_ != nullptr && trace_->meta.streams == 0) {
      trace::Meta& m = trace_->meta;
      m.streams = cfg_.streams;
      m.lanes = cfg_.lanes_per_stream;
      m.queue_capacity = cfg_.queue_capacity;
      const SchedulerConfig sc = scheduler_config(cfg_);
      m.fair_share = sc.fair_share;
      m.quantum_ops = std::max<std::uint64_t>(1, sc.quantum_ops);
      m.default_weight = std::max<std::uint64_t>(1, sc.default_weight);
      for (const auto& [app, w] : sc.weights)
        m.weights[app] = std::max<std::uint64_t>(1, w);
      m.health = cfg_.health.enabled;
    }
  }

  std::function<void(PendingReq&)> on_finalize;
  /// Live mode frees a request's state once its promise is fulfilled.
  bool release_after_finalize = false;
  /// Trace/closed-loop modes enforce queue capacity inside the engine;
  /// live mode enforces it at submit() (outstanding counter) instead.
  bool enforce_capacity = true;

  [[nodiscard]] util::Cycles now() const noexcept { return now_; }

  [[nodiscard]] PendingReq& at(std::uint64_t id) { return *reqs_[id]; }

  std::uint64_t create(Request req) {
    auto p = std::make_unique<PendingReq>();
    p->id = reqs_.size();
    p->req = std::move(req);
    reqs_.push_back(std::move(p));
    return reqs_.back()->id;
  }

  void push_arrival(std::uint64_t id) {
    arrivals_.emplace(reqs_[id]->req.arrival, id);
  }

  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return batcher_.pending_requests() + sched_.pending_requests();
  }

  [[nodiscard]] bool has_events() const {
    return !arrivals_.empty() || batcher_.pending_requests() > 0 ||
           sched_.has_work() || !inflight_.empty();
  }

  /// Advance to the next event time and process everything due. Returns
  /// false when no event remains (the system is drained).
  bool step() {
    const std::optional<util::Cycles> next = compute_next_timer();
    if (!next) {
      // Belt and braces: a closed batch with a free stream has no timer.
      if (sched_.has_work() && free_serving_count() > 0) {
        try_dispatch();
        return true;
      }
      // All domains quarantined with no repair pending: queued and
      // blocked work can never be served — shed it so every request
      // still finalizes (the conservation contract).
      if (health_on() && monitor_.serving_count() == 0 &&
          shed_stranded()) {
        return true;
      }
      return false;
    }
    if (*next > now_) now_ = *next;
    complete_due();
    apply_fault_events();
    run_repairs_due();
    maybe_enqueue_scrub();
    admit_due();
    for (ClosedBatch& b : batcher_.close_due(now_))
      enqueue_closed(std::move(b));
    try_dispatch();
    return true;
  }

  void run_to_completion() {
    while (step()) {
    }
  }

  /// Earliest virtual time at which step() would make progress, or nullopt
  /// when the engine is drained (step() would return false). A pure peek:
  /// it shares step()'s timer computation so the two cannot diverge.
  [[nodiscard]] std::optional<util::Cycles> next_event_time() const {
    if (const std::optional<util::Cycles> next = compute_next_timer())
      return std::max(*next, now_);
    if (sched_.has_work() && free_serving_count() > 0) return now_;
    if (health_on() && monitor_.serving_count() == 0 && stranded_sheddable())
      return now_;
    return std::nullopt;
  }

  [[nodiscard]] std::size_t serving_domains_now() const {
    return health_on() ? monitor_.serving_count() : cfg_.streams;
  }

  [[nodiscard]] const PendingReq& at(std::uint64_t id) const {
    return *reqs_[id];
  }

 private:
  struct InFlight {
    util::Cycles completion = 0;
    std::uint64_t seq = 0;
    std::vector<std::uint64_t> members;
    std::string app;  ///< Tenant charged for the stream (share caps).
    std::size_t domain = 0;  ///< Stream/fault domain it occupies.
    bool scrub = false;      ///< Background march pass, no members.
    /// Results could not be verified (retry ladder exhausted on every
    /// redundancy domain): members re-queue instead of finalizing.
    bool relocate = false;
    std::uint64_t detections = 0;   ///< Dispatch residue detections.
    std::uint64_t escalations = 0;  ///< Dispatch ladder exhaustions.
    health::ScrubReport scrub_report{};
  };

  [[nodiscard]] bool health_on() const noexcept {
    return cfg_.health.enabled;
  }

  [[nodiscard]] bool domain_serving(std::size_t d) const {
    return !health_on() || monitor_.serving(d);
  }

  /// Lowest free serving domain. With health off every domain serves, so
  /// "is any stream free" degenerates to the legacy free-stream counter.
  [[nodiscard]] std::optional<std::size_t> free_domain() const {
    for (std::size_t d = 0; d < busy_.size(); ++d)
      if (!busy_[d] && domain_serving(d)) return d;
    return std::nullopt;
  }

  [[nodiscard]] std::size_t free_serving_count() const {
    std::size_t n = 0;
    for (std::size_t d = 0; d < busy_.size(); ++d)
      if (!busy_[d] && domain_serving(d)) ++n;
    return n;
  }

  /// The earliest pending timer event: arrival (when admission is open),
  /// batch close, in-flight completion, scheduled fault, repair or scrub.
  /// nullopt when no timer is armed — step() then falls back to
  /// dispatchable-now work or stranded shedding.
  [[nodiscard]] std::optional<util::Cycles> compute_next_timer() const {
    std::optional<util::Cycles> next;
    const auto consider = [&](util::Cycles c) {
      if (!next || c < *next) next = c;
    };
    if (!arrivals_.empty() && admission_open())
      consider(arrivals_.top().first);
    if (const auto close = batcher_.next_close()) consider(*close);
    for (const InFlight& f : inflight_) consider(f.completion);
    if (track_domains_ && next_fault_event_ < fault_events_.size())
      consider(std::max(fault_events_[next_fault_event_].at, now_));
    if (health_on()) {
      for (const util::Cycles at : repair_at_)
        if (at != 0) consider(at);
      // Preventive scrub only while tenant work keeps the clock alive;
      // otherwise a drained engine would march forever.
      if (cfg_.health.scrub_interval > 0 && tenant_work_pending() &&
          scrub_candidate()) {
        consider(std::max(next_scrub_at_, now_));
      }
    }
    return next;
  }

  /// Mirror of shed_stranded()'s "would finalize anything" condition:
  /// every domain quarantined with no repair pending, and tenant requests
  /// (queued batches with members, or blocked arrivals) left to reject.
  [[nodiscard]] bool stranded_sheddable() const {
    for (const util::Cycles at : repair_at_)
      if (at != 0) return false;
    return sched_.pending_requests() > 0 || !arrivals_.empty();
  }

  /// Is there tenant work anywhere (arrivals, batching, queued, in
  /// flight)? Health housekeeping timers only tick alongside it.
  [[nodiscard]] bool tenant_work_pending() const {
    if (!arrivals_.empty() || batcher_.pending_requests() > 0 ||
        sched_.pending_requests() > 0) {
      return true;
    }
    for (const InFlight& f : inflight_)
      if (!f.scrub) return true;
    return false;
  }

  /// Some serving domain has no scrub pass queued or in flight.
  [[nodiscard]] bool scrub_candidate() const {
    for (std::size_t d = 0; d < cfg_.streams; ++d)
      if (monitor_.serving(d) && !scrub_queued_[d]) return true;
    return false;
  }

  /// Admission queue capacity scaled to live serving capacity: losing
  /// domains to quarantine shrinks what the server will accept.
  [[nodiscard]] std::size_t effective_capacity() const {
    if (!health_on()) return cfg_.queue_capacity;
    const std::size_t serving = monitor_.serving_count();
    if (serving >= cfg_.streams) return cfg_.queue_capacity;
    if (serving == 0) return 0;
    return std::max<std::size_t>(
        1, cfg_.queue_capacity * serving / cfg_.streams);
  }

  /// Under degraded capacity the health mode decides how the shrunken
  /// queue treats overflow: kBlock holds arrivals, anything else sheds.
  [[nodiscard]] AdmissionPolicy effective_admission() const {
    if (!health_on() || monitor_.serving_count() >= cfg_.streams)
      return cfg_.admission;
    return cfg_.health.mode == health::DegradeMode::kBlock
               ? AdmissionPolicy::kBlock
               : AdmissionPolicy::kReject;
  }

  [[nodiscard]] bool admission_open() const noexcept {
    return !enforce_capacity ||
           effective_admission() == AdmissionPolicy::kReject ||
           queue_depth() < effective_capacity();
  }

  /// Device config a dispatch on domain `d` sees: the base config with
  /// the domain's own fault table (domains decay independently).
  [[nodiscard]] const core::ApimConfig& device_for(std::size_t d) {
    if (!track_domains_) return cfg_.device;
    scratch_device_ = cfg_.device;
    scratch_device_.reliability.faults = domain_faults_[d];
    return scratch_device_;
  }

  /// Redundancy domains a fault table must cover: the vote needs three,
  /// the retry ladder max_retries + 1.
  [[nodiscard]] std::size_t fault_table_domains() const noexcept {
    return std::max<std::size_t>(
        3, static_cast<std::size_t>(cfg_.device.reliability.max_retries) + 1);
  }

  void note_domain(std::size_t d) {
    metrics_.record_domain_state(d, monitor_.state(d), monitor_.dead(d),
                                 now_, monitor_.serving_count());
  }

  // -- Trace emission (all call sites guard on trace_ != nullptr) -----------

  [[nodiscard]] trace::Event tev(trace::EventKind kind) const {
    trace::Event e;
    e.kind = kind;
    e.at = now_;
    e.chip = cfg_.trace_chip;
    return e;
  }

  void emit_health_change(std::size_t d, health::DomainState before) {
    const health::DomainState after = monitor_.state(d);
    if (after == before) return;
    trace::Event e = tev(trace::EventKind::kHealth);
    e.domain = static_cast<std::int64_t>(d);
    e.state_from = static_cast<std::uint8_t>(before);
    e.state_to = static_cast<std::uint8_t>(after);
    e.dead = monitor_.dead(d);
    trace_->record(std::move(e));
  }

  void emit_scrub(std::size_t d, const health::ScrubReport& r, bool offline) {
    trace::Event e = tev(trace::EventKind::kScrub);
    e.domain = static_cast<std::int64_t>(d);
    e.clean = r.clean;
    e.offline = offline;
    e.stuck = r.stuck_found;
    e.repaired = r.repaired;
    e.cycles = r.cycles;
    e.energy_pj = r.energy_pj;
    trace_->record(std::move(e));
  }

  void finalize(PendingReq& p, RequestStatus status, util::Cycles when) {
    assert(!p.finalized);
    p.resp.id = p.id;
    p.resp.status = status;
    p.resp.arrival = p.req.arrival;
    if (p.resp.completion < when) p.resp.completion = when;
    p.finalized = true;
    if (trace_ != nullptr && status != RequestStatus::kPending) {
      // The single terminal point of the request-conservation ledger:
      // exactly one serve/reject/expire/invalid event per request.
      trace::Event e = tev(status == RequestStatus::kOk ? trace::EventKind::kServe
                           : status == RequestStatus::kRejected
                               ? trace::EventKind::kReject
                           : status == RequestStatus::kExpired
                               ? trace::EventKind::kExpire
                               : trace::EventKind::kInvalid);
      e.at = when;
      e.req = static_cast<std::int64_t>(p.id);
      e.app = p.req.app;
      e.ops = p.req.operands.size();
      e.relax = p.relax;
      trace_->record(std::move(e));
    }
    switch (status) {
      case RequestStatus::kRejected: metrics_.record_rejected(); break;
      case RequestStatus::kExpired: metrics_.record_expired(); break;
      case RequestStatus::kInvalid: metrics_.record_invalid(); break;
      case RequestStatus::kOk:
        metrics_.record_completed(p.req.app, p.req.arrival, p.resp.completion,
                                  p.escalated, !p.resp.qos.acceptable);
        break;
      case RequestStatus::kPending: break;  // Unreachable.
    }
    const std::uint64_t id = p.id;
    if (on_finalize) on_finalize(p);
    if (release_after_finalize) reqs_[id].reset();
  }

  void join_batcher(PendingReq& p) {
    const BatchKey key = key_for(p.req, p.relax);
    if (auto closed = batcher_.add(p.id, key, p.req.operands.size(), now_))
      enqueue_closed(std::move(*closed));
  }

  /// Single entry point for batches entering the scheduler: tenant seals,
  /// scrub passes, escalation/relocation rejoins and deferred-scrub
  /// re-queues all pass through here, so the trace sees every seal.
  void enqueue_closed(ClosedBatch&& b) {
    if (trace_ != nullptr) {
      trace::Event e = tev(trace::EventKind::kBatchSeal);
      e.app = b.key.app;
      e.op = static_cast<std::uint8_t>(b.key.op);
      e.width = b.key.width;
      e.relax = b.key.relax_bits;
      e.policy = static_cast<std::uint8_t>(b.key.policy);
      e.ops = b.ops;
      e.members = b.members;
      if (b.scrub_domain != kNotScrub) {
        e.scrub = true;
        e.domain = static_cast<std::int64_t>(b.scrub_domain);
      }
      trace_->record(std::move(e));
    }
    sched_.enqueue(std::move(b));
  }

  void admit_due() {
    while (!arrivals_.empty() && arrivals_.top().first <= now_) {
      if (enforce_capacity &&
          effective_admission() == AdmissionPolicy::kBlock &&
          queue_depth() >= effective_capacity()) {
        break;  // Head-of-line blocks; later arrivals wait behind it.
      }
      const std::uint64_t id = arrivals_.top().second;
      arrivals_.pop();
      PendingReq& p = at(id);
      metrics_.record_submitted(p.req.arrival);
      if (p.req.width < 4 || p.req.width > 32 || p.req.operands.empty()) {
        finalize(p, RequestStatus::kInvalid, now_);
        continue;
      }
      if (enforce_capacity && queue_depth() >= effective_capacity()) {
        finalize(p, RequestStatus::kRejected, now_);
        continue;
      }
      p.relax = table_.relax_for(p.req.app);
      if (trace_ != nullptr) {
        trace::Event e = tev(trace::EventKind::kAdmit);
        e.req = static_cast<std::int64_t>(p.id);
        e.app = p.req.app;
        e.op = static_cast<std::uint8_t>(p.req.op);
        e.width = p.req.width;
        e.relax = p.relax;
        e.policy = static_cast<std::uint8_t>(p.req.policy);
        e.ops = p.req.operands.size();
        // Depth including this request; admission checked < capacity, so a
        // clean engine never records depth > capacity.
        e.queue_depth = queue_depth() + 1;
        e.capacity = enforce_capacity ? effective_capacity() : 0;
        trace_->record(std::move(e));
      }
      join_batcher(p);
      metrics_.record_queue_depth(queue_depth());
    }
  }

  // -- Fault schedule / health housekeeping ---------------------------------

  void apply_fault_events() {
    while (next_fault_event_ < fault_events_.size() &&
           fault_events_[next_fault_event_].at <= now_) {
      const health::DomainFaultEvent& e = fault_events_[next_fault_event_++];
      if (e.domain >= cfg_.streams) continue;
      using Kind = health::DomainFaultEvent::Kind;
      switch (e.kind) {
        case Kind::kSetFaults:
          domain_faults_[e.domain] = e.faults;
          break;
        case Kind::kClear:
          domain_faults_[e.domain] = reliability::LaneFaultTable{};
          break;
        case Kind::kKill:
          domain_faults_[e.domain] = health::whole_domain_failure(
              cfg_.lanes_per_stream, fault_table_domains());
          if (health_on()) {
            const health::DomainState before = monitor_.state(e.domain);
            monitor_.mark_dead(e.domain);
            const bool was_serving = monitor_.serving(e.domain);
            monitor_.quarantine(e.domain);
            if (trace_ != nullptr) emit_health_change(e.domain, before);
            if (was_serving) on_quarantined(e.domain);
            note_domain(e.domain);
          }
          break;
      }
    }
  }

  /// A domain just entered quarantine: abort its in-flight work (members
  /// relocate, a scrub pass is simply dropped) and schedule off-line
  /// repair unless the monitor has given up on it.
  void on_quarantined(std::size_t d) {
    for (std::size_t i = 0; i < inflight_.size();) {
      if (inflight_[i].domain != d) {
        ++i;
        continue;
      }
      InFlight aborted = std::move(inflight_[i]);
      inflight_.erase(inflight_.begin() + static_cast<std::ptrdiff_t>(i));
      busy_[d] = false;
      sched_.stream_released(aborted.app);
      if (trace_ != nullptr) {
        trace::Event e = tev(trace::EventKind::kAbort);
        e.domain = static_cast<std::int64_t>(d);
        e.app = aborted.app;
        e.scrub = aborted.scrub;
        e.members = aborted.members;
        trace_->record(std::move(e));
      }
      if (aborted.scrub) {
        scrub_queued_[d] = false;
        continue;
      }
      relocate_members(aborted.members);
    }
    if (!monitor_.gave_up(d))
      repair_at_[d] = now_ + cfg_.health.repair_interval;
  }

  /// Re-queue a dead batch's members onto healthy capacity. A request out
  /// of relocation budget is rejected (bounds livelock under chaos).
  void relocate_members(const std::vector<std::uint64_t>& members) {
    std::size_t moved = 0;
    std::size_t moved_ops = 0;
    for (const std::uint64_t id : members) {
      PendingReq& p = at(id);
      if (p.finalized) continue;
      if (p.resp.relocations >= cfg_.health.max_relocations) {
        metrics_.record_relocation_reject();
        finalize(p, RequestStatus::kRejected, now_);
        continue;
      }
      ++p.resp.relocations;
      ++moved;
      moved_ops += p.req.operands.size();
      p.resp.values.clear();  // Unverified results are withheld.
      if (trace_ != nullptr) {
        trace::Event e = tev(trace::EventKind::kRelocate);
        e.req = static_cast<std::int64_t>(id);
        e.app = p.req.app;
        e.ops = p.req.operands.size();
        trace_->record(std::move(e));
      }
      join_batcher(p);
    }
    if (moved > 0) metrics_.record_relocation(moved, moved_ops);
    metrics_.record_queue_depth(queue_depth());
  }

  /// Off-line re-tests of quarantined domains: they hold no stream, so
  /// repairs are pure timed events.
  void run_repairs_due() {
    if (!health_on()) return;
    for (std::size_t d = 0; d < repair_at_.size(); ++d) {
      if (repair_at_[d] == 0 || repair_at_[d] > now_) continue;
      repair_at_[d] = 0;
      health::ScrubReport r = health::scrub_domain(
          domain_faults_[d], monitor_.dead(d), cfg_.lanes_per_stream,
          cfg_.health, cfg_.device.energy);
      const health::DomainState before = monitor_.state(d);
      monitor_.on_scrub(d, r);
      if (trace_ != nullptr) {
        emit_scrub(d, r, /*offline=*/true);
        emit_health_change(d, before);
      }
      metrics_.record_scrub(d, r);
      note_domain(d);
      if (monitor_.state(d) == health::DomainState::kQuarantined &&
          !monitor_.gave_up(d)) {
        repair_at_[d] = now_ + cfg_.health.repair_interval;
      }
    }
  }

  /// Enqueue the next preventive scrub pass (one serving domain,
  /// round-robin) as a kScrubTenant batch through the DRR scheduler.
  void maybe_enqueue_scrub() {
    if (!health_on() || cfg_.health.scrub_interval == 0) return;
    if (now_ < next_scrub_at_ || !tenant_work_pending()) return;
    // Advance past now unconditionally: missed slots are dropped, not
    // replayed (replaying them would livelock a saturated server).
    while (next_scrub_at_ <= now_)
      next_scrub_at_ += cfg_.health.scrub_interval;
    for (std::size_t i = 0; i < cfg_.streams; ++i) {
      const std::size_t d = (scrub_cursor_ + i) % cfg_.streams;
      if (!monitor_.serving(d) || scrub_queued_[d]) continue;
      scrub_cursor_ = d + 1;
      ClosedBatch b;
      b.key.app = health::kScrubTenant;
      b.ops = cfg_.batch_op_budget();
      b.closed_at = now_;
      b.scrub_domain = d;
      scrub_queued_[d] = true;
      enqueue_closed(std::move(b));
      return;
    }
  }

  /// Nothing can ever serve again (every domain quarantined, no repair
  /// pending): reject all queued batches and blocked arrivals so the
  /// engine drains. Returns true when it finalized anything.
  bool shed_stranded() {
    for (const util::Cycles at : repair_at_)
      if (at != 0) return false;
    bool any = false;
    while (std::optional<DispatchPick> pick = sched_.next(now_)) {
      if (pick->batch.scrub_domain != kNotScrub) {
        if (pick->batch.scrub_domain < scrub_queued_.size())
          scrub_queued_[pick->batch.scrub_domain] = false;
        continue;
      }
      for (const std::uint64_t id : pick->batch.members) {
        PendingReq& p = at(id);
        if (p.finalized) continue;
        finalize(p, RequestStatus::kRejected, now_);
        any = true;
      }
    }
    while (!arrivals_.empty()) {
      const std::uint64_t id = arrivals_.top().second;
      arrivals_.pop();
      PendingReq& p = at(id);
      metrics_.record_submitted(p.req.arrival);
      finalize(p, RequestStatus::kRejected, std::max(now_, p.req.arrival));
      any = true;
    }
    return any;
  }

  // -- Dispatch -------------------------------------------------------------

  void try_dispatch() {
    // Scrub passes must run on their target stream; one whose target is
    // busy is held here and re-queued after the loop (re-queueing inside
    // the loop would pick it again immediately — a livelock).
    std::vector<ClosedBatch> deferred_scrubs;
    while (true) {
      const std::optional<std::size_t> domain = free_domain();
      if (!domain) break;
      std::optional<DispatchPick> pick = sched_.next(now_);
      if (!pick) break;
      if (pick->batch.scrub_domain != kNotScrub) {
        const std::size_t target = pick->batch.scrub_domain;
        if (!health_on() || target >= cfg_.streams ||
            !monitor_.serving(target)) {
          // Target left service since the pass was queued: moot.
          if (target < scrub_queued_.size()) scrub_queued_[target] = false;
          continue;
        }
        if (busy_[target]) {
          deferred_scrubs.push_back(std::move(pick->batch));
          continue;
        }
        dispatch_scrub(target);
        continue;
      }
      dispatch_batch(*domain, std::move(*pick));
    }
    for (ClosedBatch& b : deferred_scrubs) enqueue_closed(std::move(b));
  }

  void dispatch_scrub(std::size_t d) {
    // The march cost is deterministic, so the repair takes effect at
    // dispatch; the domain is busy with its own pass until completion,
    // so no tenant batch can observe the table mid-scrub.
    const health::ScrubReport r = health::scrub_domain(
        domain_faults_[d], monitor_.dead(d), cfg_.lanes_per_stream,
        cfg_.health, cfg_.device.energy);
    const util::Cycles busy = cfg_.dispatch_cycles + r.cycles;
    if (trace_ != nullptr) {
      trace::Event e = tev(trace::EventKind::kDispatch);
      e.app = health::kScrubTenant;
      e.domain = static_cast<std::int64_t>(d);
      e.scrub = true;
      e.ops = cfg_.batch_op_budget();
      trace_->record(std::move(e));
    }
    busy_[d] = true;
    sched_.stream_acquired(health::kScrubTenant);
    InFlight f;
    f.completion = now_ + busy;
    f.seq = next_dispatch_seq_++;
    f.app = health::kScrubTenant;
    f.domain = d;
    f.scrub = true;
    f.scrub_report = r;
    inflight_.push_back(std::move(f));
  }

  void dispatch_batch(std::size_t d, DispatchPick&& pick) {
    ClosedBatch batch = std::move(pick.batch);

    // Deadline check at dispatch: members whose (absolute) deadline has
    // passed expire without executing — no lanes, no energy. Their ops
    // are refunded to the tenant's deficit: DRR rates EXECUTED ops.
    std::vector<std::uint64_t> live;
    live.reserve(batch.members.size());
    std::size_t expired_ops = 0;
    for (const std::uint64_t id : batch.members) {
      PendingReq& p = at(id);
      const util::Cycles deadline =
          p.req.deadline != 0 ? p.req.deadline : cfg_.default_deadline;
      if (deadline != 0 && now_ > p.req.arrival + deadline) {
        expired_ops += p.req.operands.size();
        finalize(p, RequestStatus::kExpired, now_);
      } else {
        live.push_back(id);
      }
    }
    if (expired_ops > 0) sched_.refund(pick.app, expired_ops, now_);
    if (live.empty()) return;  // Nothing to run; stream stays free.

    std::vector<std::span<const std::pair<std::uint64_t, std::uint64_t>>>
        spans;
    spans.reserve(live.size());
    std::size_t total_ops = 0;
    for (const std::uint64_t id : live) {
      spans.emplace_back(at(id).req.operands);
      total_ops += at(id).req.operands.size();
    }
    // Graceful degradation: a suspect domain's traffic is upgraded to the
    // configured reliability policy (never downgraded).
    BatchKey exec_key = batch.key;
    bool degraded = false;
    if (health_on() && cfg_.health.mode == health::DegradeMode::kDegrade &&
        monitor_.state(d) == health::DomainState::kSuspect &&
        static_cast<int>(exec_key.policy) <
            static_cast<int>(cfg_.health.degrade_policy)) {
      exec_key.policy = cfg_.health.degrade_policy;
      degraded = true;
    }
    BatchExecution exec =
        execute_batch(spans, exec_key, cfg_.lanes_per_stream, device_for(d));
    const util::Cycles busy = cfg_.dispatch_cycles + exec.makespan;
    const util::Cycles completion = now_ + busy;
    metrics_.record_dispatch(live.size(), total_ops, exec.lanes_used, busy,
                             exec.energy_pj, exec.stats);
    metrics_.record_tenant_dispatch(pick.app, pick.weight, total_ops,
                                    pick.queued_for, pick.deficit_carried);
    if (degraded) metrics_.record_degraded(total_ops);
    // An exhausted retry ladder means the device could not produce a
    // verified result for some op: with the health layer on, the whole
    // batch relocates at completion instead of returning suspect values.
    const bool relocate = health_on() && exec.stats.escalations > 0;
    const double energy_per_op =
        total_ops == 0 ? 0.0
                       : exec.energy_pj / static_cast<double>(total_ops);
    for (std::size_t m = 0; m < live.size(); ++m) {
      PendingReq& p = at(live[m]);
      if (!relocate) p.resp.values = std::move(exec.values[m]);
      p.resp.dispatch = now_;
      p.resp.completion = completion;
      p.resp.batch_requests = live.size();
      // += so an escalated rerun's energy adds to the first pass.
      p.resp.energy_pj +=
          energy_per_op * static_cast<double>(p.req.operands.size());
    }
    if (trace_ != nullptr) {
      trace::Event e = tev(trace::EventKind::kDispatch);
      e.app = pick.app;
      e.domain = static_cast<std::int64_t>(d);
      e.op = static_cast<std::uint8_t>(batch.key.op);
      e.width = batch.key.width;
      e.relax = batch.key.relax_bits;
      e.policy = static_cast<std::uint8_t>(batch.key.policy);
      e.ops = total_ops;
      e.members = live;
      trace_->record(std::move(e));
    }
    busy_[d] = true;
    sched_.stream_acquired(pick.app);
    InFlight f;
    f.completion = completion;
    f.seq = next_dispatch_seq_++;
    f.members = std::move(live);
    f.app = std::move(pick.app);
    f.domain = d;
    f.relocate = relocate;
    f.detections = exec.stats.faults_detected;
    f.escalations = exec.stats.escalations;
    inflight_.push_back(std::move(f));
  }

  // -- Completion -----------------------------------------------------------

  void complete_due() {
    for (;;) {
      std::size_t best = inflight_.size();
      for (std::size_t i = 0; i < inflight_.size(); ++i) {
        if (inflight_[i].completion > now_) continue;
        if (best == inflight_.size() ||
            inflight_[i].completion < inflight_[best].completion ||
            (inflight_[i].completion == inflight_[best].completion &&
             inflight_[i].seq < inflight_[best].seq)) {
          best = i;
        }
      }
      if (best == inflight_.size()) return;
      InFlight done = std::move(inflight_[best]);
      inflight_.erase(inflight_.begin() +
                      static_cast<std::ptrdiff_t>(best));
      busy_[done.domain] = false;
      sched_.stream_released(done.app);
      if (trace_ != nullptr) {
        trace::Event e = tev(trace::EventKind::kComplete);
        e.domain = static_cast<std::int64_t>(done.domain);
        e.app = done.app;
        e.scrub = done.scrub;
        e.detections = done.detections;
        e.escalations = done.escalations;
        if (!done.scrub) e.members = done.members;
        trace_->record(std::move(e));
      }

      if (done.scrub) {
        scrub_queued_[done.domain] = false;
        const health::DomainState before = monitor_.state(done.domain);
        monitor_.on_scrub(done.domain, done.scrub_report);
        if (trace_ != nullptr) {
          emit_scrub(done.domain, done.scrub_report, /*offline=*/false);
          emit_health_change(done.domain, before);
        }
        metrics_.record_scrub(done.domain, done.scrub_report);
        // A dirty pass on a serving domain quarantines it on the spot.
        if (monitor_.state(done.domain) ==
            health::DomainState::kQuarantined) {
          on_quarantined(done.domain);
        }
        note_domain(done.domain);
        continue;
      }

      if (health_on()) {
        metrics_.record_domain_dispatch(done.domain, done.detections,
                                        done.escalations);
        const bool was_serving = monitor_.serving(done.domain);
        const health::DomainState before = monitor_.state(done.domain);
        monitor_.on_dispatch(done.domain, done.detections, done.escalations);
        if (trace_ != nullptr) emit_health_change(done.domain, before);
        if (was_serving && !monitor_.serving(done.domain))
          on_quarantined(done.domain);
        note_domain(done.domain);
      }
      if (done.relocate) {
        relocate_members(done.members);
        continue;
      }

      for (const std::uint64_t id : done.members) {
        PendingReq& p = at(id);
        if (p.finalized) continue;  // Relocation budget ran out mid-abort.
        std::vector<double> golden, test;
        golden.reserve(p.req.operands.size());
        test.reserve(p.req.operands.size());
        for (std::size_t j = 0; j < p.req.operands.size(); ++j) {
          golden.push_back(golden_value(p.req.op, p.req.width,
                                        p.req.operands[j].first,
                                        p.req.operands[j].second));
          test.push_back(static_cast<double>(p.resp.values[j]));
        }
        p.resp.qos = quality::evaluate_qos(p.req.qos, golden, test);
        if (!p.resp.qos.acceptable && p.relax > 0 && cfg_.escalate_on_miss &&
            !p.escalated) {
          // QoS miss under approximation: pin the app to exact and rerun
          // this request exactly, charging the extra latency to it.
          p.escalated = true;
          metrics_.record_escalation();
          table_.escalate(p.req.app);
          p.relax = 0;
          if (trace_ != nullptr) {
            trace::Event e = tev(trace::EventKind::kQosEscalate);
            e.req = static_cast<std::int64_t>(p.id);
            e.app = p.req.app;
            e.relax = p.relax;
            e.ops = p.req.operands.size();
            trace_->record(std::move(e));
          }
          join_batcher(p);
          metrics_.record_queue_depth(queue_depth());
        } else {
          p.resp.relax_bits = p.relax;
          p.resp.escalated = p.escalated;
          finalize(p, RequestStatus::kOk, p.resp.completion);
        }
      }
    }
  }

  const ServerConfig& cfg_;
  QosTable& table_;
  Metrics& metrics_;
  DynamicBatcher batcher_;
  DrrScheduler sched_;
  std::vector<bool> busy_;  ///< Per stream/domain: dispatch in flight.
  util::Cycles now_ = 0;
  /// Optional structured event sink; nullptr = tracing off (no events are
  /// constructed, so untraced runs are bit-identical to pre-trace builds).
  trace::EventLog* const trace_ = cfg_.trace;

  // -- Fault-domain state ---------------------------------------------------
  /// Domains carry per-stream fault tables (health on OR a schedule set).
  bool track_domains_ = false;
  health::HealthMonitor monitor_;  ///< Empty unless health is enabled.
  std::vector<reliability::LaneFaultTable> domain_faults_;
  std::vector<health::DomainFaultEvent> fault_events_;  ///< Sorted by at.
  std::size_t next_fault_event_ = 0;
  std::vector<bool> scrub_queued_;   ///< Pass queued or in flight.
  std::vector<util::Cycles> repair_at_;  ///< 0 = no re-test scheduled.
  util::Cycles next_scrub_at_ = 0;
  std::size_t scrub_cursor_ = 0;
  core::ApimConfig scratch_device_{};  ///< device_for() staging copy.

  std::vector<std::unique_ptr<PendingReq>> reqs_;
  /// (arrival, id) min-heap: earliest arrival first, id tie-break.
  std::priority_queue<std::pair<util::Cycles, std::uint64_t>,
                      std::vector<std::pair<util::Cycles, std::uint64_t>>,
                      std::greater<>>
      arrivals_;
  std::vector<InFlight> inflight_;
  std::uint64_t next_dispatch_seq_ = 0;
};

struct Server::Impl {
  explicit Impl(ServerConfig c, QosTable t)
      : cfg(std::move(c)),
        table(std::move(t)),
        metrics(cfg.total_lanes(), cfg.streams),
        engine(cfg, table, metrics) {}

  ServerConfig cfg;
  QosTable table;
  Metrics metrics;
  Engine engine;

  // -- Live async state ----------------------------------------------------
  struct Submission {
    Request req;
    std::promise<Response> promise;
  };
  std::thread scheduler;
  bool running = false;
  bool stop_requested = false;
  std::mutex mailbox_mutex;
  std::condition_variable mailbox_cv;
  std::condition_variable space_cv;
  std::deque<Submission> mailbox;
  std::atomic<std::size_t> outstanding{0};
  std::atomic<util::Cycles> now_approx{0};

  void scheduler_loop();
};

void Server::Impl::scheduler_loop() {
  engine.enforce_capacity = false;  // submit() enforces via `outstanding`.
  engine.release_after_finalize = true;
  engine.on_finalize = [this](PendingReq& p) {
    if (p.promise) p.promise->set_value(std::move(p.resp));
    outstanding.fetch_sub(1, std::memory_order_acq_rel);
    {
      // Pair the notification with the mutex so a blocked submit() cannot
      // miss the wakeup between its predicate check and its wait.
      const std::lock_guard<std::mutex> lock(mailbox_mutex);
    }
    space_cv.notify_all();
  };

  for (;;) {
    std::deque<Submission> pulled;
    {
      std::unique_lock<std::mutex> lock(mailbox_mutex);
      mailbox_cv.wait(lock, [&] {
        return stop_requested || !mailbox.empty() || engine.has_events();
      });
      pulled.swap(mailbox);
      if (pulled.empty() && !engine.has_events() && stop_requested) break;
    }
    for (Submission& s : pulled) {
      s.req.arrival = engine.now();
      const std::uint64_t id = engine.create(std::move(s.req));
      engine.at(id).promise = std::move(s.promise);
      engine.push_arrival(id);
    }
    engine.step();
    now_approx.store(engine.now(), std::memory_order_relaxed);
  }

  engine.on_finalize = nullptr;
  engine.release_after_finalize = false;
  engine.enforce_capacity = true;
}

Server::Server(ServerConfig config, QosTable table)
    : impl_(std::make_unique<Impl>(std::move(config), std::move(table))) {}

Server::~Server() { stop(); }

std::vector<Response> Server::run_trace(std::vector<Request> trace) {
  assert(!impl_->running);
  Engine& engine = impl_->engine;
  std::vector<std::uint64_t> ids;
  ids.reserve(trace.size());
  for (Request& r : trace) ids.push_back(engine.create(std::move(r)));
  for (const std::uint64_t id : ids) engine.push_arrival(id);
  engine.run_to_completion();
  std::vector<Response> responses;
  responses.reserve(ids.size());
  for (const std::uint64_t id : ids) responses.push_back(engine.at(id).resp);
  return responses;
}

std::vector<Response> Server::run_closed_loop(
    std::size_t clients, std::size_t requests_per_client,
    util::Cycles think_cycles,
    const std::function<Request(std::size_t, std::size_t)>& make_request) {
  assert(!impl_->running);
  Engine& engine = impl_->engine;
  std::vector<std::uint64_t> ids;
  ids.reserve(clients * requests_per_client);

  const auto submit_for = [&](std::size_t client, std::size_t index,
                              util::Cycles arrival) {
    Request next = make_request(client, index);
    next.arrival = arrival;
    const std::uint64_t id = engine.create(std::move(next));
    engine.at(id).client = client;
    engine.at(id).client_index = index;
    engine.push_arrival(id);
    ids.push_back(id);
  };

  engine.on_finalize = [&](PendingReq& p) {
    if (p.client_index + 1 < requests_per_client)
      submit_for(p.client, p.client_index + 1,
                 p.resp.completion + think_cycles);
  };
  for (std::size_t c = 0; c < clients; ++c)
    submit_for(c, 0, engine.now());
  engine.run_to_completion();
  engine.on_finalize = nullptr;

  std::sort(ids.begin(), ids.end());
  std::vector<Response> responses;
  responses.reserve(ids.size());
  for (const std::uint64_t id : ids) responses.push_back(engine.at(id).resp);
  return responses;
}

std::uint64_t Server::stage_request(Request request) {
  assert(!impl_->running);
  Engine& engine = impl_->engine;
  const std::uint64_t id = engine.create(std::move(request));
  engine.push_arrival(id);
  return id;
}

std::optional<util::Cycles> Server::next_event_at() const {
  return impl_->engine.next_event_time();
}

bool Server::step_until(util::Cycles limit) {
  assert(!impl_->running);
  Engine& engine = impl_->engine;
  bool any = false;
  for (;;) {
    const std::optional<util::Cycles> at = engine.next_event_time();
    if (!at || *at > limit) break;
    engine.step();
    any = true;
  }
  return any;
}

util::Cycles Server::virtual_now() const { return impl_->engine.now(); }

const Response& Server::response(std::uint64_t id) const {
  return impl_->engine.at(id).resp;
}

std::size_t Server::serving_domain_count() const {
  return impl_->engine.serving_domains_now();
}

void Server::start() {
  Impl& impl = *impl_;
  if (impl.running) return;
  impl.stop_requested = false;
  impl.running = true;
  impl.scheduler = std::thread([&impl] { impl.scheduler_loop(); });
}

std::future<Response> Server::submit(Request request) {
  start();
  Impl& impl = *impl_;
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();

  const auto reject_now = [&]() {
    Response r;
    r.status = RequestStatus::kRejected;
    r.arrival = impl.now_approx.load(std::memory_order_relaxed);
    r.completion = r.arrival;
    impl.metrics.record_submitted(r.arrival);
    impl.metrics.record_rejected();
    promise.set_value(std::move(r));
    return std::move(future);
  };

  // A pool worker blocking here could deadlock the pool the dispatches
  // themselves need, so refuse outright (util/thread_pool.hpp).
  if (util::in_pool_worker()) return reject_now();

  if (impl.cfg.admission == AdmissionPolicy::kReject &&
      impl.outstanding.load(std::memory_order_acquire) >=
          impl.cfg.queue_capacity) {
    return reject_now();
  }
  if (impl.cfg.admission == AdmissionPolicy::kBlock) {
    std::unique_lock<std::mutex> lock(impl.mailbox_mutex);
    impl.space_cv.wait(lock, [&] {
      return impl.stop_requested ||
             impl.outstanding.load(std::memory_order_acquire) <
                 impl.cfg.queue_capacity;
    });
    if (impl.stop_requested) return reject_now();
  }

  impl.outstanding.fetch_add(1, std::memory_order_acq_rel);
  {
    const std::lock_guard<std::mutex> lock(impl.mailbox_mutex);
    impl.mailbox.push_back(
        Impl::Submission{std::move(request), std::move(promise)});
  }
  impl.mailbox_cv.notify_one();
  return future;
}

void Server::stop() {
  Impl& impl = *impl_;
  if (!impl.running) return;
  {
    const std::lock_guard<std::mutex> lock(impl.mailbox_mutex);
    impl.stop_requested = true;
  }
  impl.mailbox_cv.notify_all();
  impl.space_cv.notify_all();
  impl.scheduler.join();
  impl.running = false;
  impl.stop_requested = false;
}

MetricsSnapshot Server::snapshot() const { return impl_->metrics.snapshot(); }

const ServerConfig& Server::config() const noexcept { return impl_->cfg; }

const QosTable& Server::qos_table() const noexcept { return impl_->table; }

}  // namespace apim::serve
