#include "serve/batcher.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace apim::serve {

DynamicBatcher::DynamicBatcher(util::Cycles window, std::size_t max_ops)
    : window_(window), max_ops_(max_ops == 0 ? 1 : max_ops) {}

ClosedBatch DynamicBatcher::seal(const BatchKey& key, OpenBatch&& open,
                                 util::Cycles now) {
  ClosedBatch closed;
  closed.key = key;
  closed.members = std::move(open.members);
  closed.ops = open.ops;
  closed.closed_at = now;
  closed.seq = next_seq_++;
  pending_requests_ -= closed.members.size();
  return closed;
}

std::optional<ClosedBatch> DynamicBatcher::add(std::uint64_t request_id,
                                               const BatchKey& key,
                                               std::size_t ops,
                                               util::Cycles now) {
  assert(ops > 0);
  // A request bigger than the op budget still ships as its own batch (the
  // executor round-robins its ops over the lanes); it just never coalesces.
  if (window_ == 0 || ops >= max_ops_) {
    OpenBatch singleton;
    singleton.members.push_back(request_id);
    singleton.ops = ops;
    pending_requests_ += 1;  // seal() symmetrically removes it.
    return seal(key, std::move(singleton), now);
  }

  auto it = open_.find(key);
  if (it == open_.end()) {
    it = open_.emplace(key, OpenBatch{}).first;
    it->second.close_at = now + window_;
  } else if (it->second.ops + ops > max_ops_) {
    // This request would overflow the open batch: close it now and start a
    // fresh one so the member that triggered the overflow is not delayed
    // behind a full dispatch.
    ClosedBatch full = seal(key, std::move(it->second), now);
    it->second = OpenBatch{};
    it->second.close_at = now + window_;
    it->second.members.push_back(request_id);
    it->second.ops = ops;
    pending_requests_ += 1;
    return full;
  }

  it->second.members.push_back(request_id);
  it->second.ops += ops;
  pending_requests_ += 1;
  if (it->second.ops >= max_ops_) {
    ClosedBatch closed = seal(key, std::move(it->second), now);
    open_.erase(it);
    return closed;
  }
  return std::nullopt;
}

std::vector<ClosedBatch> DynamicBatcher::close_due(util::Cycles now) {
  std::vector<ClosedBatch> closed;
  // std::map iteration is key-ordered, so equal close times seal in key
  // order — deterministic for any host configuration.
  for (auto it = open_.begin(); it != open_.end();) {
    if (it->second.close_at <= now) {
      closed.push_back(seal(it->first, std::move(it->second), now));
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(closed.begin(), closed.end(),
            [](const ClosedBatch& a, const ClosedBatch& b) {
              return a.seq < b.seq;
            });
  return closed;
}

std::vector<ClosedBatch> DynamicBatcher::close_all(util::Cycles now) {
  std::vector<ClosedBatch> closed;
  for (auto& [key, open] : open_)
    closed.push_back(seal(key, std::move(open), now));
  open_.clear();
  return closed;
}

std::optional<util::Cycles> DynamicBatcher::next_close() const {
  std::optional<util::Cycles> earliest;
  for (const auto& [key, open] : open_)
    if (!earliest || open.close_at < *earliest) earliest = open.close_at;
  return earliest;
}

}  // namespace apim::serve
