#include "serve/load_gen.hpp"

#include <cassert>
#include <cmath>

#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::serve {

std::vector<Request> make_open_loop_trace(const LoadGenConfig& cfg) {
  assert(cfg.rate_per_kcycle > 0.0);
  assert(cfg.min_ops >= 1 && cfg.min_ops <= cfg.max_ops);
  util::Xoshiro256 rng(cfg.seed);
  std::vector<Request> trace;
  trace.reserve(cfg.requests);

  const double mean_gap_cycles = 1000.0 / cfg.rate_per_kcycle;
  const std::uint64_t operand_mask = util::mask_n(cfg.width);
  double clock = 0.0;
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    // Exponential interarrival: -ln(1 - U) * mean. next_double() < 1, so
    // the log argument stays positive.
    clock += -std::log(1.0 - rng.next_double()) * mean_gap_cycles;

    Request r;
    r.arrival = static_cast<util::Cycles>(clock);
    r.app = cfg.apps.empty()
                ? std::string{}
                : cfg.apps[rng.next_below(cfg.apps.size())];
    r.op = rng.next_double() < cfg.add_fraction ? OpKind::kVectorAdd
                                                : OpKind::kMultiply;
    r.width = cfg.width;
    r.qos = cfg.qos;
    r.deadline = cfg.deadline;
    r.policy = cfg.policy;
    const std::size_t ops =
        cfg.min_ops +
        (cfg.max_ops > cfg.min_ops
             ? rng.next_below(cfg.max_ops - cfg.min_ops + 1)
             : 0);
    r.operands.reserve(ops);
    for (std::size_t j = 0; j < ops; ++j)
      r.operands.emplace_back(rng.next() & operand_mask,
                              rng.next() & operand_mask);
    trace.push_back(std::move(r));
  }
  return trace;
}

}  // namespace apim::serve
