// Opt-in structured event stream for the serving and cluster engines.
//
// When a `trace::EventLog` is attached to a `ServerConfig` / `ClusterConfig`,
// the engines emit one `Event` per observable scheduling decision — admission,
// batch seal, DRR credit grant/spend/refund, dispatch, completion, QoS
// escalation, health transitions, scrub, relocation, inter-chip forward /
// response legs and migration start/commit — each stamped with virtual time,
// tenant, fault domain and chip. The log is the input to the runtime trace
// verifier (`analysis::check_serving_trace`, `tools/apim_trace_lint`), which
// replays it against the engines' formal invariants.
//
// Tracing is strictly observational: with `trace == nullptr` (the default)
// no event is constructed and every run is bit-identical to an untraced one.
// The log is not synchronized; attach it only to the deterministic
// virtual-time entry points (`run_trace`, `run_closed_loop`, the stepping
// API), where all emissions happen on one thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace apim::serve::trace {

/// One event kind per observable engine decision. Serialized names are the
/// kebab-case rule-catalog spellings (`to_string`).
enum class EventKind : std::uint8_t {
  // Server scope (chip >= 0 in a cluster, -1 standalone).
  kAdmit,         ///< Request admitted into the batcher (post-capacity check).
  kBatchSeal,     ///< A same-shape batch closed and entered the scheduler.
  kDispatch,      ///< Batch (or scrub) issued to a stream / fault domain.
  kComplete,      ///< Batch left its stream; domain freed.
  kAbort,         ///< In-flight batch killed by a domain quarantine.
  kServe,         ///< Terminal: request finalized kOk.
  kReject,        ///< Terminal: request finalized kRejected.
  kExpire,        ///< Terminal: request finalized kExpired.
  kInvalid,       ///< Terminal: request finalized kInvalid.
  kCreditGrant,   ///< DRR rotation credited a tenant its quantum x weight.
  kCreditSpend,   ///< DRR pick debited a batch's ops from the tenant deficit.
  kCreditRefund,  ///< Expired-at-dispatch ops returned to the tenant deficit.
  kQosEscalate,   ///< QoS miss re-queued the request at relax 0.
  kRelocate,      ///< Request re-queued off a quarantined / suspect domain.
  kHealth,        ///< Fault-domain FSM transition (healthy/suspect/quarantined).
  kScrub,         ///< March-test scrub pass finished (online or offline).
  // Cluster scope (chip == -1).
  kClusterAdmit,      ///< Request routed to its shard's chip.
  kForward,           ///< Cross-chip request leg charged to the interconnect.
  kResponseLeg,       ///< Cross-chip response leg (stamped at edge completion).
  kMigrationStart,    ///< Rebalancer began moving a shard (shard locked).
  kMigrationCommit,   ///< Shard move landed; placement updated.
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;
/// Inverse of to_string; returns false on an unknown name.
[[nodiscard]] bool kind_from_string(const std::string& name, EventKind* out);

/// One trace record. The struct is deliberately wide and flat: every kind
/// fills only its relevant fields and leaves the rest at their defaults,
/// and serialization emits non-default fields only.
struct Event {
  EventKind kind = EventKind::kAdmit;
  util::Cycles at = 0;     ///< Virtual timestamp (engine clock).
  std::int32_t chip = -1;  ///< Emitting chip; -1 = cluster scope/standalone.
  std::int64_t req = -1;   ///< Chip-local request id (cluster: trace index).
  std::string app;         ///< Tenant ("__scrub" for scrub batches).
  std::int64_t domain = -1;  ///< Stream / fault domain.
  // Request / batch shape (admit, seal, dispatch).
  std::uint8_t op = 0;      ///< serve::OpKind.
  unsigned width = 0;
  unsigned relax = 0;
  std::uint8_t policy = 0;  ///< reliability::ReliabilityPolicy.
  std::uint64_t ops = 0;
  std::vector<std::uint64_t> members;  ///< Request ids in the batch.
  // DRR credit ledger (grant / spend / refund).
  std::uint64_t amount = 0;
  std::uint64_t deficit_after = 0;
  bool idle_reset = false;  ///< Spend emptied the queue: deficit forfeited.
  // Admission bound (admit).
  std::uint64_t queue_depth = 0;  ///< Depth including this request.
  std::uint64_t capacity = 0;     ///< Effective bound; 0 = unbounded.
  // Health FSM (health / scrub / dispatch bookkeeping).
  std::uint8_t state_from = 0;  ///< serve::health::DomainState.
  std::uint8_t state_to = 0;
  bool dead = false;     ///< Domain hard-killed (no repair possible).
  bool clean = false;    ///< Scrub found zero stuck cells.
  bool offline = false;  ///< Scrub ran as an offline repair re-test.
  std::uint64_t stuck = 0;
  std::uint64_t repaired = 0;
  std::uint64_t detections = 0;
  std::uint64_t escalations = 0;
  bool scrub = false;  ///< Batch is the background scrub tenant's.
  // Interconnect legs and shard moves (cluster scope).
  std::int64_t from = -1;  ///< Source chip.
  std::int64_t to = -1;    ///< Destination chip.
  std::uint64_t hops = 0;
  std::uint64_t bits = 0;
  util::Cycles cycles = 0;  ///< Charged route latency.
  double energy_pj = 0.0;   ///< Charged route energy.
  std::int64_t shard = -1;
};

/// Engine configuration echoed into the log header so the verifier can
/// recompute invariant bounds (stream caps, interconnect charges) without
/// access to the live config objects. Serve fields are filled by the first
/// server that sees the log (all chips of a cluster share one config);
/// cluster fields by the cluster itself.
struct Meta {
  // serve::Server (streams == 0 means "not yet filled").
  std::size_t streams = 0;
  std::size_t lanes = 0;
  std::size_t queue_capacity = 0;
  bool fair_share = false;
  std::uint64_t quantum_ops = 0;
  std::uint64_t default_weight = 1;
  std::map<std::string, std::uint64_t> weights;
  bool health = false;
  // cluster::Cluster (chips == 0 means "single server").
  std::size_t chips = 0;
  std::size_t shards = 0;
  std::uint8_t topology = 0;  ///< 0 = star, 1 = 2D mesh.
  util::Cycles hop_latency_cycles = 0;
  std::size_t link_bits = 0;
  double pj_per_bit_hop = 0.0;
  std::uint64_t shard_bits = 0;
};

/// Append-only event buffer with a hard capacity: once full, further events
/// are dropped and `overflowed()` latches, which the verifier reports as
/// unsound (`trace-overflow`) rather than silently passing a partial log.
class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  EventLog() = default;
  explicit EventLog(std::size_t capacity) : capacity_(capacity) {}

  void record(Event event) {
    if (events_.size() >= capacity_) {
      overflowed_ = true;
      return;
    }
    events_.push_back(std::move(event));
  }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  /// Mutable access for the seeded-mutation test suites.
  [[nodiscard]] std::vector<Event>& events() { return events_; }
  [[nodiscard]] bool overflowed() const { return overflowed_; }
  void set_overflowed(bool value) { overflowed_ = value; }
  void clear() {
    events_.clear();
    overflowed_ = false;
    meta = Meta{};
  }

  /// Line-oriented text form (`apim-trace v1`): one `meta` / `weight` /
  /// `event` record per line, `key=value` tokens, non-default fields only.
  /// Doubles print with enough digits to round-trip bit-exactly.
  [[nodiscard]] std::string serialize() const;
  /// Inverse of serialize(). Returns false and sets `*error` on a malformed
  /// document; `*out` is cleared first.
  static bool parse(const std::string& text, EventLog* out,
                    std::string* error);

  Meta meta;

 private:
  std::vector<Event> events_;
  std::size_t capacity_ = kDefaultCapacity;
  bool overflowed_ = false;
};

}  // namespace apim::serve::trace
