// Request/response types of the serving runtime (src/serve/server.hpp).
//
// A request is one tenant's unit of work: a small vector of same-width
// arithmetic ops tagged with the application it belongs to (the paper's
// runtime detects the application and applies its tuned relax level,
// Section 4.3), an acceptance criterion, and an optional latency deadline.
// All times are SIMULATED MAGIC cycles — the runtime is a discrete-event
// model of the served chip, so latencies and deadlines live on the
// device's clock, not the host's.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "quality/qos.hpp"
#include "reliability/policy.hpp"
#include "util/units.hpp"

namespace apim::serve {

/// Which in-memory schedule a request needs. Multiplies round-robin over
/// the stream's lanes; vector adds — and the other adder-pass shapes,
/// compares (complement-add, arith/compare_units.hpp) and popcounts
/// (degenerate tree-add) — are row-parallel inside a tile (one lane,
/// shared serial pass — arith/vector_unit.hpp).
enum class OpKind : std::uint8_t {
  kMultiply,
  kVectorAdd,
  kCompare,   ///< Three-way compare; values are arith::kCmpLt/kCmpEq/kCmpGt.
  kPopcount,  ///< Set-bit count of operand.first (operand.second ignored).
};

enum class RequestStatus : std::uint8_t {
  kPending,   ///< Not yet finalized (internal state).
  kOk,        ///< Executed; values valid.
  kRejected,  ///< Admission control refused it (queue at capacity).
  kExpired,   ///< Deadline passed before dispatch; never executed.
  kInvalid,   ///< Malformed (width out of range, no operands).
};

[[nodiscard]] constexpr const char* to_string(OpKind op) noexcept {
  switch (op) {
    case OpKind::kMultiply: return "mul";
    case OpKind::kVectorAdd: return "add";
    case OpKind::kCompare: return "cmp";
    case OpKind::kPopcount: return "popcnt";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(RequestStatus s) noexcept {
  switch (s) {
    case RequestStatus::kPending: return "pending";
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kExpired: return "expired";
    case RequestStatus::kInvalid: return "invalid";
  }
  return "?";
}

struct Request {
  /// Tenant application name; keys the QoS table lookup that picks the
  /// relax level ("" or an unknown name falls back to exact).
  std::string app;
  OpKind op = OpKind::kMultiply;
  /// Word width of every operand pair, 4..32 (ApimDevice's range).
  unsigned width = 32;
  /// Magnitude operand pairs; values above `width` bits are clamped by the
  /// device exactly as in direct ApimDevice use.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> operands;
  /// Acceptance criterion for THIS request's outputs, evaluated against
  /// the host-exact golden results on completion; a miss escalates the
  /// app to exact mode when the server is configured to.
  quality::QosSpec qos = quality::QosSpec::numeric();
  /// Simulated arrival time (open-loop traces set this; the async server
  /// stamps it at admission).
  util::Cycles arrival = 0;
  /// Relative deadline in cycles from arrival; 0 = none. A request not
  /// DISPATCHED by arrival + deadline expires without executing.
  util::Cycles deadline = 0;
  /// Fault-tolerance level this tenant pays for (reliability/policy.hpp);
  /// part of the batch shape — requests only coalesce with like policies.
  reliability::ReliabilityPolicy policy = reliability::ReliabilityPolicy::kOff;
};

struct Response {
  std::uint64_t id = 0;  ///< Server-assigned, dense in admission order.
  RequestStatus status = RequestStatus::kPending;
  std::vector<std::uint64_t> values;  ///< One per operand pair (kOk only).
  /// Relax level the ops actually ran at (0 after an escalation).
  unsigned relax_bits = 0;
  /// True when a QoS miss forced an exact re-execution; the latency below
  /// then covers both passes.
  bool escalated = false;
  quality::QosEvaluation qos{};  ///< Evaluation vs host-exact golden.
  util::Cycles arrival = 0;
  util::Cycles dispatch = 0;    ///< When the batch started executing.
  util::Cycles completion = 0;  ///< When results were available.
  /// Requests coalesced into the dispatching batch (1 = unbatched).
  std::size_t batch_requests = 0;
  /// This request's share of the batch energy (proportional to op count).
  double energy_pj = 0.0;
  /// Times the health layer re-queued this request off a failing fault
  /// domain (whole-domain failure mid-flight, or a batch whose results
  /// could not be verified); 0 without the health layer. The energy and
  /// latency above cover every attempt.
  std::uint64_t relocations = 0;

  /// Simulated queue-to-completion latency in cycles.
  [[nodiscard]] util::Cycles latency_cycles() const noexcept {
    return completion >= arrival ? completion - arrival : 0;
  }
};

}  // namespace apim::serve
