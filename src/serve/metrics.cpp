#include "serve/metrics.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace apim::serve {

void Metrics::record_submitted(util::Cycles arrival) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++submitted_;
  if (!saw_arrival_ || arrival < first_arrival_) {
    first_arrival_ = arrival;
    saw_arrival_ = true;
  }
}

void Metrics::record_rejected() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_;
}

void Metrics::record_expired() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++expired_;
}

void Metrics::record_invalid() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++invalid_;
}

void Metrics::record_queue_depth(std::size_t depth) {
  const std::lock_guard<std::mutex> lock(mutex_);
  max_queue_depth_ = std::max(max_queue_depth_, depth);
}

void Metrics::record_dispatch(std::size_t batch_requests,
                              std::size_t batch_ops, std::size_t lanes_used,
                              util::Cycles busy_cycles, double energy_pj,
                              const core::ExecStats& stats) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  batched_ops_ += batch_ops;
  max_batch_requests_ = std::max(max_batch_requests_, batch_requests);
  batch_size_samples_.push_back(static_cast<double>(batch_requests));
  busy_lane_cycles_ += busy_cycles * lanes_used;
  busy_stream_cycles_ += busy_cycles;
  energy_pj_ += energy_pj;
  device_stats_.merge(stats);
}

void Metrics::record_completed(const std::string& app, util::Cycles arrival,
                               util::Cycles completion, bool escalated,
                               bool qos_missed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  last_completion_ = std::max(last_completion_, completion);
  latency_samples_.push_back(
      static_cast<double>(completion >= arrival ? completion - arrival : 0));
  MetricsSnapshot::AppCounts& counts = per_app_[app];
  ++counts.completed;
  if (escalated) ++counts.escalated;
  if (qos_missed) ++counts.qos_misses;
}

void Metrics::record_escalation() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++escalations_;
}

void Metrics::record_tenant_dispatch(const std::string& app,
                                     std::uint32_t weight, std::size_t ops,
                                     util::Cycles queued_for,
                                     std::uint64_t deficit_carried) {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot::AppCounts& counts = per_app_[app];
  counts.weight = weight;
  ++counts.dispatches;
  counts.ops_served += ops;
  counts.max_deficit_carried =
      std::max(counts.max_deficit_carried, deficit_carried);
  counts.max_starvation_cycles =
      std::max(counts.max_starvation_cycles, queued_for);
}

void Metrics::configure_domains(std::size_t domains) {
  const std::lock_guard<std::mutex> lock(mutex_);
  domains_.assign(domains, MetricsSnapshot::DomainSnapshot{});
  capacity_timeline_.assign(1, MetricsSnapshot::CapacityPoint{0, domains});
  min_serving_domains_ = domains;
}

void Metrics::record_domain_dispatch(std::size_t domain,
                                     std::uint64_t detections,
                                     std::uint64_t escalations) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (domain >= domains_.size()) return;
  MetricsSnapshot::DomainSnapshot& d = domains_[domain];
  ++d.dispatches;
  d.detections += detections;
  d.escalations += escalations;
}

void Metrics::record_domain_state(std::size_t domain,
                                  health::DomainState state, bool dead,
                                  util::Cycles at, std::size_t serving) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (domain >= domains_.size()) return;
  MetricsSnapshot::DomainSnapshot& d = domains_[domain];
  const health::DomainState prev = d.state;
  if (state == health::DomainState::kQuarantined &&
      prev != health::DomainState::kQuarantined) {
    ++d.quarantines;
  }
  if (prev == health::DomainState::kQuarantined &&
      state != health::DomainState::kQuarantined) {
    ++d.readmissions;
  }
  d.state = state;
  d.dead = dead;
  if (capacity_timeline_.empty() ||
      capacity_timeline_.back().serving_domains != serving) {
    capacity_timeline_.push_back(MetricsSnapshot::CapacityPoint{at, serving});
  }
  min_serving_domains_ = std::min(min_serving_domains_, serving);
}

void Metrics::record_scrub(std::size_t domain,
                           const health::ScrubReport& report) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++scrub_passes_;
  scrub_cycles_ += report.cycles;
  scrub_energy_pj_ += report.energy_pj;
  scrub_repaired_bits_ += report.repaired;
  if (domain >= domains_.size()) return;
  MetricsSnapshot::DomainSnapshot& d = domains_[domain];
  ++d.scrubs;
  d.stuck_found += report.stuck_found;
  d.repaired_bits += report.repaired;
}

void Metrics::record_relocation(std::size_t requests, std::size_t ops) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++relocated_batches_;
  relocated_requests_ += requests;
  relocated_ops_ += ops;
}

void Metrics::record_relocation_reject() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++relocation_rejects_;
}

void Metrics::record_degraded(std::size_t ops) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++degraded_batches_;
  degraded_ops_ += ops;
}

MetricsSnapshot Metrics::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot s;
  s.submitted = submitted_;
  s.completed = latency_samples_.size();
  s.rejected = rejected_;
  s.expired = expired_;
  s.invalid = invalid_;
  s.escalations = escalations_;
  s.batches = batches_;
  s.batched_ops = batched_ops_;
  s.max_batch_requests = max_batch_requests_;
  s.max_queue_depth = max_queue_depth_;
  s.energy_pj = energy_pj_;
  s.device_stats = device_stats_;
  s.per_app = per_app_;
  s.domains = domains_;
  s.scrub_passes = scrub_passes_;
  s.scrub_cycles = scrub_cycles_;
  s.scrub_energy_pj = scrub_energy_pj_;
  s.scrub_repaired_bits = scrub_repaired_bits_;
  s.relocated_requests = relocated_requests_;
  s.relocated_ops = relocated_ops_;
  s.relocated_batches = relocated_batches_;
  s.relocation_rejects = relocation_rejects_;
  s.degraded_batches = degraded_batches_;
  s.degraded_ops = degraded_ops_;
  s.capacity_timeline = capacity_timeline_;
  s.min_serving_domains = min_serving_domains_;

  double x_sum = 0.0, x_sq_sum = 0.0;
  std::size_t fair_apps = 0;
  for (const auto& [app, counts] : per_app_) {
    if (counts.dispatches == 0) continue;
    const double x = static_cast<double>(counts.ops_served) /
                     static_cast<double>(std::max(1u, counts.weight));
    x_sum += x;
    x_sq_sum += x * x;
    ++fair_apps;
  }
  if (fair_apps > 1 && x_sq_sum > 0.0)
    s.jain_fairness =
        x_sum * x_sum / (static_cast<double>(fair_apps) * x_sq_sum);

  if (!batch_size_samples_.empty()) {
    double sum = 0.0;
    for (const double b : batch_size_samples_) sum += b;
    s.mean_batch_requests = sum / static_cast<double>(batch_size_samples_.size());
  }
  if (saw_arrival_ && last_completion_ > first_arrival_)
    s.span_cycles = last_completion_ - first_arrival_;
  if (!latency_samples_.empty()) {
    s.p50_latency_cycles = util::percentile(latency_samples_, 0.50);
    s.p95_latency_cycles = util::percentile(latency_samples_, 0.95);
    s.p99_latency_cycles = util::percentile(latency_samples_, 0.99);
    double sum = 0.0;
    for (const double l : latency_samples_) sum += l;
    s.mean_latency_cycles = sum / static_cast<double>(latency_samples_.size());
  }
  if (s.span_cycles > 0) {
    const double span_s = util::cycles_to_seconds(s.span_cycles);
    s.throughput_rps = static_cast<double>(s.completed) / span_s;
    s.lane_occupancy = static_cast<double>(busy_lane_cycles_) /
                       (static_cast<double>(lanes_total_) *
                        static_cast<double>(s.span_cycles));
    s.stream_occupancy = static_cast<double>(busy_stream_cycles_) /
                         (static_cast<double>(streams_) *
                          static_cast<double>(s.span_cycles));
  }
  return s;
}

}  // namespace apim::serve
