// Fair-share dispatch scheduler: deficit round-robin (DRR) across tenants.
//
// Sits between DynamicBatcher (which closes single-tenant batches) and
// stream dispatch in server.cpp. Each tenant app owns a FIFO queue of
// closed batches plus a deficit counter in OPS; a round-robin ring visits
// tenants with queued work and credits each visit `quantum * weight`
// ops, so over any contention interval tenants receive service in
// proportion to their configured weights regardless of how aggressively
// one of them offers load (Shreedhar & Varghese's DRR, adapted to
// batch-granular dispatch).
//
// Weighted stream allocation: while OTHER tenants have runnable batches,
// a tenant may not hold more concurrent streams than its weight share
// (floor(streams * w / W) over currently-active tenants, minimum one).
// The policy is work-conserving: when nobody under their cap can use a
// free stream, caps are waived and the stream spills to DRR order, so a
// lone tenant still saturates the whole chip.
//
// Everything is driven by the single-threaded virtual-time engine, so
// ring order, deficits and picks are deterministic for any host thread
// count — the same contract as the batcher. `fair_share = false`
// degenerates to the legacy global FIFO in batch-close order (the A/B
// baseline for bench/ext_fairness) while keeping per-tenant attribution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/batcher.hpp"

namespace apim::serve {

namespace trace {
class EventLog;
enum class EventKind : std::uint8_t;
}  // namespace trace

struct SchedulerConfig {
  bool fair_share = true;
  std::size_t streams = 1;
  /// Ops credited per ring visit, scaled by the tenant's weight.
  std::size_t quantum_ops = 1;
  std::uint32_t default_weight = 1;
  /// Per-app weights; unlisted apps get `default_weight`. Zero weights
  /// are clamped to one (every tenant always makes progress).
  std::map<std::string, std::uint32_t> weights;
  /// Optional event sink for the DRR credit ledger (grant/spend/refund);
  /// nullptr disables tracing with zero behavior change.
  trace::EventLog* trace = nullptr;
  /// Chip id stamped on emitted events (-1 outside a cluster).
  std::int32_t trace_chip = -1;
};

/// One batch handed to a stream, with the accounting the metrics need.
struct DispatchPick {
  ClosedBatch batch;
  std::string app;
  std::uint32_t weight = 1;
  /// Cycles the batch waited between closing and this pick (the
  /// starvation gap the fairness metrics track).
  util::Cycles queued_for = 0;
  /// Deficit the tenant carries after being charged for this batch.
  std::uint64_t deficit_carried = 0;
};

class DrrScheduler {
 public:
  explicit DrrScheduler(SchedulerConfig cfg);

  /// Queue a closed batch under its tenant (batch.key.app).
  void enqueue(ClosedBatch&& batch);

  /// Pick the next batch to dispatch, or nullopt when nothing is queued.
  /// Call only when a stream is free; the pick is final (no peeking).
  [[nodiscard]] std::optional<DispatchPick> next(util::Cycles now);

  /// Return deficit for ops that were charged at pick time but never
  /// executed (deadline-expired members). Dropped when the tenant has no
  /// queued work left — an idle tenant must not hoard credit. `now` only
  /// stamps the trace event; it does not affect the ledger.
  void refund(const std::string& app, std::size_t ops, util::Cycles now = 0);

  /// Stream occupancy accounting for the per-tenant share caps.
  void stream_acquired(const std::string& app);
  void stream_released(const std::string& app);

  [[nodiscard]] std::size_t pending_requests() const noexcept {
    return pending_requests_;
  }
  [[nodiscard]] bool has_work() const noexcept { return queued_batches_ > 0; }
  [[nodiscard]] std::uint32_t weight_of(const std::string& app) const;

 private:
  struct Tenant {
    std::deque<ClosedBatch> queue;
    std::uint64_t deficit = 0;
    std::size_t in_flight = 0;
    std::uint32_t weight = 1;
  };

  [[nodiscard]] Tenant& tenant(const std::string& app);
  [[nodiscard]] bool eligible(const Tenant& t, bool respect_caps) const;
  [[nodiscard]] std::size_t stream_cap(const Tenant& t) const;
  [[nodiscard]] std::uint64_t quantum_for(const Tenant& t) const noexcept;
  [[nodiscard]] DispatchPick serve(std::size_t ring_index, util::Cycles now);
  void emit_credit(trace::EventKind kind, const std::string& app,
                   std::uint64_t amount, std::uint64_t deficit_after,
                   bool idle_reset, util::Cycles now) const;
  [[nodiscard]] DispatchPick finish_pick(ClosedBatch&& batch,
                                         const std::string& app,
                                         std::uint32_t weight,
                                         std::uint64_t deficit_carried,
                                         util::Cycles now);

  SchedulerConfig cfg_;
  /// Tenant state, keyed by app name (total order: deterministic).
  std::map<std::string, Tenant> tenants_;
  /// Round-robin ring of tenants with queued work, in activation order.
  std::vector<std::string> ring_;
  std::size_t cursor_ = 0;
  /// Legacy FIFO queue (fair_share = false).
  std::deque<ClosedBatch> fifo_;
  std::size_t queued_batches_ = 0;
  std::size_t pending_requests_ = 0;
};

}  // namespace apim::serve
