// Dynamic batcher: coalesce same-shaped requests into one dispatch.
//
// A bank controller broadcasts ONE schedule to its active tiles
// (core/chip.hpp::command_streams), so requests can share a dispatch only
// when they run the SAME schedule: same op kind, same word width, same
// relax level, same reliability policy. Together with the tenant app —
// batches stay single-tenant so the fair-share scheduler
// (serve/scheduler.hpp) can attribute and rate every dispatch — that is
// the batch shape. An open batch closes — becomes dispatchable — when its
// batching window (simulated cycles since it opened) elapses or its op
// count reaches the per-dispatch lane budget. Everything here is
// deterministic: batches are keyed and iterated in a total order, never
// by pointer or hash order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "serve/request.hpp"

namespace apim::serve {

/// The shape tuple; requests coalesce iff their keys compare equal.
struct BatchKey {
  OpKind op = OpKind::kMultiply;
  unsigned width = 32;
  unsigned relax_bits = 0;
  reliability::ReliabilityPolicy policy = reliability::ReliabilityPolicy::kOff;
  /// Owning tenant: batches are single-tenant so dispatch scheduling can
  /// charge each one to exactly one app's deficit account.
  std::string app;

  [[nodiscard]] friend bool operator==(const BatchKey&,
                                       const BatchKey&) = default;
  [[nodiscard]] friend bool operator<(const BatchKey& a, const BatchKey& b) {
    return std::tie(a.op, a.width, a.relax_bits, a.policy, a.app) <
           std::tie(b.op, b.width, b.relax_bits, b.policy, b.app);
  }
};

/// Key for a request once its relax level has been chosen.
[[nodiscard]] inline BatchKey key_for(const Request& r,
                                      unsigned relax_bits) {
  return BatchKey{r.op, r.width, relax_bits, r.policy, r.app};
}

/// Sentinel for ClosedBatch::scrub_domain: not a scrub batch.
inline constexpr std::size_t kNotScrub = static_cast<std::size_t>(-1);

/// A closed batch, ready for dispatch: member request ids in admission
/// order plus bookkeeping for FIFO dispatch.
struct ClosedBatch {
  BatchKey key{};
  std::vector<std::uint64_t> members;  ///< Request ids, admission order.
  std::size_t ops = 0;
  util::Cycles closed_at = 0;
  std::uint64_t seq = 0;  ///< Close order tie-break (deterministic FIFO).
  /// When != kNotScrub this is a background march-test scrub batch
  /// targeting that fault domain (serve/health.hpp): no members, rides
  /// the DRR scheduler under the `kScrubTenant` system tenant, and must
  /// dispatch on its target stream.
  std::size_t scrub_domain = kNotScrub;
};

class DynamicBatcher {
 public:
  /// `window`: cycles an open batch waits for company before closing.
  /// `max_ops`: op budget per dispatch (the stream's lane count is the
  /// natural choice); a batch reaching it closes immediately. When
  /// `window` is 0 every request closes as a singleton — the unbatched
  /// baseline the serving bench compares against.
  DynamicBatcher(util::Cycles window, std::size_t max_ops);

  /// Add an admitted request (its relax level already chosen). Returns a
  /// closed batch when this addition filled one, otherwise nullopt.
  std::optional<ClosedBatch> add(std::uint64_t request_id, const BatchKey& key,
                                 std::size_t ops, util::Cycles now);

  /// Close every open batch whose window has elapsed by `now`, in
  /// deterministic (close time, key) order.
  [[nodiscard]] std::vector<ClosedBatch> close_due(util::Cycles now);

  /// Close everything regardless of window (drain on shutdown).
  [[nodiscard]] std::vector<ClosedBatch> close_all(util::Cycles now);

  /// Earliest pending window expiry, or nullopt when no batch is open.
  [[nodiscard]] std::optional<util::Cycles> next_close() const;

  /// Requests currently held in open batches.
  [[nodiscard]] std::size_t pending_requests() const noexcept {
    return pending_requests_;
  }

 private:
  struct OpenBatch {
    std::vector<std::uint64_t> members;
    std::size_t ops = 0;
    util::Cycles close_at = 0;
  };

  ClosedBatch seal(const BatchKey& key, OpenBatch&& open, util::Cycles now);

  util::Cycles window_;
  std::size_t max_ops_;
  std::map<BatchKey, OpenBatch> open_;
  std::size_t pending_requests_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace apim::serve
