#include "apps/signal_kernels.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

#include "apps/parallel.hpp"
#include "util/rng.hpp"

namespace apim::apps {

namespace {

constexpr util::FixedPointFormat kQ16_16f{16, 16};

/// Exact sign-magnitude fixed-point multiply with truncation toward zero —
/// the golden twin of ApimDevice::mul (same rounding, exact arithmetic).
std::int64_t golden_qmul(std::int64_t a, std::int64_t b, unsigned frac_bits) {
  const bool negative = (a < 0) != (b < 0);
  const std::uint64_t mag = (static_cast<std::uint64_t>(std::llabs(a)) *
                             static_cast<std::uint64_t>(std::llabs(b))) >>
                            frac_bits;
  const auto m = static_cast<std::int64_t>(mag);
  return negative ? -m : m;
}

/// Bit-reversal permutation (shared by both FFT paths).
void bit_reverse(std::vector<std::int64_t>& re, std::vector<std::int64_t>& im) {
  const std::size_t n = re.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
}

/// Q16 twiddle factors for angle index k of an n-point stage.
struct Twiddle {
  std::int64_t re;
  std::int64_t im;
};
Twiddle twiddle_q16(std::size_t k, std::size_t n) {
  const double angle =
      -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
  return {static_cast<std::int64_t>(std::llround(std::cos(angle) * 65536.0)),
          static_cast<std::int64_t>(std::llround(std::sin(angle) * 65536.0))};
}

std::size_t floor_pow2(std::size_t v) {
  std::size_t p = 8;
  while (p * 2 <= v) p *= 2;
  return p;
}

}  // namespace

// -------------------------------------------------------------------- FFT --

void FftApp::generate(std::size_t elements, std::uint64_t seed) {
  const std::size_t n = floor_pow2(std::max<std::size_t>(elements, 8));
  util::Xoshiro256 rng(seed);
  signal_re_.assign(n, 0);
  signal_im_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    signal_re_[i] = static_cast<std::int64_t>(
        std::llround(rng.next_double_in(-0.9, 0.9) * (kScale - 1)));
    signal_im_[i] = static_cast<std::int64_t>(
        std::llround(rng.next_double_in(-0.9, 0.9) * (kScale - 1)));
  }
}

std::vector<double> FftApp::run_golden() const {
  std::vector<std::int64_t> re = signal_re_;
  std::vector<std::int64_t> im = signal_im_;
  const std::size_t n = re.size();
  bit_reverse(re, im);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Twiddle w = twiddle_q16(j, len);
        const std::size_t ai = base + j;
        const std::size_t bi = base + j + len / 2;
        const std::int64_t t_re = golden_qmul(w.re, re[bi], 16) -
                                  golden_qmul(w.im, im[bi], 16);
        const std::int64_t t_im = golden_qmul(w.re, im[bi], 16) +
                                  golden_qmul(w.im, re[bi], 16);
        // Per-stage halving (free shifts) prevents fixed-point overflow.
        const std::int64_t a_re = re[ai], a_im = im[ai];
        re[ai] = (a_re + t_re) >> 1;
        im[ai] = (a_im + t_im) >> 1;
        re[bi] = (a_re - t_re) >> 1;
        im[bi] = (a_im - t_im) >> 1;
      }
    }
  }
  std::vector<double> out;
  out.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<double>(re[i]) / kScale);
    out.push_back(static_cast<double>(im[i]) / kScale);
  }
  return out;
}

std::vector<double> FftApp::run_apim(core::ApimDevice& device) const {
  std::vector<std::int64_t> re = signal_re_;
  std::vector<std::int64_t> im = signal_im_;
  const std::size_t n = re.size();
  bit_reverse(re, im);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Twiddle w = twiddle_q16(j, len);
        const std::size_t ai = base + j;
        const std::size_t bi = base + j + len / 2;
        const std::int64_t t_re =
            device.add(device.mul(w.re, re[bi], kQ16_16f),
                       -device.mul(w.im, im[bi], kQ16_16f));
        const std::int64_t t_im =
            device.add(device.mul(w.re, im[bi], kQ16_16f),
                       device.mul(w.im, re[bi], kQ16_16f));
        const std::int64_t a_re = re[ai], a_im = im[ai];
        re[ai] = device.add(a_re, t_re) >> 1;
        im[ai] = device.add(a_im, t_im) >> 1;
        re[bi] = device.add(a_re, -t_re) >> 1;
        im[bi] = device.add(a_im, -t_im) >> 1;
      }
    }
  }
  std::vector<double> out;
  out.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<double>(re[i]) / kScale);
    out.push_back(static_cast<double>(im[i]) / kScale);
  }
  return out;
}

// -------------------------------------------------------------- DwtHaar1D --

void DwtHaarApp::generate(std::size_t elements, std::uint64_t seed) {
  const std::size_t n = floor_pow2(std::max<std::size_t>(elements, 8));
  util::Xoshiro256 rng(seed);
  signal_.assign(n, 0);
  // Smooth-ish signal: random walk clipped to [-1, 1), the regime wavelet
  // compression targets.
  double value = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    value = std::clamp(value + rng.next_double_in(-0.1, 0.1), -0.999, 0.999);
    signal_[i] = static_cast<std::int64_t>(std::llround(value * (kScale - 1)));
  }
}

std::vector<double> DwtHaarApp::run_golden() const {
  std::vector<std::int64_t> approx = signal_;
  std::vector<double> details;
  details.reserve(signal_.size());
  while (approx.size() > 1) {
    std::vector<std::int64_t> next(approx.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      const std::int64_t sum = approx[2 * i] + approx[2 * i + 1];
      const std::int64_t diff = approx[2 * i] - approx[2 * i + 1];
      next[i] = golden_qmul(sum, kInvSqrt2, 16);
      details.push_back(static_cast<double>(golden_qmul(diff, kInvSqrt2, 16)) /
                        kScale);
    }
    approx = std::move(next);
  }
  std::vector<double> out;
  out.reserve(details.size() + 1);
  out.push_back(static_cast<double>(approx[0]) / kScale);
  out.insert(out.end(), details.begin(), details.end());
  return out;
}

std::vector<double> DwtHaarApp::run_apim(core::ApimDevice& device) const {
  std::vector<std::int64_t> approx = signal_;
  std::vector<double> details;
  details.reserve(signal_.size());
  while (approx.size() > 1) {
    std::vector<std::int64_t> next(approx.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      const std::int64_t sum = device.add(approx[2 * i], approx[2 * i + 1]);
      const std::int64_t diff = device.add(approx[2 * i], -approx[2 * i + 1]);
      next[i] = device.mul(sum, kInvSqrt2, kQ16_16f);
      details.push_back(
          static_cast<double>(device.mul(diff, kInvSqrt2, kQ16_16f)) / kScale);
    }
    approx = std::move(next);
  }
  std::vector<double> out;
  out.reserve(details.size() + 1);
  out.push_back(static_cast<double>(approx[0]) / kScale);
  out.insert(out.end(), details.begin(), details.end());
  return out;
}

// ------------------------------------------------------------- QuasiRandom --

void QuasiRandomApp::generate(std::size_t elements, std::uint64_t seed) {
  count_ = std::max<std::size_t>(elements, 8);
  // Van-der-Corput style low-discrepancy points in Q16, randomized by a
  // seed-dependent XOR scramble (deterministic per seed).
  util::Xoshiro256 rng(seed);
  const std::uint64_t scramble = rng.next_below(kScale);
  points_.assign(count_, 0);
  for (std::size_t i = 0; i < count_; ++i) {
    std::uint64_t bits = 0;
    std::uint64_t v = i + 1;
    for (int b = 15; b >= 0 && v; --b, v >>= 1) bits |= (v & 1) << b;
    points_[i] = static_cast<std::int64_t>(bits ^ scramble);
  }
}

std::vector<double> QuasiRandomApp::run_golden() const {
  // out_i = frac(x_i * c + d): the low 16 bits of the integer product (the
  // classic multiplicative scramble), plus the dimension offset, mod 1.
  std::vector<double> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    const std::int64_t product = points_[i] * kMultiplier;
    out.push_back(
        static_cast<double>((product + kOffset) & (kScale - 1)) / kScale);
  }
  return out;
}

std::vector<double> QuasiRandomApp::run_apim(core::ApimDevice& device) const {
  // Points are independent (unlike the FFT butterflies and DWT levels
  // above, which carry cross-element dependences and stay serial).
  return parallel_map(
      device, count_, [&](core::ApimDevice& dev, std::size_t i) {
        const std::int64_t product = dev.mul_int(points_[i], kMultiplier);
        return static_cast<double>(dev.add(product, kOffset) &
                                   (kScale - 1)) /
               kScale;
      });
}

// --------------------------------------------------------------- registry --

}  // namespace apim::apps
