// Application interface: the six OpenCL workloads of the paper's
// evaluation (Sobel, Robert, FFT, DwtHaar1D, Sharpen, QuasiRandom),
// re-implemented in C++ against the ApimDevice API (see DESIGN.md's
// substitution table for the OpenCL-runtime substitution).
//
// Every application provides two paths over the same generated input:
//  * run_golden(): exact double-precision reference ("golden output" in the
//    paper's accuracy framework, Section 4.1);
//  * run_apim(): the same algorithm with every multiply/add issued to an
//    ApimDevice, which computes through the validated in-memory models and
//    accumulates cycles/energy.
// Kernels use integer/fixed-point scaling chosen to mirror the OpenCL
// originals (8-bit pixels, Q-format signal processing).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/gpu_model.hpp"
#include "core/apim.hpp"
#include "quality/qos.hpp"

namespace apim::apps {

class Application {
 public:
  virtual ~Application() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Acceptance criterion: images use 30 dB PSNR, numeric kernels 10%
  /// average relative error (paper Section 4.1).
  [[nodiscard]] virtual quality::QosSpec qos() const = 0;

  /// Generate a deterministic workload with roughly `elements` input
  /// elements (images round to a square, FFT to a power of two).
  virtual void generate(std::size_t elements, std::uint64_t seed) = 0;

  /// Number of input elements actually generated.
  [[nodiscard]] virtual std::size_t element_count() const = 0;

  /// Exact reference output.
  [[nodiscard]] virtual std::vector<double> run_golden() const = 0;

  /// Same computation through the APIM device (respects the device's
  /// current approximation configuration and accumulates its stats).
  [[nodiscard]] virtual std::vector<double> run_apim(
      core::ApimDevice& device) const = 0;

  /// Per-element workload intensity for the GPU baseline model.
  [[nodiscard]] virtual baseline::GpuAppProfile gpu_profile() const = 0;
};

/// All six applications, in the paper's Table 1 order.
[[nodiscard]] std::vector<std::unique_ptr<Application>> make_all_applications();

/// Factory by name ("Sobel", "Robert", "FFT", "DwtHaar1D", "Sharpen",
/// "QuasiR", plus extension apps like "GEMM"); returns nullptr for unknown
/// names.
[[nodiscard]] std::unique_ptr<Application> make_application(
    std::string_view name);

/// Extension workloads beyond the paper's six (currently: GEMM).
[[nodiscard]] std::vector<std::unique_ptr<Application>>
make_extension_applications();

}  // namespace apim::apps
