// Host-parallel execution of per-element application kernels.
//
// The six paper kernels (and GEMM) issue every multiply/add of element i
// independently of element j, so the host can simulate elements
// concurrently. Each fixed-size chunk of elements runs against a private
// ApimDevice clone (same config, fresh stats); the clones' ExecStats merge
// into the caller's device serially in chunk order. Because the chunk
// partition depends only on the element count — never on the thread count —
// outputs, cycle counts and energies are bit-identical for every
// APIM_THREADS setting (tests/parallel_exec_test.cpp).
//
// Kernels with cross-element dependences (FFT butterflies, DWT levels)
// keep their serial loops; this helper is for the per-element ones.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/apim.hpp"

namespace apim::apps {

/// Elements per device-clone chunk. Fixed so stats merge identically for
/// every thread count.
inline constexpr std::size_t kParallelMapGrain = 1024;

/// Computes out[i] = fn(worker_device, i) for i in [0, count) across the
/// global thread pool and charges all issued ops to `device` in
/// deterministic chunk order.
[[nodiscard]] std::vector<double> parallel_map(
    core::ApimDevice& device, std::size_t count,
    const std::function<double(core::ApimDevice&, std::size_t)>& fn);

}  // namespace apim::apps
