// GEMM extension application: dense matrix multiply, the kernel behind the
// paper's machine-learning motivation (classification / neural networks on
// IoT data). Not part of the paper's six evaluated applications — it lives
// in the extension registry (make_extension_applications) and its own
// analyses — but it exercises the deepest accumulation chains of any
// workload here (k-long dot products per output element).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/app.hpp"

namespace apim::apps {

class GemmApp final : public Application {
 public:
  [[nodiscard]] std::string name() const override { return "GEMM"; }
  [[nodiscard]] quality::QosSpec qos() const override {
    return quality::QosSpec::numeric();
  }
  /// `elements` is interpreted as the total output count; matrices are
  /// square with side ~ cbrt-scaled so work stays tractable.
  void generate(std::size_t elements, std::uint64_t seed) override;
  [[nodiscard]] std::size_t element_count() const override {
    return side_ * side_;
  }
  [[nodiscard]] std::vector<double> run_golden() const override;
  [[nodiscard]] std::vector<double> run_apim(
      core::ApimDevice& device) const override;
  [[nodiscard]] baseline::GpuAppProfile gpu_profile() const override {
    // 2*side ops per output element; GEMM tiles well, moderate traffic.
    return {2.0 * static_cast<double>(side_), 48.0};
  }

  static constexpr std::int64_t kScale = 65536;  // Q16 entries in [-1, 1).

 private:
  std::size_t side_ = 0;
  std::vector<std::int64_t> a_;  // Row-major side x side, Q16.
  std::vector<std::int64_t> b_;
};

}  // namespace apim::apps
