#include "apps/app.hpp"
#include "apps/gemm.hpp"
#include "apps/image_kernels.hpp"
#include "apps/signal_kernels.hpp"

namespace apim::apps {

std::vector<std::unique_ptr<Application>> make_all_applications() {
  std::vector<std::unique_ptr<Application>> apps;
  apps.push_back(std::make_unique<SobelApp>());
  apps.push_back(std::make_unique<RobertApp>());
  apps.push_back(std::make_unique<FftApp>());
  apps.push_back(std::make_unique<DwtHaarApp>());
  apps.push_back(std::make_unique<SharpenApp>());
  apps.push_back(std::make_unique<QuasiRandomApp>());
  return apps;
}

std::unique_ptr<Application> make_application(std::string_view name) {
  if (name == "Sobel") return std::make_unique<SobelApp>();
  if (name == "Robert") return std::make_unique<RobertApp>();
  if (name == "FFT") return std::make_unique<FftApp>();
  if (name == "DwtHaar1D") return std::make_unique<DwtHaarApp>();
  if (name == "Sharpen") return std::make_unique<SharpenApp>();
  if (name == "QuasiR") return std::make_unique<QuasiRandomApp>();
  if (name == "GEMM") return std::make_unique<GemmApp>();
  return nullptr;
}

std::vector<std::unique_ptr<Application>> make_extension_applications() {
  std::vector<std::unique_ptr<Application>> apps;
  apps.push_back(std::make_unique<GemmApp>());
  return apps;
}

}  // namespace apim::apps
