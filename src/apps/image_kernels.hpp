// The three image-processing applications: Sobel, Robert and Sharpen.
//
// Inputs are deterministic synthetic grayscale images (Caltech-101
// substitution, see util/image.hpp). Pixels are 8-bit integers processed
// in 32-bit integer arithmetic, as the OpenCL originals do; gradient
// magnitudes use the squared-energy formulation (the paper notes that
// square roots were approximated with additions and multiplications in the
// OpenCL code — squaring keeps the same multiply-heavy structure without a
// divider).
#pragma once

#include "apps/app.hpp"
#include "util/image.hpp"

namespace apim::apps {

/// Common scaffolding for the 2D kernels.
class ImageApplication : public Application {
 public:
  void generate(std::size_t elements, std::uint64_t seed) final;
  [[nodiscard]] std::size_t element_count() const final {
    return input_.pixel_count();
  }
  [[nodiscard]] quality::QosSpec qos() const final {
    return quality::QosSpec::image();
  }

 protected:
  [[nodiscard]] const util::Image& input() const noexcept { return input_; }

 private:
  util::Image input_;
};

/// Sobel edge detector: 3x3 Gx/Gy convolutions, squared gradient energy,
/// fixed-point normalization to 8 bits.
class SobelApp final : public ImageApplication {
 public:
  [[nodiscard]] std::string name() const override { return "Sobel"; }
  [[nodiscard]] std::vector<double> run_golden() const override;
  [[nodiscard]] std::vector<double> run_apim(
      core::ApimDevice& device) const override;
  [[nodiscard]] baseline::GpuAppProfile gpu_profile() const override {
    return {18.0, 120.0};
  }
};

/// Roberts cross: 2x2 diagonal differences, squared energy.
class RobertApp final : public ImageApplication {
 public:
  [[nodiscard]] std::string name() const override { return "Robert"; }
  [[nodiscard]] std::vector<double> run_golden() const override;
  [[nodiscard]] std::vector<double> run_apim(
      core::ApimDevice& device) const override;
  [[nodiscard]] baseline::GpuAppProfile gpu_profile() const override {
    return {8.0, 60.0};
  }
};

/// Unsharp-style 3x3 sharpening filter with clamping.
class SharpenApp final : public ImageApplication {
 public:
  [[nodiscard]] std::string name() const override { return "Sharpen"; }
  [[nodiscard]] std::vector<double> run_golden() const override;
  [[nodiscard]] std::vector<double> run_apim(
      core::ApimDevice& device) const override;
  [[nodiscard]] baseline::GpuAppProfile gpu_profile() const override {
    return {7.0, 100.0};
  }
};

}  // namespace apim::apps
