#include "apps/image_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "apps/parallel.hpp"

namespace apim::apps {

namespace {

// Pixels are promoted to Q8 (value << 8) before processing, as the OpenCL
// kernels do when normalizing 8-bit channels into fixed-point registers.
// The +-1/+-2 convolution taps are strength-reduced to additions (as any
// OpenCL compiler folds them); the genuine multiplies are the gradient
// squarings and the sharpening gain — large-operand products that exercise
// the APIM multiplier's relaxed final stage.
constexpr unsigned kPixelShift = 8;

// Gradient energies are normalized to 8 bits by pure (free) shifts:
// e_max(Sobel)  = 2*(4*255*256)^2 ~ 2^37 -> >>29 maps to ~255.
// e_max(Robert) = 2*(255*256)^2   ~ 2^33 -> >>25.
constexpr unsigned kSobelEnergyShift = 29;
constexpr unsigned kRobertEnergyShift = 25;

// Sharpen gain alpha = 1.5 in Q8.
constexpr std::int64_t kSharpenAlphaQ8 = 384;

double clamp255(double v) { return std::clamp(v, 0.0, 255.0); }

}  // namespace

void ImageApplication::generate(std::size_t elements, std::uint64_t seed) {
  const auto side = std::max<std::size_t>(
      4, static_cast<std::size_t>(std::llround(std::sqrt(
             static_cast<double>(elements)))));
  input_ = util::make_synthetic_image(side, side, seed);
}

// ------------------------------------------------------------------ Sobel --

std::vector<double> SobelApp::run_golden() const {
  const util::Image& img = input();
  std::vector<double> out;
  out.reserve(img.pixel_count());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const auto q = [&](int dx, int dy) -> std::int64_t {
        return static_cast<std::int64_t>(
                   img.at_clamped(static_cast<std::int64_t>(x) + dx,
                                  static_cast<std::int64_t>(y) + dy))
               << kPixelShift;
      };
      const std::int64_t gx =
          (q(1, -1) + 2 * q(1, 0) + q(1, 1)) -
          (q(-1, -1) + 2 * q(-1, 0) + q(-1, 1));
      const std::int64_t gy =
          (q(-1, 1) + 2 * q(0, 1) + q(1, 1)) -
          (q(-1, -1) + 2 * q(0, -1) + q(1, -1));
      const std::int64_t energy = gx * gx + gy * gy;
      out.push_back(clamp255(
          static_cast<double>(energy >> kSobelEnergyShift)));
    }
  }
  return out;
}

std::vector<double> SobelApp::run_apim(core::ApimDevice& device) const {
  const util::Image& img = input();
  // Pixels are independent: one parallel_map index per pixel.
  return parallel_map(
      device, img.pixel_count(),
      [&](core::ApimDevice& dev, std::size_t idx) {
        const std::size_t x = idx % img.width();
        const std::size_t y = idx / img.width();
        const auto q = [&](int dx, int dy) -> std::int64_t {
          return static_cast<std::int64_t>(
                     img.at_clamped(static_cast<std::int64_t>(x) + dx,
                                    static_cast<std::int64_t>(y) + dy))
                 << kPixelShift;
        };
        // Taps as additions (x2 = self-add), then one subtraction per axis.
        const std::int64_t pos_x =
            dev.add(dev.add(q(1, 0), q(1, 0)),
                    dev.add(q(1, -1), q(1, 1)));
        const std::int64_t neg_x =
            dev.add(dev.add(q(-1, 0), q(-1, 0)),
                    dev.add(q(-1, -1), q(-1, 1)));
        const std::int64_t gx = dev.add(pos_x, -neg_x);
        const std::int64_t pos_y =
            dev.add(dev.add(q(0, 1), q(0, 1)),
                    dev.add(q(-1, 1), q(1, 1)));
        const std::int64_t neg_y =
            dev.add(dev.add(q(0, -1), q(0, -1)),
                    dev.add(q(-1, -1), q(1, -1)));
        const std::int64_t gy = dev.add(pos_y, -neg_y);
        const std::int64_t energy =
            dev.add_wide(dev.mul_int(gx, gx), dev.mul_int(gy, gy));
        return clamp255(static_cast<double>(energy >> kSobelEnergyShift));
      });
}

// ----------------------------------------------------------------- Robert --

std::vector<double> RobertApp::run_golden() const {
  const util::Image& img = input();
  std::vector<double> out;
  out.reserve(img.pixel_count());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const auto ix = static_cast<std::int64_t>(x);
      const auto iy = static_cast<std::int64_t>(y);
      const std::int64_t gx =
          (static_cast<std::int64_t>(img.at_clamped(ix, iy))
           << kPixelShift) -
          (static_cast<std::int64_t>(img.at_clamped(ix + 1, iy + 1))
           << kPixelShift);
      const std::int64_t gy =
          (static_cast<std::int64_t>(img.at_clamped(ix + 1, iy))
           << kPixelShift) -
          (static_cast<std::int64_t>(img.at_clamped(ix, iy + 1))
           << kPixelShift);
      const std::int64_t energy = gx * gx + gy * gy;
      out.push_back(clamp255(
          static_cast<double>(energy >> kRobertEnergyShift)));
    }
  }
  return out;
}

std::vector<double> RobertApp::run_apim(core::ApimDevice& device) const {
  const util::Image& img = input();
  return parallel_map(
      device, img.pixel_count(),
      [&](core::ApimDevice& dev, std::size_t idx) {
        const auto ix = static_cast<std::int64_t>(idx % img.width());
        const auto iy = static_cast<std::int64_t>(idx / img.width());
        const std::int64_t gx = dev.add(
            static_cast<std::int64_t>(img.at_clamped(ix, iy)) << kPixelShift,
            -(static_cast<std::int64_t>(img.at_clamped(ix + 1, iy + 1))
              << kPixelShift));
        const std::int64_t gy = dev.add(
            static_cast<std::int64_t>(img.at_clamped(ix + 1, iy))
                << kPixelShift,
            -(static_cast<std::int64_t>(img.at_clamped(ix, iy + 1))
              << kPixelShift));
        const std::int64_t energy =
            dev.add_wide(dev.mul_int(gx, gx), dev.mul_int(gy, gy));
        return clamp255(static_cast<double>(energy >> kRobertEnergyShift));
      });
}

// ---------------------------------------------------------------- Sharpen --

std::vector<double> SharpenApp::run_golden() const {
  const util::Image& img = input();
  std::vector<double> out;
  out.reserve(img.pixel_count());
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const auto ix = static_cast<std::int64_t>(x);
      const auto iy = static_cast<std::int64_t>(y);
      const std::int64_t q = static_cast<std::int64_t>(img.at_clamped(ix, iy))
                             << kPixelShift;
      const std::int64_t blur_sum =
          ((static_cast<std::int64_t>(img.at_clamped(ix - 1, iy)) +
            img.at_clamped(ix + 1, iy)) +
           (static_cast<std::int64_t>(img.at_clamped(ix, iy - 1)) +
            img.at_clamped(ix, iy + 1)))
          << kPixelShift;
      const std::int64_t diff = q - (blur_sum >> 2);
      // Truncation toward zero, matching the device's sign-magnitude shift.
      const std::int64_t amp_mag = (std::llabs(kSharpenAlphaQ8 * diff)) >> 8;
      const std::int64_t amp = diff < 0 ? -amp_mag : amp_mag;
      out.push_back(clamp255(static_cast<double>((q + amp) >> kPixelShift)));
    }
  }
  return out;
}

std::vector<double> SharpenApp::run_apim(core::ApimDevice& device) const {
  const util::Image& img = input();
  return parallel_map(
      device, img.pixel_count(),
      [&](core::ApimDevice& dev, std::size_t idx) {
        const auto ix = static_cast<std::int64_t>(idx % img.width());
        const auto iy = static_cast<std::int64_t>(idx / img.width());
        const std::int64_t q =
            static_cast<std::int64_t>(img.at_clamped(ix, iy)) << kPixelShift;
        const auto qn = [&](int dx, int dy) -> std::int64_t {
          return static_cast<std::int64_t>(
                     img.at_clamped(ix + dx, iy + dy))
                 << kPixelShift;
        };
        const std::int64_t blur_sum =
            dev.add(dev.add(qn(-1, 0), qn(1, 0)),
                    dev.add(qn(0, -1), qn(0, 1)));
        const std::int64_t diff = dev.add(q, -(blur_sum >> 2));
        // Sign-magnitude multiply then >>8 rescale (truncation toward zero).
        const std::int64_t product = dev.mul_int(kSharpenAlphaQ8, diff);
        const std::int64_t amp =
            product < 0 ? -((-product) >> 8) : (product >> 8);
        const std::int64_t sharp = dev.add(q, amp);
        return clamp255(static_cast<double>(sharp >> kPixelShift));
      });
}

}  // namespace apim::apps
