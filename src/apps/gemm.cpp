#include "apps/gemm.hpp"

#include <algorithm>
#include <cmath>

#include "apps/parallel.hpp"
#include "util/rng.hpp"

namespace apim::apps {

namespace {

constexpr util::FixedPointFormat kQ16f{16, 16};

std::int64_t golden_qmul16(std::int64_t a, std::int64_t b) {
  const bool negative = (a < 0) != (b < 0);
  const std::uint64_t mag = (static_cast<std::uint64_t>(std::llabs(a)) *
                             static_cast<std::uint64_t>(std::llabs(b))) >>
                            16;
  const auto m = static_cast<std::int64_t>(mag);
  return negative ? -m : m;
}

}  // namespace

void GemmApp::generate(std::size_t elements, std::uint64_t seed) {
  side_ = std::max<std::size_t>(
      4, static_cast<std::size_t>(std::llround(
             std::sqrt(static_cast<double>(elements)))));
  util::Xoshiro256 rng(seed);
  const auto random_entry = [&] {
    return static_cast<std::int64_t>(
        std::llround(rng.next_double_in(-0.9, 0.9) * (kScale - 1)));
  };
  a_.assign(side_ * side_, 0);
  b_.assign(side_ * side_, 0);
  for (auto& v : a_) v = random_entry();
  for (auto& v : b_) v = random_entry();
}

std::vector<double> GemmApp::run_golden() const {
  std::vector<double> out;
  out.reserve(side_ * side_);
  for (std::size_t i = 0; i < side_; ++i) {
    for (std::size_t j = 0; j < side_; ++j) {
      std::int64_t acc = 0;
      for (std::size_t k = 0; k < side_; ++k)
        acc += golden_qmul16(a_[i * side_ + k], b_[k * side_ + j]);
      out.push_back(static_cast<double>(acc) / kScale);
    }
  }
  return out;
}

std::vector<double> GemmApp::run_apim(core::ApimDevice& device) const {
  // Output elements are independent dot products: one per parallel_map
  // index, each charged to the issuing worker's device clone.
  return parallel_map(
      device, side_ * side_, [&](core::ApimDevice& dev, std::size_t idx) {
        const std::size_t i = idx / side_;
        const std::size_t j = idx % side_;
        std::int64_t acc = 0;
        for (std::size_t k = 0; k < side_; ++k) {
          const std::int64_t prod =
              dev.mul(a_[i * side_ + k], b_[k * side_ + j], kQ16f);
          acc = dev.add(acc, prod);
        }
        return static_cast<double>(acc) / kScale;
      });
}

}  // namespace apim::apps
