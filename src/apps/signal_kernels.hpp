// The three numeric applications: FFT, DwtHaar1D and QuasiRandom.
//
// All three process fixed-point signals: FFT and DWT use Q16 samples
// (range ~[-1,1) scaled by 65536) — operand magnitudes occupy the upper
// half of the 32-bit datapath, as the OpenCL originals' normalized floats
// do after fixed-point conversion;
// QuasiRandom scrambles van-der-Corput low-discrepancy points in Q16. The acceptance metric is <10% average relative error against the
// double-precision golden path (paper Section 4.1).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/app.hpp"

namespace apim::apps {

/// Radix-2 decimation-in-time FFT over a random complex signal. Each stage
/// halves the amplitudes (free shifts) to avoid fixed-point overflow, as
/// the OpenCL sample does.
class FftApp final : public Application {
 public:
  [[nodiscard]] std::string name() const override { return "FFT"; }
  [[nodiscard]] quality::QosSpec qos() const override {
    return quality::QosSpec::numeric();
  }
  void generate(std::size_t elements, std::uint64_t seed) override;
  [[nodiscard]] std::size_t element_count() const override {
    return signal_re_.size();
  }
  [[nodiscard]] std::vector<double> run_golden() const override;
  [[nodiscard]] std::vector<double> run_apim(
      core::ApimDevice& device) const override;
  [[nodiscard]] baseline::GpuAppProfile gpu_profile() const override {
    return {60.0, 200.0};  // ~5 ops x log2(L) passes; traffic per pass.
  }

  static constexpr std::int64_t kScale = 65536;  // Q16.

 private:
  std::vector<std::int64_t> signal_re_;  // Q16 samples.
  std::vector<std::int64_t> signal_im_;
};

/// 1D Haar wavelet transform, full decomposition. Per pair: two multiplies
/// by 1/sqrt(2) and an add/subtract.
class DwtHaarApp final : public Application {
 public:
  [[nodiscard]] std::string name() const override { return "DwtHaar1D"; }
  [[nodiscard]] quality::QosSpec qos() const override {
    return quality::QosSpec::numeric();
  }
  void generate(std::size_t elements, std::uint64_t seed) override;
  [[nodiscard]] std::size_t element_count() const override {
    return signal_.size();
  }
  [[nodiscard]] std::vector<double> run_golden() const override;
  [[nodiscard]] std::vector<double> run_apim(
      core::ApimDevice& device) const override;
  [[nodiscard]] baseline::GpuAppProfile gpu_profile() const override {
    return {8.0, 64.0};
  }

  static constexpr std::int64_t kScale = 65536;            // Q16.
  static constexpr std::int64_t kInvSqrt2 = 46341;         // 1/sqrt(2) in Q16.

 private:
  std::vector<std::int64_t> signal_;  // Q16 samples.
};

/// Quasi-random sequence scrambling: each output is computed independently
/// from a low-discrepancy input point x_i as
///   out_i = frac(x_i * c + d)
/// — the low half of the integer product x_i * c (multiplicative
/// scrambling) plus a dimension offset, mod 1. One multiply and one add
/// per element — the structure of the OpenCL
/// QuasiRandomSequence sample, where direction-number points are scrambled
/// per dimension. It is the lightest of the six workloads (lowest EDP gain
/// in Table 1). Elements are independent, so relaxation errors do not
/// accumulate across the sequence.
class QuasiRandomApp final : public Application {
 public:
  [[nodiscard]] std::string name() const override { return "QuasiR"; }
  [[nodiscard]] quality::QosSpec qos() const override {
    return quality::QosSpec::numeric();
  }
  void generate(std::size_t elements, std::uint64_t seed) override;
  [[nodiscard]] std::size_t element_count() const override { return count_; }
  [[nodiscard]] std::vector<double> run_golden() const override;
  [[nodiscard]] std::vector<double> run_apim(
      core::ApimDevice& device) const override;
  [[nodiscard]] baseline::GpuAppProfile gpu_profile() const override {
    return {2.0, 16.0};
  }

  static constexpr std::int64_t kScale = 65536;   // Q16.
  static constexpr std::int64_t kOffset = 40503;  // Dimension offset, Q16.
  static constexpr std::int64_t kMultiplier = 48271;  // Q16 scrambler.

 private:
  std::size_t count_ = 0;
  std::vector<std::int64_t> points_;  // Low-discrepancy inputs, Q16.
};

}  // namespace apim::apps
