#include "apps/parallel.hpp"

#include "util/thread_pool.hpp"

namespace apim::apps {

std::vector<double> parallel_map(
    core::ApimDevice& device, std::size_t count,
    const std::function<double(core::ApimDevice&, std::size_t)>& fn) {
  std::vector<double> out(count);
  if (count == 0) return out;

  const std::size_t chunks = (count + kParallelMapGrain - 1) /
                             kParallelMapGrain;
  std::vector<core::ExecStats> chunk_stats(chunks);
  util::ThreadPool::global().parallel_for(
      0, count, kParallelMapGrain, [&](std::size_t lo, std::size_t hi) {
        core::ApimDevice worker{device.config()};
        for (std::size_t i = lo; i < hi; ++i) out[i] = fn(worker, i);
        chunk_stats[lo / kParallelMapGrain] = worker.stats();
      });
  for (const core::ExecStats& s : chunk_stats) device.merge_stats(s);
  return out;
}

}  // namespace apim::apps
