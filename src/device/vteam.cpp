#include "device/vteam.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace apim::device {

VteamModel::VteamModel(VteamParams params) : params_(params) {
  assert(params_.r_on > 0 && params_.r_off > params_.r_on);
  assert(params_.v_on < 0 && params_.v_off > 0);
  assert(params_.k_on < 0 && params_.k_off > 0);
  assert(params_.w_off > params_.w_on);
}

double VteamModel::resistance(double w) const noexcept {
  const double clamped = std::clamp(w, params_.w_on, params_.w_off);
  const double frac =
      (clamped - params_.w_on) / (params_.w_off - params_.w_on);
  return params_.r_on + frac * (params_.r_off - params_.r_on);
}

double VteamModel::state_derivative(double w, double v) const noexcept {
  if (v > params_.v_off) {
    if (w >= params_.w_off) return 0.0;  // Already fully RESET.
    return params_.k_off * std::pow(v / params_.v_off - 1.0, params_.alpha_off);
  }
  if (v < params_.v_on) {
    if (w <= params_.w_on) return 0.0;  // Already fully SET.
    return params_.k_on * std::pow(v / params_.v_on - 1.0, params_.alpha_on);
  }
  return 0.0;  // Within the threshold window: non-volatile retention.
}

SwitchingEvent VteamModel::integrate(double v, double w_start, double w_end,
                                     double dt_s) const {
  assert(dt_s > 0);
  SwitchingEvent event;
  double w = w_start;
  double t = 0.0;
  double energy_j = 0.0;
  const bool increasing = w_end > w_start;
  // Hard cap so a sub-threshold voltage cannot loop forever: 1 us is three
  // orders of magnitude beyond any nominal switching event here.
  const double t_max = 1e-6;
  while ((increasing ? w < w_end : w > w_end) && t < t_max) {
    // RK4 on the state; the derivative only depends on w (v is constant).
    const double k1 = state_derivative(w, v);
    if (k1 == 0.0) break;  // Below threshold or at the boundary: stuck.
    const double k2 = state_derivative(w + 0.5 * dt_s * k1, v);
    const double k3 = state_derivative(w + 0.5 * dt_s * k2, v);
    const double k4 = state_derivative(w + dt_s * k3, v);
    const double power = v * v / resistance(w);
    w += dt_s / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    energy_j += power * dt_s;
    t += dt_s;
  }
  event.completed = increasing ? w >= w_end : w <= w_end;
  event.time_s = t;
  event.energy_pj = energy_j * 1e12;
  return event;
}

SwitchingEvent VteamModel::integrate_reset(double v, double dt_s) const {
  return integrate(v, params_.w_on, params_.w_off, dt_s);
}

SwitchingEvent VteamModel::integrate_set(double v, double dt_s) const {
  // SET requires negative voltage (v < v_on).
  return integrate(v, params_.w_off, params_.w_on, dt_s);
}

double VteamModel::conduction_energy_pj(double w, double v,
                                        double duration_s) const noexcept {
  return v * v / resistance(w) * duration_s * 1e12;
}

}  // namespace apim::device
