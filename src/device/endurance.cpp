#include "device/endurance.hpp"

#include <algorithm>
#include <limits>

namespace apim::device {

EnduranceReport analyze_endurance(const crossbar::BlockedCrossbar& crossbar,
                                  std::uint64_t workload_count,
                                  const EnduranceParams& params) {
  EnduranceReport report;
  std::uint32_t worst = 0;
  std::uint64_t cells = 0;
  for (std::size_t b = 0; b < crossbar.block_count(); ++b) {
    const auto& block = crossbar.block(b);
    report.total_switches += block.total_switches();
    worst = std::max(worst, block.max_cell_switches());
    cells += block.rows() * block.cols();
  }
  report.worst_cell_switches = worst;
  report.mean_switches_per_cell =
      cells == 0 ? 0.0
                 : static_cast<double>(report.total_switches) /
                       static_cast<double>(cells);
  report.imbalance = report.mean_switches_per_cell > 0.0
                         ? static_cast<double>(worst) /
                               report.mean_switches_per_cell
                         : 0.0;
  if (worst > 0 && workload_count > 0) {
    const double switches_per_workload =
        static_cast<double>(worst) / static_cast<double>(workload_count);
    report.operations_to_failure =
        params.endurance_limit / switches_per_workload;
    report.seconds_to_failure =
        report.operations_to_failure / params.workloads_per_second;
  } else {
    // No cell switched (or no ops ran): the workload exerts no wear and
    // the fabric outlives any horizon.
    report.operations_to_failure =
        std::numeric_limits<double>::infinity();
    report.seconds_to_failure = std::numeric_limits<double>::infinity();
    report.unlimited = true;
  }
  return report;
}

}  // namespace apim::device
