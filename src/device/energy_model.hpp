// Per-operation energy model derived from the VTEAM device model.
//
// The paper obtains performance/energy of the APIM hardware "from circuit
// level simulations for a 45nm CMOS process ... using Cadence Virtuoso"
// with the VTEAM memristor model (Section 4.1). We substitute a single
// up-front numerical integration of the same VTEAM model: switching time
// and energy come from the ODE, conduction terms from Ohmic dissipation at
// the operating point, and periphery costs from PeripheryParams. Every
// micro-operation executed by the MAGIC engine (and counted by the fast
// functional model) is priced through this table, so both simulation levels
// account energy identically.
#pragma once

#include "device/device_params.hpp"
#include "device/vteam.hpp"

namespace apim::device {

/// Energy price list (picojoules) for the crossbar micro-operations.
struct EnergyModel {
  /// Conduction through one NOR input held at logic '1' (RON) for a cycle.
  double e_input_on_pj = 0.0;
  /// Conduction through one NOR input at logic '0' (ROFF) for a cycle.
  double e_input_off_pj = 0.0;
  /// Output-cell switching event (RON -> ROFF during NOR evaluation, or a
  /// data write that flips the cell).
  double e_switch_pj = 0.0;
  /// Unconditional SET applied when initializing MAGIC output cells to '1'.
  double e_init_pj = 0.0;
  /// Driver cost of writing one bit (in addition to e_switch when the cell
  /// actually flips).
  double e_write_driver_pj = 0.0;
  /// One sense-amplifier single-bit read.
  double e_read_pj = 0.0;
  /// One sense-amplifier majority (MAJ) evaluation (Section 3.4).
  double e_maj_pj = 0.0;
  /// Routing one bit through the configurable interconnect during a
  /// copy-with-shift.
  double e_interconnect_bit_pj = 0.0;
  /// Controller/decoder/driver background cost charged once per cycle.
  double e_cycle_overhead_pj = 0.0;

  /// Energy of one MAGIC NOR evaluation with the given input population,
  /// excluding the per-cycle overhead (charged separately per cycle, since
  /// many NORs can share a cycle when executed row-parallel).
  [[nodiscard]] double nor_energy_pj(int inputs_at_one, int inputs_at_zero,
                                     bool output_switches) const noexcept {
    return static_cast<double>(inputs_at_one) * e_input_on_pj +
           static_cast<double>(inputs_at_zero) * e_input_off_pj +
           (output_switches ? e_switch_pj : 0.0);
  }

  /// Energy of writing one bit; `flips` says whether the stored value
  /// actually changes (no switching energy otherwise).
  [[nodiscard]] double write_energy_pj(bool flips) const noexcept {
    return e_write_driver_pj + (flips ? e_switch_pj : 0.0);
  }

  /// Derive the table from a device model and operating point. Performs two
  /// ODE integrations (SET and RESET); call once and reuse.
  [[nodiscard]] static EnergyModel from_device(const VteamModel& device,
                                               const OperatingPoint& op,
                                               const PeripheryParams& periphery);

  /// The model used throughout this reproduction: default VteamParams
  /// (RON = 10 kOhm, ROFF = 10 MOhm, calibrated 1 ns-class switching),
  /// default operating point and periphery.
  [[nodiscard]] static const EnergyModel& paper_defaults();
};

}  // namespace apim::device
