// Device-level parameters for the memristive crossbar.
//
// The paper simulates its design in Cadence Virtuoso (45 nm) using the VTEAM
// memristor model with RON = 10 kOhm and ROFF = 10 MOhm (Section 4.1). We
// reproduce that device layer with a numerical VTEAM implementation; the
// remaining VTEAM constants are calibrated so that a MAGIC NOR completes
// within the paper's 1.1 ns cycle at the nominal execution voltage (see
// DESIGN.md, substitution table).
#pragma once

namespace apim::device {

/// VTEAM model parameters (Kvatinsky et al., TCAS-II 2015).
///
/// State variable w in [w_on, w_off] (meters); resistance interpolates
/// linearly between `r_on` (w = w_on) and `r_off` (w = w_off).
struct VteamParams {
  double r_on = 10e3;    ///< Low-resistance state, Ohms (paper: 10 kOhm).
  double r_off = 10e6;   ///< High-resistance state, Ohms (paper: 10 MOhm).
  double v_on = -1.0;    ///< Negative switching threshold, Volts.
  double v_off = 1.0;    ///< Positive switching threshold, Volts.
  double k_on = -3.0;    ///< SET rate coefficient, m/s (negative direction).
  double k_off = 3.0;    ///< RESET rate coefficient, m/s.
  double alpha_on = 3.0;   ///< Nonlinearity exponent below v_on.
  double alpha_off = 3.0;  ///< Nonlinearity exponent above v_off.
  double w_on = 0.0;       ///< State bound mapped to RON, meters.
  double w_off = 3e-9;     ///< State bound mapped to ROFF, meters.
};

/// Operating-point voltages for the MAGIC execution scheme and the
/// read path. V0 is the execution voltage applied to input bitlines; the
/// output cell is pulled toward ground through the input devices.
struct OperatingPoint {
  double v_exec = 2.0;   ///< MAGIC execution voltage V0, Volts.
  double v_write = 2.0;  ///< Full SET/RESET write voltage, Volts.
  double v_read = 0.3;   ///< Non-destructive read voltage, Volts.
  double t_read_ns = 0.3;      ///< Sense time (paper Section 3.4: 0.3 ns).
  double t_majority_ns = 0.6;  ///< SA majority evaluation (paper: 0.6 ns).
};

/// Peripheral-circuit constants (decoders, drivers, controller) at 45 nm.
/// These do not come from the paper's text; they are sized from typical
/// 45 nm crossbar periphery figures and only contribute a per-cycle
/// background term, so ratios between APIM configurations are insensitive
/// to their exact values (DESIGN.md Section 2).
struct PeripheryParams {
  double sense_amp_energy_pj = 0.05;   ///< One SA sense operation.
  double majority_energy_pj = 0.08;    ///< SA majority (MAJ) evaluation.
  double interconnect_energy_pj = 0.01;  ///< Barrel-shifter path, per bit.
  double controller_energy_per_cycle_pj = 0.35;  ///< Decoders/drivers/ctrl.
};

}  // namespace apim::device
