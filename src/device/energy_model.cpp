#include "device/energy_model.hpp"

#include <cassert>

#include "util/units.hpp"

namespace apim::device {

EnergyModel EnergyModel::from_device(const VteamModel& device,
                                     const OperatingPoint& op,
                                     const PeripheryParams& periphery) {
  EnergyModel model;
  const double cycle_s = util::kMagicCycleNs * 1e-9;
  const auto& p = device.params();

  // In the MAGIC execution scheme roughly half of V0 drops across each
  // conducting input device (the output path forms the divider), so we
  // price input conduction at v_exec / 2 for a full cycle.
  const double v_half = op.v_exec / 2.0;
  model.e_input_on_pj = device.conduction_energy_pj(p.w_on, v_half, cycle_s);
  model.e_input_off_pj = device.conduction_energy_pj(p.w_off, v_half, cycle_s);

  // Switching energy: average of the SET and RESET traversals at the write
  // voltage. Both complete well inside a cycle by calibration (tested).
  const SwitchingEvent reset = device.integrate_reset(op.v_write);
  const SwitchingEvent set = device.integrate_set(-op.v_write);
  assert(reset.completed && set.completed);
  model.e_switch_pj = 0.5 * (reset.energy_pj + set.energy_pj);

  // Init is an unconditional SET (drive to RON): driver cost plus the SET
  // traversal (cells already at RON dissipate conduction of similar order,
  // so a single price keeps the accounting simple and consistent).
  model.e_init_pj = set.energy_pj + 0.5 * periphery.sense_amp_energy_pj;

  model.e_write_driver_pj = 0.5 * periphery.sense_amp_energy_pj;
  model.e_read_pj =
      periphery.sense_amp_energy_pj +
      device.conduction_energy_pj(p.w_on, op.v_read, op.t_read_ns * 1e-9);
  model.e_maj_pj = periphery.majority_energy_pj + 3.0 * model.e_read_pj;
  model.e_interconnect_bit_pj = periphery.interconnect_energy_pj;
  model.e_cycle_overhead_pj = periphery.controller_energy_per_cycle_pj;
  return model;
}

const EnergyModel& EnergyModel::paper_defaults() {
  static const EnergyModel model = [] {
    const VteamModel device{VteamParams{}};
    return from_device(device, OperatingPoint{}, PeripheryParams{});
  }();
  return model;
}

}  // namespace apim::device
