// Endurance analysis for the memristive crossbar.
//
// RRAM cells wear out by switching: typical devices sustain 1e6..1e12 SET/
// RESET events. Because APIM computes by switching cells, its scratch
// regions wear far faster than storage — a standard objection to MAGIC-
// style PIM that the paper does not quantify. This module turns the
// per-cell switch counters the crossbar already collects into lifetime
// estimates, so the repository can report the cost honestly (see
// tests/endurance_test.cpp and the wear section of EXPERIMENTS.md).
#pragma once

#include <cstdint>

#include "crossbar/crossbar.hpp"

namespace apim::device {

struct EnduranceReport {
  std::uint64_t total_switches = 0;
  std::uint32_t worst_cell_switches = 0;
  double mean_switches_per_cell = 0.0;
  /// Wear imbalance: worst cell / mean (1.0 = perfectly leveled).
  double imbalance = 0.0;
  /// Operations until the worst cell exceeds the endurance limit, assuming
  /// the measured workload repeats. When no cell switched (or the workload
  /// count is 0) the workload exerts no wear, so the estimate is +infinity
  /// and `unlimited` is set — NOT zero, which would read as instant death.
  double operations_to_failure = 0.0;
  /// Same, expressed in seconds at the given issue rate.
  double seconds_to_failure = 0.0;
  /// True when the measured workload cannot wear the fabric out.
  bool unlimited = false;
};

struct EnduranceParams {
  /// SET/RESET events a cell survives; 1e9 is a mid-range HfOx figure.
  double endurance_limit = 1e9;
  /// How many instances of the measured workload are issued per second
  /// (for the time-to-failure estimate).
  double workloads_per_second = 1e6;
};

/// Analyze the wear accumulated on `crossbar` by the workload executed so
/// far. `workload_count` is how many logical operations (e.g. multiplies)
/// produced those switches; used to normalize operations_to_failure.
[[nodiscard]] EnduranceReport analyze_endurance(
    const crossbar::BlockedCrossbar& crossbar, std::uint64_t workload_count,
    const EnduranceParams& params = {});

}  // namespace apim::device
