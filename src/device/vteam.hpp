// VTEAM memristor model (Kvatinsky et al., "VTEAM: a general model for
// voltage-controlled memristors", TCAS-II 2015) with numerical integration
// of the switching dynamics.
//
// This is the device substrate of the whole simulator: the crossbar energy
// model (src/device/energy_model.*) integrates this ODE once at startup to
// derive per-operation switching times and energies, replacing the paper's
// Cadence Virtuoso circuit simulations.
#pragma once

#include "device/device_params.hpp"

namespace apim::device {

/// Result of integrating a switching event.
struct SwitchingEvent {
  double time_s = 0.0;     ///< Time to fully traverse the state range.
  double energy_pj = 0.0;  ///< Integral of V*I over the traversal.
  bool completed = false;  ///< False if the voltage never crossed threshold.
};

/// Voltage-controlled threshold memristor.
///
/// State equation (w is the internal state variable, in meters):
///   dw/dt = k_off * (v/v_off - 1)^alpha_off   for v >  v_off
///   dw/dt = 0                                 for v_on <= v <= v_off
///   dw/dt = k_on  * (v/v_on  - 1)^alpha_on    for v <  v_on
/// Resistance is linear in w between r_on (w = w_on) and r_off (w = w_off).
class VteamModel {
 public:
  explicit VteamModel(VteamParams params = {});

  [[nodiscard]] const VteamParams& params() const noexcept { return params_; }

  /// Device resistance at state w (clamped to the valid range).
  [[nodiscard]] double resistance(double w) const noexcept;

  /// dw/dt at state w under applied voltage v.
  [[nodiscard]] double state_derivative(double w, double v) const noexcept;

  /// Integrate a full RESET (RON -> ROFF requires v > v_off) or SET
  /// (ROFF -> RON requires v < v_on) under constant applied voltage.
  /// Uses fixed-step RK4; `dt_s` defaults to 1 ps which resolves the
  /// nanosecond-scale events with < 0.1% error (verified in tests).
  [[nodiscard]] SwitchingEvent integrate_reset(double v,
                                               double dt_s = 1e-12) const;
  [[nodiscard]] SwitchingEvent integrate_set(double v,
                                             double dt_s = 1e-12) const;

  /// Energy (pJ) of conducting through the device at fixed state for
  /// `duration_s` under voltage `v` — the cost of a read or of holding an
  /// already-switched MAGIC input.
  [[nodiscard]] double conduction_energy_pj(double w, double v,
                                            double duration_s) const noexcept;

 private:
  [[nodiscard]] SwitchingEvent integrate(double v, double w_start,
                                         double w_end, double dt_s) const;
  VteamParams params_;
};

}  // namespace apim::device
