#include "quality/qos.hpp"

#include <cmath>

#include "quality/metrics.hpp"

namespace apim::quality {

double QosSpec::loss_threshold() const {
  switch (kind) {
    case QosKind::kPsnr:
      // PSNR = 20 log10(peak / RMSE)  =>  RMSE / peak = 10^(-PSNR / 20).
      return std::pow(10.0, -threshold / 20.0);
    case QosKind::kRelativeError:
      return threshold;
  }
  return 0.0;
}

QosEvaluation evaluate_qos(const QosSpec& spec,
                           std::span<const double> golden,
                           std::span<const double> test) {
  QosEvaluation eval;
  switch (spec.kind) {
    case QosKind::kPsnr: {
      eval.metric = psnr_db(golden, test, spec.peak);
      eval.acceptable = eval.metric >= spec.threshold;
      // Loss comparable to a relative error: RMSE normalized by peak.
      eval.loss = rmse(golden, test) / spec.peak;
      break;
    }
    case QosKind::kRelativeError: {
      eval.metric = average_relative_error(golden, test, spec.relative_floor);
      eval.acceptable = eval.metric <= spec.threshold;
      eval.loss = eval.metric;
      break;
    }
  }
  return eval;
}

std::string to_string(QosKind kind) {
  switch (kind) {
    case QosKind::kPsnr: return "PSNR";
    case QosKind::kRelativeError: return "RelErr";
  }
  return "?";
}

}  // namespace apim::quality
