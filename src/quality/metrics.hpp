// Quality-of-result metrics (paper Section 4.1): PSNR for image outputs
// (30 dB acceptance) and average relative error for everything else
// (<10% acceptance).
#pragma once

#include <span>

namespace apim::quality {

/// Peak signal-to-noise ratio in dB between a golden and a test signal,
/// with the given peak value (255 for 8-bit images). Returns +infinity for
/// identical signals.
[[nodiscard]] double psnr_db(std::span<const double> golden,
                             std::span<const double> test, double peak);

/// Mean of |test - golden| / max(|golden|, floor). The floor guards the
/// metric against near-zero golden samples dominating the average (the
/// usual convention in approximate-computing evaluations).
[[nodiscard]] double average_relative_error(std::span<const double> golden,
                                            std::span<const double> test,
                                            double floor = 1e-6);

/// Root-mean-square error.
[[nodiscard]] double rmse(std::span<const double> golden,
                          std::span<const double> test);

/// Largest absolute deviation.
[[nodiscard]] double max_abs_error(std::span<const double> golden,
                                   std::span<const double> test);

}  // namespace apim::quality
