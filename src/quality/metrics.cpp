#include "quality/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace apim::quality {

double psnr_db(std::span<const double> golden, std::span<const double> test,
               double peak) {
  assert(golden.size() == test.size());
  assert(!golden.empty());
  assert(peak > 0.0);
  double mse = 0.0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const double d = golden[i] - test[i];
    mse += d * d;
  }
  mse /= static_cast<double>(golden.size());
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(peak * peak / mse);
}

double average_relative_error(std::span<const double> golden,
                              std::span<const double> test, double floor) {
  assert(golden.size() == test.size());
  assert(!golden.empty());
  double total = 0.0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const double denom = std::max(std::abs(golden[i]), floor);
    total += std::abs(test[i] - golden[i]) / denom;
  }
  return total / static_cast<double>(golden.size());
}

double rmse(std::span<const double> golden, std::span<const double> test) {
  assert(golden.size() == test.size());
  assert(!golden.empty());
  double mse = 0.0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const double d = golden[i] - test[i];
    mse += d * d;
  }
  return std::sqrt(mse / static_cast<double>(golden.size()));
}

double max_abs_error(std::span<const double> golden,
                     std::span<const double> test) {
  assert(golden.size() == test.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < golden.size(); ++i)
    worst = std::max(worst, std::abs(test[i] - golden[i]));
  return worst;
}

}  // namespace apim::quality
