// Quality-of-service acceptance criteria (paper Section 4.1):
// image kernels accept >= 30 dB PSNR; everything else accepts < 10%
// average relative error.
#pragma once

#include <span>
#include <string>

namespace apim::quality {

enum class QosKind {
  kPsnr,           ///< Image outputs: PSNR >= threshold (dB).
  kRelativeError,  ///< Numeric outputs: avg relative error <= threshold.
};

struct QosSpec {
  QosKind kind = QosKind::kRelativeError;
  double threshold = 0.10;  ///< dB for kPsnr, fraction for kRelativeError.
  double peak = 255.0;      ///< Peak value for PSNR.
  /// Denominator floor for the relative-error metric, in output units
  /// (guards near-zero golden samples; 1% of unit scale for the numeric
  /// kernels whose outputs live in [-1, 1]).
  double relative_floor = 0.01;

  [[nodiscard]] static QosSpec image() {
    return QosSpec{QosKind::kPsnr, 30.0, 255.0, 1.0};
  }
  [[nodiscard]] static QosSpec numeric() {
    return QosSpec{QosKind::kRelativeError, 0.10, 1.0, 0.01};
  }

  /// The acceptance threshold expressed in normalized-loss units
  /// (QosEvaluation::loss): the largest loss that still passes this spec.
  /// For kRelativeError that is the threshold itself; for kPsnr it is the
  /// peak-normalized RMSE at exactly `threshold` dB. Lets loss-driven
  /// search (AccuracyTuner, serve::build_qos_table) compare any spec kind
  /// on one axis.
  [[nodiscard]] double loss_threshold() const;
};

struct QosEvaluation {
  double metric = 0.0;  ///< PSNR dB or avg relative error.
  /// Normalized quality loss, comparable across kinds: for relative error
  /// this is the error itself; for PSNR it is the MSE-derived normalized
  /// error (so lower is always better and 0 means identical).
  double loss = 0.0;
  bool acceptable = false;
};

/// Evaluate a test output against the golden output under `spec`.
[[nodiscard]] QosEvaluation evaluate_qos(const QosSpec& spec,
                                         std::span<const double> golden,
                                         std::span<const double> test);

[[nodiscard]] std::string to_string(QosKind kind);

}  // namespace apim::quality
