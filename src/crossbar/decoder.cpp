#include "crossbar/decoder.hpp"

#include <cassert>

#include "util/bitops.hpp"

namespace apim::crossbar {

Decoder::Decoder(std::size_t lines) : lines_(lines) { assert(lines > 0); }

void Decoder::activate(std::size_t line) {
  assert(line < lines_);
  (void)line;
  ++activations_;
}

std::size_t Decoder::estimated_transistors() const noexcept {
  const unsigned address_bits = util::bit_width(lines_ - 1);
  // Per output: one NAND of the predecoded terms (~4T) + output buffer (2T);
  // plus 2 inverters per address bit for true/complement generation.
  return lines_ * 6 + static_cast<std::size_t>(address_bits) * 4;
}

}  // namespace apim::crossbar
