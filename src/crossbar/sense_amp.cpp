#include "crossbar/sense_amp.hpp"

namespace apim::crossbar {

bool SenseAmp::read(const CrossbarBlock& block, std::size_t row,
                    std::size_t col) {
  ++reads_;
  return block.get(row, col);
}

bool SenseAmp::majority(const CrossbarBlock& block, std::size_t col,
                        std::size_t r0, std::size_t r1, std::size_t r2) {
  ++majority_ops_;
  // Current summation: each cell at RON ('1') contributes one unit; the
  // reference trips above two units (2-of-3 threshold).
  const int ones = static_cast<int>(block.get(r0, col)) +
                   static_cast<int>(block.get(r1, col)) +
                   static_cast<int>(block.get(r2, col));
  return ones >= 2;
}

}  // namespace apim::crossbar
