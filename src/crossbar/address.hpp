// Cell addressing for the blocked crossbar.
#pragma once

#include <compare>
#include <cstddef>
#include <string>

namespace apim::crossbar {

/// Address of a single memristive cell: block index within the blocked
/// crossbar, then row (wordline) and column (bitline) within the block.
struct CellAddr {
  std::size_t block = 0;
  std::size_t row = 0;
  std::size_t col = 0;

  friend constexpr auto operator<=>(const CellAddr&, const CellAddr&) = default;
};

/// Debug formatting ("b2[r5,c17]").
[[nodiscard]] inline std::string to_string(const CellAddr& a) {
  return "b" + std::to_string(a.block) + "[r" + std::to_string(a.row) + ",c" +
         std::to_string(a.col) + "]";
}

}  // namespace apim::crossbar
