// The blocked crossbar: the paper's memory unit (Figure 1(a)).
//
// A BlockedCrossbar is a chain of structurally identical blocks joined by
// configurable interconnects, sharing one row decoder, one column decoder
// and one bank of sense amplifiers. Block 0 conventionally acts as the data
// block and higher-numbered blocks as processing blocks, but the roles are
// interchangeable (Section 3.1) — the multiplier's N:2 reduction toggles
// between two processing blocks at every step.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crossbar/address.hpp"
#include "crossbar/block.hpp"
#include "crossbar/decoder.hpp"
#include "crossbar/interconnect.hpp"
#include "crossbar/sense_amp.hpp"

namespace apim::crossbar {

struct CrossbarConfig {
  std::size_t blocks = 3;  ///< Data block + two processing blocks.
  std::size_t rows = 64;
  std::size_t cols = 128;
  /// Physical spare rows reserved per block beyond the `rows` addressable
  /// ones. A quarantined logical row is rewired onto the next spare by the
  /// reliability layer (remap_row); with 0 spares the crossbar behaves
  /// exactly as before.
  std::size_t spare_rows = 0;
};

class BlockedCrossbar {
 public:
  explicit BlockedCrossbar(CrossbarConfig config);

  [[nodiscard]] const CrossbarConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }

  [[nodiscard]] CrossbarBlock& block(std::size_t i);
  [[nodiscard]] const CrossbarBlock& block(std::size_t i) const;

  /// Interconnect between block `i` and block `i + 1`.
  [[nodiscard]] Interconnect& interconnect(std::size_t i);
  [[nodiscard]] const Interconnect& interconnect(std::size_t i) const;

  [[nodiscard]] SenseAmp& sense_amps() noexcept { return sense_amps_; }
  [[nodiscard]] const SenseAmp& sense_amps() const noexcept {
    return sense_amps_;
  }

  // -- Cell access through the shared decoders (counts activations). --
  [[nodiscard]] bool get(const CellAddr& addr) const;
  /// Returns true when the cell switched.
  bool set(const CellAddr& addr, bool value);

  /// Word access, little-endian along columns.
  std::size_t write_word(const CellAddr& start, unsigned width,
                         std::uint64_t value);
  [[nodiscard]] std::uint64_t read_word(const CellAddr& start,
                                        unsigned width) const;

  /// Route column `col` of block `src_block` through the interconnects to
  /// `dst_block` (must be adjacent or equal; multi-hop routes go through
  /// each interconnect in turn). Returns the destination column, or -1 when
  /// the accumulated shift runs off the edge.
  [[nodiscard]] std::int64_t route_column(std::size_t src_block,
                                          std::size_t dst_block,
                                          std::size_t col) const;

  // -- Spare-row remapping (fault recovery) ------------------------------
  // Detection (reliability/bist.hpp) quarantines a faulty row by remapping
  // its logical address onto a reserved spare row; every decoder-routed
  // access (get/set/read_word/write_word and the sense-amp paths of the
  // MAGIC engine) then lands on the spare transparently. Remapping the
  // same row again burns the next spare (used when the first spare itself
  // tests faulty).

  /// Rewire logical `row` of `block` onto the next unused spare row.
  /// Returns false (and changes nothing) when the block is out of spares.
  bool remap_row(std::size_t block, std::size_t row);

  /// Physical row that backs logical `row` of `block` (identity unless
  /// remapped).
  [[nodiscard]] std::size_t physical_row(std::size_t block,
                                         std::size_t row) const;

  [[nodiscard]] std::size_t spares_remaining(std::size_t block) const;
  [[nodiscard]] std::size_t remapped_row_count(std::size_t block) const;

  /// Aggregate endurance counters over all blocks.
  [[nodiscard]] std::uint64_t total_switches() const noexcept;
  [[nodiscard]] std::uint64_t total_writes() const noexcept;

  /// Area bookkeeping: decoder transistors are shared by all blocks, which
  /// is the paper's area advantage over multi-array adders.
  [[nodiscard]] std::size_t shared_decoder_transistors() const noexcept;

 private:
  void check_addr(const CellAddr& addr) const;

  CrossbarConfig config_;
  std::vector<CrossbarBlock> blocks_;
  /// Per-block logical-row -> physical-spare-row table plus the next free
  /// spare index. Empty maps on the hot path cost one branch.
  // determinism-audited: point lookups only, never iterated.
  std::vector<std::unordered_map<std::size_t, std::size_t>> row_maps_;
  std::vector<std::size_t> spares_used_;
  std::vector<Interconnect> interconnects_;
  mutable Decoder row_decoder_;
  mutable Decoder col_decoder_;
  SenseAmp sense_amps_;
};

}  // namespace apim::crossbar
