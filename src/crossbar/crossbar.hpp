// The blocked crossbar: the paper's memory unit (Figure 1(a)).
//
// A BlockedCrossbar is a chain of structurally identical blocks joined by
// configurable interconnects, sharing one row decoder, one column decoder
// and one bank of sense amplifiers. Block 0 conventionally acts as the data
// block and higher-numbered blocks as processing blocks, but the roles are
// interchangeable (Section 3.1) — the multiplier's N:2 reduction toggles
// between two processing blocks at every step.
#pragma once

#include <cstdint>
#include <vector>

#include "crossbar/address.hpp"
#include "crossbar/block.hpp"
#include "crossbar/decoder.hpp"
#include "crossbar/interconnect.hpp"
#include "crossbar/sense_amp.hpp"

namespace apim::crossbar {

struct CrossbarConfig {
  std::size_t blocks = 3;  ///< Data block + two processing blocks.
  std::size_t rows = 64;
  std::size_t cols = 128;
};

class BlockedCrossbar {
 public:
  explicit BlockedCrossbar(CrossbarConfig config);

  [[nodiscard]] const CrossbarConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }

  [[nodiscard]] CrossbarBlock& block(std::size_t i);
  [[nodiscard]] const CrossbarBlock& block(std::size_t i) const;

  /// Interconnect between block `i` and block `i + 1`.
  [[nodiscard]] Interconnect& interconnect(std::size_t i);
  [[nodiscard]] const Interconnect& interconnect(std::size_t i) const;

  [[nodiscard]] SenseAmp& sense_amps() noexcept { return sense_amps_; }
  [[nodiscard]] const SenseAmp& sense_amps() const noexcept {
    return sense_amps_;
  }

  // -- Cell access through the shared decoders (counts activations). --
  [[nodiscard]] bool get(const CellAddr& addr) const;
  /// Returns true when the cell switched.
  bool set(const CellAddr& addr, bool value);

  /// Word access, little-endian along columns.
  std::size_t write_word(const CellAddr& start, unsigned width,
                         std::uint64_t value);
  [[nodiscard]] std::uint64_t read_word(const CellAddr& start,
                                        unsigned width) const;

  /// Route column `col` of block `src_block` through the interconnects to
  /// `dst_block` (must be adjacent or equal; multi-hop routes go through
  /// each interconnect in turn). Returns the destination column, or -1 when
  /// the accumulated shift runs off the edge.
  [[nodiscard]] std::int64_t route_column(std::size_t src_block,
                                          std::size_t dst_block,
                                          std::size_t col) const;

  /// Aggregate endurance counters over all blocks.
  [[nodiscard]] std::uint64_t total_switches() const noexcept;
  [[nodiscard]] std::uint64_t total_writes() const noexcept;

  /// Area bookkeeping: decoder transistors are shared by all blocks, which
  /// is the paper's area advantage over multi-array adders.
  [[nodiscard]] std::size_t shared_decoder_transistors() const noexcept;

 private:
  void check_addr(const CellAddr& addr) const;

  CrossbarConfig config_;
  std::vector<CrossbarBlock> blocks_;
  std::vector<Interconnect> interconnects_;
  mutable Decoder row_decoder_;
  mutable Decoder col_decoder_;
  SenseAmp sense_amps_;
};

}  // namespace apim::crossbar
