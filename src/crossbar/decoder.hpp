// Row/column decoder model.
//
// All blocks in APIM share the same row and column decoders (paper
// Section 3.3: "all of these blocks still share the same row and column
// controllers and decoders", which is the area argument against the
// PC-Adder baseline). We model decoders as activation counters plus a
// transistor-count area estimate so the area comparison in the Figure 6
// bench has a concrete basis.
#pragma once

#include <cstddef>
#include <cstdint>

namespace apim::crossbar {

class Decoder {
 public:
  /// A decoder selecting one of `lines` outputs.
  explicit Decoder(std::size_t lines);

  [[nodiscard]] std::size_t lines() const noexcept { return lines_; }

  /// Record the activation of a specific line (bounds-checked).
  void activate(std::size_t line);

  [[nodiscard]] std::uint64_t activations() const noexcept {
    return activations_;
  }

  /// Rough transistor count of an n-to-2^n decoder with predecoding:
  /// ~4 transistors per output NAND plus buffers. Used only for relative
  /// area comparisons between designs.
  [[nodiscard]] std::size_t estimated_transistors() const noexcept;

 private:
  std::size_t lines_;
  std::uint64_t activations_ = 0;
};

}  // namespace apim::crossbar
