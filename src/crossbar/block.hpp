// One block of the blocked crossbar: a dense array of memristive cells.
//
// The paper divides the crossbar into structurally identical data blocks
// and processing blocks (Section 3.1); "the two blocks are structurally the
// same and can be used interchangeably". A block stores one bit per cell
// (logic '1' = RON, '0' = ROFF, the MAGIC convention) and tracks write and
// switch counts for the energy/endurance statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace apim::crossbar {

class CrossbarBlock {
 public:
  CrossbarBlock(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] bool get(std::size_t row, std::size_t col) const;

  /// Writes a cell; returns true when the stored value actually changed
  /// (i.e. the memristor switched), which is what costs energy.
  bool set(std::size_t row, std::size_t col, bool value);

  /// Write `width` bits of `value` little-endian: bit i of `value` lands at
  /// column `col0 + i`. Returns the number of cells that switched.
  std::size_t write_word(std::size_t row, std::size_t col0, unsigned width,
                         std::uint64_t value);

  /// Read `width` bits little-endian starting at `col0`.
  [[nodiscard]] std::uint64_t read_word(std::size_t row, std::size_t col0,
                                        unsigned width) const;

  /// Lifetime counters.
  [[nodiscard]] std::uint64_t total_writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t total_switches() const noexcept {
    return switches_;
  }

  // -- Endurance accounting -------------------------------------------------
  // Memristor cells wear out by switching; the per-cell switch counters
  // feed the endurance analysis (device/endurance.hpp).

  /// Switch count of one cell.
  [[nodiscard]] std::uint32_t cell_switches(std::size_t row,
                                            std::size_t col) const;
  /// Largest per-cell switch count in the block (the wear hotspot).
  [[nodiscard]] std::uint32_t max_cell_switches() const noexcept;

  // -- Fault injection --------------------------------------------------
  // Memristive arrays ship with stuck-at defects; injecting them lets the
  // test suite measure how the arithmetic degrades (tests/fault_*).

  /// Force a cell to permanently read `value`; writes to it are ignored.
  void inject_stuck_at(std::size_t row, std::size_t col, bool value);
  /// Remove all injected faults (stuck values persist as normal state).
  void clear_faults();
  [[nodiscard]] std::size_t fault_count() const noexcept {
    return faults_.size();
  }
  /// Oracle view of a cell's defect state: -1 healthy, else the stuck
  /// value (0/1). The fault campaign uses this to project physical faults
  /// into the functional fault model; runtime detection never calls it
  /// (BIST has to discover faults by testing).
  [[nodiscard]] int stuck_state(std::size_t row, std::size_t col) const;

 private:
  [[nodiscard]] std::size_t index(std::size_t row, std::size_t col) const;

  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint8_t> cells_;  // One byte per cell: simple and fast.
  std::vector<std::uint32_t> cell_switches_;
  // determinism-audited: point lookups only, never iterated.
  std::unordered_map<std::size_t, std::uint8_t> faults_;
  std::uint64_t writes_ = 0;
  std::uint64_t switches_ = 0;
};

}  // namespace apim::crossbar
