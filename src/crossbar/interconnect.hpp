// Configurable inter-block interconnect (paper Section 3.1 and Figure 3(a)).
//
// A barrel-shifter-like switch network connects the bitlines of two adjacent
// blocks: incoming bitline b_i can be routed to outgoing bitline b'_{i+s}
// for a configurable shift s set by the controller's select signals. This is
// what makes shifting free in APIM: a copy between blocks embeds the shift,
// so a whole word is shifted at once instead of bit by bit.
#pragma once

#include <cstdint>

namespace apim::crossbar {

class Interconnect {
 public:
  /// `span` is the number of bitlines crossing the interconnect; the shift
  /// range is (-span, span).
  explicit Interconnect(std::size_t span) : span_(span) {}

  [[nodiscard]] std::size_t span() const noexcept { return span_; }
  [[nodiscard]] int shift() const noexcept { return shift_; }

  /// Reconfigure the select signals. Counted so benches can report
  /// reconfiguration activity; the paper treats this as controller work that
  /// overlaps compute, so no cycles are charged here.
  void set_shift(int shift);

  /// Route an incoming bitline index to the outgoing side. Returns -1 when
  /// the shifted index falls outside the destination block (those lines are
  /// simply not driven).
  [[nodiscard]] std::int64_t route(std::size_t incoming_col) const noexcept;

  /// Route in the opposite direction (the switches are pass transistors, so
  /// the network is bidirectional; the reverse mapping applies -shift).
  [[nodiscard]] std::int64_t route_reverse(std::size_t outgoing_col) const noexcept;

  [[nodiscard]] std::uint64_t reconfigurations() const noexcept {
    return reconfigurations_;
  }

 private:
  std::size_t span_;
  int shift_ = 0;
  std::uint64_t reconfigurations_ = 0;
};

}  // namespace apim::crossbar
