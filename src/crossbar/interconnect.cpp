#include "crossbar/interconnect.hpp"

#include <cassert>
#include <cstdlib>

namespace apim::crossbar {

void Interconnect::set_shift(int shift) {
  assert(static_cast<std::size_t>(std::abs(shift)) < span_);
  if (shift != shift_) {
    shift_ = shift;
    ++reconfigurations_;
  }
}

std::int64_t Interconnect::route(std::size_t incoming_col) const noexcept {
  const auto out = static_cast<std::int64_t>(incoming_col) + shift_;
  if (out < 0 || out >= static_cast<std::int64_t>(span_)) return -1;
  return out;
}

std::int64_t Interconnect::route_reverse(std::size_t outgoing_col) const noexcept {
  const auto in = static_cast<std::int64_t>(outgoing_col) - shift_;
  if (in < 0 || in >= static_cast<std::int64_t>(span_)) return -1;
  return in;
}

}  // namespace apim::crossbar
