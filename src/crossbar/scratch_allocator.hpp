// Rotating scratch-band allocator: wear leveling for in-memory compute.
//
// MAGIC schedules hammer their scratch cells (an init SET + an evaluation
// RESET per cycle) while data rows rest, concentrating wear — the
// endurance analysis (device/endurance.hpp) measures imbalances well above
// 2x on a fixed layout. Rotating the scratch band across the processing
// block's rows between operations spreads that wear; with R candidate
// bands the hottest cell's switch rate drops by ~R. The allocator is
// deliberately simple (round robin over fixed-height bands) so its effect
// is analyzable; see ext_endurance for the measured comparison.
#pragma once

#include <cstddef>
#include <vector>

namespace apim::crossbar {

class RotatingScratchAllocator {
 public:
  /// Bands of `band_rows` rows carved from [first_row, first_row + rows).
  RotatingScratchAllocator(std::size_t first_row, std::size_t rows,
                           std::size_t band_rows);

  /// Rows available as scratch bands.
  [[nodiscard]] std::size_t band_count() const noexcept { return bands_; }

  /// Height of each band in rows (the schedule verifier uses this to turn
  /// quarantined band indices back into row ranges).
  [[nodiscard]] std::size_t band_rows() const noexcept { return band_rows_; }

  /// Base row of the next healthy band (round robin over non-quarantined
  /// bands). Precondition: at least one band is healthy.
  [[nodiscard]] std::size_t next_band();

  /// Base row of band `i` without advancing.
  [[nodiscard]] std::size_t band_base(std::size_t i) const;

  [[nodiscard]] std::size_t rotations() const noexcept { return issued_; }

  // -- Fault quarantine ---------------------------------------------------
  // The reliability layer's BIST scan (reliability/bist.hpp) marks bands
  // containing defective cells; subsequent allocation rotates only over
  // the healthy remainder, so wear leveling keeps working (across fewer
  // bands) instead of handing compute a broken scratch region.

  /// Exclude band `i` from allocation.
  void quarantine_band(std::size_t i);
  [[nodiscard]] bool band_quarantined(std::size_t i) const;
  /// Bands still eligible for allocation.
  [[nodiscard]] std::size_t healthy_band_count() const noexcept;

 private:
  std::size_t first_row_;
  std::size_t band_rows_;
  std::size_t bands_;
  std::size_t next_ = 0;
  std::size_t issued_ = 0;
  std::vector<bool> quarantined_;
};

}  // namespace apim::crossbar
