// Modified sense amplifier (paper Section 3.4 and Figure 3(b)).
//
// APIM's sense amplifier supports the ordinary single-cell read used to
// scan the multiplier bits during partial-product generation, plus a
// majority (MAJ) mode: activating three wordlines on one bitline and
// comparing the aggregate current against a 2-of-3 reference (R2>2 in the
// figure) yields MAJ(A,B,C) — exactly the carry-out of a 1-bit addition.
// The paper's circuit evaluation: read 0.3 ns, majority 0.6 ns.
#pragma once

#include <cstdint>

#include "crossbar/block.hpp"

namespace apim::crossbar {

class SenseAmp {
 public:
  /// Single-cell read (non-destructive).
  [[nodiscard]] bool read(const CrossbarBlock& block, std::size_t row,
                          std::size_t col);

  /// Three-cell majority on one bitline: activates rows r0, r1, r2 of
  /// column `col` simultaneously and thresholds the summed current.
  [[nodiscard]] bool majority(const CrossbarBlock& block, std::size_t col,
                              std::size_t r0, std::size_t r1, std::size_t r2);

  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t majority_ops() const noexcept {
    return majority_ops_;
  }

 private:
  std::uint64_t reads_ = 0;
  std::uint64_t majority_ops_ = 0;
};

}  // namespace apim::crossbar
