#include "crossbar/scratch_allocator.hpp"

#include <cassert>

namespace apim::crossbar {

RotatingScratchAllocator::RotatingScratchAllocator(std::size_t first_row,
                                                   std::size_t rows,
                                                   std::size_t band_rows)
    : first_row_(first_row),
      band_rows_(band_rows),
      bands_(band_rows > 0 ? rows / band_rows : 0) {
  assert(band_rows > 0);
  assert(bands_ >= 1 && "scratch region smaller than one band");
}

std::size_t RotatingScratchAllocator::next_band() {
  const std::size_t base = band_base(next_);
  next_ = (next_ + 1) % bands_;
  ++issued_;
  return base;
}

std::size_t RotatingScratchAllocator::band_base(std::size_t i) const {
  assert(i < bands_);
  return first_row_ + i * band_rows_;
}

}  // namespace apim::crossbar
