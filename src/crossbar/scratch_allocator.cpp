#include "crossbar/scratch_allocator.hpp"

#include <cassert>

namespace apim::crossbar {

RotatingScratchAllocator::RotatingScratchAllocator(std::size_t first_row,
                                                   std::size_t rows,
                                                   std::size_t band_rows)
    : first_row_(first_row),
      band_rows_(band_rows),
      bands_(band_rows > 0 ? rows / band_rows : 0) {
  assert(band_rows > 0);
  assert(bands_ >= 1 && "scratch region smaller than one band");
  quarantined_.assign(bands_, false);
}

std::size_t RotatingScratchAllocator::next_band() {
  assert(healthy_band_count() > 0 && "every scratch band quarantined");
  while (quarantined_[next_]) next_ = (next_ + 1) % bands_;
  const std::size_t base = band_base(next_);
  next_ = (next_ + 1) % bands_;
  ++issued_;
  return base;
}

void RotatingScratchAllocator::quarantine_band(std::size_t i) {
  assert(i < bands_);
  quarantined_[i] = true;
}

bool RotatingScratchAllocator::band_quarantined(std::size_t i) const {
  assert(i < bands_);
  return quarantined_[i];
}

std::size_t RotatingScratchAllocator::healthy_band_count() const noexcept {
  std::size_t healthy = 0;
  for (const bool q : quarantined_)
    if (!q) ++healthy;
  return healthy;
}

std::size_t RotatingScratchAllocator::band_base(std::size_t i) const {
  assert(i < bands_);
  return first_row_ + i * band_rows_;
}

}  // namespace apim::crossbar
