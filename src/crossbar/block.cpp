#include "crossbar/block.hpp"

#include <algorithm>
#include <cassert>

#include "util/bitops.hpp"

namespace apim::crossbar {

CrossbarBlock::CrossbarBlock(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      cells_(rows * cols, 0),
      cell_switches_(rows * cols, 0) {
  assert(rows > 0 && cols > 0);
}

std::size_t CrossbarBlock::index(std::size_t row, std::size_t col) const {
  assert(row < rows_ && col < cols_);
  return row * cols_ + col;
}

bool CrossbarBlock::get(std::size_t row, std::size_t col) const {
  return cells_[index(row, col)] != 0;
}

bool CrossbarBlock::set(std::size_t row, std::size_t col, bool value) {
  const std::size_t i = index(row, col);
  ++writes_;
  if (!faults_.empty() && faults_.count(i) != 0) {
    // A stuck cell absorbs the write without changing state (and without
    // switching energy: the filament no longer moves).
    return false;
  }
  auto& cell = cells_[i];
  const bool flipped = (cell != 0) != value;
  cell = value ? 1 : 0;
  if (flipped) {
    ++switches_;
    ++cell_switches_[i];
  }
  return flipped;
}

std::size_t CrossbarBlock::write_word(std::size_t row, std::size_t col0,
                                      unsigned width, std::uint64_t value) {
  assert(width <= 64);
  assert(col0 + width <= cols_);
  std::size_t flips = 0;
  for (unsigned i = 0; i < width; ++i)
    if (set(row, col0 + i, util::bit(value, i) != 0)) ++flips;
  return flips;
}

std::uint32_t CrossbarBlock::cell_switches(std::size_t row,
                                           std::size_t col) const {
  return cell_switches_[index(row, col)];
}

std::uint32_t CrossbarBlock::max_cell_switches() const noexcept {
  std::uint32_t worst = 0;
  for (std::uint32_t s : cell_switches_) worst = std::max(worst, s);
  return worst;
}

void CrossbarBlock::inject_stuck_at(std::size_t row, std::size_t col,
                                    bool value) {
  const std::size_t i = index(row, col);
  cells_[i] = value ? 1 : 0;
  faults_[i] = value ? 1 : 0;
}

void CrossbarBlock::clear_faults() { faults_.clear(); }

int CrossbarBlock::stuck_state(std::size_t row, std::size_t col) const {
  const auto it = faults_.find(index(row, col));
  return it == faults_.end() ? -1 : static_cast<int>(it->second);
}

std::uint64_t CrossbarBlock::read_word(std::size_t row, std::size_t col0,
                                       unsigned width) const {
  assert(width <= 64);
  assert(col0 + width <= cols_);
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i)
    if (get(row, col0 + i)) value |= std::uint64_t{1} << i;
  return value;
}

}  // namespace apim::crossbar
