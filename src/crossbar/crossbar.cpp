#include "crossbar/crossbar.hpp"

#include <cassert>
#include <stdexcept>

namespace apim::crossbar {

BlockedCrossbar::BlockedCrossbar(CrossbarConfig config)
    : config_(config),
      row_decoder_(config.rows),
      col_decoder_(config.cols) {
  if (config_.blocks == 0 || config_.rows == 0 || config_.cols == 0)
    throw std::invalid_argument("BlockedCrossbar: empty geometry");
  blocks_.reserve(config_.blocks);
  // Spare rows are physically real cells appended past the addressable
  // rows; only remap_row can route accesses into them.
  for (std::size_t b = 0; b < config_.blocks; ++b)
    blocks_.emplace_back(config_.rows + config_.spare_rows, config_.cols);
  row_maps_.resize(config_.blocks);
  spares_used_.assign(config_.blocks, 0);
  for (std::size_t i = 0; i + 1 < config_.blocks; ++i)
    interconnects_.emplace_back(config_.cols);
}

bool BlockedCrossbar::remap_row(std::size_t block, std::size_t row) {
  assert(block < blocks_.size());
  assert(row < config_.rows);
  if (spares_used_[block] >= config_.spare_rows) return false;
  row_maps_[block][row] = config_.rows + spares_used_[block];
  ++spares_used_[block];
  return true;
}

std::size_t BlockedCrossbar::physical_row(std::size_t block,
                                          std::size_t row) const {
  assert(block < blocks_.size());
  const auto& map = row_maps_[block];
  if (map.empty()) return row;
  const auto it = map.find(row);
  return it == map.end() ? row : it->second;
}

std::size_t BlockedCrossbar::spares_remaining(std::size_t block) const {
  assert(block < blocks_.size());
  return config_.spare_rows - spares_used_[block];
}

std::size_t BlockedCrossbar::remapped_row_count(std::size_t block) const {
  assert(block < blocks_.size());
  return row_maps_[block].size();
}

CrossbarBlock& BlockedCrossbar::block(std::size_t i) {
  assert(i < blocks_.size());
  return blocks_[i];
}

const CrossbarBlock& BlockedCrossbar::block(std::size_t i) const {
  assert(i < blocks_.size());
  return blocks_[i];
}

Interconnect& BlockedCrossbar::interconnect(std::size_t i) {
  assert(i < interconnects_.size());
  return interconnects_[i];
}

const Interconnect& BlockedCrossbar::interconnect(std::size_t i) const {
  assert(i < interconnects_.size());
  return interconnects_[i];
}

void BlockedCrossbar::check_addr(const CellAddr& addr) const {
  (void)addr;  // Release builds compile the asserts away.
  assert(addr.block < blocks_.size());
  assert(addr.row < config_.rows);
  assert(addr.col < config_.cols);
}

bool BlockedCrossbar::get(const CellAddr& addr) const {
  check_addr(addr);
  row_decoder_.activate(addr.row);
  col_decoder_.activate(addr.col);
  return blocks_[addr.block].get(physical_row(addr.block, addr.row),
                                 addr.col);
}

bool BlockedCrossbar::set(const CellAddr& addr, bool value) {
  check_addr(addr);
  row_decoder_.activate(addr.row);
  col_decoder_.activate(addr.col);
  return blocks_[addr.block].set(physical_row(addr.block, addr.row), addr.col,
                                 value);
}

std::size_t BlockedCrossbar::write_word(const CellAddr& start, unsigned width,
                                        std::uint64_t value) {
  check_addr(start);
  assert(start.col + width <= config_.cols);
  row_decoder_.activate(start.row);
  return blocks_[start.block].write_word(physical_row(start.block, start.row),
                                         start.col, width, value);
}

std::uint64_t BlockedCrossbar::read_word(const CellAddr& start,
                                         unsigned width) const {
  check_addr(start);
  assert(start.col + width <= config_.cols);
  row_decoder_.activate(start.row);
  return blocks_[start.block].read_word(physical_row(start.block, start.row),
                                        start.col, width);
}

std::int64_t BlockedCrossbar::route_column(std::size_t src_block,
                                           std::size_t dst_block,
                                           std::size_t col) const {
  assert(src_block < blocks_.size() && dst_block < blocks_.size());
  std::int64_t current = static_cast<std::int64_t>(col);
  if (src_block == dst_block) return current;
  const bool forward = dst_block > src_block;
  std::size_t b = src_block;
  while (b != dst_block) {
    const std::size_t link = forward ? b : b - 1;
    const auto& ic = interconnects_[link];
    current = forward ? ic.route(static_cast<std::size_t>(current))
                      : ic.route_reverse(static_cast<std::size_t>(current));
    if (current < 0) return -1;
    b = forward ? b + 1 : b - 1;
  }
  return current;
}

std::uint64_t BlockedCrossbar::total_switches() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : blocks_) total += b.total_switches();
  return total;
}

std::uint64_t BlockedCrossbar::total_writes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : blocks_) total += b.total_writes();
  return total;
}

std::size_t BlockedCrossbar::shared_decoder_transistors() const noexcept {
  return row_decoder_.estimated_transistors() +
         col_decoder_.estimated_transistors();
}

}  // namespace apim::crossbar
