// TPC-H-style micro-benchmark schema and queries.
//
// Two seeded tables in the lineitem/orders mold, scaled down and width-
// restricted so every intermediate stays inside the APIM request range
// (widths 4..32, running sums < 2^32):
//
//   orders:   o_orderkey (w16, unique 1..N), o_custkey (w8),
//             o_status (w4)
//   lineitem: l_orderkey (w16, FK into orders), l_suppkey (w8),
//             l_quantity (w6, 1..50), l_price (w9, 10..511),
//             l_discount (w4, 0..10), l_shipmode (w4, 0..6)
//
// Three query shapes exercise the operator compositions end to end:
//   Q6-like  filter(quantity, discount) -> per-row price*discount
//            multiply wave -> tree-sum revenue
//   Q1-like  filter(quantity) -> group-aggregate price by shipmode
//   Q3-like  filter(orders.status) -> hash join lineitem x orders ->
//            group-aggregate price by custkey -> in-memory sort of the
//            per-customer revenues
//
// All three are exact under the default QoS; the golden tests commit
// their results for fixed seeds and check row-permutation invariance.
#pragma once

#include <cstdint>
#include <vector>

#include "analytics/operators.hpp"
#include "analytics/table.hpp"

namespace apim::analytics {

struct TpchConfig {
  std::size_t orders = 64;              ///< Order count (< 65536).
  std::size_t lines_per_order_max = 6;  ///< 0..max lineitem rows per order.
  std::uint64_t seed = 1;
};

struct TpchTables {
  Table orders;
  Table lineitem;
};

/// Deterministic seeded generator (xoshiro256**): same config -> same
/// tables on every platform.
[[nodiscard]] TpchTables make_tables(const TpchConfig& cfg);

struct Q6Params {
  std::uint64_t quantity_lt = 24;  ///< l_quantity <  this
  std::uint64_t discount_ge = 4;   ///< l_discount >= this
};

struct Q6Result {
  std::uint64_t matching_rows = 0;  ///< Rows passing both predicates.
  std::uint64_t revenue = 0;        ///< sum(l_price * l_discount) over them.
};

/// Q6-like forecasting-revenue query: two selects, host mask AND, one
/// multiply wave over the surviving rows, tree-sum.
[[nodiscard]] Q6Result q6_revenue(Runner& runner, const TpchTables& t,
                                  const Q6Params& p = {});

struct Q1Params {
  std::uint64_t quantity_le = 40;  ///< l_quantity <= this
};

/// Q1-like pricing summary: filter on quantity, then group l_price by
/// l_shipmode (COUNT/SUM/MIN/MAX/AVG per group, keys ascending).
[[nodiscard]] std::vector<AggRow> q1_pricing_summary(Runner& runner,
                                                     const TpchTables& t,
                                                     const Q1Params& p = {});

struct Q3Params {
  std::uint64_t status_lt = 3;  ///< o_status < this qualifies the order.
};

struct Q3Result {
  std::uint64_t qualifying_orders = 0;  ///< Orders passing the status filter.
  std::uint64_t join_pairs = 0;         ///< lineitem rows joined to them.
  std::vector<AggRow> by_cust;          ///< Revenue grouped by o_custkey.
  /// Per-customer revenue sums in nondecreasing order (in-memory bitonic
  /// sort over the group sums; keys only — tie order is network order).
  std::vector<std::uint64_t> revenue_sorted;
};

/// Q3-like shipping-priority query: order filter, hash join on orderkey,
/// revenue grouped by customer, sorted customer revenues.
[[nodiscard]] Q3Result q3_shipping_priority(Runner& runner,
                                            const TpchTables& t,
                                            const Q3Params& p = {});

}  // namespace apim::analytics
