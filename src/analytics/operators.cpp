#include "analytics/operators.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>

#include "arith/compare_units.hpp"
#include "util/bitops.hpp"

namespace apim::analytics {

using serve::OpKind;
using util::bit_width;
using util::low_mask;

namespace {

using OpVec = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

/// Width a reduction round issues at: covers the largest operand, floored
/// to the request minimum. Every round's sums must stay in request range.
unsigned round_width(const OpVec& ops) {
  unsigned w = 4;
  for (const auto& [a, b] : ops)
    w = std::max({w, bit_width(a), bit_width(b)});
  assert(w <= 32 && "reduction operand exceeds the request width range");
  return w;
}

/// Reduce each group's operand list to its sum. Rounds are batched
/// ACROSS groups: one kVectorAdd wave covers every group's pairs, so the
/// batcher sees wide same-shape waves instead of per-group trickles.
/// `force_exact` pins the adds to relax 0 even when the analytic tenant
/// runs relaxed — required for COUNT reductions, which are cardinalities.
std::vector<std::uint64_t> grouped_tree_sum(
    Runner& runner, std::vector<std::vector<std::uint64_t>> groups,
    bool force_exact = false) {
  auto pending = [&] {
    for (const auto& g : groups)
      if (g.size() > 1) return true;
    return false;
  };
  while (pending()) {
    OpVec ops;
    for (const auto& g : groups)
      for (std::size_t k = 0; k + 1 < g.size(); k += 2)
        ops.emplace_back(g[k], g[k + 1]);
    const unsigned width = round_width(ops);
    const std::vector<std::uint64_t> sums =
        runner.run_wave(OpKind::kVectorAdd, width, ops, force_exact);
    std::size_t next = 0;
    for (auto& g : groups) {
      std::vector<std::uint64_t> survivors;
      survivors.reserve(g.size() / 2 + 1);
      for (std::size_t k = 0; k + 1 < g.size(); k += 2)
        survivors.push_back(sums[next++]);
      if (g.size() % 2 != 0) survivors.push_back(g.back());
      g = std::move(survivors);
    }
    assert(next == sums.size());
  }
  std::vector<std::uint64_t> out;
  out.reserve(groups.size());
  for (const auto& g : groups) out.push_back(g.empty() ? 0 : g.front());
  return out;
}

/// Reduce each group's list to its min or max via compare tournament
/// rounds, batched across groups. Ties keep the earlier operand.
std::vector<std::uint64_t> grouped_tournament(
    Runner& runner, std::vector<std::vector<std::uint64_t>> groups,
    unsigned width, bool take_min) {
  auto pending = [&] {
    for (const auto& g : groups)
      if (g.size() > 1) return true;
    return false;
  };
  while (pending()) {
    OpVec ops;
    for (const auto& g : groups)
      for (std::size_t k = 0; k + 1 < g.size(); k += 2)
        ops.emplace_back(g[k], g[k + 1]);
    const std::vector<std::uint64_t> codes =
        runner.run_wave(OpKind::kCompare, width, ops);
    std::size_t next = 0;
    for (auto& g : groups) {
      std::vector<std::uint64_t> survivors;
      survivors.reserve(g.size() / 2 + 1);
      for (std::size_t k = 0; k + 1 < g.size(); k += 2) {
        const std::uint64_t code = codes[next++];
        const bool first_wins =
            take_min ? code != arith::kCmpGt : code != arith::kCmpLt;
        survivors.push_back(first_wins ? g[k] : g[k + 1]);
      }
      if (g.size() % 2 != 0) survivors.push_back(g.back());
      g = std::move(survivors);
    }
    assert(next == codes.size());
  }
  std::vector<std::uint64_t> out;
  out.reserve(groups.size());
  for (const auto& g : groups) out.push_back(g.empty() ? 0 : g.front());
  return out;
}

/// Pack a membership bit-vector into 32-bit words (LSB-first), the shape
/// the in-memory popcount counts.
std::vector<std::uint64_t> pack_mask_words(const std::vector<bool>& mask) {
  std::vector<std::uint64_t> words((mask.size() + 31) / 32, 0);
  for (std::size_t i = 0; i < mask.size(); ++i)
    if (mask[i]) words[i / 32] |= std::uint64_t{1} << (i % 32);
  return words;
}

/// FNV-1a of a key value, the controller-side bucket hash (same family as
/// cluster::Placement::shard_of).
std::uint64_t fnv1a64(std::uint64_t key) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned i = 0; i < 8; ++i) {
    h ^= (key >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

bool predicate_holds(CmpOp op, std::uint64_t code) {
  switch (op) {
    case CmpOp::kLt: return code == arith::kCmpLt;
    case CmpOp::kLe: return code != arith::kCmpGt;
    case CmpOp::kGt: return code == arith::kCmpGt;
    case CmpOp::kGe: return code != arith::kCmpLt;
    case CmpOp::kEq: return code == arith::kCmpEq;
    case CmpOp::kNe: return code != arith::kCmpEq;
  }
  return false;
}

SelectResult select(Runner& runner, std::span<const std::uint64_t> column,
                    unsigned width, Predicate pred) {
  SelectResult out;
  out.mask.resize(column.size(), false);
  if (column.empty()) return out;

  OpVec ops;
  ops.reserve(column.size());
  for (const std::uint64_t v : column) ops.emplace_back(v, pred.literal);
  const std::vector<std::uint64_t> codes =
      runner.run_wave(OpKind::kCompare, width, ops);
  for (std::size_t i = 0; i < column.size(); ++i)
    out.mask[i] = predicate_holds(pred.op, codes[i]);

  out.count = mask_count(runner, out.mask);
  return out;
}

std::uint64_t mask_count(Runner& runner, const std::vector<bool>& mask) {
  if (mask.empty()) return 0;
  OpVec words;
  for (const std::uint64_t w : pack_mask_words(mask)) words.emplace_back(w, 0);
  std::vector<std::uint64_t> counts =
      runner.run_wave(OpKind::kPopcount, 32, words);
  // The count reduction stays exact under any QoS relax level: a
  // cardinality feeds control flow (and AVG), never an approximable value.
  std::vector<std::vector<std::uint64_t>> one_group;
  one_group.push_back(std::move(counts));
  return grouped_tree_sum(runner, std::move(one_group),
                          /*force_exact=*/true)
      .front();
}

std::vector<AggRow> group_aggregate(Runner& runner,
                                    std::span<const std::uint64_t> keys,
                                    std::span<const std::uint64_t> values,
                                    unsigned key_width, unsigned val_width,
                                    const std::vector<bool>* mask) {
  assert(keys.size() == values.size());
  assert(mask == nullptr || mask->size() == keys.size());
  (void)key_width;

  // Controller-side hash grouping (std::map: deterministic key order).
  std::map<std::uint64_t, std::vector<std::uint32_t>> groups;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (mask != nullptr && !(*mask)[i]) continue;
    groups[keys[i]].push_back(static_cast<std::uint32_t>(i));
  }
  if (groups.empty()) return {};

  const std::size_t n_groups = groups.size();
  std::vector<std::vector<std::uint64_t>> sum_in, count_in, minmax_in;
  sum_in.reserve(n_groups);
  count_in.reserve(n_groups);
  minmax_in.reserve(n_groups);
  for (const auto& [key, members] : groups) {
    std::vector<std::uint64_t> vals;
    vals.reserve(members.size());
    for (const std::uint32_t row : members) vals.push_back(values[row]);
    minmax_in.push_back(vals);
    sum_in.push_back(std::move(vals));
    // COUNT: popcount of the group's membership mask over the table.
    std::vector<bool> membership(keys.size(), false);
    for (const std::uint32_t row : members) membership[row] = true;
    count_in.push_back(pack_mask_words(membership));
  }

  // One popcount wave covers every group's mask words; per-word counts
  // then reduce group-wise like the sums.
  {
    OpVec word_ops;
    std::vector<std::size_t> group_words;
    for (const auto& words : count_in) {
      group_words.push_back(words.size());
      for (const std::uint64_t w : words) word_ops.emplace_back(w, 0);
    }
    const std::vector<std::uint64_t> counts =
        runner.run_wave(OpKind::kPopcount, 32, word_ops);
    std::size_t next = 0;
    for (std::size_t g = 0; g < n_groups; ++g) {
      count_in[g].assign(counts.begin() + static_cast<std::ptrdiff_t>(next),
                         counts.begin() +
                             static_cast<std::ptrdiff_t>(next + group_words[g]));
      next += group_words[g];
    }
  }

  const std::vector<std::uint64_t> sums =
      grouped_tree_sum(runner, std::move(sum_in));
  const std::vector<std::uint64_t> counts = grouped_tree_sum(
      runner, std::move(count_in), /*force_exact=*/true);
  const std::vector<std::uint64_t> mins =
      grouped_tournament(runner, minmax_in, val_width, /*take_min=*/true);
  const std::vector<std::uint64_t> maxs =
      grouped_tournament(runner, std::move(minmax_in), val_width,
                         /*take_min=*/false);

  std::vector<AggRow> out;
  out.reserve(n_groups);
  std::size_t g = 0;
  for (const auto& [key, members] : groups) {
    AggRow row;
    row.key = key;
    row.count = counts[g];
    row.sum = sums[g];
    row.min = mins[g];
    row.max = maxs[g];
    assert(row.count == members.size());
    // AVG = exact (quotient, remainder) pair; the division itself is
    // peripheral ALU work on the two in-memory aggregates.
    row.avg_q = row.count == 0 ? 0 : row.sum / row.count;
    row.avg_r = row.count == 0 ? 0 : row.sum % row.count;
    out.push_back(row);
    ++g;
  }
  return out;
}

std::vector<JoinPair> hash_join(Runner& runner,
                                std::span<const std::uint64_t> left_keys,
                                std::span<const std::uint64_t> right_keys,
                                unsigned key_width) {
  std::vector<JoinPair> out;
  if (left_keys.empty() || right_keys.empty()) return out;

  // Build side: FNV-1a buckets at the controller. Bucket lists hold
  // ascending right-row indices.
  const std::size_t buckets =
      std::bit_ceil(std::max<std::size_t>(8, right_keys.size()));
  std::vector<std::vector<std::uint32_t>> table(buckets);
  for (std::size_t j = 0; j < right_keys.size(); ++j)
    table[fnv1a64(right_keys[j]) & (buckets - 1)].push_back(
        static_cast<std::uint32_t>(j));

  // Probe side: every bucket candidate becomes one in-memory equality
  // compare — emitted pairs are proven equal in memory, the host hash only
  // pruned the candidate set.
  OpVec ops;
  std::vector<JoinPair> candidates;
  for (std::size_t i = 0; i < left_keys.size(); ++i) {
    for (const std::uint32_t j :
         table[fnv1a64(left_keys[i]) & (buckets - 1)]) {
      ops.emplace_back(left_keys[i], right_keys[j]);
      candidates.push_back(JoinPair{static_cast<std::uint32_t>(i), j});
    }
  }
  if (ops.empty()) return out;
  const std::vector<std::uint64_t> codes =
      runner.run_wave(OpKind::kCompare, key_width, ops);
  for (std::size_t c = 0; c < candidates.size(); ++c)
    if (codes[c] == arith::kCmpEq) out.push_back(candidates[c]);
  return out;
}

SortResult sort_by_key(Runner& runner, std::span<const std::uint64_t> keys,
                       unsigned width) {
  SortResult out;
  out.keys.assign(keys.begin(), keys.end());
  out.perm.resize(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    out.perm[i] = static_cast<std::uint32_t>(i);
  if (keys.size() < 2) return out;

  // Pad to the network size with max-value sentinels (they never exchange
  // below an equal real key, and are dropped on extraction).
  const std::size_t p = std::bit_ceil(keys.size());
  const std::uint64_t sentinel = low_mask(width);
  std::vector<std::uint64_t> k(p, sentinel);
  std::vector<std::uint32_t> idx(p);
  for (std::size_t i = 0; i < p; ++i)
    idx[i] = static_cast<std::uint32_t>(i);
  std::copy(keys.begin(), keys.end(), k.begin());

  for (std::size_t stage = 2; stage <= p; stage <<= 1) {
    for (std::size_t jump = stage >> 1; jump > 0; jump >>= 1) {
      OpVec ops;
      std::vector<std::pair<std::size_t, std::size_t>> exchanges;
      for (std::size_t i = 0; i < p; ++i) {
        const std::size_t l = i ^ jump;
        if (l <= i) continue;
        ops.emplace_back(k[i], k[l]);
        exchanges.emplace_back(i, l);
      }
      const std::vector<std::uint64_t> codes =
          runner.run_wave(OpKind::kCompare, width, ops);
      for (std::size_t c = 0; c < exchanges.size(); ++c) {
        const auto [i, l] = exchanges[c];
        const bool ascending = (i & stage) == 0;
        const bool swap = ascending ? codes[c] == arith::kCmpGt
                                    : codes[c] == arith::kCmpLt;
        if (swap) {
          std::swap(k[i], k[l]);
          std::swap(idx[i], idx[l]);
        }
      }
    }
  }

  std::size_t o = 0;
  for (std::size_t i = 0; i < p; ++i) {
    if (idx[i] >= keys.size()) continue;  // Sentinel slot.
    out.keys[o] = k[i];
    out.perm[o] = idx[i];
    ++o;
  }
  assert(o == keys.size());
  return out;
}

std::uint64_t tree_sum(Runner& runner, std::vector<std::uint64_t> values) {
  if (values.empty()) return 0;
  std::vector<std::vector<std::uint64_t>> one_group;
  one_group.push_back(std::move(values));
  return grouped_tree_sum(runner, std::move(one_group)).front();
}

}  // namespace apim::analytics
