// Runner: the analytics layer's gateway to the serving runtime.
//
// Every in-memory operation an analytics operator issues travels through a
// full serve::Server — admission, QoS relax lookup, dynamic same-shape
// batching, DRR fair share, health — as ordinary requests, so the serving
// metrics and the virtual clock cover analytic queries exactly like any
// other tenant's traffic. The Runner drives the server with the stepping
// API (stage_request / next_event_at / step_until), the same discipline
// the cluster coordinator uses: stage a wave of same-shape requests at the
// current virtual time, drain the engine, collect responses in request
// order. Bit-identical for every host thread count.
//
// Operators require completed results: any response that is not kOk
// (rejected, expired, invalid) throws — analytic plans have no partial-
// result semantics. Configure capacity/deadlines accordingly (the default
// config has no deadlines and waves are throttled to queue capacity).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "reliability/policy.hpp"
#include "serve/metrics.hpp"
#include "serve/qos_table.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"

namespace apim::analytics {

struct RunnerConfig {
  serve::ServerConfig server{};
  /// Tenant name the analytic requests run under (QoS table / DRR key).
  std::string app = "analytics";
  /// Fault-tolerance level of the issued requests.
  reliability::ReliabilityPolicy policy = reliability::ReliabilityPolicy::kOff;
  /// QoS table handed to the server. Default empty: every request runs
  /// exact. The bench's relaxed-aggregate variant registers `app` here
  /// with a nonzero relax level (compares/popcounts stay exact by the
  /// kernel contract; only SUM reduction adds ever approximate).
  serve::QosTable qos{};
  /// Tenant name for waves that must stay exact regardless of the QoS
  /// table — COUNT / cardinality reductions. Leave it unregistered: the
  /// table's conservative fallback serves unknown apps at relax 0.
  std::string exact_app = "analytics#exact";
};

class Runner {
 public:
  explicit Runner(RunnerConfig cfg);
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Execute one wave of same-shape ops through the server and return the
  /// values in op order. `width` is clamped to the request range [4, 32];
  /// operands must already fit in it. Throws std::runtime_error when any
  /// request finalizes as anything other than kOk. With `force_exact` the
  /// wave runs under `exact_app`, sidestepping any relax level configured
  /// for the analytic tenant (used by COUNT reductions, whose results are
  /// cardinalities, not approximable aggregates).
  std::vector<std::uint64_t> run_wave(
      serve::OpKind op, unsigned width,
      std::span<const std::pair<std::uint64_t, std::uint64_t>> ops,
      bool force_exact = false);

  /// Engine virtual time (total simulated cycles so far).
  [[nodiscard]] util::Cycles virtual_now() const;

  [[nodiscard]] serve::MetricsSnapshot snapshot() const;
  [[nodiscard]] const serve::Server& server() const { return *server_; }

  /// Cumulative counters across every wave.
  [[nodiscard]] std::uint64_t waves() const noexcept { return waves_; }
  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::uint64_t ops() const noexcept { return ops_; }
  /// Sum of the per-response energy shares (pJ).
  [[nodiscard]] double energy_pj() const noexcept { return energy_pj_; }

 private:
  RunnerConfig cfg_;
  std::unique_ptr<serve::Server> server_;
  std::uint64_t waves_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t ops_ = 0;
  double energy_pj_ = 0.0;
};

}  // namespace apim::analytics
