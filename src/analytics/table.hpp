// Minimal columnar table model for the analytics operators.
//
// Columns are unsigned magnitudes of a declared bit width (the APIM word
// width the column's ops run at, 4..32); the operators take value spans +
// widths, so Table is just the naming/bundling layer the TPC-H-style
// queries and their golden tests share.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitops.hpp"

namespace apim::analytics {

struct Column {
  std::string name;
  unsigned width = 32;  ///< Bit width; every value must fit (asserted).
  std::vector<std::uint64_t> values;
};

struct Table {
  std::vector<Column> columns;

  [[nodiscard]] std::size_t rows() const noexcept {
    return columns.empty() ? 0 : columns.front().values.size();
  }

  [[nodiscard]] const Column& col(std::string_view name) const {
    for (const Column& c : columns)
      if (c.name == name) return c;
    assert(false && "unknown column");
    return columns.front();
  }

  /// All columns same length, all values inside their declared width.
  [[nodiscard]] bool well_formed() const {
    for (const Column& c : columns) {
      if (c.values.size() != rows()) return false;
      for (const std::uint64_t v : c.values)
        if (v > util::low_mask(c.width)) return false;
    }
    return true;
  }
};

}  // namespace apim::analytics
