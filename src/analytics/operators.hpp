// DB-style analytics operators on APIM.
//
// Every operator decomposes into waves of in-memory micro-ops issued
// through a Runner (and therefore through serve::Server):
//
//   operator        in-memory micro-kernel                  periphery work
//   --------------  --------------------------------------  -----------------
//   select          kCompare (complement-add three-way       predicate decode
//                   compare vs the literal)                  of the 3-way code
//   select.count /  kPopcount over packed mask words,        bit packing
//   COUNT           kVectorAdd tree reduction of the
//                   per-word counts
//   SUM             kVectorAdd pairwise reduction rounds     pairing order
//   MIN / MAX       kCompare tournament rounds               winner pick
//   AVG             SUM + COUNT in memory                    final division
//   hash join       kCompare key-equality verification       FNV-1a bucketing
//                   of every bucket candidate                (controller hash)
//   sort            kCompare per bitonic stage               exchange moves
//
// Exactness contract: every operator above is EXACT bit-for-bit — compares
// always run exact regardless of the tenant's QoS relax (predicates and
// join keys are the exactness domain), and the SUM/COUNT reductions issue
// at widths that keep every partial in range, so no clamping or relaxation
// can perturb them under the default exact QoS. The differential oracle
// (tests/analytics_harness.hpp) enforces this against a pure host scalar
// reference across backends and thread counts. Approximation enters only
// when a caller deliberately serves aggregates under a relaxed QoS table
// entry (the bench's relaxed-aggregate variant).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analytics/runner.hpp"

namespace apim::analytics {

enum class CmpOp : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

struct Predicate {
  CmpOp op = CmpOp::kLt;
  std::uint64_t literal = 0;
};

/// Decode a predicate from a three-way compare code (arith::kCmp*).
[[nodiscard]] bool predicate_holds(CmpOp op, std::uint64_t code);

struct SelectResult {
  std::vector<bool> mask;   ///< Per-row predicate outcome.
  std::uint64_t count = 0;  ///< Mask cardinality, counted in memory.
};

/// Selection: three-way compare of every row against the literal, decoded
/// at the periphery; the mask cardinality is popcounted in memory over
/// packed 32-bit mask words.
[[nodiscard]] SelectResult select(Runner& runner,
                                  std::span<const std::uint64_t> column,
                                  unsigned width, Predicate pred);

/// Mask cardinality counted in memory: the mask is packed into 32-bit
/// words, each word popcounted, and the per-word counts tree-reduced.
[[nodiscard]] std::uint64_t mask_count(Runner& runner,
                                       const std::vector<bool>& mask);

/// One output row of a grouped aggregation, keyed ascending.
struct AggRow {
  std::uint64_t key = 0;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t avg_q = 0;  ///< sum / count (host division, exact pair).
  std::uint64_t avg_r = 0;  ///< sum % count.
};

/// Hash-grouped aggregation of `values` by `keys` (optionally masked).
/// Grouping is controller-side hashing; per-group SUM/COUNT/MIN/MAX run in
/// memory as reduction waves batched ACROSS groups (every round issues one
/// same-shape wave covering all groups). Output rows sorted by key.
/// Requires val_width + ceil(log2(max group size)) <= 32 so the running
/// sums stay in request range (asserted).
[[nodiscard]] std::vector<AggRow> group_aggregate(
    Runner& runner, std::span<const std::uint64_t> keys,
    std::span<const std::uint64_t> values, unsigned key_width,
    unsigned val_width, const std::vector<bool>* mask = nullptr);

struct JoinPair {
  std::uint32_t left = 0;   ///< Row index in the left (probe) table.
  std::uint32_t right = 0;  ///< Row index in the right (build) table.
};

/// Hash join on equal keys: FNV-1a bucketing of the right side at the
/// controller, then one in-memory kCompare wave verifying every bucket
/// candidate — every emitted pair was proven equal in memory, never by the
/// host hash. Output ordered by (left, right) ascending.
[[nodiscard]] std::vector<JoinPair> hash_join(
    Runner& runner, std::span<const std::uint64_t> left_keys,
    std::span<const std::uint64_t> right_keys, unsigned key_width);

struct SortResult {
  std::vector<std::uint64_t> keys;  ///< Input keys in nondecreasing order.
  std::vector<std::uint32_t> perm;  ///< perm[i] = original row of output i.
};

/// Bitonic sort over in-memory compares: the network is padded to the next
/// power of two with max-value sentinels, each stage issues one kCompare
/// wave (P/2 compares), and the periphery applies the exchanges. Equal
/// keys never exchange, so the permutation is deterministic (but the
/// network is not stable; equal-key payload order is network order).
[[nodiscard]] SortResult sort_by_key(Runner& runner,
                                     std::span<const std::uint64_t> keys,
                                     unsigned width);

/// Exact pairwise-reduction SUM of `values` through kVectorAdd waves; each
/// round re-derives the width from the surviving operands' magnitudes.
/// Exposed for operators composed outside group_aggregate (e.g. Q6's
/// revenue over per-row products). Sum must fit in 32 bits (asserted).
[[nodiscard]] std::uint64_t tree_sum(Runner& runner,
                                     std::vector<std::uint64_t> values);

}  // namespace apim::analytics
