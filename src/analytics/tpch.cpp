#include "analytics/tpch.hpp"

#include <algorithm>
#include <cassert>

#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace apim::analytics {

using serve::OpKind;

TpchTables make_tables(const TpchConfig& cfg) {
  assert(cfg.orders > 0 && cfg.orders < 65536);
  util::Xoshiro256 rng(cfg.seed);

  TpchTables t;
  Column o_orderkey{"o_orderkey", 16, {}};
  Column o_custkey{"o_custkey", 8, {}};
  Column o_status{"o_status", 4, {}};
  Column l_orderkey{"l_orderkey", 16, {}};
  Column l_suppkey{"l_suppkey", 8, {}};
  Column l_quantity{"l_quantity", 6, {}};
  Column l_price{"l_price", 9, {}};
  Column l_discount{"l_discount", 4, {}};
  Column l_shipmode{"l_shipmode", 4, {}};

  // Customer pool smaller than the order count so grouping by customer
  // has real fan-in.
  const std::uint64_t customers =
      std::min<std::uint64_t>(256, std::max<std::uint64_t>(2, cfg.orders / 3));
  for (std::size_t o = 0; o < cfg.orders; ++o) {
    const std::uint64_t orderkey = static_cast<std::uint64_t>(o) + 1;
    o_orderkey.values.push_back(orderkey);
    o_custkey.values.push_back(rng.next_below(customers));
    o_status.values.push_back(rng.next_below(5));
    const std::uint64_t lines = rng.next_below(cfg.lines_per_order_max + 1);
    for (std::uint64_t l = 0; l < lines; ++l) {
      l_orderkey.values.push_back(orderkey);
      l_suppkey.values.push_back(rng.next_below(200));
      l_quantity.values.push_back(1 + rng.next_below(50));
      l_price.values.push_back(10 + rng.next_below(502));
      l_discount.values.push_back(rng.next_below(11));
      l_shipmode.values.push_back(rng.next_below(7));
    }
  }

  t.orders.columns = {std::move(o_orderkey), std::move(o_custkey),
                      std::move(o_status)};
  t.lineitem.columns = {std::move(l_orderkey), std::move(l_suppkey),
                        std::move(l_quantity), std::move(l_price),
                        std::move(l_discount), std::move(l_shipmode)};
  assert(t.orders.well_formed() && t.lineitem.well_formed());
  return t;
}

Q6Result q6_revenue(Runner& runner, const TpchTables& t, const Q6Params& p) {
  const Column& quantity = t.lineitem.col("l_quantity");
  const Column& discount = t.lineitem.col("l_discount");
  const Column& price = t.lineitem.col("l_price");

  const SelectResult by_qty =
      select(runner, quantity.values, quantity.width,
             Predicate{CmpOp::kLt, p.quantity_lt});
  const SelectResult by_disc =
      select(runner, discount.values, discount.width,
             Predicate{CmpOp::kGe, p.discount_ge});

  std::vector<bool> both(by_qty.mask.size(), false);
  for (std::size_t i = 0; i < both.size(); ++i)
    both[i] = by_qty.mask[i] && by_disc.mask[i];

  Q6Result out;
  out.matching_rows = mask_count(runner, both);

  // price * discount per surviving row in one multiply wave; the product
  // comes back at full 2w precision, so the revenue sum is exact.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  for (std::size_t i = 0; i < both.size(); ++i)
    if (both[i]) ops.emplace_back(price.values[i], discount.values[i]);
  const unsigned mul_width = std::max(price.width, discount.width);
  std::vector<std::uint64_t> products =
      runner.run_wave(OpKind::kMultiply, mul_width, ops);
  out.revenue = tree_sum(runner, std::move(products));
  assert(out.matching_rows == ops.size());
  return out;
}

std::vector<AggRow> q1_pricing_summary(Runner& runner, const TpchTables& t,
                                       const Q1Params& p) {
  const Column& quantity = t.lineitem.col("l_quantity");
  const Column& shipmode = t.lineitem.col("l_shipmode");
  const Column& price = t.lineitem.col("l_price");

  const SelectResult filt =
      select(runner, quantity.values, quantity.width,
             Predicate{CmpOp::kLe, p.quantity_le});
  return group_aggregate(runner, shipmode.values, price.values,
                         shipmode.width, price.width, &filt.mask);
}

Q3Result q3_shipping_priority(Runner& runner, const TpchTables& t,
                              const Q3Params& p) {
  const Column& o_status = t.orders.col("o_status");
  const Column& o_orderkey = t.orders.col("o_orderkey");
  const Column& o_custkey = t.orders.col("o_custkey");
  const Column& l_orderkey = t.lineitem.col("l_orderkey");
  const Column& l_price = t.lineitem.col("l_price");

  Q3Result out;
  const SelectResult qual =
      select(runner, o_status.values, o_status.width,
             Predicate{CmpOp::kLt, p.status_lt});
  out.qualifying_orders = qual.count;

  // Build side: the qualifying orders' keys (remember each filtered row's
  // original order row so the join pairs map back to custkeys).
  std::vector<std::uint64_t> build_keys;
  std::vector<std::uint32_t> build_rows;
  for (std::size_t o = 0; o < qual.mask.size(); ++o) {
    if (!qual.mask[o]) continue;
    build_keys.push_back(o_orderkey.values[o]);
    build_rows.push_back(static_cast<std::uint32_t>(o));
  }

  const std::vector<JoinPair> pairs =
      hash_join(runner, l_orderkey.values, build_keys, o_orderkey.width);
  out.join_pairs = pairs.size();

  std::vector<std::uint64_t> custkeys, prices;
  custkeys.reserve(pairs.size());
  prices.reserve(pairs.size());
  for (const JoinPair& jp : pairs) {
    custkeys.push_back(o_custkey.values[build_rows[jp.right]]);
    prices.push_back(l_price.values[jp.left]);
  }
  out.by_cust = group_aggregate(runner, custkeys, prices, o_custkey.width,
                                l_price.width);

  // Sorted per-customer revenue: width derived from the largest sum so the
  // compare wave covers every operand.
  std::vector<std::uint64_t> sums;
  sums.reserve(out.by_cust.size());
  unsigned width = 4;
  for (const AggRow& row : out.by_cust) {
    sums.push_back(row.sum);
    width = std::max(width, util::bit_width(row.sum));
  }
  assert(width <= 32);
  out.revenue_sorted = sort_by_key(runner, sums, width).keys;
  return out;
}

}  // namespace apim::analytics
