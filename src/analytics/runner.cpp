#include "analytics/runner.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace apim::analytics {

Runner::Runner(RunnerConfig cfg)
    : cfg_(std::move(cfg)),
      server_(std::make_unique<serve::Server>(cfg_.server, cfg_.qos)) {}

Runner::~Runner() = default;

std::vector<std::uint64_t> Runner::run_wave(
    serve::OpKind op, unsigned width,
    std::span<const std::pair<std::uint64_t, std::uint64_t>> ops,
    bool force_exact) {
  std::vector<std::uint64_t> out;
  out.reserve(ops.size());
  if (ops.empty()) return out;
  width = std::clamp(width, 4u, 32u);

  // One request per dispatch budget: each staged request is already a full
  // batch, and the batcher still coalesces short tails with same-shape
  // company from the same wave.
  const std::size_t per_request = cfg_.server.batch_op_budget();
  const std::size_t wave_cap = std::max<std::size_t>(
      1, cfg_.server.queue_capacity);

  std::size_t next = 0;
  while (next < ops.size()) {
    std::vector<std::uint64_t> ids;
    while (next < ops.size() && ids.size() < wave_cap) {
      const std::size_t m = std::min(per_request, ops.size() - next);
      serve::Request r;
      r.app = force_exact ? cfg_.exact_app : cfg_.app;
      r.op = op;
      r.width = width;
      r.operands.assign(ops.begin() + static_cast<std::ptrdiff_t>(next),
                        ops.begin() + static_cast<std::ptrdiff_t>(next + m));
      r.arrival = server_->virtual_now();
      r.policy = cfg_.policy;
      ids.push_back(server_->stage_request(std::move(r)));
      next += m;
      ++requests_;
    }
    while (const auto at = server_->next_event_at()) server_->step_until(*at);
    for (const std::uint64_t id : ids) {
      const serve::Response& resp = server_->response(id);
      if (resp.status != serve::RequestStatus::kOk)
        throw std::runtime_error(
            std::string("analytics request not served: ") +
            serve::to_string(resp.status));
      out.insert(out.end(), resp.values.begin(), resp.values.end());
      energy_pj_ += resp.energy_pj;
    }
  }
  ops_ += ops.size();
  ++waves_;
  return out;
}

util::Cycles Runner::virtual_now() const { return server_->virtual_now(); }

serve::MetricsSnapshot Runner::snapshot() const { return server_->snapshot(); }

}  // namespace apim::analytics
