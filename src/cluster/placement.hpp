// Shard-to-chip placement: consistent hashing plus an override table.
//
// Tenants hash to shards (FNV-1a of the app name, the repo's standard
// identity hash — tests/serve_harness.hpp uses the same construction for
// per-tenant RNG streams), and shards map to chips. The default mapping is
// a consistent-hash ring (each chip contributes kVirtualNodes points, a
// shard lands on the first point clockwise of its own hash) so that
// growing or shrinking the chip set moves only ~1/N of the shards. An
// explicit override table pins chosen shards to chosen chips — benches use
// it to construct adversarial initial placements, and the rebalancer
// rewrites the live assignment through move() as migrations commit.
//
// Everything is a pure function of (shards, chips, seed, overrides) plus
// the move() history: no global state, no std::hash (libstdc++-specific),
// so placement is deterministic across platforms and runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace apim::cluster {

class Placement {
 public:
  /// Ring points contributed by each chip. More points smooth the shard
  /// distribution; 16 keeps the worst chip within ~2x of the mean.
  static constexpr std::size_t kVirtualNodes = 16;

  Placement(std::size_t shards, std::size_t chips, std::uint64_t seed,
            const std::map<std::size_t, std::size_t>& overrides = {});

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] std::size_t chips() const noexcept { return chips_; }

  /// Tenant -> shard: FNV-1a(app) mod shards.
  [[nodiscard]] static std::size_t shard_of(const std::string& app,
                                            std::size_t shards);

  /// Current home chip of a shard.
  [[nodiscard]] std::size_t chip_for(std::size_t shard) const {
    return home_[shard];
  }

  /// Commit a migration: `shard` now lives on `chip`.
  void move(std::size_t shard, std::size_t chip);

  /// Ring lookup restricted to chips where `allowed[chip]` is true — where
  /// a shard would live if its home chip left service. Falls back to the
  /// lowest allowed chip id when the ring has no allowed point (cannot
  /// happen while any chip is allowed, since every chip posts points).
  [[nodiscard]] std::size_t fallback_chip(
      std::size_t shard, const std::vector<bool>& allowed) const;

  /// Live assignment, indexed by shard.
  [[nodiscard]] const std::vector<std::size_t>& assignment() const noexcept {
    return home_;
  }

 private:
  [[nodiscard]] std::uint64_t shard_point(std::size_t shard) const;

  std::size_t shards_;
  std::size_t chips_;
  std::uint64_t seed_;
  /// Sorted (hash point, chip) ring.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
  std::vector<std::size_t> home_;
};

}  // namespace apim::cluster
