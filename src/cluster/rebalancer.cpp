#include "cluster/rebalancer.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace apim::cluster {

Rebalancer::Rebalancer(std::size_t shards, RebalanceConfig config)
    : cfg_(config),
      ewma_(shards, 0.0),
      window_(shards, 0),
      cooldown_(shards, 0) {
  assert(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0);
}

void Rebalancer::note_admitted(std::size_t shard, std::size_t ops) {
  assert(shard < window_.size());
  window_[shard] += ops;
}

std::vector<MigrationDecision> Rebalancer::tick(
    const std::vector<std::size_t>& home,
    const std::vector<bool>& chip_serving,
    const std::vector<bool>& shard_locked) {
  const std::size_t shards = ewma_.size();
  const std::size_t chips = chip_serving.size();
  assert(home.size() == shards && shard_locked.size() == shards);

  for (std::size_t s = 0; s < shards; ++s) {
    ewma_[s] = cfg_.ewma_alpha * static_cast<double>(window_[s]) +
               (1.0 - cfg_.ewma_alpha) * ewma_[s];
    window_[s] = 0;
    if (cooldown_[s] > 0) --cooldown_[s];
  }

  std::vector<MigrationDecision> out;
  if (chips < 2) return out;

  std::vector<double> chip_load(chips, 0.0);
  for (std::size_t s = 0; s < shards; ++s) chip_load[home[s]] += ewma_[s];

  std::size_t serving_chips = 0;
  double serving_load = 0.0;
  for (std::size_t c = 0; c < chips; ++c) {
    if (!chip_serving[c]) continue;
    ++serving_chips;
    serving_load += chip_load[c];
  }
  if (serving_chips == 0) return out;  // Total failure: nowhere to go.

  // Least-loaded serving chip, recomputed as decisions land so a burst of
  // evacuations spreads instead of piling onto one target.
  const auto coldest = [&](std::size_t excluding) {
    std::size_t best = chips;
    for (std::size_t c = 0; c < chips; ++c) {
      if (!chip_serving[c] || c == excluding) continue;
      if (best == chips || chip_load[c] < chip_load[best]) best = c;
    }
    return best;
  };

  // Evacuations first: quarantined chips shed every shard they hold.
  for (std::size_t s = 0; s < shards; ++s) {
    if (shard_locked[s] || chip_serving[home[s]]) continue;
    const std::size_t to = coldest(home[s]);
    if (to == chips) break;
    out.push_back({s, home[s], to, true});
    chip_load[to] += ewma_[s];
    chip_load[home[s]] -= ewma_[s];
  }

  if (!cfg_.enabled) return out;

  const double mean = serving_load / static_cast<double>(serving_chips);
  for (std::size_t n = 0; n < cfg_.max_migrations_per_tick; ++n) {
    std::size_t hot = chips;
    for (std::size_t c = 0; c < chips; ++c) {
      if (!chip_serving[c]) continue;
      if (hot == chips || chip_load[c] > chip_load[hot]) hot = c;
    }
    if (hot == chips || chip_load[hot] <= cfg_.imbalance_factor * mean)
      break;
    // Hottest movable shard on the hottest chip.
    std::size_t pick = shards;
    for (std::size_t s = 0; s < shards; ++s) {
      if (home[s] != hot || shard_locked[s] || cooldown_[s] > 0) continue;
      if (ewma_[s] < cfg_.min_shard_load) continue;
      if (pick == shards || ewma_[s] > ewma_[pick]) pick = s;
    }
    if (pick == shards) break;
    const std::size_t to = coldest(hot);
    if (to == chips) break;
    // Only move if it strictly shrinks the hot/cold gap: the destination
    // must stay below the source even after absorbing the shard.
    if (chip_load[to] + ewma_[pick] >= chip_load[hot]) break;
    out.push_back({pick, hot, to, false});
    chip_load[to] += ewma_[pick];
    chip_load[hot] -= ewma_[pick];
    cooldown_[pick] = cfg_.cooldown_ticks;
  }
  return out;
}

}  // namespace apim::cluster
