#include "cluster/placement.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace apim::cluster {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Deterministic point for (seed, tag, index): XOR-fold then splitmix64,
/// the same decorrelation recipe as serve_harness::tenant_seed.
std::uint64_t mix_point(std::uint64_t seed, std::uint64_t tag,
                        std::uint64_t index) {
  std::uint64_t state =
      seed ^ (tag * 0x9E3779B97F4A7C15ull) ^ (index * 0xBF58476D1CE4E5B9ull);
  return util::splitmix64(state);
}

}  // namespace

Placement::Placement(std::size_t shards, std::size_t chips,
                     std::uint64_t seed,
                     const std::map<std::size_t, std::size_t>& overrides)
    : shards_(shards == 0 ? 1 : shards),
      chips_(chips == 0 ? 1 : chips),
      seed_(seed) {
  ring_.reserve(chips_ * kVirtualNodes);
  for (std::size_t c = 0; c < chips_; ++c)
    for (std::size_t v = 0; v < kVirtualNodes; ++v)
      ring_.emplace_back(mix_point(seed_, 1 + c, v), c);
  std::sort(ring_.begin(), ring_.end());

  home_.resize(shards_);
  const std::vector<bool> all(chips_, true);
  for (std::size_t s = 0; s < shards_; ++s) home_[s] = fallback_chip(s, all);
  for (const auto& [shard, chip] : overrides) {
    assert(shard < shards_ && chip < chips_);
    if (shard < shards_ && chip < chips_) home_[shard] = chip;
  }
}

std::size_t Placement::shard_of(const std::string& app, std::size_t shards) {
  return shards == 0 ? 0 : fnv1a(app) % shards;
}

void Placement::move(std::size_t shard, std::size_t chip) {
  assert(shard < shards_ && chip < chips_);
  home_[shard] = chip;
}

std::uint64_t Placement::shard_point(std::size_t shard) const {
  return mix_point(seed_, 0, shard);
}

std::size_t Placement::fallback_chip(std::size_t shard,
                                     const std::vector<bool>& allowed) const {
  assert(allowed.size() == chips_);
  const std::uint64_t point = shard_point(shard);
  // First allowed ring point at or clockwise of the shard's point; wrap
  // once. Linear in ring size — rings are tiny (chips * 16 entries).
  const auto start = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(point, static_cast<std::size_t>(0)));
  for (auto it = start; it != ring_.end(); ++it)
    if (allowed[it->second]) return it->second;
  for (auto it = ring_.begin(); it != start; ++it)
    if (allowed[it->second]) return it->second;
  for (std::size_t c = 0; c < chips_; ++c)
    if (allowed[c]) return c;
  return 0;
}

}  // namespace apim::cluster
