#include "cluster/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <optional>
#include <utility>

#include "serve/health.hpp"
#include "serve/trace.hpp"

namespace apim::cluster {

namespace {

/// Bits a request or response payload occupies on the wire: `ops` values
/// of two `width`-bit operands (forward) or one up-to-2*width-bit result
/// (return) — the same size either way.
std::uint64_t payload_bits(std::size_t ops, unsigned width) {
  return static_cast<std::uint64_t>(ops) * 2u * width;
}

}  // namespace

ClusterConfig ClusterConfig::from_chip(const core::ApimChip& chip,
                                       std::size_t chips) {
  ClusterConfig cfg;
  cfg.chips = chips == 0 ? 1 : chips;
  cfg.server = serve::ServerConfig::from_chip(chip);
  cfg.interconnect = InterconnectConfig::from_chip(chip);
  return cfg;
}

struct Cluster::Impl {
  Impl(ClusterConfig c, serve::QosTable t)
      : cfg(normalize(std::move(c))),
        table(std::move(t)),
        placement(cfg.shards, cfg.chips, cfg.seed, cfg.placement_overrides),
        rebalancer(cfg.shards, cfg.rebalance) {
    // The cluster fills its half of a shared trace header; the first chip
    // fills the serve half (one replicated ServerConfig across chips).
    if (cfg.trace != nullptr) {
      serve::trace::Meta& m = cfg.trace->meta;
      m.chips = cfg.chips;
      m.shards = cfg.shards;
      m.topology = cfg.topology == Topology::kStar ? 0 : 1;
      m.hop_latency_cycles = cfg.interconnect.hop_latency_cycles;
      m.link_bits = cfg.interconnect.link_bits;
      m.pj_per_bit_hop = cfg.interconnect.pj_per_bit_hop;
      m.shard_bits = cfg.shard_bits;
    }
    servers.reserve(cfg.chips);
    for (std::size_t chip = 0; chip < cfg.chips; ++chip) {
      serve::ServerConfig sc = cfg.server;
      const auto it = cfg.chip_fault_schedules.find(chip);
      if (it != cfg.chip_fault_schedules.end())
        sc.health.fault_schedule = it->second;
      sc.trace = cfg.trace;
      sc.trace_chip = static_cast<std::int32_t>(chip);
      servers.push_back(std::make_unique<serve::Server>(sc, table));
    }
  }

  static ClusterConfig normalize(ClusterConfig c) {
    if (c.chips == 0) c.chips = 1;
    if (c.shards == 0) c.shards = 1;
    return c;
  }

  // -- Per-request routing record ------------------------------------------
  struct RouteInfo {
    std::size_t shard = 0;
    std::size_t addressed = 0;
    std::size_t exec = 0;
    bool cross = false;
    bool held = false;
    std::uint64_t fwd_hops = 0;
    util::Cycles edge_arrival = 0;
    double energy_pj = 0.0;
    std::size_t ops = 0;
    unsigned width = 0;
    std::uint64_t id = 0;  ///< Chip-local request id on `exec`.
  };

  struct ActiveMigration {
    std::size_t shard = 0;
    std::size_t from = 0;
    std::size_t to = 0;
    util::Cycles done_at = 0;
    util::Cycles latency = 0;
    bool evacuation = false;
  };

  /// Post-migration stale placement view: clients address `old_chip`
  /// until `until`.
  struct StaleView {
    std::size_t old_chip = 0;
    util::Cycles until = 0;
  };

  /// Stage request `idx` on its shard's current home chip, charging the
  /// forward leg when the addressed chip differs. `base` is the earliest
  /// cycle the request can leave the addressed chip (its arrival, or the
  /// commit time of the migration that held it).
  /// Cluster-scope trace event (chip = -1), stamped at the loop clock.
  [[nodiscard]] serve::trace::Event cev(serve::trace::EventKind kind,
                                        util::Cycles at) const {
    serve::trace::Event e;
    e.kind = kind;
    e.at = at;
    e.chip = -1;
    return e;
  }

  void stage(std::size_t idx, util::Cycles base) {
    RouteInfo& ri = routes[idx];
    serve::Request r = std::move(reqs[idx]);
    ri.exec = placement.chip_for(ri.shard);
    if (ri.addressed != ri.exec) {
      const std::uint64_t h =
          hop_count(cfg.topology, cfg.chips, ri.addressed, ri.exec);
      const std::uint64_t bits = payload_bits(ri.ops, ri.width);
      const util::Cycles delay = route_cycles(cfg.interconnect, h, bits);
      const double pj = route_energy_pj(cfg.interconnect, h, bits);
      r.arrival = base + delay;
      ri.cross = true;
      ri.fwd_hops = h;
      ri.energy_pj += pj;
      ++cross_chip_requests;
      cross_chip_ops += ri.ops;
      forward_hops += h;
      interconnect_cycles += delay;
      interconnect_energy_pj += pj;
      if (cfg.trace != nullptr) {
        serve::trace::Event e =
            cev(serve::trace::EventKind::kForward, trace_now);
        e.req = static_cast<std::int64_t>(idx);
        e.app = r.app;
        e.shard = static_cast<std::int64_t>(ri.shard);
        e.from = static_cast<std::int64_t>(ri.addressed);
        e.to = static_cast<std::int64_t>(ri.exec);
        e.hops = h;
        e.bits = bits;
        e.cycles = delay;
        e.energy_pj = pj;
        cfg.trace->record(std::move(e));
      }
    } else {
      r.arrival = base;
    }
    ri.id = servers[ri.exec]->stage_request(std::move(r));
  }

  /// Route one arriving request: hold it when its shard is mid-migration,
  /// otherwise stage it (forwarding if the client's view is stale).
  void admit(std::size_t idx) {
    serve::Request& r = reqs[idx];
    RouteInfo& ri = routes[idx];
    ri.shard = Placement::shard_of(r.app, cfg.shards);
    ri.ops = r.operands.size();
    ri.width = r.width;
    ri.edge_arrival = r.arrival;
    rebalancer.note_admitted(ri.shard, ri.ops);
    ++requests;
    total_ops += ri.ops;
    ri.addressed = placement.chip_for(ri.shard);
    const std::optional<StaleView>& sv = stale[ri.shard];
    if (sv && r.arrival < sv->until) ri.addressed = sv->old_chip;
    if (cfg.trace != nullptr) {
      serve::trace::Event e =
          cev(serve::trace::EventKind::kClusterAdmit, trace_now);
      e.req = static_cast<std::int64_t>(idx);
      e.app = r.app;
      e.ops = ri.ops;
      e.width = ri.width;
      e.shard = static_cast<std::int64_t>(ri.shard);
      e.to = static_cast<std::int64_t>(ri.addressed);
      cfg.trace->record(std::move(e));
    }
    if (shard_locked[ri.shard]) {
      ri.held = true;
      ++held_requests;
      held[ri.shard].push_back(idx);
      return;
    }
    stage(idx, r.arrival);
  }

  /// Commit a migration: rewrite placement, open the stale-view window,
  /// and release requests the move held (they forward old -> new home).
  void commit(const ActiveMigration& m) {
    placement.move(m.shard, m.to);
    shard_locked[m.shard] = false;
    stale[m.shard] = StaleView{m.from, m.done_at + cfg.placement_propagation};
    if (m.evacuation) {
      ++evacuations;
    } else {
      ++migrations;
    }
    migration_cycles += m.latency;
    const std::uint64_t h = hop_count(cfg.topology, cfg.chips, m.from, m.to);
    migration_energy_pj += route_energy_pj(cfg.interconnect, h, cfg.shard_bits);
    interconnect_energy_pj +=
        route_energy_pj(cfg.interconnect, h, cfg.shard_bits);
    if (cfg.trace != nullptr) {
      // Commits at one instant are processed shard-ascending; the trace
      // records them in that order (the commit-order invariant).
      serve::trace::Event e =
          cev(serve::trace::EventKind::kMigrationCommit, trace_now);
      e.shard = static_cast<std::int64_t>(m.shard);
      e.from = static_cast<std::int64_t>(m.from);
      e.to = static_cast<std::int64_t>(m.to);
      e.hops = h;
      e.bits = cfg.shard_bits;
      e.cycles = m.latency;
      e.energy_pj = route_energy_pj(cfg.interconnect, h, cfg.shard_bits);
      cfg.trace->record(std::move(e));
    }
    for (const std::size_t idx : held[m.shard]) stage(idx, m.done_at);
    held[m.shard].clear();
  }

  /// One rebalance round at `tick_at`: poll chip health, let the
  /// rebalancer decide, start the migrations it picked.
  void run_tick(util::Cycles tick_at) {
    std::vector<bool> serving(cfg.chips);
    for (std::size_t c = 0; c < cfg.chips; ++c)
      serving[c] = servers[c]->serving_domain_count() > 0;
    const std::vector<MigrationDecision> decisions =
        rebalancer.tick(placement.assignment(), serving, shard_locked);
    for (const MigrationDecision& d : decisions) {
      const std::uint64_t h =
          hop_count(cfg.topology, cfg.chips, d.from, d.to);
      const util::Cycles lat =
          route_cycles(cfg.interconnect, h, cfg.shard_bits);
      active.push_back(
          {d.shard, d.from, d.to, tick_at + lat, lat, d.evacuation});
      shard_locked[d.shard] = true;
      if (cfg.trace != nullptr) {
        serve::trace::Event e =
            cev(serve::trace::EventKind::kMigrationStart, trace_now);
        e.shard = static_cast<std::int64_t>(d.shard);
        e.from = static_cast<std::int64_t>(d.from);
        e.to = static_cast<std::int64_t>(d.to);
        e.hops = h;
        e.bits = cfg.shard_bits;
        e.cycles = lat;
        cfg.trace->record(std::move(e));
      }
    }
  }

  ClusterConfig cfg;
  serve::QosTable table;
  Placement placement;
  Rebalancer rebalancer;
  std::vector<std::unique_ptr<serve::Server>> servers;

  // -- Run state ------------------------------------------------------------
  bool ran = false;
  /// Global loop clock: cluster-scope trace events are stamped with it so
  /// the cluster event stream is monotone (response legs, emitted in trace
  /// order after the loop, are the documented exception).
  util::Cycles trace_now = 0;
  std::vector<serve::Request> reqs;
  std::vector<RouteInfo> routes;
  std::vector<bool> shard_locked;
  std::vector<std::optional<StaleView>> stale;
  std::vector<std::vector<std::size_t>> held;
  std::vector<ActiveMigration> active;

  // -- Cluster counters ------------------------------------------------------
  std::uint64_t requests = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t cross_chip_requests = 0;
  std::uint64_t cross_chip_ops = 0;
  std::uint64_t held_requests = 0;
  std::uint64_t forward_hops = 0;
  util::Cycles interconnect_cycles = 0;
  double interconnect_energy_pj = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t evacuations = 0;
  util::Cycles migration_cycles = 0;
  double migration_energy_pj = 0.0;
};

Cluster::Cluster(ClusterConfig config, serve::QosTable table)
    : impl_(std::make_unique<Impl>(std::move(config), std::move(table))) {}

Cluster::~Cluster() = default;

std::vector<ClusterResponse> Cluster::run_trace(
    std::vector<serve::Request> trace) {
  Impl& im = *impl_;
  assert(!im.ran);
  im.ran = true;

  im.reqs = std::move(trace);
  const std::size_t n = im.reqs.size();
  im.routes.assign(n, Impl::RouteInfo{});
  im.shard_locked.assign(im.cfg.shards, false);
  im.stale.assign(im.cfg.shards, std::nullopt);
  im.held.assign(im.cfg.shards, {});

  // Admission order: by arrival, input order breaking ties (merged traces
  // arrive pre-sorted, making this the identity permutation).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return im.reqs[a].arrival < im.reqs[b].arrival;
                   });

  const bool ticks_enabled =
      im.cfg.chips >= 2 && im.cfg.rebalance.interval > 0;
  util::Cycles next_tick = im.cfg.rebalance.interval;
  std::size_t oi = 0;

  // Global discrete-event loop: advance to the earliest pending event —
  // trace arrival, migration commit, rebalance tick or any chip's next
  // internal event — process cluster-level events at that instant in a
  // fixed order (commits by shard, ticks, arrivals in trace order), then
  // step every chip to it.
  for (;;) {
    std::optional<util::Cycles> t;
    const auto consider = [&](util::Cycles c) {
      if (!t || c < *t) t = c;
    };
    if (oi < n) consider(im.reqs[order[oi]].arrival);
    for (const Impl::ActiveMigration& m : im.active) consider(m.done_at);
    bool chip_events = false;
    for (const auto& s : im.servers) {
      if (const std::optional<util::Cycles> at = s->next_event_at()) {
        consider(*at);
        chip_events = true;
      }
    }
    // The tick timer only runs alongside real work; otherwise a drained
    // cluster would rebalance forever.
    if (ticks_enabled &&
        (oi < n || !im.active.empty() || chip_events)) {
      consider(next_tick);
    }
    if (!t) break;
    const util::Cycles now = *t;
    im.trace_now = std::max(im.trace_now, now);

    std::vector<Impl::ActiveMigration> due;
    for (std::size_t i = 0; i < im.active.size();) {
      if (im.active[i].done_at <= now) {
        due.push_back(im.active[i]);
        im.active.erase(im.active.begin() +
                        static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    std::stable_sort(due.begin(), due.end(),
                     [](const Impl::ActiveMigration& a,
                        const Impl::ActiveMigration& b) {
                       return std::make_pair(a.done_at, a.shard) <
                              std::make_pair(b.done_at, b.shard);
                     });
    for (const Impl::ActiveMigration& m : due) im.commit(m);

    while (ticks_enabled && next_tick <= now) {
      im.run_tick(next_tick);
      next_tick += im.cfg.rebalance.interval;
    }

    while (oi < n && im.reqs[order[oi]].arrival <= now) im.admit(order[oi++]);

    for (const auto& s : im.servers) s->step_until(now);
  }

  // Assemble edge responses: chip-local response plus the return leg for
  // forwarded results (only kOk carries a payload back; rejections are
  // control-plane notifications and charge nothing).
  std::vector<ClusterResponse> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Impl::RouteInfo& ri = im.routes[i];
    ClusterResponse cr;
    cr.resp = im.servers[ri.exec]->response(ri.id);
    cr.shard = ri.shard;
    cr.addressed_chip = ri.addressed;
    cr.exec_chip = ri.exec;
    cr.cross_chip = ri.cross;
    cr.held_by_migration = ri.held;
    cr.hops = ri.fwd_hops;
    cr.edge_arrival = ri.edge_arrival;
    cr.edge_completion = cr.resp.completion;
    cr.interconnect_energy_pj = ri.energy_pj;
    if (ri.cross && cr.resp.status == serve::RequestStatus::kOk) {
      const std::uint64_t h =
          hop_count(im.cfg.topology, im.cfg.chips, ri.exec, ri.addressed);
      const std::uint64_t bits = payload_bits(ri.ops, ri.width);
      const util::Cycles delay =
          route_cycles(im.cfg.interconnect, h, bits);
      const double pj = route_energy_pj(im.cfg.interconnect, h, bits);
      cr.hops += h;
      cr.edge_completion += delay;
      cr.interconnect_energy_pj += pj;
      im.forward_hops += h;
      im.interconnect_cycles += delay;
      im.interconnect_energy_pj += pj;
      if (im.cfg.trace != nullptr) {
        // Response legs are assembled after the event loop, in trace
        // order, stamped with the edge completion they delayed — the one
        // documented exception to cluster-stream clock monotonicity.
        serve::trace::Event e = im.cev(
            serve::trace::EventKind::kResponseLeg, cr.edge_completion);
        e.req = static_cast<std::int64_t>(i);
        e.shard = static_cast<std::int64_t>(ri.shard);
        e.from = static_cast<std::int64_t>(ri.exec);
        e.to = static_cast<std::int64_t>(ri.addressed);
        e.hops = h;
        e.bits = bits;
        e.cycles = delay;
        e.energy_pj = pj;
        im.cfg.trace->record(std::move(e));
      }
    }
    out.push_back(std::move(cr));
  }
  return out;
}

ClusterSnapshot Cluster::snapshot() const {
  const Impl& im = *impl_;
  ClusterSnapshot s;
  s.chips.reserve(im.cfg.chips);
  for (const auto& srv : im.servers) s.chips.push_back(srv->snapshot());

  s.requests = im.requests;
  s.total_ops = im.total_ops;
  s.cross_chip_requests = im.cross_chip_requests;
  s.cross_chip_ops = im.cross_chip_ops;
  s.held_requests = im.held_requests;
  s.cross_shard_traffic_share =
      im.total_ops == 0 ? 0.0
                        : static_cast<double>(im.cross_chip_ops) /
                              static_cast<double>(im.total_ops);
  s.forward_hops = im.forward_hops;
  s.interconnect_cycles = im.interconnect_cycles;
  s.interconnect_energy_pj = im.interconnect_energy_pj;
  s.migrations = im.migrations;
  s.evacuations = im.evacuations;
  s.migration_cycles = im.migration_cycles;
  s.migration_energy_pj = im.migration_energy_pj;

  // Jain over per-chip tenant ops served (scrub passes excluded): how
  // evenly the cluster spread real work across chips.
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const serve::MetricsSnapshot& chip : s.chips) {
    double ops = 0.0;
    for (const auto& [app, counts] : chip.per_app) {
      if (app == serve::health::kScrubTenant) continue;
      ops += static_cast<double>(counts.ops_served);
    }
    sum += ops;
    sum_sq += ops * ops;
  }
  s.chip_jain = sum_sq == 0.0
                    ? 1.0
                    : (sum * sum) /
                          (static_cast<double>(im.cfg.chips) * sum_sq);

  s.placement = im.placement.assignment();
  s.shard_load = im.rebalancer.load();
  return s;
}

const ClusterConfig& Cluster::config() const noexcept { return impl_->cfg; }

const Placement& Cluster::placement() const noexcept {
  return impl_->placement;
}

std::size_t Cluster::shard_of(const std::string& app) const {
  return Placement::shard_of(app, impl_->cfg.shards);
}

}  // namespace apim::cluster
