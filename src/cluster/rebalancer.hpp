// Hot-shard rebalancing in virtual time.
//
// The router reports every admitted request's (shard, ops) here; the
// rebalancer keeps a per-shard EWMA of ops per rebalance interval and, at
// each tick, decides migrations:
//
//  * Evacuations — a shard whose home chip has left service (every fault
//    domain quarantined, serve/health.hpp) must move regardless of load.
//    This is how the health layer's quarantine composes with placement.
//  * Hot-shard migrations — when the hottest serving chip carries more
//    than `imbalance_factor` times the mean serving-chip load, its
//    hottest movable shard migrates to the least-loaded serving chip,
//    provided the move strictly reduces the pairwise imbalance (no
//    ping-pong) and the shard is not in its post-migration cooldown.
//
// Modeled on the hot-tree migration in plasgroup/bp-forest: load is
// tracked continuously, decisions happen at coarse ticks, and a migration
// is worth it only when the skew exceeds its cost. All decisions are pure
// functions of admitted traffic and tick order — deterministic for fixed
// seeds and independent of host thread count. Ties break toward the
// lowest shard/chip id.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace apim::cluster {

struct RebalanceConfig {
  /// Master switch for load-driven migration: off = static placement (the
  /// bench baseline). Evacuations off quarantined chips still run — they
  /// are forced by health, not load.
  bool enabled = true;
  /// Virtual cycles between rebalance decisions.
  util::Cycles interval = 25000;
  /// EWMA smoothing: weight of the newest interval's ops count.
  double ewma_alpha = 0.4;
  /// Migrate only when max chip load exceeds this multiple of the mean
  /// serving-chip load.
  double imbalance_factor = 1.25;
  /// Shards below this EWMA (ops/interval) never migrate — noise floor.
  double min_shard_load = 1.0;
  /// Ticks a shard sits out after migrating (anti-ping-pong hysteresis).
  std::uint32_t cooldown_ticks = 2;
  /// Hot-shard migrations started per tick (evacuations are exempt: a
  /// dead chip's shards all leave at once).
  std::size_t max_migrations_per_tick = 1;
};

struct MigrationDecision {
  std::size_t shard = 0;
  std::size_t from = 0;
  std::size_t to = 0;
  /// True when forced by the home chip leaving service.
  bool evacuation = false;
};

class Rebalancer {
 public:
  Rebalancer(std::size_t shards, RebalanceConfig config);

  /// Called by the router for every admitted request.
  void note_admitted(std::size_t shard, std::size_t ops);

  /// One rebalance decision round. `home` is the live shard assignment,
  /// `chip_serving[c]` whether chip c can serve at all, `shard_locked[s]`
  /// whether shard s is already mid-migration (never re-picked).
  [[nodiscard]] std::vector<MigrationDecision> tick(
      const std::vector<std::size_t>& home,
      const std::vector<bool>& chip_serving,
      const std::vector<bool>& shard_locked);

  /// Per-shard load EWMA (ops per interval), indexed by shard.
  [[nodiscard]] const std::vector<double>& load() const noexcept {
    return ewma_;
  }

  [[nodiscard]] const RebalanceConfig& config() const noexcept {
    return cfg_;
  }

 private:
  RebalanceConfig cfg_;
  std::vector<double> ewma_;
  std::vector<std::uint64_t> window_;   ///< Ops admitted since last tick.
  std::vector<std::uint32_t> cooldown_;  ///< Remaining sit-out ticks.
};

}  // namespace apim::cluster
