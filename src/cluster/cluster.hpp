// Multi-chip sharded cluster: N serve::Servers behind one router.
//
// One ApimDevice is one chip; serving millions of users takes a cluster.
// A Cluster owns `chips` servers (each a full serve::Server — DRR fair
// share, dynamic batching, QoS escalation and the fault-domain health
// layer all intact), a Placement mapping tenants -> shards -> chips
// (placement.hpp), a router that admits requests at the cluster edge and
// charges the inter-chip interconnect (topology.hpp) for anything landing
// off its data's home chip, and a Rebalancer (rebalancer.hpp) migrating
// hot shards in virtual time.
//
// Coordination is a discrete-event loop over virtual time, layered on the
// servers' incremental stepping API (serve::Server::step_until): each
// round picks the global minimum among pending trace arrivals, migration
// completions, the next rebalance tick and every chip's next internal
// event, processes cluster-level events at that instant in a fixed order
// (migration completions by shard id, then rebalance ticks, then arrivals
// in trace order), and advances every chip to it. Driving one chip this
// way is bit-identical to serve::Server::run_trace — with a single chip
// every request is home, no interconnect is charged and no migration ever
// fires, so the cluster degenerates to today's server exactly.
//
// Routing model: a client holds a (briefly stale) placement view and
// sends each request directly to the chip it believes owns the shard.
//  * Home hit — the common case — costs nothing extra.
//  * While a shard is mid-migration its requests are held at the old home
//    and forwarded to the new home when the move commits (the shard
//    blocks briefly; migration is not free).
//  * For `placement_propagation` cycles after a move commits, clients
//    still address the old home, which forwards — so every migration also
//    pays a tail of cross-chip request traffic.
// Forwarded requests and responses, and shard moves themselves, pay
// route_cycles/route_energy_pj; the counters surface in ClusterSnapshot
// (cross-shard traffic share, interconnect energy, migration totals,
// cluster-wide Jain index over per-chip served ops).
//
// Determinism contract: placement, routing and migration are pure
// functions of the trace, the config and the seed, computed in virtual
// time. Host threads only parallelize arithmetic inside each chip's
// dispatches, so responses and every snapshot field are bit-identical for
// any host thread count — the same discipline as serve::Server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cluster/placement.hpp"
#include "cluster/rebalancer.hpp"
#include "cluster/topology.hpp"
#include "serve/metrics.hpp"
#include "serve/qos_table.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "util/units.hpp"

namespace apim::cluster {

struct ClusterConfig {
  std::size_t chips = 4;
  /// Placement granularity: tenants hash onto this many shards. More
  /// shards = finer rebalancing moves.
  std::size_t shards = 64;

  Topology topology = Topology::kStar;
  InterconnectConfig interconnect{};
  RebalanceConfig rebalance{};

  /// Pin shard -> chip, overriding the consistent-hash default.
  std::map<std::size_t, std::size_t> placement_overrides;

  /// Per-chip serving configuration (replicated across chips).
  serve::ServerConfig server{};
  /// Per-chip health fault schedules for tests/benches that fault
  /// specific chips; a present entry replaces server.health.fault_schedule
  /// on that chip only.
  std::map<std::size_t, std::vector<serve::health::DomainFaultEvent>>
      chip_fault_schedules;

  /// Cycles after a migration commits during which clients still address
  /// the old home chip (stale placement view) and pay forwarding.
  util::Cycles placement_propagation = 4000;
  /// Payload bits moved per shard migration.
  std::uint64_t shard_bits = 1u << 15;

  /// Seeds the consistent-hash ring.
  std::uint64_t seed = 2017;

  /// Optional structured event stream (serve/trace.hpp), shared by the
  /// cluster loop (chip = -1 events: routing, migrations, interconnect
  /// legs) and every chip's server (chip = i events). nullptr disables
  /// tracing with zero behavior change.
  serve::trace::EventLog* trace = nullptr;

  /// Cluster of N full chips: per-chip serving resources from the chip
  /// model, interconnect beat width from its off-chip link.
  [[nodiscard]] static ClusterConfig from_chip(const core::ApimChip& chip,
                                               std::size_t chips);
};

/// A chip-local serve::Response plus the routing that wrapped it. `resp`
/// is byte-for-byte what the executing chip's server produced (arrival
/// adjusted for forwarding delay when the request crossed chips).
struct ClusterResponse {
  serve::Response resp;
  std::size_t shard = 0;
  /// Chip the client addressed (its placement view at arrival).
  std::size_t addressed_chip = 0;
  /// Chip that executed the request (its home when it was admitted).
  std::size_t exec_chip = 0;
  /// True when the request paid interconnect (forwarded or held by a
  /// migration).
  bool cross_chip = false;
  /// True when a mid-migration hold delayed the request.
  bool held_by_migration = false;
  /// Forward + return hops paid.
  std::uint64_t hops = 0;
  /// Arrival at the cluster edge (resp.arrival includes forward delay).
  util::Cycles edge_arrival = 0;
  /// resp.completion plus the return-path delay to the addressed chip.
  util::Cycles edge_completion = 0;
  /// Interconnect energy charged to this request (forward + return).
  double interconnect_energy_pj = 0.0;

  [[nodiscard]] util::Cycles edge_latency_cycles() const noexcept {
    return edge_completion - edge_arrival;
  }
};

struct ClusterSnapshot {
  /// Per-chip serve metrics, indexed by chip.
  std::vector<serve::MetricsSnapshot> chips;

  std::uint64_t requests = 0;
  std::uint64_t total_ops = 0;
  /// Requests/ops that paid interconnect (forwarded or migration-held).
  std::uint64_t cross_chip_requests = 0;
  std::uint64_t cross_chip_ops = 0;
  std::uint64_t held_requests = 0;
  /// cross_chip_ops / total_ops.
  double cross_shard_traffic_share = 0.0;

  /// Request/response forwarding totals.
  std::uint64_t forward_hops = 0;
  util::Cycles interconnect_cycles = 0;
  double interconnect_energy_pj = 0.0;

  /// Shard migrations: load-driven moves and health evacuations.
  std::uint64_t migrations = 0;
  std::uint64_t evacuations = 0;
  util::Cycles migration_cycles = 0;
  double migration_energy_pj = 0.0;

  /// Jain fairness of served ops across chips: 1.0 = perfectly even,
  /// 1/chips = one chip took everything.
  double chip_jain = 0.0;

  /// Final shard assignment and per-shard load EWMA, indexed by shard.
  std::vector<std::size_t> placement;
  std::vector<double> shard_load;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config, serve::QosTable table = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Execute an open-loop trace (arrival cycles set) to completion across
  /// the cluster. Returns one response per request, in trace order.
  /// Bit-identical for every host thread count; deterministic for a fixed
  /// config + trace. One run per Cluster instance.
  std::vector<ClusterResponse> run_trace(std::vector<serve::Request> trace);

  [[nodiscard]] ClusterSnapshot snapshot() const;

  [[nodiscard]] const ClusterConfig& config() const noexcept;

  /// Live shard -> chip assignment (initial until run_trace migrates).
  [[nodiscard]] const Placement& placement() const noexcept;

  /// The shard a tenant hashes to under this cluster's shard count.
  [[nodiscard]] std::size_t shard_of(const std::string& app) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace apim::cluster
