#include "cluster/topology.hpp"

#include <cassert>
#include <cstdint>

namespace apim::cluster {

InterconnectConfig InterconnectConfig::from_chip(const core::ApimChip& chip) {
  InterconnectConfig cfg;
  cfg.link_bits = chip.off_chip_link_bits();
  return cfg;
}

namespace {

/// Smallest side length whose square grid holds `chips` nodes.
std::size_t mesh_side(std::size_t chips) {
  std::size_t side = 1;
  while (side * side < chips) ++side;
  return side;
}

}  // namespace

std::uint64_t hop_count(Topology topology, std::size_t chips, std::size_t a,
                        std::size_t b) {
  assert(a < chips && b < chips);
  if (a == b) return 0;
  switch (topology) {
    case Topology::kStar:
      return 2;  // a -> switch -> b.
    case Topology::kMesh2D: {
      const std::size_t side = mesh_side(chips);
      const std::size_t ax = a % side;
      const std::size_t ay = a / side;
      const std::size_t bx = b % side;
      const std::size_t by = b / side;
      const std::size_t dx = ax > bx ? ax - bx : bx - ax;
      const std::size_t dy = ay > by ? ay - by : by - ay;
      return static_cast<std::uint64_t>(dx + dy);
    }
  }
  return 2;
}

util::Cycles route_cycles(const InterconnectConfig& cfg, std::uint64_t hops,
                          std::uint64_t bits) {
  if (hops == 0) return 0;
  const std::uint64_t link = cfg.link_bits == 0 ? 1 : cfg.link_bits;
  const std::uint64_t beats = (bits + link - 1) / link;
  return hops * (cfg.hop_latency_cycles + beats);
}

double route_energy_pj(const InterconnectConfig& cfg, std::uint64_t hops,
                       std::uint64_t bits) {
  return static_cast<double>(hops) * static_cast<double>(bits) *
         cfg.pj_per_bit_hop;
}

}  // namespace apim::cluster
