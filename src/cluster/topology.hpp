// Inter-chip interconnect topology and cost model.
//
// The paper's intra-tile interconnect (Figure 3(a)) is a configurable
// block-to-block crossbar link whose cost magic::MagicEngine already
// charges per row moved. A cluster of chips generalizes the same idea one
// level up: chips are nodes on a package/board fabric, and any request or
// shard that crosses chips pays per-hop latency plus per-bit energy. Two
// topologies cover the interesting regimes: a star (every chip one hop
// from a central switch — uniform two-hop chip-to-chip distance, models a
// host-attached multi-drop board like the PIM-base host driver) and a 2D
// mesh (distance grows with Manhattan separation, models a tiled package).
//
// The model is deliberately simple and fully deterministic: no contention,
// no queuing on links. Forwarding cost in cycles is
//   hops * (hop_latency_cycles + ceil(bits / link_bits))
// (per-hop switch traversal plus store-and-forward serialization of the
// payload over a link_bits-wide link), and energy is
//   hops * bits * pj_per_bit_hop.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/chip.hpp"
#include "util/units.hpp"

namespace apim::cluster {

enum class Topology : std::uint8_t {
  kStar,    ///< All chips hang off one switch: a != b is always 2 hops.
  kMesh2D,  ///< Chips tiled on a ceil(sqrt(N)) grid; Manhattan distance.
};

struct InterconnectConfig {
  /// Switch/router traversal latency charged per hop.
  util::Cycles hop_latency_cycles = 24;
  /// Link width in bits: one serialization beat moves this many bits.
  std::size_t link_bits = 128;
  /// Energy per bit per hop (SerDes + wire). Order-of-magnitude typical
  /// for short-reach chip-to-chip links; dwarfs the sub-pJ MAGIC ops, so
  /// staying on the home chip matters.
  double pj_per_bit_hop = 2.0;

  /// Defaults derived from a chip: the off-chip beat carries one crossbar
  /// row, matching the intra-tile interconnect generalized off chip.
  [[nodiscard]] static InterconnectConfig from_chip(
      const core::ApimChip& chip);
};

/// Hop count between chips `a` and `b` (0 when equal) among `chips` nodes.
[[nodiscard]] std::uint64_t hop_count(Topology topology, std::size_t chips,
                                      std::size_t a, std::size_t b);

/// Cycles to move `bits` over `hops` hops (0 when hops == 0).
[[nodiscard]] util::Cycles route_cycles(const InterconnectConfig& cfg,
                                        std::uint64_t hops,
                                        std::uint64_t bits);

/// Energy in pJ to move `bits` over `hops` hops.
[[nodiscard]] double route_energy_pj(const InterconnectConfig& cfg,
                                     std::uint64_t hops, std::uint64_t bits);

}  // namespace apim::cluster
