// Runtime trace verifier: replays a serve/cluster event log against the
// engines' formal invariants.
//
// The serving engine (serve/server.hpp) and the cluster router
// (cluster/cluster.hpp) optionally emit a structured event stream
// (serve/trace.hpp). `check_serving_trace` replays that stream through
// independent re-implementations of the engine contracts and reports every
// violation as an analysis::Diagnostic (pc = event index in the log):
//
//   trace-overflow       The log dropped events (capacity hit): the replay
//                        is unsound, reported as an error up front. End-of-
//                        log conservation checks are skipped on a truncated
//                        prefix.
//   clock-regression     Virtual timestamps must be non-decreasing per
//                        emitter (each chip's engine clock, and the cluster
//                        loop clock for chip = -1 events). Response legs
//                        are assembled after the cluster loop and are the
//                        documented exemption.
//   request-causality    Per-request lifecycle FSM: admit -> seal ->
//                        dispatch -> terminal, with escalation/relocation
//                        arcs back to the queue. Any event on a finalized
//                        request, or a phase skip (dispatch without seal,
//                        serve without dispatch), is an error.
//   request-conservation Every admitted request reaches exactly one
//                        terminal event (serve/reject/expire/invalid);
//                        terminals without admission are only legal for
//                        rejections and invalid requests (turned away at
//                        the door).
//   batch-homogeneity    Sealed and dispatched batches are same-shape: the
//                        batch's (op, width, relax, policy) must match
//                        every member's admitted shape (escalation resets
//                        a member's relax; the verifier tracks it).
//   admission-bound      An admit event must respect the effective queue
//                        capacity it reports (depth <= capacity).
//   drr-credit           The deficit round-robin credit ledger balances:
//                        grants credit quantum x weight, spends never
//                        exceed the balance, refunds restore it, and each
//                        event's declared deficit matches the replay.
//   drr-share-bound      Weighted stream share: a dispatch that puts a
//                        tenant at/over its cap (max(1, floor(streams *
//                        w / total_active_w))) is only legal when no other
//                        tenant could use the stream (spill-over) or the
//                        tenant holds all queued work.
//   stream-overlap       A stream/fault domain holds one dispatch at a
//                        time: dispatch on a busy domain, or completion on
//                        an idle one, is an error.
//   health-fsm           Fault-domain state machine legality: transitions
//                        limited to healthy->suspect->quarantined and the
//                        repair arcs back; no dispatch or online scrub on
//                        a quarantined domain; offline repairs only there.
//   interconnect-charge  Every forward/response/migration leg's hops,
//                        cycles and energy are recomputed from the logged
//                        topology via the cost law
//                        hops * (hop_latency + ceil(bits / link_bits)) and
//                        hops * bits * pj_per_bit_hop; any mismatch
//                        (under- or over-charge) is an error.
//   commit-order         Migration lifecycle: starts lock a shard, exactly
//                        one commit (same route) unlocks it, and commits
//                        at one instant are processed shard-ascending.
//
// The replay needs no access to the live engine objects: the log header
// (trace::Meta) carries the configuration the bounds derive from. Checks
// whose parameters are missing from the header (e.g. interconnect charges
// without cluster meta) are skipped rather than guessed.
#pragma once

#include <string>

#include "analysis/diagnostics.hpp"
#include "serve/trace.hpp"

namespace apim::analysis {

/// Replay `log` against every invariant above. Diagnostics carry the
/// stable rule ids listed in the header comment; pc is the 0-based event
/// index (-1 for whole-log findings).
[[nodiscard]] Report check_serving_trace(const serve::trace::EventLog& log);

/// In-process hook for tests and benches: empty string when the log is
/// clean, otherwise the formatted report (one finding per line).
[[nodiscard]] std::string verify_trace(const serve::trace::EventLog& log);

}  // namespace apim::analysis
