// Static lint for assembled APIM ISA programs.
//
// Dataflow analysis over the Program's control-flow graph, run before a
// kernel ever touches the interpreter. The rule catalog (ids are stable;
// see docs/ARCHITECTURE.md "Static analysis"):
//
//   branch-target     error    jump/branch index outside [0, size)
//   fall-off-end      error    a reachable path runs past the last
//                              instruction without halt
//   no-halt-path      error    no halt is reachable from the entry
//   infinite-loop     warning  a reachable instruction cannot reach halt
//   unreachable       warning  instruction reachable on no path
//   use-before-def    error    register read before any write on some
//                              path (r0 excepted: hard-wired zero)
//   r0-write          warning  write to r0 is silently dropped
//   mem-bounds        error    constant-derived load/store/vector address
//                              outside the data memory
//   vector-length     error    vadd/vmul element count <= 0
//   vector-overlap    error    [rD] range partially overlaps [rA]/[rB]
//                              (in-place, identical bases, is allowed)
//   setrelax-range    error    setrelax immediate outside 0..64
//   setmask-range     error    setmask immediate outside 0..32
//   empty-program     warning  no instructions
//
// Address rules use an intraprocedural constant propagation over the
// controller ops (load-imm / mov / addi / shl / shr); data ops and memory
// loads produce unknown values, so approximation never fools the checker.
// Registers start as the interpreter leaves them: constant zero.
#pragma once

#include <cstddef>

#include "analysis/diagnostics.hpp"
#include "isa/isa.hpp"

namespace apim::analysis {

struct LintOptions {
  /// Data-memory size in words for bounds checks; 0 = unknown (only
  /// negative constant addresses are flagged).
  std::size_t memory_words = 0;
};

/// Run every lint rule over `program`. Diagnostics carry the assembler
/// source line (program.source_lines) and the instruction index.
[[nodiscard]] Report lint_program(const isa::Program& program,
                                  const LintOptions& options = {});

}  // namespace apim::analysis
