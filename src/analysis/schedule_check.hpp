// Post-hoc verifier for MAGIC schedules, driven by row-resolved traces.
//
// A Tracer with cell events enabled records which cell every micro-op
// batch touched and when; this pass replays those events against the
// crossbar's resource rules, so a schedule bug that the cycle-accurate
// run silently survives (e.g. a forgotten init that happened to land on
// a cell still holding '1') becomes a hard diagnostic. Rule catalog
// (docs/ARCHITECTURE.md "Static analysis"):
//
//   trace-overflow      error    the trace dropped events; verification
//                                over a truncated trace is unsound
//   nor-without-init    error    NOR output cell not initialized to '1'
//                                since it was last evaluated
//   nor-on-written      warning  NOR output last set by a driver write —
//                                RON cannot be statically proven
//   uninit-read         error    evaluation/SA read of a cell that was
//                                never written and is not declared
//                                preloaded (operand rows, '0' references)
//   same-cycle-hazard   error    a cell is both read and written by the
//                                same NOR batch cycle (RAW/WAR)
//   duplicate-dst       error    two NORs of one batch share an output
//   quarantine-touch    error    any access to a quarantined scratch band
//   spare-touch         error    direct access to a physical spare row
//                                (spares are reached via remapping only)
//   scratch-leak        error    init/NOR output outside the declared
//                                scratch region (and outside preloaded
//                                rows)
//
// The companion check_cycle_claim pins trace-derived cycle counts to the
// closed-form latency model, turning model drift into a failing check
// instead of a quietly wrong CSV.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "crossbar/scratch_allocator.hpp"
#include "magic/trace.hpp"
#include "util/units.hpp"

namespace apim::analysis {

/// Half-open row range [row_begin, row_end) within one crossbar block.
struct RowRange {
  std::size_t block = 0;
  std::size_t row_begin = 0;
  std::size_t row_end = 0;

  [[nodiscard]] bool contains(const crossbar::CellAddr& a) const noexcept {
    return a.block == block && a.row >= row_begin && a.row < row_end;
  }
};

struct ScheduleCheckOptions {
  /// Rows assumed valid at trace start: operand rows loaded before
  /// tracing began and grounded '0' reference cells. Reads of anything
  /// else require a prior traced write.
  std::vector<RowRange> preloaded;
  /// When non-empty: the scratch region the schedule was granted. Any
  /// init / NOR output outside `scratch` and `preloaded` is a leak.
  std::vector<RowRange> scratch;
  /// Quarantined rows (e.g. BIST-failed scratch bands): no access at all.
  std::vector<RowRange> quarantined;
  /// Logical rows per block; a touch at row >= this addresses a physical
  /// spare directly, bypassing the remap layer. 0 disables the rule.
  std::size_t rows_per_block = 0;
};

/// Append allocator bands currently quarantined as RowRange entries for
/// `block` (convenience for wiring BIST results into the checker).
void append_quarantined_bands(const crossbar::RotatingScratchAllocator& alloc,
                              std::size_t block, std::vector<RowRange>& out);

/// Verify the crossbar resource rules over `trace`'s cell events.
[[nodiscard]] Report check_schedule(const magic::Tracer& trace,
                                    const ScheduleCheckOptions& options = {});

/// Cycle-accounting consistency: the trace's total cycle count must equal
/// the latency model's `claimed` figure for the operation named `what`
/// (e.g. serial_add_cycles(n) for a 12N+1 ripple add). A perturbed model
/// constant — or a schedule that drifted — fails here instead of skewing
/// result CSVs.
[[nodiscard]] Report check_cycle_claim(const magic::Tracer& trace,
                                       util::Cycles claimed,
                                       const std::string& what);

}  // namespace apim::analysis
