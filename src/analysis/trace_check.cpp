#include "analysis/trace_check.hpp"

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace apim::analysis {

namespace {

using serve::trace::Event;
using serve::trace::EventKind;
using serve::trace::EventLog;
using serve::trace::Meta;

// Fault-domain states, mirroring serve::health::DomainState. The verifier
// keeps its own copy so the replay stays an independent re-implementation
// of the contract rather than a call back into the engine.
constexpr std::uint8_t kHealthy = 0;
constexpr std::uint8_t kSuspect = 1;
constexpr std::uint8_t kQuarantined = 2;

const char* state_name(std::uint8_t s) {
  switch (s) {
    case kHealthy:
      return "healthy";
    case kSuspect:
      return "suspect";
    case kQuarantined:
      return "quarantined";
    default:
      return "unknown";
  }
}

/// Independent recomputation of the interconnect cost law
/// (cluster/topology.hpp): hop counts from the logged topology, latency
/// hops * (hop_latency + ceil(bits / link_bits)), energy
/// hops * bits * pj_per_bit_hop. Kept expression-identical so doubles
/// compare bit-exactly.
std::uint64_t expected_hops(const Meta& m, std::int64_t a, std::int64_t b) {
  if (a == b) return 0;
  if (m.topology == 0) return 2;  // Star: a -> switch -> b.
  std::size_t side = 1;
  while (side * side < m.chips) ++side;
  const auto ax = static_cast<std::size_t>(a) % side;
  const auto ay = static_cast<std::size_t>(a) / side;
  const auto bx = static_cast<std::size_t>(b) % side;
  const auto by = static_cast<std::size_t>(b) / side;
  return static_cast<std::uint64_t>((ax > bx ? ax - bx : bx - ax) +
                                    (ay > by ? ay - by : by - ay));
}

std::uint64_t expected_route_cycles(const Meta& m, std::uint64_t hops,
                                    std::uint64_t bits) {
  if (hops == 0) return 0;
  const std::uint64_t link = m.link_bits == 0 ? 1 : m.link_bits;
  const std::uint64_t beats = (bits + link - 1) / link;
  return hops * (m.hop_latency_cycles + beats);
}

double expected_route_pj(const Meta& m, std::uint64_t hops,
                         std::uint64_t bits) {
  return static_cast<double>(hops) * static_cast<double>(bits) *
         m.pj_per_bit_hop;
}

/// Per-request lifecycle phase (request-causality FSM).
enum class Phase : std::uint8_t {
  kNone,        ///< Never admitted.
  kQueued,      ///< Admitted (or re-queued), waiting to seal.
  kSealed,      ///< Member of a closed batch in the scheduler.
  kDispatched,  ///< Member of an in-flight dispatch.
  kDone,        ///< Finalized (terminal event seen).
};

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kNone:
      return "unadmitted";
    case Phase::kQueued:
      return "queued";
    case Phase::kSealed:
      return "sealed";
    case Phase::kDispatched:
      return "dispatched";
    case Phase::kDone:
      return "finalized";
  }
  return "unknown";
}

struct ReqState {
  Phase phase = Phase::kNone;
  bool admitted = false;
  // Admitted batch shape; relax tracks QoS escalation resets.
  std::uint8_t op = 0;
  unsigned width = 0;
  unsigned relax = 0;
  std::uint8_t policy = 0;
};

struct TenantShare {
  std::uint64_t queued = 0;     ///< Sealed batches waiting in the scheduler.
  std::uint64_t in_flight = 0;  ///< Dispatches holding a stream.
};

struct MigrationState {
  std::int64_t from = -1;
  std::int64_t to = -1;
  std::int64_t started_at_event = -1;
};

class Checker {
 public:
  explicit Checker(const EventLog& log) : log_(log), meta_(log.meta) {}

  Report run() {
    if (log_.overflowed()) {
      error("trace-overflow", -1,
            "event log hit capacity and dropped events; the replay below "
            "covers only the retained prefix",
            "raise the EventLog capacity for this run");
    }
    const std::vector<Event>& events = log_.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      idx_ = static_cast<std::int64_t>(i);
      check_event(events[i]);
    }
    if (!log_.overflowed()) finish();
    return std::move(report_);
  }

 private:
  void error(const char* rule, std::int64_t pc, std::string message,
             std::string hint = {}) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = rule;
    d.pc = pc;
    d.message = std::move(message);
    d.hint = std::move(hint);
    report_.add(std::move(d));
  }

  [[nodiscard]] std::uint64_t weight_of(const std::string& app) const {
    const auto it = meta_.weights.find(app);
    const std::uint64_t w =
        it == meta_.weights.end() ? meta_.default_weight : it->second;
    return w == 0 ? 1 : w;
  }

  [[nodiscard]] static std::string req_tag(const Event& e) {
    std::ostringstream os;
    os << "request " << e.req;
    if (e.chip >= 0) os << " on chip " << e.chip;
    return os.str();
  }

  // -- clock-regression ----------------------------------------------------

  void check_clock(const Event& e) {
    // Response legs are assembled after the cluster loop, stamped with the
    // edge completion they delayed — the one documented exemption.
    if (e.kind == EventKind::kResponseLeg) return;
    const auto it = last_at_.find(e.chip);
    if (it != last_at_.end() && e.at < it->second) {
      std::ostringstream os;
      os << "virtual clock regressed on "
         << (e.chip < 0 ? "the cluster stream" : "chip " + std::to_string(e.chip))
         << ": " << serve::trace::to_string(e.kind) << " at t=" << e.at
         << " after t=" << it->second;
      error("clock-regression", idx_, os.str());
    }
    if (it == last_at_.end() || e.at > it->second) last_at_[e.chip] = e.at;
  }

  // -- request-causality / batch-homogeneity -------------------------------

  ReqState& req(const Event& e, std::int64_t id) {
    return reqs_[{e.chip, id}];
  }

  void bad_phase(const Event& e, std::int64_t id, Phase got,
                 const char* wanted) {
    std::ostringstream os;
    os << serve::trace::to_string(e.kind) << " for request " << id;
    if (e.chip >= 0) os << " on chip " << e.chip;
    os << " in phase " << phase_name(got) << " (expected " << wanted << ")";
    error("request-causality", idx_, os.str());
  }

  void check_members_shape(const Event& e) {
    for (const std::uint64_t m : e.members) {
      const auto id = static_cast<std::int64_t>(m);
      const ReqState& r = req(e, id);
      if (!r.admitted) continue;  // Causality already flagged it.
      if (r.op != e.op || r.width != e.width || r.relax != e.relax ||
          r.policy != e.policy) {
        std::ostringstream os;
        os << serve::trace::to_string(e.kind) << " batch shape (op="
           << static_cast<int>(e.op) << " width=" << e.width
           << " relax=" << e.relax << " policy=" << static_cast<int>(e.policy)
           << ") differs from member " << id << " (op="
           << static_cast<int>(r.op) << " width=" << r.width
           << " relax=" << r.relax << " policy=" << static_cast<int>(r.policy)
           << ")";
        error("batch-homogeneity", idx_, os.str(),
              "batches must coalesce same-shape, same-relax requests only");
      }
    }
  }

  void advance_members(const Event& e, Phase want, Phase next) {
    for (const std::uint64_t m : e.members) {
      const auto id = static_cast<std::int64_t>(m);
      ReqState& r = req(e, id);
      if (r.phase != want) {
        bad_phase(e, id, r.phase, phase_name(want));
        continue;
      }
      r.phase = next;
    }
  }

  void terminal(const Event& e) {
    ReqState& r = req(e, e.req);
    const bool needs_admission =
        e.kind == EventKind::kServe || e.kind == EventKind::kExpire;
    if (r.phase == Phase::kDone) {
      std::ostringstream os;
      os << "duplicate terminal " << serve::trace::to_string(e.kind)
         << " for already-finalized " << req_tag(e);
      error("request-conservation", idx_, os.str());
      return;
    }
    if (e.kind == EventKind::kServe && r.phase != Phase::kDispatched) {
      bad_phase(e, e.req, r.phase, "dispatched");
    }
    if (e.kind == EventKind::kExpire && r.phase != Phase::kSealed) {
      bad_phase(e, e.req, r.phase, "sealed");
    }
    if (e.kind == EventKind::kInvalid && r.phase != Phase::kNone) {
      bad_phase(e, e.req, r.phase, "unadmitted");
    }
    if (needs_admission && !r.admitted) {
      std::ostringstream os;
      os << serve::trace::to_string(e.kind) << " for " << req_tag(e)
         << " that was never admitted";
      error("request-conservation", idx_, os.str());
    }
    r.phase = Phase::kDone;
  }

  // -- drr credit ledger ---------------------------------------------------

  void ledger(const Event& e) {
    std::uint64_t& deficit = deficits_[{e.chip, e.app}];
    switch (e.kind) {
      case EventKind::kCreditGrant: {
        if (meta_.quantum_ops > 0) {
          const std::uint64_t want = meta_.quantum_ops * weight_of(e.app);
          if (e.amount != want) {
            std::ostringstream os;
            os << "credit grant of " << e.amount << " ops to '" << e.app
               << "' != quantum x weight = " << want;
            error("drr-credit", idx_, os.str());
          }
        }
        deficit += e.amount;
        break;
      }
      case EventKind::kCreditSpend: {
        if (e.amount > deficit) {
          std::ostringstream os;
          os << "credit spend of " << e.amount << " ops by '" << e.app
             << "' exceeds its balance of " << deficit;
          error("drr-credit", idx_, os.str(),
                "a pick's ops must be covered by granted credit");
          deficit = 0;
        } else {
          deficit -= e.amount;
        }
        if (e.idle_reset) deficit = 0;  // Going idle forfeits credit.
        break;
      }
      case EventKind::kCreditRefund:
        deficit += e.amount;
        break;
      default:
        return;
    }
    if (deficit != e.deficit_after) {
      std::ostringstream os;
      os << serve::trace::to_string(e.kind) << " for '" << e.app
         << "' declares deficit " << e.deficit_after << " but the ledger says "
         << deficit;
      error("drr-credit", idx_, os.str());
      deficit = e.deficit_after;  // Re-sync; report each break once.
    }
  }

  // -- drr-share-bound -----------------------------------------------------

  [[nodiscard]] bool share_tracked() const {
    return meta_.fair_share && meta_.streams > 0;
  }

  void check_share_bound(const Event& e) {
    // Replays the scheduler's pick-time eligibility from post-spend state:
    // the spend already moved this tenant's head batch out of the queue,
    // so "holds all queued work" and every other tenant's eligibility read
    // identically to what the scheduler saw.
    std::map<std::string, TenantShare>& chip = shares_[e.chip];
    TenantShare& t = chip[e.app];
    std::uint64_t total_weight = 0;
    std::uint64_t total_queued = 0;
    for (const auto& [name, u] : chip) {
      if (name == e.app || u.queued > 0 || u.in_flight > 0)
        total_weight += weight_of(name);
      total_queued += u.queued;
    }
    const auto cap = [&](const std::string& name,
                         const TenantShare&) -> std::uint64_t {
      if (total_weight == 0) return meta_.streams;
      const std::uint64_t share =
          static_cast<std::uint64_t>(meta_.streams) * weight_of(name) /
          total_weight;
      return share == 0 ? 1 : share;
    };
    const bool sole = total_queued == t.queued;
    if (t.in_flight >= cap(e.app, t) && !sole) {
      // Spill-over: legal only when nobody else could take the stream.
      bool other_eligible = false;
      for (const auto& [name, u] : chip) {
        if (name == e.app) continue;
        if (u.queued > 0 && u.in_flight < cap(name, u)) {
          other_eligible = true;
          break;
        }
      }
      if (other_eligible) {
        std::ostringstream os;
        os << "dispatch for '" << e.app << "' takes stream "
           << (t.in_flight + 1) << " beyond its weighted cap of "
           << cap(e.app, t) << " while another tenant has queued work under "
           << "cap";
        error("drr-share-bound", idx_, os.str(),
              "DRR may exceed a share cap only as spill-over onto an "
              "otherwise-idle stream");
      }
    }
    t.in_flight += 1;
  }

  // -- stream-overlap / health-fsm -----------------------------------------

  void check_dispatch_domain(const Event& e) {
    if (e.domain < 0) return;
    const std::pair<std::int32_t, std::int64_t> key{e.chip, e.domain};
    if (busy_[key]) {
      std::ostringstream os;
      os << "dispatch on busy domain " << e.domain << " of chip " << e.chip;
      error("stream-overlap", idx_, os.str(),
            "a stream holds one dispatch until complete/abort");
    }
    busy_[key] = true;
    if (health_state(e) == kQuarantined) {
      std::ostringstream os;
      os << "dispatch on quarantined domain " << e.domain << " of chip "
         << e.chip;
      error("health-fsm", idx_, os.str(),
            "quarantined domains hold no stream until repair re-admits them");
    }
  }

  void check_release_domain(const Event& e) {
    if (e.domain < 0) return;
    const std::pair<std::int32_t, std::int64_t> key{e.chip, e.domain};
    if (!busy_[key]) {
      std::ostringstream os;
      os << serve::trace::to_string(e.kind) << " on idle domain " << e.domain
         << " of chip " << e.chip;
      error("stream-overlap", idx_, os.str());
    }
    busy_[key] = false;
  }

  std::uint8_t& health_state(const Event& e) {
    return domain_state_[{e.chip, e.domain}];
  }

  void check_health(const Event& e) {
    std::uint8_t& state = health_state(e);
    if (e.state_from != state) {
      std::ostringstream os;
      os << "health transition on domain " << e.domain << " of chip "
         << e.chip << " claims source state " << state_name(e.state_from)
         << " but the domain is " << state_name(state);
      error("health-fsm", idx_, os.str());
    }
    const bool legal =
        (e.state_from == kHealthy && e.state_to == kSuspect) ||
        (e.state_from == kSuspect && e.state_to == kHealthy) ||
        (e.state_from == kHealthy && e.state_to == kQuarantined) ||
        (e.state_from == kSuspect && e.state_to == kQuarantined) ||
        (e.state_from == kQuarantined && e.state_to == kHealthy);
    if (!legal) {
      std::ostringstream os;
      os << "illegal health transition " << state_name(e.state_from) << " -> "
         << state_name(e.state_to) << " on domain " << e.domain << " of chip "
         << e.chip;
      error("health-fsm", idx_, os.str(),
            "legal arcs: healthy<->suspect, healthy/suspect->quarantined, "
            "quarantined->healthy (repair)");
    }
    state = e.state_to;
  }

  void check_scrub(const Event& e) {
    const std::uint8_t state = health_state(e);
    if (!e.offline && state == kQuarantined) {
      std::ostringstream os;
      os << "online scrub completed on quarantined domain " << e.domain
         << " of chip " << e.chip;
      error("health-fsm", idx_, os.str());
    }
    if (e.offline && state != kQuarantined) {
      std::ostringstream os;
      os << "offline repair ran on " << state_name(state) << " domain "
         << e.domain << " of chip " << e.chip
         << " (repairs only target quarantined domains)";
      error("health-fsm", idx_, os.str());
    }
  }

  // -- interconnect-charge / commit-order ----------------------------------

  void check_route(const Event& e, bool check_energy) {
    if (meta_.chips == 0) return;  // No cluster header: nothing to recompute.
    const std::uint64_t hops = expected_hops(meta_, e.from, e.to);
    if (e.hops != hops) {
      std::ostringstream os;
      os << serve::trace::to_string(e.kind) << " from chip " << e.from
         << " to chip " << e.to << " charges " << e.hops
         << " hops; the topology says " << hops;
      error("interconnect-charge", idx_, os.str());
    }
    const std::uint64_t cycles = expected_route_cycles(meta_, hops, e.bits);
    if (e.cycles != cycles) {
      std::ostringstream os;
      os << serve::trace::to_string(e.kind) << " charges " << e.cycles
         << " cycles for " << hops << " hops x " << e.bits
         << " bits; the cost law hops*(hop_latency+ceil(bits/link_bits)) "
         << "says " << cycles;
      error("interconnect-charge", idx_, os.str());
    }
    if (check_energy) {
      const double pj = expected_route_pj(meta_, hops, e.bits);
      if (e.energy_pj != pj) {
        std::ostringstream os;
        os << serve::trace::to_string(e.kind) << " charges " << e.energy_pj
           << " pJ; hops*bits*pj_per_bit_hop says " << pj;
        error("interconnect-charge", idx_, os.str());
      }
    }
  }

  void check_migration_start(const Event& e) {
    auto [it, inserted] = migrations_.try_emplace(e.shard);
    if (!inserted) {
      std::ostringstream os;
      os << "migration started on shard " << e.shard
         << " while a move begun at event " << it->second.started_at_event
         << " still holds its lock";
      error("commit-order", idx_, os.str());
    }
    it->second = MigrationState{e.from, e.to, idx_};
  }

  void check_migration_commit(const Event& e) {
    const auto it = migrations_.find(e.shard);
    if (it == migrations_.end()) {
      std::ostringstream os;
      os << "migration commit on shard " << e.shard << " without a start";
      error("commit-order", idx_, os.str());
    } else {
      if (it->second.from != e.from || it->second.to != e.to) {
        std::ostringstream os;
        os << "migration commit on shard " << e.shard << " routes "
           << e.from << "->" << e.to << " but its start routed "
           << it->second.from << "->" << it->second.to;
        error("commit-order", idx_, os.str());
      }
      migrations_.erase(it);
    }
    if (have_last_commit_ && last_commit_at_ == e.at &&
        e.shard <= last_commit_shard_) {
      std::ostringstream os;
      os << "commits at t=" << e.at << " out of shard order: shard "
         << e.shard << " after shard " << last_commit_shard_;
      error("commit-order", idx_, os.str(),
            "same-instant commits must be processed shard-ascending");
    }
    have_last_commit_ = true;
    last_commit_at_ = e.at;
    last_commit_shard_ = e.shard;
  }

  // -- dispatcher ----------------------------------------------------------

  void check_event(const Event& e) {
    check_clock(e);
    switch (e.kind) {
      case EventKind::kAdmit: {
        ReqState& r = req(e, e.req);
        if (r.phase != Phase::kNone || r.admitted) {
          bad_phase(e, e.req, r.phase, "unadmitted");
        }
        r.phase = Phase::kQueued;
        r.admitted = true;
        r.op = e.op;
        r.width = e.width;
        r.relax = e.relax;
        r.policy = e.policy;
        if (e.capacity != 0 && e.queue_depth > e.capacity) {
          std::ostringstream os;
          os << "admission to depth " << e.queue_depth
             << " exceeds the effective capacity " << e.capacity;
          error("admission-bound", idx_, os.str());
        }
        break;
      }
      case EventKind::kBatchSeal:
        check_members_shape(e);
        advance_members(e, Phase::kQueued, Phase::kSealed);
        if (share_tracked()) shares_[e.chip][e.app].queued += 1;
        break;
      case EventKind::kDispatch:
        check_members_shape(e);
        advance_members(e, Phase::kSealed, Phase::kDispatched);
        if (share_tracked()) check_share_bound(e);
        check_dispatch_domain(e);
        break;
      case EventKind::kComplete:
      case EventKind::kAbort:
        check_release_domain(e);
        if (share_tracked()) {
          TenantShare& t = shares_[e.chip][e.app];
          if (t.in_flight > 0) t.in_flight -= 1;
        }
        break;
      case EventKind::kServe:
      case EventKind::kReject:
      case EventKind::kExpire:
      case EventKind::kInvalid:
        terminal(e);
        break;
      case EventKind::kCreditGrant:
      case EventKind::kCreditRefund:
        ledger(e);
        break;
      case EventKind::kCreditSpend:
        ledger(e);
        if (share_tracked()) {
          TenantShare& t = shares_[e.chip][e.app];
          if (t.queued > 0) t.queued -= 1;
        }
        break;
      case EventKind::kQosEscalate: {
        ReqState& r = req(e, e.req);
        if (r.phase != Phase::kDispatched) {
          bad_phase(e, e.req, r.phase, "dispatched");
        }
        r.phase = Phase::kQueued;
        r.relax = e.relax;  // Escalation re-queues at exact.
        break;
      }
      case EventKind::kRelocate: {
        ReqState& r = req(e, e.req);
        if (r.phase != Phase::kDispatched) {
          bad_phase(e, e.req, r.phase, "dispatched");
        }
        r.phase = Phase::kQueued;
        break;
      }
      case EventKind::kHealth:
        check_health(e);
        break;
      case EventKind::kScrub:
        check_scrub(e);
        break;
      case EventKind::kClusterAdmit:
        break;  // Routing choice; charged legs carry the invariants.
      case EventKind::kForward:
      case EventKind::kResponseLeg:
        check_route(e, /*check_energy=*/true);
        break;
      case EventKind::kMigrationStart:
        check_route(e, /*check_energy=*/false);  // Energy lands at commit.
        check_migration_start(e);
        break;
      case EventKind::kMigrationCommit:
        check_route(e, /*check_energy=*/true);
        check_migration_commit(e);
        break;
    }
  }

  // End-of-log conservation: only sound on a complete log.
  void finish() {
    for (const auto& [key, r] : reqs_) {
      if (!r.admitted || r.phase == Phase::kDone) continue;
      std::ostringstream os;
      os << "request " << key.second;
      if (key.first >= 0) os << " on chip " << key.first;
      os << " was admitted but never reached a terminal event (last phase: "
         << phase_name(r.phase) << ")";
      error("request-conservation", -1, os.str(),
            "every admitted request must serve, reject, expire or invalidate");
    }
    for (const auto& [shard, m] : migrations_) {
      std::ostringstream os;
      os << "migration on shard " << shard << " (started at event "
         << m.started_at_event << ") never committed; the shard lock leaks";
      error("commit-order", -1, os.str());
    }
  }

  const EventLog& log_;
  const Meta& meta_;
  Report report_;
  std::int64_t idx_ = -1;

  std::map<std::int32_t, util::Cycles> last_at_;
  std::map<std::pair<std::int32_t, std::int64_t>, ReqState> reqs_;
  std::map<std::pair<std::int32_t, std::string>, std::uint64_t> deficits_;
  std::map<std::int32_t, std::map<std::string, TenantShare>> shares_;
  std::map<std::pair<std::int32_t, std::int64_t>, bool> busy_;
  std::map<std::pair<std::int32_t, std::int64_t>, std::uint8_t> domain_state_;
  std::map<std::int64_t, MigrationState> migrations_;
  bool have_last_commit_ = false;
  util::Cycles last_commit_at_ = 0;
  std::int64_t last_commit_shard_ = -1;
};

}  // namespace

Report check_serving_trace(const serve::trace::EventLog& log) {
  return Checker(log).run();
}

std::string verify_trace(const serve::trace::EventLog& log) {
  const Report r = check_serving_trace(log);
  return r.empty() ? std::string{} : r.format();
}

}  // namespace apim::analysis
