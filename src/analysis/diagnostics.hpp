// Structured diagnostics shared by the APIM static-analysis passes.
//
// Every checker (ISA lint, MAGIC schedule verifier) reports findings as
// Diagnostic records — severity, a stable rule id, a source location
// (assembler line and/or instruction index) and a fix hint — collected in
// a Report. Consumers render a report as human-readable text (one line
// per finding, compiler style) or JSON (tools/apim_lint --json), and gate
// on has_errors(). Keeping the record structured means a new rule only
// has to produce Diagnostics; printing, JSON and exit codes come free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apim::analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] const char* to_string(Severity s) noexcept;

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;        ///< Stable rule id, e.g. "use-before-def".
  std::uint32_t line = 0;  ///< 1-based assembler source line (0 = none).
  std::int64_t pc = -1;    ///< Instruction index or trace cycle (-1 = n/a).
  std::string message;
  std::string hint;        ///< Optional fix suggestion.
};

class Report {
 public:
  void add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void merge(const Report& other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  [[nodiscard]] bool empty() const noexcept { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t count(Severity s) const noexcept;
  [[nodiscard]] bool has_errors() const noexcept {
    return count(Severity::kError) > 0;
  }

  /// Compiler-style text, one diagnostic per line:
  ///   line 12: error [vector-overlap]: ... (hint: ...)
  [[nodiscard]] std::string format() const;

  /// JSON object: {"diagnostics":[...],"errors":N,"warnings":N}.
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace apim::analysis
