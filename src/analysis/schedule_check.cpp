#include "analysis/schedule_check.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace apim::analysis {

namespace {

using crossbar::CellAddr;
using magic::CellAccess;
using magic::CellEvent;
using magic::OpKind;
using magic::Tracer;

/// What the verifier knows about a cell's content.
enum class CellState {
  kUntouched,      ///< Never seen in the trace.
  kInitialized,    ///< SET to '1' by an init batch (NOR-ready).
  kDriverWritten,  ///< Last set by a driver write (value unknown).
  kEvaluated,      ///< Last written by a NOR evaluation (may be '0').
};

[[nodiscard]] bool in_ranges(const std::vector<RowRange>& ranges,
                             const CellAddr& a) noexcept {
  return std::any_of(ranges.begin(), ranges.end(),
                     [&](const RowRange& r) { return r.contains(a); });
}

class ScheduleChecker {
 public:
  ScheduleChecker(const Tracer& trace, const ScheduleCheckOptions& options)
      : trace_(trace), options_(options) {}

  Report run() {
    if (!trace_.cell_events_enabled()) {
      report_.add({Severity::kWarning, "no-cell-events", 0, -1,
                   "tracer has row-resolved events disabled; schedule rules "
                   "were not checked",
                   "call Tracer::enable_cell_events(true) before executing"});
      return std::move(report_);
    }
    if (trace_.overflowed()) {
      report_.add({Severity::kError, "trace-overflow", 0, -1,
                   "trace dropped " + std::to_string(trace_.dropped()) +
                       " batch and " + std::to_string(trace_.dropped_cells()) +
                       " cell events at capacity; a truncated trace cannot "
                       "be verified",
                   "raise the Tracer capacity"});
      return std::move(report_);
    }

    for (const CellEvent& e : trace_.cell_events()) {
      check_regions(e);
      if (e.kind == OpKind::kNor) {
        batch(e);
      } else {
        // Keep stream order: a pending NOR batch happened before this
        // event (its completion stamp is just deferred for grouping).
        flush_batch();
        apply(e);
      }
    }
    flush_batch();
    return std::move(report_);
  }

 private:
  void diag(Severity sev, const char* rule, const CellEvent& e,
            std::string message, std::string hint = "") {
    // One finding per (rule, cell): a bad loop touches the same cell
    // thousands of times and would drown the report.
    if (!reported_.emplace(rule, e.addr).second) return;
    report_.add({sev, rule, 0, static_cast<std::int64_t>(e.cycle),
                 to_string(e.addr) + ": " + std::move(message),
                 std::move(hint)});
  }

  /// Rules independent of dataflow order: quarantine, spares, leaks.
  void check_regions(const CellEvent& e) {
    if (in_ranges(options_.quarantined, e.addr))
      diag(Severity::kError, "quarantine-touch", e,
           "access to a quarantined scratch band",
           "rotate to a healthy band (RotatingScratchAllocator::next_band)");
    if (options_.rows_per_block > 0 && e.addr.row >= options_.rows_per_block)
      diag(Severity::kError, "spare-touch", e,
           "direct access to physical spare row " + std::to_string(e.addr.row),
           "spares are reached only through BlockedCrossbar::remap_row");
    const bool is_output =
        e.access == CellAccess::kInit ||
        (e.access == CellAccess::kWrite && e.kind == OpKind::kNor);
    if (is_output && !options_.scratch.empty() &&
        !in_ranges(options_.scratch, e.addr) &&
        !in_ranges(options_.preloaded, e.addr))
      diag(Severity::kError, "scratch-leak", e,
           "schedule output lands outside its declared scratch region",
           "grow the scratch declaration or fix the lane mapping");
  }

  /// NOR batches are checked per completion cycle so same-cycle RAW/WAR
  /// hazards across the batch's ops are visible.
  void batch(const CellEvent& e) {
    if (!nor_batch_.empty() && nor_batch_.front().cycle != e.cycle)
      flush_batch();
    nor_batch_.push_back(e);
  }

  void flush_batch() {
    std::map<CellAddr, int> writes;
    std::set<CellAddr> reads;
    for (const CellEvent& e : nor_batch_) {
      if (e.access == CellAccess::kWrite)
        ++writes[e.addr];
      else
        reads.insert(e.addr);
    }
    for (const CellEvent& e : nor_batch_) {
      if (e.access == CellAccess::kWrite) {
        if (writes[e.addr] > 1)
          diag(Severity::kError, "duplicate-dst", e,
               "two NORs of one parallel batch share this output cell");
        if (reads.count(e.addr) > 0)
          diag(Severity::kError, "same-cycle-hazard", e,
               "cell is both read and written in one batch cycle "
               "(RAW/WAR: evaluation order within a cycle is undefined)",
               "split the batch into two cycles");
      }
      apply(e);
    }
    nor_batch_.clear();
  }

  /// Dataflow state machine: init-before-NOR and uninitialized reads.
  void apply(const CellEvent& e) {
    CellState& state = states_[e.addr];
    switch (e.access) {
      case CellAccess::kInit:
        state = CellState::kInitialized;
        break;
      case CellAccess::kWrite:
        if (e.kind == OpKind::kNor) {
          if (state == CellState::kEvaluated)
            diag(Severity::kError, "nor-without-init", e,
                 "NOR output cell was last written by an evaluation and "
                 "never re-initialized (it may be stuck at '0')",
                 "add the cell to the stage's init batch");
          else if (state == CellState::kUntouched &&
                   !in_ranges(options_.preloaded, e.addr))
            diag(Severity::kError, "nor-without-init", e,
                 "NOR output cell was never initialized to '1'",
                 "add the cell to the stage's init batch");
          else if (state == CellState::kDriverWritten)
            diag(Severity::kWarning, "nor-on-written", e,
                 "NOR output cell was last set by a driver write; RON "
                 "cannot be statically proven");
          state = CellState::kEvaluated;
        } else {
          state = CellState::kDriverWritten;
        }
        break;
      case CellAccess::kRead:
        if (state == CellState::kUntouched &&
            !in_ranges(options_.preloaded, e.addr))
          diag(Severity::kError, "uninit-read", e,
               "read of a cell that was never written and is not declared "
               "preloaded",
               "declare operand rows / '0' references in "
               "ScheduleCheckOptions::preloaded");
        break;
    }
  }

  const Tracer& trace_;
  const ScheduleCheckOptions& options_;
  Report report_;
  std::map<CellAddr, CellState> states_;
  std::vector<CellEvent> nor_batch_;
  std::set<std::pair<std::string, CellAddr>> reported_;
};

}  // namespace

void append_quarantined_bands(const crossbar::RotatingScratchAllocator& alloc,
                              std::size_t block, std::vector<RowRange>& out) {
  for (std::size_t i = 0; i < alloc.band_count(); ++i)
    if (alloc.band_quarantined(i))
      out.push_back(RowRange{block, alloc.band_base(i),
                             alloc.band_base(i) + alloc.band_rows()});
}

Report check_schedule(const magic::Tracer& trace,
                      const ScheduleCheckOptions& options) {
  return ScheduleChecker(trace, options).run();
}

Report check_cycle_claim(const magic::Tracer& trace, util::Cycles claimed,
                         const std::string& what) {
  Report report;
  if (trace.overflowed()) {
    report.add({Severity::kError, "trace-overflow", 0, -1,
                "trace dropped events at capacity; its cycle count is not "
                "trustworthy for " + what,
                "raise the Tracer capacity"});
    return report;
  }
  // Events carry completion stamps from an engine whose counter started
  // at 0, so the largest stamp is the schedule's total cycle count.
  util::Cycles measured = 0;
  for (const magic::TraceEvent& e : trace.events())
    measured = std::max(measured, e.cycle);
  if (measured != claimed)
    report.add({Severity::kError, "cycle-model-drift", 0,
                static_cast<std::int64_t>(measured),
                "trace shows " + std::to_string(measured) +
                    " cycles but the latency model claims " +
                    std::to_string(claimed) + " for " + what,
                "the schedule and arith/latency_model.hpp disagree — one of "
                "them changed without the other"});
  return report;
}

}  // namespace apim::analysis
