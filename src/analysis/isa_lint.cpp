#include "analysis/isa_lint.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace apim::analysis {

namespace {

using isa::Instruction;
using isa::Opcode;
using isa::Program;

/// Registers read / written by one instruction, as r-index lists. The
/// table mirrors the interpreter's semantics exactly (kMac reads its
/// destination, kStore's `dst` field is the *value being stored*, vector
/// ops read all three base registers and write none).
struct RegUse {
  std::vector<std::uint8_t> reads;
  std::optional<std::uint8_t> def;
};

RegUse reg_use(const Instruction& inst) {
  switch (inst.op) {
    case Opcode::kMul:
    case Opcode::kAdd:
    case Opcode::kSub:
      return {{inst.src1, inst.src2}, inst.dst};
    case Opcode::kMac:
      return {{inst.dst, inst.src1, inst.src2}, inst.dst};
    case Opcode::kLoad:
      return {{inst.src1}, inst.dst};
    case Opcode::kLoadImm:
      return {{}, inst.dst};
    case Opcode::kStore:
      return {{inst.dst, inst.src1}, std::nullopt};
    case Opcode::kVAdd:
    case Opcode::kVMul:
      return {{inst.dst, inst.src1, inst.src2}, std::nullopt};
    case Opcode::kMov:
    case Opcode::kAddi:
    case Opcode::kShr:
    case Opcode::kShl:
      return {{inst.src1}, inst.dst};
    case Opcode::kJz:
    case Opcode::kJnz:
      return {{inst.src1}, std::nullopt};
    case Opcode::kSetRelax:
    case Opcode::kSetMask:
    case Opcode::kJmp:
    case Opcode::kHalt:
      return {{}, std::nullopt};
  }
  return {};
}

[[nodiscard]] bool is_branch(Opcode op) noexcept {
  return op == Opcode::kJmp || op == Opcode::kJz || op == Opcode::kJnz;
}

/// Abstract register value for the constant-propagation pass.
struct ConstVal {
  bool known = false;
  std::int64_t value = 0;

  [[nodiscard]] static ConstVal constant(std::int64_t v) noexcept {
    return {true, v};
  }
  [[nodiscard]] static ConstVal unknown() noexcept { return {}; }

  friend bool operator==(const ConstVal&, const ConstVal&) = default;
};

using ConstState = std::vector<ConstVal>;  // One entry per register.

/// Lattice meet: agreeing constants survive a join, anything else is
/// unknown. Returns true when `into` changed.
bool meet_into(ConstState& into, const ConstState& from) {
  bool changed = false;
  for (std::size_t r = 0; r < into.size(); ++r) {
    if (into[r].known && !(into[r] == from[r])) {
      into[r] = ConstVal::unknown();
      changed = true;
    }
  }
  return changed;
}

/// Interpreter-faithful transfer of controller ops; data ops and memory
/// loads yield unknown (their results may be approximate / data-driven).
void const_transfer(const Instruction& inst, ConstState& state) {
  const auto set = [&](std::uint8_t r, ConstVal v) {
    if (r != 0) state[r] = v;  // r0 is hard-wired zero.
  };
  const ConstVal a = state[inst.src1];
  switch (inst.op) {
    case Opcode::kLoadImm:
      set(inst.dst, ConstVal::constant(inst.imm));
      break;
    case Opcode::kMov:
      set(inst.dst, a);
      break;
    case Opcode::kAddi:
      set(inst.dst, a.known ? ConstVal::constant(a.value + inst.imm)
                            : ConstVal::unknown());
      break;
    case Opcode::kShl:
      set(inst.dst, a.known && inst.imm >= 0 && inst.imm <= 63
                        ? ConstVal::constant(static_cast<std::int64_t>(
                              static_cast<std::uint64_t>(a.value)
                              << inst.imm))
                        : ConstVal::unknown());
      break;
    case Opcode::kShr: {
      if (a.known && inst.imm >= 0 && inst.imm <= 63) {
        // Sign-magnitude shift, matching the interpreter.
        const std::int64_t mag =
            (a.value < 0 ? -a.value : a.value) >> inst.imm;
        set(inst.dst, ConstVal::constant(a.value < 0 ? -mag : mag));
      } else {
        set(inst.dst, ConstVal::unknown());
      }
      break;
    }
    case Opcode::kMul:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMac:
    case Opcode::kLoad:
      set(inst.dst, ConstVal::unknown());
      break;
    default:
      break;  // No register effect.
  }
}

class Linter {
 public:
  Linter(const Program& program, const LintOptions& options)
      : program_(program), options_(options), size_(program.code.size()) {}

  Report run() {
    if (size_ == 0) {
      report_.add({Severity::kWarning, "empty-program", 0, -1,
                   "program contains no instructions", ""});
      return std::move(report_);
    }
    check_branch_targets();
    build_cfg();
    compute_reachability();
    check_halt_paths();
    check_register_dataflow();
    run_const_checks();
    return std::move(report_);
  }

 private:
  [[nodiscard]] std::uint32_t line_of(std::size_t pc) const {
    return pc < program_.source_lines.size() ? program_.source_lines[pc] : 0;
  }

  void diag(Severity sev, std::string rule, std::size_t pc,
            std::string message, std::string hint = "") {
    report_.add({sev, std::move(rule), line_of(pc),
                 static_cast<std::int64_t>(pc), std::move(message),
                 std::move(hint)});
  }

  [[nodiscard]] bool valid_target(std::int64_t t) const noexcept {
    return t >= 0 && static_cast<std::size_t>(t) < size_;
  }

  void check_branch_targets() {
    for (std::size_t i = 0; i < size_; ++i) {
      const Instruction& inst = program_.code[i];
      if (!is_branch(inst.op) || valid_target(inst.imm)) continue;
      std::string hint;
      if (inst.imm >= 0 && static_cast<std::size_t>(inst.imm) == size_)
        hint = "the label lands after the final instruction; "
               "add a halt (or code) under it";
      diag(Severity::kError, "branch-target", i,
           "branch target " + std::to_string(inst.imm) + " is outside the "
           "program [0, " + std::to_string(size_) + ")",
           std::move(hint));
    }
  }

  /// Successor edges; invalid branch targets (already reported) produce
  /// no edge so the remaining analyses stay in-bounds.
  void build_cfg() {
    succ_.assign(size_, {});
    pred_.assign(size_, {});
    const auto edge = [&](std::size_t from, std::size_t to) {
      succ_[from].push_back(to);
      pred_[to].push_back(from);
    };
    for (std::size_t i = 0; i < size_; ++i) {
      const Instruction& inst = program_.code[i];
      switch (inst.op) {
        case Opcode::kHalt:
          break;
        case Opcode::kJmp:
          if (valid_target(inst.imm))
            edge(i, static_cast<std::size_t>(inst.imm));
          break;
        case Opcode::kJz:
        case Opcode::kJnz:
          if (valid_target(inst.imm))
            edge(i, static_cast<std::size_t>(inst.imm));
          if (i + 1 < size_) edge(i, i + 1);
          break;
        default:
          if (i + 1 < size_) edge(i, i + 1);
          break;
      }
    }
  }

  void compute_reachability() {
    reachable_.assign(size_, false);
    std::deque<std::size_t> work{0};
    reachable_[0] = true;
    while (!work.empty()) {
      const std::size_t i = work.front();
      work.pop_front();
      for (std::size_t s : succ_[i])
        if (!reachable_[s]) {
          reachable_[s] = true;
          work.push_back(s);
        }
    }
    for (std::size_t i = 0; i < size_; ++i)
      if (!reachable_[i])
        diag(Severity::kWarning, "unreachable", i,
             "instruction is unreachable on every path",
             "dead code after an unconditional jump or halt?");
  }

  void check_halt_paths() {
    // Fall-off-the-end: a reachable instruction whose fall-through leaves
    // the program. (kJmp with a valid target never falls through; an
    // invalid target was already reported as branch-target.)
    for (std::size_t i = 0; i < size_; ++i) {
      if (!reachable_[i] || i + 1 < size_) continue;
      const Opcode op = program_.code[i].op;
      if (op == Opcode::kHalt) continue;
      if (op == Opcode::kJmp && valid_target(program_.code[i].imm)) continue;
      diag(Severity::kError, "fall-off-end", i,
           "control can run past the last instruction without a halt",
           "end the kernel with `halt`");
    }

    // Backward reachability from every halt.
    std::vector<bool> reaches_halt(size_, false);
    std::deque<std::size_t> work;
    for (std::size_t i = 0; i < size_; ++i)
      if (program_.code[i].op == Opcode::kHalt) {
        reaches_halt[i] = true;
        work.push_back(i);
      }
    while (!work.empty()) {
      const std::size_t i = work.front();
      work.pop_front();
      for (std::size_t p : pred_[i])
        if (!reaches_halt[p]) {
          reaches_halt[p] = true;
          work.push_back(p);
        }
    }
    if (!reaches_halt[0]) {
      diag(Severity::kError, "no-halt-path", 0,
           "no halt instruction is reachable from the entry",
           "every kernel must terminate with `halt`");
      return;  // Every instruction would repeat the finding below.
    }
    for (std::size_t i = 0; i < size_; ++i)
      if (reachable_[i] && !reaches_halt[i])
        diag(Severity::kWarning, "infinite-loop", i,
             "once control reaches this instruction no halt is reachable",
             "check the loop exit condition");
  }

  /// Must-defined register analysis (intersection over predecessors);
  /// reading a register not written on every path is flagged. r0 is
  /// always defined (hard-wired zero).
  void check_register_dataflow() {
    constexpr std::uint32_t kAll = 0xFFFFFFFFu;
    std::vector<std::uint32_t> in(size_, kAll);
    in[0] = 1u;  // Only r0 at entry.
    std::deque<std::size_t> work{0};
    std::vector<bool> queued(size_, false);
    queued[0] = true;
    while (!work.empty()) {
      const std::size_t i = work.front();
      work.pop_front();
      queued[i] = false;
      const RegUse use = reg_use(program_.code[i]);
      std::uint32_t out = in[i];
      if (use.def && *use.def != 0) out |= 1u << *use.def;
      for (std::size_t s : succ_[i]) {
        const std::uint32_t met = in[s] & out;
        if (met != in[s]) {
          in[s] = met;
          if (!queued[s]) {
            queued[s] = true;
            work.push_back(s);
          }
        }
      }
    }
    for (std::size_t i = 0; i < size_; ++i) {
      if (!reachable_[i]) continue;
      const RegUse use = reg_use(program_.code[i]);
      std::uint32_t flagged = 0;  // One finding per register per read site.
      for (std::uint8_t r : use.reads) {
        if (r == 0 || (in[i] >> r) & 1u || (flagged >> r) & 1u) continue;
        flagged |= 1u << r;
        diag(Severity::kError, "use-before-def", i,
             "r" + std::to_string(r) + " is read before it is written on "
             "some path (it silently holds the power-on zero)",
             "initialize it first, e.g. `load r" + std::to_string(r) +
             ", #0`");
      }
      // A write to r0 is dropped by the register file — almost always a
      // typo for another register.
      const Instruction& inst = program_.code[i];
      if (use.def && *use.def == 0 && inst.op != Opcode::kStore)
        diag(Severity::kWarning, "r0-write", i,
             "write to r0 is ignored (r0 is hard-wired zero)",
             "did you mean another register?");
    }
  }

  void check_const_memory(std::size_t pc, const ConstVal& base,
                          std::int64_t offset, std::int64_t count,
                          const char* what) {
    if (!base.known) return;
    const std::int64_t first = base.value + offset;
    const std::int64_t last = first + count - 1;
    const bool below = first < 0;
    const bool above =
        options_.memory_words > 0 &&
        last >= static_cast<std::int64_t>(options_.memory_words);
    if (!below && !above) return;
    std::string range = count == 1
                            ? "address " + std::to_string(first)
                            : "addresses [" + std::to_string(first) + ", " +
                                  std::to_string(last) + "]";
    diag(Severity::kError, "mem-bounds", pc,
         std::string(what) + " " + range + " outside the data memory [0, " +
             (options_.memory_words > 0 ? std::to_string(options_.memory_words)
                                        : std::string("?")) +
             ")",
         "check the base register / offset against --memsize");
  }

  void run_const_checks() {
    // Fixpoint first: per-instruction in-states.
    std::vector<ConstState> in(size_);
    std::vector<bool> seen(size_, false);
    in[0].assign(isa::kRegisterCount, ConstVal::constant(0));
    seen[0] = true;
    std::deque<std::size_t> work{0};
    std::vector<bool> queued(size_, false);
    queued[0] = true;
    while (!work.empty()) {
      const std::size_t i = work.front();
      work.pop_front();
      queued[i] = false;
      ConstState out = in[i];
      const_transfer(program_.code[i], out);
      for (std::size_t s : succ_[i]) {
        bool changed = false;
        if (!seen[s]) {
          in[s] = out;
          seen[s] = true;
          changed = true;
        } else {
          changed = meet_into(in[s], out);
        }
        if (changed && !queued[s]) {
          queued[s] = true;
          work.push_back(s);
        }
      }
    }

    // Single checking pass over the stabilized states.
    for (std::size_t i = 0; i < size_; ++i) {
      if (!reachable_[i]) continue;
      const Instruction& inst = program_.code[i];
      const ConstState& state = in[i];
      switch (inst.op) {
        case Opcode::kLoad:
          check_const_memory(i, state[inst.src1], inst.imm, 1, "load of");
          break;
        case Opcode::kStore:
          check_const_memory(i, state[inst.src1], inst.imm, 1, "store to");
          break;
        case Opcode::kVAdd:
        case Opcode::kVMul: {
          if (inst.imm <= 0) {
            diag(Severity::kError, "vector-length", i,
                 "vector element count " + std::to_string(inst.imm) +
                     " must be positive");
            break;
          }
          const ConstVal d = state[inst.dst];
          const ConstVal a = state[inst.src1];
          const ConstVal b = state[inst.src2];
          check_const_memory(i, d, 0, inst.imm, "vector destination");
          check_const_memory(i, a, 0, inst.imm, "vector source");
          check_const_memory(i, b, 0, inst.imm, "vector source");
          const auto overlap_check = [&](const ConstVal& src,
                                         const char* name) {
            if (!d.known || !src.known || d.value == src.value) return;
            const std::int64_t dist = d.value > src.value
                                          ? d.value - src.value
                                          : src.value - d.value;
            if (dist >= inst.imm) return;
            diag(Severity::kError, "vector-overlap", i,
                 "destination [" + std::to_string(d.value) + ", " +
                     std::to_string(d.value + inst.imm - 1) +
                     "] partially overlaps " + name + " [" +
                     std::to_string(src.value) + ", " +
                     std::to_string(src.value + inst.imm - 1) +
                     "]: elements are clobbered before they are read",
                 "separate the regions (identical bases — pure in-place — "
                 "are fine)");
          };
          overlap_check(a, "source A");
          overlap_check(b, "source B");
          break;
        }
        case Opcode::kSetRelax:
          if (inst.imm < 0 || inst.imm > 64)
            diag(Severity::kError, "setrelax-range", i,
                 "setrelax " + std::to_string(inst.imm) +
                     " outside the 0..64 precision range");
          break;
        case Opcode::kSetMask:
          if (inst.imm < 0 || inst.imm > 32)
            diag(Severity::kError, "setmask-range", i,
                 "setmask " + std::to_string(inst.imm) +
                     " outside the 0..32 first-stage mask range",
                 "mask bits apply to the 32-bit multiplier image");
          break;
        default:
          break;
      }
    }
  }

  const Program& program_;
  const LintOptions& options_;
  std::size_t size_;
  Report report_;
  std::vector<std::vector<std::size_t>> succ_;
  std::vector<std::vector<std::size_t>> pred_;
  std::vector<bool> reachable_;
};

}  // namespace

Report lint_program(const isa::Program& program, const LintOptions& options) {
  return Linter(program, options).run();
}

}  // namespace apim::analysis
