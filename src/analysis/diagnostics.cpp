#include "analysis/diagnostics.hpp"

#include <sstream>

namespace apim::analysis {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

void Report::merge(const Report& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

std::size_t Report::count(Severity s) const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_)
    if (d.severity == s) ++n;
  return n;
}

std::string Report::format() const {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics_) {
    if (d.line > 0)
      out << "line " << d.line << ": ";
    else if (d.pc >= 0)
      out << "pc " << d.pc << ": ";
    out << to_string(d.severity) << " [" << d.rule << "]: " << d.message;
    if (!d.hint.empty()) out << " (hint: " << d.hint << ")";
    out << '\n';
  }
  return out.str();
}

std::string Report::to_json() const {
  std::ostringstream out;
  out << "{\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : diagnostics_) {
    if (!first) out << ',';
    first = false;
    out << "{\"severity\":\"" << to_string(d.severity) << "\",\"rule\":\""
        << json_escape(d.rule) << "\",\"line\":" << d.line
        << ",\"pc\":" << d.pc << ",\"message\":\"" << json_escape(d.message)
        << "\"";
    if (!d.hint.empty()) out << ",\"hint\":\"" << json_escape(d.hint) << "\"";
    out << '}';
  }
  out << "],\"errors\":" << count(Severity::kError)
      << ",\"warnings\":" << count(Severity::kWarning) << '}';
  return out.str();
}

}  // namespace apim::analysis
