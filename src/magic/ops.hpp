// Micro-operation types executed by the MAGIC engine.
#pragma once

#include <cstdint>
#include <vector>

#include "crossbar/address.hpp"

namespace apim::magic {

/// One MAGIC NOR evaluation: `dst` must have been initialized to '1'
/// (RON); after execution it holds NOR of the addressed input cells.
/// MAGIC supports n-input NOR in a row or column, and through the
/// configurable interconnect the output may live in an adjacent block on a
/// shifted bitline (paper Section 3.3).
struct NorOp {
  crossbar::CellAddr dst;
  std::vector<crossbar::CellAddr> inputs;
};

/// Kinds of engine events recorded in the trace and the op counters.
enum class OpKind : std::uint8_t {
  kInit,
  kNor,
  kWrite,
  kRead,
  kMajority,
  kIdle,
};

[[nodiscard]] constexpr const char* to_string(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kInit: return "init";
    case OpKind::kNor: return "nor";
    case OpKind::kWrite: return "write";
    case OpKind::kRead: return "read";
    case OpKind::kMajority: return "majority";
    case OpKind::kIdle: return "idle";
  }
  return "?";
}

}  // namespace apim::magic
