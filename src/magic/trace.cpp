#include "magic/trace.hpp"

#include <sstream>

namespace apim::magic {

void Tracer::record(TraceEvent event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void Tracer::record_cell(CellEvent event) {
  if (!cell_events_enabled_) return;
  if (cell_events_.size() >= cell_capacity_) {
    ++dropped_cells_;
    return;
  }
  cell_events_.push_back(event);
}

void Tracer::clear() {
  events_.clear();
  cell_events_.clear();
  dropped_ = 0;
  dropped_cells_ = 0;
}

std::uint64_t Tracer::count(OpKind kind) const noexcept {
  std::uint64_t n = 0;
  for (const TraceEvent& e : events_)
    if (e.kind == kind) ++n;
  return n;
}

std::uint64_t Tracer::cells(OpKind kind) const noexcept {
  std::uint64_t n = 0;
  for (const TraceEvent& e : events_)
    if (e.kind == kind) n += e.cells;
  return n;
}

std::string Tracer::format(std::size_t max_lines) const {
  std::ostringstream out;
  std::size_t lines = 0;
  for (const TraceEvent& e : events_) {
    if (lines++ >= max_lines) {
      out << "... (" << events_.size() - max_lines << " more events)\n";
      break;
    }
    out << "cycle " << e.cycle << ": " << to_string(e.kind) << " x" << e.cells;
    if (e.overlapped) out << " (overlapped)";
    out << '\n';
  }
  out << events_.size() << " events (" << dropped_
      << " dropped at capacity)";
  if (cell_events_enabled_) {
    out << ", " << cell_events_.size() << " cell touches (" << dropped_cells_
        << " dropped at capacity)";
  }
  out << '\n';
  return out.str();
}

}  // namespace apim::magic
