#include "magic/imply.hpp"

#include <array>
#include <cassert>

#include "util/bitops.hpp"

namespace apim::magic {

using crossbar::BlockedCrossbar;
using crossbar::CellAddr;
using crossbar::CrossbarConfig;

ImplyEngine::ImplyEngine(BlockedCrossbar& crossbar,
                         const device::EnergyModel& energy)
    : xbar_(crossbar), energy_(energy) {}

void ImplyEngine::false_op(const CellAddr& q) {
  const bool flipped = xbar_.set(q, false);
  stats_.energy_ops_pj += energy_.write_energy_pj(flipped);
  ++stats_.false_ops;
  ++stats_.cycles;
}

void ImplyEngine::imply(const CellAddr& p, const CellAddr& q) {
  const bool pv = xbar_.get(p);
  const bool qv = xbar_.get(q);
  const bool result = !pv || qv;
  // The conditional SET only switches q when p = 0 and q = 0.
  const bool switches = result && !qv;
  xbar_.set(q, result);
  // Conduction through p at V_cond for the cycle, plus the q switch.
  stats_.energy_ops_pj +=
      (pv ? energy_.e_input_on_pj : energy_.e_input_off_pj) +
      (switches ? energy_.e_switch_pj : 0.0);
  ++stats_.imply_ops;
  ++stats_.cycles;
}

void ImplyEngine::nand(const CellAddr& a, const CellAddr& b,
                       const CellAddr& s) {
  false_op(s);
  imply(a, s);  // s = NOT a.
  imply(b, s);  // s = NOT b OR NOT a = NAND(a, b).
}

double ImplyEngine::energy_pj() const noexcept {
  return stats_.energy_ops_pj +
         static_cast<double>(stats_.cycles) * energy_.e_cycle_overhead_pj;
}

ImplyAddResult imply_serial_add(std::uint64_t a, std::uint64_t b, unsigned n,
                                const device::EnergyModel& em) {
  assert(n >= 1 && n <= 63);
  // Layout: row 0 = A, row 1 = B, row 2 = carry chain, rows 3..10 = the
  // eight NAND intermediates (t1..t7 and sum), all one column per bit.
  BlockedCrossbar xbar{CrossbarConfig{1, 12, std::max<std::size_t>(n + 1, 8)}};
  for (unsigned i = 0; i < n; ++i) {
    xbar.block(0).set(0, i, util::bit(a, i) != 0);
    xbar.block(0).set(1, i, util::bit(b, i) != 0);
  }
  ImplyEngine engine{xbar, em};

  // Cell helpers per bit column.
  const auto cell = [](std::size_t row, unsigned col) {
    return CellAddr{0, row, col};
  };
  constexpr std::size_t kCarryRow = 2;
  // Intermediate rows: t1, t2, t3, t4(=a^b), t5, t6, t7, sum.
  constexpr std::array<std::size_t, 8> kT{3, 4, 5, 6, 7, 8, 9, 10};

  for (unsigned i = 0; i < n; ++i) {
    const CellAddr av = cell(0, i);
    const CellAddr bv = cell(1, i);
    const CellAddr cin = cell(kCarryRow, i);  // Column i holds carry-in i.
    const CellAddr t1 = cell(kT[0], i), t2 = cell(kT[1], i);
    const CellAddr t3 = cell(kT[2], i), t4 = cell(kT[3], i);
    const CellAddr t5 = cell(kT[4], i), t6 = cell(kT[5], i);
    const CellAddr t7 = cell(kT[6], i), sum = cell(kT[7], i);
    // 9-NAND full adder.
    engine.nand(av, bv, t1);
    engine.nand(av, t1, t2);
    engine.nand(bv, t1, t3);
    engine.nand(t2, t3, t4);  // a XOR b
    engine.nand(t4, cin, t5);
    engine.nand(t4, t5, t6);
    engine.nand(cin, t5, t7);
    engine.nand(t6, t7, sum);                       // a XOR b XOR c
    engine.nand(t5, t1, cell(kCarryRow, i + 1));    // carry out = MAJ
  }

  ImplyAddResult result;
  for (unsigned i = 0; i < n; ++i)
    if (xbar.get(cell(kT[7], i))) result.value |= std::uint64_t{1} << i;
  if (xbar.get(cell(kCarryRow, n))) result.value |= std::uint64_t{1} << n;
  result.cycles = engine.stats().cycles;
  result.energy_ops_pj = engine.stats().energy_ops_pj;
  return result;
}

}  // namespace apim::magic
