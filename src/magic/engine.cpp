#include "magic/engine.hpp"

#include <cassert>
#include <cstdlib>

namespace apim::magic {

MagicEngine::MagicEngine(crossbar::BlockedCrossbar& crossbar,
                         const device::EnergyModel& energy)
    : xbar_(crossbar), energy_(energy) {}

void MagicEngine::trace(OpKind kind, std::uint32_t cells, bool overlapped) {
  if (tracer_ != nullptr)
    tracer_->record(TraceEvent{stats_.cycles, kind, cells, overlapped});
}

void MagicEngine::trace_cell(OpKind kind, CellAccess access,
                             const crossbar::CellAddr& addr,
                             util::Cycles cycle) {
  tracer_->record_cell(CellEvent{cycle, kind, access, addr});
}

void MagicEngine::init_cells(std::span<const crossbar::CellAddr> cells,
                             bool overlapped) {
  for (const auto& addr : cells) {
    xbar_.set(addr, true);
    stats_.energy_ops_pj += energy_.e_init_pj;
    ++stats_.init_cells;
  }
  if (!overlapped) ++stats_.cycles;
  trace(OpKind::kInit, static_cast<std::uint32_t>(cells.size()), overlapped);
  if (cell_trace_on())
    for (const auto& addr : cells)
      trace_cell(OpKind::kInit, CellAccess::kInit, addr, stats_.cycles);
}

void MagicEngine::execute_nor(const NorOp& op) {
  assert(!op.inputs.empty());
  // MAGIC precondition: the output cell must be at RON ('1') so that the
  // input-driven divider can conditionally RESET it. A '0' output can only
  // stay '0' (NOR cannot SET). A violation on a healthy fabric means an
  // arithmetic schedule forgot an init step; on a faulty fabric it is the
  // physical behaviour of a stuck-at-0 cell.
  const bool dst_ready = xbar_.get(op.dst);
  assert(dst_ready || xbar_.block(op.dst.block).fault_count() > 0);
  int ones = 0;
  int zeros = 0;
  bool any_input_high = false;
  for (const auto& in : op.inputs) {
    const bool v = xbar_.get(in);
    any_input_high |= v;
    v ? ++ones : ++zeros;
    // Crossing blocks routes the evaluation current through the
    // configurable interconnect; charge per hop and per bit.
    const auto hops = static_cast<std::uint64_t>(
        std::abs(static_cast<long long>(in.block) -
                 static_cast<long long>(op.dst.block)));
    if (hops > 0) {
      stats_.interconnect_bits += hops;
      stats_.energy_ops_pj +=
          static_cast<double>(hops) * energy_.e_interconnect_bit_pj;
    }
  }
  const bool result = !any_input_high && dst_ready;
  const bool switches = dst_ready && !result;  // '1' -> '0' RESET.
  xbar_.set(op.dst, result);
  stats_.energy_ops_pj += energy_.nor_energy_pj(ones, zeros, switches);
  ++stats_.nor_ops;
  if (cell_trace_on()) {
    // The callers charge the batch cycle after execute_nor returns, so the
    // completion stamp all of this op's touches share is cycles + 1.
    const util::Cycles done = stats_.cycles + 1;
    trace_cell(OpKind::kNor, CellAccess::kWrite, op.dst, done);
    for (const auto& in : op.inputs)
      trace_cell(OpKind::kNor, CellAccess::kRead, in, done);
  }
}

void MagicEngine::nor(const crossbar::CellAddr& dst,
                      std::span<const crossbar::CellAddr> inputs) {
  NorOp op{dst, {inputs.begin(), inputs.end()}};
  execute_nor(op);
  ++stats_.cycles;
  trace(OpKind::kNor, 1);
}

void MagicEngine::nor_parallel(std::span<const NorOp> ops) {
  assert(!ops.empty());
#ifndef NDEBUG
  // Parallel NORs must target distinct cells; a quadratic check is fine for
  // debug builds at the batch sizes we use (<= a few hundred).
  for (std::size_t i = 0; i < ops.size(); ++i)
    for (std::size_t j = i + 1; j < ops.size(); ++j)
      assert(!(ops[i].dst == ops[j].dst));
#endif
  for (const auto& op : ops) execute_nor(op);
  ++stats_.cycles;
  trace(OpKind::kNor, static_cast<std::uint32_t>(ops.size()));
}

bool MagicEngine::read_bit(const crossbar::CellAddr& addr) {
  // The SA reads the physical row: a logical row quarantined by the
  // reliability layer transparently resolves to its spare.
  const bool value = xbar_.sense_amps().read(
      xbar_.block(addr.block), xbar_.physical_row(addr.block, addr.row),
      addr.col);
  stats_.energy_ops_pj += energy_.e_read_pj;
  ++stats_.reads;
  trace(OpKind::kRead, 1, /*overlapped=*/true);
  if (cell_trace_on())
    trace_cell(OpKind::kRead, CellAccess::kRead, addr, stats_.cycles);
  return value;
}

bool MagicEngine::sa_majority(const crossbar::CellAddr& a,
                              const crossbar::CellAddr& b,
                              const crossbar::CellAddr& c) {
  // The MAJ sense path aggregates current on one bitline, so all three
  // cells must share a block and a column (paper Figure 3(b)).
  assert(a.block == b.block && b.block == c.block);
  assert(a.col == b.col && b.col == c.col);
  const bool result = xbar_.sense_amps().majority(
      xbar_.block(a.block), a.col, xbar_.physical_row(a.block, a.row),
      xbar_.physical_row(b.block, b.row), xbar_.physical_row(c.block, c.row));
  stats_.energy_ops_pj += energy_.e_maj_pj;
  ++stats_.majority_ops;
  ++stats_.cycles;
  trace(OpKind::kMajority, 1);
  if (cell_trace_on()) {
    trace_cell(OpKind::kMajority, CellAccess::kRead, a, stats_.cycles);
    trace_cell(OpKind::kMajority, CellAccess::kRead, b, stats_.cycles);
    trace_cell(OpKind::kMajority, CellAccess::kRead, c, stats_.cycles);
  }
  return result;
}

void MagicEngine::write_bit(const crossbar::CellAddr& addr, bool value) {
  const bool flipped = xbar_.set(addr, value);
  stats_.energy_ops_pj += energy_.write_energy_pj(flipped);
  ++stats_.writes;
  ++stats_.cycles;
  trace(OpKind::kWrite, 1);
  if (cell_trace_on())
    trace_cell(OpKind::kWrite, CellAccess::kWrite, addr, stats_.cycles);
}

void MagicEngine::write_word(const crossbar::CellAddr& start, unsigned width,
                             std::uint64_t value) {
  for (unsigned i = 0; i < width; ++i) {
    const crossbar::CellAddr addr{start.block, start.row, start.col + i};
    const bool flipped = xbar_.set(addr, ((value >> i) & 1) != 0);
    stats_.energy_ops_pj += energy_.write_energy_pj(flipped);
    ++stats_.writes;
  }
  ++stats_.cycles;
  trace(OpKind::kWrite, width);
  if (cell_trace_on())
    for (unsigned i = 0; i < width; ++i)
      trace_cell(OpKind::kWrite, CellAccess::kWrite,
                 crossbar::CellAddr{start.block, start.row, start.col + i},
                 stats_.cycles);
}

std::uint64_t MagicEngine::peek_word(const crossbar::CellAddr& start,
                                     unsigned width) const {
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i) {
    const crossbar::CellAddr addr{start.block, start.row, start.col + i};
    if (xbar_.get(addr)) value |= std::uint64_t{1} << i;
  }
  return value;
}

void MagicEngine::add_idle_cycles(util::Cycles n) {
  stats_.cycles += n;
  trace(OpKind::kIdle, 0);
}

void MagicEngine::charge_interconnect(std::uint64_t bits) {
  stats_.interconnect_bits += bits;
  stats_.energy_ops_pj +=
      static_cast<double>(bits) * energy_.e_interconnect_bit_pj;
}

double MagicEngine::energy_pj() const noexcept {
  return stats_.energy_ops_pj +
         static_cast<double>(stats_.cycles) * energy_.e_cycle_overhead_pj;
}

}  // namespace apim::magic
