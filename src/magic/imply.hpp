// IMPLY stateful logic (Borghetti et al. [21], Kvatinsky et al. [22]) —
// the alternative memristive logic family the paper's related-work section
// discusses. Implemented as an extension so the Figure 6-style comparison
// can include a stateful-implication adder.
//
// Semantics: the two-cell operation  q := p IMPLIES q  (i.e. NOT p OR q)
// is applied in place by driving V_cond on p's wordline and V_set on q's;
// FALSE(q) resets a cell to '0'. Every IMPLY or FALSE step is one cycle.
// NAND(a, b) -> s takes FALSE(s); a IMP s; b IMP s  (3 cycles), and a full
// adder decomposes into 9 NANDs = 27 cycles per bit, which is why MAGIC's
// 12-cycle-per-bit schedule (and APIM's tree on top of it) wins.
#pragma once

#include <cstdint>

#include "crossbar/crossbar.hpp"
#include "device/energy_model.hpp"
#include "util/units.hpp"

namespace apim::magic {

struct ImplyStats {
  util::Cycles cycles = 0;
  double energy_ops_pj = 0.0;
  std::uint64_t imply_ops = 0;
  std::uint64_t false_ops = 0;
};

class ImplyEngine {
 public:
  ImplyEngine(crossbar::BlockedCrossbar& crossbar,
              const device::EnergyModel& energy);

  /// FALSE: unconditionally reset `q` to '0'. 1 cycle.
  void false_op(const crossbar::CellAddr& q);

  /// q := (NOT p) OR q. 1 cycle. p is read non-destructively.
  void imply(const crossbar::CellAddr& p, const crossbar::CellAddr& q);

  /// s := NAND(a, b) using a FALSE and two IMPLY steps (3 cycles).
  /// `s` may hold any prior value.
  void nand(const crossbar::CellAddr& a, const crossbar::CellAddr& b,
            const crossbar::CellAddr& s);

  [[nodiscard]] const ImplyStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double energy_pj() const noexcept;
  void reset_stats() noexcept { stats_ = {}; }

  [[nodiscard]] crossbar::BlockedCrossbar& crossbar() noexcept {
    return xbar_;
  }

 private:
  crossbar::BlockedCrossbar& xbar_;
  const device::EnergyModel& energy_;
  ImplyStats stats_;
};

/// Measured outcome of an IMPLY-based in-memory addition.
struct ImplyAddResult {
  std::uint64_t value = 0;
  util::Cycles cycles = 0;
  double energy_ops_pj = 0.0;
};

/// Serial n-bit addition built from the 9-NAND full-adder decomposition:
/// 27n cycles (9 NANDs x 3 cycles per bit). Self-contained: builds its own
/// crossbar, loads operands, executes, verifies nothing — callers compare
/// `value` against a + b.
[[nodiscard]] ImplyAddResult imply_serial_add(std::uint64_t a, std::uint64_t b,
                                              unsigned n,
                                              const device::EnergyModel& em);

/// Closed-form latency of the IMPLY serial adder.
[[nodiscard]] constexpr util::Cycles imply_add_cycles(unsigned n) noexcept {
  return 27ull * n;
}

}  // namespace apim::magic
