// Operation tracing for the MAGIC engine.
//
// A trace records every micro-operation batch the engine executes —
// cycle number, kind, cell count — so schedules can be inspected,
// visualized and regression-tested at the micro-op level. Tracing is
// opt-in (attach a Tracer to the engine) and costs nothing when disabled.
//
// Row-resolved mode (enable_cell_events) additionally records one
// CellEvent per cell touched — which cell, read or written, at which
// cycle — the input of the static schedule verifier
// (analysis/schedule_check.hpp), which replays the crossbar resource
// rules (init-before-NOR, same-cycle hazards, quarantine, scratch leaks)
// post-hoc. Cell events cost memory proportional to cells touched, so
// they stay off unless a checker asks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crossbar/address.hpp"
#include "magic/ops.hpp"
#include "util/units.hpp"

namespace apim::magic {

struct TraceEvent {
  util::Cycles cycle = 0;   ///< Cycle at which the batch completed.
  OpKind kind = OpKind::kNor;
  std::uint32_t cells = 0;  ///< Cells touched by the batch (lanes).
  bool overlapped = false;  ///< True for zero-cycle (overlapped) batches.
};

/// How one cell was touched within a batch.
enum class CellAccess : std::uint8_t {
  kInit,   ///< Unconditional SET to '1' (MAGIC output precondition).
  kWrite,  ///< Driver write or NOR evaluation output.
  kRead,   ///< Evaluation input or sense-amp read.
};

[[nodiscard]] constexpr const char* to_string(CellAccess a) noexcept {
  switch (a) {
    case CellAccess::kInit: return "init";
    case CellAccess::kWrite: return "write";
    case CellAccess::kRead: return "read";
  }
  return "?";
}

/// One cell touch in row-resolved mode. `cycle` is the completion cycle
/// of the batch the touch belongs to, so all touches of one NOR batch
/// share a stamp — which is exactly the granularity the same-cycle
/// hazard rules need.
struct CellEvent {
  util::Cycles cycle = 0;
  OpKind kind = OpKind::kNor;
  CellAccess access = CellAccess::kRead;
  crossbar::CellAddr addr;
};

class Tracer {
 public:
  /// `capacity` bounds batch-event memory; once exceeded, *newer* events
  /// are dropped and counted (the prefix of a schedule is kept intact;
  /// dropped() reports the loss and format() notes it). Cell events get
  /// 16x the capacity (a batch touches many cells) with the same policy.
  explicit Tracer(std::size_t capacity = 1 << 20)
      : capacity_(capacity), cell_capacity_(capacity * 16) {}

  void record(TraceEvent event);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  void clear();

  // -- Row-resolved mode ---------------------------------------------------

  /// Opt in to per-cell events (off by default: they cost memory).
  void enable_cell_events(bool on) noexcept { cell_events_enabled_ = on; }
  [[nodiscard]] bool cell_events_enabled() const noexcept {
    return cell_events_enabled_;
  }
  void record_cell(CellEvent event);
  [[nodiscard]] const std::vector<CellEvent>& cell_events() const noexcept {
    return cell_events_;
  }
  [[nodiscard]] std::uint64_t dropped_cells() const noexcept {
    return dropped_cells_;
  }
  /// True when any event (batch or cell) was lost to capacity — a trace
  /// that overflowed is not a sound basis for verification.
  [[nodiscard]] bool overflowed() const noexcept {
    return dropped_ > 0 || dropped_cells_ > 0;
  }

  /// Events per op kind (init/nor/write/read/majority/idle).
  [[nodiscard]] std::uint64_t count(OpKind kind) const noexcept;
  /// Total cells touched by batches of `kind`.
  [[nodiscard]] std::uint64_t cells(OpKind kind) const noexcept;

  /// Human-readable schedule dump ("cycle 3: nor x32") for debugging.
  /// Always ends with a summary line noting totals and any dropped
  /// batch/cell events, so a truncated dump cannot pass as complete.
  [[nodiscard]] std::string format(std::size_t max_lines = 64) const;

 private:
  std::size_t capacity_;
  std::size_t cell_capacity_;
  bool cell_events_enabled_ = false;
  std::vector<TraceEvent> events_;
  std::vector<CellEvent> cell_events_;
  std::uint64_t dropped_ = 0;
  std::uint64_t dropped_cells_ = 0;
};

}  // namespace apim::magic
