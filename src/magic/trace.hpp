// Operation tracing for the MAGIC engine.
//
// A trace records every micro-operation batch the engine executes —
// cycle number, kind, cell count — so schedules can be inspected,
// visualized and regression-tested at the micro-op level. Tracing is
// opt-in (attach a Tracer to the engine) and costs nothing when disabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "magic/ops.hpp"
#include "util/units.hpp"

namespace apim::magic {

struct TraceEvent {
  util::Cycles cycle = 0;   ///< Cycle at which the batch completed.
  OpKind kind = OpKind::kNor;
  std::uint32_t cells = 0;  ///< Cells touched by the batch (lanes).
  bool overlapped = false;  ///< True for zero-cycle (overlapped) batches.
};

class Tracer {
 public:
  /// `capacity` bounds memory; older events are dropped once exceeded
  /// (the drop count is reported).
  explicit Tracer(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  void record(TraceEvent event);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  void clear();

  /// Events per op kind (init/nor/write/read/majority/idle).
  [[nodiscard]] std::uint64_t count(OpKind kind) const noexcept;
  /// Total cells touched by batches of `kind`.
  [[nodiscard]] std::uint64_t cells(OpKind kind) const noexcept;

  /// Human-readable schedule dump ("cycle 3: nor x32") for debugging.
  [[nodiscard]] std::string format(std::size_t max_lines = 64) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace apim::magic
