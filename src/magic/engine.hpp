// MAGIC execution engine: runs micro-operations on a BlockedCrossbar with
// cycle and energy accounting.
//
// Cycle-accounting convention (matches the paper's numbers; see DESIGN.md):
//  * one NOR evaluation — or any set of NOR evaluations issued in the same
//    `nor_parallel` batch (row-parallel MAGIC) — costs 1 cycle (1.1 ns);
//  * initializing output cells to '1' costs 1 cycle, or 0 cycles when
//    `overlapped` is set (disjoint regions can be initialized while the SA
//    carry chain works elsewhere, which is how the approximate final stage
//    reaches its 2m+1 cycle count);
//  * a single-bit SA read is sub-cycle (0.3 ns) and overlaps copy work, so
//    it charges energy only;
//  * an SA majority evaluation (0.3 ns read + 0.6 ns compute) fits in one
//    cycle and charges 1;
//  * a data write (driver-based, not MAGIC) costs 1 cycle per issued batch.
//
// Energy: every micro-op is priced through device::EnergyModel; the
// controller/decoder background cost is charged per cycle. The word-level
// fast functional model (src/arith/fast_mult.*) replicates these counts
// closed-form, and property tests assert exact agreement.
#pragma once

#include <cstdint>
#include <span>

#include "crossbar/crossbar.hpp"
#include "device/energy_model.hpp"
#include "magic/ops.hpp"
#include "magic/trace.hpp"
#include "util/units.hpp"

namespace apim::magic {

/// Breakdown of accumulated costs, used by tests and ablation benches.
struct EngineStats {
  util::Cycles cycles = 0;
  double energy_ops_pj = 0.0;  ///< Micro-op energy, excluding overhead.
  std::uint64_t nor_ops = 0;
  std::uint64_t init_cells = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t majority_ops = 0;
  std::uint64_t interconnect_bits = 0;
};

class MagicEngine {
 public:
  MagicEngine(crossbar::BlockedCrossbar& crossbar,
              const device::EnergyModel& energy);

  [[nodiscard]] crossbar::BlockedCrossbar& crossbar() noexcept { return xbar_; }

  // -- Micro-operations ----------------------------------------------------

  /// Initialize cells to logic '1' (unconditional SET), the precondition of
  /// every MAGIC output cell. 1 cycle, or 0 when `overlapped`.
  void init_cells(std::span<const crossbar::CellAddr> cells,
                  bool overlapped = false);

  /// Single NOR (1 cycle).
  void nor(const crossbar::CellAddr& dst,
           std::span<const crossbar::CellAddr> inputs);

  /// Row-parallel batch of NORs sharing one cycle. Destinations must be
  /// distinct cells; each op may have a different input arity.
  void nor_parallel(std::span<const NorOp> ops);

  /// Sense-amplifier single-bit read: energy only, no cycle.
  [[nodiscard]] bool read_bit(const crossbar::CellAddr& addr);

  /// Sense-amplifier majority of three cells on one bitline: 1 cycle.
  [[nodiscard]] bool sa_majority(const crossbar::CellAddr& a,
                                 const crossbar::CellAddr& b,
                                 const crossbar::CellAddr& c);

  /// Driver write of one bit (1 cycle).
  void write_bit(const crossbar::CellAddr& addr, bool value);

  /// Driver write of a word along columns (1 cycle: all bitline drivers
  /// fire together under one wordline).
  void write_word(const crossbar::CellAddr& start, unsigned width,
                  std::uint64_t value);

  /// Read a word functionally (no cycles/energy: used by checkers and by
  /// result extraction, which the paper does not charge to the operation).
  [[nodiscard]] std::uint64_t peek_word(const crossbar::CellAddr& start,
                                        unsigned width) const;

  /// Charge idle/controller cycles (used when modelling steps whose work
  /// happens in peripheral logic).
  void add_idle_cycles(util::Cycles n);

  /// Charge the barrel-shifter routing cost for `bits` bit-paths (used by
  /// schedules whose writes go through the interconnect with a column
  /// shift, e.g. the carry alignment of a 3:2 stage). No cycles: the shift
  /// rides on the write it accompanies.
  void charge_interconnect(std::uint64_t bits);

  // -- Accounting ----------------------------------------------------------

  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] util::Cycles cycles() const noexcept { return stats_.cycles; }
  /// Total energy including the per-cycle controller overhead.
  [[nodiscard]] double energy_pj() const noexcept;
  /// Reset counters (cell contents are preserved).
  void reset_stats() noexcept { stats_ = {}; }

  [[nodiscard]] const device::EnergyModel& energy_model() const noexcept {
    return energy_;
  }

  /// Attach an op tracer (nullptr detaches). Not owned.
  void attach_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }


 private:
  /// Executes one NOR without charging a cycle (shared by nor/nor_parallel).
  void execute_nor(const NorOp& op);

  void trace(OpKind kind, std::uint32_t cells, bool overlapped = false);

  /// Row-resolved cell event (only when the attached tracer opted in).
  void trace_cell(OpKind kind, CellAccess access,
                  const crossbar::CellAddr& addr, util::Cycles cycle);
  [[nodiscard]] bool cell_trace_on() const noexcept {
    return tracer_ != nullptr && tracer_->cell_events_enabled();
  }

  crossbar::BlockedCrossbar& xbar_;
  const device::EnergyModel& energy_;
  EngineStats stats_;
  Tracer* tracer_ = nullptr;
};

}  // namespace apim::magic
